#!/usr/bin/env python3
"""Validate a Prometheus text exposition (the `GET /metrics` body).

Checks the grammar scrapers actually rely on:

  - every line is a comment (# HELP / # TYPE), blank, or a sample line
    `name{labels} value` with a parseable value
  - every sample's family has a `# TYPE` line before its first sample
  - histogram families are complete and consistent: bucket `le` bounds
    strictly increasing, bucket counts cumulative (non-decreasing), a
    `+Inf` bucket present and equal to `_count`, and `_sum` present

`--require PREFIX` (repeatable) asserts at least one sample whose name
starts with PREFIX exists — CI uses it to prove every instrumented layer
actually reported. Reads stdin or a file argument. Exit 0 when clean,
1 on any violation (all violations are listed, not just the first).
"""

from __future__ import annotations

import argparse
import math
import re
import sys

SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r" (?P<value>\S+)(?: \d+)?$"  # optional timestamp
)
HELP_RE = re.compile(r"^# HELP (?P<name>\S+) .+$")
TYPE_RE = re.compile(r"^# TYPE (?P<name>\S+) (?P<type>counter|gauge|histogram|summary|untyped)$")
LE_RE = re.compile(r'(?:^|,)le="(?P<le>[^"]+)"')


def parse_value(text: str) -> float | None:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    try:
        return float(text)
    except ValueError:
        return None


def base_family(name: str) -> str:
    """The family a sample belongs to (strips histogram/summary suffixes)."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def check(text: str, required: list[str]) -> list[str]:
    errors: list[str] = []
    types: dict[str, str] = {}
    # family -> list of (le, cumulative count); plus seen _sum/_count.
    buckets: dict[str, list[tuple[float, float]]] = {}
    sums: dict[str, float] = {}
    counts: dict[str, float] = {}
    seen_names: list[str] = []

    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            if HELP_RE.match(line):
                continue
            match = TYPE_RE.match(line)
            if match:
                types[match.group("name")] = match.group("type")
                continue
            errors.append(f"line {lineno}: unrecognized comment line: {line!r}")
            continue
        match = SAMPLE_RE.match(line)
        if not match:
            errors.append(f"line {lineno}: not a valid sample line: {line!r}")
            continue
        name = match.group("name")
        value = parse_value(match.group("value"))
        if value is None:
            errors.append(f"line {lineno}: unparseable value in: {line!r}")
            continue
        seen_names.append(name)
        family = base_family(name)
        declared = types.get(name) or types.get(family)
        if declared is None:
            errors.append(f"line {lineno}: sample '{name}' has no preceding # TYPE line")
            continue
        if declared == "histogram":
            if name.endswith("_bucket"):
                labels = match.group("labels") or ""
                le_match = LE_RE.search(labels)
                if not le_match:
                    errors.append(f"line {lineno}: histogram bucket without an le label")
                    continue
                le = parse_value(le_match.group("le"))
                if le is None:
                    errors.append(f"line {lineno}: unparseable le bound")
                    continue
                buckets.setdefault(family, []).append((le, value))
            elif name.endswith("_sum"):
                sums[family] = value
            elif name.endswith("_count"):
                counts[family] = value
            elif name == family:
                errors.append(f"line {lineno}: bare sample for histogram family '{family}'")

    for family, series in sorted(buckets.items()):
        les = [le for le, _ in series]
        if les != sorted(les) or len(set(les)) != len(les):
            errors.append(f"histogram '{family}': le bounds not strictly increasing: {les}")
        values = [v for _, v in series]
        if values != sorted(values):
            errors.append(f"histogram '{family}': bucket counts not cumulative: {values}")
        if not les or les[-1] != math.inf:
            errors.append(f"histogram '{family}': missing the +Inf bucket")
        elif family in counts and values[-1] != counts[family]:
            errors.append(
                f"histogram '{family}': +Inf bucket {values[-1]} != _count {counts[family]}"
            )
        if family not in sums:
            errors.append(f"histogram '{family}': missing _sum")
        if family not in counts:
            errors.append(f"histogram '{family}': missing _count")

    for prefix in required:
        if not any(name.startswith(prefix) for name in seen_names):
            errors.append(f"required metric prefix '{prefix}' has no samples")
    return errors


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("path", nargs="?", help="exposition file (default: stdin)")
    parser.add_argument(
        "--require",
        action="append",
        default=[],
        metavar="PREFIX",
        help="assert at least one sample name starts with PREFIX (repeatable)",
    )
    args = parser.parse_args(argv)
    if args.path:
        with open(args.path, encoding="utf-8") as handle:
            text = handle.read()
    else:
        text = sys.stdin.read()
    errors = check(text, args.require)
    for error in errors:
        print(f"check_metrics_exposition: {error}", file=sys.stderr)
    if errors:
        return 1
    samples = sum(
        1 for line in text.splitlines() if line.strip() and not line.startswith("#")
    )
    print(f"check_metrics_exposition: OK ({samples} samples)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
