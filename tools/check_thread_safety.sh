#!/bin/sh
# Negative-compilation check for the thread-safety annotations.
#
# Usage: check_thread_safety.sh <c++-compiler> <repo-root> [work-dir]
#
# Proves the annotations in src/support/sync.hpp are load-bearing:
#   1. the compiler is Clang with -Wthread-safety support (else SKIP, 77
#      — GCC expands the annotation macros to nothing, so there is
#      nothing to check);
#   2. the positive control (tests/negative/thread_safety_clean.cpp)
#      compiles warning-free WITH the gate — a gate that rejects correct
#      code would make step 3 meaningless;
#   3. the violation TU (tests/negative/thread_safety_violation.cpp)
#      compiles fine WITHOUT the gate (it is valid C++) ...
#   4. ... and is REJECTED with -Wthread-safety -Wthread-safety-beta
#      -Werror, with the diagnostic naming the guarded field.
#
# Exit: 0 ok, 77 skipped (non-Clang), 1 gate broken.
set -u

CXX=${1:?usage: check_thread_safety.sh <c++-compiler> <repo-root> [work-dir]}
ROOT=${2:?usage: check_thread_safety.sh <c++-compiler> <repo-root> [work-dir]}
WORK=${3:-$(mktemp -d)}
mkdir -p "$WORK"

CLEAN_TU="$ROOT/tests/negative/thread_safety_clean.cpp"
BAD_TU="$ROOT/tests/negative/thread_safety_violation.cpp"
BASE_FLAGS="-std=c++20 -I$ROOT/src -fsyntax-only"
GATE_FLAGS="-Wthread-safety -Wthread-safety-beta -Werror"

if ! "$CXX" --version 2>/dev/null | grep -qi clang; then
  echo "check_thread_safety: $CXX is not Clang — thread-safety analysis unavailable, skipping"
  exit 77
fi

# Belt and braces: an old Clang without the warning group would silently
# pass everything through.
if ! "$CXX" $BASE_FLAGS $GATE_FLAGS -x c++ /dev/null 2>"$WORK/probe.err"; then
  echo "check_thread_safety: $CXX rejects $GATE_FLAGS — skipping"
  cat "$WORK/probe.err"
  exit 77
fi

echo "== positive control: clean TU must pass the gate"
if ! "$CXX" $BASE_FLAGS $GATE_FLAGS "$CLEAN_TU" 2>"$WORK/clean.err"; then
  echo "FAIL: $CLEAN_TU should compile under the thread-safety gate but did not:"
  cat "$WORK/clean.err"
  exit 1
fi

echo "== violation TU is valid C++ without the gate"
if ! "$CXX" $BASE_FLAGS "$BAD_TU" 2>"$WORK/bad-nogate.err"; then
  echo "FAIL: $BAD_TU should be valid C++ without -Wthread-safety:"
  cat "$WORK/bad-nogate.err"
  exit 1
fi

echo "== violation TU must be rejected by the gate"
if "$CXX" $BASE_FLAGS $GATE_FLAGS "$BAD_TU" 2>"$WORK/bad.err"; then
  echo "FAIL: $BAD_TU compiled under the gate — the annotations are not analyzed"
  exit 1
fi
if ! grep -q "value_" "$WORK/bad.err"; then
  echo "FAIL: the rejection does not name the guarded field; diagnostic was:"
  cat "$WORK/bad.err"
  exit 1
fi

echo "check_thread_safety: OK (gate accepts clean code, rejects the unlocked GUARDED_BY access)"
exit 0
