#!/usr/bin/env python3
"""Validate a perf_evaluator JSON snapshot (BENCH_evaluator.json).

Checks the schema the bench-trajectory tooling depends on: header fields,
per-row fields and types, and — when --reference points at the committed
snapshot — that every (strategy, math) combination tracked there is still
present in the file under test, so a refactor cannot silently drop a
measured configuration from the trajectory.

Usage:
    tools/check_bench_schema.py BENCH_evaluator.json
    tools/check_bench_schema.py fresh.json --reference BENCH_evaluator.json

Exits non-zero with a message naming the first violation.
"""

import argparse
import json
import sys

HEADER_KEYS = {"bench", "compiler", "threads_available", "fixture", "results"}
FIXTURE_KEYS = {"workflow", "seed", "lambda", "cost_model", "linearization",
                "checkpoint_every"}
ROW_KEYS = {"n", "strategy", "math", "threads", "ns_per_eval",
            "ns_per_eval_min", "evals", "repeats", "expected_makespan"}
STRATEGIES = {"serial", "kblock", "algorithm1", "generate", "linearize"}
BACKENDS = {"exact", "fast"}
# Instance-scale rows (strategy generate/linearize) carry memory/shape
# provenance for the workflow instance they build.
INSTANCE_STRATEGIES = {"generate", "linearize"}
INSTANCE_KEYS = {"workflow", "edges", "instance_bytes", "peak_rss_mb"}
WORKFLOWS = {"montage", "ligo", "cybershake", "genome"}


def fail(message):
    print(f"error: {message}", file=sys.stderr)
    sys.exit(1)


def check_number(row, key, index, minimum=0):
    value = row[key]
    # expected_makespan may legitimately be the quoted string "inf" on a
    # failure-dominated fixture (the emitter's non-finite convention).
    if key == "expected_makespan" and isinstance(value, str):
        if value in ("inf", "-inf", "nan"):
            return
        fail(f"results[{index}].{key}: non-finite marker {value!r} is not one of inf/-inf/nan")
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        fail(f"results[{index}].{key}: expected a number, got {value!r}")
    if value < minimum:
        fail(f"results[{index}].{key}: {value} < {minimum}")


def load(path):
    try:
        with open(path, encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        fail(f"{path}: {error}")


def check_snapshot(data, path):
    if not isinstance(data, dict):
        fail(f"{path}: top level must be an object")
    missing = HEADER_KEYS - data.keys()
    if missing:
        fail(f"{path}: missing top-level keys {sorted(missing)}")
    if data["bench"] != "evaluator":
        fail(f"{path}: bench is {data['bench']!r}, expected 'evaluator'")
    if not isinstance(data["compiler"], str) or not data["compiler"]:
        fail(f"{path}: compiler must be a non-empty string")
    if not isinstance(data["threads_available"], int) or data["threads_available"] < 0:
        fail(f"{path}: threads_available must be a non-negative integer")
    if "peak_rss_mb" in data:
        rss = data["peak_rss_mb"]
        if not isinstance(rss, (int, float)) or isinstance(rss, bool) or rss < 0:
            fail(f"{path}: peak_rss_mb must be a non-negative number, got {rss!r}")
    fixture_missing = FIXTURE_KEYS - data["fixture"].keys()
    if fixture_missing:
        fail(f"{path}: fixture is missing {sorted(fixture_missing)}")
    rows = data["results"]
    if not isinstance(rows, list) or not rows:
        fail(f"{path}: results must be a non-empty array")

    seen = set()
    for index, row in enumerate(rows):
        if not isinstance(row, dict):
            fail(f"results[{index}]: expected an object")
        missing = ROW_KEYS - row.keys()
        if missing:
            fail(f"results[{index}]: missing keys {sorted(missing)}")
        if row["strategy"] not in STRATEGIES:
            fail(f"results[{index}].strategy: {row['strategy']!r} not in {sorted(STRATEGIES)}")
        if row["math"] not in BACKENDS:
            fail(f"results[{index}].math: {row['math']!r} not in {sorted(BACKENDS)}")
        check_number(row, "n", index, minimum=1)
        check_number(row, "threads", index, minimum=1)
        check_number(row, "ns_per_eval", index)
        check_number(row, "ns_per_eval_min", index)
        check_number(row, "evals", index, minimum=1)
        check_number(row, "repeats", index, minimum=1)
        check_number(row, "expected_makespan", index)
        if row["strategy"] in INSTANCE_STRATEGIES:
            missing = INSTANCE_KEYS - row.keys()
            if missing:
                fail(f"results[{index}]: instance row missing keys {sorted(missing)}")
            if row["workflow"] not in WORKFLOWS:
                fail(f"results[{index}].workflow: {row['workflow']!r} not in "
                     f"{sorted(WORKFLOWS)}")
            check_number(row, "edges", index)
            check_number(row, "instance_bytes", index, minimum=1)
            check_number(row, "peak_rss_mb", index)
        if row["ns_per_eval_min"] > row["ns_per_eval"]:
            fail(f"results[{index}]: ns_per_eval_min > ns_per_eval (median)")
        key = (row["n"], row["strategy"], row["math"], row["threads"])
        if key in seen:
            fail(f"results[{index}]: duplicate row for n={key[0]} "
                 f"strategy={key[1]} math={key[2]} threads={key[3]}")
        seen.add(key)
    return {(row["strategy"], row["math"]) for row in rows}


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("snapshot", help="perf_evaluator JSON file to validate")
    parser.add_argument("--reference",
                        help="committed snapshot whose (strategy, math) coverage "
                             "the file under test must preserve")
    args = parser.parse_args()

    combos = check_snapshot(load(args.snapshot), args.snapshot)
    if args.reference:
        reference_combos = check_snapshot(load(args.reference), args.reference)
        dropped = reference_combos - combos
        if dropped:
            fail(f"{args.snapshot}: missing (strategy, math) rows tracked by "
                 f"{args.reference}: {sorted(dropped)}")
    print(f"ok: {args.snapshot} ({len(combos)} strategy/math combinations)")


if __name__ == "__main__":
    main()
