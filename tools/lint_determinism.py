#!/usr/bin/env python3
"""Determinism lint: flag constructs that would silently break bit-identical replay.

The repo's standing invariant is that the default figure NDJSON output is
byte-identical across every threads x eval-threads x shard combination.
Three classes of code chip away at that guarantee without failing any
functional test:

  unordered-iteration  std::unordered_{map,set,multimap,multiset} in the
                       deterministic layers: iteration order is
                       unspecified, so any loop feeding a sink, an
                       accumulator, or an output stream can reorder
                       records (or float additions) between runs, hosts,
                       or libstdc++ versions.

  raw-rng              std::rand/srand, std::random_device, and
                       time(nullptr) reads: all randomness must flow
                       through the seeded engines in src/support/rng so a
                       (kind, size, seed) triple always regenerates the
                       same instance.

  wall-clock           std::chrono::*_clock::now() outside src/obs: a
                       clock read in a deterministic layer is either dead
                       weight or a timing dependency about to leak into
                       output. Timing belongs to the telemetry layer —
                       use obs::monotonic_ns()/obs::ScopedTimer, whose
                       values only ever reach /metrics and trace files.

  raw-exp              element-wise exp/expm1 in the evaluator pass files
                       (src/core/evaluator*.{hpp,cpp}): the Theorem-3
                       passes must stage arguments and sweep them through
                       the batched kernels in src/core/math_kernels so
                       the serial, k-blocked, and fast-math paths keep
                       their pinned FP operation order.

Scanned tree: src/core, src/engine and src/obs under --root (the layers
that produce record bytes, plus the telemetry layer — which is exempt
from wall-clock but not from the other rules). A finding is suppressed by a justification
comment on the same or the immediately preceding line:

    // determinism-ok: <why this cannot affect record bytes>

A bare "determinism-ok" with no justification text is itself an error —
CI accepts zero unjustified suppressions.

Exit status: 0 clean, 1 findings, 2 usage/internal error.
Self-test: lint_determinism.py --self-test [--fixtures DIR] checks the
rules against known-bad/known-good fixture snippets.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

SCAN_DIRS = ("src/core", "src/engine", "src/obs")
SUPPRESS_RE = re.compile(r"//\s*determinism-ok:?\s*(?P<reason>.*?)\s*(?:\*/)?\s*$")

# Each rule: (id, file filter, regex over the code part of a line, message).
RULES = [
    (
        "unordered-iteration",
        lambda path: True,
        re.compile(r"std::unordered_(?:map|set|multimap|multiset)\b"),
        "unordered container in a deterministic layer: iteration order is "
        "unspecified and will reorder anything it feeds (use std::map, a "
        "sorted vector, or justify why the order never reaches an output)",
    ),
    (
        "raw-rng",
        lambda path: True,
        re.compile(
            r"std::rand\b|(?<![_\w])srand\s*\(|random_device|default_random_engine"
            r"|time\s*\(\s*(?:NULL|nullptr|0)\s*\)"
        ),
        "unseeded/wall-clock randomness: route all RNG through the seeded "
        "engines in src/support/rng so instances replay from their seed",
    ),
    (
        "wall-clock",
        # The telemetry layer is the one sanctioned clock reader
        # (obs::monotonic_ns); everything else must go through it.
        lambda path: "obs" not in path.parts,
        re.compile(r"_clock::now\s*\("),
        "clock read in a deterministic layer: time must flow through "
        "obs::monotonic_ns()/obs::ScopedTimer so it can only reach "
        "telemetry sinks, never record bytes",
    ),
    (
        "raw-exp",
        lambda path: path.name.startswith("evaluator") and "math_kernels" not in path.name,
        re.compile(r"(?<![\w.])(?:std::)?(?:exp|expm1)\s*\("),
        "element-wise exp/expm1 in an evaluator pass: stage the arguments "
        "and sweep them through the batched kernels (vexp/vexpm1/"
        "vexp_neg_mul in core/math_kernels) to keep the pinned FP order",
    ),
]


def code_part(line: str) -> str:
    """The non-comment part of a line (string literals are left alone:
    none of the patterns plausibly match inside the repo's literals)."""
    idx = line.find("//")
    return line if idx < 0 else line[:idx]


class Finding:
    def __init__(self, path: pathlib.Path, lineno: int, rule: str, message: str):
        self.path = path
        self.lineno = lineno
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.lineno}: [{self.rule}] {self.message}"


def suppression(line: str) -> str | None:
    """The justification text when the line carries a determinism-ok
    comment, '' when it carries one without a reason, else None."""
    match = SUPPRESS_RE.search(line)
    if not match:
        return None
    return match.group("reason")


def scan_file(path: pathlib.Path) -> list[Finding]:
    findings: list[Finding] = []
    try:
        lines = path.read_text(encoding="utf-8", errors="replace").splitlines()
    except OSError as error:
        raise SystemExit(f"lint_determinism: cannot read {path}: {error}")
    in_block_comment = False
    for lineno, line in enumerate(lines, start=1):
        # Cheap block-comment tracking: good enough for the repo's
        # comment style (no code after '*/' on the same line).
        stripped = line.strip()
        if in_block_comment:
            if "*/" in stripped:
                in_block_comment = False
            continue
        if stripped.startswith("/*"):
            if "*/" not in stripped:
                in_block_comment = True
            continue
        code = code_part(line)
        suppressed = suppression(line)
        if suppressed is None and lineno >= 2:
            suppressed = suppression(lines[lineno - 2])
        for rule, applies, pattern, message in RULES:
            if not applies(path):
                continue
            if not pattern.search(code):
                continue
            if suppressed is not None:
                if not suppressed:
                    findings.append(
                        Finding(
                            path,
                            lineno,
                            rule,
                            "suppression without a justification; write "
                            "'// determinism-ok: <reason>'",
                        )
                    )
                continue
            findings.append(Finding(path, lineno, rule, message))
    return findings


def scan_tree(root: pathlib.Path) -> list[Finding]:
    findings: list[Finding] = []
    for subdir in SCAN_DIRS:
        base = root / subdir
        if not base.is_dir():
            raise SystemExit(f"lint_determinism: missing scan dir {base} (wrong --root?)")
        for path in sorted(base.rglob("*")):
            if path.suffix in (".cpp", ".hpp", ".h", ".cc"):
                findings.extend(scan_file(path))
    return findings


# --- Self-test ---------------------------------------------------------


def self_test(fixtures: pathlib.Path) -> int:
    """Runs the rules over the fixture snippets and checks every expected
    finding fires (and nothing unexpected does). Fixture files declare
    expectations inline: a line containing 'EXPECT[rule-id]' must produce
    exactly that finding on that line."""
    expect_re = re.compile(r"EXPECT\[(?P<rule>[\w-]+)\]")
    # EXPECT-NEXT targets the following line — for findings on lines whose
    # own comment must stay pristine (e.g. a bare suppression under test).
    expect_next_re = re.compile(r"EXPECT-NEXT\[(?P<rule>[\w-]+)\]")
    failures: list[str] = []
    # rglob: fixtures mirror the scan-tree layout, so the obs/ subdir
    # exercises the wall-clock path exemption.
    paths = sorted(fixtures.rglob("*.cpp*"))
    if not paths:
        print(f"lint_determinism --self-test: no fixtures under {fixtures}", file=sys.stderr)
        return 2
    for path in paths:
        expected = {}
        for lineno, line in enumerate(path.read_text(encoding="utf-8").splitlines(), start=1):
            match = expect_next_re.search(line)
            if match:
                expected[lineno + 1] = match.group("rule")
            elif (match := expect_re.search(line)) is not None:
                expected[lineno] = match.group("rule")
        got = {(f.lineno, f.rule) for f in scan_file(path)}
        want = {(lineno, rule) for lineno, rule in expected.items()}
        for missing in sorted(want - got):
            failures.append(f"{path.name}:{missing[0]}: expected [{missing[1]}] did not fire")
        for extra in sorted(got - want):
            failures.append(f"{path.name}:{extra[0]}: unexpected finding [{extra[1]}]")
    if failures:
        print("lint_determinism --self-test FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"lint_determinism --self-test OK ({len(paths)} fixture files)")
    return 0


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=".", help="repo root (scans src/core, src/engine)")
    parser.add_argument("--self-test", action="store_true", help="run against the fixtures")
    parser.add_argument(
        "--fixtures",
        default=None,
        help="fixture dir for --self-test (default <root>/tests/lint_fixtures)",
    )
    args = parser.parse_args(argv)
    root = pathlib.Path(args.root)
    if args.self_test:
        fixtures = pathlib.Path(args.fixtures) if args.fixtures else root / "tests/lint_fixtures"
        return self_test(fixtures)
    findings = scan_tree(root)
    for finding in findings:
        print(finding)
    if findings:
        print(f"lint_determinism: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("lint_determinism: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
