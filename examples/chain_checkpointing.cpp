// Linear-chain case study: the provably optimal checkpoint placement
// (Toueg-Babaoglu dynamic program, the paper's reference [13]) versus
// periodic checkpointing and the Section-5 heuristics.
//
//   $ ./chain_checkpointing --tasks 30 --lambda 0.002
#include <iostream>

#include "core/evaluator.hpp"
#include "core/theory_chain.hpp"
#include "heuristics/heuristic.hpp"
#include "support/ascii_plot.hpp"
#include "support/cli.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"
#include "workflows/synthetic.hpp"

using namespace fpsched;

int main(int argc, char** argv) {
  CliParser cli("Optimal vs heuristic checkpointing on a linear chain.");
  cli.add_option("tasks", "30", "chain length");
  cli.add_option("lambda", "0.002", "platform failure rate (1/s)");
  cli.add_option("ckpt-factor", "0.1", "checkpoint cost as a fraction of task weight");
  cli.add_option("seed", "3", "weight sampling seed");
  try {
    if (!cli.parse(argc, argv)) return 0;
    const std::size_t n = static_cast<std::size_t>(cli.get_int("tasks"));
    Rng rng(static_cast<std::uint64_t>(cli.get_int("seed")));
    std::vector<double> weights(n);
    for (double& w : weights) w = rng.gamma_mean_cv(60.0, 0.8);
    TaskGraph graph = make_chain(weights);
    graph.apply_cost_model(CostModel::proportional(cli.get_double("ckpt-factor")));
    const FailureModel model(cli.get_double("lambda"), 0.0);
    const ScheduleEvaluator evaluator(graph, model);

    const ChainSolution optimal = solve_chain_optimal(graph, model);
    std::cout << "Chain of " << n << " tasks, T_inf = " << graph.total_weight() << " s\n";
    std::cout << "Optimal checkpoints after positions:";
    for (const std::size_t pos : optimal.checkpoint_positions) std::cout << ' ' << pos;
    std::cout << "  (" << optimal.checkpoint_positions.size() << " total)\n\n";

    Table table({"strategy", "E[makespan] (s)", "vs optimal"});
    table.row().cell("optimal dynamic program").cell(optimal.expected_makespan, 1).cell(1.0, 4);
    for (const CkptStrategy strategy :
         {CkptStrategy::never, CkptStrategy::always, CkptStrategy::by_weight,
          CkptStrategy::periodic}) {
      const HeuristicResult r =
          run_heuristic(evaluator, {LinearizeMethod::depth_first, strategy});
      table.row()
          .cell("DF-" + to_string(strategy))
          .cell(r.evaluation.expected_makespan, 1)
          .cell(r.evaluation.expected_makespan / optimal.expected_makespan, 4);
    }
    table.print(std::cout);

    // The budget/expected-makespan trade-off curve for CkptPer: the classic
    // "U"-shape (too few checkpoints -> re-execution, too many -> overhead).
    const auto order = graph.dag().topological_order();
    const SweepResult sweep = sweep_checkpoint_budget(
        evaluator, {order.begin(), order.end()}, CkptStrategy::periodic, {});
    AsciiChart chart("\nExpected makespan vs checkpoint budget (CkptPer)", 64, 16);
    chart.set_x_label("budget N");
    chart.set_y_label("E[makespan] (s)");
    PlotSeries series{"CkptPer", {}, {}};
    for (const SweepPoint& point : sweep.curve) {
      series.xs.push_back(static_cast<double>(point.budget));
      series.ys.push_back(point.expected_makespan);
    }
    chart.add_series(series);
    chart.print(std::cout);
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
