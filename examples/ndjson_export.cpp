// Programmatic use of the experiment API: register a custom experiment,
// run it through the engine, and stream per-scenario records as NDJSON —
// the same record schema fpsched_run emits, ready for jq / pandas /
// downstream services.
//
//   $ ./ndjson_export | head -2
//   $ ./ndjson_export --tasks 80 | jq .ratio
#include <iostream>

#include "engine/experiment.hpp"
#include "engine/result_sink.hpp"
#include "support/cli.hpp"
#include "support/error.hpp"

using namespace fpsched;

int main(int argc, char** argv) {
  CliParser cli("Export a small CyberShake strategy grid as NDJSON records on stdout.");
  cli.add_option("tasks", "50", "workflow size");
  cli.add_option("stride", "8", "N-sweep stride (coarse by default: this is a demo)");
  try {
    if (!cli.parse(argc, argv)) return 0;

    // An Experiment is just data: a name plus a FigurePlan builder. The
    // registry is optional — run_experiment takes the struct directly.
    const engine::Experiment experiment{
        "ndjson-demo",
        "CyberShake checkpointing strategies at 3 failure rates",
        [](const engine::FigureOptions& options) {
          engine::FigurePlan plan;
          plan.panels = {{engine::lambda_sweep_grid(WorkflowKind::cybershake, options.tasks,
                                                    {1e-4, 5e-4, 1e-3},
                                                    CostModel::proportional(0.1), options),
                          engine::best_lin_panel_title(WorkflowKind::cybershake, "demo sweep"),
                          "demo_cybershake"}};
          return plan;
        }};

    engine::FigureOptions options;
    options.tasks = cli.get_count("tasks", 1);
    options.stride = cli.get_count("stride", 1);

    engine::NdjsonSink ndjson(std::cout);
    const std::vector<engine::ResultSink*> sinks{&ndjson};
    // text = nullptr: records only, no heading — pipe-friendly.
    engine::run_experiment(experiment, options, sinks, nullptr);
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
