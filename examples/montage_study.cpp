// Montage case study: compare all 14 heuristics of the paper on a
// synthetic Montage workflow and print a ranked table, mirroring the
// methodology of Section 6.
//
//   $ ./montage_study --tasks 200 --lambda 0.001 --ckpt-factor 0.1
#include <algorithm>
#include <iostream>

#include "core/evaluator.hpp"
#include "engine/engine.hpp"
#include "heuristics/heuristic.hpp"
#include "support/cli.hpp"
#include "support/error.hpp"
#include "support/table.hpp"
#include "workflows/generator.hpp"

using namespace fpsched;

int main(int argc, char** argv) {
  CliParser cli("Compare the 14 scheduling heuristics on a Montage workflow.");
  cli.add_option("tasks", "200", "number of tasks");
  cli.add_option("lambda", "0.001", "platform failure rate (1/s)");
  cli.add_option("downtime", "0", "downtime per failure (s)");
  cli.add_option("ckpt-factor", "0.1", "checkpoint cost as a fraction of task weight");
  cli.add_option("seed", "42", "generator seed");
  cli.add_option("threads", "0", "heuristic-shard worker threads (0 = all cores)");
  try {
    if (!cli.parse(argc, argv)) return 0;

    GeneratorConfig config;
    config.task_count = cli.get_count("tasks", 1);
    config.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
    config.cost_model = CostModel::proportional(cli.get_double("ckpt-factor"));
    const TaskGraph graph = generate_montage(config);
    const FailureModel model(cli.get_double("lambda"), cli.get_double("downtime"));

    std::cout << "Montage workflow: " << graph.task_count() << " tasks, "
              << graph.dag().edge_count() << " dependencies, T_inf = " << graph.total_weight()
              << " s, " << config.cost_model.describe() << "\n\n";

    const ScheduleEvaluator evaluator(graph, model);
    const engine::ExperimentEngine eng({.threads = cli.get_count("threads")});
    std::vector<HeuristicResult> results = eng.run_heuristics(evaluator, all_heuristics());
    std::sort(results.begin(), results.end(), [](const auto& a, const auto& b) {
      return a.evaluation.expected_makespan < b.evaluation.expected_makespan;
    });

    Table table({"rank", "heuristic", "E[makespan] (s)", "T/T_inf", "checkpoints"});
    for (std::size_t rank = 0; rank < results.size(); ++rank) {
      const HeuristicResult& r = results[rank];
      table.row()
          .cell(rank + 1)
          .cell(r.spec.name())
          .cell(r.evaluation.expected_makespan, 1)
          .cell(r.evaluation.ratio, 4)
          .cell(r.schedule.checkpoint_count());
    }
    table.print(std::cout);

    const HeuristicResult& best = results.front();
    std::cout << "\nWinner: " << best.spec.name() << " with " << best.schedule.checkpoint_count()
              << " checkpoints (ratio " << format_double(best.evaluation.ratio, 4) << ").\n";
    std::cout << "The paper's Section 6 finds DF-CkptW/DF-CkptC at the top and CkptPer\n"
                 "behind the structure-aware strategies — compare the ranking above.\n";
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
