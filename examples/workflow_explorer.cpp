// Interactive-grade CLI over the whole library: generate any of the four
// Pegasus-like workflows (or load one from a .wf file), run the 14
// heuristics, report the ranking, optionally validate the winner with
// Monte-Carlo simulation, and export artifacts (.wf / .dot).
//
//   $ ./workflow_explorer --workflow cybershake --tasks 300
//   $ ./workflow_explorer --load my.wf --lambda 2e-3 --simulate
#include <algorithm>
#include <fstream>
#include <iostream>

#include "core/evaluator.hpp"
#include "dag/dot.hpp"
#include "engine/engine.hpp"
#include "heuristics/heuristic.hpp"
#include "sim/trial_runner.hpp"
#include "support/cli.hpp"
#include "support/error.hpp"
#include "support/table.hpp"
#include "workflows/generator.hpp"
#include "workflows/io.hpp"

using namespace fpsched;

namespace {

WorkflowKind parse_kind(const std::string& name) {
  for (const WorkflowKind kind : all_workflow_kinds()) {
    if (to_string(kind) == name) return kind;
  }
  throw InvalidArgument("unknown workflow '" + name +
                        "' (expected Montage, Ligo, CyberShake or Genome)");
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("Explore DAG-ChkptSched heuristics on Pegasus-like workflows.");
  cli.add_option("workflow", "Montage", "Montage | Ligo | CyberShake | Genome");
  cli.add_option("tasks", "150", "number of tasks to generate");
  cli.add_option("seed", "1", "generator seed");
  cli.add_option("lambda", "-1", "failure rate; -1 picks the paper's value per workflow");
  cli.add_option("downtime", "0", "downtime per failure (s)");
  cli.add_option("ckpt-factor", "0.1", "proportional checkpoint cost factor");
  cli.add_option("ckpt-const", "-1", "constant checkpoint cost (s); overrides ckpt-factor");
  cli.add_option("load", "", "load a .wf workflow file instead of generating");
  cli.add_option("save", "", "write the workflow to this .wf file");
  cli.add_option("dot", "", "write the DAG (with winner's checkpoints) to this .dot file");
  cli.add_option("stride", "1", "N-sweep stride (1 = exhaustive, as in the paper)");
  cli.add_option("threads", "0", "heuristic-shard worker threads (0 = all cores)");
  cli.add_option("trials", "20000", "Monte-Carlo trials when --simulate is given");
  cli.add_flag("simulate", "validate the winning schedule with the fault simulator");
  try {
    if (!cli.parse(argc, argv)) return 0;
    // Validate numeric options up front, before any generation work.
    const std::size_t stride = cli.get_count("stride", 1);
    const engine::ExperimentEngine eng({.threads = cli.get_count("threads")});

    // --- Obtain the workflow. -----------------------------------------
    double lambda = cli.get_double("lambda");
    TaskGraph graph = [&] {
      if (const std::string path = cli.get_string("load"); !path.empty()) {
        return load_workflow_file(path);
      }
      const WorkflowKind kind = parse_kind(cli.get_string("workflow"));
      if (lambda <= 0.0) lambda = paper_lambda(kind);
      GeneratorConfig config;
      config.task_count = cli.get_count("tasks", 1);
      config.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
      const double constant = cli.get_double("ckpt-const");
      config.cost_model = constant >= 0.0 ? CostModel::constant(constant)
                                          : CostModel::proportional(cli.get_double("ckpt-factor"));
      return generate_workflow(kind, config);
    }();
    if (lambda <= 0.0) lambda = 1e-3;
    const FailureModel model(lambda, cli.get_double("downtime"));

    std::cout << "Workflow: " << graph.task_count() << " tasks, " << graph.dag().edge_count()
              << " dependencies, T_inf = " << graph.total_weight()
              << " s, average weight = " << graph.average_weight() << " s\n";
    std::cout << "Platform: lambda = " << model.lambda() << "/s (MTBF " << model.mtbf()
              << " s), downtime " << model.downtime() << " s\n\n";

    // --- Run all heuristics (sharded across the engine's workers). -----
    const ScheduleEvaluator evaluator(graph, model);
    HeuristicOptions options;
    options.sweep.stride = stride;
    std::vector<HeuristicResult> results =
        eng.run_heuristics(evaluator, all_heuristics(), options);
    std::sort(results.begin(), results.end(), [](const auto& a, const auto& b) {
      return a.evaluation.expected_makespan < b.evaluation.expected_makespan;
    });

    Table table({"rank", "heuristic", "E[makespan] (s)", "T/T_inf", "ckpts", "best N"});
    for (std::size_t rank = 0; rank < results.size(); ++rank) {
      const HeuristicResult& r = results[rank];
      table.row()
          .cell(rank + 1)
          .cell(r.spec.name())
          .cell(r.evaluation.expected_makespan, 1)
          .cell(r.evaluation.ratio, 4)
          .cell(r.schedule.checkpoint_count())
          .cell(r.best_budget);
    }
    table.print(std::cout);

    const HeuristicResult& winner = results.front();

    // --- Optional artifacts. --------------------------------------------
    if (const std::string path = cli.get_string("save"); !path.empty()) {
      save_workflow_file(path, graph);
      std::cout << "\nworkflow written to " << path << "\n";
    }
    if (const std::string path = cli.get_string("dot"); !path.empty()) {
      std::ofstream os(path);
      DotOptions dot;
      dot.checkpointed = winner.schedule.checkpointed;
      write_dot(os, graph.dag(), dot);
      std::cout << "DAG written to " << path << " (winner's checkpoints shaded)\n";
    }

    // --- Optional Monte-Carlo validation. --------------------------------
    if (cli.get_flag("simulate")) {
      const FaultSimulator simulator(graph, model, winner.schedule);
      const MonteCarloSummary mc =
          run_trials(simulator, {.trials = cli.get_count("trials", 1), .seed = 99});
      std::cout << "\nMonte-Carlo check of " << winner.spec.name() << ": "
                << mc.mean_makespan() << " +/- " << mc.ci95() << " s vs analytic "
                << winner.evaluation.expected_makespan << " s -> "
                << (mc.consistent_with(winner.evaluation.expected_makespan) ? "consistent"
                                                                            : "INCONSISTENT")
                << "\n";
    }
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
