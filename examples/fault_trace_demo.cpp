// Replays the paper's Section-3 worked example: the Figure-1 DAG with T3
// and T4 checkpointed, linearized as T0 T3 T1 T2 T4 T5 T6 T7. The demo
// injects failures and prints the full recovery trace, making the
// rollback semantics visible: a failure during T5 recovers T3's
// checkpoint; T6 then recovers T4; T7 re-executes T1 and T2 from scratch
// because nothing on its reverse path is checkpointed.
//
//   $ ./fault_trace_demo --seed 3 --lambda 0.004
#include <iomanip>
#include <iostream>

#include "core/evaluator.hpp"
#include "dag/dot.hpp"
#include "sim/simulator.hpp"
#include "support/cli.hpp"
#include "support/error.hpp"
#include "workflows/synthetic.hpp"

using namespace fpsched;

int main(int argc, char** argv) {
  CliParser cli("Fault-injection trace of the paper's Figure-1 example.");
  cli.add_option("lambda", "0.004", "platform failure rate (1/s)");
  cli.add_option("downtime", "5", "downtime per failure (s)");
  cli.add_option("seed", "3", "failure sampling seed");
  cli.add_option("weight", "30", "weight of every task (s)");
  cli.add_flag("dot", "also print the DAG in Graphviz DOT format");
  try {
    if (!cli.parse(argc, argv)) return 0;

    TaskGraph graph = make_paper_figure1(cli.get_double("weight"));
    graph.apply_cost_model(CostModel::proportional(0.1));
    const Schedule schedule({0, 3, 1, 2, 4, 5, 6, 7}, {0, 0, 0, 1, 1, 0, 0, 0});
    const FailureModel model(cli.get_double("lambda"), cli.get_double("downtime"));

    std::cout << "DAG: Figure 1 of the paper; schedule " << schedule.describe(graph) << "\n";
    if (cli.get_flag("dot")) {
      DotOptions options;
      options.graph_name = "figure1";
      options.checkpointed = schedule.checkpointed;
      write_dot(std::cout, graph.dag(), options);
    }

    const double analytic =
        ScheduleEvaluator(graph, model).evaluate(schedule).expected_makespan;
    std::cout << "Analytic expected makespan: " << analytic << " s\n\n";

    const FaultSimulator simulator(graph, model, schedule);
    Rng rng(static_cast<std::uint64_t>(cli.get_int("seed")));
    const SimResult run = simulator.run(rng, /*record_trace=*/true);

    std::cout << "One simulated execution (" << run.failure_count << " failures, makespan "
              << run.makespan << " s, " << run.wasted_time << " s wasted):\n";
    for (const SimEvent& event : run.trace) {
      std::cout << "  t=" << std::setw(9) << std::fixed << std::setprecision(2) << event.time
                << "  " << std::setw(11) << to_string(event.kind) << "  "
                << graph.name(event.task) << "\n";
    }
    std::cout << "\nRe-run with different --seed values to see other failure patterns;\n"
                 "--seed with no failure shows the plain fault-free timeline.\n";
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
