// Quickstart: build a small workflow by hand, schedule it with a
// heuristic, evaluate the expected makespan analytically, and check the
// answer against the fault-injection simulator.
//
//   $ ./quickstart
#include <iostream>

#include "core/evaluator.hpp"
#include "heuristics/heuristic.hpp"
#include "sim/trial_runner.hpp"
#include "workflows/task_graph.hpp"

using namespace fpsched;

int main() {
  // 1. A six-task workflow: prepare -> {simA, simB} -> merge -> render,
  //    with an independent archive task fed by prepare.
  DagBuilder builder;
  const VertexId prepare = builder.add_vertex();
  const VertexId sim_a = builder.add_vertex();
  const VertexId sim_b = builder.add_vertex();
  const VertexId merge = builder.add_vertex();
  const VertexId render = builder.add_vertex();
  const VertexId archive = builder.add_vertex();
  builder.add_edge(prepare, sim_a);
  builder.add_edge(prepare, sim_b);
  builder.add_edge(sim_a, merge);
  builder.add_edge(sim_b, merge);
  builder.add_edge(merge, render);
  builder.add_edge(prepare, archive);

  std::vector<Task> tasks(6);
  const char* names[] = {"prepare", "simA", "simB", "merge", "render", "archive"};
  const double weights[] = {120.0, 400.0, 350.0, 80.0, 150.0, 60.0};
  for (std::size_t i = 0; i < 6; ++i) {
    tasks[i].name = names[i];
    tasks[i].weight = weights[i];
  }
  TaskGraph graph(std::move(builder).build(), std::move(tasks));
  // Checkpoint and recovery both cost 10% of the task weight (the paper's
  // default cost model).
  graph.apply_cost_model(CostModel::proportional(0.1));

  // 2. The platform: failures arrive with rate 1e-3/s (MTBF ~17 min), one
  //    minute of downtime per failure.
  const FailureModel model(1e-3, 60.0);
  std::cout << "Platform MTBF: " << model.mtbf() << " s, downtime " << model.downtime()
            << " s\n";

  // 3. Run the paper's best-performing heuristic: depth-first
  //    linearization + checkpoint-the-heaviest with a swept budget.
  const ScheduleEvaluator evaluator(graph, model);
  const HeuristicResult result =
      run_heuristic(evaluator, {LinearizeMethod::depth_first, CkptStrategy::by_weight});

  std::cout << "Schedule: " << result.schedule.describe(graph) << "\n";
  std::cout << "  (a star marks a checkpointed task; budget found by the sweep: "
            << result.best_budget << ")\n";
  std::cout << "Fault-free time:    " << result.evaluation.fault_free_time << " s\n";
  std::cout << "Expected makespan:  " << result.evaluation.expected_makespan << " s\n";
  std::cout << "Ratio T/T_inf:      " << result.evaluation.ratio << "\n";

  // 4. Cross-check with 20k Monte-Carlo runs of the fault simulator.
  const FaultSimulator simulator(graph, model, result.schedule);
  const MonteCarloSummary mc = run_trials(simulator, {.trials = 20000, .seed = 7});
  std::cout << "Simulated makespan: " << mc.mean_makespan() << " +/- " << mc.ci95()
            << " s (95% CI, " << mc.makespan.count() << " trials, "
            << mc.failures.mean() << " failures/run on average)\n";
  std::cout << (mc.consistent_with(result.evaluation.expected_makespan)
                    ? "Analytic value confirmed by simulation.\n"
                    : "WARNING: simulation disagrees with the analytic value!\n");
  return 0;
}
