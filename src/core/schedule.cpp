#include "core/schedule.hpp"

#include <algorithm>
#include <sstream>

#include "dag/traversal.hpp"
#include "support/error.hpp"
#include "workflows/task_graph.hpp"

namespace fpsched {

std::size_t Schedule::checkpoint_count() const {
  return static_cast<std::size_t>(std::count_if(checkpointed.begin(), checkpointed.end(),
                                                [](std::uint8_t f) { return f != 0; }));
}

std::vector<std::uint32_t> Schedule::positions() const {
  std::vector<std::uint32_t> pos(order.size(), 0);
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = static_cast<std::uint32_t>(i);
  return pos;
}

std::string Schedule::describe(const TaskGraph& graph) const {
  std::ostringstream os;
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (i != 0) os << ' ';
    os << graph.name(order[i]);
    if (is_checkpointed(order[i])) os << '*';
  }
  return os.str();
}

Schedule make_schedule(std::vector<VertexId> order) {
  const std::size_t n = order.size();
  return Schedule(std::move(order), std::vector<std::uint8_t>(n, 0));
}

void validate_schedule(const TaskGraph& graph, const Schedule& schedule) {
  if (schedule.order.size() != graph.task_count())
    throw ScheduleError("schedule order has " + std::to_string(schedule.order.size()) +
                        " entries for " + std::to_string(graph.task_count()) + " tasks");
  if (schedule.checkpointed.size() != graph.task_count())
    throw ScheduleError("checkpoint flag vector has wrong size");
  if (!is_valid_linearization(graph.dag(), schedule.order))
    throw ScheduleError("schedule order is not a valid linearization of the DAG");
}

}  // namespace fpsched
