// A schedule in the paper's sense: a linearization of the DAG plus, for
// every task, the decision whether to checkpoint its output.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "dag/graph.hpp"

namespace fpsched {

class TaskGraph;

struct Schedule {
  /// Execution order: order[i] is the vertex executed at position i.
  std::vector<VertexId> order;
  /// checkpointed[v] != 0 iff vertex v's output is checkpointed (indexed by
  /// vertex id, not by position).
  std::vector<std::uint8_t> checkpointed;

  Schedule() = default;
  Schedule(std::vector<VertexId> order_in, std::vector<std::uint8_t> checkpointed_in)
      : order(std::move(order_in)), checkpointed(std::move(checkpointed_in)) {}

  std::size_t task_count() const { return order.size(); }

  bool is_checkpointed(VertexId v) const { return checkpointed[v] != 0; }

  std::size_t checkpoint_count() const;

  /// positions()[v] = index of vertex v in `order`.
  std::vector<std::uint32_t> positions() const;

  /// Human-readable one-liner: "T0 T3* T1 ..." (a star marks checkpoints).
  std::string describe(const TaskGraph& graph) const;
};

/// Builds a schedule with all-false checkpoint flags from an order.
Schedule make_schedule(std::vector<VertexId> order);

/// Throws ScheduleError unless `schedule.order` is a valid linearization of
/// `graph.dag()` and the flag vector has the right size.
void validate_schedule(const TaskGraph& graph, const Schedule& schedule);

}  // namespace fpsched
