#include "core/evaluator_naive.hpp"

#include <cmath>
#include <cstdint>
#include <vector>

#include "support/error.hpp"

namespace fpsched {

namespace {

// Schedule recast in position space, mirroring the paper's renumbering
// "task T_i is the i-th task executed".
struct PositionView {
  std::size_t n = 0;
  std::vector<double> w;
  std::vector<double> c;        // raw checkpoint cost
  std::vector<double> r;
  std::vector<std::uint8_t> d;  // delta_i: checkpointed?
  std::vector<std::vector<std::uint32_t>> preds;  // positions

  explicit PositionView(const TaskGraph& graph, const Schedule& schedule) {
    n = graph.task_count();
    w.resize(n);
    c.resize(n);
    r.resize(n);
    d.resize(n);
    preds.resize(n);
    std::vector<std::uint32_t> pos(n);
    for (std::size_t i = 0; i < n; ++i) pos[schedule.order[i]] = static_cast<std::uint32_t>(i);
    for (std::size_t i = 0; i < n; ++i) {
      const VertexId v = schedule.order[i];
      w[i] = graph.weight(v);
      c[i] = graph.ckpt_cost(v);
      r[i] = graph.recovery_cost(v);
      d[i] = schedule.checkpointed[v];
      for (const VertexId p : graph.dag().predecessors(v)) preds[i].push_back(pos[p]);
    }
  }
};

// Algorithm 1, literal. `tab` is the n x n state matrix for this k;
// entries: -1 unvisited, 0 not-a-member (fresh output or already recovered
// at an earlier i), 1 member to re-execute, 2 member to recover.
class Algorithm1 {
 public:
  Algorithm1(const PositionView& view, std::size_t k)
      : view_(view), k_(k), tab_(view.n, std::vector<int>(view.n, -1)) {}

  LostWorkTable run() {
    LostWorkTable result;
    result.reexecuted_weight.assign(view_.n, 0.0);
    result.recovered_cost.assign(view_.n, 0.0);
    for (std::size_t i = k_; i < view_.n; ++i) {
      traverse(i, i);
      for (std::size_t j = 0; j < k_; ++j) {
        switch (tab_[i][j]) {
          case 1: result.reexecuted_weight[i] += view_.w[j]; break;
          case 2: result.recovered_cost[i] += view_.r[j]; break;
          default: break;
        }
      }
    }
    return result;
  }

 private:
  void traverse(std::size_t l, std::size_t i) {
    for (const std::uint32_t j : view_.preds[l]) {
      switch (tab_[i][j]) {
        case 0:   // already a member of some earlier T|k_{i'}
        case 1:   // already studied for this i
        case 2:
          break;
        case -1: {
          for (std::size_t row = i + 1; row < view_.n; ++row) tab_[row][j] = 0;
          if (j < k_) {
            if (view_.d[j]) {
              tab_[i][j] = 2;
            } else {
              tab_[i][j] = 1;
              traverse(j, i);
            }
          } else {
            tab_[i][j] = 0;  // executed after the failure: output in memory
          }
          break;
        }
        default: break;
      }
    }
  }

  const PositionView& view_;
  std::size_t k_;
  std::vector<std::vector<int>> tab_;
};

}  // namespace

LostWorkTable find_lost_work_reference(const TaskGraph& graph, const Schedule& schedule,
                                       std::size_t k) {
  validate_schedule(graph, schedule);
  ensure(k < graph.task_count(), "k must be a schedule position");
  const PositionView view(graph, schedule);
  return Algorithm1(view, k).run();
}

double evaluate_reference(const TaskGraph& graph, const FailureModel& model,
                          const Schedule& schedule) {
  validate_schedule(graph, schedule);
  const PositionView view(graph, schedule);
  const std::size_t n = view.n;
  if (n == 0) return 0.0;
  const double lambda = model.lambda();
  if (lambda == 0.0) {
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) total += view.w[i] + (view.d[i] ? view.c[i] : 0.0);
    return total;
  }

  // Lost work L^i_k = W^i_k + R^i_k for every failure position k.
  std::vector<std::vector<double>> lost(n);
  for (std::size_t k = 0; k < n; ++k) {
    const LostWorkTable table = Algorithm1(view, k).run();
    lost[k].assign(n, 0.0);
    for (std::size_t i = k; i < n; ++i)
      lost[k][i] = table.reexecuted_weight[i] + table.recovered_cost[i];
  }

  const auto delta_cost = [&](std::size_t j) { return view.d[j] ? view.c[j] : 0.0; };

  // P(Z^i_k): prob[i][k+1]; column 0 is the "no failure yet" event k = -1.
  std::vector<std::vector<double>> prob(n);
  for (std::size_t i = 0; i < n; ++i) prob[i].assign(i + 1, 0.0);
  prob[0][0] = 1.0;
  for (std::size_t i = 1; i < n; ++i) {
    // k = -1: no failure during X_0 .. X_{i-1} (nothing was ever lost).
    {
      double span = 0.0;
      for (std::size_t j = 0; j < i; ++j) span += view.w[j] + delta_cost(j);
      // determinism-ok: paper-faithful O(n^4) reference, intentionally direct libm
      prob[i][0] = std::exp(-lambda * span);
    }
    // 0 <= k < i-1: property A.
    for (std::size_t k = 0; k + 1 < i; ++k) {
      double span = 0.0;
      for (std::size_t j = k + 1; j < i; ++j) span += lost[k][j] + view.w[j] + delta_cost(j);
      // determinism-ok: paper-faithful O(n^4) reference, intentionally direct libm
      prob[i][k + 1] = std::exp(-lambda * span) * prob[k + 1][k + 1];
    }
    // k = i-1: property B (complement).
    double others = 0.0;
    for (std::size_t col = 0; col < i; ++col) others += prob[i][col];
    prob[i][i] = std::max(0.0, 1.0 - others);
  }

  // E[X_i] = sum_k P(Z^i_k) E[t(L^i_k + w_i; delta_i c_i; L^i_i - L^i_k)].
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double self = lost[i][i];
    double xi = 0.0;
    for (std::size_t col = 0; col <= i; ++col) {
      if (prob[i][col] == 0.0) continue;  // avoid 0 * inf on overflowing terms
      const double lki = col == 0 ? 0.0 : lost[col - 1][i];
      xi += prob[i][col] *
            model.expected_time(lki + view.w[i], delta_cost(i), self - lki);
    }
    total += xi;
  }
  return total;
}

}  // namespace fpsched
