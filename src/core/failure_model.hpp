// The platform failure model of Section 3.
//
// p processors, each with exponentially distributed failures of rate
// lambda_proc, run every task together; the platform therefore behaves as a
// single macro-processor with failure rate lambda = p * lambda_proc and a
// constant downtime D after each failure.
//
// The key closed form (Eq. (1) of the paper, from [17, 20]) is the expected
// time to push through `w` seconds of work followed by a `c`-second
// checkpoint when every failure costs a downtime plus an `r`-second
// recovery before retrying:
//
//     E[t(w; c; r)] = e^{lambda r} (1/lambda + D) (e^{lambda (w+c)} - 1)
//
// The formula stays valid when failures strike during the checkpoint or the
// recovery. lambda = 0 (no failures) degenerates to w + c.
#pragma once

#include <cstdint>

namespace fpsched {

class FailureModel {
 public:
  /// `lambda` >= 0 (failures per second on the whole platform),
  /// `downtime` >= 0 seconds.
  explicit FailureModel(double lambda, double downtime = 0.0);

  /// Builds the platform model from per-processor MTBF (seconds) and the
  /// number of processors: lambda = p / mtbf_proc.
  static FailureModel from_processor_mtbf(double mtbf_proc, std::uint64_t processors,
                                          double downtime = 0.0);

  double lambda() const { return lambda_; }
  double downtime() const { return downtime_; }
  bool failure_free() const { return lambda_ == 0.0; }

  /// Platform MTBF (infinity when failure free).
  double mtbf() const;

  /// Eq. (1): expected completion time of (work + checkpoint) with per
  /// failure recovery `recovery`. May return +inf when lambda*(w+c) is so
  /// large that the expectation overflows a double — a meaningful signal
  /// that the segment essentially never completes.
  double expected_time(double work, double ckpt, double recovery) const;

  /// E[t_lost(w)] = 1/lambda - w / (e^{lambda w} - 1): expected time lost
  /// when a failure is known to occur within a `w`-second attempt.
  double expected_lost_time(double work) const;

  /// Probability that `duration` seconds elapse without failure.
  double success_probability(double duration) const;

 private:
  double lambda_;
  double downtime_;
};

}  // namespace fpsched
