// Optimal checkpointing of a linear chain (Toueg & Babaoglu [13], adapted
// to the paper's failure model).
//
// For a chain T_0 -> ... -> T_{n-1}, a checkpoint set splits the chain
// into segments; with exponential failures, the expected time of a segment
// ending at a checkpointed task j and starting after checkpointed task p is
//     E[t(w_{p+1} + .. + w_j ; c_j ; r_p)]
// (r_p = 0 for the first segment, which restarts from scratch). The test
// suite verifies this segment-product form against the general evaluator —
// the two accountings agree thanks to the memorylessness of the
// exponential distribution. The optimal checkpoint set is found by an
// O(n^2) dynamic program over the last checkpoint position.
#pragma once

#include <vector>

#include "core/failure_model.hpp"
#include "core/schedule.hpp"
#include "workflows/task_graph.hpp"

namespace fpsched {

/// True iff the graph is a single path T_pi(0) -> T_pi(1) -> ...; writes
/// the path (vertex ids in chain order) when provided.
bool is_chain(const Dag& dag, std::vector<VertexId>* path = nullptr);

struct ChainSolution {
  /// Positions along the chain (0-based) whose task is checkpointed.
  std::vector<std::size_t> checkpoint_positions;
  double expected_makespan = 0.0;
  Schedule schedule;
};

/// Expected makespan of a chain under a given checkpoint set (positions
/// along the chain), using the segment closed form above.
double chain_expected_time(const TaskGraph& graph, const FailureModel& model,
                           const std::vector<std::size_t>& checkpoint_positions);

/// Optimal checkpoint placement via dynamic programming (O(n^2)).
ChainSolution solve_chain_optimal(const TaskGraph& graph, const FailureModel& model);

/// Exact solver enumerating all 2^n checkpoint subsets; for tests
/// (throws above `max_tasks` = 20).
ChainSolution solve_chain_bruteforce(const TaskGraph& graph, const FailureModel& model,
                                     std::size_t max_tasks = 20);

}  // namespace fpsched
