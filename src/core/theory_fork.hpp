// Theorem 1: DAG-ChkptSched is solvable in linear time on fork graphs.
//
// A fork has one source T_src feeding n independent sinks. The sink order
// does not matter (memoryless failures), so the only decision is whether
// to checkpoint the source:
//   checkpoint:     E = E[t(w_src; c_src; 0)] + sum_i E[t(w_i; 0; r_src)]
//   no checkpoint:  E = E[t(w_src; 0; 0)]     + sum_i E[t(w_i; 0; w_src)]
// (not checkpointing behaves like c_src = 0, r_src = w_src). Checkpointing
// a sink is never useful: sinks have no successors.
#pragma once

#include <optional>

#include "core/failure_model.hpp"
#include "core/schedule.hpp"
#include "workflows/task_graph.hpp"

namespace fpsched {

/// True iff the graph is a fork: one vertex with out-degree n-1 and no
/// predecessors, all others depending exactly on it. Writes the source id
/// when provided. Single-vertex graphs count as (degenerate) forks.
bool is_fork(const Dag& dag, VertexId* source = nullptr);

struct ForkAnalysis {
  VertexId source = 0;
  double expected_with_checkpoint = 0.0;
  double expected_without_checkpoint = 0.0;
  bool checkpoint_source = false;  // decision of Theorem 1
  /// min of the two expectations.
  double optimal_expected_makespan = 0.0;
};

/// Analyzes a fork task graph; throws InvalidArgument when `graph` is not
/// a fork.
ForkAnalysis analyze_fork(const TaskGraph& graph, const FailureModel& model);

/// The optimal schedule per Theorem 1 (sinks in id order — any order is
/// optimal).
Schedule optimal_fork_schedule(const TaskGraph& graph, const FailureModel& model);

}  // namespace fpsched
