#include "core/failure_model.hpp"

#include <cmath>
#include <limits>

#include "support/error.hpp"

namespace fpsched {

FailureModel::FailureModel(double lambda, double downtime) : lambda_(lambda), downtime_(downtime) {
  ensure(std::isfinite(lambda) && lambda >= 0.0, "lambda must be finite and >= 0");
  ensure(std::isfinite(downtime) && downtime >= 0.0, "downtime must be finite and >= 0");
}

FailureModel FailureModel::from_processor_mtbf(double mtbf_proc, std::uint64_t processors,
                                               double downtime) {
  ensure(mtbf_proc > 0.0, "per-processor MTBF must be positive");
  ensure(processors >= 1, "need at least one processor");
  return FailureModel(static_cast<double>(processors) / mtbf_proc, downtime);
}

double FailureModel::mtbf() const {
  return lambda_ == 0.0 ? std::numeric_limits<double>::infinity() : 1.0 / lambda_;
}

double FailureModel::expected_time(double work, double ckpt, double recovery) const {
  ensure(work >= 0.0 && ckpt >= 0.0 && recovery >= 0.0,
         "expected_time requires non-negative durations");
  if (lambda_ == 0.0) return work + ckpt;
  // e^{lambda r} (1/lambda + D) expm1(lambda (w+c)); expm1 keeps precision
  // for small exponents, and +inf is propagated untouched for huge ones.
  return std::exp(lambda_ * recovery) * (1.0 / lambda_ + downtime_) *
         std::expm1(lambda_ * (work + ckpt));
}

double FailureModel::expected_lost_time(double work) const {
  ensure(work >= 0.0, "expected_lost_time requires non-negative work");
  if (lambda_ == 0.0) return 0.0;  // failures never happen
  if (work == 0.0) return 0.0;     // conditioning on a failure in zero time
  const double denom = std::expm1(lambda_ * work);
  return 1.0 / lambda_ - work / denom;
}

double FailureModel::success_probability(double duration) const {
  ensure(duration >= 0.0, "success_probability requires non-negative duration");
  return std::exp(-lambda_ * duration);
}

}  // namespace fpsched
