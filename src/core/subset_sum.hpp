// The NP-completeness gadget of Theorem 2: SUBSET-SUM reduces to
// DAG-ChkptSched on join graphs.
//
// Given positive integers w_1..w_n and a target X, the reduction builds a
// join with n sources and a zero-weight sink where source i has
//     w_i = w_i,   r_i = 0,
//     c_i = (X - w_i) + (1/lambda) ln(lambda w_i + e^{-lambda X}),
// with lambda >= 1 / min_i w_i so every c_i > 0. By Corollary 2 the
// expected makespan (in units of 1/lambda + D) for a non-checkpointed set
// summing to W is
//     E(W) = lambda e^{lambda X} (S - W) + e^{lambda W} - 1,   S = sum w_i,
// which is uniquely minimized at W = X with value
//     t_min = lambda e^{lambda X} (S - X) + e^{lambda X} - 1.
// Hence the scheduling instance reaches t_min iff the SUBSET-SUM instance
// is a yes-instance.
#pragma once

#include <cstdint>
#include <vector>

#include "core/failure_model.hpp"
#include "workflows/task_graph.hpp"

namespace fpsched {

struct SubsetSumInstance {
  std::vector<std::int64_t> values;  // strictly positive
  std::int64_t target = 0;           // X
};

struct SubsetSumReduction {
  TaskGraph graph;     // the join gadget (sink is the last vertex)
  FailureModel model;  // lambda chosen per the reduction, D = 0
  double target;       // X
  double sum;          // S
  double threshold;    // t_min, in units of (1/lambda + D)
};

/// Builds the scheduling instance of Theorem 2. `lambda` <= 0 picks the
/// smallest valid value 1 / min_i w_i. Throws on non-positive values or an
/// unreachable target (target <= 0 or target > S).
SubsetSumReduction reduce_subset_sum(const SubsetSumInstance& instance, double lambda = 0.0);

/// E(W) above: the gadget's expected makespan (in units of 1/lambda + D)
/// when the non-checkpointed sources sum to `non_ckpt_sum`.
double gadget_expected_time(const SubsetSumReduction& reduction, double non_ckpt_sum);

/// Decides SUBSET-SUM by brute force on the gadget: enumerates checkpoint
/// subsets, evaluates each with the Corollary-2 form, and reports whether
/// the threshold is reached (within `tolerance`, relative). Exponential;
/// for tests with small n.
bool gadget_reaches_threshold(const SubsetSumReduction& reduction, double tolerance = 1e-9);

/// Reference solver for the original instance: pseudo-polynomial DP over
/// achievable sums.
bool subset_sum_solvable(const SubsetSumInstance& instance);

}  // namespace fpsched
