#include "core/math_kernels.hpp"

#include <bit>
#include <cmath>

#include "support/error.hpp"

namespace fpsched {

std::string to_string(EvalMath math) { return math == EvalMath::exact ? "exact" : "fast"; }

EvalMath parse_eval_math(const std::string& text) {
  if (text == "exact") return EvalMath::exact;
  if (text == "fast") return EvalMath::fast;
  throw InvalidArgument("eval-math must be 'exact' or 'fast', got '" + text + "'");
}

namespace {

// --- Fast-backend scalar core (inlined into the sweeps below). ----------
//
// exp(x) = 2^k * exp(r) with k = round(x / ln 2), |r| <= ln2 / 2:
//  * k is produced by the round-to-nearest "magic number" trick — adding
//    1.5 * 2^52 forces the rounding in the FP adder and leaves k in the
//    low mantissa bits, with no float->int cast whose overflow/NaN
//    behaviour would be undefined;
//  * r = (x - k * ln2_hi) - k * ln2_lo (Cody–Waite): ln2_hi has 20
//    trailing zero bits, so k * ln2_hi is exact for |k| <= 2^20 and the
//    subtraction cancels without error;
//  * exp(r) = 1 + r + r^2 * Q(r) with Q the Taylor tail 1/2! .. 1/14!
//    (truncation < 1e-19 on the reduced range);
//  * 2^k is applied as two exact power-of-two factors 2^(k/2) * 2^(k-k/2)
//    built by bit assembly, so k down to -1074 - 52 (denormal results)
//    and up to +1025 (overflow to inf) need no special casing.
// Inputs are clamped to [-746, 710] first — outside, exp is exactly 0 or
// inf, which the scaling then produces; NaN fails both clamp compares and
// flows through the polynomial unchanged.

constexpr double kLog2e = 1.4426950408889634074;       // 1 / ln 2
constexpr double kLn2Hi = 6.93147180369123816490e-01;  // 0x3FE62E42FEE00000
constexpr double kLn2Lo = 1.90821492927058770002e-10;  // ln 2 - kLn2Hi
constexpr double kRoundMagic = 6755399441055744.0;     // 1.5 * 2^52
constexpr double kExpArgMax = 710.0;   // exp overflows beyond ~709.78
constexpr double kExpArgMin = -746.0;  // exp underflows below ~-745.13
// expm1 switches from the direct series to exp(x) - 1 at |x| = ln 2; at
// the threshold the relative-error amplification of the subtraction,
// e^x / (e^x - 1), is exactly 2, keeping the combined bound under 4 ulp.
constexpr double kExpm1Switch = 0.693147180559945286;

/// Taylor tail Q(r) = 1/2! + r/3! + ... + r^12/14!, accurate enough for
/// the reduced range |r| <= ln2/2 (next term r^13/15! < 1e-19 there), so
/// that exp(r) = 1 + r + r^2 * Q(r).
inline double tail_q14(double r) {
  double q = 1.0 / 87178291200.0;  // 1/14!
  q = q * r + 1.0 / 6227020800.0;
  q = q * r + 1.0 / 479001600.0;
  q = q * r + 1.0 / 39916800.0;
  q = q * r + 1.0 / 3628800.0;
  q = q * r + 1.0 / 362880.0;
  q = q * r + 1.0 / 40320.0;
  q = q * r + 1.0 / 5040.0;
  q = q * r + 1.0 / 720.0;
  q = q * r + 1.0 / 120.0;
  q = q * r + 1.0 / 24.0;
  q = q * r + 1.0 / 6.0;
  q = q * r + 1.0 / 2.0;
  return q;
}

/// The same tail extended to 1/16!, valid on the wider |x| < ln 2 range
/// of expm1's direct-series path (next term x^15/17! * x^2 < 6e-18 at the
/// threshold, i.e. < 0.03 ulp of expm1(ln 2)).
inline double tail_q16(double x) {
  double q = 1.0 / 20922789888000.0;  // 1/16!
  q = q * x + 1.0 / 1307674368000.0;
  q = q * x + 1.0 / 87178291200.0;
  q = q * x + 1.0 / 6227020800.0;
  q = q * x + 1.0 / 479001600.0;
  q = q * x + 1.0 / 39916800.0;
  q = q * x + 1.0 / 3628800.0;
  q = q * x + 1.0 / 362880.0;
  q = q * x + 1.0 / 40320.0;
  q = q * x + 1.0 / 5040.0;
  q = q * x + 1.0 / 720.0;
  q = q * x + 1.0 / 120.0;
  q = q * x + 1.0 / 24.0;
  q = q * x + 1.0 / 6.0;
  q = q * x + 1.0 / 2.0;
  return q;
}

struct Reduced {
  double r;   // reduced argument, |r| <= ln2/2 (+ rounding)
  double s1;  // 2^(k/2), exact power of two
  double s2;  // 2^(k - k/2)
};

inline Reduced reduce(double x) {
  double xc = x > kExpArgMax ? kExpArgMax : x;
  xc = xc < kExpArgMin ? kExpArgMin : xc;
  const double kd = xc * kLog2e + kRoundMagic;
  const double kn = kd - kRoundMagic;
  // k sits in the low mantissa bits of kd, offset by the 2^51 part of the
  // magic constant. All bit assembly is on unsigned/defined-behaviour
  // operations; a NaN input yields an arbitrary (but harmless) scale, and
  // the polynomial's NaN wins in the final product.
  const std::int64_t ki =
      static_cast<std::int64_t>(std::bit_cast<std::uint64_t>(kd) & 0xFFFFFFFFFFFFFULL) -
      (std::int64_t{1} << 51);
  const std::int64_t e1 = ki >> 1;  // floor(k / 2); C++20 defines the shift
  const std::int64_t e2 = ki - e1;
  Reduced out;
  out.r = (xc - kn * kLn2Hi) - kn * kLn2Lo;
  out.s1 = std::bit_cast<double>(static_cast<std::uint64_t>(e1 + 1023) << 52);
  out.s2 = std::bit_cast<double>(static_cast<std::uint64_t>(e2 + 1023) << 52);
  return out;
}

inline double exp_fast(double x) {
  const Reduced red = reduce(x);
  const double pm1 = red.r + (red.r * red.r) * tail_q14(red.r);
  return ((1.0 + pm1) * red.s1) * red.s2;
}

inline double expm1_fast(double x) {
  // Large path: e^x - 1 = s1 * (s2 * (pm1 + 1)) - 1. Grouping the scale
  // factors around the +1 keeps every intermediate finite until the last
  // multiply, so overflow saturates to inf and deep-negative x lands
  // exactly on -1.
  const Reduced red = reduce(x);
  const double pm1 = red.r + (red.r * red.r) * tail_q14(red.r);
  const double big = (pm1 * red.s2 + red.s2) * red.s1 - 1.0;
  // Small path (|x| < ln 2): the same series evaluated at x directly — no
  // reduction error, and the leading x term is exact, which is what kills
  // the cancellation of exp(x) - 1 near zero.
  const double small = x + (x * x) * tail_q16(x);
  return (x < kExpm1Switch) & (x > -kExpm1Switch) ? small : big;
}

// The sweeps are compiled twice on x86-64 ELF/GCC: a baseline (SSE2)
// clone and an x86-64-v3 (AVX2 + FMA) clone, dispatched once per process
// by the loader's ifunc resolver. The polynomial recurrence is latency
// bound without FMA, so the v3 clone is where the batched form pays off;
// the attribute degrades to the baseline build everywhere else. Note the
// clones may differ in the low bits between themselves (FMA contraction),
// so fast-mode output is deterministic per host/build, not across CPU
// generations — the exact backend remains the cross-host byte contract.
#if defined(__x86_64__) && defined(__ELF__) && defined(__GNUC__) && !defined(__clang__)
#define FPSCHED_MATH_CLONES __attribute__((target_clones("default", "arch=x86-64-v3")))
#else
#define FPSCHED_MATH_CLONES
#endif

FPSCHED_MATH_CLONES
void sweep_exp_fast(const double* x, double* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = exp_fast(x[i]);
}

FPSCHED_MATH_CLONES
void sweep_expm1_fast(const double* x, double* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = expm1_fast(x[i]);
}

FPSCHED_MATH_CLONES
void sweep_exp_neg_mul_fast(double lambda, const double* x, double* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = exp_fast(-lambda * x[i]);
}

}  // namespace

void vexp(const double* x, double* out, std::size_t n, EvalMath math) {
  if (math == EvalMath::exact) {
    for (std::size_t i = 0; i < n; ++i) out[i] = std::exp(x[i]);
  } else {
    sweep_exp_fast(x, out, n);
  }
}

void vexpm1(const double* x, double* out, std::size_t n, EvalMath math) {
  if (math == EvalMath::exact) {
    for (std::size_t i = 0; i < n; ++i) out[i] = std::expm1(x[i]);
  } else {
    sweep_expm1_fast(x, out, n);
  }
}

void vexp_neg_mul(double lambda, const double* x, double* out, std::size_t n, EvalMath math) {
  if (math == EvalMath::exact) {
    for (std::size_t i = 0; i < n; ++i) out[i] = std::exp(-lambda * x[i]);
  } else {
    sweep_exp_neg_mul_fast(lambda, x, out, n);
  }
}

}  // namespace fpsched
