#include "core/evaluator.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "core/math_kernels.hpp"
#include "obs/metrics.hpp"
#include "support/error.hpp"
#include "support/threading.hpp"

namespace fpsched {

namespace {

// Telemetry only: relaxed counters cached once per process (see
// obs/metrics.hpp for the never-perturbs-determinism contract).
struct EvalMetrics {
  obs::Counter& runs;
  obs::Counter& sweeps;
  obs::Counter& parallel_runs;
  obs::Histogram& kblock_passes;
};

EvalMetrics& eval_metrics() {
  static EvalMetrics* metrics = [] {
    static constexpr double kBlockBounds[] = {1.0,  2.0,   4.0,   8.0,   16.0,  32.0,
                                              64.0, 128.0, 256.0, 512.0, 1024.0, 4096.0};
    obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
    return new EvalMetrics{
        reg.counter("fpsched_eval_runs_total", "Theorem 3 evaluator invocations"),
        reg.counter("fpsched_eval_kernel_sweeps_total",
                    "batched exp/expm1 kernel sweeps issued by the evaluator"),
        reg.counter("fpsched_eval_parallel_runs_total",
                    "evaluator invocations that split passes into parallel k-blocks"),
        reg.histogram("fpsched_eval_kblock_passes",
                      "k-pass count per parallel evaluator block", kBlockBounds)};
  }();
  return *metrics;
}

}  // namespace

void EvaluatorWorkspace::resize(std::size_t n, std::size_t edges) {
  work.resize(n);
  ckpt.resize(n);
  recovery.resize(n);
  flag.resize(n);
  pred_offsets.assign(n + 1, 0);
  pred_list.resize(edges);
  position.resize(n);
  accum.assign(n, 0.0);
  sum_prob.assign(n, 0.0);
  expm1_wc.resize(n);
  self_loss.assign(n, 0.0);
}

std::vector<std::size_t> eval_block_boundaries(std::size_t n, std::size_t blocks) {
  blocks = std::max<std::size_t>(1, std::min(blocks, std::max<std::size_t>(n, 1)));
  std::vector<std::size_t> bounds(blocks + 1, 0);
  // Pass k's inner loop runs n - k times, so equal-count k ranges would
  // leave the first block with almost all the work; balance by the
  // triangular weight instead.
  const double total = 0.5 * static_cast<double>(n) * static_cast<double>(n + 1);
  std::size_t k = 0;
  double cum = 0.0;
  for (std::size_t b = 1; b < blocks; ++b) {
    const double target = total * static_cast<double>(b) / static_cast<double>(blocks);
    while (k < n && cum < target) {
      cum += static_cast<double>(n - k);
      ++k;
    }
    bounds[b] = k;
  }
  bounds[blocks] = n;
  return bounds;
}

WorkspacePool::Lease::~Lease() {
  if (workspace_ != nullptr) {
    const LockGuard lock(pool_->mutex_);
    pool_->free_.push_back(std::move(workspace_));
    --pool_->outstanding_;
  }
}

WorkspacePool::~WorkspacePool() {
  const LockGuard lock(mutex_);
  if (outstanding_ != 0) {
    // A live Lease would unlock a destroyed mutex and push into a
    // destroyed vector; fail loudly instead (see the header contract).
    std::fprintf(stderr,
                 "WorkspacePool destroyed with %zu outstanding lease(s); "
                 "every Lease must be returned before the pool dies\n",
                 outstanding_);
    std::abort();
  }
}

WorkspacePool::Lease WorkspacePool::acquire() {
  std::unique_ptr<EvaluatorWorkspace> workspace;
  {
    const LockGuard lock(mutex_);
    if (!free_.empty()) {
      workspace = std::move(free_.back());
      free_.pop_back();
    }
    ++outstanding_;
  }
  if (workspace == nullptr) workspace = std::make_unique<EvaluatorWorkspace>();
  return Lease(this, std::move(workspace));
}

ScheduleEvaluator::ScheduleEvaluator(const TaskGraph& graph, FailureModel model)
    : graph_(&graph), model_(model) {}

Evaluation ScheduleEvaluator::evaluate(const Schedule& schedule) const {
  EvaluatorWorkspace ws;
  return evaluate(schedule, ws);
}

Evaluation ScheduleEvaluator::evaluate(const Schedule& schedule, EvaluatorWorkspace& ws,
                                       const EvalParallel& parallel) const {
  validate_schedule(*graph_, schedule);
  Evaluation result;
  result.per_task_expected.clear();
  result.expected_makespan = run(schedule, ws, &result.per_task_expected, parallel);
  result.total_weight = graph_->total_weight();
  result.checkpoint_count = schedule.checkpoint_count();
  double fault_free = 0.0;
  for (VertexId v = 0; v < graph_->task_count(); ++v) {
    fault_free += graph_->weight(v);
    if (schedule.is_checkpointed(v)) fault_free += graph_->ckpt_cost(v);
  }
  result.fault_free_time = fault_free;
  result.ratio = result.total_weight > 0.0 ? result.expected_makespan / result.total_weight : 1.0;
  return result;
}

double ScheduleEvaluator::expected_makespan(const Schedule& schedule, EvaluatorWorkspace& ws,
                                            bool validate, const EvalParallel& parallel) const {
  if (validate) validate_schedule(*graph_, schedule);
  return run(schedule, ws, nullptr, parallel);
}

double ScheduleEvaluator::run(const Schedule& schedule, EvaluatorWorkspace& ws,
                              std::vector<double>* per_task,
                              const EvalParallel& parallel) const {
  const std::size_t n = graph_->task_count();
  if (per_task) per_task->assign(n, 0.0);
  if (n == 0) return 0.0;
  const Dag& dag = graph_->dag();
  ws.resize(n, dag.edge_count());

  // --- Reindex everything into position space. -------------------------
  for (std::size_t i = 0; i < n; ++i) ws.position[schedule.order[i]] = static_cast<std::uint32_t>(i);
  // Gather straight from the SoA task arrays into position space.
  const std::span<const double> weights = graph_->weights_view();
  const std::span<const double> ckpt_costs = graph_->ckpt_costs_view();
  const std::span<const double> recovery_costs = graph_->recovery_costs_view();
  for (std::size_t i = 0; i < n; ++i) {
    const VertexId v = schedule.order[i];
    ws.work[i] = weights[v];
    ws.flag[i] = schedule.checkpointed[v];
    ws.ckpt[i] = ws.flag[i] ? ckpt_costs[v] : 0.0;
    ws.recovery[i] = recovery_costs[v];
  }
  // Predecessor CSR in position space.
  for (std::size_t i = 0; i < n; ++i) {
    const VertexId v = schedule.order[i];
    ws.pred_offsets[i + 1] = static_cast<std::uint32_t>(dag.predecessors(v).size());
  }
  for (std::size_t i = 0; i < n; ++i) ws.pred_offsets[i + 1] += ws.pred_offsets[i];
  {
    std::vector<std::uint32_t> fill(ws.pred_offsets.begin(), ws.pred_offsets.end() - 1);
    for (std::size_t i = 0; i < n; ++i) {
      const VertexId v = schedule.order[i];
      for (const VertexId p : dag.predecessors(v)) ws.pred_list[fill[i]++] = ws.position[p];
    }
  }

  const double lambda = model_.lambda();
  if (lambda == 0.0) {
    // No failures: the makespan is deterministic.
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double xi = ws.work[i] + ws.ckpt[i];
      if (per_task) (*per_task)[i] = xi;
      total += xi;
    }
    eval_metrics().runs.add(1);  // no kernel sweeps on the failure-free path
    return total;
  }
  const double rate_factor = 1.0 / lambda + model_.downtime();

  // Lost work L^i_k for the current pass position k: DFS from i over lost,
  // non-checkpointed predecessors. `recovered_at[j] == k` marks tasks that
  // already entered some T|k_l with l <= i (their output is back in
  // memory), which both deduplicates the DFS and implements the exclusion
  // rule of Definition 1. The scratch arrays are parameters so parallel
  // k-blocks can walk with private state.
  const auto lost_work = [&](std::size_t i, std::int32_t k,
                             std::vector<std::int32_t>& recovered_at,
                             std::vector<std::uint32_t>& stack) -> double {
    double lost = 0.0;
    stack.clear();
    stack.push_back(static_cast<std::uint32_t>(i));
    while (!stack.empty()) {
      const std::uint32_t node = stack.back();
      stack.pop_back();
      for (std::uint32_t e = ws.pred_offsets[node]; e < ws.pred_offsets[node + 1]; ++e) {
        const std::uint32_t j = ws.pred_list[e];
        if (static_cast<std::int32_t>(j) >= k) continue;  // executed after the failure
        if (recovered_at[j] == k) continue;               // already recovered/re-executed
        recovered_at[j] = k;
        if (ws.flag[j]) {
          lost += ws.recovery[j];  // reload the checkpoint; stop the walk here
        } else {
          lost += ws.work[j];  // re-execute; its own inputs are needed too
          stack.push_back(j);
        }
      }
    }
    return lost;
  };

  // --- Pass k = -1: no failure has happened yet. -----------------------
  // Zero-probability events are skipped everywhere below: their Eq.-(1)
  // term can overflow to +inf on failure-dominated segments and 0 * inf
  // would poison the sum with a NaN.
  //
  // expm1(lambda (w_i + delta_i c_i)) is memoized here because it is the
  // exact factor every later pass needs whenever L^i_k == 0 — with no
  // lost work, lambda * (0.0 + w_i + c_i) has the same bit pattern as
  // lambda * (w_i + c_i) and e^{-lambda * 0} == 1.0, so reusing the
  // memoized value is bit-identical while skipping both transcendentals
  // on the (dominant) zero-loss pairs of the O(n^2) loop below.
  //
  // Like every pass below, the transcendental arguments are staged into
  // contiguous buffers and handed to the batched kernels (math_kernels.hpp)
  // in one sweep each; the exact backend makes this bit-identical to the
  // historical element-wise loop.
  const EvalMath math = parallel.math;
  EvaluatorWorkspace::EvalBlockScratch& serial_blk = ws.pass_scratch;
  serial_blk.q.resize(n);
  serial_blk.a.resize(n);
  serial_blk.b.resize(n);
  {
    double elapsed = 0.0;  // sum of w_j + delta_j c_j, j < i
    for (std::size_t i = 0; i < n; ++i) {
      ws.expm1_wc[i] = lambda * (ws.work[i] + ws.ckpt[i]);
      serial_blk.q[i] = elapsed;
      elapsed += ws.work[i] + ws.ckpt[i];
    }
    vexpm1(ws.expm1_wc.data(), ws.expm1_wc.data(), n, math);
    vexp_neg_mul(lambda, serial_blk.q.data(), serial_blk.q.data(), n, math);
    for (std::size_t i = 0; i < n; ++i) {
      const double p = serial_blk.q[i];
      if (p > 0.0) {
        ws.accum[i] += p * ws.expm1_wc[i];
        ws.sum_prob[i] += p;
      }
    }
  }

  // --- Passes k = 0..n-1: last failure during X_k. ----------------------
  //
  // Phase A of pass k (stage_pass): walk the lost-work DFS, stage every
  // record's kernel arguments — S^i_k in q, L^i_k in a — then batch the
  // pass's transcendentals as three sweeps: q <- e^{-lambda q} for all
  // records, and for the compacted L > 0 subset a <- e^{-lambda L},
  // b <- expm1(lambda (L + w_i + delta_i c_i)). The staged expressions and
  // guards mirror the historical element-wise code token for token, so
  // the combine consumes bit-identical factors under the exact backend.
  // Returns one past the last record written.
  const auto stage_pass = [&](std::size_t k, EvaluatorWorkspace::EvalBlockScratch& blk,
                              std::size_t r0) -> std::size_t {
    double span = 0.0;  // S^i_k = sum_{k<j<i} (L^j_k + w_j + delta_j c_j)
    std::size_t r = r0;
    for (std::size_t i = k; i < n; ++i) {
      const double lost =
          lost_work(i, static_cast<std::int32_t>(k), blk.recovered_at, blk.dfs_stack);
      if (i == k) {
        ws.self_loss[k] = lost;  // L^k_k; blocks never overlap on k
        continue;
      }
      blk.q[r] = span;  // staged argument, swept in place below
      blk.a[r] = lost;  // staged L, rewritten by the compaction below
      ++r;
      span += lost + ws.work[i] + ws.ckpt[i];
    }
    vexp_neg_mul(lambda, blk.q.data() + r0, blk.q.data() + r0, r - r0, math);
    blk.lost_idx.clear();
    blk.arg_a.clear();
    blk.arg_b.clear();
    for (std::size_t j = r0; j < r; ++j) {
      const double lost = blk.a[j];
      if (lost == 0.0) {
        blk.a[j] = -1.0;  // sentinel: combine reuses the memoized expm1_wc[i]
        blk.b[j] = 0.0;
      } else if (blk.q[j] > 0.0) {
        const std::size_t i = k + 1 + (j - r0);
        blk.lost_idx.push_back(static_cast<std::uint32_t>(j));
        blk.arg_a.push_back(lost);
        blk.arg_b.push_back(lambda * (lost + ws.work[i] + ws.ckpt[i]));
      } else {
        blk.a[j] = 0.0;  // q == 0 forces p == 0; never read
        blk.b[j] = 0.0;
      }
    }
    vexp_neg_mul(lambda, blk.arg_a.data(), blk.arg_a.data(), blk.arg_a.size(), math);
    vexpm1(blk.arg_b.data(), blk.arg_b.data(), blk.arg_b.size(), math);
    for (std::size_t j = 0; j < blk.lost_idx.size(); ++j) {
      blk.a[blk.lost_idx[j]] = blk.arg_a[j];
      blk.b[blk.lost_idx[j]] = blk.arg_b[j];
    }
    return r;
  };

  // Accumulation of pass k from its staged factors, in the fixed serial
  // order (k-major, i ascending) — the same sequence of floating-point
  // operations regardless of how phase A was scheduled.
  // P(Z^{k+1}_k) = 1 - sum over earlier failure positions (property B).
  const auto combine_pass = [&](std::size_t k,
                                const EvaluatorWorkspace::EvalBlockScratch& blk,
                                std::size_t r0) -> std::size_t {
    const double base = k + 1 < n ? std::clamp(1.0 - ws.sum_prob[k + 1], 0.0, 1.0) : 0.0;
    std::size_t r = r0;
    for (std::size_t i = k + 1; i < n; ++i, ++r) {
      if (base > 0.0) {
        const double p = blk.q[r] * base;
        if (p > 0.0) {
          ws.accum[i] += blk.a[r] < 0.0 ? p * ws.expm1_wc[i] : p * blk.a[r] * blk.b[r];
          ws.sum_prob[i] += p;
        }
      }
    }
    return r;
  };

  const std::size_t eval_threads = std::min(parallel.threads, n);
  std::size_t staged_passes = 0;  // each staged pass issues 3 kernel sweeps
  if (eval_threads <= 1) {
    EvaluatorWorkspace::EvalBlockScratch& blk = serial_blk;
    blk.recovered_at.assign(n, -1);
    blk.dfs_stack.clear();
    blk.dfs_stack.reserve(n);
    for (std::size_t k = 0; k < n; ++k) {
      // In the serial order base is already final before pass k starts,
      // so a dead pass (probability mass exhausted, or k == n-1 with no
      // later tasks) can skip staging entirely: only L^k_k is still
      // needed, and the skipped DFS epoch marks are never read again.
      const double base =
          k + 1 < n ? std::clamp(1.0 - ws.sum_prob[k + 1], 0.0, 1.0) : 0.0;
      if (base == 0.0) {
        ws.self_loss[k] =
            lost_work(k, static_cast<std::int32_t>(k), blk.recovered_at, blk.dfs_stack);
        continue;
      }
      stage_pass(k, blk, 0);
      combine_pass(k, blk, 0);
      ++staged_passes;
    }
  } else {
    // Parallel k-blocks. Everything a pass computes except the final
    // accumulation — the lost-work walks, S^i_k, and the exp/expm1
    // factors — is independent of other passes (base is the only
    // cross-pass input, and it only scales the accumulation), so phase A
    // evaluates whole passes concurrently on private scratch.
    const std::vector<std::size_t> bounds = eval_block_boundaries(n, eval_threads);
    const std::size_t block_count = bounds.size() - 1;
    staged_passes = n;  // parallel phase A stages every pass, dead or not
    eval_metrics().parallel_runs.add(1);
    for (std::size_t bi = 0; bi < block_count; ++bi) {
      eval_metrics().kblock_passes.observe(static_cast<double>(bounds[bi + 1] - bounds[bi]));
    }
    ws.blocks.resize(block_count);
    const auto run_block = [&](std::size_t bi) {
      EvaluatorWorkspace::EvalBlockScratch& blk = ws.blocks[bi];
      blk.k_begin = bounds[bi];
      blk.k_end = bounds[bi + 1];
      std::size_t records = 0;
      for (std::size_t k = blk.k_begin; k < blk.k_end; ++k) records += n - 1 - k;
      blk.q.resize(records);
      blk.a.resize(records);
      blk.b.resize(records);
      blk.recovered_at.assign(n, -1);
      blk.dfs_stack.clear();
      blk.dfs_stack.reserve(n);
      std::size_t r = 0;
      for (std::size_t k = blk.k_begin; k < blk.k_end; ++k) r = stage_pass(k, blk, r);
    };
    if (parallel.pool != nullptr) {
      TaskGroup group(*parallel.pool);
      for (std::size_t bi = 0; bi < block_count; ++bi) group.run([&run_block, bi] { run_block(bi); });
      group.wait();
    } else {
      parallel_for(0, block_count, run_block, block_count);
    }

    // Serial fixed-order combine: replay the contributions in exactly the
    // serial pass order (k-major, i ascending), so every accum[i] and
    // sum_prob[i] — and through sum_prob every base — is produced by the
    // same sequence of floating-point operations as the serial loop
    // above. Bit-identical for any thread or block count by construction;
    // no transcendentals left here, so this O(n^2) tail stays cheap.
    for (std::size_t bi = 0; bi < block_count; ++bi) {
      const EvaluatorWorkspace::EvalBlockScratch& blk = ws.blocks[bi];
      std::size_t r = 0;
      for (std::size_t k = blk.k_begin; k < blk.k_end; ++k) r = combine_pass(k, blk, r);
    }
  }

  // --- Combine: E[X_i] = e^{lambda L^i_i} (1/lambda + D) accum[i]. ------
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    // accum[i] == 0 happens only when every reachable event has zero cost
    // (or its probability underflowed); guard against inf * 0. The
    // self_loss == 0 branch elides e^{lambda * 0} == 1.0 bit-identically.
    double xi = 0.0;
    if (ws.accum[i] != 0.0 && ws.self_loss[i] == 0.0) {
      xi = rate_factor * ws.accum[i];
    } else if (ws.accum[i] != 0.0) {
      // determinism-ok: serial O(n) combine tail, not a pass sweep (staging would cost more)
      xi = std::exp(lambda * ws.self_loss[i]) * rate_factor * ws.accum[i];
    }
    if (per_task) (*per_task)[i] = xi;
    total += xi;
  }
  EvalMetrics& metrics = eval_metrics();
  metrics.runs.add(1);
  metrics.sweeps.add(2 + 3 * staged_passes);  // pass -1 issues 2, each staged pass 3
  return total;
}

}  // namespace fpsched
