#include "core/evaluator.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"

namespace fpsched {

void EvaluatorWorkspace::resize(std::size_t n, std::size_t edges) {
  work.resize(n);
  ckpt.resize(n);
  recovery.resize(n);
  flag.resize(n);
  pred_offsets.assign(n + 1, 0);
  pred_list.resize(edges);
  position.resize(n);
  accum.assign(n, 0.0);
  sum_prob.assign(n, 0.0);
  expm1_wc.resize(n);
  self_loss.assign(n, 0.0);
  recovered_at.assign(n, -1);
  dfs_stack.clear();
  dfs_stack.reserve(n);
}

ScheduleEvaluator::ScheduleEvaluator(const TaskGraph& graph, FailureModel model)
    : graph_(&graph), model_(model) {}

Evaluation ScheduleEvaluator::evaluate(const Schedule& schedule) const {
  EvaluatorWorkspace ws;
  return evaluate(schedule, ws);
}

Evaluation ScheduleEvaluator::evaluate(const Schedule& schedule, EvaluatorWorkspace& ws) const {
  validate_schedule(*graph_, schedule);
  Evaluation result;
  result.per_task_expected.clear();
  result.expected_makespan = run(schedule, ws, &result.per_task_expected);
  result.total_weight = graph_->total_weight();
  result.checkpoint_count = schedule.checkpoint_count();
  double fault_free = 0.0;
  for (VertexId v = 0; v < graph_->task_count(); ++v) {
    fault_free += graph_->weight(v);
    if (schedule.is_checkpointed(v)) fault_free += graph_->ckpt_cost(v);
  }
  result.fault_free_time = fault_free;
  result.ratio = result.total_weight > 0.0 ? result.expected_makespan / result.total_weight : 1.0;
  return result;
}

double ScheduleEvaluator::expected_makespan(const Schedule& schedule, EvaluatorWorkspace& ws,
                                            bool validate) const {
  if (validate) validate_schedule(*graph_, schedule);
  return run(schedule, ws, nullptr);
}

double ScheduleEvaluator::run(const Schedule& schedule, EvaluatorWorkspace& ws,
                              std::vector<double>* per_task) const {
  const std::size_t n = graph_->task_count();
  if (per_task) per_task->assign(n, 0.0);
  if (n == 0) return 0.0;
  const Dag& dag = graph_->dag();
  ws.resize(n, dag.edge_count());

  // --- Reindex everything into position space. -------------------------
  for (std::size_t i = 0; i < n; ++i) ws.position[schedule.order[i]] = static_cast<std::uint32_t>(i);
  for (std::size_t i = 0; i < n; ++i) {
    const VertexId v = schedule.order[i];
    ws.work[i] = graph_->weight(v);
    ws.flag[i] = schedule.checkpointed[v];
    ws.ckpt[i] = ws.flag[i] ? graph_->ckpt_cost(v) : 0.0;
    ws.recovery[i] = graph_->recovery_cost(v);
  }
  // Predecessor CSR in position space.
  for (std::size_t i = 0; i < n; ++i) {
    const VertexId v = schedule.order[i];
    ws.pred_offsets[i + 1] = static_cast<std::uint32_t>(dag.predecessors(v).size());
  }
  for (std::size_t i = 0; i < n; ++i) ws.pred_offsets[i + 1] += ws.pred_offsets[i];
  {
    std::vector<std::uint32_t> fill(ws.pred_offsets.begin(), ws.pred_offsets.end() - 1);
    for (std::size_t i = 0; i < n; ++i) {
      const VertexId v = schedule.order[i];
      for (const VertexId p : dag.predecessors(v)) ws.pred_list[fill[i]++] = ws.position[p];
    }
  }

  const double lambda = model_.lambda();
  if (lambda == 0.0) {
    // No failures: the makespan is deterministic.
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double xi = ws.work[i] + ws.ckpt[i];
      if (per_task) (*per_task)[i] = xi;
      total += xi;
    }
    return total;
  }
  const double rate_factor = 1.0 / lambda + model_.downtime();

  // Lost work L^i_k for the current pass position k: DFS from i over lost,
  // non-checkpointed predecessors. `recovered_at[j] == k` marks tasks that
  // already entered some T|k_l with l <= i (their output is back in
  // memory), which both deduplicates the DFS and implements the exclusion
  // rule of Definition 1.
  const auto lost_work = [&](std::size_t i, std::int32_t k) -> double {
    double lost = 0.0;
    auto& stack = ws.dfs_stack;
    stack.clear();
    stack.push_back(static_cast<std::uint32_t>(i));
    while (!stack.empty()) {
      const std::uint32_t node = stack.back();
      stack.pop_back();
      for (std::uint32_t e = ws.pred_offsets[node]; e < ws.pred_offsets[node + 1]; ++e) {
        const std::uint32_t j = ws.pred_list[e];
        if (static_cast<std::int32_t>(j) >= k) continue;  // executed after the failure
        if (ws.recovered_at[j] == k) continue;            // already recovered/re-executed
        ws.recovered_at[j] = k;
        if (ws.flag[j]) {
          lost += ws.recovery[j];  // reload the checkpoint; stop the walk here
        } else {
          lost += ws.work[j];  // re-execute; its own inputs are needed too
          stack.push_back(j);
        }
      }
    }
    return lost;
  };

  // --- Pass k = -1: no failure has happened yet. -----------------------
  // Zero-probability events are skipped everywhere below: their Eq.-(1)
  // term can overflow to +inf on failure-dominated segments and 0 * inf
  // would poison the sum with a NaN.
  //
  // expm1(lambda (w_i + delta_i c_i)) is memoized here because it is the
  // exact factor every later pass needs whenever L^i_k == 0 — with no
  // lost work, lambda * (0.0 + w_i + c_i) has the same bit pattern as
  // lambda * (w_i + c_i) and e^{-lambda * 0} == 1.0, so reusing the
  // memoized value is bit-identical while skipping both transcendentals
  // on the (dominant) zero-loss pairs of the O(n^2) loop below.
  {
    double elapsed = 0.0;  // sum of w_j + delta_j c_j, j < i
    for (std::size_t i = 0; i < n; ++i) {
      ws.expm1_wc[i] = std::expm1(lambda * (ws.work[i] + ws.ckpt[i]));
      const double p = std::exp(-lambda * elapsed);
      if (p > 0.0) {
        ws.accum[i] += p * ws.expm1_wc[i];
        ws.sum_prob[i] += p;
      }
      elapsed += ws.work[i] + ws.ckpt[i];
    }
  }

  // --- Passes k = 0..n-1: last failure during X_k. ----------------------
  for (std::size_t k = 0; k < n; ++k) {
    // P(Z^{k+1}_k) = 1 - sum over earlier failure positions (property B).
    const double base =
        k + 1 < n ? std::clamp(1.0 - ws.sum_prob[k + 1], 0.0, 1.0) : 0.0;
    double span = 0.0;  // S^i_k = sum_{k<j<i} (L^j_k + w_j + delta_j c_j)
    for (std::size_t i = k; i < n; ++i) {
      const double lost = lost_work(i, static_cast<std::int32_t>(k));
      if (i == k) {
        ws.self_loss[k] = lost;  // L^k_k, needed by every E[X_k | Z^k_*]
        continue;
      }
      if (base > 0.0) {
        const double p = std::exp(-lambda * span) * base;
        if (p > 0.0) {
          ws.accum[i] += lost == 0.0
                             ? p * ws.expm1_wc[i]
                             : p * std::exp(-lambda * lost) *
                                   std::expm1(lambda * (lost + ws.work[i] + ws.ckpt[i]));
          ws.sum_prob[i] += p;
        }
      }
      span += lost + ws.work[i] + ws.ckpt[i];
    }
  }

  // --- Combine: E[X_i] = e^{lambda L^i_i} (1/lambda + D) accum[i]. ------
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    // accum[i] == 0 happens only when every reachable event has zero cost
    // (or its probability underflowed); guard against inf * 0. The
    // self_loss == 0 branch elides e^{lambda * 0} == 1.0 bit-identically.
    const double xi = ws.accum[i] == 0.0      ? 0.0
                      : ws.self_loss[i] == 0.0 ? rate_factor * ws.accum[i]
                                                : std::exp(lambda * ws.self_loss[i]) *
                                                      rate_factor * ws.accum[i];
    if (per_task) (*per_task)[i] = xi;
    total += xi;
  }
  return total;
}

}  // namespace fpsched
