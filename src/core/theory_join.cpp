#include "core/theory_join.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"

namespace fpsched {

bool is_join(const Dag& dag, VertexId* sink_out) {
  const std::size_t n = dag.vertex_count();
  if (n == 0) return false;
  if (n == 1) {
    if (sink_out) *sink_out = 0;
    return true;
  }
  const auto sinks = dag.sinks();
  if (sinks.size() != 1) return false;
  const VertexId sink = sinks.front();
  if (dag.in_degree(sink) != n - 1) return false;
  for (VertexId v = 0; v < n; ++v) {
    if (v == sink) continue;
    if (dag.in_degree(v) != 0) return false;
    const auto succs = dag.successors(v);
    if (succs.size() != 1 || succs.front() != sink) return false;
  }
  if (sink_out) *sink_out = sink;
  return true;
}

double join_g_value(const TaskGraph& graph, const FailureModel& model, VertexId source) {
  const double lambda = model.lambda();
  const double w = graph.weight(source);
  const double c = graph.ckpt_cost(source);
  const double r = graph.recovery_cost(source);
  return std::exp(-lambda * (w + c + r)) + std::exp(-lambda * r) - std::exp(-lambda * (w + c));
}

namespace {

struct JoinView {
  VertexId sink = 0;
  std::vector<VertexId> sources;  // all non-sink vertices, ascending id
};

JoinView join_view(const TaskGraph& graph) {
  JoinView view;
  ensure(is_join(graph.dag(), &view.sink), "this routine requires a join graph");
  for (VertexId v = 0; v < graph.task_count(); ++v) {
    if (v != view.sink) view.sources.push_back(v);
  }
  return view;
}

/// Checkpointed sources ordered by non-increasing g (Lemma 2), ids break
/// ties for determinism.
std::vector<VertexId> g_sorted(const TaskGraph& graph, const FailureModel& model,
                               std::vector<VertexId> ckpt) {
  std::stable_sort(ckpt.begin(), ckpt.end(), [&](VertexId a, VertexId b) {
    const double ga = join_g_value(graph, model, a);
    const double gb = join_g_value(graph, model, b);
    if (ga != gb) return ga > gb;
    return a < b;
  });
  return ckpt;
}

}  // namespace

double join_expected_time(const TaskGraph& graph, const FailureModel& model,
                          const std::vector<VertexId>& checkpointed_sources) {
  const JoinView view = join_view(graph);
  for (const VertexId v : checkpointed_sources)
    ensure(v != view.sink && v < graph.task_count(), "checkpointed set must contain sources");

  const std::vector<VertexId> ckpt = g_sorted(graph, model, checkpointed_sources);
  std::vector<std::uint8_t> is_ckpt(graph.task_count(), 0);
  for (const VertexId v : ckpt) is_ckpt[v] = 1;

  // Phase-2 fault-free work: non-checkpointed sources plus the sink.
  double work_nckpt = graph.weight(view.sink);
  for (const VertexId v : view.sources) {
    if (!is_ckpt[v]) work_nckpt += graph.weight(v);
  }
  double recoveries = 0.0;
  for (const VertexId v : ckpt) recoveries += graph.recovery_cost(v);

  const double lambda = model.lambda();
  if (lambda == 0.0) {
    double total = work_nckpt;
    for (const VertexId v : ckpt) total += graph.weight(v) + graph.ckpt_cost(v);
    return total;
  }
  const double rate_factor = 1.0 / lambda + model.downtime();

  // Phase 1: each checkpointed source is E[t(w_i; c_i; 0)].
  double phase1 = 0.0;
  for (const VertexId v : ckpt)
    phase1 += rate_factor * std::expm1(lambda * (graph.weight(v) + graph.ckpt_cost(v)));

  // t0: phase-2 expectation once every recovery is needed.
  const double t0 = rate_factor * std::expm1(lambda * (work_nckpt + recoveries));
  if (ckpt.empty()) return t0;

  // Events E_k: the last phase-1 failure hit the k-th checkpointed task
  // (E_1 also covers "no failure at all"). q_k from the proof of Lemma 2.
  const std::size_t m = ckpt.size();
  std::vector<double> wc(m);
  for (std::size_t k = 0; k < m; ++k)
    wc[k] = graph.weight(ckpt[k]) + graph.ckpt_cost(ckpt[k]);

  double phase2 = 0.0;
  double suffix_wc = 0.0;  // sum of w+c over sigma(k+1..m)
  std::vector<double> prefix_r(m, 0.0);
  for (std::size_t k = 1; k < m; ++k)
    prefix_r[k] = prefix_r[k - 1] + graph.recovery_cost(ckpt[k - 1]);
  for (std::size_t k = m; k-- > 0;) {
    const double q = k == 0 ? std::exp(-lambda * suffix_wc)
                            : (-std::expm1(-lambda * wc[k])) * std::exp(-lambda * suffix_wc);
    const double attempt = work_nckpt + prefix_r[k];
    const double p = std::exp(-lambda * attempt);
    phase2 += q * (1.0 - p) * (1.0 / lambda + model.downtime() + t0);
    suffix_wc += wc[k];
  }
  return phase1 + phase2;
}

double join_expected_time_zero_recovery(const TaskGraph& graph, const FailureModel& model,
                                        const std::vector<VertexId>& checkpointed_sources) {
  const JoinView view = join_view(graph);
  std::vector<std::uint8_t> is_ckpt(graph.task_count(), 0);
  for (const VertexId v : checkpointed_sources) is_ckpt[v] = 1;
  for (const VertexId v : view.sources)
    ensure(!is_ckpt[v] || graph.recovery_cost(v) == 0.0,
           "Corollary 2 requires r_i = 0 for checkpointed sources");

  const double lambda = model.lambda();
  double work_nckpt = graph.weight(view.sink);
  for (const VertexId v : view.sources)
    if (!is_ckpt[v]) work_nckpt += graph.weight(v);
  if (lambda == 0.0) {
    double total = work_nckpt;
    for (const VertexId v : view.sources)
      if (is_ckpt[v]) total += graph.weight(v) + graph.ckpt_cost(v);
    return total;
  }
  const double rate_factor = 1.0 / lambda + model.downtime();
  double total = rate_factor * std::expm1(lambda * work_nckpt);
  for (const VertexId v : view.sources) {
    if (is_ckpt[v])
      total += rate_factor * std::expm1(lambda * (graph.weight(v) + graph.ckpt_cost(v)));
  }
  return total;
}

Schedule join_schedule(const TaskGraph& graph, const FailureModel& model,
                       const std::vector<VertexId>& checkpointed_sources) {
  const JoinView view = join_view(graph);
  const std::vector<VertexId> ckpt = g_sorted(graph, model, checkpointed_sources);
  std::vector<std::uint8_t> is_ckpt(graph.task_count(), 0);
  for (const VertexId v : ckpt) is_ckpt[v] = 1;

  std::vector<VertexId> order = ckpt;
  for (const VertexId v : view.sources)
    if (!is_ckpt[v]) order.push_back(v);
  order.push_back(view.sink);

  Schedule schedule(std::move(order), std::move(is_ckpt));
  return schedule;
}

JoinSolution solve_join_equal_costs(const TaskGraph& graph, const FailureModel& model) {
  const JoinView view = join_view(graph);
  ensure(!view.sources.empty(), "join solver needs at least one source");
  const double c0 = graph.ckpt_cost(view.sources.front());
  const double r0 = graph.recovery_cost(view.sources.front());
  for (const VertexId v : view.sources) {
    ensure(graph.ckpt_cost(v) == c0 && graph.recovery_cost(v) == r0,
           "Corollary 1 requires uniform checkpoint and recovery costs");
  }

  // Decreasing weight = non-increasing g when costs are uniform.
  std::vector<VertexId> by_weight = view.sources;
  std::stable_sort(by_weight.begin(), by_weight.end(), [&](VertexId a, VertexId b) {
    if (graph.weight(a) != graph.weight(b)) return graph.weight(a) > graph.weight(b);
    return a < b;
  });

  JoinSolution best;
  bool first = true;
  for (std::size_t count = 0; count <= by_weight.size(); ++count) {
    const std::vector<VertexId> ckpt(by_weight.begin(), by_weight.begin() + count);
    const double expected = join_expected_time(graph, model, ckpt);
    if (first || expected < best.expected_makespan) {
      first = false;
      best.checkpointed_sources = ckpt;
      best.expected_makespan = expected;
    }
  }
  best.schedule = join_schedule(graph, model, best.checkpointed_sources);
  return best;
}

JoinSolution solve_join_bruteforce(const TaskGraph& graph, const FailureModel& model,
                                   std::size_t max_sources) {
  const JoinView view = join_view(graph);
  ensure(view.sources.size() <= max_sources,
         "brute-force join solver limited to " + std::to_string(max_sources) + " sources");

  JoinSolution best;
  bool first = true;
  const std::size_t m = view.sources.size();
  for (std::uint64_t mask = 0; mask < (1ull << m); ++mask) {
    std::vector<VertexId> ckpt;
    for (std::size_t b = 0; b < m; ++b) {
      if (mask & (1ull << b)) ckpt.push_back(view.sources[b]);
    }
    const double expected = join_expected_time(graph, model, ckpt);
    if (first || expected < best.expected_makespan) {
      first = false;
      best.checkpointed_sources = std::move(ckpt);
      best.expected_makespan = expected;
    }
  }
  best.schedule = join_schedule(graph, model, best.checkpointed_sources);
  return best;
}

}  // namespace fpsched
