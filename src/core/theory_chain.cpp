#include "core/theory_chain.hpp"

#include <algorithm>
#include <limits>

#include "support/error.hpp"

namespace fpsched {

bool is_chain(const Dag& dag, std::vector<VertexId>* path) {
  const std::size_t n = dag.vertex_count();
  if (n == 0) return false;
  const auto sources = dag.sources();
  if (sources.size() != 1) return false;
  std::vector<VertexId> chain;
  chain.reserve(n);
  VertexId v = sources.front();
  for (;;) {
    if (dag.in_degree(v) > 1) return false;
    chain.push_back(v);
    const auto succs = dag.successors(v);
    if (succs.empty()) break;
    if (succs.size() != 1) return false;
    v = succs.front();
  }
  if (chain.size() != n) return false;
  if (path) *path = std::move(chain);
  return true;
}

namespace {

struct ChainView {
  std::vector<VertexId> path;
  std::vector<double> prefix_weight;  // prefix_weight[i] = w_0 + ... + w_{i-1}

  ChainView(const TaskGraph& graph) {
    ensure(is_chain(graph.dag(), &path), "this routine requires a chain graph");
    prefix_weight.assign(path.size() + 1, 0.0);
    for (std::size_t i = 0; i < path.size(); ++i)
      prefix_weight[i + 1] = prefix_weight[i] + graph.weight(path[i]);
  }

  double segment_weight(std::size_t from, std::size_t to_inclusive) const {
    return prefix_weight[to_inclusive + 1] - prefix_weight[from];
  }
};

Schedule chain_schedule(const ChainView& view,
                        const std::vector<std::size_t>& checkpoint_positions) {
  Schedule schedule = make_schedule(view.path);
  for (const std::size_t pos : checkpoint_positions) {
    ensure(pos < view.path.size(), "checkpoint position out of range");
    schedule.checkpointed[view.path[pos]] = 1;
  }
  return schedule;
}

}  // namespace

double chain_expected_time(const TaskGraph& graph, const FailureModel& model,
                           const std::vector<std::size_t>& checkpoint_positions) {
  const ChainView view(graph);
  std::vector<std::size_t> marks = checkpoint_positions;
  std::sort(marks.begin(), marks.end());
  marks.erase(std::unique(marks.begin(), marks.end()), marks.end());
  for (const std::size_t pos : marks) ensure(pos < view.path.size(), "position out of range");

  double total = 0.0;
  std::size_t segment_start = 0;
  double recovery = 0.0;  // r of the previous checkpoint (0: restart anew)
  for (const std::size_t pos : marks) {
    total += model.expected_time(view.segment_weight(segment_start, pos),
                                 graph.ckpt_cost(view.path[pos]), recovery);
    recovery = graph.recovery_cost(view.path[pos]);
    segment_start = pos + 1;
  }
  if (segment_start < view.path.size()) {
    total += model.expected_time(view.segment_weight(segment_start, view.path.size() - 1), 0.0,
                                 recovery);
  }
  return total;
}

ChainSolution solve_chain_optimal(const TaskGraph& graph, const FailureModel& model) {
  const ChainView view(graph);
  const std::size_t n = view.path.size();

  // best_at[j]: minimal expected time to complete tasks 0..j with task j
  // checkpointed (including its checkpoint cost). previous[j]: previous
  // checkpointed position (n = none).
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> best_at(n, kInf);
  std::vector<std::size_t> previous(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    // First segment: restart from scratch on failure (recovery 0).
    best_at[j] =
        model.expected_time(view.segment_weight(0, j), graph.ckpt_cost(view.path[j]), 0.0);
    for (std::size_t p = 0; p < j; ++p) {
      if (best_at[p] == kInf) continue;
      const double candidate =
          best_at[p] + model.expected_time(view.segment_weight(p + 1, j),
                                           graph.ckpt_cost(view.path[j]),
                                           graph.recovery_cost(view.path[p]));
      if (candidate < best_at[j]) {
        best_at[j] = candidate;
        previous[j] = p;
      }
    }
  }

  // Close the chain with an unmarked tail segment (or none).
  double best_total = model.expected_time(view.segment_weight(0, n - 1), 0.0, 0.0);
  std::size_t best_last = n;  // n = no checkpoint at all
  for (std::size_t p = 0; p < n; ++p) {
    double candidate = best_at[p];
    if (p + 1 < n)
      candidate += model.expected_time(view.segment_weight(p + 1, n - 1), 0.0,
                                       graph.recovery_cost(view.path[p]));
    if (candidate < best_total) {
      best_total = candidate;
      best_last = p;
    }
  }

  ChainSolution solution;
  solution.expected_makespan = best_total;
  for (std::size_t p = best_last; p != n; p = previous[p]) {
    solution.checkpoint_positions.push_back(p);
    if (previous[p] == n) break;
  }
  std::reverse(solution.checkpoint_positions.begin(), solution.checkpoint_positions.end());
  solution.schedule = chain_schedule(view, solution.checkpoint_positions);
  return solution;
}

ChainSolution solve_chain_bruteforce(const TaskGraph& graph, const FailureModel& model,
                                     std::size_t max_tasks) {
  const ChainView view(graph);
  const std::size_t n = view.path.size();
  ensure(n <= max_tasks,
         "brute-force chain solver limited to " + std::to_string(max_tasks) + " tasks");

  ChainSolution best;
  bool first = true;
  for (std::uint64_t mask = 0; mask < (1ull << n); ++mask) {
    std::vector<std::size_t> positions;
    for (std::size_t b = 0; b < n; ++b) {
      if (mask & (1ull << b)) positions.push_back(b);
    }
    const double expected = chain_expected_time(graph, model, positions);
    if (first || expected < best.expected_makespan) {
      first = false;
      best.checkpoint_positions = std::move(positions);
      best.expected_makespan = expected;
    }
  }
  best.schedule = chain_schedule(view, best.checkpoint_positions);
  return best;
}

}  // namespace fpsched
