// Paper-faithful transcription of Section 4.2 (Theorem 3 + Algorithm 1).
//
// This evaluator follows the published pseudo-code literally: one n x n
// `tab_k` state matrix per failure position k (entries -1 / 0 / 1 / 2), a
// recursive Traverse, dense W^i_k / R^i_k matrices, and the probability
// recurrences written out as stated (properties A, B, C). Complexity is
// O(n^3) per k and O(n^4) overall, exactly as the paper reports.
//
// It exists purely as an executable specification: the optimized evaluator
// in evaluator.hpp must produce identical results, and the differential
// tests enforce that on randomized DAGs. Do not use it on large inputs.
#pragma once

#include "core/failure_model.hpp"
#include "core/schedule.hpp"
#include "workflows/task_graph.hpp"

namespace fpsched {

/// Expected makespan of `schedule`, computed with the literal Algorithm 1.
double evaluate_reference(const TaskGraph& graph, const FailureModel& model,
                          const Schedule& schedule);

/// Exposed for white-box tests: the lost-work table of Algorithm 1 for
/// failure position `k` (0-based schedule position; the returned vectors
/// are indexed by position and hold W^i_k and R^i_k; entries below k are
/// zero).
struct LostWorkTable {
  std::vector<double> reexecuted_weight;  // W^i_k
  std::vector<double> recovered_cost;     // R^i_k
};
LostWorkTable find_lost_work_reference(const TaskGraph& graph, const Schedule& schedule,
                                       std::size_t k);

}  // namespace fpsched
