// Expected-makespan evaluation of a schedule (Theorem 3 of the paper).
//
// Notation (tasks renumbered in linearization order, positions 0..n-1):
//  * X_i  = time between the first successful completions of tasks i-1
//           and i;
//  * Z^i_k = "the last failure before X_i happened during X_k" (k = -1
//           denotes "no failure so far");
//  * T|k_i = the set of predecessors of task i whose output was lost by
//           that failure and is still needed: checkpointed members
//           contribute their recovery cost, non-checkpointed members must
//           be re-executed (and their own predecessors examined in turn);
//  * L^i_k = total lost-work cost (W^i_k + R^i_k in the paper).
//
// Then E[makespan] = sum_i sum_k P(Z^i_k) E[t(L^i_k + w_i; d_i c_i;
// L^i_i - L^i_k)] with E[t] from Eq. (1). The paper evaluates the L table
// with Algorithm 1 in O(n^3) per failure position (O(n^4) total); this
// implementation is an exact algebraic equivalent in O(n*E + n^2) time and
// O(n + E) transient space:
//  * a `recovered` epoch array replaces the n x n `tab_k` state matrix
//    (during pass k a task enters at most one T|k_i);
//  * probabilities stream in the same k-major order using
//    P(Z^i_k) = exp(-lambda * S^i_k) P(Z^{k+1}_k), where S^i_k accumulates
//    L^j_k + w_j + d_j c_j over k < j < i, and P(Z^{k+1}_k) =
//    1 - sum_{k'<k} P(Z^{k+1}_{k'}) (property B of Theorem 3);
//  * the factor e^{lambda L^i_i}, which depends on the k = i pass, is
//    applied after the k loop.
//
// The paper-faithful O(n^4) transcription lives in evaluator_naive.hpp and
// the two are cross-checked on randomized DAGs by the test suite.
//
// Intra-evaluation parallelism (EvalParallel): the k-major passes of the
// double loop are independent of each other *except* for the scalar
// multiplier P(Z^{k+1}_k), which folds in earlier passes' contributions to
// sum_prob. The parallel mode therefore splits k into contiguous blocks
// (balanced by the triangular per-pass cost, see eval_block_boundaries),
// computes every pass's base-independent factors on private scratch in
// parallel, and then replays the accumulation serially in exactly the
// serial pass order — the same sequence of floating-point operations, so
// the result is bit-identical to the serial fast path for any thread or
// block count, by construction.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "support/sync.hpp"

#include "core/failure_model.hpp"
#include "core/math_kernels.hpp"
#include "core/schedule.hpp"
#include "workflows/task_graph.hpp"

namespace fpsched {

class ThreadPool;

/// Result of evaluating one schedule.
struct Evaluation {
  /// E[makespan]; +inf when the schedule essentially never finishes under
  /// the model (overflow of Eq. (1) for a failure-dominated segment).
  double expected_makespan = 0.0;
  /// Execution time with zero failures but all scheduled checkpoints.
  double fault_free_time = 0.0;
  /// T_inf of the paper: failure-free and checkpoint-free time (sum w_i).
  double total_weight = 0.0;
  /// expected_makespan / total_weight — the paper's plotted metric.
  double ratio = 0.0;
  std::size_t checkpoint_count = 0;
  /// E[X_i] by schedule position.
  std::vector<double> per_task_expected;
};

/// How to run the k-major accumulation of one evaluation.
struct EvalParallel {
  /// k-block workers; <= 1 keeps the serial fast path. The result is
  /// bit-identical for every value (see the header comment).
  std::size_t threads = 1;
  /// Shared pool to run the blocks on (a TaskGroup per evaluation, safe
  /// to join from inside another pool task). When null, transient threads
  /// are spawned per evaluation — fine for benches, expensive inside a
  /// sweep's inner loop.
  ThreadPool* pool = nullptr;
  /// Transcendental backend for the batched sweeps (see math_kernels.hpp).
  /// `exact` (the default) is bit-identical to the historical element-wise
  /// libm output; `fast` trades <= 4 ulp per kernel call for throughput
  /// and is still deterministic for any thread count.
  EvalMath math = EvalMath::exact;
};

/// Contiguous k-block partition of [0, n) into at most `blocks` ranges,
/// balanced by the triangular per-pass cost (pass k's inner loop runs
/// n - k times). Returns the boundaries (size blocks' + 1, first 0, last
/// n); blocks need not divide n and trailing blocks may be empty when
/// blocks > n. Exposed for the parallel-evaluator tests.
std::vector<std::size_t> eval_block_boundaries(std::size_t n, std::size_t blocks);

/// Scratch buffers reused across evaluations; one per thread when
/// evaluating in parallel.
class EvaluatorWorkspace {
 public:
  EvaluatorWorkspace() = default;

 private:
  friend class ScheduleEvaluator;

  /// Private scratch of one k-block of a parallel evaluation — and, via
  /// `pass_scratch`, of the per-pass staging of the serial path: the DFS
  /// state plus the densely stored base-independent factors of every
  /// (k, i) pair of the block, in pass order. q = e^{-lambda S^i_k}; for
  /// L^i_k == 0 the combine reuses the memoized expm1_wc[i] (a < 0 is the
  /// sentinel), otherwise a = e^{-lambda L^i_k} and
  /// b = expm1(lambda (L^i_k + w_i + delta_i c_i)). Each pass stages its
  /// kernel arguments into q/a in place and gathers the L > 0 subset into
  /// the compact lost_idx/arg_a/arg_b triple, so the transcendentals run
  /// as three batched sweeps per pass (see math_kernels.hpp) instead of
  /// element-wise libm calls.
  struct EvalBlockScratch {
    std::size_t k_begin = 0;
    std::size_t k_end = 0;
    std::vector<std::int32_t> recovered_at;
    std::vector<std::uint32_t> dfs_stack;
    std::vector<double> q;
    std::vector<double> a;
    std::vector<double> b;
    std::vector<std::uint32_t> lost_idx;  // record index of each L > 0 entry
    std::vector<double> arg_a;            // staged L, swept to e^{-lambda L}
    std::vector<double> arg_b;            // staged expm1 argument, swept in place
  };

  std::vector<double> work;        // w by position
  std::vector<double> ckpt;        // delta_i * c_i by position
  std::vector<double> recovery;    // r by position
  std::vector<std::uint8_t> flag;  // checkpoint flag by position
  std::vector<std::uint32_t> pred_offsets;
  std::vector<std::uint32_t> pred_list;  // predecessor positions, CSR
  std::vector<std::uint32_t> position;   // vertex id -> position
  std::vector<double> accum;             // B[i]: sum of conditional terms
  std::vector<double> sum_prob;          // sum over processed k of P(Z^i_k)
  std::vector<double> expm1_wc;          // expm1(lambda (w_i + delta_i c_i))
  std::vector<double> self_loss;         // L^i_i
  std::vector<EvalBlockScratch> blocks;  // parallel mode only
  EvalBlockScratch pass_scratch;         // serial path: one pass at a time

  void resize(std::size_t n, std::size_t edges);
};

/// Thread-safe free list of evaluator workspaces, for task-parallel
/// callers whose tasks run on whichever pool worker is idle (so a fixed
/// per-worker workspace array cannot be indexed). acquire() pops a free
/// workspace or creates one; the Lease returns it on destruction. A
/// workspace is only ever leased to one task at a time, so the usual
/// exclusive-use contract of EvaluatorWorkspace holds.
///
/// Lifetime contract: every Lease must be destroyed before its pool —
/// the Lease destructor takes the pool mutex to return the workspace, so
/// a lease outliving the pool is a use-after-free. In the engine this
/// holds because leases live only inside pool tasks that are joined
/// (TaskGroup::wait) before the PoolToken's WorkspacePool dies, but the
/// ordering is easy to break silently when restructuring teardown; the
/// pool destructor therefore counts outstanding leases and aborts with a
/// diagnostic instead of letting the stale unlock corrupt memory. (An
/// assert would vanish under NDEBUG, which is exactly when the corruption
/// would go unnoticed.)
class WorkspacePool {
 public:
  class Lease {
   public:
    Lease(WorkspacePool* pool, std::unique_ptr<EvaluatorWorkspace> workspace)
        : pool_(pool), workspace_(std::move(workspace)) {}
    ~Lease();
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    EvaluatorWorkspace& get() { return *workspace_; }

   private:
    WorkspacePool* pool_;
    std::unique_ptr<EvaluatorWorkspace> workspace_;
  };

  ~WorkspacePool();

  Lease acquire();

 private:
  Mutex mutex_;
  std::vector<std::unique_ptr<EvaluatorWorkspace>> free_ GUARDED_BY(mutex_);
  std::size_t outstanding_ GUARDED_BY(mutex_) = 0;  // leases not yet returned
};

/// Evaluates schedules for one (task graph, failure model) pair. The
/// object is immutable after construction and safe to share across
/// threads; concurrent calls must pass distinct workspaces.
class ScheduleEvaluator {
 public:
  ScheduleEvaluator(const TaskGraph& graph, FailureModel model);

  const TaskGraph& graph() const { return *graph_; }
  const FailureModel& model() const { return model_; }

  /// Full evaluation (validates the schedule). `parallel` selects the
  /// k-block split and math backend exactly as for expected_makespan.
  Evaluation evaluate(const Schedule& schedule) const;
  Evaluation evaluate(const Schedule& schedule, EvaluatorWorkspace& ws,
                      const EvalParallel& parallel = {}) const;

  /// Fast path returning only E[makespan]; used by the heuristic sweeps.
  /// `validate` can be disabled when the caller constructed the schedule
  /// from a known-valid linearization. `parallel` opts into the k-blocked
  /// evaluation (bit-identical to the serial path for any thread count).
  double expected_makespan(const Schedule& schedule, EvaluatorWorkspace& ws,
                           bool validate = true, const EvalParallel& parallel = {}) const;

 private:
  double run(const Schedule& schedule, EvaluatorWorkspace& ws, std::vector<double>* per_task,
             const EvalParallel& parallel) const;

  const TaskGraph* graph_;
  FailureModel model_;
};

}  // namespace fpsched
