#include "core/subset_sum.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "dag/graph.hpp"
#include "support/error.hpp"
#include "support/stats.hpp"

namespace fpsched {

SubsetSumReduction reduce_subset_sum(const SubsetSumInstance& instance, double lambda) {
  ensure(!instance.values.empty(), "subset-sum instance needs values");
  std::int64_t sum = 0;
  std::int64_t min_value = instance.values.front();
  for (const std::int64_t v : instance.values) {
    ensure(v > 0, "subset-sum values must be strictly positive");
    sum += v;
    min_value = std::min(min_value, v);
  }
  ensure(instance.target > 0 && instance.target <= sum, "subset-sum target must lie in (0, sum]");
  // Values above the target can never join the subset, and the paper's
  // c_i > 0 argument silently assumes w_i <= X; a standard preprocessing
  // step drops oversized values, so we require it here.
  for (const std::int64_t v : instance.values)
    ensure(v <= instance.target,
           "Theorem 2's construction needs w_i <= X; drop values above the target first");
  if (lambda <= 0.0) lambda = 1.0 / static_cast<double>(min_value);
  ensure(lambda >= 1.0 / static_cast<double>(min_value),
         "Theorem 2 requires lambda >= 1 / min_i w_i");

  const double x = static_cast<double>(instance.target);
  DagBuilder builder;
  std::vector<Task> tasks;
  const std::size_t n = instance.values.size();
  builder.add_vertices(n + 1);
  for (std::size_t i = 0; i < n; ++i) {
    const double w = static_cast<double>(instance.values[i]);
    Task t;
    t.name = "src" + std::to_string(i);
    t.type = "gadget";
    t.weight = w;
    t.ckpt_cost = (x - w) + std::log(lambda * w + std::exp(-lambda * x)) / lambda;
    t.recovery_cost = 0.0;
    ensure(t.ckpt_cost > 0.0, "reduction produced a non-positive checkpoint cost");
    tasks.push_back(std::move(t));
    builder.add_edge(static_cast<VertexId>(i), static_cast<VertexId>(n));
  }
  Task sink;
  sink.name = "sink";
  sink.type = "gadget";
  sink.weight = 0.0;
  tasks.push_back(std::move(sink));

  return SubsetSumReduction{
      TaskGraph(std::move(builder).build(), std::move(tasks)),
      FailureModel(lambda, 0.0),
      /*target=*/x,
      /*sum=*/static_cast<double>(sum),
      /*threshold=*/lambda * std::exp(lambda * x) * (static_cast<double>(sum) - x) +
          std::expm1(lambda * x),
  };
}

double gadget_expected_time(const SubsetSumReduction& reduction, double non_ckpt_sum) {
  const double lambda = reduction.model.lambda();
  return lambda * std::exp(lambda * reduction.target) * (reduction.sum - non_ckpt_sum) +
         std::expm1(lambda * non_ckpt_sum);
}

bool gadget_reaches_threshold(const SubsetSumReduction& reduction, double tolerance) {
  const std::size_t n = reduction.graph.task_count() - 1;  // sources
  ensure(n <= 24, "gadget enumeration limited to 24 sources");
  double best = std::numeric_limits<double>::infinity();
  for (std::uint64_t mask = 0; mask < (1ull << n); ++mask) {
    // mask selects the NON-checkpointed set; Corollary 2 only needs its sum.
    double non_ckpt_sum = 0.0;
    for (std::size_t b = 0; b < n; ++b) {
      if (mask & (1ull << b)) non_ckpt_sum += reduction.graph.weight(static_cast<VertexId>(b));
    }
    best = std::min(best, gadget_expected_time(reduction, non_ckpt_sum));
  }
  return relative_difference(best, reduction.threshold) <= tolerance;
}

bool subset_sum_solvable(const SubsetSumInstance& instance) {
  ensure(instance.target >= 0, "target must be non-negative");
  const std::size_t target = static_cast<std::size_t>(instance.target);
  std::vector<bool> reachable(target + 1, false);
  reachable[0] = true;
  for (const std::int64_t value : instance.values) {
    ensure(value > 0, "subset-sum values must be strictly positive");
    const std::size_t v = static_cast<std::size_t>(value);
    for (std::size_t s = target; s >= v; --s) {
      if (reachable[s - v]) reachable[s] = true;
    }
  }
  return reachable[target];
}

}  // namespace fpsched
