#include "core/theory_fork.hpp"

#include "support/error.hpp"

namespace fpsched {

bool is_fork(const Dag& dag, VertexId* source) {
  const std::size_t n = dag.vertex_count();
  if (n == 0) return false;
  if (n == 1) {
    if (source) *source = 0;
    return true;
  }
  const auto sources = dag.sources();
  if (sources.size() != 1) return false;
  const VertexId src = sources.front();
  if (dag.out_degree(src) != n - 1) return false;
  for (VertexId v = 0; v < n; ++v) {
    if (v == src) continue;
    const auto preds = dag.predecessors(v);
    if (preds.size() != 1 || preds.front() != src) return false;
    if (dag.out_degree(v) != 0) return false;
  }
  if (source) *source = src;
  return true;
}

ForkAnalysis analyze_fork(const TaskGraph& graph, const FailureModel& model) {
  VertexId src = 0;
  ensure(is_fork(graph.dag(), &src), "analyze_fork requires a fork graph");

  ForkAnalysis analysis;
  analysis.source = src;
  const double w_src = graph.weight(src);
  const double c_src = graph.ckpt_cost(src);
  const double r_src = graph.recovery_cost(src);

  analysis.expected_with_checkpoint = model.expected_time(w_src, c_src, 0.0);
  analysis.expected_without_checkpoint = model.expected_time(w_src, 0.0, 0.0);
  for (VertexId v = 0; v < graph.task_count(); ++v) {
    if (v == src) continue;
    analysis.expected_with_checkpoint += model.expected_time(graph.weight(v), 0.0, r_src);
    analysis.expected_without_checkpoint += model.expected_time(graph.weight(v), 0.0, w_src);
  }
  analysis.checkpoint_source =
      analysis.expected_with_checkpoint < analysis.expected_without_checkpoint;
  analysis.optimal_expected_makespan =
      std::min(analysis.expected_with_checkpoint, analysis.expected_without_checkpoint);
  return analysis;
}

Schedule optimal_fork_schedule(const TaskGraph& graph, const FailureModel& model) {
  const ForkAnalysis analysis = analyze_fork(graph, model);
  std::vector<VertexId> order;
  order.reserve(graph.task_count());
  order.push_back(analysis.source);
  for (VertexId v = 0; v < graph.task_count(); ++v) {
    if (v != analysis.source) order.push_back(v);
  }
  Schedule schedule = make_schedule(std::move(order));
  schedule.checkpointed[analysis.source] = analysis.checkpoint_source ? 1 : 0;
  return schedule;
}

}  // namespace fpsched
