// Join-graph theory from Section 4.1.2.
//
// A join has n independent sources T_1..T_n feeding one sink. For a fixed
// partition into checkpointed (I_Ckpt) and non-checkpointed (I_NCkpt)
// sources, the optimal schedule (Lemmas 1-2) executes the checkpointed
// sources first, sorted by non-increasing
//     g(i) = e^{-lambda (w_i+c_i+r_i)} + e^{-lambda r_i}
//            - e^{-lambda (w_i+c_i)},
// then the non-checkpointed sources (any order), then the sink; recoveries
// happen with the sink. Its expected makespan has the closed form derived
// in the proof of Lemma 2 (the typeset Eq. (2) of the report dropped a
// "-1"; tests check this form against the general evaluator):
//     t = (1/lambda + D) sum_{i in Ckpt} (e^{lambda (w_i+c_i)} - 1)
//       + (1/lambda + D + t0) sum_k q_k (1 - p_k)
// with t0 the all-recoveries phase-2 expectation, p_k / q_k as in the
// paper. Choosing the partition is NP-complete (Theorem 2); Corollary 1
// gives a polynomial algorithm when all c_i = c and r_i = r, and
// Corollary 2 a closed form when r_i = 0.
#pragma once

#include <vector>

#include "core/failure_model.hpp"
#include "core/schedule.hpp"
#include "workflows/task_graph.hpp"

namespace fpsched {

/// True iff the graph is a join: one sink, all other vertices are sources
/// whose single successor is the sink. Writes the sink id when provided.
bool is_join(const Dag& dag, VertexId* sink = nullptr);

/// Lemma 2 ordering key g(i) (larger = earlier).
double join_g_value(const TaskGraph& graph, const FailureModel& model, VertexId source);

/// Expected makespan of the Lemma-1 shaped schedule for a given
/// checkpointed set (sources not in `checkpointed_sources` are not
/// checkpointed). The checkpointed sources are internally ordered by
/// non-increasing g. Throws unless the graph is a join.
double join_expected_time(const TaskGraph& graph, const FailureModel& model,
                          const std::vector<VertexId>& checkpointed_sources);

/// Corollary 2 closed form, valid only when every r_i = 0:
///   (1/lambda+D) [ sum_{Ckpt} (e^{lambda (w_i+c_i)}-1)
///                  + e^{lambda (W_NCkpt + w_sink)} - 1 ].
double join_expected_time_zero_recovery(const TaskGraph& graph, const FailureModel& model,
                                        const std::vector<VertexId>& checkpointed_sources);

/// The Lemma-1/Lemma-2 schedule realizing join_expected_time.
Schedule join_schedule(const TaskGraph& graph, const FailureModel& model,
                       const std::vector<VertexId>& checkpointed_sources);

struct JoinSolution {
  std::vector<VertexId> checkpointed_sources;
  double expected_makespan = 0.0;
  Schedule schedule;
};

/// Corollary 1: optimal join solution when all sources share the same
/// c and r. Sorts sources by decreasing w_i and sweeps the number of
/// checkpointed tasks 0..n. Throws when costs are not uniform.
JoinSolution solve_join_equal_costs(const TaskGraph& graph, const FailureModel& model);

/// Exact solver enumerating all 2^n checkpoint subsets (sources ordered by
/// g within each subset). Intended for small n (throws above `max_sources`
/// = 20 by default); used to validate heuristics and the NP gadget.
JoinSolution solve_join_bruteforce(const TaskGraph& graph, const FailureModel& model,
                                   std::size_t max_sources = 20);

}  // namespace fpsched
