#include "core/exact_solver.hpp"

#include <algorithm>
#include <limits>

#include "support/env.hpp"
#include "support/error.hpp"
#include "support/threading.hpp"

namespace fpsched {

namespace {

class LinearizationEnumerator {
 public:
  LinearizationEnumerator(const Dag& dag,
                          const std::function<void(const std::vector<VertexId>&)>& visit,
                          std::uint64_t limit)
      : dag_(dag), visit_(visit), limit_(limit), remaining_(dag.vertex_count()) {
    for (VertexId v = 0; v < dag_.vertex_count(); ++v) {
      remaining_[v] = static_cast<std::uint32_t>(dag_.in_degree(v));
      if (remaining_[v] == 0) ready_.push_back(v);
    }
    prefix_.reserve(dag_.vertex_count());
  }

  std::uint64_t run() {
    recurse();
    return count_;
  }

 private:
  void recurse() {
    if (prefix_.size() == dag_.vertex_count()) {
      ++count_;
      if (limit_ != 0 && count_ > limit_)
        throw InvalidArgument("linearization count exceeds the configured limit");
      if (visit_) visit_(prefix_);
      return;
    }
    // Try each currently-ready vertex (snapshot: ready_ mutates below).
    const std::vector<VertexId> snapshot(ready_.begin(), ready_.end());
    for (const VertexId v : snapshot) {
      // Remove v from the ready set.
      ready_.erase(std::find(ready_.begin(), ready_.end(), v));
      prefix_.push_back(v);
      std::size_t enabled = 0;
      for (const VertexId s : dag_.successors(v)) {
        if (--remaining_[s] == 0) {
          ready_.push_back(s);
          ++enabled;
        }
      }
      recurse();
      // Undo.
      for (const VertexId s : dag_.successors(v)) ++remaining_[s];
      ready_.resize(ready_.size() - enabled);
      prefix_.pop_back();
      ready_.push_back(v);
    }
  }

  const Dag& dag_;
  const std::function<void(const std::vector<VertexId>&)>& visit_;
  std::uint64_t limit_;
  std::uint64_t count_ = 0;
  std::vector<std::uint32_t> remaining_;
  std::vector<VertexId> ready_;
  std::vector<VertexId> prefix_;
};

}  // namespace

std::uint64_t for_each_linearization(
    const Dag& dag, const std::function<void(const std::vector<VertexId>&)>& visit,
    std::uint64_t limit) {
  return LinearizationEnumerator(dag, visit, limit).run();
}

std::uint64_t count_linearizations(const Dag& dag, std::uint64_t limit) {
  return for_each_linearization(dag, nullptr, limit);
}

ExactSolution solve_exact_fixed_order(const ScheduleEvaluator& evaluator,
                                      const std::vector<VertexId>& order,
                                      const ExactSolverOptions& options) {
  const TaskGraph& graph = evaluator.graph();
  const std::size_t n = graph.task_count();
  ensure(n >= 1, "solve_exact_fixed_order needs at least one task");
  ensure(n <= options.max_tasks && n < 63,
         "fixed-order exact search limited to " + std::to_string(options.max_tasks) + " tasks");
  validate_schedule(graph, make_schedule(order));

  const std::uint64_t subsets = 1ull << n;
  const std::size_t worker_count =
      options.threads == 0 ? default_thread_count() : options.threads;

  // Each worker keeps its own best; combine at the end (deterministic
  // tie-break on the smaller mask).
  struct Best {
    double value = std::numeric_limits<double>::infinity();
    std::uint64_t mask = 0;
  };
  std::vector<Best> best(std::max<std::size_t>(worker_count, 1));
  std::vector<EvaluatorWorkspace> workspaces(best.size());

  parallel_for_workers(
      0, static_cast<std::size_t>(subsets),
      [&](std::size_t mask, std::size_t worker) {
        Schedule candidate = make_schedule(order);
        for (std::size_t b = 0; b < n; ++b) {
          if (mask & (1ull << b)) candidate.checkpointed[order[b]] = 1;
        }
        const double value =
            evaluator.expected_makespan(candidate, workspaces[worker], /*validate=*/false);
        Best& slot = best[worker];
        if (value < slot.value || (value == slot.value && mask < slot.mask)) {
          slot.value = value;
          slot.mask = mask;
        }
      },
      worker_count);

  Best overall;
  for (const Best& slot : best) {
    if (slot.value < overall.value || (slot.value == overall.value && slot.mask < overall.mask))
      overall = slot;
  }

  ExactSolution solution;
  solution.schedule = make_schedule(order);
  for (std::size_t b = 0; b < n; ++b) {
    if (overall.mask & (1ull << b)) solution.schedule.checkpointed[order[b]] = 1;
  }
  solution.expected_makespan = overall.value;
  solution.schedules_evaluated = subsets;
  solution.linearizations_seen = 1;
  return solution;
}

ExactSolution solve_exact(const ScheduleEvaluator& evaluator, const ExactSolverOptions& options) {
  const TaskGraph& graph = evaluator.graph();
  ensure(graph.task_count() >= 1, "solve_exact needs at least one task");

  ExactSolution best;
  best.expected_makespan = std::numeric_limits<double>::infinity();
  std::uint64_t evaluated = 0;
  const std::uint64_t linearizations = for_each_linearization(
      graph.dag(),
      [&](const std::vector<VertexId>& order) {
        const ExactSolution candidate = solve_exact_fixed_order(evaluator, order, options);
        evaluated += candidate.schedules_evaluated;
        if (candidate.expected_makespan < best.expected_makespan) {
          best.schedule = candidate.schedule;
          best.expected_makespan = candidate.expected_makespan;
        }
      },
      options.max_linearizations);
  best.schedules_evaluated = evaluated;
  best.linearizations_seen = linearizations;
  return best;
}

}  // namespace fpsched
