// Exact optimal solver for small instances of DAG-ChkptSched.
//
// The problem is NP-complete (Theorem 2), so no polynomial algorithm is
// expected; for small graphs, however, exhaustive search is feasible and
// gives the library something the paper does not have: a ground-truth
// optimum to measure the heuristics' optimality gap against (the paper
// can only compare heuristics with each other).
//
// Two search modes:
//  * fixed order  — enumerate the 2^n checkpoint subsets for a given
//    linearization (n <= ~20);
//  * full         — additionally enumerate every linearization of the DAG
//    by backtracking over ready sets (use only for tiny / narrow graphs;
//    the linearization count is capped and exceeding it throws).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/evaluator.hpp"
#include "core/schedule.hpp"

namespace fpsched {

struct ExactSolverOptions {
  /// Hard cap on task count (2^n subsets are enumerated per order).
  std::size_t max_tasks = 20;
  /// Full mode only: abort when the DAG has more linearizations than this.
  std::uint64_t max_linearizations = 200000;
  /// Threads for the subset scan (0 = default).
  std::size_t threads = 0;
};

struct ExactSolution {
  Schedule schedule;
  double expected_makespan = 0.0;
  std::uint64_t schedules_evaluated = 0;
  std::uint64_t linearizations_seen = 0;
};

/// Optimal checkpoint set for a fixed linearization (exhaustive over the
/// 2^n subsets, evaluated with Theorem 3 and parallelized).
ExactSolution solve_exact_fixed_order(const ScheduleEvaluator& evaluator,
                                      const std::vector<VertexId>& order,
                                      const ExactSolverOptions& options = {});

/// Global optimum over both decisions: every linearization x every
/// checkpoint subset. Exponential in both dimensions; intended for
/// n <= ~10.
ExactSolution solve_exact(const ScheduleEvaluator& evaluator,
                          const ExactSolverOptions& options = {});

/// Enumerates every linearization of `dag`, invoking `visit` for each.
/// Returns the number of linearizations. Throws when the count exceeds
/// `limit` (0 = unlimited). Deterministic order (ready tasks tried in
/// ascending id).
std::uint64_t for_each_linearization(const Dag& dag,
                                     const std::function<void(const std::vector<VertexId>&)>& visit,
                                     std::uint64_t limit = 0);

/// Just the count (same traversal, no callback work).
std::uint64_t count_linearizations(const Dag& dag, std::uint64_t limit = 0);

}  // namespace fpsched
