// Batched exp/expm1 kernels for the Theorem-3 evaluator hot loop.
//
// The evaluator's O(n^2) accumulation spends ~90% of figure wall-clock in
// scalar libm transcendentals (PR 2 profile). This layer batches those
// calls into stride-free array sweeps with two interchangeable backends:
//
//  * EvalMath::exact — element-wise std::exp / std::expm1. Bit-identical
//    to calling libm inline at every site, and therefore bit-identical to
//    the pre-kernel evaluator. The default everywhere.
//  * EvalMath::fast — a dependency-free, hand-rolled implementation
//    (sleef-style): Cody–Waite range reduction against log 2 split into a
//    high part with 20 trailing zero bits (so the product with the
//    reduction integer is exact) plus a low correction, Horner-evaluated
//    Taylor tails sized to their ranges, and branch-free two-factor
//    2^k scaling so denormal and overflowing results come out right
//    without any per-element control flow. Accuracy contract: <= 4 ulp
//    against libm on every input regime (measured ~2 ulp; see
//    tests/math_kernels_test.cpp), with exp(+-inf), expm1(-inf) == -1,
//    NaN propagation and the under/overflow edges all handled. The loops
//    carry no branches or strided accesses, so -O3 can vectorize them.
//
// The fast backend is an explicit opt-in threaded through the whole stack
// (EvalParallel::math -> EngineOptions/FigureOptions eval_math -> CLI
// --eval-math -> HTTP eval_math); nothing selects it implicitly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace fpsched {

/// Which transcendental backend an evaluation uses.
enum class EvalMath : std::uint8_t {
  exact,  ///< libm element-wise; bit-identical to the historical output.
  fast,   ///< batched polynomial kernels, <= 4 ulp of libm.
};

std::string to_string(EvalMath math);

/// Parses "exact" / "fast"; throws InvalidArgument otherwise.
EvalMath parse_eval_math(const std::string& text);

/// out[i] = exp(x[i]). In-place safe (out may alias x).
void vexp(const double* x, double* out, std::size_t n, EvalMath math = EvalMath::exact);

/// out[i] = expm1(x[i]). In-place safe.
void vexpm1(const double* x, double* out, std::size_t n, EvalMath math = EvalMath::exact);

/// out[i] = exp(-lambda * x[i]) — the evaluator's probability-decay
/// pattern, fused so the exact backend reproduces the historical
/// `std::exp(-lambda * span)` expression bit-for-bit. In-place safe.
void vexp_neg_mul(double lambda, const double* x, double* out, std::size_t n,
                  EvalMath math = EvalMath::exact);

}  // namespace fpsched
