#include "support/env.hpp"

#include <cstdlib>
#include <thread>

namespace fpsched {

std::optional<std::string> env_string(const std::string& name) {
  const char* value = std::getenv(name.c_str());
  if (value == nullptr) return std::nullopt;
  return std::string(value);
}

std::size_t env_size(const std::string& name, std::size_t fallback) {
  const auto raw = env_string(name);
  if (!raw || raw->empty()) return fallback;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(raw->c_str(), &end, 10);
  if (end == raw->c_str() || *end != '\0') return fallback;
  return static_cast<std::size_t>(parsed);
}

std::size_t default_thread_count() {
  const std::size_t hw = std::max(1u, std::thread::hardware_concurrency());
  return env_size("FPSCHED_THREADS", hw);
}

}  // namespace fpsched
