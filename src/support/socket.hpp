// Thin POSIX socket/errno helpers for the service layer and the
// pipe-writing drivers.
//
// Everything here is blocking-I/O plumbing: an RAII file descriptor, a
// TCP listener/acceptor pair, and EINTR/EPIPE-aware send/recv wrappers.
// The one process-global knob is ignore_sigpipe(): a record stream is
// routinely cut short by its consumer (`fpsched_run ... | head`, a curl
// client hanging up mid-run), and the default SIGPIPE disposition would
// kill the process instead of surfacing EPIPE to the writer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace fpsched {

/// Installs SIG_IGN for SIGPIPE (idempotent). With the signal ignored, a
/// write to a closed pipe/socket fails with EPIPE — which send_all and
/// the stream sinks handle — instead of terminating the process.
void ignore_sigpipe();

/// strerror(err) plus the number, for exception messages.
std::string errno_message(int err);

/// RAII wrapper for a POSIX file descriptor (closes on destruction).
class FileDescriptor {
 public:
  FileDescriptor() = default;
  explicit FileDescriptor(int fd) : fd_(fd) {}
  ~FileDescriptor() { reset(); }

  FileDescriptor(FileDescriptor&& other) noexcept : fd_(other.release()) {}
  FileDescriptor& operator=(FileDescriptor&& other) noexcept {
    if (this != &other) reset(other.release());
    return *this;
  }
  FileDescriptor(const FileDescriptor&) = delete;
  FileDescriptor& operator=(const FileDescriptor&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }

  /// Gives up ownership without closing.
  int release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }

  /// Closes the current descriptor (if any) and adopts `fd`.
  void reset(int fd = -1);

 private:
  int fd_ = -1;
};

/// Blocking IPv4 TCP listener on all interfaces (SO_REUSEADDR). `port` 0
/// binds an ephemeral port; `bound_port`, when non-null, receives the
/// actual port either way. Throws fpsched::Error when the socket cannot
/// be created or bound (e.g. the port is taken).
FileDescriptor listen_on(std::uint16_t port, std::uint16_t* bound_port = nullptr);

/// Blocking accept. Returns an invalid descriptor on failure (errno is
/// preserved for the caller — EINVAL/EBADF after the listener was closed
/// is the normal shutdown path).
FileDescriptor accept_client(int listen_fd);

/// Send/receive timeouts (SO_SNDTIMEO/SO_RCVTIMEO) so a wedged peer
/// cannot pin a connection worker forever.
void set_socket_timeouts(int fd, int seconds);

/// Writes all of `data`, retrying on EINTR and short writes, with
/// MSG_NOSIGNAL so a vanished peer yields EPIPE rather than a signal.
/// Returns false when the peer is gone or the write errored; the caller
/// should stop writing to this descriptor.
bool send_all(int fd, std::string_view data);

/// Reads up to `size` bytes. Returns the byte count, 0 on orderly
/// shutdown, or -1 on error (EINTR is retried internally).
long recv_some(int fd, char* buffer, std::size_t size);

/// Blocking IPv4 TCP connection to 127.0.0.1:`port` — the loopback
/// client used by tests and tooling. Throws fpsched::Error on failure.
FileDescriptor connect_loopback(std::uint16_t port);

}  // namespace fpsched
