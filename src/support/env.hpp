// Small helpers to read configuration from environment variables.
#pragma once

#include <cstddef>
#include <optional>
#include <string>

namespace fpsched {

/// Returns the value of environment variable `name`, or nullopt when unset.
std::optional<std::string> env_string(const std::string& name);

/// Parses `name` as a non-negative integer; returns `fallback` when unset
/// or unparsable.
std::size_t env_size(const std::string& name, std::size_t fallback);

/// Number of worker threads the library should use. Reads FPSCHED_THREADS,
/// falling back to std::thread::hardware_concurrency() (at least 1).
std::size_t default_thread_count();

}  // namespace fpsched
