#include "support/stats.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"

namespace fpsched {

void RunningStats::push(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::standard_error() const {
  if (count_ < 2) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(count_));
}

double RunningStats::ci95_halfwidth() const { return 1.96 * standard_error(); }

double quantile(std::vector<double> values, double q) {
  if (values.empty()) return std::numeric_limits<double>::quiet_NaN();
  ensure(q >= 0.0 && q <= 1.0, "quantile requires q in [0,1]");
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double relative_difference(double a, double b) {
  const double scale = std::max({std::fabs(a), std::fabs(b), 1e-300});
  return std::fabs(a - b) / scale;
}

}  // namespace fpsched
