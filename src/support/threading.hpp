// Shared-memory parallelism helpers: a fixed thread pool, nested task
// groups, and parallel_for.
//
// The heuristics' exhaustive N-sweeps and the Monte-Carlo trial runner are
// embarrassingly parallel; we follow the "think in tasks, not threads"
// guideline: callers submit index ranges, workers own private scratch
// space, and results are written to disjoint slots so no locking is needed
// on the hot path.
//
// TaskGroup extends the pool with *nested* parallelism: a task already
// running on a pool worker can fan out subtasks onto the same pool and
// join them without deadlock, because wait() helps — it executes the
// group's own queued tasks on the calling thread and only blocks when
// every remaining task of the group is being executed by another thread.
// Idle pool workers pull queued group tasks exactly like plain submitted
// tasks, which is what lets an idle scenario worker steal budget-sweep or
// k-block tasks from an in-flight scenario.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "support/sync.hpp"

namespace fpsched {

/// Hard ceiling on real OS threads a single component should spawn from a
/// user-supplied count (CLI flag, HTTP query parameter): beyond a few
/// hundred workers there is no hardware left to fill, only scheduler
/// pressure — and an unbounded `threads=10^9` request must degrade to
/// "as wide as is useful", not exhaust the host's thread limit. Shared by
/// the experiment engine's worker resolution and the perf bench.
inline constexpr std::size_t kMaxPoolThreads = 256;

/// A fixed-size pool of worker threads consuming a FIFO of tasks.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (>= 1).
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues a task; the returned future rethrows any exception the task
  /// raised.
  std::future<void> submit(std::function<void()> task);

 private:
  friend class TaskGroup;

  /// Shared state of one TaskGroup. The pool queue holds shared_ptr
  /// tickets to it: a ticket popped after the group's waiter already
  /// executed the task itself is simply stale and dropped, so tickets can
  /// safely outlive the TaskGroup object.
  struct GroupState {
    Mutex mutex;
    CondVar done;
    std::deque<std::function<void()>> tasks GUARDED_BY(mutex);  // submitted, not yet claimed
    std::size_t outstanding GUARDED_BY(mutex) = 0;              // queued + currently running
    std::exception_ptr error GUARDED_BY(mutex);                 // first task exception

    /// Claims and runs one queued task (helper for workers and waiters).
    /// Returns false when no task was queued. Takes the group mutex
    /// internally (the task itself runs unlocked).
    bool run_one() EXCLUDES(mutex);
    void finish_one() EXCLUDES(mutex);
  };

  /// One queue entry: a plain submitted task or a group ticket.
  struct Item {
    std::packaged_task<void()> task;
    std::shared_ptr<GroupState> group;
  };

  void enqueue_ticket(std::shared_ptr<GroupState> group);
  void worker_loop();

  std::vector<std::thread> workers_;
  Mutex mutex_;
  CondVar cv_;
  std::deque<Item> queue_ GUARDED_BY(mutex_);
  bool stopping_ GUARDED_BY(mutex_) = false;
};

/// A batch of subtasks executed on a shared ThreadPool and joined with a
/// cooperative wait. Single owner: only the constructing thread may call
/// run()/wait(). Tasks must not call run() on their own group, but they
/// may create *their own* TaskGroups on the same pool — wait() helps with
/// the calling group's tasks only, so nesting (scenario -> budget sweep ->
/// k-blocks) is deadlock-free by induction: a waiter can always execute
/// its group's queued tasks itself, and the tasks it waits on only ever
/// wait on deeper groups.
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool& pool);
  /// Joins outstanding tasks (exceptions are swallowed; call wait() to
  /// observe them).
  ~TaskGroup();

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Enqueues one task onto the shared pool.
  void run(std::function<void()> task);

  /// Runs queued tasks of this group on the calling thread until every
  /// task completed (blocking only while the leftovers run on other
  /// threads). Rethrows the first exception any task raised.
  void wait();

 private:
  ThreadPool* pool_;
  std::shared_ptr<ThreadPool::GroupState> state_;
};

/// Runs body(i) for every i in [begin, end) across up to `num_threads`
/// threads (0 = default_thread_count()). Indices are processed in chunks;
/// the call returns when all indices completed. Exceptions from any chunk
/// are rethrown (first one wins). body must be safe to call concurrently
/// for distinct indices. Falls back to a serial loop for small ranges.
void parallel_for(std::size_t begin, std::size_t end, const std::function<void(std::size_t)>& body,
                  std::size_t num_threads = 0);

/// Variant passing (index, worker_id) so callers can maintain per-worker
/// scratch state; worker_id < effective thread count.
void parallel_for_workers(std::size_t begin, std::size_t end,
                          const std::function<void(std::size_t, std::size_t)>& body,
                          std::size_t num_threads = 0);

}  // namespace fpsched
