// Shared-memory parallelism helpers: a fixed thread pool and parallel_for.
//
// The heuristics' exhaustive N-sweeps and the Monte-Carlo trial runner are
// embarrassingly parallel; we follow the "think in tasks, not threads"
// guideline: callers submit index ranges, workers own private scratch
// space, and results are written to disjoint slots so no locking is needed
// on the hot path.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace fpsched {

/// A fixed-size pool of worker threads consuming a FIFO of tasks.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (>= 1).
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues a task; the returned future rethrows any exception the task
  /// raised.
  std::future<void> submit(std::function<void()> task);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::packaged_task<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Runs body(i) for every i in [begin, end) across up to `num_threads`
/// threads (0 = default_thread_count()). Indices are processed in chunks;
/// the call returns when all indices completed. Exceptions from any chunk
/// are rethrown (first one wins). body must be safe to call concurrently
/// for distinct indices. Falls back to a serial loop for small ranges.
void parallel_for(std::size_t begin, std::size_t end, const std::function<void(std::size_t)>& body,
                  std::size_t num_threads = 0);

/// Variant passing (index, worker_id) so callers can maintain per-worker
/// scratch state; worker_id < effective thread count.
void parallel_for_workers(std::size_t begin, std::size_t end,
                          const std::function<void(std::size_t, std::size_t)>& body,
                          std::size_t num_threads = 0);

}  // namespace fpsched
