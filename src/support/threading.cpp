#include "support/threading.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <utility>

#include "support/env.hpp"
#include "support/error.hpp"

namespace fpsched {

ThreadPool::ThreadPool(std::size_t num_threads) {
  ensure(num_threads >= 1, "thread pool needs at least one worker");
  workers_.reserve(num_threads);
  try {
    for (std::size_t i = 0; i < num_threads; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  } catch (...) {
    // A failed spawn (system thread limit) must not leave joinable
    // threads behind — their destructor would terminate the process.
    {
      const LockGuard lock(mutex_);
      stopping_ = true;
    }
    cv_.notify_all();
    for (auto& worker : workers_) worker.join();
    throw;
  }
}

ThreadPool::~ThreadPool() {
  {
    const LockGuard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> future = packaged.get_future();
  {
    const LockGuard lock(mutex_);
    ensure(!stopping_, "submit on a stopping pool");
    queue_.push_back({std::move(packaged), nullptr});
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::enqueue_ticket(std::shared_ptr<GroupState> group) {
  {
    const LockGuard lock(mutex_);
    ensure(!stopping_, "TaskGroup::run on a stopping pool");
    queue_.push_back({{}, std::move(group)});
  }
  cv_.notify_one();
}

bool ThreadPool::GroupState::run_one() {
  std::function<void()> task;
  {
    const LockGuard lock(mutex);
    if (tasks.empty()) return false;
    task = std::move(tasks.front());
    tasks.pop_front();
  }
  try {
    task();
  } catch (...) {
    const LockGuard lock(mutex);
    if (!error) error = std::current_exception();
  }
  finish_one();
  return true;
}

void ThreadPool::GroupState::finish_one() {
  bool last = false;
  {
    const LockGuard lock(mutex);
    last = --outstanding == 0;
  }
  if (last) done.notify_all();
}

void ThreadPool::worker_loop() {
  for (;;) {
    Item item;
    {
      UniqueLock lock(mutex_);
      while (!stopping_ && queue_.empty()) cv_.wait(lock, mutex_);
      if (queue_.empty()) return;  // stopping_ and drained
      item = std::move(queue_.front());
      queue_.pop_front();
    }
    if (item.group) {
      // Stale tickets (the waiter already ran the task itself) are
      // dropped by run_one returning false.
      item.group->run_one();
    } else {
      item.task();  // exceptions are captured in the packaged_task's future
    }
  }
}

TaskGroup::TaskGroup(ThreadPool& pool)
    : pool_(&pool), state_(std::make_shared<ThreadPool::GroupState>()) {}

TaskGroup::~TaskGroup() {
  try {
    wait();
  } catch (...) {
    // Destruction must not throw; call wait() explicitly to observe task
    // exceptions.
  }
}

void TaskGroup::run(std::function<void()> task) {
  {
    const LockGuard lock(state_->mutex);
    state_->tasks.push_back(std::move(task));
    ++state_->outstanding;
  }
  pool_->enqueue_ticket(state_);
}

void TaskGroup::wait() {
  // Help first: drain this group's queued tasks on the calling thread.
  // Only when every remaining task is running on some other thread does
  // the wait actually block — which is what makes joining from inside a
  // pool worker safe (the worker never parks while its own work is
  // claimable).
  while (state_->run_one()) {
  }
  {
    UniqueLock lock(state_->mutex);
    while (state_->outstanding != 0) state_->done.wait(lock, state_->mutex);
    if (state_->error) {
      std::exception_ptr error = std::exchange(state_->error, nullptr);
      lock.unlock();
      std::rethrow_exception(error);
    }
  }
}

namespace {

void run_indexed(std::size_t begin, std::size_t end,
                 const std::function<void(std::size_t, std::size_t)>& body,
                 std::size_t num_threads) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  std::size_t threads = num_threads == 0 ? default_thread_count() : num_threads;
  threads = std::min(threads, n);
  if (threads <= 1) {
    for (std::size_t i = begin; i < end; ++i) body(i, 0);
    return;
  }

  // Dynamic chunking over a shared atomic cursor: good load balance when
  // per-index cost varies (e.g. evaluator cost grows with checkpoint count).
  std::atomic<std::size_t> cursor{begin};
  const std::size_t chunk = std::max<std::size_t>(1, n / (threads * 8));
  std::exception_ptr first_error;
  Mutex error_mutex;

  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::size_t worker = 0; worker < threads; ++worker) {
    pool.emplace_back([&, worker] {
      for (;;) {
        const std::size_t lo = cursor.fetch_add(chunk);
        if (lo >= end) return;
        const std::size_t hi = std::min(end, lo + chunk);
        for (std::size_t i = lo; i < hi; ++i) {
          try {
            body(i, worker);
          } catch (...) {
            const LockGuard lock(error_mutex);
            if (!first_error) first_error = std::current_exception();
            return;
          }
        }
        {
          const LockGuard lock(error_mutex);
          if (first_error) return;
        }
      }
    });
  }
  for (auto& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace

void parallel_for(std::size_t begin, std::size_t end, const std::function<void(std::size_t)>& body,
                  std::size_t num_threads) {
  run_indexed(begin, end, [&](std::size_t i, std::size_t) { body(i); }, num_threads);
}

void parallel_for_workers(std::size_t begin, std::size_t end,
                          const std::function<void(std::size_t, std::size_t)>& body,
                          std::size_t num_threads) {
  run_indexed(begin, end, body, num_threads);
}

}  // namespace fpsched
