#include "support/socket.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstring>
#include <mutex>

#include "support/error.hpp"

namespace fpsched {

void ignore_sigpipe() {
  static std::once_flag once;
  std::call_once(once, [] {
    struct sigaction action {};
    action.sa_handler = SIG_IGN;
    ::sigaction(SIGPIPE, &action, nullptr);
  });
}

std::string errno_message(int err) {
  return std::string(std::strerror(err)) + " (errno " + std::to_string(err) + ")";
}

void FileDescriptor::reset(int fd) {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

FileDescriptor listen_on(std::uint16_t port, std::uint16_t* bound_port) {
  FileDescriptor fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) throw Error("socket(): " + errno_message(errno));
  const int enable = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &enable, sizeof enable);

  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_addr.s_addr = htonl(INADDR_ANY);
  address.sin_port = htons(port);
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&address), sizeof address) != 0) {
    throw Error("cannot bind port " + std::to_string(port) + ": " + errno_message(errno));
  }
  if (::listen(fd.get(), SOMAXCONN) != 0) {
    throw Error("listen(): " + errno_message(errno));
  }
  if (bound_port) {
    sockaddr_in bound{};
    socklen_t length = sizeof bound;
    if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&bound), &length) != 0) {
      throw Error("getsockname(): " + errno_message(errno));
    }
    *bound_port = ntohs(bound.sin_port);
  }
  return fd;
}

FileDescriptor accept_client(int listen_fd) {
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) return FileDescriptor(fd);
    if (errno == EINTR) continue;
    return FileDescriptor();
  }
}

void set_socket_timeouts(int fd, int seconds) {
  timeval timeout{};
  timeout.tv_sec = seconds;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof timeout);
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof timeout);
}

bool send_all(int fd, std::string_view data) {
  while (!data.empty()) {
    const ssize_t sent = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      return false;  // EPIPE/ECONNRESET/timeout: the peer is gone
    }
    data.remove_prefix(static_cast<std::size_t>(sent));
  }
  return true;
}

long recv_some(int fd, char* buffer, std::size_t size) {
  for (;;) {
    const ssize_t received = ::recv(fd, buffer, size, 0);
    if (received >= 0) return static_cast<long>(received);
    if (errno == EINTR) continue;
    return -1;
  }
}

FileDescriptor connect_loopback(std::uint16_t port) {
  FileDescriptor fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) throw Error("socket(): " + errno_message(errno));
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  address.sin_port = htons(port);
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&address), sizeof address) != 0) {
    throw Error("cannot connect to 127.0.0.1:" + std::to_string(port) + ": " +
                errno_message(errno));
  }
  return fd;
}

}  // namespace fpsched
