#include "support/ascii_plot.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <limits>
#include <ostream>
#include <sstream>

#include "support/error.hpp"

namespace fpsched {

namespace {
constexpr std::string_view kGlyphs = "*o+x#@%&$~^=";
}

AsciiChart::AsciiChart(std::string title, std::size_t width, std::size_t height)
    : title_(std::move(title)), width_(std::max<std::size_t>(width, 16)),
      height_(std::max<std::size_t>(height, 6)) {}

void AsciiChart::add_series(PlotSeries series) {
  ensure(series.xs.size() == series.ys.size(), "series x/y sizes must match");
  series_.push_back(std::move(series));
}

void AsciiChart::print(std::ostream& os) const {
  double xmin = std::numeric_limits<double>::infinity();
  double xmax = -xmin;
  double ymin = xmin;
  double ymax = -xmin;
  bool any = false;
  for (const auto& s : series_) {
    for (std::size_t i = 0; i < s.xs.size(); ++i) {
      if (!std::isfinite(s.xs[i]) || !std::isfinite(s.ys[i])) continue;
      xmin = std::min(xmin, s.xs[i]);
      xmax = std::max(xmax, s.xs[i]);
      ymin = std::min(ymin, s.ys[i]);
      ymax = std::max(ymax, s.ys[i]);
      any = true;
    }
  }
  if (!any) return;
  if (xmax == xmin) xmax = xmin + 1.0;
  if (ymax == ymin) ymax = ymin + 1.0;
  // A little headroom so extremal points are not glued to the frame.
  const double ypad = 0.05 * (ymax - ymin);
  ymin -= ypad;
  ymax += ypad;

  std::vector<std::string> grid(height_, std::string(width_, ' '));
  for (std::size_t si = 0; si < series_.size(); ++si) {
    const char glyph = kGlyphs[si % kGlyphs.size()];
    const auto& s = series_[si];
    for (std::size_t i = 0; i < s.xs.size(); ++i) {
      if (!std::isfinite(s.xs[i]) || !std::isfinite(s.ys[i])) continue;
      const double fx = (s.xs[i] - xmin) / (xmax - xmin);
      const double fy = (s.ys[i] - ymin) / (ymax - ymin);
      const std::size_t col =
          std::min(width_ - 1, static_cast<std::size_t>(std::lround(fx * (width_ - 1))));
      const std::size_t row =
          std::min(height_ - 1, static_cast<std::size_t>(std::lround(fy * (height_ - 1))));
      grid[height_ - 1 - row][col] = glyph;  // row 0 is the top line
    }
  }

  os << title_ << "\n";
  if (!y_label_.empty()) os << "  y: " << y_label_ << "\n";
  const auto ytick = [&](std::size_t screen_row) {
    const double frac = 1.0 - static_cast<double>(screen_row) / (height_ - 1);
    return ymin + frac * (ymax - ymin);
  };
  for (std::size_t row = 0; row < height_; ++row) {
    std::ostringstream label;
    label << std::setw(9) << std::setprecision(4) << ytick(row);
    os << label.str() << " |" << grid[row] << "|\n";
  }
  os << std::string(10, ' ') << '+' << std::string(width_, '-') << "+\n";
  {
    std::ostringstream xs;
    xs << std::setprecision(4) << xmin;
    std::ostringstream xe;
    xe << std::setprecision(4) << xmax;
    const std::string left = xs.str();
    const std::string right = xe.str();
    os << std::string(11, ' ') << left;
    const std::size_t pad = width_ > left.size() + right.size()
                                ? width_ - left.size() - right.size()
                                : 1;
    os << std::string(pad, ' ') << right;
    if (!x_label_.empty()) os << "   x: " << x_label_;
    os << "\n";
  }
  os << "  legend:";
  for (std::size_t si = 0; si < series_.size(); ++si) {
    os << "  " << kGlyphs[si % kGlyphs.size()] << " = " << series_[si].name;
  }
  os << "\n";
}

}  // namespace fpsched
