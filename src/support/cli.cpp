#include "support/cli.hpp"

#include <cerrno>
#include <cstdlib>
#include <iostream>
#include <sstream>

#include "support/error.hpp"

namespace fpsched {

namespace {

/// strtoll with full-string and range checking. strtoll clamps
/// out-of-range input to LLONG_MIN/LLONG_MAX and only reports it via
/// errno, so errno must be cleared first and ERANGE rejected — otherwise
/// `--trials 99999999999999999999` silently becomes LLONG_MAX.
std::int64_t parse_int(const std::string& raw, const std::string& what) {
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(raw.c_str(), &end, 10);
  if (end == raw.c_str() || *end != '\0')
    throw InvalidArgument(what + " expects an integer, got '" + raw + "'");
  if (errno == ERANGE)
    throw InvalidArgument(what + ": integer out of range: '" + raw + "'");
  return v;
}

/// strtod with the same discipline: overflow clamps to +-HUGE_VAL (and
/// underflow to a denormal or zero) with only errno raised.
double parse_double(const std::string& raw, const std::string& what) {
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(raw.c_str(), &end);
  if (end == raw.c_str() || *end != '\0')
    throw InvalidArgument(what + " expects a number, got '" + raw + "'");
  if (errno == ERANGE)
    throw InvalidArgument(what + ": number out of range: '" + raw + "'");
  return v;
}

}  // namespace

CliParser::CliParser(std::string program_summary) : summary_(std::move(program_summary)) {}

void CliParser::add_option(const std::string& name, const std::string& default_value,
                           const std::string& help) {
  ensure(!options_.contains(name), "duplicate option: " + name);
  options_[name] = Option{default_value, help, /*is_flag=*/false};
}

void CliParser::add_flag(const std::string& name, const std::string& help) {
  ensure(!options_.contains(name), "duplicate option: " + name);
  options_[name] = Option{"false", help, /*is_flag=*/true};
}

void CliParser::allow_positionals(const std::string& placeholder, const std::string& help) {
  positionals_allowed_ = true;
  positional_placeholder_ = placeholder;
  positional_help_ = help;
}

bool CliParser::has_option(const std::string& name) const { return options_.contains(name); }

const CliParser::Option& CliParser::find(const std::string& name) const {
  const auto it = options_.find(name);
  if (it == options_.end()) throw InvalidArgument("unknown option --" + name + "\n" + help_text());
  return it->second;
}

bool CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << help_text();
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      if (!positionals_allowed_) {
        throw InvalidArgument("positional arguments are not supported: " + arg + "\n" +
                              help_text());
      }
      positionals_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      has_value = true;
    }
    const Option& opt = find(arg);
    if (opt.is_flag) {
      if (has_value) throw InvalidArgument("flag --" + arg + " does not take a value");
      values_[arg] = "true";
      continue;
    }
    if (!has_value) {
      if (i + 1 >= argc) throw InvalidArgument("option --" + arg + " expects a value");
      value = argv[++i];
    }
    values_[arg] = value;
  }
  return true;
}

std::string CliParser::get_string(const std::string& name) const {
  const Option& opt = find(name);
  const auto it = values_.find(name);
  return it == values_.end() ? opt.default_value : it->second;
}

std::int64_t CliParser::get_int(const std::string& name) const {
  return parse_int(get_string(name), "option --" + name);
}

double CliParser::get_double(const std::string& name) const {
  return parse_double(get_string(name), "option --" + name);
}

bool CliParser::get_flag(const std::string& name) const { return get_string(name) == "true"; }

std::size_t CliParser::get_count(const std::string& name, std::size_t min_value) const {
  const std::int64_t v = get_int(name);
  if (v < 0 || static_cast<std::uint64_t>(v) < min_value) {
    throw InvalidArgument("option --" + name + " must be an integer >= " +
                          std::to_string(min_value) + ", got " + std::to_string(v));
  }
  return static_cast<std::size_t>(v);
}

namespace {
/// Strict comma splitting: empty segments ("1,,2", a trailing comma, a
/// bare ",") and an empty resulting list are user errors, not values to
/// drop silently — "--sizes 100,,200" almost certainly lost a number.
std::vector<std::string> split_commas(const std::string& raw, const std::string& what) {
  std::vector<std::string> parts;
  std::stringstream ss(raw);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item.empty())
      throw InvalidArgument(what + ": empty list element in '" + raw + "'");
    parts.push_back(item);
  }
  // getline yields nothing for "" and swallows a trailing empty segment
  // ("1,2,"); catch both.
  if (parts.empty()) throw InvalidArgument(what + ": expected a non-empty comma-separated list");
  if (!raw.empty() && raw.back() == ',')
    throw InvalidArgument(what + ": empty list element in '" + raw + "'");
  return parts;
}
}  // namespace

std::vector<std::int64_t> CliParser::get_int_list(const std::string& name) const {
  std::vector<std::int64_t> out;
  const std::string what = "option --" + name;
  for (const auto& part : split_commas(get_string(name), what)) {
    out.push_back(parse_int(part, what));
  }
  return out;
}

std::vector<double> CliParser::get_double_list(const std::string& name) const {
  std::vector<double> out;
  const std::string what = "option --" + name;
  for (const auto& part : split_commas(get_string(name), what)) {
    out.push_back(parse_double(part, what));
  }
  return out;
}

std::vector<std::string> CliParser::get_string_list(const std::string& name) const {
  return split_commas(get_string(name), "option --" + name);
}

std::string CliParser::help_text() const {
  std::ostringstream os;
  os << summary_ << "\n";
  if (positionals_allowed_) {
    os << "\narguments:\n  <" << positional_placeholder_ << ">...\n      " << positional_help_
       << "\n";
  }
  os << "\noptions:\n";
  for (const auto& [name, opt] : options_) {
    os << "  --" << name;
    if (!opt.is_flag) os << " <value>";
    os << "\n      " << opt.help;
    if (!opt.is_flag) os << " (default: " << opt.default_value << ")";
    os << "\n";
  }
  return os.str();
}

}  // namespace fpsched
