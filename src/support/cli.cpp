#include "support/cli.hpp"

#include <cstdlib>
#include <iostream>
#include <sstream>

#include "support/error.hpp"

namespace fpsched {

CliParser::CliParser(std::string program_summary) : summary_(std::move(program_summary)) {}

void CliParser::add_option(const std::string& name, const std::string& default_value,
                           const std::string& help) {
  ensure(!options_.contains(name), "duplicate option: " + name);
  options_[name] = Option{default_value, help, /*is_flag=*/false};
}

void CliParser::add_flag(const std::string& name, const std::string& help) {
  ensure(!options_.contains(name), "duplicate option: " + name);
  options_[name] = Option{"false", help, /*is_flag=*/true};
}

const CliParser::Option& CliParser::find(const std::string& name) const {
  const auto it = options_.find(name);
  if (it == options_.end()) throw InvalidArgument("unknown option --" + name + "\n" + help_text());
  return it->second;
}

bool CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << help_text();
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      throw InvalidArgument("positional arguments are not supported: " + arg + "\n" + help_text());
    }
    arg = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      has_value = true;
    }
    const Option& opt = find(arg);
    if (opt.is_flag) {
      if (has_value) throw InvalidArgument("flag --" + arg + " does not take a value");
      values_[arg] = "true";
      continue;
    }
    if (!has_value) {
      if (i + 1 >= argc) throw InvalidArgument("option --" + arg + " expects a value");
      value = argv[++i];
    }
    values_[arg] = value;
  }
  return true;
}

std::string CliParser::get_string(const std::string& name) const {
  const Option& opt = find(name);
  const auto it = values_.find(name);
  return it == values_.end() ? opt.default_value : it->second;
}

std::int64_t CliParser::get_int(const std::string& name) const {
  const std::string raw = get_string(name);
  char* end = nullptr;
  const long long v = std::strtoll(raw.c_str(), &end, 10);
  if (end == raw.c_str() || *end != '\0')
    throw InvalidArgument("option --" + name + " expects an integer, got '" + raw + "'");
  return v;
}

double CliParser::get_double(const std::string& name) const {
  const std::string raw = get_string(name);
  char* end = nullptr;
  const double v = std::strtod(raw.c_str(), &end);
  if (end == raw.c_str() || *end != '\0')
    throw InvalidArgument("option --" + name + " expects a number, got '" + raw + "'");
  return v;
}

bool CliParser::get_flag(const std::string& name) const { return get_string(name) == "true"; }

std::size_t CliParser::get_count(const std::string& name, std::size_t min_value) const {
  const std::int64_t v = get_int(name);
  if (v < 0 || static_cast<std::uint64_t>(v) < min_value) {
    throw InvalidArgument("option --" + name + " must be an integer >= " +
                          std::to_string(min_value) + ", got " + std::to_string(v));
  }
  return static_cast<std::size_t>(v);
}

namespace {
std::vector<std::string> split_commas(const std::string& raw) {
  std::vector<std::string> parts;
  std::stringstream ss(raw);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) parts.push_back(item);
  }
  return parts;
}
}  // namespace

std::vector<std::int64_t> CliParser::get_int_list(const std::string& name) const {
  std::vector<std::int64_t> out;
  for (const auto& part : split_commas(get_string(name))) {
    char* end = nullptr;
    const long long v = std::strtoll(part.c_str(), &end, 10);
    if (end == part.c_str() || *end != '\0')
      throw InvalidArgument("option --" + name + ": bad integer '" + part + "'");
    out.push_back(v);
  }
  return out;
}

std::vector<double> CliParser::get_double_list(const std::string& name) const {
  std::vector<double> out;
  for (const auto& part : split_commas(get_string(name))) {
    char* end = nullptr;
    const double v = std::strtod(part.c_str(), &end);
    if (end == part.c_str() || *end != '\0')
      throw InvalidArgument("option --" + name + ": bad number '" + part + "'");
    out.push_back(v);
  }
  return out;
}

std::string CliParser::help_text() const {
  std::ostringstream os;
  os << summary_ << "\n\noptions:\n";
  for (const auto& [name, opt] : options_) {
    os << "  --" << name;
    if (!opt.is_flag) os << " <value>";
    os << "\n      " << opt.help;
    if (!opt.is_flag) os << " (default: " << opt.default_value << ")";
    os << "\n";
  }
  return os.str();
}

}  // namespace fpsched
