#include "support/table.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <limits>
#include <ostream>
#include <sstream>

#include "support/error.hpp"

namespace fpsched {

std::string format_double(double value, int digits) {
  // Normalize NaN: iostreams print "-nan" when the sign bit is set (e.g.
  // the NaN an empty RunningStats returns after arithmetic), which reads
  // like a numeric value in tables/CSV.
  if (std::isnan(value)) return "nan";
  std::ostringstream os;
  os << std::fixed << std::setprecision(digits) << value;
  return os.str();
}

std::string format_double_full(double value) {
  if (std::isnan(value)) return "nan";
  if (std::isinf(value)) return value > 0 ? "inf" : "-inf";
  std::ostringstream os;
  os << std::setprecision(std::numeric_limits<double>::max_digits10) << value;
  return os.str();
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  ensure(!headers_.empty(), "a table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  ensure(cells.size() == headers_.size(), "row width must match header width");
  rows_.push_back(std::move(cells));
}

Table::RowBuilder& Table::RowBuilder::cell(std::string value) {
  cells_.push_back(std::move(value));
  return *this;
}

Table::RowBuilder& Table::RowBuilder::cell(double value, int digits) {
  cells_.push_back(format_double(value, digits));
  return *this;
}

Table::RowBuilder& Table::RowBuilder::cell(std::size_t value) {
  cells_.push_back(std::to_string(value));
  return *this;
}

Table::RowBuilder::~RowBuilder() { table_.add_row(std::move(cells_)); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());

  const auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << "| " << std::setw(static_cast<int>(widths[c])) << cells[c] << ' ';
    }
    os << "|\n";
  };

  print_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << "|" << std::string(widths[c] + 2, '-');
  }
  os << "|\n";
  for (const auto& row : rows_) print_row(row);
}

namespace {
std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (const char ch : cell) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

void Table::to_csv(std::ostream& os) const {
  const auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c != 0) os << ',';
      os << csv_escape(cells[c]);
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace fpsched
