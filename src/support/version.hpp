// Single source of truth for the build's version string, reported by
// GET /healthz and the fpsched_info metric.
#pragma once

#include <string_view>

namespace fpsched {

inline constexpr std::string_view kVersion = "0.9.0";

}  // namespace fpsched
