// Fixed-width console tables and CSV output for benches and examples.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace fpsched {

/// Formats `value` with `digits` significant decimal places (fixed).
std::string format_double(double value, int digits = 3);

/// Round-trip formatting (max_digits10 significant digits): strtod of the
/// result recovers the exact bit pattern. Non-finite values normalize to
/// "inf" / "-inf" / "nan". For machine-readable sinks (CSV/NDJSON); human
/// tables keep format_double's fixed decimals.
std::string format_double_full(double value);

/// A small column-aligned table. Cells are strings; numeric helpers are
/// provided for the common case. Rendering pads every column to its widest
/// cell; `to_csv` emits RFC-4180-style rows (quoting cells that need it).
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  std::size_t columns() const { return headers_.size(); }
  std::size_t rows() const { return rows_.size(); }

  /// Appends a row; must match the header width.
  void add_row(std::vector<std::string> cells);

  /// Row builder for mixed string/number rows.
  class RowBuilder {
   public:
    explicit RowBuilder(Table& table) : table_(table) {}
    RowBuilder& cell(std::string value);
    RowBuilder& cell(double value, int digits = 3);
    RowBuilder& cell(std::size_t value);
    ~RowBuilder();
    RowBuilder(const RowBuilder&) = delete;
    RowBuilder& operator=(const RowBuilder&) = delete;

   private:
    Table& table_;
    std::vector<std::string> cells_;
  };

  RowBuilder row() { return RowBuilder(*this); }

  void print(std::ostream& os) const;
  void to_csv(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace fpsched
