// Error handling primitives shared by every fpsched module.
//
// The library reports contract violations and invalid inputs with exceptions
// derived from fpsched::Error; numerical routines never throw on domain
// edge cases they can represent (e.g. an expected makespan of +inf is a
// legitimate value for an astronomically failure-dominated schedule).
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>
#include <string_view>

namespace fpsched {

/// Base class for all exceptions thrown by the library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when an input value violates a documented precondition.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Thrown when a graph operation would require an acyclic graph but the
/// input contains a cycle, or when an edge references an unknown vertex.
class GraphError : public Error {
 public:
  explicit GraphError(const std::string& what) : Error(what) {}
};

/// Thrown when a schedule is not a valid linearization of its DAG.
class ScheduleError : public Error {
 public:
  explicit ScheduleError(const std::string& what) : Error(what) {}
};

/// Thrown on malformed workflow files.
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] void throw_check_failure(std::string_view expr, std::string_view message,
                                      const std::source_location& loc);
}  // namespace detail

/// Precondition check: throws InvalidArgument with location info when
/// `condition` is false. Used at public API boundaries (kept in release
/// builds; these checks are never on a hot path).
inline void ensure(bool condition, std::string_view message,
                   const std::source_location loc = std::source_location::current()) {
  if (!condition) detail::throw_check_failure("ensure", message, loc);
}

}  // namespace fpsched
