#include "support/error.hpp"

#include <sstream>

namespace fpsched::detail {

void throw_check_failure(std::string_view expr, std::string_view message,
                         const std::source_location& loc) {
  std::ostringstream os;
  os << expr << " failed at " << loc.file_name() << ":" << loc.line() << " (" << loc.function_name()
     << "): " << message;
  throw InvalidArgument(os.str());
}

}  // namespace fpsched::detail
