// Terminal line charts, used by the bench harness to render the paper's
// figures directly in the console (one glyph per series).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace fpsched {

/// A named series of (x, y) points.
struct PlotSeries {
  std::string name;
  std::vector<double> xs;
  std::vector<double> ys;
};

/// Renders a multi-series scatter/line chart onto a character grid.
class AsciiChart {
 public:
  AsciiChart(std::string title, std::size_t width = 72, std::size_t height = 20);

  /// Adds a series; points with NaN/inf y values are skipped at render time.
  void add_series(PlotSeries series);

  void set_x_label(std::string label) { x_label_ = std::move(label); }
  void set_y_label(std::string label) { y_label_ = std::move(label); }

  bool empty() const { return series_.empty(); }

  /// Draws the chart. Each series uses its own glyph; a legend maps glyphs
  /// to series names. Does nothing for charts with no finite points.
  void print(std::ostream& os) const;

 private:
  std::string title_;
  std::string x_label_;
  std::string y_label_;
  std::size_t width_;
  std::size_t height_;
  std::vector<PlotSeries> series_;
};

}  // namespace fpsched
