// Deterministic random number generation for simulations and generators.
//
// The engine is xoshiro256** (Blackman & Vigna), seeded through SplitMix64.
// It satisfies std::uniform_random_bit_generator, is cheap to copy, and
// supports deterministic sub-stream derivation (`fork`) so that parallel
// workers draw from independent, reproducible streams.
#pragma once

#include <cstdint>
#include <vector>

namespace fpsched {

/// SplitMix64 step; used for seeding and stream derivation.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** pseudo random generator with convenience distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four words of state from `seed` via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }

  /// Raw 64 random bits.
  result_type operator()();

  /// Derives an independent, reproducible stream for worker `stream_id`.
  Rng fork(std::uint64_t stream_id) const;

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n); n must be > 0.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Bernoulli draw with success probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Exponential with rate `lambda` (> 0); mean 1/lambda.
  double exponential(double lambda);

  /// Gamma(shape k > 0, scale theta > 0) via Marsaglia–Tsang.
  double gamma(double shape, double scale);

  /// Standard normal via polar Box–Muller (stateless variant, no caching).
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Gamma distribution parameterized by mean and coefficient of variation
  /// (stddev / mean); useful to synthesize task weights around a target
  /// mean. `cv = 0` returns the mean deterministically.
  double gamma_mean_cv(double mean, double cv);

  /// In-place Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& values) {
    for (std::size_t i = values.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform_index(i));
      using std::swap;
      swap(values[i - 1], values[j]);
    }
  }

 private:
  std::uint64_t state_[4];
};

}  // namespace fpsched
