// Annotated synchronization primitives for Clang's thread-safety
// analysis (-Wthread-safety).
//
// The engine runs three nested levels of hand-rolled parallelism
// (scenario workers -> budget TaskGroups -> k-block evaluator splits)
// plus a multithreaded HTTP service, and its core promise — byte-identical
// output under every threads x eval-threads x shard combination — depends
// on strict lock discipline around the little shared state that exists.
// TSan only sees the interleavings that actually execute; these wrappers
// let Clang prove lock discipline at compile time instead:
//
//   * every field touched under a lock is declared GUARDED_BY(mutex_),
//   * every helper that assumes the lock is held is declared
//     REQUIRES(mutex_),
//   * and a clang build with -Wthread-safety -Wthread-safety-beta -Werror
//     (CMake option FPSCHED_THREAD_SAFETY, on by default under Clang)
//     turns any unlocked access into a compile error.
//
// Under GCC (or any compiler without the capability attributes) every
// macro expands to nothing and the classes are zero-cost transparent
// wrappers over their std counterparts, so the annotated code builds
// everywhere and behaves identically.
//
// The macro vocabulary follows the canonical mutex.h from the Clang
// thread-safety docs; names are unprefixed on purpose so annotated code
// reads like the upstream examples.
#pragma once

#include <condition_variable>
#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define FPSCHED_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef FPSCHED_THREAD_ANNOTATION
#define FPSCHED_THREAD_ANNOTATION(x)  // no-op off Clang
#endif

#define CAPABILITY(x) FPSCHED_THREAD_ANNOTATION(capability(x))
#define SCOPED_CAPABILITY FPSCHED_THREAD_ANNOTATION(scoped_lockable)
#define GUARDED_BY(x) FPSCHED_THREAD_ANNOTATION(guarded_by(x))
#define PT_GUARDED_BY(x) FPSCHED_THREAD_ANNOTATION(pt_guarded_by(x))
#define ACQUIRED_BEFORE(...) FPSCHED_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) FPSCHED_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define REQUIRES(...) FPSCHED_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) FPSCHED_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define ACQUIRE(...) FPSCHED_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) FPSCHED_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) FPSCHED_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) FPSCHED_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) FPSCHED_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define EXCLUDES(...) FPSCHED_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define ASSERT_CAPABILITY(x) FPSCHED_THREAD_ANNOTATION(assert_capability(x))
#define RETURN_CAPABILITY(x) FPSCHED_THREAD_ANNOTATION(lock_returned(x))
#define NO_THREAD_SAFETY_ANALYSIS FPSCHED_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace fpsched {

/// std::mutex carrying the "mutex" capability. Lock it through LockGuard
/// or UniqueLock; the raw lock()/unlock() exist for completeness and are
/// equally analyzed.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mutex_.lock(); }
  void unlock() RELEASE() { mutex_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mutex_.try_lock(); }

  /// The wrapped mutex, for interop the analysis cannot follow. Callers
  /// bypassing the annotated surface must carry their own justification.
  std::mutex& native() { return mutex_; }

 private:
  friend class CondVar;
  std::mutex mutex_;
};

/// std::lock_guard over Mutex: acquires for exactly one scope.
class SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(Mutex& mutex) ACQUIRE(mutex) : mutex_(mutex) { mutex_.lock(); }
  ~LockGuard() RELEASE() { mutex_.unlock(); }

  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Mutex& mutex_;
};

/// std::unique_lock over Mutex: scoped like LockGuard but relockable —
/// stream_records-style code unlocks around a slow client write and
/// relocks after, and the analysis tracks the held/released state across
/// those calls.
class SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& mutex) ACQUIRE(mutex) : lock_(mutex.native()) {}
  ~UniqueLock() RELEASE() {}  // unlocks iff still held (std::unique_lock semantics)

  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  void lock() ACQUIRE() { lock_.lock(); }
  void unlock() RELEASE() { lock_.unlock(); }
  bool owns_lock() const { return lock_.owns_lock(); }

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// std::condition_variable bound to the annotated primitives. wait()
/// names the mutex explicitly so it can carry REQUIRES — the analysis
/// verifies at every wait site that the caller actually holds the lock
/// the predicate reads under. (The lock and mutex arguments must belong
/// together; the UniqueLock was necessarily constructed from that Mutex.)
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  /// Blocks until notified. The capability is released while blocked and
  /// reacquired before returning, which is a no-op to the static lock
  /// state — hence REQUIRES, not RELEASE+ACQUIRE.
  void wait(UniqueLock& lock, Mutex& mutex) REQUIRES(mutex) {
    (void)mutex;
    cv_.wait(lock.lock_);
  }

  /// Predicate form: loops until pred() holds; pred runs under the lock.
  template <typename Predicate>
  void wait(UniqueLock& lock, Mutex& mutex, Predicate pred) REQUIRES(mutex) {
    (void)mutex;
    cv_.wait(lock.lock_, std::move(pred));
  }

 private:
  std::condition_variable cv_;
};

}  // namespace fpsched
