#include "support/rng.hpp"

#include <cmath>

#include "support/error.hpp"

namespace fpsched {

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

Rng Rng::fork(std::uint64_t stream_id) const {
  // Hash the current state together with the stream id; children of the
  // same parent with distinct ids get well-separated seeds.
  std::uint64_t s = state_[0] ^ rotl(state_[2], 13) ^ (stream_id * 0xd1342543de82ef95ull + 1);
  return Rng(splitmix64(s));
}

double Rng::uniform() {
  // 53 high-quality bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  ensure(lo <= hi, "uniform(lo, hi) requires lo <= hi");
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  ensure(n > 0, "uniform_index requires n > 0");
  // Lemire-style rejection to avoid modulo bias.
  const std::uint64_t threshold = (~n + 1) % n;  // (2^64 - n) mod n
  for (;;) {
    const std::uint64_t r = (*this)();
    if (r >= threshold) return r % n;
  }
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::exponential(double lambda) {
  ensure(lambda > 0.0, "exponential requires lambda > 0");
  // -log(1-U) with U in [0,1) keeps the argument strictly positive.
  return -std::log1p(-uniform()) / lambda;
}

double Rng::normal() {
  for (;;) {
    const double u = uniform(-1.0, 1.0);
    const double v = uniform(-1.0, 1.0);
    const double s = u * u + v * v;
    if (s > 0.0 && s < 1.0) return u * std::sqrt(-2.0 * std::log(s) / s);
  }
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

double Rng::gamma(double shape, double scale) {
  ensure(shape > 0.0 && scale > 0.0, "gamma requires positive shape and scale");
  if (shape < 1.0) {
    // Boost to shape+1 and correct with U^{1/shape} (Marsaglia–Tsang).
    const double u = std::max(uniform(), 1e-300);
    return gamma(shape + 1.0, scale) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = 0.0;
    double v = 0.0;
    do {
      x = normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = std::max(uniform(), 1e-300);
    if (std::log(u) < 0.5 * x * x + d - d * v + d * std::log(v)) return d * v * scale;
  }
}

double Rng::gamma_mean_cv(double mean, double cv) {
  ensure(mean > 0.0 && cv >= 0.0, "gamma_mean_cv requires mean > 0 and cv >= 0");
  if (cv == 0.0) return mean;
  const double shape = 1.0 / (cv * cv);
  const double scale = mean / shape;
  return gamma(shape, scale);
}

}  // namespace fpsched
