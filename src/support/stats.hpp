// Streaming statistics (Welford) and simple summaries for experiment output.
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

namespace fpsched {

/// Numerically stable streaming mean/variance accumulator (Welford), with
/// min/max tracking and support for merging partial accumulators produced
/// by parallel workers (Chan et al. pairwise update).
class RunningStats {
 public:
  void push(double x);

  /// Merges another accumulator into this one.
  void merge(const RunningStats& other);

  std::size_t count() const { return count_; }
  /// NaN when no sample was pushed, like min()/max() — an empty
  /// accumulator must not masquerade as a real 0.0 in rendered cells.
  double mean() const { return count_ == 0 ? std::numeric_limits<double>::quiet_NaN() : mean_; }
  /// Unbiased sample variance (0 when fewer than two samples).
  double variance() const;
  double stddev() const;
  double min() const { return count_ == 0 ? std::numeric_limits<double>::quiet_NaN() : min_; }
  double max() const { return count_ == 0 ? std::numeric_limits<double>::quiet_NaN() : max_; }

  /// Standard error of the mean (0 when fewer than two samples).
  double standard_error() const;

  /// Half-width of the normal-approximation 95% confidence interval on the
  /// mean (z = 1.96).
  double ci95_halfwidth() const;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Linearly interpolated quantile (q in [0,1]) of a sample; the input is
/// copied and sorted. Returns NaN for empty input.
double quantile(std::vector<double> values, double q);

/// Relative difference |a-b| / max(|a|,|b|,eps); convenient for approximate
/// comparisons across widely varying magnitudes.
double relative_difference(double a, double b);

}  // namespace fpsched
