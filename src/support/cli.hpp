// Minimal command line parser for the examples and benches.
//
// Supported syntax: `--name value`, `--name=value`, boolean `--flag`.
// Unknown options raise an error that lists the registered options, so every
// binary self-documents via `--help`.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace fpsched {

class CliParser {
 public:
  /// `program_summary` is printed at the top of --help output.
  explicit CliParser(std::string program_summary);

  /// Registers an option with a default value (all values are strings
  /// internally; typed getters convert on access).
  void add_option(const std::string& name, const std::string& default_value,
                  const std::string& help);

  /// Registers a boolean flag (defaults to false).
  void add_flag(const std::string& name, const std::string& help);

  /// Accepts positional (non `--`) arguments, collected in order and
  /// returned by positionals(). Without this call parse() rejects them —
  /// a stray positional is almost always a mistyped option value.
  void allow_positionals(const std::string& placeholder, const std::string& help);

  /// Whether an option or flag with this name has been registered; lets
  /// shared option blocks read extras only where a binary declared them.
  bool has_option(const std::string& name) const;

  /// Parses argv. Returns false when --help was requested (help text is
  /// written to stdout); throws InvalidArgument on unknown or malformed
  /// arguments.
  bool parse(int argc, const char* const* argv);

  std::string get_string(const std::string& name) const;
  std::int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  bool get_flag(const std::string& name) const;

  /// Non-negative integer >= `min_value`, safe to use as a std::size_t.
  /// Throws InvalidArgument for negative or too-small values — guards
  /// options like `--stride 0` or `--tasks -5` that a raw size_t cast
  /// would silently turn into garbage (or an endless sweep).
  std::size_t get_count(const std::string& name, std::size_t min_value = 0) const;

  /// Comma-separated list of integers (e.g. "50,100,200").
  std::vector<std::int64_t> get_int_list(const std::string& name) const;
  /// Comma-separated list of doubles.
  std::vector<double> get_double_list(const std::string& name) const;
  /// Comma-separated list of strings (e.g. "table,chart"); rejects empty
  /// elements and empty lists like the numeric getters.
  std::vector<std::string> get_string_list(const std::string& name) const;

  /// Positional arguments in command-line order (requires
  /// allow_positionals before parse).
  const std::vector<std::string>& positionals() const { return positionals_; }

  std::string help_text() const;

 private:
  struct Option {
    std::string default_value;
    std::string help;
    bool is_flag = false;
  };

  const Option& find(const std::string& name) const;

  std::string summary_;
  std::map<std::string, Option> options_;
  std::map<std::string, std::string> values_;
  bool positionals_allowed_ = false;
  std::string positional_placeholder_;
  std::string positional_help_;
  std::vector<std::string> positionals_;
};

}  // namespace fpsched
