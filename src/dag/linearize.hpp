// DAG linearization strategies from Section 5 of the paper.
//
// A linearization is a total order of the tasks respecting dependencies.
// The paper considers three: Depth First (DF), Breadth First (BF) and
// Random First (RF). DF and BF prioritize ready tasks by decreasing
// "outweight" — the sum of the weights of a task's successors — so that
// heavy subtrees are started early.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "dag/graph.hpp"

namespace fpsched {

enum class LinearizeMethod : std::uint8_t {
  depth_first,
  breadth_first,
  random_first,
};

/// Which outweight definition drives the DF/BF priorities.
enum class OutweightMode : std::uint8_t {
  direct,       // sum of weights of immediate successors (paper's definition)
  descendants,  // sum of weights of all descendants (transitive variant)
};

struct LinearizeOptions {
  OutweightMode outweight = OutweightMode::direct;
  std::uint64_t seed = 42;  // only used by random_first

  /// Options fully determine a method's output on a fixed DAG, so equality
  /// is field-wise (used by the engine's instance cache key).
  bool operator==(const LinearizeOptions&) const = default;
};

/// Short display name: "DF", "BF", "RF".
std::string to_string(LinearizeMethod method);

/// All three methods in the paper's order.
std::span<const LinearizeMethod> all_linearize_methods();

/// Scratch arena for `linearize_into`. Buffers are resized on use and keep
/// their capacity across calls, so linearizing the same instance (or a
/// sweep of same-sized instances) repeatedly allocates nothing after the
/// first call. Holding one per worker (as the engine's instance cache
/// does) removes per-step container churn from the hot path.
struct LinearizeWorkspace {
  std::vector<double> priority;         // DF/BF outweight per vertex
  std::vector<std::uint32_t> remaining;  // open predecessor count per vertex
  std::vector<std::uint32_t> batch;      // enable-wave sequence number per vertex
  std::vector<VertexId> heap;            // DF/BF d-ary heap storage
  std::vector<VertexId> ready;           // RF ready pool
};

/// Produces a linearization of `dag` under the given strategy.
///
/// DF: among ready tasks, continue with the most recently enabled ones
/// (LIFO); newly enabled tasks of equal recency are taken by decreasing
/// priority. This makes progress toward sinks aggressively, the behavior
/// the paper argues for.
/// BF: FIFO over enabling "waves"; inside a wave, decreasing priority.
/// RF: uniformly random ready task, using options.seed.
std::vector<VertexId> linearize(const Dag& dag, std::span<const double> weights,
                                LinearizeMethod method, const LinearizeOptions& options = {});

/// Allocation-free variant: writes the order into `out` (resized to n)
/// using `ws` for every intermediate buffer. Output is identical to
/// `linearize` for every method, seed, and tie-break case.
void linearize_into(const Dag& dag, std::span<const double> weights, LinearizeMethod method,
                    const LinearizeOptions& options, LinearizeWorkspace& ws,
                    std::vector<VertexId>& out);

}  // namespace fpsched
