// Graphviz DOT export for inspecting workflows and schedules.
#pragma once

#include <iosfwd>
#include <span>
#include <string>

#include "dag/graph.hpp"

namespace fpsched {

struct DotOptions {
  std::string graph_name = "workflow";
  /// Optional per-vertex display names (empty -> "T<i>").
  std::span<const std::string> names = {};
  /// Optional per-vertex labels appended to the name (e.g. weights).
  std::span<const std::string> annotations = {};
  /// Optional checkpoint flags; checkpointed vertices are drawn filled,
  /// matching the shadowed tasks in the paper's Figure 1.
  std::span<const std::uint8_t> checkpointed = {};
};

/// Writes `dag` in DOT format.
void write_dot(std::ostream& os, const Dag& dag, const DotOptions& options = {});

}  // namespace fpsched
