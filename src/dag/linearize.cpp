#include "dag/linearize.hpp"

#include <algorithm>

#include "dag/traversal.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace fpsched {

std::string to_string(LinearizeMethod method) {
  switch (method) {
    case LinearizeMethod::depth_first: return "DF";
    case LinearizeMethod::breadth_first: return "BF";
    case LinearizeMethod::random_first: return "RF";
  }
  return "?";
}

std::span<const LinearizeMethod> all_linearize_methods() {
  static constexpr LinearizeMethod kAll[] = {
      LinearizeMethod::depth_first,
      LinearizeMethod::breadth_first,
      LinearizeMethod::random_first,
  };
  return kAll;
}

namespace {

// 4-ary heap over vertex ids; `before(a, b)` says a must pop before b.
// Flatter than a binary heap (half the levels), so fewer cache misses per
// sift on million-vertex frontiers, and no decrease-key is ever needed
// because each vertex is pushed exactly once when it becomes ready.
template <typename Before>
class QuadHeap {
 public:
  QuadHeap(std::vector<VertexId>& storage, Before before) : h_(storage), before_(before) {
    h_.clear();
  }

  bool empty() const { return h_.empty(); }

  void push(VertexId v) {
    h_.push_back(v);
    std::size_t i = h_.size() - 1;
    while (i > 0) {
      const std::size_t parent = (i - 1) / 4;
      if (!before_(h_[i], h_[parent])) break;
      std::swap(h_[i], h_[parent]);
      i = parent;
    }
  }

  VertexId pop() {
    const VertexId top = h_[0];
    h_[0] = h_.back();
    h_.pop_back();
    const std::size_t size = h_.size();
    std::size_t i = 0;
    while (true) {
      const std::size_t first_child = i * 4 + 1;
      if (first_child >= size) break;
      std::size_t best = first_child;
      const std::size_t last_child = std::min(first_child + 4, size);
      for (std::size_t c = first_child + 1; c < last_child; ++c) {
        if (before_(h_[c], h_[best])) best = c;
      }
      if (!before_(h_[best], h_[i])) break;
      std::swap(h_[i], h_[best]);
      i = best;
    }
    return top;
  }

 private:
  std::vector<VertexId>& h_;
  Before before_;
};

// DF and BF share one driver: the historic stack/deque-of-sorted-batches
// semantics collapse onto a single heap once every vertex is stamped with
// the "batch" (enable wave) that made it ready. The stack always holds
// batch segments in increasing order bottom-to-top, each sorted with the
// best vertex on top, so a DF pop is the lexicographic max of
// (batch, priority, -id); symmetrically a BF pop is the lexicographic min
// of (batch, -priority, id). One O(log n) heap op per vertex replaces the
// per-step O(k log k) batch sorts.
template <typename Before>
void run_heap(const Dag& dag, LinearizeWorkspace& ws, std::vector<VertexId>& out, Before before) {
  const std::size_t n = dag.vertex_count();
  QuadHeap<Before> heap(ws.heap, before);
  for (VertexId v = 0; v < static_cast<VertexId>(n); ++v) {
    if (ws.remaining[v] == 0) {
      ws.batch[v] = 0;
      heap.push(v);
    }
  }
  std::uint32_t wave = 0;
  while (!heap.empty()) {
    const VertexId v = heap.pop();
    out.push_back(v);
    ++wave;
    for (const VertexId s : dag.successors(v)) {
      if (--ws.remaining[s] == 0) {
        ws.batch[s] = wave;
        heap.push(s);
      }
    }
  }
}

}  // namespace

void linearize_into(const Dag& dag, std::span<const double> weights, LinearizeMethod method,
                    const LinearizeOptions& options, LinearizeWorkspace& ws,
                    std::vector<VertexId>& out) {
  const std::size_t n = dag.vertex_count();
  ensure(weights.size() == n, "weights size must match vertex count");

  ws.remaining.resize(n);
  for (VertexId v = 0; v < static_cast<VertexId>(n); ++v) {
    ws.remaining[v] = static_cast<std::uint32_t>(dag.in_degree(v));
  }
  out.clear();
  out.reserve(n);

  if (method == LinearizeMethod::random_first) {
    // RF's output depends on the exact layout of the ready pool (swap
    // remove + append), so it keeps the historic vector algorithm — only
    // the storage now lives in the workspace.
    Rng rng(options.seed);
    std::vector<VertexId>& ready = ws.ready;
    ready.clear();
    for (VertexId v = 0; v < static_cast<VertexId>(n); ++v) {
      if (ws.remaining[v] == 0) ready.push_back(v);
    }
    while (!ready.empty()) {
      const std::size_t pick = static_cast<std::size_t>(rng.uniform_index(ready.size()));
      const VertexId v = ready[pick];
      ready[pick] = ready.back();
      ready.pop_back();
      out.push_back(v);
      for (const VertexId s : dag.successors(v)) {
        if (--ws.remaining[s] == 0) ready.push_back(s);
      }
    }
  } else {
    ws.batch.resize(n);
    ws.priority.resize(n);
    if (options.outweight == OutweightMode::direct) {
      for (VertexId v = 0; v < static_cast<VertexId>(n); ++v) {
        double sum = 0.0;
        for (const VertexId s : dag.successors(v)) sum += weights[s];
        ws.priority[v] = sum;
      }
    } else {
      const std::vector<double> transitive = descendant_outweights(dag, weights);
      std::copy(transitive.begin(), transitive.end(), ws.priority.begin());
    }
    const std::span<const double> priority(ws.priority);
    const std::span<const std::uint32_t> batch(ws.batch);
    if (method == LinearizeMethod::depth_first) {
      run_heap(dag, ws, out, [priority, batch](VertexId a, VertexId b) {
        if (batch[a] != batch[b]) return batch[a] > batch[b];
        if (priority[a] != priority[b]) return priority[a] > priority[b];
        return a < b;
      });
    } else {
      run_heap(dag, ws, out, [priority, batch](VertexId a, VertexId b) {
        if (batch[a] != batch[b]) return batch[a] < batch[b];
        if (priority[a] != priority[b]) return priority[a] > priority[b];
        return a < b;
      });
    }
  }

  if (out.size() != n) throw GraphError("linearization failed: graph has a cycle");
}

std::vector<VertexId> linearize(const Dag& dag, std::span<const double> weights,
                                LinearizeMethod method, const LinearizeOptions& options) {
  LinearizeWorkspace ws;
  std::vector<VertexId> order;
  linearize_into(dag, weights, method, options, ws, order);
  return order;
}

}  // namespace fpsched
