#include "dag/linearize.hpp"

#include <algorithm>
#include <deque>

#include "dag/traversal.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace fpsched {

std::string to_string(LinearizeMethod method) {
  switch (method) {
    case LinearizeMethod::depth_first: return "DF";
    case LinearizeMethod::breadth_first: return "BF";
    case LinearizeMethod::random_first: return "RF";
  }
  return "?";
}

std::span<const LinearizeMethod> all_linearize_methods() {
  static constexpr LinearizeMethod kAll[] = {
      LinearizeMethod::depth_first,
      LinearizeMethod::breadth_first,
      LinearizeMethod::random_first,
  };
  return kAll;
}

namespace {

// Sorts `batch` by increasing (priority, then id descending) so that when
// pushed onto a stack the highest-priority vertex pops first, with id
// ascending as the deterministic tie break.
void sort_for_stack(std::vector<VertexId>& batch, std::span<const double> priority) {
  std::sort(batch.begin(), batch.end(), [&](VertexId a, VertexId b) {
    if (priority[a] != priority[b]) return priority[a] < priority[b];
    return a > b;
  });
}

// Sorts `batch` by decreasing (priority, then id ascending) for FIFO use.
void sort_for_queue(std::vector<VertexId>& batch, std::span<const double> priority) {
  std::sort(batch.begin(), batch.end(), [&](VertexId a, VertexId b) {
    if (priority[a] != priority[b]) return priority[a] > priority[b];
    return a < b;
  });
}

}  // namespace

std::vector<VertexId> linearize(const Dag& dag, std::span<const double> weights,
                                LinearizeMethod method, const LinearizeOptions& options) {
  const std::size_t n = dag.vertex_count();
  ensure(weights.size() == n, "weights size must match vertex count");

  const std::vector<double> priority = options.outweight == OutweightMode::direct
                                           ? direct_outweights(dag, weights)
                                           : descendant_outweights(dag, weights);

  std::vector<std::uint32_t> remaining(n);
  std::vector<VertexId> initial;
  for (VertexId v = 0; v < n; ++v) {
    remaining[v] = static_cast<std::uint32_t>(dag.in_degree(v));
    if (remaining[v] == 0) initial.push_back(v);
  }

  std::vector<VertexId> order;
  order.reserve(n);

  // Collects the tasks enabled by completing v.
  std::vector<VertexId> enabled;
  const auto complete = [&](VertexId v) {
    enabled.clear();
    for (const VertexId s : dag.successors(v)) {
      if (--remaining[s] == 0) enabled.push_back(s);
    }
  };

  switch (method) {
    case LinearizeMethod::depth_first: {
      std::vector<VertexId> stack;
      sort_for_stack(initial, priority);
      stack = initial;
      while (!stack.empty()) {
        const VertexId v = stack.back();
        stack.pop_back();
        order.push_back(v);
        complete(v);
        sort_for_stack(enabled, priority);
        stack.insert(stack.end(), enabled.begin(), enabled.end());
      }
      break;
    }
    case LinearizeMethod::breadth_first: {
      std::deque<VertexId> queue;
      sort_for_queue(initial, priority);
      queue.assign(initial.begin(), initial.end());
      while (!queue.empty()) {
        const VertexId v = queue.front();
        queue.pop_front();
        order.push_back(v);
        complete(v);
        sort_for_queue(enabled, priority);
        queue.insert(queue.end(), enabled.begin(), enabled.end());
      }
      break;
    }
    case LinearizeMethod::random_first: {
      Rng rng(options.seed);
      std::vector<VertexId> ready = initial;
      while (!ready.empty()) {
        const std::size_t pick = static_cast<std::size_t>(rng.uniform_index(ready.size()));
        const VertexId v = ready[pick];
        ready[pick] = ready.back();
        ready.pop_back();
        order.push_back(v);
        complete(v);
        ready.insert(ready.end(), enabled.begin(), enabled.end());
      }
      break;
    }
  }

  if (order.size() != n) throw GraphError("linearization failed: graph has a cycle");
  return order;
}

}  // namespace fpsched
