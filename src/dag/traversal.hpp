// Graph analyses shared by generators, linearizers, and the theory modules:
// level structure, critical path, reachability, linearization checking.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dag/graph.hpp"

namespace fpsched {

/// Longest-path level of each vertex: sources are level 0, every other
/// vertex is 1 + max level of its predecessors.
std::vector<std::uint32_t> vertex_levels(const Dag& dag);

/// Length (sum of weights) of the weighted critical path, and the path
/// itself (vertex ids from a source to a sink).
struct CriticalPath {
  double length = 0.0;
  std::vector<VertexId> vertices;
};
CriticalPath critical_path(const Dag& dag, std::span<const double> weights);

/// Dense reachability: descendants(v) as a bitset over vertices.
/// Memory is n^2/8 bytes — intended for analyses and tests (n up to a few
/// thousand), not for hot paths.
class Reachability {
 public:
  explicit Reachability(const Dag& dag);

  /// True when `ancestor` can reach `descendant` through directed edges
  /// (strictly: ancestor != descendant is required for a true result).
  bool reaches(VertexId ancestor, VertexId descendant) const;

  /// Number of distinct descendants of v (excluding v).
  std::size_t descendant_count(VertexId v) const;

  /// Sum of `weights` over all descendants of v (excluding v).
  double descendant_weight(VertexId v, std::span<const double> weights) const;

 private:
  std::size_t n_ = 0;
  std::size_t words_ = 0;
  std::vector<std::uint64_t> bits_;  // row-major: vertex v owns words_ words
};

/// Direct-successor weight sum for every vertex — the paper's "outweight"
/// priority (Section 5): d_i = sum of w_j over immediate successors j.
std::vector<double> direct_outweights(const Dag& dag, std::span<const double> weights);

/// Transitive variant: sum of weights over all (distinct) descendants.
std::vector<double> descendant_outweights(const Dag& dag, std::span<const double> weights);

/// Checks that `order` is a permutation of all vertices that respects every
/// dependency edge.
bool is_valid_linearization(const Dag& dag, std::span<const VertexId> order);

}  // namespace fpsched
