#include "dag/sp_tree.hpp"

#include <cstddef>
#include <unordered_map>

namespace fpsched {

namespace {

constexpr std::uint32_t kNil = 0xffffffffu;

// Reduction state over an edge arena. Edges are appended, never erased;
// a removed edge is simply unlinked from its endpoint lists and from the
// endpoint->edge map, so indices stay stable throughout.
struct Reducer {
  // Per-edge storage (parallel arrays — the reduction touches from/to and
  // the four links on every rewrite, so SoA keeps it cache friendly).
  std::vector<VertexId> from, to;
  std::vector<std::uint32_t> node;  // SP-tree node per edge; unused in bool-only mode
  std::vector<std::uint32_t> next_out, prev_out, next_in, prev_in;

  // Per-vertex list heads and degrees (sized n + 2 for virtual terminals).
  std::vector<std::uint32_t> out_head, in_head;
  std::vector<std::uint32_t> out_deg, in_deg;

  // Alive edges keyed by (from << 32) | to; detects parallel partners in
  // O(1) regardless of endpoint degree (a linked-list scan would go
  // quadratic on star-shaped graphs).
  std::unordered_map<std::uint64_t, std::uint32_t> by_endpoints;

  std::vector<SpNode>* tree = nullptr;  // nullptr = bool-only mode

  // Vertices whose degrees changed and may now be series-reducible.
  std::vector<VertexId> worklist;

  static std::uint64_t key(VertexId u, VertexId v) {
    return (static_cast<std::uint64_t>(u) << 32) | v;
  }

  void init(std::size_t vertex_capacity, std::size_t edge_capacity) {
    from.reserve(edge_capacity);
    to.reserve(edge_capacity);
    if (tree) node.reserve(edge_capacity);
    next_out.reserve(edge_capacity);
    prev_out.reserve(edge_capacity);
    next_in.reserve(edge_capacity);
    prev_in.reserve(edge_capacity);
    out_head.assign(vertex_capacity, kNil);
    in_head.assign(vertex_capacity, kNil);
    out_deg.assign(vertex_capacity, 0);
    in_deg.assign(vertex_capacity, 0);
    by_endpoints.reserve(edge_capacity);
  }

  std::uint32_t make_node(SpKind kind, VertexId u, VertexId v, std::uint32_t left,
                          std::uint32_t right) {
    if (!tree) return kNil;
    tree->push_back({kind, u, v, left, right});
    return static_cast<std::uint32_t>(tree->size() - 1);
  }

  // Adds edge (u, v) carrying SP-tree node `n`. If an alive edge with the
  // same endpoints exists this is a CombineParallel: the existing edge
  // absorbs the new branch and no degree changes.
  void add(VertexId u, VertexId v, std::uint32_t n) {
    const auto [it, inserted] = by_endpoints.try_emplace(key(u, v), 0);
    if (!inserted) {
      const std::uint32_t survivor = it->second;
      if (tree) node[survivor] = make_node(SpKind::parallel, u, v, node[survivor], n);
      return;
    }
    const std::uint32_t e = static_cast<std::uint32_t>(from.size());
    it->second = e;
    from.push_back(u);
    to.push_back(v);
    if (tree) node.push_back(n);
    next_out.push_back(out_head[u]);
    prev_out.push_back(kNil);
    if (out_head[u] != kNil) prev_out[out_head[u]] = e;
    out_head[u] = e;
    next_in.push_back(in_head[v]);
    prev_in.push_back(kNil);
    if (in_head[v] != kNil) prev_in[in_head[v]] = e;
    in_head[v] = e;
    ++out_deg[u];
    ++in_deg[v];
  }

  void unlink(std::uint32_t e) {
    const VertexId u = from[e];
    const VertexId v = to[e];
    if (prev_out[e] != kNil) next_out[prev_out[e]] = next_out[e];
    else out_head[u] = next_out[e];
    if (next_out[e] != kNil) prev_out[next_out[e]] = prev_out[e];
    if (prev_in[e] != kNil) next_in[prev_in[e]] = next_in[e];
    else in_head[v] = next_in[e];
    if (next_in[e] != kNil) prev_in[next_in[e]] = prev_in[e];
    --out_deg[u];
    --in_deg[v];
    by_endpoints.erase(key(u, v));
  }

  // Exhaustively applies CombineSeries (with CombineParallel folded into
  // `add`) at every vertex except the two terminals.
  void run(VertexId source_id, VertexId sink_id) {
    while (!worklist.empty()) {
      const VertexId v = worklist.back();
      worklist.pop_back();
      if (v == source_id || v == sink_id) continue;
      if (in_deg[v] != 1 || out_deg[v] != 1) continue;
      const std::uint32_t ein = in_head[v];
      const std::uint32_t eout = out_head[v];
      const VertexId u = from[ein];
      const VertexId w = to[eout];
      const std::uint32_t merged =
          tree ? make_node(SpKind::series, u, w, node[ein], node[eout]) : kNil;
      unlink(ein);
      unlink(eout);
      add(u, w, merged);
      // A parallel merge at (u, w) lowers u's out-degree / w's in-degree,
      // which can enable series reductions there.
      worklist.push_back(u);
      worklist.push_back(w);
    }
  }
};

// Shared driver: seeds the reducer from CSR adjacency, augments virtual
// terminals when needed, runs the reduction, and reports the outcome.
// Returns true when the (augmented) graph reduced to a single edge.
bool reduce(std::size_t n, std::span<const std::uint32_t> succ_offsets,
            std::span<const VertexId> succ_list, std::span<const VertexId> sources,
            std::span<const VertexId> sinks, Reducer& r, bool* used_virtual,
            std::uint32_t* root_out) {
  if (n <= 1) {
    if (used_virtual) *used_virtual = false;
    if (root_out) *root_out = kNil;
    return true;
  }

  const bool virtual_source = sources.size() != 1;
  const bool virtual_sink = sinks.size() != 1;
  const VertexId s = virtual_source ? static_cast<VertexId>(n) : sources[0];
  const VertexId t = virtual_sink ? static_cast<VertexId>(n + 1) : sinks[0];
  if (used_virtual) *used_virtual = virtual_source || virtual_sink;

  const std::size_t base_edges = succ_list.size();
  const std::size_t extra = (virtual_source ? sources.size() : 0) +
                            (virtual_sink ? sinks.size() : 0);
  // Every series reduction retires two edges and adds at most one, so the
  // arena never holds more than the initial edges plus one per vertex.
  r.init(n + 2, base_edges + extra + n);

  for (VertexId u = 0; u < static_cast<VertexId>(n); ++u) {
    for (std::uint32_t i = succ_offsets[u]; i < succ_offsets[u + 1]; ++i) {
      const VertexId v = succ_list[i];
      r.add(u, v, r.make_node(SpKind::edge, u, v, kNil, kNil));
    }
  }
  if (virtual_source) {
    for (const VertexId v : sources) r.add(s, v, r.make_node(SpKind::edge, s, v, kNil, kNil));
  }
  if (virtual_sink) {
    for (const VertexId v : sinks) r.add(v, t, r.make_node(SpKind::edge, v, t, kNil, kNil));
  }

  r.worklist.reserve(n);
  for (VertexId v = 0; v < static_cast<VertexId>(n); ++v) r.worklist.push_back(v);
  r.run(s, t);

  if (r.by_endpoints.size() != 1) return false;
  if (root_out) {
    const std::uint32_t last = r.by_endpoints.begin()->second;
    *root_out = r.tree ? r.node[last] : kNil;
  }
  return true;
}

}  // namespace

SpDecomposition sp_decompose(const Dag& dag) {
  const std::size_t n = dag.vertex_count();
  std::span<const std::uint32_t> offsets = dag.successor_offsets();
  std::span<const VertexId> list = dag.successor_list();

  SpDecomposition result;
  Reducer r;
  r.tree = &result.nodes;
  result.is_series_parallel = reduce(n, offsets, list, dag.sources(), dag.sinks(), r,
                                     &result.virtual_terminals, &result.root);
  if (!result.is_series_parallel) {
    result.root = kSpNoChild;
    result.nodes.clear();
    result.nodes.shrink_to_fit();
  }
  return result;
}

namespace detail {

bool csr_is_series_parallel(std::size_t n, std::span<const std::uint32_t> succ_offsets,
                            std::span<const VertexId> succ_list,
                            std::span<const VertexId> sources, std::span<const VertexId> sinks) {
  Reducer r;
  return reduce(n, succ_offsets, succ_list, sources, sinks, r, nullptr, nullptr);
}

}  // namespace detail

}  // namespace fpsched
