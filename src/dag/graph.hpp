// Immutable directed acyclic graph in compressed sparse row form.
//
// Vertices are dense ids [0, n). Both predecessor and successor adjacency
// are materialized because the evaluator walks predecessors while the
// linearizers walk successors; CSR keeps both walks cache friendly
// (Core Guidelines Per.16/Per.19: compact data, predictable access).
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace fpsched {

using VertexId = std::uint32_t;

class Dag;

/// Streaming edge accumulator; `build()` validates (vertex ranges,
/// duplicate edges, acyclicity) and freezes into a Dag.
///
/// Edges are stored as two parallel id arrays in emission order — no
/// pair-vector staging, no global sort. The freeze counting-sorts them
/// into CSR and deduplicates per row, so building a million-task graph
/// costs O(n + e) time and exactly the arrays you see here. Call
/// `reserve()` up front when the counts are known to avoid regrowth.
class DagBuilder {
 public:
  DagBuilder() = default;
  explicit DagBuilder(std::size_t expected_vertices);

  /// Pre-sizes the edge arrays for a known instance shape.
  void reserve(std::size_t vertices, std::size_t edges);

  /// Adds one vertex, returning its id (ids are consecutive from 0).
  VertexId add_vertex();

  /// Adds `count` vertices, returning the first id.
  VertexId add_vertices(std::size_t count);

  /// Adds the dependency edge `from -> to`. Self loops are rejected
  /// immediately; duplicate edges are deduplicated at build time.
  void add_edge(VertexId from, VertexId to);

  std::size_t vertex_count() const { return vertex_count_; }
  std::size_t edge_count() const { return edge_from_.size(); }

  /// Validates and freezes. Throws GraphError on cycles.
  Dag build() &&;

 private:
  std::size_t vertex_count_ = 0;
  std::vector<VertexId> edge_from_;
  std::vector<VertexId> edge_to_;
};

/// Frozen DAG with CSR adjacency in both directions and a cached
/// topological order (by construction: Kahn's algorithm with smallest-id
/// tie-breaking, so the order is deterministic).
class Dag {
 public:
  Dag() = default;

  std::size_t vertex_count() const { return pred_offsets_.empty() ? 0 : pred_offsets_.size() - 1; }
  std::size_t edge_count() const { return pred_list_.size(); }

  std::span<const VertexId> predecessors(VertexId v) const;
  std::span<const VertexId> successors(VertexId v) const;

  std::size_t in_degree(VertexId v) const { return predecessors(v).size(); }
  std::size_t out_degree(VertexId v) const { return successors(v).size(); }

  /// Vertices with no predecessors, ascending by id (computed at freeze).
  std::span<const VertexId> sources() const { return sources_; }
  /// Vertices with no successors, ascending by id (computed at freeze).
  std::span<const VertexId> sinks() const { return sinks_; }

  /// A fixed, deterministic topological order (smallest id first among
  /// ready vertices).
  std::span<const VertexId> topological_order() const { return topo_order_; }

  /// True if the edge `from -> to` exists (binary search on CSR row).
  bool has_edge(VertexId from, VertexId to) const;

  /// True when the DAG (augmented with a virtual source/sink if it has
  /// several) is two-terminal series-parallel; classified at freeze by the
  /// sp_tree reduction. `sp_decompose` yields the actual tree.
  bool is_series_parallel() const { return series_parallel_; }

  /// Raw successor CSR (offsets has vertex_count() + 1 entries); exposed
  /// for analyses that stream the whole adjacency, e.g. sp_tree.
  std::span<const std::uint32_t> successor_offsets() const { return succ_offsets_; }
  std::span<const VertexId> successor_list() const { return succ_list_; }

  /// Heap bytes held by the frozen representation (provenance for the
  /// instance-memory bench rows).
  std::size_t memory_bytes() const;

  /// Builds a Dag directly from an edge list over `n` vertices.
  static Dag from_edges(std::size_t n, std::span<const std::pair<VertexId, VertexId>> edges);

 private:
  friend class DagBuilder;

  /// Shared freeze core: consumes parallel from/to arrays in emission
  /// order and produces the fully validated Dag.
  static Dag freeze(std::size_t n, std::vector<VertexId> edge_from, std::vector<VertexId> edge_to);

  std::vector<std::uint32_t> pred_offsets_;
  std::vector<VertexId> pred_list_;
  std::vector<std::uint32_t> succ_offsets_;
  std::vector<VertexId> succ_list_;
  std::vector<VertexId> topo_order_;
  std::vector<VertexId> sources_;
  std::vector<VertexId> sinks_;
  bool series_parallel_ = true;  // empty DAG is trivially SP
};

}  // namespace fpsched
