// Series-parallel structure detection and decomposition.
//
// A two-terminal DAG is series-parallel (SP) when it reduces to a single
// source->sink edge under two local rewrites: CombineSeries (splice out a
// vertex with in-degree 1 and out-degree 1) and CombineParallel (merge two
// edges sharing both endpoints). Multi-source/multi-sink workflow graphs
// are judged after augmenting with a virtual source/sink, the standard
// embedding used by SP-DAG analyses. The reduction is bottom-up over the
// CSR adjacency and runs in O((n + e) * alpha) with a hash map keyed by
// edge endpoints, so million-task instances classify in well under a
// second.
//
// The Dag freeze path uses the cheap boolean entry point to record
// `is_series_parallel()`; `sp_decompose` additionally materializes the
// binary decomposition tree for the future exact-on-SP evaluation path.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dag/graph.hpp"

namespace fpsched {

inline constexpr std::uint32_t kSpNoChild = 0xffffffffu;

enum class SpKind : std::uint8_t {
  edge,      // leaf: one DAG edge (possibly to/from a virtual terminal)
  series,    // left then right, sharing an interior vertex
  parallel,  // left and right between the same two terminals
};

/// One node of the binary decomposition tree. `source`/`sink` are the
/// two terminals of the sub-DAG this node represents; for leaves they are
/// the edge endpoints. Virtual terminals use ids n (source) and n + 1
/// (sink) where n is the original vertex count.
struct SpNode {
  SpKind kind = SpKind::edge;
  VertexId source = 0;
  VertexId sink = 0;
  std::uint32_t left = kSpNoChild;
  std::uint32_t right = kSpNoChild;
};

struct SpDecomposition {
  bool is_series_parallel = false;
  /// True when a virtual source and/or sink had to be added (the graph had
  /// multiple sources or sinks).
  bool virtual_terminals = false;
  /// Root node index into `nodes`, or kSpNoChild when not SP (nodes empty).
  std::uint32_t root = kSpNoChild;
  std::vector<SpNode> nodes;
};

/// Runs the full reduction and returns the decomposition tree. For non-SP
/// graphs `is_series_parallel` is false and `nodes` is empty.
SpDecomposition sp_decompose(const Dag& dag);

namespace detail {

/// Boolean-only reduction over raw CSR data, used by the Dag freeze path
/// before the Dag object exists. `succ_offsets` has n + 1 entries.
bool csr_is_series_parallel(std::size_t n, std::span<const std::uint32_t> succ_offsets,
                            std::span<const VertexId> succ_list,
                            std::span<const VertexId> sources, std::span<const VertexId> sinks);

}  // namespace detail

}  // namespace fpsched
