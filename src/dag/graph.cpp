#include "dag/graph.hpp"

#include <algorithm>
#include <queue>
#include <string>

#include "dag/sp_tree.hpp"
#include "support/error.hpp"

namespace fpsched {

DagBuilder::DagBuilder(std::size_t expected_vertices) {
  reserve(expected_vertices, expected_vertices * 2);
}

void DagBuilder::reserve(std::size_t /*vertices*/, std::size_t edges) {
  edge_from_.reserve(edges);
  edge_to_.reserve(edges);
}

VertexId DagBuilder::add_vertex() { return add_vertices(1); }

VertexId DagBuilder::add_vertices(std::size_t count) {
  const VertexId first = static_cast<VertexId>(vertex_count_);
  vertex_count_ += count;
  return first;
}

void DagBuilder::add_edge(VertexId from, VertexId to) {
  if (from == to) throw GraphError("self loop on vertex " + std::to_string(from));
  if (from >= vertex_count_ || to >= vertex_count_)
    throw GraphError("edge (" + std::to_string(from) + "," + std::to_string(to) +
                     ") references an unknown vertex");
  edge_from_.push_back(from);
  edge_to_.push_back(to);
}

Dag DagBuilder::build() && {
  return Dag::freeze(vertex_count_, std::move(edge_from_), std::move(edge_to_));
}

Dag Dag::from_edges(std::size_t n, std::span<const std::pair<VertexId, VertexId>> raw_edges) {
  std::vector<VertexId> edge_from;
  std::vector<VertexId> edge_to;
  edge_from.reserve(raw_edges.size());
  edge_to.reserve(raw_edges.size());
  for (const auto& [u, v] : raw_edges) {
    if (u == v) throw GraphError("self loop on vertex " + std::to_string(u));
    if (u >= n || v >= n)
      throw GraphError("edge (" + std::to_string(u) + "," + std::to_string(v) +
                       ") references an unknown vertex");
    edge_from.push_back(u);
    edge_to.push_back(v);
  }
  return freeze(n, std::move(edge_from), std::move(edge_to));
}

Dag Dag::freeze(std::size_t n, std::vector<VertexId> edge_from, std::vector<VertexId> edge_to) {
  Dag dag;

  // Counting sort by source: one count pass, one scatter pass. Rows come
  // out in emission order; duplicates survive until the per-row dedup.
  dag.succ_offsets_.assign(n + 1, 0);
  for (const VertexId u : edge_from) ++dag.succ_offsets_[u + 1];
  for (std::size_t i = 0; i < n; ++i) dag.succ_offsets_[i + 1] += dag.succ_offsets_[i];

  dag.succ_list_.resize(edge_from.size());
  std::vector<std::uint32_t> fill(dag.succ_offsets_.begin(),
                                  dag.succ_offsets_.end() - (n ? 1 : 0));
  for (std::size_t i = 0; i < edge_from.size(); ++i) {
    dag.succ_list_[fill[edge_from[i]]++] = edge_to[i];
  }
  // The emission-order arrays are dead from here; release them before the
  // second CSR so peak memory stays at one copy of the edge set.
  edge_from = {};
  edge_to = {};

  // Per-row sort + dedup, compacting the list in place (the write cursor
  // never passes the read cursor because rows only shrink).
  std::uint32_t write = 0;
  for (std::size_t v = 0; v < n; ++v) {
    const std::uint32_t begin = dag.succ_offsets_[v];
    const std::uint32_t end = dag.succ_offsets_[v + 1];
    std::sort(dag.succ_list_.begin() + begin, dag.succ_list_.begin() + end);
    dag.succ_offsets_[v] = write;
    for (std::uint32_t i = begin; i < end; ++i) {
      if (i == begin || dag.succ_list_[i] != dag.succ_list_[i - 1]) {
        dag.succ_list_[write++] = dag.succ_list_[i];
      }
    }
  }
  if (n > 0) dag.succ_offsets_[n] = write;
  dag.succ_list_.resize(write);
  dag.succ_list_.shrink_to_fit();

  // Predecessor CSR from the deduplicated successor CSR. Scanning sources
  // in ascending order leaves every predecessor row already sorted.
  dag.pred_offsets_.assign(n + 1, 0);
  for (const VertexId w : dag.succ_list_) ++dag.pred_offsets_[w + 1];
  for (std::size_t i = 0; i < n; ++i) dag.pred_offsets_[i + 1] += dag.pred_offsets_[i];
  dag.pred_list_.resize(write);
  if (n > 0) fill.assign(dag.pred_offsets_.begin(), dag.pred_offsets_.end() - 1);
  for (VertexId u = 0; u < static_cast<VertexId>(n); ++u) {
    for (const VertexId w : dag.successors(u)) dag.pred_list_[fill[w]++] = u;
  }

  // Kahn's algorithm, smallest ready id first: deterministic topological
  // order and cycle detection in one pass.
  std::vector<std::uint32_t> remaining(n);
  std::priority_queue<VertexId, std::vector<VertexId>, std::greater<>> ready;
  for (std::size_t v = 0; v < n; ++v) {
    remaining[v] = static_cast<std::uint32_t>(dag.in_degree(static_cast<VertexId>(v)));
    if (remaining[v] == 0) ready.push(static_cast<VertexId>(v));
  }
  dag.topo_order_.reserve(n);
  while (!ready.empty()) {
    const VertexId v = ready.top();
    ready.pop();
    dag.topo_order_.push_back(v);
    for (const VertexId s : dag.successors(v)) {
      if (--remaining[s] == 0) ready.push(s);
    }
  }
  if (dag.topo_order_.size() != n) throw GraphError("graph contains a cycle");

  for (VertexId v = 0; v < static_cast<VertexId>(n); ++v) {
    if (dag.in_degree(v) == 0) dag.sources_.push_back(v);
    if (dag.out_degree(v) == 0) dag.sinks_.push_back(v);
  }

  dag.series_parallel_ = detail::csr_is_series_parallel(n, dag.succ_offsets_, dag.succ_list_,
                                                        dag.sources_, dag.sinks_);
  return dag;
}

std::span<const VertexId> Dag::predecessors(VertexId v) const {
  return {pred_list_.data() + pred_offsets_[v], pred_list_.data() + pred_offsets_[v + 1]};
}

std::span<const VertexId> Dag::successors(VertexId v) const {
  return {succ_list_.data() + succ_offsets_[v], succ_list_.data() + succ_offsets_[v + 1]};
}

bool Dag::has_edge(VertexId from, VertexId to) const {
  const auto row = successors(from);
  return std::binary_search(row.begin(), row.end(), to);
}

std::size_t Dag::memory_bytes() const {
  return pred_offsets_.capacity() * sizeof(std::uint32_t) +
         pred_list_.capacity() * sizeof(VertexId) +
         succ_offsets_.capacity() * sizeof(std::uint32_t) +
         succ_list_.capacity() * sizeof(VertexId) + topo_order_.capacity() * sizeof(VertexId) +
         sources_.capacity() * sizeof(VertexId) + sinks_.capacity() * sizeof(VertexId);
}

}  // namespace fpsched
