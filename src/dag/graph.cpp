#include "dag/graph.hpp"

#include <algorithm>
#include <queue>
#include <string>

#include "support/error.hpp"

namespace fpsched {

DagBuilder::DagBuilder(std::size_t expected_vertices) {
  edges_.reserve(expected_vertices * 2);
  vertex_count_ = 0;
}

VertexId DagBuilder::add_vertex() { return add_vertices(1); }

VertexId DagBuilder::add_vertices(std::size_t count) {
  const VertexId first = static_cast<VertexId>(vertex_count_);
  vertex_count_ += count;
  return first;
}

void DagBuilder::add_edge(VertexId from, VertexId to) {
  if (from == to) throw GraphError("self loop on vertex " + std::to_string(from));
  if (from >= vertex_count_ || to >= vertex_count_)
    throw GraphError("edge (" + std::to_string(from) + "," + std::to_string(to) +
                     ") references an unknown vertex");
  edges_.emplace_back(from, to);
}

Dag DagBuilder::build() && {
  return Dag::from_edges(vertex_count_, edges_);
}

Dag Dag::from_edges(std::size_t n, std::span<const std::pair<VertexId, VertexId>> raw_edges) {
  for (const auto& [u, v] : raw_edges) {
    if (u == v) throw GraphError("self loop on vertex " + std::to_string(u));
    if (u >= n || v >= n)
      throw GraphError("edge (" + std::to_string(u) + "," + std::to_string(v) +
                       ") references an unknown vertex");
  }
  std::vector<std::pair<VertexId, VertexId>> edges(raw_edges.begin(), raw_edges.end());
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

  Dag dag;
  dag.pred_offsets_.assign(n + 1, 0);
  dag.succ_offsets_.assign(n + 1, 0);
  for (const auto& [u, v] : edges) {
    ++dag.succ_offsets_[u + 1];
    ++dag.pred_offsets_[v + 1];
  }
  for (std::size_t i = 0; i < n; ++i) {
    dag.pred_offsets_[i + 1] += dag.pred_offsets_[i];
    dag.succ_offsets_[i + 1] += dag.succ_offsets_[i];
  }
  dag.pred_list_.resize(edges.size());
  dag.succ_list_.resize(edges.size());
  {
    std::vector<std::uint32_t> pred_fill(dag.pred_offsets_.begin(), dag.pred_offsets_.end() - 1);
    std::vector<std::uint32_t> succ_fill(dag.succ_offsets_.begin(), dag.succ_offsets_.end() - 1);
    for (const auto& [u, v] : edges) {
      dag.succ_list_[succ_fill[u]++] = v;
      dag.pred_list_[pred_fill[v]++] = u;
    }
  }
  // Rows come out sorted because the edge list was sorted (succ rows by
  // construction; pred rows need a per-row sort since edges were sorted by
  // source first).
  for (std::size_t v = 0; v < n; ++v) {
    std::sort(dag.pred_list_.begin() + dag.pred_offsets_[v],
              dag.pred_list_.begin() + dag.pred_offsets_[v + 1]);
  }

  // Kahn's algorithm, smallest ready id first: deterministic topological
  // order and cycle detection in one pass.
  std::vector<std::uint32_t> remaining(n);
  std::priority_queue<VertexId, std::vector<VertexId>, std::greater<>> ready;
  for (std::size_t v = 0; v < n; ++v) {
    remaining[v] = static_cast<std::uint32_t>(dag.in_degree(static_cast<VertexId>(v)));
    if (remaining[v] == 0) ready.push(static_cast<VertexId>(v));
  }
  dag.topo_order_.reserve(n);
  while (!ready.empty()) {
    const VertexId v = ready.top();
    ready.pop();
    dag.topo_order_.push_back(v);
    for (const VertexId s : dag.successors(v)) {
      if (--remaining[s] == 0) ready.push(s);
    }
  }
  if (dag.topo_order_.size() != n) throw GraphError("graph contains a cycle");
  return dag;
}

std::span<const VertexId> Dag::predecessors(VertexId v) const {
  return {pred_list_.data() + pred_offsets_[v], pred_list_.data() + pred_offsets_[v + 1]};
}

std::span<const VertexId> Dag::successors(VertexId v) const {
  return {succ_list_.data() + succ_offsets_[v], succ_list_.data() + succ_offsets_[v + 1]};
}

std::vector<VertexId> Dag::sources() const {
  std::vector<VertexId> out;
  for (VertexId v = 0; v < vertex_count(); ++v)
    if (in_degree(v) == 0) out.push_back(v);
  return out;
}

std::vector<VertexId> Dag::sinks() const {
  std::vector<VertexId> out;
  for (VertexId v = 0; v < vertex_count(); ++v)
    if (out_degree(v) == 0) out.push_back(v);
  return out;
}

bool Dag::has_edge(VertexId from, VertexId to) const {
  const auto row = successors(from);
  return std::binary_search(row.begin(), row.end(), to);
}

}  // namespace fpsched
