#include "dag/dot.hpp"

#include <ostream>

namespace fpsched {

void write_dot(std::ostream& os, const Dag& dag, const DotOptions& options) {
  os << "digraph " << options.graph_name << " {\n";
  os << "  rankdir=TB;\n  node [shape=ellipse];\n";
  for (VertexId v = 0; v < dag.vertex_count(); ++v) {
    os << "  n" << v << " [label=\"";
    if (!options.names.empty()) os << options.names[v];
    else os << "T" << v;
    if (!options.annotations.empty() && !options.annotations[v].empty())
      os << "\\n" << options.annotations[v];
    os << "\"";
    if (!options.checkpointed.empty() && options.checkpointed[v] != 0)
      os << " style=filled fillcolor=gray80";
    os << "];\n";
  }
  for (VertexId v = 0; v < dag.vertex_count(); ++v) {
    for (const VertexId s : dag.successors(v)) os << "  n" << v << " -> n" << s << ";\n";
  }
  os << "}\n";
}

}  // namespace fpsched
