#include "dag/traversal.hpp"

#include <algorithm>
#include <bit>

#include "support/error.hpp"

namespace fpsched {

std::vector<std::uint32_t> vertex_levels(const Dag& dag) {
  std::vector<std::uint32_t> level(dag.vertex_count(), 0);
  for (const VertexId v : dag.topological_order()) {
    for (const VertexId p : dag.predecessors(v)) {
      level[v] = std::max(level[v], level[p] + 1);
    }
  }
  return level;
}

CriticalPath critical_path(const Dag& dag, std::span<const double> weights) {
  const std::size_t n = dag.vertex_count();
  ensure(weights.size() == n, "weights size must match vertex count");
  CriticalPath result;
  if (n == 0) return result;

  std::vector<double> best(n, 0.0);
  std::vector<VertexId> from(n, static_cast<VertexId>(n));  // n = "no predecessor"
  double best_total = -1.0;
  VertexId best_end = 0;
  for (const VertexId v : dag.topological_order()) {
    double incoming = 0.0;
    for (const VertexId p : dag.predecessors(v)) {
      if (best[p] > incoming) {
        incoming = best[p];
        from[v] = p;
      }
    }
    best[v] = incoming + weights[v];
    if (best[v] > best_total) {
      best_total = best[v];
      best_end = v;
    }
  }
  result.length = best_total;
  for (VertexId v = best_end; v != static_cast<VertexId>(n); v = from[v]) {
    result.vertices.push_back(v);
    if (from[v] == static_cast<VertexId>(n)) break;
  }
  std::reverse(result.vertices.begin(), result.vertices.end());
  return result;
}

Reachability::Reachability(const Dag& dag)
    : n_(dag.vertex_count()), words_((n_ + 63) / 64), bits_(n_ * words_, 0) {
  // Reverse topological sweep: desc(v) = union over successors s of
  // ({s} | desc(s)).
  const auto topo = dag.topological_order();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const VertexId v = *it;
    std::uint64_t* row = bits_.data() + static_cast<std::size_t>(v) * words_;
    for (const VertexId s : dag.successors(v)) {
      row[s / 64] |= (1ull << (s % 64));
      const std::uint64_t* srow = bits_.data() + static_cast<std::size_t>(s) * words_;
      for (std::size_t w = 0; w < words_; ++w) row[w] |= srow[w];
    }
  }
}

bool Reachability::reaches(VertexId ancestor, VertexId descendant) const {
  const std::uint64_t* row = bits_.data() + static_cast<std::size_t>(ancestor) * words_;
  return (row[descendant / 64] >> (descendant % 64)) & 1ull;
}

std::size_t Reachability::descendant_count(VertexId v) const {
  const std::uint64_t* row = bits_.data() + static_cast<std::size_t>(v) * words_;
  std::size_t count = 0;
  for (std::size_t w = 0; w < words_; ++w) count += std::popcount(row[w]);
  return count;
}

double Reachability::descendant_weight(VertexId v, std::span<const double> weights) const {
  ensure(weights.size() == n_, "weights size must match vertex count");
  const std::uint64_t* row = bits_.data() + static_cast<std::size_t>(v) * words_;
  double total = 0.0;
  for (std::size_t w = 0; w < words_; ++w) {
    std::uint64_t bitsword = row[w];
    while (bitsword != 0) {
      const int bit = std::countr_zero(bitsword);
      total += weights[w * 64 + static_cast<std::size_t>(bit)];
      bitsword &= bitsword - 1;
    }
  }
  return total;
}

std::vector<double> direct_outweights(const Dag& dag, std::span<const double> weights) {
  ensure(weights.size() == dag.vertex_count(), "weights size must match vertex count");
  std::vector<double> out(dag.vertex_count(), 0.0);
  for (VertexId v = 0; v < dag.vertex_count(); ++v) {
    for (const VertexId s : dag.successors(v)) out[v] += weights[s];
  }
  return out;
}

std::vector<double> descendant_outweights(const Dag& dag, std::span<const double> weights) {
  const Reachability reach(dag);
  std::vector<double> out(dag.vertex_count(), 0.0);
  for (VertexId v = 0; v < dag.vertex_count(); ++v) {
    out[v] = reach.descendant_weight(v, weights);
  }
  return out;
}

bool is_valid_linearization(const Dag& dag, std::span<const VertexId> order) {
  const std::size_t n = dag.vertex_count();
  if (order.size() != n) return false;
  std::vector<std::uint32_t> position(n, 0);
  std::vector<bool> seen(n, false);
  for (std::size_t i = 0; i < n; ++i) {
    const VertexId v = order[i];
    if (v >= n || seen[v]) return false;
    seen[v] = true;
    position[v] = static_cast<std::uint32_t>(i);
  }
  for (VertexId v = 0; v < n; ++v) {
    for (const VertexId p : dag.predecessors(v)) {
      if (position[p] >= position[v]) return false;
    }
  }
  return true;
}

}  // namespace fpsched
