// Opt-in scoped tracing exported as chrome://tracing JSON.
//
// Tracing is off by default and costs one relaxed atomic load per
// TraceSpan construction. When enabled (start_tracing(), or --trace on
// the CLIs), each span records a complete "X" event into a per-thread
// buffer; buffers are owned by a process-wide recorder so they survive
// thread exit (engine worker threads come and go per run). Spans carry
// no payload back into the traced code, so — like metrics — tracing can
// never perturb the deterministic output path.
#pragma once

#include <cstdint>
#include <string>
#include <utility>

namespace fpsched::obs {

bool tracing_enabled();

/// Clears all previously recorded events and starts recording. The
/// trace clock epoch is reset so exported timestamps start near zero.
void start_tracing();

/// Stops recording; already-recorded events remain exportable.
void stop_tracing();

/// The merged trace as a chrome://tracing JSON document
/// ({"traceEvents":[...]}). May be called while tracing is active.
std::string trace_json();

/// Writes trace_json() to `path`; throws Error on I/O failure.
void write_trace_file(const std::string& path);

namespace detail {
void record_event(std::string name, std::uint64_t start_ns, std::uint64_t dur_ns);
}  // namespace detail

/// RAII span: records [construction, destruction) as one trace event.
/// The name-factory constructor only invokes the callable when tracing
/// is enabled, so label strings are never built on the fast path.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) {
    if (tracing_enabled()) begin(name);
  }

  template <typename NameFn, typename = decltype(std::declval<NameFn&>()())>
  explicit TraceSpan(NameFn&& make_name) {
    if (tracing_enabled()) begin(make_name());
  }

  ~TraceSpan() {
    if (active_) end();
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  void begin(std::string name);
  void end();

  std::string name_;
  std::uint64_t start_ns_ = 0;
  bool active_ = false;
};

}  // namespace fpsched::obs
