#include "obs/trace.hpp"

#include <atomic>
#include <cstdio>
#include <fstream>
#include <memory>
#include <vector>

#include "obs/metrics.hpp"
#include "support/error.hpp"
#include "support/sync.hpp"

namespace fpsched::obs {

namespace {

struct TraceEvent {
  std::string name;
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
};

// Buffers are recorder-owned (not thread_local objects) so events from
// short-lived engine worker threads survive until export. Each buffer
// has its own mutex: recording threads never contend with each other,
// only with a concurrent export/reset of their own buffer.
struct ThreadBuffer {
  Mutex mutex;
  std::vector<TraceEvent> events GUARDED_BY(mutex);
  std::uint64_t tid = 0;
};

struct Recorder {
  std::atomic<bool> enabled{false};
  std::atomic<std::uint64_t> epoch_ns{0};
  Mutex mutex;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers GUARDED_BY(mutex);
};

Recorder& recorder() {
  // Leaked: worker threads may still touch their buffers during static
  // destruction of other objects.
  static Recorder* instance = new Recorder();
  return *instance;
}

ThreadBuffer& local_buffer() {
  thread_local ThreadBuffer* buffer = [] {
    auto owned = std::make_unique<ThreadBuffer>();
    ThreadBuffer* raw = owned.get();
    Recorder& rec = recorder();
    const LockGuard lock(rec.mutex);
    owned->tid = rec.buffers.size() + 1;
    rec.buffers.push_back(std::move(owned));
    return raw;
  }();
  return *buffer;
}

std::string escape_name(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// Nanoseconds to the microsecond-unit decimal chrome://tracing expects.
std::string format_us(std::uint64_t ns) {
  char buffer[40];
  std::snprintf(buffer, sizeof buffer, "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  return buffer;
}

}  // namespace

bool tracing_enabled() { return recorder().enabled.load(std::memory_order_relaxed); }

void start_tracing() {
  Recorder& rec = recorder();
  {
    const LockGuard lock(rec.mutex);
    for (const auto& buffer : rec.buffers) {
      const LockGuard buffer_lock(buffer->mutex);
      buffer->events.clear();
    }
  }
  rec.epoch_ns.store(monotonic_ns(), std::memory_order_relaxed);
  rec.enabled.store(true, std::memory_order_release);
}

void stop_tracing() { recorder().enabled.store(false, std::memory_order_release); }

void detail::record_event(std::string name, std::uint64_t start_ns, std::uint64_t dur_ns) {
  ThreadBuffer& buffer = local_buffer();
  const LockGuard lock(buffer.mutex);
  buffer.events.push_back({std::move(name), start_ns, dur_ns});
}

std::string trace_json() {
  Recorder& rec = recorder();
  const std::uint64_t epoch = rec.epoch_ns.load(std::memory_order_relaxed);
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  const LockGuard lock(rec.mutex);
  for (const auto& buffer : rec.buffers) {
    const LockGuard buffer_lock(buffer->mutex);
    for (const TraceEvent& event : buffer->events) {
      if (!first) out += ",";
      first = false;
      const std::uint64_t relative = event.start_ns >= epoch ? event.start_ns - epoch : 0;
      out += "{\"name\":\"" + escape_name(event.name) +
             "\",\"cat\":\"fpsched\",\"ph\":\"X\",\"ts\":" + format_us(relative) +
             ",\"dur\":" + format_us(event.dur_ns) + ",\"pid\":1,\"tid\":" +
             std::to_string(buffer->tid) + "}";
    }
  }
  out += "]}\n";
  return out;
}

void write_trace_file(const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  ensure(out.good(), "cannot open trace file '" + path + "' for writing");
  out << trace_json();
  out.flush();
  ensure(out.good(), "failed writing trace file '" + path + "'");
}

void TraceSpan::begin(std::string name) {
  name_ = std::move(name);
  start_ns_ = monotonic_ns();
  active_ = true;
}

void TraceSpan::end() {
  // Spans open when tracing stopped are dropped rather than recorded
  // half-measured.
  if (!tracing_enabled()) return;
  const std::uint64_t now = monotonic_ns();
  detail::record_event(std::move(name_), start_ns_, now - start_ns_);
}

}  // namespace fpsched::obs
