// Dependency-free metrics: named counters, gauges, and fixed-bucket
// histograms behind a process-wide registry.
//
// The contract that makes telemetry safe in this codebase is that it can
// NEVER perturb the deterministic output path: a metric update is a
// relaxed atomic on pre-registered storage — no allocation, no lock, no
// clock read, no floating-point state shared with the evaluator — so
// instrumented code produces byte-identical records with metrics on or
// off (tier-1 enforces this). The registry's Mutex (sync.hpp, so the
// thread-safety gate covers it) is taken only at registration and at
// snapshot/exposition time; hot paths cache the returned references in
// function-local statics and never touch the registry again.
//
// Exposition: prometheus() renders the text format served by
// GET /metrics; json() renders the same data for --stats and
// GET /runs/{id}/stats.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "support/sync.hpp"

namespace fpsched::obs {

/// Monotonic nanoseconds (steady clock). The ONLY sanctioned wall-clock
/// read for src/core and src/engine code — the determinism lint's
/// wall-clock rule forbids direct *_clock::now() there and exempts this
/// layer.
std::uint64_t monotonic_ns();

/// Monotonically increasing event count. All operations are relaxed
/// atomics: safe from any thread, invisible to the deterministic path.
class Counter {
 public:
  void add(std::uint64_t delta = 1) { value_.fetch_add(delta, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// A value that can go up and down (queue depths, jobs by state).
class Gauge {
 public:
  void set(std::int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void add(std::int64_t delta = 1) { value_.fetch_add(delta, std::memory_order_relaxed); }

  /// Raises the gauge to `candidate` when larger (high-water marks).
  void set_max(std::int64_t candidate) {
    std::int64_t current = value_.load(std::memory_order_relaxed);
    while (candidate > current &&
           !value_.compare_exchange_weak(current, candidate, std::memory_order_relaxed)) {
    }
  }

  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket histogram (Prometheus-style cumulative `le` buckets plus
/// an implicit +Inf bucket, a count, and a sum). Bounds are fixed at
/// registration; observe() is a linear scan over <= a couple dozen
/// bounds plus three relaxed atomic updates.
class Histogram {
 public:
  /// `bounds` must be finite and strictly increasing.
  explicit Histogram(std::span<const double> bounds);

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void observe(double value);

  const std::vector<double>& bounds() const { return bounds_; }
  /// Non-cumulative count of bucket `i` (bounds().size() == the +Inf
  /// bucket). Snapshot reads are relaxed: a concurrent scrape may see a
  /// torn count/sum pair, which is fine for telemetry.
  std::uint64_t bucket(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const;

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;  // bounds_.size() + 1 (last = +Inf)
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_bits_{0};  // double bits; CAS-add (works pre-C++20 fetch_add)
};

/// Default latency buckets (seconds): 100us .. 10s, roughly 1-2.5-5 per
/// decade — wide enough for both a /healthz round trip and a full
/// scenario evaluation.
std::span<const double> latency_buckets_seconds();

/// Name -> metric registry with stable addresses. Metrics are identified
/// by (name, labels): registering the same pair twice returns the same
/// object (so independent translation units can share a metric), while a
/// different labels string under one name creates a sibling sample of
/// the same family. The mutex is held only here and in the snapshot
/// methods — never on a metric update.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// `labels` is the raw Prometheus label body, e.g.
  /// `route="/runs",status="200"` (empty = unlabeled). Throws Error when
  /// the (name, labels) pair is already registered as a different type.
  Counter& counter(std::string_view name, std::string_view help, std::string_view labels = {})
      EXCLUDES(mutex_);
  Gauge& gauge(std::string_view name, std::string_view help, std::string_view labels = {})
      EXCLUDES(mutex_);
  Histogram& histogram(std::string_view name, std::string_view help,
                       std::span<const double> bounds, std::string_view labels = {})
      EXCLUDES(mutex_);

  /// Prometheus text exposition (families in registration order, one
  /// HELP/TYPE header per family).
  std::string prometheus() const EXCLUDES(mutex_);

  /// The same data as one JSON object:
  /// {"counters":{...},"gauges":{...},"histograms":{...}}.
  std::string json() const EXCLUDES(mutex_);

  /// Every counter as ("name{labels}", value), registration order — the
  /// snapshot/delta primitive behind per-job metrics_delta.
  std::vector<std::pair<std::string, std::uint64_t>> counter_values() const EXCLUDES(mutex_);

  /// The process-wide registry every instrumented layer reports into.
  static MetricsRegistry& global();

 private:
  enum class Type : std::uint8_t { counter, gauge, histogram };

  struct Entry {
    std::string name;
    std::string labels;
    std::string help;
    Type type = Type::counter;
    Counter counter;
    Gauge gauge;
    std::unique_ptr<Histogram> hist;
  };

  Entry& find_or_add(std::string_view name, std::string_view help, std::string_view labels,
                     Type type) REQUIRES(mutex_);

  mutable Mutex mutex_;
  std::vector<std::unique_ptr<Entry>> entries_ GUARDED_BY(mutex_);
};

/// RAII scope timer: on destruction observes the elapsed seconds into
/// `seconds` (when non-null) and adds the elapsed nanoseconds to `ns`
/// (when non-null). Reads the clock through monotonic_ns(), keeping the
/// instrumented layers free of direct clock calls.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* seconds, Counter* ns = nullptr)
      : seconds_(seconds), ns_(ns), start_ns_(monotonic_ns()) {}
  explicit ScopedTimer(Histogram& seconds) : ScopedTimer(&seconds) {}
  ~ScopedTimer();

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* seconds_;
  Counter* ns_;
  std::uint64_t start_ns_;
};

}  // namespace fpsched::obs
