#include "obs/metrics.hpp"

#include <bit>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "support/error.hpp"

namespace fpsched::obs {

namespace {

// Shortest decimal form that parses back to the same double — keeps
// bucket labels like le="0.001" readable instead of 17-digit dumps.
std::string format_shortest(double value) {
  if (std::isinf(value)) return value > 0 ? "+Inf" : "-Inf";
  if (std::isnan(value)) return "NaN";
  char buffer[64];
  // Integral values render plainly ("10", not the %.1g spelling "1e+01").
  if (value == std::floor(value) && std::abs(value) < 1e15) {
    std::snprintf(buffer, sizeof buffer, "%.0f", value);
    return buffer;
  }
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buffer, sizeof buffer, "%.*g", precision, value);
    if (std::strtod(buffer, nullptr) == value) break;
  }
  return buffer;
}

// Minimal JSON string escape for metric names/labels (which we control,
// but route labels may carry quotes from the exposition label syntax).
std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string sample_name(const std::string& name, const std::string& labels) {
  if (labels.empty()) return name;
  return name + "{" + labels + "}";
}

}  // namespace

std::uint64_t monotonic_ns() {
  // The one sanctioned clock read (see the header + the determinism
  // lint's wall-clock rule).
  const auto now = std::chrono::steady_clock::now().time_since_epoch();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(now).count());
}

Histogram::Histogram(std::span<const double> bounds)
    : bounds_(bounds.begin(), bounds.end()), buckets_(bounds.size() + 1) {
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    ensure(std::isfinite(bounds_[i]), "histogram bounds must be finite");
    ensure(i == 0 || bounds_[i - 1] < bounds_[i], "histogram bounds must be strictly increasing");
  }
}

void Histogram::observe(double value) {
  std::size_t bucket = bounds_.size();  // +Inf overflow bucket
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    if (value <= bounds_[i]) {
      bucket = i;
      break;
    }
  }
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // Double add via CAS on the bit pattern: atomic<double>::fetch_add is
  // not universally lock-free, and this keeps the member a plain u64.
  std::uint64_t observed = sum_bits_.load(std::memory_order_relaxed);
  for (;;) {
    const std::uint64_t desired = std::bit_cast<std::uint64_t>(std::bit_cast<double>(observed) + value);
    if (sum_bits_.compare_exchange_weak(observed, desired, std::memory_order_relaxed)) break;
  }
}

double Histogram::sum() const {
  return std::bit_cast<double>(sum_bits_.load(std::memory_order_relaxed));
}

std::span<const double> latency_buckets_seconds() {
  static constexpr double kBuckets[] = {0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
                                        0.01,   0.025,   0.05,   0.1,   0.25,   0.5,
                                        1.0,    2.5,     5.0,    10.0};
  return kBuckets;
}

MetricsRegistry::Entry& MetricsRegistry::find_or_add(std::string_view name, std::string_view help,
                                                     std::string_view labels, Type type) {
  for (const auto& entry : entries_) {
    if (entry->name == name && entry->labels == labels) {
      ensure(entry->type == type,
             "metric '" + std::string(name) + "' is already registered as a different type");
      return *entry;
    }
  }
  auto entry = std::make_unique<Entry>();
  entry->name = std::string(name);
  entry->labels = std::string(labels);
  entry->help = std::string(help);
  entry->type = type;
  entries_.push_back(std::move(entry));
  return *entries_.back();
}

Counter& MetricsRegistry::counter(std::string_view name, std::string_view help,
                                  std::string_view labels) {
  const LockGuard lock(mutex_);
  return find_or_add(name, help, labels, Type::counter).counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name, std::string_view help,
                              std::string_view labels) {
  const LockGuard lock(mutex_);
  return find_or_add(name, help, labels, Type::gauge).gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name, std::string_view help,
                                      std::span<const double> bounds, std::string_view labels) {
  const LockGuard lock(mutex_);
  Entry& entry = find_or_add(name, help, labels, Type::histogram);
  if (!entry.hist) entry.hist = std::make_unique<Histogram>(bounds);
  return *entry.hist;
}

std::string MetricsRegistry::prometheus() const {
  const LockGuard lock(mutex_);
  std::string out;
  std::string last_family;
  for (const auto& entry : entries_) {
    if (entry->name != last_family) {
      // One HELP/TYPE header per family; labeled siblings registered
      // consecutively share it. (A family registered in two separated
      // runs would repeat the header, which scrapers tolerate — we keep
      // registration grouped per layer so it does not arise.)
      const char* type_name = entry->type == Type::counter  ? "counter"
                              : entry->type == Type::gauge  ? "gauge"
                                                            : "histogram";
      out += "# HELP " + entry->name + " " + entry->help + "\n";
      out += "# TYPE " + entry->name + " " + type_name + "\n";
      last_family = entry->name;
    }
    switch (entry->type) {
      case Type::counter:
        out += sample_name(entry->name, entry->labels) + " " +
               std::to_string(entry->counter.value()) + "\n";
        break;
      case Type::gauge:
        out += sample_name(entry->name, entry->labels) + " " +
               std::to_string(entry->gauge.value()) + "\n";
        break;
      case Type::histogram: {
        const Histogram& hist = *entry->hist;
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < hist.bounds().size(); ++i) {
          cumulative += hist.bucket(i);
          std::string labels = entry->labels;
          if (!labels.empty()) labels += ",";
          labels += "le=\"" + format_shortest(hist.bounds()[i]) + "\"";
          out += entry->name + "_bucket{" + labels + "} " + std::to_string(cumulative) + "\n";
        }
        std::string labels = entry->labels;
        if (!labels.empty()) labels += ",";
        labels += "le=\"+Inf\"";
        out += entry->name + "_bucket{" + labels + "} " + std::to_string(hist.count()) + "\n";
        out += sample_name(entry->name + "_sum", entry->labels) + " " +
               format_shortest(hist.sum()) + "\n";
        out += sample_name(entry->name + "_count", entry->labels) + " " +
               std::to_string(hist.count()) + "\n";
        break;
      }
    }
  }
  return out;
}

std::string MetricsRegistry::json() const {
  const LockGuard lock(mutex_);
  std::string counters;
  std::string gauges;
  std::string histograms;
  for (const auto& entry : entries_) {
    std::string key = "\"";
    key += json_escape(sample_name(entry->name, entry->labels));
    key += "\":";
    switch (entry->type) {
      case Type::counter:
        if (!counters.empty()) counters += ",";
        counters += key + std::to_string(entry->counter.value());
        break;
      case Type::gauge:
        if (!gauges.empty()) gauges += ",";
        gauges += key + std::to_string(entry->gauge.value());
        break;
      case Type::histogram: {
        const Histogram& hist = *entry->hist;
        if (!histograms.empty()) histograms += ",";
        histograms += key + "{\"count\":" + std::to_string(hist.count()) +
                      ",\"sum\":" + format_shortest(hist.sum()) + ",\"buckets\":[";
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < hist.bounds().size(); ++i) {
          cumulative += hist.bucket(i);
          if (i != 0) histograms += ",";
          histograms += "{\"le\":\"" + format_shortest(hist.bounds()[i]) +
                        "\",\"count\":" + std::to_string(cumulative) + "}";
        }
        if (!hist.bounds().empty()) histograms += ",";
        histograms += "{\"le\":\"+Inf\",\"count\":" + std::to_string(hist.count()) + "}]}";
        break;
      }
    }
  }
  std::string out = "{\"counters\":{";
  out += counters;
  out += "},\"gauges\":{";
  out += gauges;
  out += "},\"histograms\":{";
  out += histograms;
  out += "}}";
  return out;
}

std::vector<std::pair<std::string, std::uint64_t>> MetricsRegistry::counter_values() const {
  const LockGuard lock(mutex_);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(entries_.size());
  for (const auto& entry : entries_) {
    if (entry->type != Type::counter) continue;
    out.emplace_back(sample_name(entry->name, entry->labels), entry->counter.value());
  }
  return out;
}

MetricsRegistry& MetricsRegistry::global() {
  // Leaked so instrumented code may report during static destruction.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

ScopedTimer::~ScopedTimer() {
  const std::uint64_t elapsed = monotonic_ns() - start_ns_;
  if (seconds_ != nullptr) seconds_->observe(static_cast<double>(elapsed) * 1e-9);
  if (ns_ != nullptr) ns_->add(elapsed);
}

}  // namespace fpsched::obs
