// Multi-host shard merging: validate and concatenate per-shard NDJSON
// record files back into the unsharded stream.
//
// The engine's contract is that `fpsched_run <exp> --format ndjson
// --shard I/N` streams a contiguous slice of the experiment's flattened
// scenario list, so the N per-shard files concatenated in shard order
// are byte-identical to the unsharded run. When the shards were produced
// on N different machines, though, "just cat them" silently accepts a
// missing shard, a duplicated one, or files passed in the wrong order.
// merge_ndjson_shards() re-derives the flattened scenario list from the
// experiment (name + the same FigureOptions the producing runs used) and
// checks every line's provenance fields against the position it would
// occupy in the unsharded stream — so ordering mistakes, gaps, overlaps,
// and option mismatches all fail loudly instead of producing a
// plausible-looking but wrong merge.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "engine/experiment.hpp"

namespace fpsched::service {

struct MergeOptions {
  /// Require the shards to cover the experiment's whole scenario list.
  /// Off, a gapless ordered prefix is accepted (e.g. merging the first
  /// K of N shards while the rest still compute).
  bool require_complete = false;
};

struct MergeReport {
  std::size_t files = 0;    // shard files consumed
  std::size_t records = 0;  // records written to the merged stream
  std::size_t expected = 0; // the experiment's flattened scenario count

  bool complete() const { return records == expected; }
};

/// Validates `shard_paths` (in shard order) against the experiment's
/// flattened scenario list and writes their concatenation to `out`.
/// Each line must carry the experiment name, panel slug, and
/// scenario_index of the position it lands on — the concatenation must
/// form a gapless ordered prefix of the flattened list (empty shard
/// files are fine; a shard count above the scenario count produces
/// them). Throws InvalidArgument naming the file and line on any
/// violation: unreadable/truncated files, out-of-order or duplicated
/// shards, gaps, records beyond the list, or (with require_complete)
/// missing scenarios.
MergeReport merge_ndjson_shards(const engine::Experiment& experiment,
                                const engine::FigureOptions& options,
                                const std::vector<std::string>& shard_paths, std::ostream& out,
                                const MergeOptions& merge = {});

}  // namespace fpsched::service
