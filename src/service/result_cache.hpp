// Content-addressed scenario result cache for the HTTP service.
//
// Overlapping POST /runs traffic — many clients re-running the paper's
// figures with shared sub-grids — recomputes identical scenarios from
// scratch. This cache maps a ResultCacheKey (the canonical serialization
// of the FULL ScenarioSpec plus the evaluator math backend — a strict
// superset of the engine's InstanceKey, which deliberately omits the
// failure model, cost model and policy) to the finished per-scenario
// NDJSON record body (record_body_json), so a repeat scenario replays its
// bytes instead of re-running the evaluator. Because every record is a
// pure function of (spec, math backend), cached and recomputed responses
// are byte-identical by construction.
//
// Persistence: with a directory configured, inserts append to an on-disk
// NDJSON segment store (`segment-NNNNNN.ndjson`, append-only; a new
// segment per process start, rotated at max_segment_bytes) and the ctor
// rebuilds the in-memory index by replaying every segment — so the cache
// survives server restarts. Malformed lines (torn tail writes after a
// crash) are skipped, not fatal.
#pragma once

#include <cstdint>
#include <deque>
#include <fstream>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "core/math_kernels.hpp"
#include "engine/scenario.hpp"
#include "support/sync.hpp"

namespace fpsched::service {

/// The identity of one cached record body: the canonical spec text (plus
/// the math backend, which changes record bytes) and its 64-bit FNV-1a
/// hash. The hash indexes; the canonical string is stored alongside every
/// entry and verified on lookup, so a hash collision degrades to a miss
/// instead of serving another scenario's bytes.
struct ResultCacheKey {
  std::uint64_t hash = 0;
  std::string canonical;

  static ResultCacheKey of(const engine::ScenarioSpec& spec, EvalMath math);
};

struct ResultCacheOptions {
  /// Segment-store directory; empty = memory-only (the cache still
  /// serves repeat traffic, but dies with the process).
  std::string directory = {};
  /// Entry ceiling; 0 = unbounded. Beyond it the oldest entries are
  /// evicted insertion-FIFO. NOTE: jobs replay trimmed record-buffer
  /// lines through the cache, so a ceiling small enough to evict entries
  /// of a still-streaming job can truncate that job's late streams.
  std::size_t max_entries = 0;
  /// Rotate the append segment once it exceeds this many bytes.
  std::size_t max_segment_bytes = 8 * 1024 * 1024;
};

/// Thread-safe (one mutex; lookups copy the payload out). Shared by every
/// JobManager executor and record streamer of the service.
class ResultCache {
 public:
  explicit ResultCache(ResultCacheOptions options = {});
  ~ResultCache();

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// The cached record body for `key`, verifying the canonical text;
  /// counts a hit or a miss.
  std::optional<std::string> lookup(const ResultCacheKey& key) EXCLUDES(mutex_);

  /// Uncounted variants for the replay path (stream_records re-rendering
  /// trimmed buffer lines): presence / payload by hash only. Sound
  /// because entries are immutable and were canonical-verified when the
  /// producing job looked them up or inserted them.
  bool contains(std::uint64_t hash) const EXCLUDES(mutex_);
  std::optional<std::string> fetch(std::uint64_t hash) const EXCLUDES(mutex_);

  /// Stores `payload` under `key` (no-op when present — first write wins,
  /// entries are immutable) and appends it to the segment store when one
  /// is configured. Evicts insertion-FIFO beyond max_entries.
  void insert(const ResultCacheKey& key, std::string_view payload) EXCLUDES(mutex_);

  std::size_t size() const EXCLUDES(mutex_);

  /// Entries restored from disk by the constructor (restart telemetry).
  std::size_t restored() const { return restored_; }

 private:
  struct Entry {
    std::string canonical;
    std::string payload;
  };

  void insert_locked(ResultCacheKey key, std::string_view payload, bool persist)
      REQUIRES(mutex_);
  void append_segment_locked(const ResultCacheKey& key, std::string_view payload)
      REQUIRES(mutex_);
  void open_next_segment_locked() REQUIRES(mutex_);
  void load_segments();

  ResultCacheOptions options_;
  std::size_t restored_ = 0;

  mutable Mutex mutex_;
  std::unordered_map<std::uint64_t, Entry> entries_ GUARDED_BY(mutex_);
  /// Insertion order (FIFO eviction under max_entries).
  std::deque<std::uint64_t> insertion_order_ GUARDED_BY(mutex_);
  std::ofstream segment_ GUARDED_BY(mutex_);
  std::size_t segment_bytes_ GUARDED_BY(mutex_) = 0;
  std::size_t next_segment_index_ GUARDED_BY(mutex_) = 1;
};

}  // namespace fpsched::service
