#include "service/service.hpp"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>

#include "engine/result_sink.hpp"
#include "obs/metrics.hpp"
#include "support/version.hpp"

namespace fpsched::service {

using engine::json_quote;

namespace {

// --- Option-value parsers (the HTTP twin of CliParser's getters) -------

[[noreturn]] void bad_value(const std::string& key, const std::string& value,
                            const std::string& expected) {
  throw InvalidArgument("parameter '" + key + "': expected " + expected + ", got '" + value +
                        "'");
}

std::uint64_t parse_u64(const std::string& key, const std::string& value) {
  if (value.empty() || value.find_first_not_of("0123456789") != std::string::npos) {
    bad_value(key, value, "a non-negative integer");
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value.c_str(), &end, 10);
  if (errno == ERANGE || end != value.c_str() + value.size()) {
    bad_value(key, value, "a non-negative integer");
  }
  return parsed;
}

double parse_number(const std::string& key, const std::string& value) {
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(value.c_str(), &end);
  if (value.empty() || errno == ERANGE || end != value.c_str() + value.size()) {
    bad_value(key, value, "a number");
  }
  return parsed;
}

bool parse_bool(const std::string& key, std::string value) {
  for (char& c : value) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  // A bare query key ("?quick") arrives as the empty string and means on.
  if (value.empty() || value == "1" || value == "true" || value == "yes" || value == "on") {
    return true;
  }
  if (value == "0" || value == "false" || value == "no" || value == "off") return false;
  bad_value(key, value, "a boolean (1/0, true/false, yes/no, on/off)");
}

std::vector<std::string> split_list(const std::string& key, const std::string& value) {
  std::vector<std::string> items;
  std::size_t start = 0;
  while (start <= value.size()) {
    std::size_t end = value.find(',', start);
    if (end == std::string::npos) end = value.size();
    if (end == start) bad_value(key, value, "a non-empty comma-separated list");
    items.push_back(value.substr(start, end - start));
    start = end + 1;
  }
  return items;
}

}  // namespace

JobRequest parse_job_request(const std::map<std::string, std::string>& params) {
  JobRequest request;
  bool quick = false;
  for (const auto& [key, value] : params) {
    if (key == "experiment") {
      request.experiment = value;
    } else if (key == "sizes") {
      request.options.sizes.clear();
      for (const std::string& item : split_list(key, value)) {
        const std::uint64_t size = parse_u64(key, item);
        if (size < 1) bad_value(key, item, "a task count >= 1");
        request.options.sizes.push_back(static_cast<std::size_t>(size));
      }
    } else if (key == "stride") {
      const std::uint64_t stride = parse_u64(key, value);
      if (stride < 1) bad_value(key, value, "a stride >= 1");
      request.options.stride = static_cast<std::size_t>(stride);
    } else if (key == "seed") {
      request.options.seed = parse_u64(key, value);
    } else if (key == "weight_cv") {
      request.options.weight_cv = parse_number(key, value);
    } else if (key == "threads") {
      request.options.threads = static_cast<std::size_t>(parse_u64(key, value));
    } else if (key == "eval_threads") {
      request.options.eval_threads = static_cast<std::size_t>(parse_u64(key, value));
    } else if (key == "eval_math") {
      request.options.eval_math = parse_eval_math(value);
    } else if (key == "tasks") {
      const std::uint64_t tasks = parse_u64(key, value);
      if (tasks < 1) bad_value(key, value, "a task count >= 1");
      request.options.tasks = static_cast<std::size_t>(tasks);
    } else if (key == "downtimes") {
      request.options.downtimes.clear();
      for (const std::string& item : split_list(key, value)) {
        const double downtime = parse_number(key, item);
        if (downtime < 0.0) bad_value(key, item, "a downtime >= 0");
        request.options.downtimes.push_back(downtime);
      }
    } else if (key == "trials") {
      const std::uint64_t trials = parse_u64(key, value);
      if (trials < 1) bad_value(key, value, "a trial count >= 1");
      request.options.trials = static_cast<std::size_t>(trials);
    } else if (key == "quick") {
      quick = parse_bool(key, value);
    } else if (key == "instance_cache") {
      request.options.instance_cache = parse_bool(key, value);
    } else {
      throw InvalidArgument(
          "unknown parameter '" + key +
          "' (known: experiment, sizes, stride, seed, weight_cv, threads, eval_threads, "
          "eval_math, tasks, downtimes, trials, quick, instance_cache)");
    }
  }
  if (request.experiment.empty()) {
    throw InvalidArgument("missing required parameter 'experiment' (see GET /experiments)");
  }
  // Same precedence as the CLI: --quick overrides an explicit size grid.
  if (quick) engine::apply_quick_options(request.options);
  return request;
}

// --- Flat JSON bodies --------------------------------------------------

namespace {

/// Cursor over a JSON text; parses just the flat-object subset the run
/// endpoint documents.
class FlatJsonParser {
 public:
  explicit FlatJsonParser(std::string_view text) : text_(text) {}

  std::map<std::string, std::string> parse() {
    std::map<std::string, std::string> params;
    skip_whitespace();
    expect('{', "an object");
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return finish(params);
    }
    for (;;) {
      skip_whitespace();
      const std::string key = parse_string("an object key");
      skip_whitespace();
      expect(':', "':' after the key");
      skip_whitespace();
      params[key] = parse_scalar_or_array(key);
      skip_whitespace();
      const char c = next("',' or '}'");
      if (c == '}') return finish(params);
      if (c != ',') fail("expected ',' or '}'");
    }
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw InvalidArgument("malformed JSON body at byte " + std::to_string(pos_) + ": " + message);
  }

  std::map<std::string, std::string> finish(std::map<std::string, std::string>& params) {
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing content after the object");
    return params;
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  char next(const std::string& expected) {
    if (pos_ >= text_.size()) fail("unexpected end (wanted " + expected + ")");
    return text_[pos_++];
  }

  void expect(char c, const std::string& what) {
    if (next(what) != c) fail("expected " + what);
  }

  void skip_whitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  std::string parse_string(const std::string& what) {
    expect('"', what);
    std::string out;
    for (;;) {
      const char c = next("a closing '\"'");
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      const char escape = next("an escape character");
      switch (escape) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        default: fail("unsupported string escape '\\" + std::string(1, escape) + "'");
      }
    }
  }

  /// A bare number/true/false/null token, returned as raw text.
  std::string parse_token() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '-' ||
            text_[pos_] == '+' || text_[pos_] == '.')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    std::string token(text_.substr(start, pos_ - start));
    if (token == "null") return "";
    return token;
  }

  std::string parse_scalar() {
    if (peek() == '"') return parse_string("a string value");
    if (peek() == '{' || peek() == '[') fail("nested objects/arrays are not supported");
    return parse_token();
  }

  std::string parse_scalar_or_array(const std::string& key) {
    if (peek() != '[') return parse_scalar();
    ++pos_;  // '['
    std::string joined;
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return joined;
    }
    for (;;) {
      skip_whitespace();
      if (!joined.empty()) joined += ',';
      joined += parse_scalar();
      skip_whitespace();
      const char c = next("',' or ']' in the '" + key + "' array");
      if (c == ']') return joined;
      if (c != ',') fail("expected ',' or ']'");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::map<std::string, std::string> parse_flat_json(std::string_view body) {
  return FlatJsonParser(body).parse();
}

std::string to_json(const JobStatus& status) {
  std::string out = "{\"id\":" + std::to_string(status.id) +
                    ",\"experiment\":" + json_quote(status.experiment) +
                    ",\"state\":" + json_quote(to_string(status.state)) +
                    ",\"records\":" + std::to_string(status.records) +
                    ",\"total_scenarios\":" + std::to_string(status.total_scenarios) +
                    ",\"records_path\":" + json_quote("/runs/" + std::to_string(status.id) +
                                                     "/records");
  if (!status.error.empty()) out += ",\"error\":" + json_quote(status.error);
  out += '}';
  return out;
}

namespace {

/// Nanoseconds as decimal seconds with microsecond precision — plenty
/// for queue/run durations, and fixed-width so the JSON is easy to eye.
std::string seconds_json(std::uint64_t ns) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.6f", static_cast<double>(ns) * 1e-9);
  return buffer;
}

}  // namespace

std::string to_json(const JobStats& stats) {
  std::string out = to_json(stats.status);
  out.pop_back();  // re-open the status object to append the stats fields
  out += ",\"queued_seconds\":";
  out += seconds_json(stats.queued_ns);
  out += ",\"run_seconds\":";
  out += seconds_json(stats.run_ns);
  out += ",\"metrics_delta\":{";
  bool first = true;
  for (const auto& [name, delta] : stats.counter_deltas) {
    if (!first) out += ',';
    first = false;
    out += json_quote(name);
    out += ':';
    out += std::to_string(delta);
  }
  out += "}}";
  return out;
}

// --- ExperimentService -------------------------------------------------

ExperimentService::ExperimentService(ServiceOptions options,
                                     const engine::ExperimentRegistry& registry)
    : registry_(registry),
      jobs_(registry, options.jobs),
      http_(options.http),
      start_ns_(obs::monotonic_ns()) {
  obs::MetricsRegistry::global()
      .gauge("fpsched_info", "build information", "version=\"" + std::string(kVersion) + "\"")
      .set(1);
  register_routes();
}

ExperimentService::~ExperimentService() { stop(); }

void ExperimentService::start() { http_.start(); }

void ExperimentService::stop() {
  // Jobs first: that wakes blocked record streamers, so the HTTP drain
  // below finishes promptly instead of waiting out a long run.
  jobs_.stop();
  http_.stop();
}

namespace {

std::optional<std::uint64_t> parse_job_id(const std::string& text) {
  try {
    return parse_u64("id", text);
  } catch (const InvalidArgument&) {
    return std::nullopt;  // an unparseable id is just an unknown run
  }
}

}  // namespace

void ExperimentService::register_routes() {
  http_.route("GET", "/healthz", [this](const HttpRequest&, HttpResponseWriter& writer) {
    const std::uint64_t uptime_s = (obs::monotonic_ns() - start_ns_) / 1'000'000'000;
    std::string body = "{\"status\":\"ok\",\"version\":";
    body += json_quote(kVersion);
    body += ",\"uptime_seconds\":";
    body += std::to_string(uptime_s);
    body += ",\"jobs\":";
    body += std::to_string(jobs_.job_count());
    body += ",\"active_jobs\":";
    body += std::to_string(jobs_.active_count());
    body += "}\n";
    writer.respond(200, "application/json", body);
  });

  http_.route("GET", "/metrics", [this](const HttpRequest&, HttpResponseWriter& writer) {
    obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
    registry.gauge("fpsched_uptime_seconds", "seconds since service start")
        .set(static_cast<std::int64_t>((obs::monotonic_ns() - start_ns_) / 1'000'000'000));
    writer.respond(200, "text/plain; version=0.0.4; charset=utf-8", registry.prometheus());
  });

  http_.route("GET", "/experiments", [this](const HttpRequest&, HttpResponseWriter& writer) {
    std::string body = "[";
    bool first = true;
    for (const engine::Experiment* experiment : registry_.experiments()) {
      if (!first) body += ',';
      first = false;
      body += "{\"name\":" + json_quote(experiment->name) +
              ",\"summary\":" + json_quote(experiment->summary) + "}";
    }
    body += "]\n";
    writer.respond(200, "application/json", body);
  });

  http_.route("POST", "/runs", [this](const HttpRequest& request, HttpResponseWriter& writer) {
    // Body params first, query params on top (query wins on conflict),
    // so `curl -d '{"experiment":"fig2"}' '/runs?quick=1'` does what it
    // reads like.
    std::map<std::string, std::string> params;
    if (!request.body.empty()) params = parse_flat_json(request.body);
    for (const auto& [key, value] : request.query_params()) params[key] = value;
    std::uint64_t id = 0;
    try {
      id = jobs_.submit(parse_job_request(params));
    } catch (const TooManyJobs& e) {
      writer.respond(429, "application/json", "{\"error\":" + json_quote(e.what()) + "}\n");
      return;
    }
    writer.respond(201, "application/json", to_json(*jobs_.status(id)) + "\n");
  });

  http_.route("GET", "/runs", [this](const HttpRequest&, HttpResponseWriter& writer) {
    std::string body = "[";
    bool first = true;
    for (const JobStatus& status : jobs_.jobs()) {
      if (!first) body += ',';
      first = false;
      body += to_json(status);
    }
    body += "]\n";
    writer.respond(200, "application/json", body);
  });

  http_.route("GET", "/runs/{id}", [this](const HttpRequest& request,
                                          HttpResponseWriter& writer) {
    const auto id = parse_job_id(request.path_params.at("id"));
    const auto status = id ? jobs_.status(*id) : std::nullopt;
    if (!status) {
      writer.respond(404, "application/json", "{\"error\":\"no such run\"}\n");
      return;
    }
    writer.respond(200, "application/json", to_json(*status) + "\n");
  });

  http_.route("GET", "/runs/{id}/stats", [this](const HttpRequest& request,
                                                HttpResponseWriter& writer) {
    const auto id = parse_job_id(request.path_params.at("id"));
    const auto stats = id ? jobs_.stats(*id) : std::nullopt;
    if (!stats) {
      writer.respond(404, "application/json", "{\"error\":\"no such run\"}\n");
      return;
    }
    writer.respond(200, "application/json", to_json(*stats) + "\n");
  });

  http_.route("DELETE", "/runs/{id}", [this](const HttpRequest& request,
                                             HttpResponseWriter& writer) {
    const auto id = parse_job_id(request.path_params.at("id"));
    const auto status = id ? jobs_.erase_job(*id) : std::nullopt;
    if (!status) {
      writer.respond(404, "application/json", "{\"error\":\"no such run\"}\n");
      return;
    }
    writer.respond(200, "application/json", to_json(*status) + "\n");
  });

  http_.route("GET", "/runs/{id}/records", [this](const HttpRequest& request,
                                                  HttpResponseWriter& writer) {
    const auto id = parse_job_id(request.path_params.at("id"));
    if (!id || !jobs_.status(*id)) {
      writer.respond(404, "application/json", "{\"error\":\"no such run\"}\n");
      return;
    }
    // Live stream: each record is one chunk, so the client sees results
    // as scenarios complete; the concatenated chunks are byte-identical
    // to the fpsched_run NDJSON file. A disconnected client makes
    // write_chunk return false and the stream winds down server-side.
    if (!writer.begin_chunked(200, "application/x-ndjson")) return;
    const auto result = jobs_.stream_records(
        *id, [&](std::string_view line) { return writer.write_chunk(line); });
    // A stream that did not deliver every record of a completed job (the
    // job failed or was deleted mid-stream, the server is shutting down,
    // or a trimmed line could not be replayed from a bounded cache) is
    // truncated data: abandon it without the clean 0-chunk so the
    // client's HTTP layer flags it, instead of handing over a well-formed
    // stream that is silently missing records.
    if (!result || !result->delivered_all || result->status.state != JobState::completed) {
      writer.abort_stream();
    }
  });
}

}  // namespace fpsched::service
