// ExperimentService: the HTTP API over the experiment registry and the
// JobManager — the serving layer of fpsched_serve.
//
// Endpoints (all responses JSON unless noted):
//   GET  /healthz             liveness: {"status":"ok","version":...,
//                             "uptime_seconds":...,"jobs":N,"active_jobs":N}
//   GET  /metrics             Prometheus text exposition of the process
//                             telemetry registry (text/plain)
//   GET  /experiments         the registry listing
//   POST /runs                submit a run; experiment name + FigureOptions
//                             from query params and/or a flat JSON body
//                             (query wins on conflicts); 201 + job status
//   GET  /runs                every job's status
//   GET  /runs/{id}           one job's status
//   GET  /runs/{id}/stats     status + queue/run timing + the telemetry
//                             counters that advanced while the job ran
//   GET  /runs/{id}/records   chunked application/x-ndjson stream of the
//                             job's records, live as scenarios complete;
//                             the full stream is byte-identical to
//                             `fpsched_run <name> --format ndjson`
//   DELETE /runs/{id}         cancel a queued job, detach a running one
//                             (its results still land in the result
//                             cache), or drop a finished one; 200 + the
//                             job's last status, 404 when unknown
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "engine/experiment.hpp"
#include "service/http_server.hpp"
#include "service/job_manager.hpp"

namespace fpsched::service {

/// Request params -> run request. Requires "experiment"; understands the
/// FigureOptions surface of the CLI: sizes, stride, seed, weight_cv,
/// threads, tasks, downtimes, quick, instance_cache. Unknown keys are
/// rejected (a typo must not silently run the default grid). Boolean
/// values accept 1/0, true/false, yes/no, on/off, and the bare-key form
/// ("?quick"). Like --quick, quick=1 overrides sizes/stride.
JobRequest parse_job_request(const std::map<std::string, std::string>& params);

/// Flat JSON object -> params map, for POST /runs bodies: values may be
/// strings, numbers, booleans, or arrays of scalars (joined with
/// commas, so "sizes": [50, 100] equals "sizes": "50,100"). Nested
/// objects are rejected. Throws InvalidArgument on malformed JSON.
std::map<std::string, std::string> parse_flat_json(std::string_view body);

/// One job status as a JSON object (no trailing newline).
std::string to_json(const JobStatus& status);

/// Job stats as a JSON object: the status fields plus "queued_seconds",
/// "run_seconds" (decimal seconds) and a "metrics_delta" object of the
/// telemetry counters that advanced during the run (no trailing newline).
std::string to_json(const JobStats& stats);

struct ServiceOptions {
  HttpServerOptions http;
  JobManager::Options jobs;
};

class ExperimentService {
 public:
  explicit ExperimentService(
      ServiceOptions options = {},
      const engine::ExperimentRegistry& registry = engine::ExperimentRegistry::global());
  ~ExperimentService();

  /// Binds and serves; throws fpsched::Error when the port is taken.
  void start();

  /// Stops the job executors (after the in-flight job, if any) and the
  /// HTTP server. Idempotent; the destructor runs it.
  void stop();

  /// Bound port (valid after start()).
  std::uint16_t port() const { return http_.port(); }

  JobManager& jobs() { return jobs_; }

 private:
  void register_routes();

  const engine::ExperimentRegistry& registry_;
  JobManager jobs_;
  HttpServer http_;
  /// Construction timestamp (obs::monotonic_ns) — /healthz uptime.
  std::uint64_t start_ns_ = 0;
};

}  // namespace fpsched::service
