// JobManager: the experiment-run queue behind the HTTP service.
//
// A job is one registered experiment run (name + FigureOptions). submit()
// validates the request against the registry — including building the
// plan, so a bad option fails the POST, not the worker — then enqueues
// it. A fixed set of executor threads (one by default: each job already
// parallelizes across cores inside the ExperimentEngine) pops jobs in
// submission order and runs them through run_experiment with a
// CallbackSink that appends each record's NDJSON line to the job's
// buffer. Streaming readers follow that buffer under a condition
// variable, so `GET /runs/{id}/records` delivers records live as
// scenarios complete and the full stream is byte-identical to
// `fpsched_run <name> --format ndjson`.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "engine/experiment.hpp"
#include "support/error.hpp"
#include "support/sync.hpp"

namespace fpsched::service {

enum class JobState : std::uint8_t { queued, running, completed, failed };

std::string to_string(JobState state);

/// One run request: a registered experiment name plus the options the
/// builder consumes (the HTTP layer parses these from query params or a
/// JSON body).
struct JobRequest {
  std::string experiment;
  engine::FigureOptions options;
};

/// Point-in-time snapshot of a job (records counts what has streamed so
/// far; total_scenarios is the flattened scenario count, known at
/// submission).
struct JobStatus {
  std::uint64_t id = 0;
  std::string experiment;
  JobState state = JobState::queued;
  std::size_t records = 0;
  std::size_t total_scenarios = 0;
  std::string error;  // failed jobs only
};

/// JobStatus plus the job's timing and its slice of the process-wide
/// telemetry counters (GET /runs/{id}/stats). For a finished job the
/// delta is frozen at completion; for a running job it is computed live.
/// Counter deltas are process-wide, so with executors > 1 a concurrent
/// job's work is attributed to both — exact per-job attribution would
/// need per-job registries, which the single-executor default makes
/// unnecessary.
struct JobStats {
  JobStatus status;
  /// Nanoseconds spent queued (submit -> start; running total while
  /// still queued).
  std::uint64_t queued_ns = 0;
  /// Nanoseconds spent executing (start -> finish; running total while
  /// executing; 0 while queued).
  std::uint64_t run_ns = 0;
  /// ("name{labels}", delta) of every counter that advanced while the
  /// job ran, in registration order.
  std::vector<std::pair<std::string, std::uint64_t>> counter_deltas;
};

/// JobManager tuning. (A top-level struct, not a nested one: a nested
/// class with default member initializers cannot be a `= {}` default
/// argument inside its enclosing class.)
struct JobManagerOptions {
  /// Ceiling on jobs held in memory (queued + running + finished);
  /// submissions beyond it are rejected so an unattended server cannot
  /// grow without bound.
  std::size_t max_jobs = 64;
  /// Executor threads. 1 serializes jobs — usually right, since each
  /// job saturates the machine through the engine's own sharding.
  std::size_t executors = 1;
  /// Largest per-instance task count a request may ask for. Instance
  /// memory is O(tasks + edges), so without a ceiling one untrusted
  /// POST /runs asking for a huge grid size could OOM the server. The
  /// default admits the 10^6-task instances the layer is built for.
  std::size_t max_task_count = 1'000'000;
};

class JobManager {
 public:
  using Options = JobManagerOptions;

  explicit JobManager(const engine::ExperimentRegistry& registry, Options options = {});
  ~JobManager();

  JobManager(const JobManager&) = delete;
  JobManager& operator=(const JobManager&) = delete;

  /// Validates and enqueues; returns the job id. Throws InvalidArgument
  /// for an unknown experiment or options the builder rejects, and
  /// TooManyJobs when max_jobs is reached.
  std::uint64_t submit(JobRequest request);

  std::optional<JobStatus> status(std::uint64_t id) const;

  /// Status plus timing and counter deltas; nullopt for an unknown id.
  std::optional<JobStats> stats(std::uint64_t id) const;

  /// All jobs, oldest first.
  std::vector<JobStatus> jobs() const;

  std::size_t job_count() const;

  /// Jobs currently queued or running (the /healthz active count).
  std::size_t active_count() const;

  /// Streams the job's NDJSON record lines (each with its trailing
  /// newline) through `write`, in record order, blocking until the job
  /// reaches a terminal state, `write` returns false (client gone), or
  /// the manager stops. Returns the job's status at exit, or nullopt for
  /// an unknown id.
  std::optional<JobStatus> stream_records(
      std::uint64_t id, const std::function<bool(std::string_view line)>& write) const;

  /// Wakes streamers and joins the executors once the in-flight job (if
  /// any) finishes. Idempotent; the destructor calls it.
  void stop();

 private:
  struct Job {
    std::uint64_t id = 0;
    JobRequest request;
    JobState state = JobState::queued;
    std::vector<std::string> lines;  // NDJSON records, each "\n"-terminated
    std::size_t total_scenarios = 0;
    std::string error;
    // Telemetry (obs::monotonic_ns timestamps; 0 = not reached yet).
    std::uint64_t submit_ns = 0;
    std::uint64_t start_ns = 0;
    std::uint64_t finish_ns = 0;
    /// Counter snapshot taken when the job started running.
    std::vector<std::pair<std::string, std::uint64_t>> counters_at_start;
    /// Frozen at completion (terminal states only).
    std::vector<std::pair<std::string, std::uint64_t>> counter_deltas;
  };

  JobStatus snapshot_locked(const Job& job) const REQUIRES(mutex_);
  void executor_loop() EXCLUDES(mutex_);
  void run_job(Job& job) EXCLUDES(mutex_);

  const engine::ExperimentRegistry& registry_;
  Options options_;

  mutable Mutex mutex_;
  /// Signals every state change: new records, state transitions, new
  /// queued jobs, shutdown.
  mutable CondVar changed_;
  std::vector<std::unique_ptr<Job>> jobs_ GUARDED_BY(mutex_);
  std::uint64_t next_id_ GUARDED_BY(mutex_) = 1;
  std::size_t next_queued_ GUARDED_BY(mutex_) = 0;  // executor cursor into jobs_
  bool stopping_ GUARDED_BY(mutex_) = false;
  std::vector<std::thread> executors_;
};

/// Thrown by submit() when the manager is at max_jobs capacity (the HTTP
/// layer maps it to 429).
class TooManyJobs : public Error {
 public:
  explicit TooManyJobs(const std::string& what) : Error(what) {}
};

}  // namespace fpsched::service
