// JobManager: the experiment-run queue behind the HTTP service.
//
// A job is one registered experiment run (name + FigureOptions). submit()
// validates the request against the registry — including building the
// plan, so a bad option fails the POST, not the worker — then enqueues
// it. A fixed set of executor threads (one by default: each job already
// parallelizes across cores inside the ExperimentEngine) pops jobs in
// submission order. The executor flattens the job's plan, looks every
// scenario up in the shared content-addressed ResultCache, and runs only
// the misses through the engine — cached records are replayed and merged
// into the stream at their flatten-plan positions, so a cache-served
// response is byte-identical to a cold one. Streaming readers follow the
// job's record buffer under a condition variable, so
// `GET /runs/{id}/records` delivers records live as scenarios complete
// and the full stream is byte-identical to
// `fpsched_run <name> --format ndjson`.
//
// Production hardening (vs. the first service cut):
//  * Admission counts only ACTIVE jobs (queued + running); finished jobs
//    are evicted by count and age instead of permanently consuming
//    max_jobs capacity.
//  * DELETE /runs/{id} cancels a queued job, detaches a running one (the
//    engine pass finishes into the cache, its buffered output dropped),
//    or drops a finished one — always freeing its capacity.
//  * Record buffers are bounded (max_record_lines): a producer that gets
//    ahead either trims cache-replayable lines every attached streamer
//    has consumed, or blocks until a streamer advances — the server's
//    memory stays bounded no matter how large the job or slow the
//    client. Late streamers re-render trimmed lines from the cache.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "engine/experiment.hpp"
#include "service/result_cache.hpp"
#include "support/error.hpp"
#include "support/sync.hpp"

namespace fpsched::service {

enum class JobState : std::uint8_t { queued, running, completed, failed };

std::string to_string(JobState state);

/// One run request: a registered experiment name plus the options the
/// builder consumes (the HTTP layer parses these from query params or a
/// JSON body).
struct JobRequest {
  std::string experiment;
  engine::FigureOptions options;
};

/// Point-in-time snapshot of a job (records counts what the job has
/// produced so far — buffered or already trimmed to the cache;
/// total_scenarios is the flattened scenario count, known at submission).
struct JobStatus {
  std::uint64_t id = 0;
  std::string experiment;
  JobState state = JobState::queued;
  std::size_t records = 0;
  std::size_t total_scenarios = 0;
  std::string error;  // failed jobs only
};

/// JobStatus plus the job's timing and its slice of the process-wide
/// telemetry counters (GET /runs/{id}/stats). For a finished job the
/// delta is frozen at completion; for a running job it is computed live.
/// Counter deltas are process-wide, so with executors > 1 a concurrent
/// job's work is attributed to both — exact per-job attribution would
/// need per-job registries, which the single-executor default makes
/// unnecessary.
struct JobStats {
  JobStatus status;
  /// Nanoseconds spent queued (submit -> start; running total while
  /// still queued).
  std::uint64_t queued_ns = 0;
  /// Nanoseconds spent executing (start -> finish; running total while
  /// executing; 0 while queued).
  std::uint64_t run_ns = 0;
  /// ("name{labels}", delta) of every counter that advanced while the
  /// job ran, in registration order.
  std::vector<std::pair<std::string, std::uint64_t>> counter_deltas;
};

/// Outcome of stream_records: the job's status at stream exit plus
/// whether every produced record line actually reached the writer (false
/// when the client went away, the job was deleted mid-stream, the
/// manager stopped, or a trimmed line could no longer be replayed from a
/// bounded cache).
struct StreamResult {
  JobStatus status;
  bool delivered_all = false;
};

/// JobManager tuning. (A top-level struct, not a nested one: a nested
/// class with default member initializers cannot be a `= {}` default
/// argument inside its enclosing class.)
struct JobManagerOptions {
  /// Ceiling on ACTIVE jobs (queued + running); submissions beyond it
  /// are rejected with 429. Finished jobs do not count — they are
  /// retained for inspection and evicted by count/age below.
  std::size_t max_jobs = 64;
  /// Executor threads. 1 serializes jobs — usually right, since each
  /// job saturates the machine through the engine's own sharding. 0 is
  /// allowed for tests: jobs queue but never run until deleted.
  std::size_t executors = 1;
  /// Largest per-instance task count a request may ask for. Instance
  /// memory is O(tasks + edges), so without a ceiling one untrusted
  /// POST /runs asking for a huge grid size could OOM the server. The
  /// default admits the 10^6-task instances the layer is built for.
  std::size_t max_task_count = 1'000'000;
  /// Terminal (completed/failed) jobs retained for inspection; the
  /// oldest beyond this are evicted at the next submit. 0 = max_jobs.
  std::size_t max_finished_jobs = 0;
  /// Age ceiling for terminal jobs (seconds since finish); 0 disables
  /// age-based eviction.
  std::uint64_t job_ttl_seconds = 0;
  /// Per-job record-buffer ceiling (NDJSON lines); 0 = unbounded. At the
  /// ceiling the producer trims replayable lines or blocks (see the
  /// header comment).
  std::size_t max_record_lines = 0;
  /// Shared scenario result cache (directory empty = memory-only).
  ResultCacheOptions cache = {};
};

class JobManager {
 public:
  using Options = JobManagerOptions;

  explicit JobManager(const engine::ExperimentRegistry& registry, Options options = {});
  ~JobManager();

  JobManager(const JobManager&) = delete;
  JobManager& operator=(const JobManager&) = delete;

  /// Validates and enqueues; returns the job id. Throws InvalidArgument
  /// for an unknown experiment or options the builder rejects, and
  /// TooManyJobs when max_jobs ACTIVE jobs are already held.
  std::uint64_t submit(JobRequest request);

  std::optional<JobStatus> status(std::uint64_t id) const;

  /// Status plus timing and counter deltas; nullopt for an unknown id.
  std::optional<JobStats> stats(std::uint64_t id) const;

  /// All jobs, oldest first.
  std::vector<JobStatus> jobs() const;

  std::size_t job_count() const;

  /// Jobs currently queued or running (the /healthz active count).
  std::size_t active_count() const;

  /// Removes the job: a queued job is cancelled, a running job detached
  /// (its engine pass finishes into the result cache; its buffered lines
  /// and any blocked producer are released), a finished job dropped.
  /// Attached streamers wake and end their streams. Returns the job's
  /// last status, or nullopt for an unknown id.
  std::optional<JobStatus> erase_job(std::uint64_t id);

  /// Streams the job's NDJSON record lines (each with its trailing
  /// newline) through `write`, in record order, blocking until the job
  /// reaches a terminal state, `write` returns false (client gone), the
  /// job is deleted, or the manager stops. Lines already trimmed from
  /// the buffer are re-rendered from the result cache. Returns nullopt
  /// for an unknown id.
  std::optional<StreamResult> stream_records(
      std::uint64_t id, const std::function<bool(std::string_view line)>& write) const;

  /// The shared scenario result cache (tests and telemetry).
  ResultCache& cache() { return cache_; }

  /// Wakes streamers and joins the executors once the in-flight job (if
  /// any) finishes. Idempotent; the destructor calls it.
  void stop();

 private:
  /// One stream position of a job: the cache hash of its record body
  /// plus the owning panel (index into Job::slugs) — everything needed
  /// to re-render the line after it was trimmed from the buffer.
  /// Compact on purpose: a million-scenario job stores one of these per
  /// record, not a canonical key string.
  struct RecordPos {
    std::uint64_t key_hash = 0;
    std::uint32_t slug = 0;
  };

  // Job fields are guarded by the manager's mutex_ once the job is
  // visible (submitted): the executor publishes bulk fields (positions,
  // slugs) under the lock before the first record, and every later
  // mutation (lines, cursors, state) happens under the lock.
  struct Job {
    std::uint64_t id = 0;
    JobRequest request;
    JobState state = JobState::queued;
    /// DELETE arrived: the job is out of the map; the executor drops
    /// its output (the cache still receives results) and producers and
    /// streamers release immediately.
    bool deleted = false;

    /// The buffered window [lines_base, lines_total) of the record
    /// stream; positions below lines_base were trimmed and replay from
    /// the cache.
    std::deque<std::string> lines;  // NDJSON records, each "\n"-terminated
    std::size_t lines_base = 0;
    std::size_t lines_total = 0;
    /// Replay metadata per stream position (published before record 0).
    std::vector<RecordPos> positions;
    std::vector<std::string> slugs;
    /// Attached streamer cursors (token -> next position to send); the
    /// producer may trim position p only when every cursor is past it.
    std::map<std::uint64_t, std::size_t> cursors;
    std::uint64_t next_cursor_token = 1;

    std::size_t total_scenarios = 0;
    std::string error;
    // Telemetry (obs::monotonic_ns timestamps; 0 = not reached yet).
    std::uint64_t submit_ns = 0;
    std::uint64_t start_ns = 0;
    std::uint64_t finish_ns = 0;
    /// Counter snapshot taken when the job started running.
    std::vector<std::pair<std::string, std::uint64_t>> counters_at_start;
    /// Frozen at completion (terminal states only).
    std::vector<std::pair<std::string, std::uint64_t>> counter_deltas;
  };

  static bool terminal(const Job& job) {
    return job.state == JobState::completed || job.state == JobState::failed;
  }

  JobStatus snapshot_locked(const Job& job) const REQUIRES(mutex_);
  std::size_t active_locked() const REQUIRES(mutex_);
  /// Drops terminal jobs beyond max_finished_jobs / past job_ttl_seconds.
  void evict_locked(std::uint64_t now_ns) REQUIRES(mutex_);
  /// Releases a job's buffered lines (gauge bookkeeping included).
  void drop_lines_locked(Job& job) REQUIRES(mutex_);
  /// Appends one produced line, trimming or blocking at the buffer
  /// ceiling; returns false when the job was deleted or the manager
  /// stopped (the line is dropped).
  bool append_line(const std::shared_ptr<Job>& job, std::string line) EXCLUDES(mutex_);
  void executor_loop() EXCLUDES(mutex_);
  void run_job(const std::shared_ptr<Job>& job) EXCLUDES(mutex_);

  const engine::ExperimentRegistry& registry_;
  Options options_;
  ResultCache cache_;

  mutable Mutex mutex_;
  /// Signals every state change: new records, state transitions, new
  /// queued jobs, deletions, shutdown.
  mutable CondVar changed_;
  /// Signals buffer space: a streamer advanced or detached, a job was
  /// deleted, the manager stopped. Producers at the ceiling wait here.
  mutable CondVar space_;
  /// Jobs by id (ordered, so iteration is oldest-first). shared_ptr:
  /// executors and streamers keep the Job alive across erase_job /
  /// eviction without holding the lock.
  std::map<std::uint64_t, std::shared_ptr<Job>> jobs_ GUARDED_BY(mutex_);
  /// Submission-order executor queue; ids of deleted jobs are lazily
  /// skipped on pop (erasure never has to search the queue).
  std::deque<std::uint64_t> queue_ GUARDED_BY(mutex_);
  std::uint64_t next_id_ GUARDED_BY(mutex_) = 1;
  bool stopping_ GUARDED_BY(mutex_) = false;
  std::vector<std::thread> executors_;
};

/// Thrown by submit() when the manager is at max_jobs capacity (the HTTP
/// layer maps it to 429).
class TooManyJobs : public Error {
 public:
  explicit TooManyJobs(const std::string& what) : Error(what) {}
};

}  // namespace fpsched::service
