#include "service/http_server.hpp"

#include <sys/socket.h>

#include <cctype>
#include <charconv>
#include <chrono>
#include <cstdio>
#include <utility>

#include "engine/result_sink.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/error.hpp"

namespace fpsched::service {

namespace {

// Telemetry only (see obs/metrics.hpp). The per-route/status request
// counter is registered lazily per label pair at request completion —
// one registry lookup per request is fine at control-plane traffic.
struct HttpMetrics {
  obs::Histogram& request_seconds;
  obs::Counter& response_bytes;
};

HttpMetrics& http_metrics() {
  static HttpMetrics* metrics = [] {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
    return new HttpMetrics{
        reg.histogram("fpsched_http_request_seconds",
                      "wall seconds per request, read to response end",
                      obs::latency_buckets_seconds()),
        reg.counter("fpsched_http_response_bytes_total",
                    "response payload bytes handed to client sockets")};
  }();
  return *metrics;
}

// Request-size ceilings: the service's requests are tiny (query params
// and small JSON bodies), so anything bigger is a client bug or abuse.
constexpr std::size_t kMaxHeaderBytes = 64 * 1024;
constexpr std::size_t kMaxBodyBytes = 1024 * 1024;

std::string_view status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 201: return "Created";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    default: return "Status";
  }
}

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

std::vector<std::string> split_segments(std::string_view path) {
  std::vector<std::string> segments;
  std::size_t start = 0;
  while (start < path.size()) {
    if (path[start] == '/') {
      ++start;
      continue;
    }
    std::size_t end = path.find('/', start);
    if (end == std::string_view::npos) end = path.size();
    segments.emplace_back(path.substr(start, end - start));
    start = end;
  }
  return segments;
}

/// Splits the raw request path on its literal '/' separators, THEN
/// percent-decodes each segment — so encoded bytes (including "%2F")
/// stay inside their segment and can never add or remove a separator.
std::vector<std::string> decoded_segments(std::string_view raw_path) {
  std::vector<std::string> segments = split_segments(raw_path);
  for (std::string& segment : segments) segment = url_decode(segment);
  return segments;
}

std::string lowercased(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string_view trimmed(std::string_view text) {
  while (!text.empty() && (text.front() == ' ' || text.front() == '\t')) text.remove_prefix(1);
  while (!text.empty() && (text.back() == ' ' || text.back() == '\t')) text.remove_suffix(1);
  return text;
}

}  // namespace

std::string url_decode(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '+') {
      out += ' ';
    } else if (text[i] == '%' && i + 2 < text.size() && hex_value(text[i + 1]) >= 0 &&
               hex_value(text[i + 2]) >= 0) {
      out += static_cast<char>(hex_value(text[i + 1]) * 16 + hex_value(text[i + 2]));
      i += 2;
    } else {
      out += text[i];
    }
  }
  return out;
}

std::map<std::string, std::string> parse_query(std::string_view query) {
  std::map<std::string, std::string> params;
  std::size_t start = 0;
  while (start <= query.size()) {
    std::size_t end = query.find('&', start);
    if (end == std::string_view::npos) end = query.size();
    const std::string_view item = query.substr(start, end - start);
    if (!item.empty()) {
      const std::size_t eq = item.find('=');
      if (eq == std::string_view::npos) {
        params[url_decode(item)] = "";
      } else {
        params[url_decode(item.substr(0, eq))] = url_decode(item.substr(eq + 1));
      }
    }
    start = end + 1;
  }
  return params;
}

// --- HttpResponseWriter ------------------------------------------------

bool HttpResponseWriter::write_head(int status, std::string_view content_type, bool chunked,
                                    std::size_t content_length) {
  ensure(!started_, "response already started");
  started_ = true;
  chunked_ = chunked;
  status_ = status;
  std::string head = "HTTP/1.1 " + std::to_string(status) + " " + std::string(status_text(status)) +
                     "\r\nContent-Type: " + std::string(content_type) + "\r\nConnection: close\r\n";
  if (chunked) {
    head += "Transfer-Encoding: chunked\r\n";
  } else {
    head += "Content-Length: " + std::to_string(content_length) + "\r\n";
  }
  head += "\r\n";
  if (!send_all(fd_, head)) broken_ = true;
  return !broken_;
}

bool HttpResponseWriter::respond(int status, std::string_view content_type,
                                 std::string_view body) {
  if (!write_head(status, content_type, /*chunked=*/false, body.size())) return false;
  if (!send_all(fd_, body)) {
    broken_ = true;
  } else {
    bytes_sent_ += body.size();
  }
  return !broken_;
}

bool HttpResponseWriter::begin_chunked(int status, std::string_view content_type) {
  return write_head(status, content_type, /*chunked=*/true, 0);
}

bool HttpResponseWriter::write_chunk(std::string_view data) {
  ensure(chunked_, "write_chunk before begin_chunked");
  if (broken_ || finished_) return false;
  if (data.empty()) return true;
  char size_line[32];
  std::snprintf(size_line, sizeof size_line, "%zx\r\n", data.size());
  std::string chunk = size_line;
  chunk += data;
  chunk += "\r\n";
  if (!send_all(fd_, chunk)) {
    broken_ = true;
  } else {
    bytes_sent_ += data.size();
  }
  return !broken_;
}

void HttpResponseWriter::end_chunked() {
  if (!chunked_ || finished_ || broken_) return;
  finished_ = true;
  if (!send_all(fd_, "0\r\n\r\n")) broken_ = true;
}

// --- HttpServer --------------------------------------------------------

HttpServer::HttpServer(HttpServerOptions options) : options_(options) {
  ensure(options_.threads >= 1, "the http server needs at least one worker thread");
}

HttpServer::~HttpServer() { stop(); }

void HttpServer::route(std::string method, std::string pattern, HttpHandler handler) {
  ensure(!started_, "routes must be registered before start()");
  ensure(static_cast<bool>(handler), "route " + pattern + " needs a handler");
  routes_.push_back({std::move(method), split_segments(pattern), std::move(handler)});
}

void HttpServer::start() {
  ensure(!started_, "the server is already started");
  ignore_sigpipe();
  listener_ = listen_on(options_.port, &bound_port_);
  workers_ = std::make_unique<ThreadPool>(options_.threads);
  started_ = true;
  acceptor_ = std::thread([this] { accept_loop(); });
}

void HttpServer::stop() {
  if (!started_ || stopped_.exchange(true)) return;
  // Wake the acceptor: shutdown unblocks accept() on Linux; the throwaway
  // self-connect covers platforms where it does not.
  ::shutdown(listener_.get(), SHUT_RDWR);
  try {
    connect_loopback(bound_port_);
  } catch (const Error&) {
    // Already unblocked — nothing to wake.
  }
  if (acceptor_.joinable()) acceptor_.join();
  listener_.reset();
  workers_.reset();  // drains in-flight connections
}

void HttpServer::accept_loop() {
  for (;;) {
    FileDescriptor client = accept_client(listener_.get());
    if (stopped_.load()) return;
    if (!client.valid()) {
      if (stopped_.load()) return;
      // Transient accept failure (aborted connection, or EMFILE while
      // streams hold every descriptor) — back off instead of spinning a
      // core until the condition clears.
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      continue;
    }
    // The worker owns the descriptor; a shared_ptr smuggles the move-only
    // fd through std::function's copyable requirement.
    auto shared = std::make_shared<FileDescriptor>(std::move(client));
    workers_->submit([this, shared] { handle_connection(std::move(*shared)); });
  }
}

namespace {

/// Reads one request off the socket. Returns 0 on success or the HTTP
/// status to fail the connection with.
int read_request(int fd, HttpRequest& request) {
  std::string data;
  std::size_t header_end = std::string::npos;
  char buffer[8192];
  while (header_end == std::string::npos) {
    if (data.size() > kMaxHeaderBytes) return 431;
    const long received = recv_some(fd, buffer, sizeof buffer);
    if (received <= 0) return 408;  // hung up or timed out mid-request
    data.append(buffer, static_cast<std::size_t>(received));
    header_end = data.find("\r\n\r\n");
  }

  // Request line: METHOD SP target SP HTTP/1.x
  const std::size_t line_end = data.find("\r\n");
  const std::string_view line = std::string_view(data).substr(0, line_end);
  const std::size_t method_end = line.find(' ');
  if (method_end == std::string_view::npos) return 400;
  const std::size_t target_end = line.find(' ', method_end + 1);
  if (target_end == std::string_view::npos) return 400;
  if (line.substr(target_end + 1).substr(0, 5) != "HTTP/") return 400;
  request.method = std::string(line.substr(0, method_end));
  const std::string_view target = line.substr(method_end + 1, target_end - method_end - 1);
  const std::size_t question = target.find('?');
  // The path stays RAW here; routing splits it into segments first and
  // percent-decodes each segment afterwards. Decoding the whole path up
  // front turned an encoded "%2F" inside a captured {id} into a '/'
  // routing separator, changing which route a request matched.
  request.path = std::string(target.substr(0, question));
  if (question != std::string_view::npos) request.query = std::string(target.substr(question + 1));

  // Headers, lowercased names.
  std::size_t pos = line_end + 2;
  while (pos < header_end) {
    std::size_t end = data.find("\r\n", pos);
    if (end == std::string::npos || end > header_end) end = header_end;
    const std::string_view header = std::string_view(data).substr(pos, end - pos);
    const std::size_t colon = header.find(':');
    if (colon != std::string_view::npos) {
      request.headers[lowercased(trimmed(header.substr(0, colon)))] =
          std::string(trimmed(header.substr(colon + 1)));
    }
    pos = end + 2;
  }

  // Body by Content-Length (the only framing the service accepts). A
  // chunked request body must be refused, not silently dropped — the
  // handler would otherwise run with half the client's parameters.
  if (request.headers.find("transfer-encoding") != request.headers.end()) return 501;
  std::size_t content_length = 0;
  if (const auto it = request.headers.find("content-length"); it != request.headers.end()) {
    // Full-match std::from_chars, not std::stoul: stoul threw on
    // non-numeric values but silently accepted trailing garbage
    // ("12abc") and wrapped negatives ("-1") into huge lengths. An
    // unsigned from_chars rejects a sign up front, overflow comes back
    // as an error code, and the end-pointer check refuses any trailing
    // bytes — everything malformed is a clean 400.
    const std::string& value = it->second;
    const auto [end, ec] = std::from_chars(value.data(), value.data() + value.size(),
                                           content_length);
    if (ec != std::errc() || end != value.data() + value.size()) return 400;
  }
  if (content_length > kMaxBodyBytes) return 413;
  const std::size_t body_start = header_end + 4;
  while (data.size() < body_start + content_length) {
    const long received = recv_some(fd, buffer, sizeof buffer);
    if (received <= 0) return 408;
    data.append(buffer, static_cast<std::size_t>(received));
  }
  request.body = data.substr(body_start, content_length);
  return 0;
}

void send_error(HttpResponseWriter& writer, int status, std::string_view message) {
  writer.respond(status, "application/json",
                 "{\"error\":" + engine::json_quote(message) + "}\n");
}

}  // namespace

const HttpServer::Route* HttpServer::match(const HttpRequest& request, bool* path_known) const {
  const std::vector<std::string> segments = decoded_segments(request.path);
  const Route* found = nullptr;
  for (const Route& route : routes_) {
    if (route.segments.size() != segments.size()) continue;
    bool matches = true;
    for (std::size_t i = 0; i < segments.size() && matches; ++i) {
      const std::string& pattern = route.segments[i];
      const bool capture = pattern.size() >= 2 && pattern.front() == '{' && pattern.back() == '}';
      matches = capture || pattern == segments[i];
    }
    if (!matches) continue;
    *path_known = true;
    if (route.method == request.method) {
      found = &route;
      break;
    }
  }
  return found;
}

void HttpServer::handle_connection(FileDescriptor client) {
  set_socket_timeouts(client.get(), options_.socket_timeout_seconds);
  HttpMetrics& metrics = http_metrics();
  HttpRequest request;
  HttpResponseWriter writer(client.get());
  std::string route_label = "(unmatched)";
  {
    const obs::ScopedTimer timer(metrics.request_seconds);
    dispatch(client.get(), request, writer, route_label);
  }
  metrics.response_bytes.add(writer.bytes_sent());
  obs::MetricsRegistry::global()
      .counter("fpsched_http_requests_total", "HTTP requests by route and status",
               "route=\"" + route_label + "\",status=\"" + std::to_string(writer.status()) + "\"")
      .add(1);
}

void HttpServer::dispatch(int fd, HttpRequest& request, HttpResponseWriter& writer,
                          std::string& route_label) {
  const int parse_status = read_request(fd, request);
  if (parse_status != 0) {
    route_label = "(bad-request)";
    send_error(writer, parse_status, "malformed request");
    return;
  }
  const obs::TraceSpan span([&] { return "http " + request.method + " " + request.path; });

  bool path_known = false;
  const Route* route = match(request, &path_known);
  if (!route) {
    send_error(writer, path_known ? 405 : 404,
               path_known ? "method not allowed on " + request.path
                          : "no such endpoint: " + request.path);
    return;
  }
  route_label.clear();
  for (const std::string& segment : route->segments) {
    route_label += '/';
    route_label += segment;
  }
  if (route_label.empty()) route_label += '/';
  // Re-bind the {name} captures of the winning pattern.
  const std::vector<std::string> segments = decoded_segments(request.path);
  for (std::size_t i = 0; i < segments.size(); ++i) {
    const std::string& pattern = route->segments[i];
    if (pattern.size() >= 2 && pattern.front() == '{' && pattern.back() == '}') {
      request.path_params[pattern.substr(1, pattern.size() - 2)] = segments[i];
    }
  }

  try {
    route->handler(request, writer);
  } catch (const InvalidArgument& e) {
    if (!writer.started()) send_error(writer, 400, e.what());
  } catch (const std::exception& e) {
    if (!writer.started()) send_error(writer, 500, e.what());
  }
  if (!writer.started()) {
    send_error(writer, 500, "handler produced no response");
  } else if (writer.chunked()) {
    writer.end_chunked();
  }
}

}  // namespace fpsched::service
