#include "service/job_manager.hpp"

#include <map>
#include <span>
#include <utility>

#include "engine/engine.hpp"
#include "engine/result_sink.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace fpsched::service {

namespace {

// Telemetry only (see obs/metrics.hpp). The by-state gauges are labeled
// siblings of one fpsched_jobs family.
struct JobMetrics {
  obs::Gauge& queued;
  obs::Gauge& running;
  obs::Gauge& completed;
  obs::Gauge& failed;
  obs::Counter& submitted;
  obs::Counter& finished_ok;
  obs::Counter& finished_err;
  obs::Counter& evicted;
  obs::Gauge& record_lines;
  obs::Histogram& run_seconds;
};

JobMetrics& job_metrics() {
  static JobMetrics* metrics = [] {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
    const std::string_view help = "jobs currently held, by state";
    return new JobMetrics{reg.gauge("fpsched_jobs", help, "state=\"queued\""),
                          reg.gauge("fpsched_jobs", help, "state=\"running\""),
                          reg.gauge("fpsched_jobs", help, "state=\"completed\""),
                          reg.gauge("fpsched_jobs", help, "state=\"failed\""),
                          reg.counter("fpsched_jobs_submitted_total", "jobs accepted by submit()"),
                          reg.counter("fpsched_jobs_completed_total", "jobs finished successfully"),
                          reg.counter("fpsched_jobs_failed_total", "jobs finished with an error"),
                          reg.counter("fpsched_jobs_evicted_total",
                                      "terminal jobs dropped by count/age eviction"),
                          reg.gauge("fpsched_job_record_lines",
                                    "NDJSON record lines buffered across all jobs"),
                          reg.histogram("fpsched_job_run_seconds", "execution seconds per job",
                                        obs::latency_buckets_seconds())};
  }();
  return *metrics;
}

/// Per-counter advance between two registry snapshots (zero deltas are
/// dropped). Matched by name through a sorted index — O(n log n), where
/// the old nested scan went quadratic in the counter count — so a
/// counter registered mid-job still lines up.
std::vector<std::pair<std::string, std::uint64_t>> counter_delta(
    const std::vector<std::pair<std::string, std::uint64_t>>& before,
    const std::vector<std::pair<std::string, std::uint64_t>>& after) {
  std::map<std::string_view, std::uint64_t> base;
  for (const auto& [name, value] : before) base.emplace(name, value);
  std::vector<std::pair<std::string, std::uint64_t>> delta;
  for (const auto& [name, value] : after) {
    const auto it = base.find(name);
    const std::uint64_t start = it == base.end() ? 0 : it->second;
    if (value > start) delta.emplace_back(name, value - start);
  }
  return delta;
}

}  // namespace

std::string to_string(JobState state) {
  switch (state) {
    case JobState::queued: return "queued";
    case JobState::running: return "running";
    case JobState::completed: return "completed";
    case JobState::failed: return "failed";
  }
  return "?";
}

JobManager::JobManager(const engine::ExperimentRegistry& registry, Options options)
    : registry_(registry), options_(options), cache_(options_.cache) {
  ensure(options_.max_jobs >= 1, "the job manager needs max_jobs >= 1");
  // executors == 0 is allowed: jobs queue but never start — the
  // deterministic mode the admission/eviction tests drive.
  executors_.reserve(options_.executors);
  for (std::size_t i = 0; i < options_.executors; ++i) {
    executors_.emplace_back([this] { executor_loop(); });
  }
}

JobManager::~JobManager() { stop(); }

std::uint64_t JobManager::submit(JobRequest request) {
  // Validate the whole request up front — the registry lookup, the plan
  // build, and the grid validation all throw InvalidArgument with a
  // message worth relaying to the client — so a bad request fails the
  // submission, never the executor.
  const engine::Experiment& experiment = registry_.find(request.experiment);
  const engine::FigurePlan plan = experiment.build(request.options);
  std::size_t total = 0;
  for (const engine::PanelSpec& panel : plan.panels) {
    panel.grid.validate();
    for (const std::size_t size : panel.grid.sizes) {
      ensure(size <= options_.max_task_count,
             "requested instance of " + std::to_string(size) + " tasks exceeds the server's " +
                 "--max-task-count ceiling of " + std::to_string(options_.max_task_count));
    }
    total += panel.grid.scenario_count();
  }

  const std::uint64_t now = obs::monotonic_ns();
  const LockGuard lock(mutex_);
  ensure(!stopping_, "the job manager is shutting down");
  evict_locked(now);
  // Admission counts only ACTIVE jobs: finished jobs are inspection
  // state, not load, and are reclaimed by eviction — a server left
  // running can never wedge itself into permanent 429s.
  if (active_locked() >= options_.max_jobs) {
    throw TooManyJobs("job capacity reached (" + std::to_string(options_.max_jobs) +
                      " active jobs); wait for one to finish, DELETE one, or raise --max-jobs");
  }
  auto job = std::make_shared<Job>();
  job->id = next_id_++;
  job->request = std::move(request);
  job->total_scenarios = total;
  job->submit_ns = now;
  const std::uint64_t id = job->id;
  jobs_.emplace(id, std::move(job));
  queue_.push_back(id);
  job_metrics().submitted.add(1);
  job_metrics().queued.add(1);
  changed_.notify_all();
  return id;
}

JobStatus JobManager::snapshot_locked(const Job& job) const {
  JobStatus status;
  status.id = job.id;
  status.experiment = job.request.experiment;
  status.state = job.state;
  status.records = job.lines_total;
  status.total_scenarios = job.total_scenarios;
  status.error = job.error;
  return status;
}

std::size_t JobManager::active_locked() const {
  std::size_t active = 0;
  for (const auto& [id, job] : jobs_) {
    if (job->state == JobState::queued || job->state == JobState::running) ++active;
  }
  return active;
}

void JobManager::drop_lines_locked(Job& job) {
  job_metrics().record_lines.add(-static_cast<std::int64_t>(job.lines.size()));
  job.lines.clear();
  job.lines_base = job.lines_total;
  space_.notify_all();
}

void JobManager::evict_locked(std::uint64_t now_ns) {
  JobMetrics& metrics = job_metrics();
  const auto evict_one = [&](std::map<std::uint64_t, std::shared_ptr<Job>>::iterator it)
                             REQUIRES(mutex_) {
    Job& job = *it->second;
    (job.state == JobState::completed ? metrics.completed : metrics.failed).add(-1);
    metrics.evicted.add(1);
    // Attached streamers keep the Job alive through their shared_ptr and
    // replay what they have not sent yet from the result cache
    // (drop_lines_locked moved the whole window behind lines_base).
    drop_lines_locked(job);
    jobs_.erase(it);
  };

  if (options_.job_ttl_seconds != 0) {
    const std::uint64_t ttl_ns = options_.job_ttl_seconds * 1'000'000'000ULL;
    for (auto it = jobs_.begin(); it != jobs_.end();) {
      auto next = std::next(it);
      const Job& job = *it->second;
      if (terminal(job) && job.finish_ns + ttl_ns <= now_ns) evict_one(it);
      it = next;
    }
  }

  const std::size_t max_finished =
      options_.max_finished_jobs != 0 ? options_.max_finished_jobs : options_.max_jobs;
  std::size_t finished = 0;
  for (const auto& [id, job] : jobs_) {
    if (terminal(*job)) ++finished;
  }
  // Oldest terminal jobs first (map order is id order). Queued and
  // running jobs are never candidates.
  for (auto it = jobs_.begin(); finished > max_finished && it != jobs_.end();) {
    auto next = std::next(it);
    if (terminal(*it->second)) {
      evict_one(it);
      --finished;
    }
    it = next;
  }
}

std::optional<JobStatus> JobManager::status(std::uint64_t id) const {
  const LockGuard lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return std::nullopt;
  return snapshot_locked(*it->second);
}

std::vector<JobStatus> JobManager::jobs() const {
  const LockGuard lock(mutex_);
  std::vector<JobStatus> out;
  out.reserve(jobs_.size());
  for (const auto& [id, job] : jobs_) out.push_back(snapshot_locked(*job));
  return out;
}

std::size_t JobManager::job_count() const {
  const LockGuard lock(mutex_);
  return jobs_.size();
}

std::size_t JobManager::active_count() const {
  const LockGuard lock(mutex_);
  return active_locked();
}

std::optional<JobStats> JobManager::stats(std::uint64_t id) const {
  // Both snapshots are taken before the job lock: the registry has its
  // own mutex and is never held while waiting on ours.
  const std::uint64_t now = obs::monotonic_ns();
  const auto counters = obs::MetricsRegistry::global().counter_values();
  const LockGuard lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return std::nullopt;
  const Job& job = *it->second;
  JobStats stats;
  stats.status = snapshot_locked(job);
  stats.queued_ns = (job.start_ns != 0 ? job.start_ns : now) - job.submit_ns;
  switch (job.state) {
    case JobState::queued: break;
    case JobState::running:
      stats.run_ns = now - job.start_ns;
      stats.counter_deltas = counter_delta(job.counters_at_start, counters);
      break;
    case JobState::completed:
    case JobState::failed:
      stats.run_ns = job.finish_ns - job.start_ns;
      stats.counter_deltas = job.counter_deltas;
      break;
  }
  return stats;
}

std::optional<JobStatus> JobManager::erase_job(std::uint64_t id) {
  const LockGuard lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return std::nullopt;
  const std::shared_ptr<Job> job = it->second;
  const JobStatus snapshot = snapshot_locked(*job);
  JobMetrics& metrics = job_metrics();
  switch (job->state) {
    case JobState::queued:
      // Its id stays in queue_; the executor skips ids that no longer
      // resolve, so erasure never searches the queue.
      metrics.queued.add(-1);
      break;
    case JobState::running:
      // The executor owns the running gauge and decrements it when the
      // detached engine pass finishes (into the cache only).
      break;
    case JobState::completed:
    case JobState::failed:
      (job->state == JobState::completed ? metrics.completed : metrics.failed).add(-1);
      break;
  }
  job->deleted = true;
  drop_lines_locked(*job);
  jobs_.erase(it);
  changed_.notify_all();
  space_.notify_all();
  return snapshot;
}

std::optional<StreamResult> JobManager::stream_records(
    std::uint64_t id, const std::function<bool(std::string_view line)>& write) const {
  UniqueLock lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return std::nullopt;
  // The shared_ptr keeps the Job valid across DELETE/eviction while we
  // stream; positions/slugs are immutable once published, lines and
  // cursors only change under the lock.
  const std::shared_ptr<Job> job = it->second;
  const std::uint64_t token = job->next_cursor_token++;
  job->cursors.emplace(token, 0);
  const auto detach = [&]() REQUIRES(mutex_) {
    job->cursors.erase(token);
    space_.notify_all();
  };

  std::size_t sent = 0;
  for (;;) {
    bool replay_failed = false;
    while (sent < job->lines_total && !job->deleted && !stopping_) {
      bool alive;
      if (sent < job->lines_base) {
        // This position was trimmed from the buffer: re-render it from
        // the result cache (head re-attached per job, body by hash).
        const RecordPos pos = job->positions[sent];
        std::string line = engine::record_json_prefix(job->request.experiment,
                                                      job->slugs[pos.slug]);
        lock.unlock();
        const std::optional<std::string> body = cache_.fetch(pos.key_hash);
        if (!body) {
          // Only reachable with a bounded cache that already evicted the
          // entry: the stream has a hole, so end it as truncated.
          lock.lock();
          replay_failed = true;
          break;
        }
        line += *body;
        line += '\n';
        alive = write(line);
        lock.lock();
      } else {
        // Copy the line out so the (possibly slow) client write happens
        // without blocking the executor appending new records.
        const std::string line = job->lines[sent - job->lines_base];
        lock.unlock();
        alive = write(line);
        lock.lock();
      }
      ++sent;
      job->cursors[token] = sent;
      space_.notify_all();  // our advance may unblock a producer's trim
      if (!alive) {
        detach();
        return StreamResult{snapshot_locked(*job), false};
      }
    }
    const bool drained = sent == job->lines_total;
    if (replay_failed || job->deleted || stopping_ || (terminal(*job) && drained)) {
      detach();
      return StreamResult{snapshot_locked(*job),
                          !replay_failed && !job->deleted && terminal(*job) && drained};
    }
    changed_.wait(lock, mutex_);
  }
}

bool JobManager::append_line(const std::shared_ptr<Job>& job, std::string line) {
  UniqueLock lock(mutex_);
  for (;;) {
    if (job->deleted || stopping_) return false;
    if (options_.max_record_lines == 0 || job->lines.size() < options_.max_record_lines) break;
    // At the ceiling: trim the front line once every attached streamer
    // is past it (a detached window replays from the cache), otherwise
    // wait for a streamer to advance, detach, or the job to be deleted.
    // No deadlock: with no streamers the trim always applies, and an
    // attached streamer either advances/detaches (notifying space_) or
    // is itself the backpressure the bound exists to exert.
    bool trimmable = true;
    for (const auto& [token, cursor] : job->cursors) {
      if (cursor <= job->lines_base) {
        trimmable = false;
        break;
      }
    }
    if (trimmable) {
      job->lines.pop_front();
      ++job->lines_base;
      job_metrics().record_lines.add(-1);
      continue;
    }
    space_.wait(lock, mutex_);
  }
  job->lines.push_back(std::move(line));
  ++job->lines_total;
  job_metrics().record_lines.add(1);
  changed_.notify_all();
  return true;
}

void JobManager::executor_loop() {
  UniqueLock lock(mutex_);
  for (;;) {
    std::shared_ptr<Job> job;
    while (!stopping_ && !job) {
      while (!queue_.empty() && !job) {
        const std::uint64_t id = queue_.front();
        queue_.pop_front();
        const auto it = jobs_.find(id);
        // Deleted-while-queued jobs were erased from the map; their
        // queue entry is skipped here.
        if (it != jobs_.end() && it->second->state == JobState::queued) job = it->second;
      }
      if (!job) changed_.wait(lock, mutex_);
    }
    if (stopping_) return;  // queued jobs are abandoned on shutdown
    job->state = JobState::running;
    job->start_ns = obs::monotonic_ns();
    // Registry lock nests briefly inside ours; the registry never waits
    // on a job-manager lock, so the order cannot invert.
    job->counters_at_start = obs::MetricsRegistry::global().counter_values();
    job_metrics().queued.add(-1);
    job_metrics().running.add(1);
    changed_.notify_all();
    lock.unlock();
    run_job(job);
    lock.lock();
    changed_.notify_all();
  }
}

void JobManager::run_job(const std::shared_ptr<Job>& job) {
  JobMetrics& metrics = job_metrics();
  const obs::TraceSpan span(
      [&] { return "job " + std::to_string(job->id) + " " + job->request.experiment; });
  const obs::ScopedTimer timer(metrics.run_seconds);
  const auto finish = [&](JobState state, const std::string& error) {
    const std::uint64_t finish_ns = obs::monotonic_ns();
    const auto counters = obs::MetricsRegistry::global().counter_values();
    metrics.running.add(-1);
    (state == JobState::completed ? metrics.finished_ok : metrics.finished_err).add(1);
    const LockGuard lock(mutex_);
    job->state = state;
    job->error = error;
    job->finish_ns = finish_ns;
    job->counter_deltas = counter_delta(job->counters_at_start, counters);
    // A deleted job is no longer held by the manager; only its executor
    // bookkeeping (above) applies.
    if (!job->deleted) (state == JobState::completed ? metrics.completed : metrics.failed).add(1);
  };
  try {
    const engine::Experiment& experiment = registry_.find(job->request.experiment);
    const engine::FigurePlan plan = experiment.build(job->request.options);
    const std::vector<engine::PlannedScenario> planned = engine::flatten_plan(plan);
    const EvalMath math = job->request.options.eval_math;

    // Probe the result cache per flatten-plan position. Only the misses
    // go to the engine; hits replay their bytes at their positions, so
    // the merged stream is byte-identical to a cold run. lookup() does
    // the hit/miss counting: a fully cached job shows
    // hits == total_scenarios and an empty evaluator counter delta.
    std::vector<RecordPos> positions(planned.size());
    std::vector<std::string> slugs;
    std::vector<engine::ScenarioSpec> miss_specs;
    std::vector<std::size_t> miss_positions;
    for (std::size_t i = 0; i < planned.size(); ++i) {
      if (slugs.empty() || slugs.back() != planned[i].panel) slugs.push_back(planned[i].panel);
      const ResultCacheKey key = ResultCacheKey::of(planned[i].spec, math);
      positions[i] = RecordPos{key.hash, static_cast<std::uint32_t>(slugs.size() - 1)};
      if (!cache_.lookup(key)) {
        miss_specs.push_back(planned[i].spec);
        miss_positions.push_back(i);
      }
    }
    {
      // Publish the replay metadata before the first record; immutable
      // afterwards, so the producer below reads it without the lock.
      const LockGuard lock(mutex_);
      job->positions = std::move(positions);
      job->slugs = std::move(slugs);
    }

    bool live = true;           // false once the job is deleted/stopping
    bool replay_failed = false;
    std::size_t emitted = 0;    // stream positions appended so far
    // Appends the cache-hit positions in [emitted, end) — every position
    // there that is not a pending miss is a hit, and misses below
    // `emitted` were appended by the callback that reached them.
    const auto emit_hits_up_to = [&](std::size_t end) {
      for (; emitted < end && live; ++emitted) {
        const RecordPos pos = job->positions[emitted];
        const std::optional<std::string> body = cache_.fetch(pos.key_hash);
        if (!body) {
          // A bounded cache evicted a hit between probe and emit; the
          // stream cannot be completed faithfully.
          live = false;
          replay_failed = true;
          return;
        }
        std::string line =
            engine::record_json_prefix(job->request.experiment, job->slugs[pos.slug]);
        line += *body;
        line += '\n';
        live = append_line(job, std::move(line));
      }
    };

    if (!miss_specs.empty()) {
      const engine::ExperimentEngine engine({.threads = job->request.options.threads,
                                             .instance_cache = job->request.options.instance_cache,
                                             .eval_threads = job->request.options.eval_threads,
                                             .eval_math = math});
      // The ordered callback serializes deliveries in miss order; cached
      // positions between two misses are interleaved here so the stream
      // grows strictly in flatten-plan order, live.
      engine.run(miss_specs, [&](std::size_t index, const engine::ScenarioResult& result) {
        const std::size_t pos = miss_positions[index];
        if (live) emit_hits_up_to(pos);
        const ResultCacheKey key = ResultCacheKey::of(result.spec, math);
        const std::string body = engine::record_body_json(result);
        // Insert BEFORE appending (a deleted job still warms the cache):
        // every buffered line is replayable the moment it exists.
        cache_.insert(key, body);
        if (!live) return;
        std::string line =
            engine::record_json_prefix(job->request.experiment, job->slugs[job->positions[pos].slug]);
        line += body;
        line += '\n';
        live = append_line(job, std::move(line));
        if (live) emitted = pos + 1;
      });
    }
    if (live) emit_hits_up_to(job->positions.size());
    if (replay_failed) {
      throw Error(
          "a cached record was evicted while its job was assembling; raise the result cache's "
          "max_entries");
    }
    finish(JobState::completed, {});
  } catch (const std::exception& e) {
    finish(JobState::failed, e.what());
  }
}

void JobManager::stop() {
  {
    const LockGuard lock(mutex_);
    if (stopping_) return;
    stopping_ = true;
  }
  changed_.notify_all();
  space_.notify_all();
  for (std::thread& executor : executors_) {
    if (executor.joinable()) executor.join();
  }
  // Release every buffered record line so the process-wide record-lines
  // gauge does not keep counting buffers of a destroyed manager.
  const LockGuard lock(mutex_);
  for (auto& [id, job] : jobs_) drop_lines_locked(*job);
}

}  // namespace fpsched::service
