#include "service/job_manager.hpp"

#include "engine/result_sink.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace fpsched::service {

namespace {

// Telemetry only (see obs/metrics.hpp). The by-state gauges are labeled
// siblings of one fpsched_jobs family.
struct JobMetrics {
  obs::Gauge& queued;
  obs::Gauge& running;
  obs::Gauge& completed;
  obs::Gauge& failed;
  obs::Counter& submitted;
  obs::Counter& finished_ok;
  obs::Counter& finished_err;
  obs::Gauge& record_lines;
  obs::Histogram& run_seconds;
};

JobMetrics& job_metrics() {
  static JobMetrics* metrics = [] {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
    const std::string_view help = "jobs currently held, by state";
    return new JobMetrics{reg.gauge("fpsched_jobs", help, "state=\"queued\""),
                          reg.gauge("fpsched_jobs", help, "state=\"running\""),
                          reg.gauge("fpsched_jobs", help, "state=\"completed\""),
                          reg.gauge("fpsched_jobs", help, "state=\"failed\""),
                          reg.counter("fpsched_jobs_submitted_total", "jobs accepted by submit()"),
                          reg.counter("fpsched_jobs_completed_total", "jobs finished successfully"),
                          reg.counter("fpsched_jobs_failed_total", "jobs finished with an error"),
                          reg.gauge("fpsched_job_record_lines",
                                    "NDJSON record lines buffered across all jobs"),
                          reg.histogram("fpsched_job_run_seconds", "execution seconds per job",
                                        obs::latency_buckets_seconds())};
  }();
  return *metrics;
}

/// Per-counter advance between two registry snapshots (zero deltas are
/// dropped). `before` is a prefix of `after` in registration order, but
/// match by name so a counter registered mid-job still lines up.
std::vector<std::pair<std::string, std::uint64_t>> counter_delta(
    const std::vector<std::pair<std::string, std::uint64_t>>& before,
    const std::vector<std::pair<std::string, std::uint64_t>>& after) {
  std::vector<std::pair<std::string, std::uint64_t>> delta;
  for (const auto& [name, value] : after) {
    std::uint64_t base = 0;
    for (const auto& [before_name, before_value] : before) {
      if (before_name == name) {
        base = before_value;
        break;
      }
    }
    if (value > base) delta.emplace_back(name, value - base);
  }
  return delta;
}

}  // namespace

std::string to_string(JobState state) {
  switch (state) {
    case JobState::queued: return "queued";
    case JobState::running: return "running";
    case JobState::completed: return "completed";
    case JobState::failed: return "failed";
  }
  return "?";
}

JobManager::JobManager(const engine::ExperimentRegistry& registry, Options options)
    : registry_(registry), options_(options) {
  ensure(options_.max_jobs >= 1, "the job manager needs max_jobs >= 1");
  ensure(options_.executors >= 1, "the job manager needs at least one executor");
  executors_.reserve(options_.executors);
  for (std::size_t i = 0; i < options_.executors; ++i) {
    executors_.emplace_back([this] { executor_loop(); });
  }
}

JobManager::~JobManager() { stop(); }

std::uint64_t JobManager::submit(JobRequest request) {
  // Validate the whole request up front — the registry lookup, the plan
  // build, and the grid validation all throw InvalidArgument with a
  // message worth relaying to the client — so a bad request fails the
  // submission, never the executor.
  const engine::Experiment& experiment = registry_.find(request.experiment);
  const engine::FigurePlan plan = experiment.build(request.options);
  std::size_t total = 0;
  for (const engine::PanelSpec& panel : plan.panels) {
    panel.grid.validate();
    for (const std::size_t size : panel.grid.sizes) {
      ensure(size <= options_.max_task_count,
             "requested instance of " + std::to_string(size) + " tasks exceeds the server's " +
                 "--max-task-count ceiling of " + std::to_string(options_.max_task_count));
    }
    total += panel.grid.scenario_count();
  }

  const LockGuard lock(mutex_);
  ensure(!stopping_, "the job manager is shutting down");
  if (jobs_.size() >= options_.max_jobs) {
    throw TooManyJobs("job capacity reached (" + std::to_string(options_.max_jobs) +
                      " jobs held); raise --max-jobs or restart the server");
  }
  auto job = std::make_unique<Job>();
  job->id = next_id_++;
  job->request = std::move(request);
  job->total_scenarios = total;
  job->submit_ns = obs::monotonic_ns();
  const std::uint64_t id = job->id;
  jobs_.push_back(std::move(job));
  job_metrics().submitted.add(1);
  job_metrics().queued.add(1);
  changed_.notify_all();
  return id;
}

JobStatus JobManager::snapshot_locked(const Job& job) const {
  JobStatus status;
  status.id = job.id;
  status.experiment = job.request.experiment;
  status.state = job.state;
  status.records = job.lines.size();
  status.total_scenarios = job.total_scenarios;
  status.error = job.error;
  return status;
}

std::optional<JobStatus> JobManager::status(std::uint64_t id) const {
  const LockGuard lock(mutex_);
  for (const auto& job : jobs_) {
    if (job->id == id) return snapshot_locked(*job);
  }
  return std::nullopt;
}

std::vector<JobStatus> JobManager::jobs() const {
  const LockGuard lock(mutex_);
  std::vector<JobStatus> out;
  out.reserve(jobs_.size());
  for (const auto& job : jobs_) out.push_back(snapshot_locked(*job));
  return out;
}

std::size_t JobManager::job_count() const {
  const LockGuard lock(mutex_);
  return jobs_.size();
}

std::size_t JobManager::active_count() const {
  const LockGuard lock(mutex_);
  std::size_t active = 0;
  for (const auto& job : jobs_) {
    if (job->state == JobState::queued || job->state == JobState::running) ++active;
  }
  return active;
}

std::optional<JobStats> JobManager::stats(std::uint64_t id) const {
  // Both snapshots are taken before the job lock: the registry has its
  // own mutex and is never held while waiting on ours.
  const std::uint64_t now = obs::monotonic_ns();
  const auto counters = obs::MetricsRegistry::global().counter_values();
  const LockGuard lock(mutex_);
  for (const auto& job : jobs_) {
    if (job->id != id) continue;
    JobStats stats;
    stats.status = snapshot_locked(*job);
    stats.queued_ns = (job->start_ns != 0 ? job->start_ns : now) - job->submit_ns;
    switch (job->state) {
      case JobState::queued: break;
      case JobState::running:
        stats.run_ns = now - job->start_ns;
        stats.counter_deltas = counter_delta(job->counters_at_start, counters);
        break;
      case JobState::completed:
      case JobState::failed:
        stats.run_ns = job->finish_ns - job->start_ns;
        stats.counter_deltas = job->counter_deltas;
        break;
    }
    return stats;
  }
  return std::nullopt;
}

std::optional<JobStatus> JobManager::stream_records(
    std::uint64_t id, const std::function<bool(std::string_view line)>& write) const {
  UniqueLock lock(mutex_);
  const Job* job = nullptr;
  for (const auto& candidate : jobs_) {
    if (candidate->id == id) {
      job = candidate.get();
      break;
    }
  }
  if (!job) return std::nullopt;

  std::size_t sent = 0;
  for (;;) {
    while (sent < job->lines.size()) {
      // Copy the line out so the (possibly slow) client write happens
      // without blocking the executor appending new records.
      // NOLINTNEXTLINE(performance-unnecessary-copy-initialization) justification: a reference would dangle across the unlock window
      const std::string line = job->lines[sent];
      ++sent;
      lock.unlock();
      const bool alive = write(line);
      lock.lock();
      if (!alive) return snapshot_locked(*job);
    }
    const bool terminal = job->state == JobState::completed || job->state == JobState::failed;
    if ((terminal && sent == job->lines.size()) || stopping_) return snapshot_locked(*job);
    changed_.wait(lock, mutex_);
  }
}

void JobManager::executor_loop() {
  UniqueLock lock(mutex_);
  for (;;) {
    while (!stopping_ && next_queued_ >= jobs_.size()) changed_.wait(lock, mutex_);
    if (stopping_) return;  // queued jobs are abandoned on shutdown
    Job& job = *jobs_[next_queued_++];
    job.state = JobState::running;
    job.start_ns = obs::monotonic_ns();
    // Registry lock nests briefly inside ours; the registry never waits
    // on a job-manager lock, so the order cannot invert.
    job.counters_at_start = obs::MetricsRegistry::global().counter_values();
    job_metrics().queued.add(-1);
    job_metrics().running.add(1);
    changed_.notify_all();
    lock.unlock();
    run_job(job);
    lock.lock();
    changed_.notify_all();
  }
}

void JobManager::run_job(Job& job) {
  // Mutating `job` without the lock is safe for the fields touched here:
  // the executor is the only writer of state/error once running, and
  // lines are only appended under the lock inside the callback.
  JobMetrics& metrics = job_metrics();
  const obs::TraceSpan span(
      [&] { return "job " + std::to_string(job.id) + " " + job.request.experiment; });
  const obs::ScopedTimer timer(metrics.run_seconds);
  const auto finish = [&](JobState state, const std::string& error) {
    const std::uint64_t finish_ns = obs::monotonic_ns();
    const auto counters = obs::MetricsRegistry::global().counter_values();
    metrics.running.add(-1);
    (state == JobState::completed ? metrics.completed : metrics.failed).add(1);
    (state == JobState::completed ? metrics.finished_ok : metrics.finished_err).add(1);
    const LockGuard lock(mutex_);
    job.state = state;
    job.error = error;
    job.finish_ns = finish_ns;
    job.counter_deltas = counter_delta(job.counters_at_start, counters);
  };
  try {
    const engine::Experiment& experiment = registry_.find(job.request.experiment);
    engine::CallbackSink sink([&](const engine::ResultRecord& record) {
      std::string line = engine::to_json(record);
      line += '\n';
      job_metrics().record_lines.add(1);
      const LockGuard lock(mutex_);
      job.lines.push_back(std::move(line));
      changed_.notify_all();
    });
    engine::ResultSink* sinks[] = {&sink};
    engine::run_experiment(experiment, job.request.options, sinks, nullptr);
    finish(JobState::completed, {});
  } catch (const std::exception& e) {
    finish(JobState::failed, e.what());
  }
}

void JobManager::stop() {
  {
    const LockGuard lock(mutex_);
    if (stopping_) return;
    stopping_ = true;
  }
  changed_.notify_all();
  for (std::thread& executor : executors_) {
    if (executor.joinable()) executor.join();
  }
}

}  // namespace fpsched::service
