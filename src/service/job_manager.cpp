#include "service/job_manager.hpp"

#include "engine/result_sink.hpp"

namespace fpsched::service {

std::string to_string(JobState state) {
  switch (state) {
    case JobState::queued: return "queued";
    case JobState::running: return "running";
    case JobState::completed: return "completed";
    case JobState::failed: return "failed";
  }
  return "?";
}

JobManager::JobManager(const engine::ExperimentRegistry& registry, Options options)
    : registry_(registry), options_(options) {
  ensure(options_.max_jobs >= 1, "the job manager needs max_jobs >= 1");
  ensure(options_.executors >= 1, "the job manager needs at least one executor");
  executors_.reserve(options_.executors);
  for (std::size_t i = 0; i < options_.executors; ++i) {
    executors_.emplace_back([this] { executor_loop(); });
  }
}

JobManager::~JobManager() { stop(); }

std::uint64_t JobManager::submit(JobRequest request) {
  // Validate the whole request up front — the registry lookup, the plan
  // build, and the grid validation all throw InvalidArgument with a
  // message worth relaying to the client — so a bad request fails the
  // submission, never the executor.
  const engine::Experiment& experiment = registry_.find(request.experiment);
  const engine::FigurePlan plan = experiment.build(request.options);
  std::size_t total = 0;
  for (const engine::PanelSpec& panel : plan.panels) {
    panel.grid.validate();
    for (const std::size_t size : panel.grid.sizes) {
      ensure(size <= options_.max_task_count,
             "requested instance of " + std::to_string(size) + " tasks exceeds the server's " +
                 "--max-task-count ceiling of " + std::to_string(options_.max_task_count));
    }
    total += panel.grid.scenario_count();
  }

  const LockGuard lock(mutex_);
  ensure(!stopping_, "the job manager is shutting down");
  if (jobs_.size() >= options_.max_jobs) {
    throw TooManyJobs("job capacity reached (" + std::to_string(options_.max_jobs) +
                      " jobs held); raise --max-jobs or restart the server");
  }
  auto job = std::make_unique<Job>();
  job->id = next_id_++;
  job->request = std::move(request);
  job->total_scenarios = total;
  const std::uint64_t id = job->id;
  jobs_.push_back(std::move(job));
  changed_.notify_all();
  return id;
}

JobStatus JobManager::snapshot_locked(const Job& job) const {
  JobStatus status;
  status.id = job.id;
  status.experiment = job.request.experiment;
  status.state = job.state;
  status.records = job.lines.size();
  status.total_scenarios = job.total_scenarios;
  status.error = job.error;
  return status;
}

std::optional<JobStatus> JobManager::status(std::uint64_t id) const {
  const LockGuard lock(mutex_);
  for (const auto& job : jobs_) {
    if (job->id == id) return snapshot_locked(*job);
  }
  return std::nullopt;
}

std::vector<JobStatus> JobManager::jobs() const {
  const LockGuard lock(mutex_);
  std::vector<JobStatus> out;
  out.reserve(jobs_.size());
  for (const auto& job : jobs_) out.push_back(snapshot_locked(*job));
  return out;
}

std::size_t JobManager::job_count() const {
  const LockGuard lock(mutex_);
  return jobs_.size();
}

std::optional<JobStatus> JobManager::stream_records(
    std::uint64_t id, const std::function<bool(std::string_view line)>& write) const {
  UniqueLock lock(mutex_);
  const Job* job = nullptr;
  for (const auto& candidate : jobs_) {
    if (candidate->id == id) {
      job = candidate.get();
      break;
    }
  }
  if (!job) return std::nullopt;

  std::size_t sent = 0;
  for (;;) {
    while (sent < job->lines.size()) {
      // Copy the line out so the (possibly slow) client write happens
      // without blocking the executor appending new records.
      // NOLINTNEXTLINE(performance-unnecessary-copy-initialization) justification: a reference would dangle across the unlock window
      const std::string line = job->lines[sent];
      ++sent;
      lock.unlock();
      const bool alive = write(line);
      lock.lock();
      if (!alive) return snapshot_locked(*job);
    }
    const bool terminal = job->state == JobState::completed || job->state == JobState::failed;
    if ((terminal && sent == job->lines.size()) || stopping_) return snapshot_locked(*job);
    changed_.wait(lock, mutex_);
  }
}

void JobManager::executor_loop() {
  UniqueLock lock(mutex_);
  for (;;) {
    while (!stopping_ && next_queued_ >= jobs_.size()) changed_.wait(lock, mutex_);
    if (stopping_) return;  // queued jobs are abandoned on shutdown
    Job& job = *jobs_[next_queued_++];
    job.state = JobState::running;
    changed_.notify_all();
    lock.unlock();
    run_job(job);
    lock.lock();
    changed_.notify_all();
  }
}

void JobManager::run_job(Job& job) {
  // Mutating `job` without the lock is safe for the fields touched here:
  // the executor is the only writer of state/error once running, and
  // lines are only appended under the lock inside the callback.
  try {
    const engine::Experiment& experiment = registry_.find(job.request.experiment);
    engine::CallbackSink sink([&](const engine::ResultRecord& record) {
      std::string line = engine::to_json(record);
      line += '\n';
      const LockGuard lock(mutex_);
      job.lines.push_back(std::move(line));
      changed_.notify_all();
    });
    engine::ResultSink* sinks[] = {&sink};
    engine::run_experiment(experiment, job.request.options, sinks, nullptr);
    const LockGuard lock(mutex_);
    job.state = JobState::completed;
  } catch (const std::exception& e) {
    const LockGuard lock(mutex_);
    job.state = JobState::failed;
    job.error = e.what();
  }
}

void JobManager::stop() {
  {
    const LockGuard lock(mutex_);
    if (stopping_) return;
    stopping_ = true;
  }
  changed_.notify_all();
  for (std::thread& executor : executors_) {
    if (executor.joinable()) executor.join();
  }
}

}  // namespace fpsched::service
