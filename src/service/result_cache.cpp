#include "service/result_cache.hpp"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <filesystem>
#include <map>
#include <utility>

#include "engine/result_sink.hpp"
#include "obs/metrics.hpp"
#include "service/service.hpp"
#include "support/error.hpp"

namespace fpsched::service {

namespace {

/// Registered once per process; every ResultCache instance shares the
/// families (the registry dedupes by name), so the entries gauge tracks
/// live entries across all caches via add() deltas.
struct CacheMetrics {
  obs::Counter& hits;
  obs::Counter& misses;
  obs::Counter& inserts;
  obs::Counter& evicted;
  obs::Gauge& entries;
};

CacheMetrics& cache_metrics() {
  static CacheMetrics metrics = [] {
    auto& reg = obs::MetricsRegistry::global();
    return CacheMetrics{
        reg.counter("fpsched_result_cache_hits_total",
                    "Scenario results served from the content-addressed cache"),
        reg.counter("fpsched_result_cache_misses_total",
                    "Scenario cache lookups that required an evaluator run"),
        reg.counter("fpsched_result_cache_inserts_total",
                    "Scenario results stored in the cache (excludes restored entries)"),
        reg.counter("fpsched_result_cache_evicted_total",
                    "Scenario cache entries dropped by the max_entries FIFO"),
        reg.gauge("fpsched_result_cache_entries",
                  "Scenario results currently held in the cache"),
    };
  }();
  return metrics;
}

std::string hex64(std::uint64_t value) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(value));
  return buf;
}

std::string segment_name(std::size_t index) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "segment-%06zu.ndjson", index);
  return buf;
}

/// "segment-NNNNNN.ndjson" -> NNNNNN; nullopt for anything else.
std::optional<std::size_t> parse_segment_index(std::string_view name) {
  constexpr std::string_view prefix = "segment-";
  constexpr std::string_view suffix = ".ndjson";
  if (name.size() <= prefix.size() + suffix.size()) return std::nullopt;
  if (name.substr(0, prefix.size()) != prefix) return std::nullopt;
  if (name.substr(name.size() - suffix.size()) != suffix) return std::nullopt;
  const std::string_view digits =
      name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
  std::size_t index = 0;
  const auto [end, ec] = std::from_chars(digits.data(), digits.data() + digits.size(), index);
  if (ec != std::errc() || end != digits.data() + digits.size()) return std::nullopt;
  return index;
}

}  // namespace

ResultCacheKey ResultCacheKey::of(const engine::ScenarioSpec& spec, EvalMath math) {
  // The math backend is appended outside canonical_spec_string: it is not
  // a spec field, but fast-math records differ in their last digits, so
  // the two backends must not share entries.
  ResultCacheKey key;
  key.canonical = engine::canonical_spec_string(spec) + " math=" + to_string(math);
  key.hash = engine::fnv1a64(key.canonical);
  return key;
}

ResultCache::ResultCache(ResultCacheOptions options) : options_(std::move(options)) {
  if (!options_.directory.empty()) {
    engine::ensure_output_directory(options_.directory);
    load_segments();
  }
}

ResultCache::~ResultCache() {
  LockGuard lock(mutex_);
  cache_metrics().entries.add(-static_cast<std::int64_t>(entries_.size()));
}

std::optional<std::string> ResultCache::lookup(const ResultCacheKey& key) {
  LockGuard lock(mutex_);
  const auto it = entries_.find(key.hash);
  // Canonical verification: a 64-bit hash collision (or a corrupted
  // segment line that still hashed consistently) degrades to a miss
  // instead of serving another scenario's bytes.
  if (it == entries_.end() || it->second.canonical != key.canonical) {
    cache_metrics().misses.add();
    return std::nullopt;
  }
  cache_metrics().hits.add();
  return it->second.payload;
}

bool ResultCache::contains(std::uint64_t hash) const {
  LockGuard lock(mutex_);
  return entries_.find(hash) != entries_.end();
}

std::optional<std::string> ResultCache::fetch(std::uint64_t hash) const {
  LockGuard lock(mutex_);
  const auto it = entries_.find(hash);
  if (it == entries_.end()) return std::nullopt;
  return it->second.payload;
}

void ResultCache::insert(const ResultCacheKey& key, std::string_view payload) {
  LockGuard lock(mutex_);
  insert_locked(key, payload, /*persist=*/true);
}

std::size_t ResultCache::size() const {
  LockGuard lock(mutex_);
  return entries_.size();
}

void ResultCache::insert_locked(ResultCacheKey key, std::string_view payload, bool persist) {
  const auto it = entries_.find(key.hash);
  if (it != entries_.end()) return;  // first write wins; entries are immutable
  entries_.emplace(key.hash, Entry{key.canonical, std::string(payload)});
  insertion_order_.push_back(key.hash);
  auto& metrics = cache_metrics();
  metrics.entries.add(1);
  if (persist) {
    metrics.inserts.add();
    if (!options_.directory.empty()) append_segment_locked(key, payload);
  }
  while (options_.max_entries != 0 && entries_.size() > options_.max_entries) {
    entries_.erase(insertion_order_.front());
    insertion_order_.pop_front();
    metrics.entries.add(-1);
    metrics.evicted.add();
  }
}

void ResultCache::append_segment_locked(const ResultCacheKey& key, std::string_view payload) {
  if (!segment_.is_open()) open_next_segment_locked();
  // A failed segment (disk full, directory removed) downgrades to
  // memory-only persistence rather than failing the job that produced
  // the record — the in-memory entry is already correct.
  if (!segment_.good()) return;
  const std::string line = "{\"key\":\"" + hex64(key.hash) +
                           "\",\"spec\":" + engine::json_quote(key.canonical) +
                           ",\"payload\":" + engine::json_quote(payload) + "}";
  segment_ << line << '\n';
  segment_.flush();
  segment_bytes_ += line.size() + 1;
  if (segment_bytes_ >= options_.max_segment_bytes) {
    segment_.close();
    open_next_segment_locked();
  }
}

void ResultCache::open_next_segment_locked() {
  const std::filesystem::path path =
      std::filesystem::path(options_.directory) / segment_name(next_segment_index_);
  ++next_segment_index_;
  segment_bytes_ = 0;
  segment_.open(path, std::ios::app);
}

void ResultCache::load_segments() {
  // Replay every segment in name order (zero-padded indices, so lexical
  // order is creation order; first write wins on duplicates). Lines that
  // fail to parse, lack a field, or whose spec does not hash back to the
  // stored key — torn tail writes, manual edits — are skipped.
  std::map<std::size_t, std::filesystem::path> segments;
  std::error_code ec;
  for (const auto& dir_entry : std::filesystem::directory_iterator(options_.directory, ec)) {
    const auto index = parse_segment_index(dir_entry.path().filename().string());
    if (index) segments.emplace(*index, dir_entry.path());
  }
  LockGuard lock(mutex_);
  for (const auto& [index, path] : segments) {
    next_segment_index_ = std::max(next_segment_index_, index + 1);
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      try {
        const std::map<std::string, std::string> fields = parse_flat_json(line);
        const auto key_it = fields.find("key");
        const auto spec_it = fields.find("spec");
        const auto payload_it = fields.find("payload");
        if (key_it == fields.end() || spec_it == fields.end() || payload_it == fields.end()) {
          continue;
        }
        std::uint64_t hash = 0;
        const std::string& hex = key_it->second;
        const auto [end, parse_ec] =
            std::from_chars(hex.data(), hex.data() + hex.size(), hash, 16);
        if (parse_ec != std::errc() || end != hex.data() + hex.size()) continue;
        if (engine::fnv1a64(spec_it->second) != hash) continue;
        const std::size_t before = entries_.size();
        ResultCacheKey key;
        key.hash = hash;
        key.canonical = spec_it->second;
        insert_locked(std::move(key), payload_it->second, /*persist=*/false);
        if (entries_.size() > before) ++restored_;
      } catch (const Error&) {
        continue;
      }
    }
  }
}

}  // namespace fpsched::service
