#include "service/shard_merge.hpp"

#include <algorithm>
#include <fstream>
#include <ostream>
#include <sstream>
#include <string_view>

#include "support/error.hpp"
#include "support/table.hpp"

namespace fpsched::service {

namespace {

/// Whether the record line carries `"key":<value>` ("value" for
/// strings). Matching the serialized field beats a full JSON parse here:
/// the lines were produced by to_json(), and the merged output must be
/// byte-identical to them anyway, so the raw text is the ground truth.
bool has_field(std::string_view line, std::string_view key, std::string_view value,
               bool quoted) {
  std::string needle = "\"";
  needle += key;
  needle += "\":";
  if (quoted) needle += '"';
  needle += value;
  if (quoted) {
    needle += '"';
    return line.find(needle) != std::string_view::npos;
  }
  // Unquoted (numeric) values need a terminator check so scenario_index
  // 1 does not match 10.
  const std::size_t at = line.find(needle);
  if (at == std::string_view::npos) return false;
  const std::size_t end = at + needle.size();
  return end < line.size() && (line[end] == ',' || line[end] == '}');
}

[[noreturn]] void merge_error(const std::string& path, std::size_t line_number,
                              const std::string& message) {
  throw InvalidArgument(path + ":" + std::to_string(line_number) + ": " + message);
}

}  // namespace

MergeReport merge_ndjson_shards(const engine::Experiment& experiment,
                                const engine::FigureOptions& options,
                                const std::vector<std::string>& shard_paths, std::ostream& out,
                                const MergeOptions& merge) {
  const std::vector<engine::PlannedScenario> flattened =
      engine::flatten_plan(experiment.build(options));

  MergeReport report;
  report.expected = flattened.size();
  std::size_t position = 0;  // next flattened index the stream must produce

  for (const std::string& path : shard_paths) {
    ++report.files;
    std::ifstream file(path, std::ios::binary);
    if (!file.good()) throw InvalidArgument("cannot open shard file " + path);
    std::ostringstream buffer;
    buffer << file.rdbuf();
    const std::string content = buffer.str();
    if (!content.empty() && content.back() != '\n') {
      merge_error(path, 1 + std::count(content.begin(), content.end(), '\n'),
                  "truncated shard file (no trailing newline) — was the producing run cut "
                  "short?");
    }

    std::size_t line_number = 0;
    std::size_t start = 0;
    while (start < content.size()) {
      ++line_number;
      const std::size_t end = content.find('\n', start);
      const std::string_view line = std::string_view(content).substr(start, end - start);
      start = end + 1;
      if (line.empty()) merge_error(path, line_number, "empty record line");
      if (position >= flattened.size()) {
        merge_error(path, line_number,
                    "more records than the experiment's " + std::to_string(flattened.size()) +
                        " scenarios — duplicated shard, or options that do not match the "
                        "producing run");
      }
      const engine::PlannedScenario& planned = flattened[position];
      if (!has_field(line, "experiment", experiment.name, /*quoted=*/true)) {
        merge_error(path, line_number,
                    "record does not belong to experiment '" + experiment.name + "'");
      }
      if (!has_field(line, "panel", planned.panel, /*quoted=*/true) ||
          !has_field(line, "scenario_index", std::to_string(planned.spec.scenario_index),
                     /*quoted=*/false)) {
        merge_error(path, line_number,
                    "record out of sequence: expected panel '" + planned.panel +
                        "' scenario_index " + std::to_string(planned.spec.scenario_index) +
                        " (position " + std::to_string(position) + " of " +
                        std::to_string(flattened.size()) +
                        ") — shard files out of order, a gap between shards, or options that "
                        "do not match the producing run");
      }
      // Sequence position alone cannot catch value-only mismatches (a
      // shard produced with another --seed or --weight-cv has identical
      // panel/index sequences); pin the spec fields the record carries.
      if (!has_field(line, "tasks", std::to_string(planned.spec.task_count),
                     /*quoted=*/false) ||
          !has_field(line, "workflow_seed", std::to_string(planned.spec.workflow_seed),
                     /*quoted=*/false) ||
          !has_field(line, "weight_cv", format_double_full(planned.spec.weight_cv),
                     /*quoted=*/false) ||
          !has_field(line, "stride", std::to_string(planned.spec.stride),
                     /*quoted=*/false)) {
        merge_error(path, line_number,
                    "record options do not match: expected tasks=" +
                        std::to_string(planned.spec.task_count) +
                        " workflow_seed=" + std::to_string(planned.spec.workflow_seed) +
                        " weight_cv=" + format_double_full(planned.spec.weight_cv) +
                        " stride=" + std::to_string(planned.spec.stride) +
                        " — pass the same grid flags (--quick, --sizes, --seed, ...) the "
                        "producing runs used");
      }
      ++position;
    }
    // Validated: forward the shard's bytes verbatim, preserving the
    // byte-identity guarantee.
    out << content;
  }

  report.records = position;
  if (merge.require_complete && !report.complete()) {
    throw InvalidArgument("incomplete merge: " + std::to_string(report.records) + " of " +
                          std::to_string(report.expected) +
                          " scenarios covered — missing shard files? (drop --require-complete "
                          "to accept a prefix)");
  }
  if (!out.good()) throw InvalidArgument("error writing the merged stream");
  return report;
}

}  // namespace fpsched::service
