// Dependency-free embedded HTTP/1.1 server for the experiment service.
//
// Deliberately minimal: blocking sockets, one acceptor thread, a fixed
// pool of connection workers, one request per connection (the server
// always answers `Connection: close`). That is exactly enough for the
// service's traffic shape — a handful of control-plane requests plus
// long-lived chunked NDJSON streams — without pulling in an event loop
// or a third-party dependency.
//
// Handlers get two response modes:
//   - respond(): a buffered body with Content-Length (status JSON, etc.)
//   - begin_chunked()/write_chunk(): a chunked-transfer stream whose
//     chunks flush as they are written — the record-streaming path.
//     write_chunk() returns false once the client hangs up (EPIPE);
//     the handler should stop producing and return.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "support/socket.hpp"
#include "support/threading.hpp"

namespace fpsched::service {

/// Decodes %xx escapes and '+' (as space) — query-string decoding.
std::string url_decode(std::string_view text);

/// Parses "a=1&b=two" into a key -> decoded-value map (last key wins;
/// a bare "flag" maps to the empty string).
std::map<std::string, std::string> parse_query(std::string_view query);

/// One parsed request. Header names are lowercased; `path` is the RAW
/// request path — routing splits it on literal '/' first and decodes
/// each segment after, so an encoded %2F can never act as a separator.
/// `query` is the raw query string (parse_query() / query_params()
/// decode it). `path_params` holds the {name} captures of the matched
/// route pattern, percent-decoded.
struct HttpRequest {
  std::string method;
  std::string path;
  std::string query;
  std::map<std::string, std::string> headers;
  std::map<std::string, std::string> path_params;
  std::string body;

  std::map<std::string, std::string> query_params() const { return parse_query(query); }
};

/// Response writer bound to one connection. A handler must either call
/// respond() once, or begin_chunked() followed by any number of
/// write_chunk() calls; the server closes the stream (0-chunk) when the
/// handler returns. If a handler returns without writing anything the
/// server sends a 500.
class HttpResponseWriter {
 public:
  explicit HttpResponseWriter(int fd) : fd_(fd) {}

  /// Buffered response with Content-Length. Returns false when the
  /// client is gone (nothing more can be sent).
  bool respond(int status, std::string_view content_type, std::string_view body);

  /// Starts a chunked-transfer response. Chunks flush per write_chunk()
  /// call, so a slow run streams records as they complete.
  bool begin_chunked(int status, std::string_view content_type);

  /// One chunk (no-op for empty data — an empty chunk would terminate
  /// the stream). Returns false once the client disconnected; the
  /// caller should stop streaming.
  bool write_chunk(std::string_view data);

  /// Terminates a chunked stream (idempotent; the server also calls it).
  void end_chunked();

  /// Abandons a chunked stream WITHOUT the terminating 0-chunk, so the
  /// client's HTTP layer reports a truncated transfer instead of a
  /// clean end — for streams cut short server-side (failed job,
  /// shutdown) where a clean terminator would misrepresent the data as
  /// complete.
  void abort_stream() { broken_ = true; }

  bool started() const { return started_; }
  bool chunked() const { return chunked_; }

  /// The status sent (0 until a head is written) and the payload bytes
  /// handed to the socket so far — the request-metrics inputs.
  int status() const { return status_; }
  std::size_t bytes_sent() const { return bytes_sent_; }

 private:
  bool write_head(int status, std::string_view content_type, bool chunked,
                  std::size_t content_length);

  int fd_;
  bool started_ = false;   // response head written
  bool chunked_ = false;   // streaming mode
  bool finished_ = false;  // 0-chunk written
  bool broken_ = false;    // peer gone; suppress further writes
  int status_ = 0;
  std::size_t bytes_sent_ = 0;  // body/chunk payload bytes (headers excluded)
};

using HttpHandler = std::function<void(const HttpRequest&, HttpResponseWriter&)>;

struct HttpServerOptions {
  /// TCP port; 0 binds an ephemeral port (read it back via port()).
  std::uint16_t port = 8080;
  /// Connection worker threads (>= 1); also the max number of in-flight
  /// requests, since each connection is handled synchronously.
  std::size_t threads = 4;
  /// Per-connection socket send/receive timeout, seconds.
  int socket_timeout_seconds = 30;
};

/// The server: route() handlers, then start(). stop() (or destruction)
/// closes the listener and drains in-flight connections.
class HttpServer {
 public:
  explicit HttpServer(HttpServerOptions options = {});
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Registers `handler` for `method` plus a path pattern. Pattern
  /// segments are literal ("/healthz") or {name} captures
  /// ("/runs/{id}/records") exposed via HttpRequest::path_params.
  /// Routes must be registered before start().
  void route(std::string method, std::string pattern, HttpHandler handler);

  /// Binds and starts the acceptor + workers; throws fpsched::Error when
  /// the port cannot be bound.
  void start();

  /// Stops accepting, wakes the acceptor, and joins every thread once
  /// in-flight requests finish. Idempotent.
  void stop();

  /// The bound port (valid after start()).
  std::uint16_t port() const { return bound_port_; }

 private:
  struct Route {
    std::string method;
    std::vector<std::string> segments;  // "{name}" marks a capture
    HttpHandler handler;
  };

  void accept_loop();
  void handle_connection(FileDescriptor client);
  /// The read/route/handle core of handle_connection; sets `route_label`
  /// to the matched route's pattern (bounded-cardinality metrics label).
  void dispatch(int fd, HttpRequest& request, HttpResponseWriter& writer,
                std::string& route_label);
  const Route* match(const HttpRequest& request, bool* path_known) const;

  HttpServerOptions options_;
  std::vector<Route> routes_;
  FileDescriptor listener_;
  std::uint16_t bound_port_ = 0;
  std::thread acceptor_;
  std::unique_ptr<ThreadPool> workers_;
  bool started_ = false;
  std::atomic<bool> stopped_{false};
};

}  // namespace fpsched::service
