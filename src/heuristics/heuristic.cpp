#include "heuristics/heuristic.hpp"

#include "support/error.hpp"

namespace fpsched {

std::string HeuristicSpec::name() const {
  return to_string(linearization) + "-" + to_string(checkpointing);
}

std::vector<HeuristicSpec> all_heuristics() {
  std::vector<HeuristicSpec> specs;
  specs.push_back({LinearizeMethod::depth_first, CkptStrategy::never});
  specs.push_back({LinearizeMethod::depth_first, CkptStrategy::always});
  for (const HeuristicSpec& spec : budgeted_heuristics()) specs.push_back(spec);
  return specs;
}

std::vector<HeuristicSpec> budgeted_heuristics() {
  std::vector<HeuristicSpec> specs;
  for (const LinearizeMethod lin : all_linearize_methods()) {
    for (const CkptStrategy ck : {CkptStrategy::by_weight, CkptStrategy::by_cost,
                                  CkptStrategy::by_outweight, CkptStrategy::periodic}) {
      specs.push_back({lin, ck});
    }
  }
  return specs;
}

HeuristicResult run_heuristic(const ScheduleEvaluator& evaluator, const HeuristicSpec& spec,
                              const HeuristicOptions& options) {
  const TaskGraph& graph = evaluator.graph();
  const std::vector<VertexId> order =
      linearize(graph.dag(), graph.weights_view(), spec.linearization, options.linearize);
  return run_heuristic(evaluator, spec, order, options);
}

HeuristicResult run_heuristic(const ScheduleEvaluator& evaluator, const HeuristicSpec& spec,
                              const std::vector<VertexId>& order,
                              const HeuristicOptions& options) {
  SweepResult sweep = sweep_checkpoint_budget(evaluator, order, spec.checkpointing, options.sweep);

  HeuristicResult result;
  result.spec = spec;
  result.best_budget = sweep.best_budget;
  result.curve = std::move(sweep.curve);
  // Re-evaluate the winner with the sweep's own parallel/math settings so
  // the recorded Evaluation comes from the same backend as the sweep that
  // selected it (for the exact backend this is bit-identical to a plain
  // evaluate()).
  EvaluatorWorkspace local_ws;
  EvaluatorWorkspace& ws = options.sweep.workspace ? *options.sweep.workspace : local_ws;
  result.evaluation = evaluator.evaluate(sweep.best_schedule, ws, options.sweep.eval);
  result.schedule = std::move(sweep.best_schedule);
  return result;
}

std::vector<HeuristicResult> run_heuristics(const ScheduleEvaluator& evaluator,
                                            const std::vector<HeuristicSpec>& specs,
                                            const HeuristicOptions& options) {
  std::vector<HeuristicResult> results;
  results.reserve(specs.size());
  for (const HeuristicSpec& spec : specs) results.push_back(run_heuristic(evaluator, spec, options));
  return results;
}

std::size_t best_result_index(const std::vector<HeuristicResult>& results) {
  ensure(!results.empty(), "best_result_index needs at least one result");
  std::size_t best = 0;
  for (std::size_t i = 1; i < results.size(); ++i) {
    if (results[i].evaluation.expected_makespan < results[best].evaluation.expected_makespan)
      best = i;
  }
  return best;
}

}  // namespace fpsched
