// Exhaustive checkpoint-budget sweep (Section 5).
//
// The budgeted strategies (CkptW/C/D/Per) fix the number of checkpoints N
// and the paper searches N = 1..n-1 exhaustively, evaluating each
// candidate schedule with the Theorem-3 evaluator and keeping the best.
// The sweep is embarrassingly parallel over N; each worker reuses a
// private evaluator workspace. A stride > 1 subsamples the N grid — an
// ablation bench quantifies the quality loss.
//
// Three execution modes, all producing bit-identical results (every
// candidate writes to its own slot and each evaluation is a pure function
// of its schedule):
//  * serial (threads == 1): one workspace, optionally caller-owned;
//  * standalone parallel (threads != 1, no pool): transient threads via
//    parallel_for_workers, as before;
//  * shared-pool (options.pool set — the engine's nested mode): each
//    budget becomes a task on the shared ThreadPool, joined with a
//    cooperative TaskGroup so the calling scenario worker evaluates
//    candidates itself while *idle* pool workers steal the rest.
#pragma once

#include <cstdint>
#include <vector>

#include "core/evaluator.hpp"
#include "core/schedule.hpp"
#include "heuristics/checkpoint_strategy.hpp"

namespace fpsched {

class ThreadPool;

struct SweepOptions {
  /// Evaluate budgets 1, 1+stride, 1+2*stride, ...; n-1 is always included.
  std::size_t stride = 1;
  /// 0 = default_thread_count(); 1 = serial. Ignored when `pool` is set
  /// (the pool's width governs).
  std::size_t threads = 0;
  /// Also evaluate N = 0 (no checkpoints). The paper sweeps 1..n-1 only;
  /// keeping 0 off by default stays faithful.
  bool include_zero = false;
  /// Optional caller-owned scratch reused when the sweep runs serially
  /// (threads == 1) and for the non-budgeted single-candidate path — lets
  /// an outer scenario shard keep one workspace per worker. Budget tasks
  /// of parallel sweeps use pooled workspaces instead.
  EvaluatorWorkspace* workspace = nullptr;
  /// Shared-pool token (the engine's nested mode): when set, budget
  /// candidates are submitted to this pool as a TaskGroup instead of the
  /// sweep spinning its own threads, so idle scenario workers steal them.
  ThreadPool* pool = nullptr;
  /// Intra-evaluation k-block parallelism for every candidate evaluation
  /// (forwarded to ScheduleEvaluator::expected_makespan). With `pool` set
  /// the k-block tasks land on the same shared pool.
  EvalParallel eval = {};

  /// Throws InvalidArgument unless the options are well formed
  /// (stride >= 1; 0 would loop forever on the budget grid).
  void validate() const;
};

struct SweepPoint {
  std::size_t budget = 0;
  /// Checkpoints actually taken (periodic may take fewer than the budget).
  std::size_t checkpoints = 0;
  double expected_makespan = 0.0;
};

struct SweepResult {
  std::size_t best_budget = 0;
  double best_expected_makespan = 0.0;
  Schedule best_schedule;
  /// One point per evaluated budget, ascending.
  std::vector<SweepPoint> curve;
};

/// Sweeps the checkpoint budget for a budgeted strategy on a fixed
/// linearization. For non-budgeted strategies returns the single candidate.
SweepResult sweep_checkpoint_budget(const ScheduleEvaluator& evaluator,
                                    const std::vector<VertexId>& order, CkptStrategy strategy,
                                    const SweepOptions& options = {});

}  // namespace fpsched
