// The 14 named heuristics of Section 5 and a runner for them.
//
// A heuristic = linearization strategy x checkpointing strategy:
//   {DF, BF, RF} x {CkptW, CkptC, CkptD, CkptPer}  (12, budget swept)
//   + DF-CkptNvr + DF-CkptAlws                     (2 baselines)
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/evaluator.hpp"
#include "dag/linearize.hpp"
#include "heuristics/sweep.hpp"

namespace fpsched {

struct HeuristicSpec {
  LinearizeMethod linearization = LinearizeMethod::depth_first;
  CkptStrategy checkpointing = CkptStrategy::by_weight;

  /// Paper-style name, e.g. "DF-CkptW".
  std::string name() const;
};

/// The paper's 14 heuristics, baselines first.
std::vector<HeuristicSpec> all_heuristics();

/// The 12 budgeted combinations only (no CkptNvr / CkptAlws).
std::vector<HeuristicSpec> budgeted_heuristics();

struct HeuristicOptions {
  LinearizeOptions linearize;
  SweepOptions sweep;
};

struct HeuristicResult {
  HeuristicSpec spec;
  Schedule schedule;
  Evaluation evaluation;
  std::size_t best_budget = 0;
  /// The full budget-vs-expected curve (budgeted strategies only).
  std::vector<SweepPoint> curve;
};

/// Runs one heuristic: linearize, place checkpoints (sweeping the budget
/// when applicable), evaluate the winner.
HeuristicResult run_heuristic(const ScheduleEvaluator& evaluator, const HeuristicSpec& spec,
                              const HeuristicOptions& options = {});

/// As above, but with the linearization precomputed by the caller. `order`
/// must equal linearize(graph, weights, spec.linearization,
/// options.linearize); the engine's instance cache uses this to amortize
/// linearization work across the scenarios sharing an instance. Results
/// are bit-identical to the linearizing overload.
HeuristicResult run_heuristic(const ScheduleEvaluator& evaluator, const HeuristicSpec& spec,
                              const std::vector<VertexId>& order,
                              const HeuristicOptions& options = {});

/// Runs every heuristic in `specs` and returns results in the same order.
std::vector<HeuristicResult> run_heuristics(const ScheduleEvaluator& evaluator,
                                            const std::vector<HeuristicSpec>& specs,
                                            const HeuristicOptions& options = {});

/// Index of the result with the smallest expected makespan.
std::size_t best_result_index(const std::vector<HeuristicResult>& results);

}  // namespace fpsched
