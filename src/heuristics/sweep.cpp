#include "heuristics/sweep.hpp"

#include <algorithm>

#include "support/env.hpp"
#include "support/error.hpp"
#include "support/threading.hpp"

namespace fpsched {

void SweepOptions::validate() const {
  ensure(stride >= 1, "sweep stride must be >= 1");
}

SweepResult sweep_checkpoint_budget(const ScheduleEvaluator& evaluator,
                                    const std::vector<VertexId>& order, CkptStrategy strategy,
                                    const SweepOptions& options) {
  options.validate();
  const TaskGraph& graph = evaluator.graph();
  const std::size_t n = graph.task_count();
  ensure(order.size() == n, "order size must match the task count");

  // Validate the linearization once; the per-candidate evaluations skip it.
  validate_schedule(graph, make_schedule(order));

  EvaluatorWorkspace local_ws;
  EvaluatorWorkspace& serial_ws = options.workspace ? *options.workspace : local_ws;

  SweepResult result;
  if (!is_budgeted(strategy)) {
    Schedule schedule = make_heuristic_schedule(graph, order, strategy, 0);
    result.best_expected_makespan =
        evaluator.expected_makespan(schedule, serial_ws, /*validate=*/false, options.eval);
    result.best_budget = schedule.checkpoint_count();
    result.curve.push_back(
        {result.best_budget, schedule.checkpoint_count(), result.best_expected_makespan});
    result.best_schedule = std::move(schedule);
    return result;
  }

  // Budget grid: 1, 1+stride, ..., plus n-1 (paper: exhaustive 1..n-1).
  std::vector<std::size_t> budgets;
  if (options.include_zero) budgets.push_back(0);
  if (n >= 2) {
    for (std::size_t b = 1; b < n; b += options.stride) budgets.push_back(b);
    if (budgets.empty() || budgets.back() != n - 1) budgets.push_back(n - 1);
  } else {
    budgets.push_back(0);
  }

  std::vector<SweepPoint> points(budgets.size());
  std::vector<Schedule> schedules(budgets.size());

  const std::size_t worker_count =
      options.threads == 0 ? default_thread_count() : options.threads;
  const auto evaluate_budget = [&](std::size_t idx, EvaluatorWorkspace& ws) {
    Schedule schedule = make_heuristic_schedule(graph, order, strategy, budgets[idx]);
    const double expected =
        evaluator.expected_makespan(schedule, ws, /*validate=*/false, options.eval);
    points[idx] = {budgets[idx], schedule.checkpoint_count(), expected};
    schedules[idx] = std::move(schedule);
  };
  if (options.pool != nullptr) {
    // Shared-pool token: one task per budget, executed by whichever pool
    // worker (or this thread, via the cooperative wait) is idle. Tasks run
    // on arbitrary threads, so workspaces come from a free list instead of
    // a per-worker array; every candidate still writes only its own slot,
    // so any interleaving yields the same bits.
    WorkspacePool workspaces;
    TaskGroup group(*options.pool);
    for (std::size_t idx = 0; idx < budgets.size(); ++idx) {
      group.run([&, idx] {
        WorkspacePool::Lease lease = workspaces.acquire();
        evaluate_budget(idx, lease.get());
      });
    }
    group.wait();
  } else if (worker_count <= 1) {
    for (std::size_t idx = 0; idx < budgets.size(); ++idx) evaluate_budget(idx, serial_ws);
  } else {
    std::vector<EvaluatorWorkspace> workspaces(worker_count);
    parallel_for_workers(
        0, budgets.size(),
        [&](std::size_t idx, std::size_t worker) { evaluate_budget(idx, workspaces[worker]); },
        worker_count);
  }

  std::size_t best = 0;
  for (std::size_t i = 1; i < points.size(); ++i) {
    if (points[i].expected_makespan < points[best].expected_makespan) best = i;
  }
  result.best_budget = points[best].budget;
  result.best_expected_makespan = points[best].expected_makespan;
  result.best_schedule = std::move(schedules[best]);
  result.curve = std::move(points);
  return result;
}

}  // namespace fpsched
