// Extension beyond the paper: evaluator-guided greedy checkpoint insertion.
//
// The paper's budgeted strategies pick *which* tasks to checkpoint from a
// static ranking (weight / cost / outweight) and only search the budget N.
// With the fast Theorem-3 evaluator, a stronger search becomes practical:
// start from the empty checkpoint set and repeatedly insert (or remove)
// the single checkpoint with the largest expected-makespan improvement,
// stopping when no move helps. This is our own addition (not in the
// paper); the ablation bench compares it against the 14 paper heuristics.
#pragma once

#include <cstddef>
#include <vector>

#include "core/evaluator.hpp"
#include "core/schedule.hpp"

namespace fpsched {

struct GreedyOptions {
  /// Upper bound on insert/remove rounds (0 = no bound beyond n rounds).
  std::size_t max_rounds = 0;
  /// Stop when the best move improves by less than this relative amount.
  double min_relative_gain = 1e-12;
  /// Also consider removing previously inserted checkpoints each round.
  bool allow_removal = true;
  /// Threads for the per-round candidate scan (0 = default).
  std::size_t threads = 0;
};

struct GreedyResult {
  Schedule schedule;
  double expected_makespan = 0.0;
  std::size_t rounds = 0;
  /// expected makespan after each accepted move (first entry = no
  /// checkpoints).
  std::vector<double> trajectory;
};

/// Greedy local search over checkpoint sets for a fixed linearization.
/// Each round evaluates every candidate move with the analytic evaluator
/// (parallelized) and applies the best. Complexity: O(rounds * n)
/// evaluations.
GreedyResult greedy_checkpoint_search(const ScheduleEvaluator& evaluator,
                                      const std::vector<VertexId>& order,
                                      const GreedyOptions& options = {});

}  // namespace fpsched
