#include "heuristics/checkpoint_strategy.hpp"

#include <algorithm>
#include <functional>
#include <numeric>

#include "dag/traversal.hpp"
#include "support/error.hpp"

namespace fpsched {

std::string to_string(CkptStrategy strategy) {
  switch (strategy) {
    case CkptStrategy::never: return "CkptNvr";
    case CkptStrategy::always: return "CkptAlws";
    case CkptStrategy::by_weight: return "CkptW";
    case CkptStrategy::by_cost: return "CkptC";
    case CkptStrategy::by_outweight: return "CkptD";
    case CkptStrategy::periodic: return "CkptPer";
  }
  return "?";
}

std::span<const CkptStrategy> all_ckpt_strategies() {
  static constexpr CkptStrategy kAll[] = {
      CkptStrategy::never,     CkptStrategy::always,      CkptStrategy::by_weight,
      CkptStrategy::by_cost,   CkptStrategy::by_outweight, CkptStrategy::periodic,
  };
  return kAll;
}

bool is_budgeted(CkptStrategy strategy) {
  switch (strategy) {
    case CkptStrategy::never:
    case CkptStrategy::always: return false;
    default: return true;
  }
}

namespace {

/// Top-`budget` vertices under `better(a, b)` (strict weak order); stable
/// on ids for determinism.
std::vector<std::uint8_t> top_n_flags(std::size_t n, std::size_t budget,
                                      const std::function<bool(VertexId, VertexId)>& better) {
  std::vector<VertexId> ranked(n);
  std::iota(ranked.begin(), ranked.end(), 0);
  std::stable_sort(ranked.begin(), ranked.end(), better);
  std::vector<std::uint8_t> flags(n, 0);
  for (std::size_t i = 0; i < std::min(budget, n); ++i) flags[ranked[i]] = 1;
  return flags;
}

}  // namespace

std::vector<std::uint8_t> place_checkpoints(const TaskGraph& graph,
                                            std::span<const VertexId> order,
                                            CkptStrategy strategy, std::size_t budget) {
  const std::size_t n = graph.task_count();
  switch (strategy) {
    case CkptStrategy::never: return std::vector<std::uint8_t>(n, 0);
    case CkptStrategy::always: return std::vector<std::uint8_t>(n, 1);
    case CkptStrategy::by_weight:
      return top_n_flags(n, budget, [&](VertexId a, VertexId b) {
        return graph.weight(a) > graph.weight(b);  // longest computations first
      });
    case CkptStrategy::by_cost:
      return top_n_flags(n, budget, [&](VertexId a, VertexId b) {
        return graph.ckpt_cost(a) < graph.ckpt_cost(b);  // cheapest checkpoints first
      });
    case CkptStrategy::by_outweight: {
      const std::vector<double> out = direct_outweights(graph.dag(), graph.weights_view());
      return top_n_flags(n, budget, [&](VertexId a, VertexId b) {
        return out[a] > out[b];  // heaviest successor sets first
      });
    }
    case CkptStrategy::periodic: {
      ensure(order.size() == n, "periodic placement needs the linearization");
      std::vector<std::uint8_t> flags(n, 0);
      if (budget < 2 || n == 0) return flags;  // x = 1..N-1 is empty for N < 2
      const double total = graph.total_weight();
      if (total <= 0.0) return flags;
      const double period = total / static_cast<double>(budget);
      double elapsed = 0.0;
      std::size_t next_mark = 1;
      for (const VertexId v : order) {
        elapsed += graph.weight(v);
        // This task is the first to complete after mark x * W / N.
        while (next_mark < budget && elapsed >= period * static_cast<double>(next_mark)) {
          flags[v] = 1;
          ++next_mark;
        }
      }
      return flags;
    }
  }
  throw InvalidArgument("unknown checkpoint strategy");
}

Schedule make_heuristic_schedule(const TaskGraph& graph, std::vector<VertexId> order,
                                 CkptStrategy strategy, std::size_t budget) {
  std::vector<std::uint8_t> flags = place_checkpoints(graph, order, strategy, budget);
  return Schedule(std::move(order), std::move(flags));
}

}  // namespace fpsched
