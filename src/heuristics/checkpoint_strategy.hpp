// Checkpoint placement strategies from Section 5 of the paper.
//
// CkptNvr / CkptAlws are the baselines. CkptW / CkptC / CkptD checkpoint
// the top-N tasks by, respectively, decreasing weight, increasing
// checkpoint cost, and decreasing outweight (sum of successor weights).
// CkptPer mimics periodic checkpointing: on the fault-free timeline of the
// linearization, it checkpoints the task completing earliest after
// x * W / N for x = 1..N-1, W = total weight.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/schedule.hpp"
#include "workflows/task_graph.hpp"

namespace fpsched {

enum class CkptStrategy : std::uint8_t {
  never,        // CkptNvr
  always,       // CkptAlws
  by_weight,    // CkptW
  by_cost,      // CkptC
  by_outweight, // CkptD
  periodic,     // CkptPer
};

/// Paper names: "CkptNvr", "CkptAlws", "CkptW", "CkptC", "CkptD", "CkptPer".
std::string to_string(CkptStrategy strategy);

std::span<const CkptStrategy> all_ckpt_strategies();

/// True for the strategies parameterized by a checkpoint budget N
/// (by_weight / by_cost / by_outweight / periodic).
bool is_budgeted(CkptStrategy strategy);

/// Computes the checkpoint flags (indexed by vertex id) for the strategy.
/// `order` is the linearization (needed by `periodic`; ignored by the
/// sorting strategies, which rank all tasks globally as in the paper).
/// `budget` is N for budgeted strategies and ignored otherwise. For
/// `periodic`, the number of checkpoints taken is at most budget - 1 (the
/// paper places marks at x*W/N, x = 1..N-1).
std::vector<std::uint8_t> place_checkpoints(const TaskGraph& graph,
                                            std::span<const VertexId> order,
                                            CkptStrategy strategy, std::size_t budget);

/// Convenience: full schedule from order + strategy + budget.
Schedule make_heuristic_schedule(const TaskGraph& graph, std::vector<VertexId> order,
                                 CkptStrategy strategy, std::size_t budget);

}  // namespace fpsched
