#include "heuristics/greedy.hpp"

#include <algorithm>
#include <limits>

#include "support/env.hpp"
#include "support/error.hpp"
#include "support/threading.hpp"

namespace fpsched {

GreedyResult greedy_checkpoint_search(const ScheduleEvaluator& evaluator,
                                      const std::vector<VertexId>& order,
                                      const GreedyOptions& options) {
  const TaskGraph& graph = evaluator.graph();
  const std::size_t n = graph.task_count();
  ensure(order.size() == n, "order size must match the task count");

  Schedule current = make_schedule(order);
  validate_schedule(graph, current);

  const std::size_t worker_count =
      options.threads == 0 ? default_thread_count() : options.threads;
  std::vector<EvaluatorWorkspace> workspaces(std::max<std::size_t>(worker_count, 1));

  GreedyResult result;
  {
    EvaluatorWorkspace ws;
    result.expected_makespan = evaluator.expected_makespan(current, ws, /*validate=*/false);
  }
  result.trajectory.push_back(result.expected_makespan);

  const std::size_t round_limit = options.max_rounds == 0 ? n + 1 : options.max_rounds;
  std::vector<double> candidate_value(n);
  for (std::size_t round = 0; round < round_limit; ++round) {
    // Evaluate every single-flip neighbour (insert where absent, remove
    // where present if allowed).
    parallel_for_workers(
        0, n,
        [&](std::size_t v, std::size_t worker) {
          const bool flagged = current.checkpointed[v] != 0;
          if (flagged && !options.allow_removal) {
            candidate_value[v] = std::numeric_limits<double>::infinity();
            return;
          }
          Schedule candidate = current;
          candidate.checkpointed[v] = flagged ? 0 : 1;
          candidate_value[v] =
              evaluator.expected_makespan(candidate, workspaces[worker], /*validate=*/false);
        },
        worker_count);

    std::size_t best = n;
    double best_value = result.expected_makespan;
    for (std::size_t v = 0; v < n; ++v) {
      if (candidate_value[v] < best_value) {
        best_value = candidate_value[v];
        best = v;
      }
    }
    if (best == n) break;  // no improving move
    const double gain = (result.expected_makespan - best_value) /
                        std::max(result.expected_makespan, 1e-300);
    if (gain < options.min_relative_gain) break;
    current.checkpointed[best] ^= 1;
    result.expected_makespan = best_value;
    result.trajectory.push_back(best_value);
    ++result.rounds;
  }

  result.schedule = std::move(current);
  return result;
}

}  // namespace fpsched
