#include "workflows/synthetic.hpp"

#include <algorithm>
#include <string>

#include "dag/graph.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace fpsched {

namespace {
Task plain_task(const std::string& prefix, std::size_t index, double weight) {
  Task t;
  t.name = prefix + std::to_string(index);
  t.type = prefix;
  t.weight = weight;
  return t;
}
}  // namespace

TaskGraph make_chain(std::span<const double> weights) {
  ensure(!weights.empty(), "chain needs at least one task");
  DagBuilder builder;
  std::vector<Task> tasks;
  builder.add_vertices(weights.size());
  for (std::size_t i = 0; i < weights.size(); ++i) {
    tasks.push_back(plain_task("chain", i, weights[i]));
    if (i > 0) builder.add_edge(static_cast<VertexId>(i - 1), static_cast<VertexId>(i));
  }
  return TaskGraph(std::move(builder).build(), std::move(tasks));
}

TaskGraph make_uniform_chain(std::size_t n, double weight) {
  return make_chain(std::vector<double>(n, weight));
}

TaskGraph make_fork(double source_weight, std::span<const double> sink_weights) {
  ensure(!sink_weights.empty(), "fork needs at least one sink");
  DagBuilder builder;
  builder.add_vertices(1 + sink_weights.size());
  std::vector<Task> tasks;
  tasks.push_back(plain_task("src", 0, source_weight));
  for (std::size_t i = 0; i < sink_weights.size(); ++i) {
    tasks.push_back(plain_task("sink", i, sink_weights[i]));
    builder.add_edge(0, static_cast<VertexId>(1 + i));
  }
  return TaskGraph(std::move(builder).build(), std::move(tasks));
}

TaskGraph make_join(std::span<const double> source_weights, double sink_weight) {
  ensure(!source_weights.empty(), "join needs at least one source");
  DagBuilder builder;
  builder.add_vertices(source_weights.size() + 1);
  std::vector<Task> tasks;
  const VertexId sink = static_cast<VertexId>(source_weights.size());
  for (std::size_t i = 0; i < source_weights.size(); ++i) {
    tasks.push_back(plain_task("src", i, source_weights[i]));
    builder.add_edge(static_cast<VertexId>(i), sink);
  }
  tasks.push_back(plain_task("sink", 0, sink_weight));
  return TaskGraph(std::move(builder).build(), std::move(tasks));
}

TaskGraph make_fork_join(std::size_t levels, std::size_t width, double weight) {
  ensure(levels >= 1 && width >= 1, "fork_join needs levels >= 1 and width >= 1");
  DagBuilder builder;
  std::vector<Task> tasks;
  const VertexId source = builder.add_vertex();
  tasks.push_back(plain_task("src", 0, weight));
  std::vector<VertexId> previous{source};
  for (std::size_t level = 0; level < levels; ++level) {
    std::vector<VertexId> current;
    // Built by append to sidestep a GCC 12 -Wrestrict false positive on
    // `const char* + std::string&&`.
    std::string prefix = "l";
    prefix += std::to_string(level);
    prefix += '_';
    for (std::size_t i = 0; i < width; ++i) {
      const VertexId v = builder.add_vertex();
      tasks.push_back(plain_task(prefix, i, weight));
      for (const VertexId p : previous) builder.add_edge(p, v);
      current.push_back(v);
    }
    previous = std::move(current);
  }
  const VertexId sink = builder.add_vertex();
  tasks.push_back(plain_task("snk", 0, weight));
  for (const VertexId p : previous) builder.add_edge(p, sink);
  return TaskGraph(std::move(builder).build(), std::move(tasks));
}

TaskGraph make_layered_random(const LayeredRandomConfig& config) {
  ensure(config.task_count >= config.layer_count, "need at least one task per layer");
  ensure(config.layer_count >= 1, "need at least one layer");
  Rng rng(config.seed);

  // Random layer sizes: every layer gets one task, the rest are spread
  // uniformly.
  std::vector<std::size_t> layer_of(config.task_count);
  for (std::size_t i = 0; i < config.layer_count; ++i) layer_of[i] = i;
  for (std::size_t i = config.layer_count; i < config.task_count; ++i)
    layer_of[i] = static_cast<std::size_t>(rng.uniform_index(config.layer_count));
  std::vector<std::vector<VertexId>> layers(config.layer_count);

  DagBuilder builder;
  std::vector<Task> tasks;
  for (std::size_t i = 0; i < config.task_count; ++i) {
    const VertexId v = builder.add_vertex();
    const double w = config.weight_cv == 0.0
                         ? config.mean_weight
                         : rng.gamma_mean_cv(config.mean_weight, config.weight_cv);
    tasks.push_back(plain_task("t", i, w));
    layers[layer_of[i]].push_back(v);
  }

  for (std::size_t layer = 1; layer < config.layer_count; ++layer) {
    for (const VertexId v : layers[layer]) {
      bool has_pred = false;
      for (const VertexId p : layers[layer - 1]) {
        if (rng.bernoulli(config.edge_probability)) {
          builder.add_edge(p, v);
          has_pred = true;
        }
      }
      if (!has_pred && !layers[layer - 1].empty()) {
        const auto& prev = layers[layer - 1];
        builder.add_edge(prev[rng.uniform_index(prev.size())], v);
      }
    }
  }
  return TaskGraph(std::move(builder).build(), std::move(tasks));
}

TaskGraph make_paper_figure1(double weight) {
  // Figure 1 of the paper: T0 -> T3 -> T5 -> T6, T1 -> T2 -> {T4, T7},
  // T4 -> T6; checkpoint flags (T3, T4) are chosen by callers.
  DagBuilder builder;
  builder.add_vertices(8);
  std::vector<Task> tasks;
  for (std::size_t i = 0; i < 8; ++i) tasks.push_back(plain_task("T", i, weight));
  builder.add_edge(0, 3);
  builder.add_edge(3, 5);
  builder.add_edge(5, 6);
  builder.add_edge(1, 2);
  builder.add_edge(2, 4);
  builder.add_edge(2, 7);
  builder.add_edge(4, 6);
  return TaskGraph(std::move(builder).build(), std::move(tasks));
}

}  // namespace fpsched
