// Synthetic LIGO Inspiral Analysis workflow (gravitational waveforms).
//
// Shape (Bharathi et al. 2008): independent analysis groups. In a group,
// template banks (TmpltBank) feed matched-filter Inspiral tasks one-to-one;
// a coincidence stage (Thinca) joins the group, triggers are re-banked
// (TrigBank), refiltered (Inspiral, second stage) and joined again
// (Thinca2). Average task weight in the paper: ~220 s (the Inspiral stages
// dominate).
#include <algorithm>

#include "workflows/generator.hpp"
#include "workflows/workflow_detail.hpp"

namespace fpsched {

namespace {
constexpr std::size_t kBankFanout = 5;   // TmpltBank/Inspiral pairs per group
constexpr std::size_t kTrigFanout = 5;   // TrigBank/Inspiral2 pairs per group
constexpr std::size_t kGroupSize = 2 * kBankFanout + 2 * kTrigFanout + 2;
}  // namespace

TaskGraph generate_ligo(const GeneratorConfig& config) {
  detail::require_minimum(config, WorkflowKind::ligo);
  detail::WorkflowAssembler a(config, "Ligo");

  const std::size_t n = config.task_count;
  std::size_t groups = std::max<std::size_t>(1, n / kGroupSize);

  // Pairs of (TmpltBank, Inspiral) / (TrigBank, Inspiral2) per group.
  std::vector<std::size_t> bank_pairs(groups, kBankFanout);
  std::vector<std::size_t> trig_pairs(groups, kTrigFanout);
  if (n < kGroupSize) {
    // One shrunken group: 2b + 2t + 2 as close to n as parity allows.
    bank_pairs.assign(1, std::max<std::size_t>(1, (n - 2) / 4));
    trig_pairs.assign(1, std::max<std::size_t>(1, (n - 2) / 2 - bank_pairs[0]));
  }
  auto total = [&] {
    std::size_t t = 0;
    for (std::size_t g = 0; g < groups; ++g) t += 2 * bank_pairs[g] + 2 * trig_pairs[g] + 2;
    return t;
  };
  // Absorb the remainder two tasks at a time by widening groups round-robin.
  for (std::size_t g = 0; total() + 1 < n; g = (g + 1) % groups) ++trig_pairs[g];
  const bool lone_bank = total() < n;  // odd remainder -> one extra template bank

  VertexId first_thinca = 0;
  for (std::size_t g = 0; g < groups; ++g) {
    std::vector<VertexId> inspirals;
    for (std::size_t i = 0; i < bank_pairs[g]; ++i) {
      const VertexId bank = a.add("TmpltBank", 70.0);
      const VertexId inspiral = a.add("Inspiral", 500.0);
      a.edge(bank, inspiral);
      inspirals.push_back(inspiral);
    }
    const VertexId thinca = a.add("Thinca", 12.0);
    if (g == 0) first_thinca = thinca;
    for (const VertexId i : inspirals) a.edge(i, thinca);

    std::vector<VertexId> inspirals2;
    for (std::size_t i = 0; i < trig_pairs[g]; ++i) {
      const VertexId trig = a.add("TrigBank", 15.0);
      const VertexId inspiral2 = a.add("Inspiral2", 400.0);
      a.edge(thinca, trig);
      a.edge(trig, inspiral2);
      inspirals2.push_back(inspiral2);
    }
    const VertexId thinca2 = a.add("Thinca2", 12.0);
    for (const VertexId i : inspirals2) a.edge(i, thinca2);
  }
  if (lone_bank) {
    const VertexId bank = a.add("TmpltBank", 70.0);
    a.edge(bank, first_thinca);
  }

  return a.finish();
}

}  // namespace fpsched
