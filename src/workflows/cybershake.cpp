// Synthetic SCEC CyberShake workflow (seismic hazard curves).
//
// Shape (Bharathi et al. 2008): per site, a couple of strain Green tensor
// extractions (ExtractSGT) feed a wide fan of SeismogramSynthesis tasks;
// each synthesis is post-processed by a PeakValCalc; two aggregation tasks
// (ZipSeis over the seismograms, ZipPSA over the peak values) close the
// site. Average task weight in the paper: ~25 s.
#include <algorithm>

#include "workflows/generator.hpp"
#include "workflows/workflow_detail.hpp"

namespace fpsched {

TaskGraph generate_cybershake(const GeneratorConfig& config) {
  detail::require_minimum(config, WorkflowKind::cybershake);
  detail::WorkflowAssembler a(config, "CyberShake");

  const std::size_t n = config.task_count;
  // Per site: e extracts (2, sometimes 3 to fix parity) + s synthesis +
  // s peak-value + 2 zips.
  std::size_t sites = std::max<std::size_t>(1, (n + 50) / 100);
  while (sites > 1 && n < sites * 8) --sites;

  std::size_t remaining = n - 4 * sites;  // synthesis+peak pairs plus parity
  bool extra_extract = false;
  if (remaining % 2 == 1) {
    extra_extract = true;  // one site gets a third ExtractSGT
    remaining -= 1;
  }
  const std::size_t pairs_total = remaining / 2;
  std::vector<std::size_t> pairs(sites, pairs_total / sites);
  for (std::size_t s = 0; s < pairs_total % sites; ++s) ++pairs[s];

  for (std::size_t s = 0; s < sites; ++s) {
    std::vector<VertexId> extracts;
    const std::size_t extract_count = (s == 0 && extra_extract) ? 3 : 2;
    for (std::size_t e = 0; e < extract_count; ++e) extracts.push_back(a.add("ExtractSGT", 110.0));

    std::vector<VertexId> synths;
    std::vector<VertexId> peaks;
    for (std::size_t i = 0; i < pairs[s]; ++i) {
      const VertexId synth = a.add("SeismogramSynthesis", 42.0);
      a.edge(extracts[i % extracts.size()], synth);
      synths.push_back(synth);
      const VertexId peak = a.add("PeakValCalc", 6.0);
      a.edge(synth, peak);
      peaks.push_back(peak);
    }

    const VertexId zip_seis = a.add("ZipSeis", 35.0);
    for (const VertexId v : synths) a.edge(v, zip_seis);
    const VertexId zip_psa = a.add("ZipPSA", 35.0);
    for (const VertexId v : peaks) a.edge(v, zip_psa);
    if (synths.empty()) {
      // Degenerate tiny site: keep the zips attached to the extracts.
      for (const VertexId e : extracts) {
        a.edge(e, zip_seis);
        a.edge(e, zip_psa);
      }
    }
  }

  return a.finish();
}

}  // namespace fpsched
