#include "workflows/task_graph.hpp"

#include <cmath>

#include "support/error.hpp"
#include "support/table.hpp"

namespace fpsched {

std::string CostModel::describe() const {
  switch (kind) {
    case Kind::proportional: return "c_i = r_i = " + format_double(parameter, 3) + " * w_i";
    case Kind::constant: return "c_i = r_i = " + format_double(parameter, 3) + " s";
  }
  return "?";
}

namespace {
void validate_task(const Task& task, std::size_t index) {
  const bool ok = std::isfinite(task.weight) && task.weight >= 0.0 &&
                  std::isfinite(task.ckpt_cost) && task.ckpt_cost >= 0.0 &&
                  std::isfinite(task.recovery_cost) && task.recovery_cost >= 0.0;
  ensure(ok, "task " + std::to_string(index) + " has negative or non-finite costs");
}
}  // namespace

TaskGraph::TaskGraph(Dag dag, std::vector<Task> tasks)
    : dag_(std::move(dag)), tasks_(std::move(tasks)) {
  ensure(dag_.vertex_count() == tasks_.size(), "task list size must match DAG vertex count");
  for (std::size_t i = 0; i < tasks_.size(); ++i) validate_task(tasks_[i], i);
}

std::vector<double> TaskGraph::weights() const {
  std::vector<double> out(tasks_.size());
  for (std::size_t i = 0; i < tasks_.size(); ++i) out[i] = tasks_[i].weight;
  return out;
}

double TaskGraph::total_weight() const {
  double total = 0.0;
  for (const auto& task : tasks_) total += task.weight;
  return total;
}

double TaskGraph::average_weight() const {
  return tasks_.empty() ? 0.0 : total_weight() / static_cast<double>(tasks_.size());
}

void TaskGraph::apply_cost_model(const CostModel& model) {
  for (auto& task : tasks_) {
    const double cost = model.kind == CostModel::Kind::proportional
                            ? model.parameter * task.weight
                            : model.parameter;
    ensure(std::isfinite(cost) && cost >= 0.0, "cost model produced an invalid cost");
    task.ckpt_cost = cost;
    task.recovery_cost = cost;
  }
}

void TaskGraph::set_costs(VertexId v, double ckpt_cost, double recovery_cost) {
  ensure(v < tasks_.size(), "set_costs: vertex out of range");
  tasks_[v].ckpt_cost = ckpt_cost;
  tasks_[v].recovery_cost = recovery_cost;
  validate_task(tasks_[v], v);
}

void TaskGraph::set_weight(VertexId v, double weight) {
  ensure(v < tasks_.size(), "set_weight: vertex out of range");
  tasks_[v].weight = weight;
  validate_task(tasks_[v], v);
}

}  // namespace fpsched
