#include "workflows/task_graph.hpp"

#include <cmath>

#include "support/error.hpp"
#include "support/table.hpp"

namespace fpsched {

std::string CostModel::describe() const {
  switch (kind) {
    case Kind::proportional: return "c_i = r_i = " + format_double(parameter, 3) + " * w_i";
    case Kind::constant: return "c_i = r_i = " + format_double(parameter, 3) + " s";
  }
  return "?";
}

TypeId TypeTable::intern(std::string_view type) {
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == type) return static_cast<TypeId>(i);
  }
  names_.emplace_back(type);
  return static_cast<TypeId>(names_.size() - 1);
}

std::size_t TypeTable::memory_bytes() const {
  std::size_t total = names_.capacity() * sizeof(std::string);
  for (const std::string& name : names_) total += name.capacity();
  return total;
}

namespace {
void validate_costs(double weight, double ckpt, double recovery, std::size_t index) {
  const bool ok = std::isfinite(weight) && weight >= 0.0 && std::isfinite(ckpt) && ckpt >= 0.0 &&
                  std::isfinite(recovery) && recovery >= 0.0;
  ensure(ok, "task " + std::to_string(index) + " has negative or non-finite costs");
}
}  // namespace

TaskGraph::TaskGraph(Dag dag, std::vector<Task> tasks) : dag_(std::move(dag)) {
  ensure(dag_.vertex_count() == tasks.size(), "task list size must match DAG vertex count");
  const std::size_t n = tasks.size();
  weights_.reserve(n);
  ckpt_costs_.reserve(n);
  recovery_costs_.reserve(n);
  type_ids_.reserve(n);
  names_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Task& task = tasks[i];
    validate_costs(task.weight, task.ckpt_cost, task.recovery_cost, i);
    weights_.push_back(task.weight);
    ckpt_costs_.push_back(task.ckpt_cost);
    recovery_costs_.push_back(task.recovery_cost);
    type_ids_.push_back(types_.intern(task.type));
    names_.push_back(std::move(task.name));
  }
}

std::string TaskGraph::name(VertexId v) const {
  if (!names_.empty()) return names_[v];
  return types_.name(type_ids_[v]) + "_" + std::to_string(v);
}

Task TaskGraph::task(VertexId v) const {
  return {name(v), types_.name(type_ids_[v]), weights_[v], ckpt_costs_[v], recovery_costs_[v]};
}

double TaskGraph::total_weight() const {
  double total = 0.0;
  for (const double w : weights_) total += w;
  return total;
}

double TaskGraph::average_weight() const {
  return weights_.empty() ? 0.0 : total_weight() / static_cast<double>(weights_.size());
}

void TaskGraph::apply_cost_model(const CostModel& model) {
  for (std::size_t i = 0; i < weights_.size(); ++i) {
    const double cost = model.kind == CostModel::Kind::proportional ? model.parameter * weights_[i]
                                                                    : model.parameter;
    ensure(std::isfinite(cost) && cost >= 0.0, "cost model produced an invalid cost");
    ckpt_costs_[i] = cost;
    recovery_costs_[i] = cost;
  }
}

void TaskGraph::set_costs(VertexId v, double ckpt_cost, double recovery_cost) {
  ensure(v < weights_.size(), "set_costs: vertex out of range");
  ckpt_costs_[v] = ckpt_cost;
  recovery_costs_[v] = recovery_cost;
  validate_costs(weights_[v], ckpt_costs_[v], recovery_costs_[v], v);
}

void TaskGraph::set_weight(VertexId v, double weight) {
  ensure(v < weights_.size(), "set_weight: vertex out of range");
  weights_[v] = weight;
  validate_costs(weights_[v], ckpt_costs_[v], recovery_costs_[v], v);
}

std::size_t TaskGraph::memory_bytes() const {
  std::size_t total = dag_.memory_bytes() + weights_.capacity() * sizeof(double) +
                      ckpt_costs_.capacity() * sizeof(double) +
                      recovery_costs_.capacity() * sizeof(double) +
                      type_ids_.capacity() * sizeof(TypeId) + types_.memory_bytes() +
                      names_.capacity() * sizeof(std::string);
  for (const std::string& name : names_) total += name.capacity();
  return total;
}

void TaskGraphBuilder::reserve(std::size_t tasks, std::size_t edges) {
  dag_.reserve(tasks, edges);
  weights_.reserve(tasks);
  type_ids_.reserve(tasks);
}

VertexId TaskGraphBuilder::add_task(TypeId type, double weight) {
  ensure(type < types_.size(), "add_task: unknown type id");
  const VertexId id = dag_.add_vertex();
  weights_.push_back(weight);
  type_ids_.push_back(type);
  return id;
}

TaskGraph TaskGraphBuilder::finish() && {
  for (std::size_t i = 0; i < weights_.size(); ++i) validate_costs(weights_[i], 0.0, 0.0, i);
  TaskGraph graph;
  graph.dag_ = std::move(dag_).build();
  graph.weights_ = std::move(weights_);
  graph.ckpt_costs_.assign(graph.weights_.size(), 0.0);
  graph.recovery_costs_.assign(graph.weights_.size(), 0.0);
  graph.type_ids_ = std::move(type_ids_);
  graph.types_ = std::move(types_);
  return graph;
}

}  // namespace fpsched
