// TaskGraph: a DAG whose vertices carry the paper's per-task costs.
//
// Task T_i has a fault-free weight w_i (seconds on the full platform), a
// checkpoint cost c_i (time to save its output), and a recovery cost r_i
// (time to reload a saved output). The experiments of Section 6 derive
// c_i from w_i (proportional or constant) and always set r_i = c_i.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "dag/graph.hpp"

namespace fpsched {

struct Task {
  std::string name;
  /// Task type tag (generator specific; e.g. "mProjectPP"). Used for
  /// reporting and generator tests.
  std::string type;
  double weight = 0.0;         // w_i, fault-free execution time
  double ckpt_cost = 0.0;      // c_i
  double recovery_cost = 0.0;  // r_i
};

/// How checkpoint/recovery costs are derived from weights.
struct CostModel {
  enum class Kind { proportional, constant } kind = Kind::proportional;
  /// `proportional`: c_i = r_i = factor * w_i. `constant`: c_i = r_i = value.
  double parameter = 0.1;

  static CostModel proportional(double factor) { return {Kind::proportional, factor}; }
  static CostModel constant(double value) { return {Kind::constant, value}; }

  /// Two models derive identical costs iff kind and parameter agree (lets
  /// the engine's instance cache skip redundant apply_cost_model calls).
  bool operator==(const CostModel&) const = default;

  std::string describe() const;
};

class TaskGraph {
 public:
  TaskGraph() = default;
  /// Takes ownership of a frozen DAG and its per-vertex tasks; sizes must
  /// match and all costs must be non-negative and finite.
  TaskGraph(Dag dag, std::vector<Task> tasks);

  const Dag& dag() const { return dag_; }
  std::size_t task_count() const { return tasks_.size(); }

  const Task& task(VertexId v) const { return tasks_[v]; }
  double weight(VertexId v) const { return tasks_[v].weight; }
  double ckpt_cost(VertexId v) const { return tasks_[v].ckpt_cost; }
  double recovery_cost(VertexId v) const { return tasks_[v].recovery_cost; }
  const std::string& name(VertexId v) const { return tasks_[v].name; }
  const std::string& type(VertexId v) const { return tasks_[v].type; }

  /// All weights as a dense vector (indexed by vertex id).
  std::vector<double> weights() const;

  /// T_inf of the paper: the failure-free, checkpoint-free execution time,
  /// i.e. the sum of all weights (tasks are serialized on the platform).
  double total_weight() const;

  double average_weight() const;

  /// Re-derives every c_i/r_i from the cost model (r_i = c_i, as in all of
  /// the paper's experiments).
  void apply_cost_model(const CostModel& model);

  /// Sets c_i and r_i for one task (used by theory gadgets where r != c).
  void set_costs(VertexId v, double ckpt_cost, double recovery_cost);
  void set_weight(VertexId v, double weight);

 private:
  Dag dag_;
  std::vector<Task> tasks_;
};

}  // namespace fpsched
