// TaskGraph: a DAG whose vertices carry the paper's per-task costs.
//
// Task T_i has a fault-free weight w_i (seconds on the full platform), a
// checkpoint cost c_i (time to save its output), and a recovery cost r_i
// (time to reload a saved output). The experiments of Section 6 derive
// c_i from w_i (proportional or constant) and always set r_i = c_i.
//
// Storage is structure-of-arrays: dense weight/ckpt/recovery arrays plus
// one interned TypeId per task. A workflow has a handful of task types but
// up to 10^6 tasks, so per-task strings would dominate the instance
// footprint; instead names are synthesized on demand ("<type>_<id>", the
// scheme every generator uses) unless a caller supplied explicit names.
// The AoS `Task` view survives as a thin value-returning shim.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "dag/graph.hpp"

namespace fpsched {

struct Task {
  std::string name;
  /// Task type tag (generator specific; e.g. "mProjectPP"). Used for
  /// reporting and generator tests.
  std::string type;
  double weight = 0.0;         // w_i, fault-free execution time
  double ckpt_cost = 0.0;      // c_i
  double recovery_cost = 0.0;  // r_i
};

/// Interned task-type id; dense from 0 per graph.
using TypeId = std::uint32_t;

/// Per-graph registry of task type strings. Workflows have a dozen types
/// at most, so interning is a linear scan — no hash table worth carrying.
class TypeTable {
 public:
  /// Returns the id of `type`, adding it if unseen.
  TypeId intern(std::string_view type);

  const std::string& name(TypeId id) const { return names_[id]; }
  std::size_t size() const { return names_.size(); }

  std::size_t memory_bytes() const;

 private:
  std::vector<std::string> names_;
};

/// How checkpoint/recovery costs are derived from weights.
struct CostModel {
  enum class Kind { proportional, constant } kind = Kind::proportional;
  /// `proportional`: c_i = r_i = factor * w_i. `constant`: c_i = r_i = value.
  double parameter = 0.1;

  static CostModel proportional(double factor) { return {Kind::proportional, factor}; }
  static CostModel constant(double value) { return {Kind::constant, value}; }

  /// Two models derive identical costs iff kind and parameter agree (lets
  /// the engine's instance cache skip redundant apply_cost_model calls).
  bool operator==(const CostModel&) const = default;

  std::string describe() const;
};

class TaskGraphBuilder;

class TaskGraph {
 public:
  TaskGraph() = default;
  /// Takes ownership of a frozen DAG and its per-vertex tasks; sizes must
  /// match and all costs must be non-negative and finite. This AoS entry
  /// point interns the types and keeps the explicit names (used by the
  /// file loader and the synthetic gadgets whose names are not
  /// "<type>_<id>"); generators go through TaskGraphBuilder instead.
  TaskGraph(Dag dag, std::vector<Task> tasks);

  const Dag& dag() const { return dag_; }
  std::size_t task_count() const { return weights_.size(); }

  double weight(VertexId v) const { return weights_[v]; }
  double ckpt_cost(VertexId v) const { return ckpt_costs_[v]; }
  double recovery_cost(VertexId v) const { return recovery_costs_[v]; }
  const std::string& type(VertexId v) const { return types_.name(type_ids_[v]); }
  TypeId type_id(VertexId v) const { return type_ids_[v]; }

  /// Task name: the stored name when one was supplied, otherwise the
  /// synthesized "<type>_<id>" every generator uses. Returns by value
  /// because synthesized names are not materialized.
  std::string name(VertexId v) const;

  /// AoS view of one task, assembled on demand.
  Task task(VertexId v) const;

  /// Dense per-task arrays, indexed by vertex id. These are the storage —
  /// evaluator/heuristic workspaces gather from them without copies.
  std::span<const double> weights_view() const { return weights_; }
  std::span<const double> ckpt_costs_view() const { return ckpt_costs_; }
  std::span<const double> recovery_costs_view() const { return recovery_costs_; }
  std::span<const TypeId> type_ids() const { return type_ids_; }
  const TypeTable& types() const { return types_; }

  /// All weights as a dense vector (indexed by vertex id).
  std::vector<double> weights() const { return {weights_.begin(), weights_.end()}; }

  /// T_inf of the paper: the failure-free, checkpoint-free execution time,
  /// i.e. the sum of all weights (tasks are serialized on the platform).
  double total_weight() const;

  double average_weight() const;

  /// Re-derives every c_i/r_i from the cost model (r_i = c_i, as in all of
  /// the paper's experiments).
  void apply_cost_model(const CostModel& model);

  /// Sets c_i and r_i for one task (used by theory gadgets where r != c).
  void set_costs(VertexId v, double ckpt_cost, double recovery_cost);
  void set_weight(VertexId v, double weight);

  /// Heap bytes of the instance (DAG CSR + task arrays + type table +
  /// stored names) — the number the perf bench reports as provenance.
  std::size_t memory_bytes() const;

 private:
  friend class TaskGraphBuilder;

  Dag dag_;
  std::vector<double> weights_;
  std::vector<double> ckpt_costs_;
  std::vector<double> recovery_costs_;
  std::vector<TypeId> type_ids_;
  TypeTable types_;
  /// Explicit per-task names; empty when names are synthesized.
  std::vector<std::string> names_;
};

/// Streaming construction path for generators: interned types, dense
/// weight array, edges forwarded to the streaming DagBuilder — no Task
/// structs and no name strings are ever materialized.
class TaskGraphBuilder {
 public:
  /// Pre-sizes every array for a known instance shape.
  void reserve(std::size_t tasks, std::size_t edges);

  TypeId intern_type(std::string_view type) { return types_.intern(type); }

  VertexId add_task(TypeId type, double weight);
  void add_edge(VertexId from, VertexId to) { dag_.add_edge(from, to); }

  std::size_t task_count() const { return weights_.size(); }

  /// Freezes the DAG (validation, CSR, topo order, SP classification) and
  /// assembles the SoA TaskGraph. Checkpoint/recovery costs start at 0;
  /// callers apply a cost model afterwards.
  TaskGraph finish() &&;

 private:
  DagBuilder dag_;
  std::vector<double> weights_;
  std::vector<TypeId> type_ids_;
  TypeTable types_;
};

}  // namespace fpsched
