// Elementary DAG families used by the theory modules, tests and ablations:
// chains, forks, joins, fork-joins, and random layered DAGs.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "workflows/task_graph.hpp"

namespace fpsched {

/// Linear chain T_0 -> T_1 -> ... with the given weights.
TaskGraph make_chain(std::span<const double> weights);

/// Uniform chain of `n` tasks with weight `w` each.
TaskGraph make_uniform_chain(std::size_t n, double weight);

/// Fork: one source followed by `sink_weights.size()` independent sinks.
/// Vertex 0 is the source.
TaskGraph make_fork(double source_weight, std::span<const double> sink_weights);

/// Join: `source_weights.size()` independent sources followed by one sink.
/// The sink is the last vertex.
TaskGraph make_join(std::span<const double> source_weights, double sink_weight);

/// `levels` layers of `width` parallel tasks between a source and a sink;
/// consecutive layers are fully connected.
TaskGraph make_fork_join(std::size_t levels, std::size_t width, double weight);

struct LayeredRandomConfig {
  std::size_t task_count = 30;
  std::size_t layer_count = 5;
  /// Probability of an edge between a vertex and each vertex of the next
  /// layer (every vertex keeps at least one predecessor in the previous
  /// layer so the graph stays "workflow shaped").
  double edge_probability = 0.3;
  double mean_weight = 20.0;
  double weight_cv = 0.5;
  std::uint64_t seed = 7;
};

/// Random layered DAG; the workhorse of the randomized differential tests.
TaskGraph make_layered_random(const LayeredRandomConfig& config);

/// The 8-task example DAG of the paper's Figure 1 (T0..T7), unit costs
/// scaled by `weight`. Edges: T0->T3, T1->T2, T2->T4, T2->T7, T3->T5,
/// T4->T6, T5->T6; checkpointed-in-the-example tasks are T3 and T4 (flags
/// are returned separately by the caller; the graph itself is plain).
TaskGraph make_paper_figure1(double weight = 10.0);

}  // namespace fpsched
