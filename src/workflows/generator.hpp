// Common interface for the synthetic Pegasus-like workflow generators.
//
// The paper evaluates on four scientific workflows produced by the Pegasus
// Workflow Generator (Bharathi et al. [9], Juve et al. [24]). That tool is
// an external Java artifact; we reproduce the documented DAG shapes and the
// weight scales the paper reports (Montage ~10 s, LIGO ~220 s, CyberShake
// ~25 s, Genome > 1000 s per task on average), drawing per-type weights
// from gamma distributions.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "workflows/task_graph.hpp"

namespace fpsched {

enum class WorkflowKind : std::uint8_t { montage, ligo, cybershake, genome };

struct GeneratorConfig {
  /// Requested number of tasks; generators hit this exactly (>= a small
  /// per-workflow minimum).
  std::size_t task_count = 100;
  std::uint64_t seed = 1;
  /// Coefficient of variation of per-type task weights (0 = deterministic
  /// type means, matching "average weight" statements exactly).
  double weight_cv = 0.2;
  /// Cost model applied after generation (all experiments use r = c).
  CostModel cost_model = CostModel::proportional(0.1);
};

/// Generates the requested workflow.
TaskGraph generate_workflow(WorkflowKind kind, const GeneratorConfig& config);

/// Per-workflow generators (same semantics as generate_workflow).
TaskGraph generate_montage(const GeneratorConfig& config);
TaskGraph generate_ligo(const GeneratorConfig& config);
TaskGraph generate_cybershake(const GeneratorConfig& config);
TaskGraph generate_genome(const GeneratorConfig& config);

std::string to_string(WorkflowKind kind);
std::span<const WorkflowKind> all_workflow_kinds();

/// Smallest task count each generator supports.
std::size_t minimum_task_count(WorkflowKind kind);

/// The failure rate the paper uses for this workflow in Figures 2-6
/// (1e-3, except Genome where tasks are an order of magnitude heavier and
/// the paper uses 1e-4).
double paper_lambda(WorkflowKind kind);

}  // namespace fpsched
