// Synthetic NASA/IPAC Montage workflow (sky mosaic stitching).
//
// Shape (Bharathi et al. 2008): m input images are reprojected in parallel
// (mProjectPP), overlapping pairs are difference-fitted (mDiffFit), all fits
// are concatenated (mConcatFit) and turned into a background model
// (mBgModel); each image is then background-corrected (mBackground, needs
// the model and the reprojection), the corrected tiles are tabled
// (mImgtbl), co-added (mAdd), shrunk and rendered (mShrink, mJPEG).
// Average task weight in the paper: ~10 s.
#include <algorithm>

#include "workflows/generator.hpp"
#include "workflows/workflow_detail.hpp"

namespace fpsched {

TaskGraph generate_montage(const GeneratorConfig& config) {
  detail::require_minimum(config, WorkflowKind::montage);
  detail::WorkflowAssembler a(config, "Montage");

  const std::size_t n = config.task_count;
  // n = m (project) + d (diff) + m (background) + 6 singles, d >= m-1.
  std::size_t m = std::max<std::size_t>(2, (n - 6) / 4);
  while (n - 6 - 2 * m < m - 1) --m;  // keep enough diffs to chain projections
  const std::size_t d = n - 6 - 2 * m;

  std::vector<VertexId> projects;
  projects.reserve(m);
  for (std::size_t i = 0; i < m; ++i) projects.push_back(a.add("mProjectPP", 14.0));

  std::vector<VertexId> diffs;
  diffs.reserve(d);
  for (std::size_t j = 0; j < d; ++j) {
    const VertexId diff = a.add("mDiffFit", 9.0);
    diffs.push_back(diff);
    if (j < m - 1) {
      // Consecutive overlaps keep every projection covered.
      a.edge(projects[j], diff);
      a.edge(projects[j + 1], diff);
    } else {
      // Extra overlaps between random distinct image pairs.
      const std::size_t u = static_cast<std::size_t>(a.rng().uniform_index(m));
      std::size_t v = static_cast<std::size_t>(a.rng().uniform_index(m - 1));
      if (v >= u) ++v;
      a.edge(projects[u], diff);
      a.edge(projects[v], diff);
    }
  }

  const VertexId concat = a.add("mConcatFit", 45.0);
  for (const VertexId diff : diffs) a.edge(diff, concat);

  const VertexId bg_model = a.add("mBgModel", 30.0);
  a.edge(concat, bg_model);

  std::vector<VertexId> backgrounds;
  backgrounds.reserve(m);
  for (std::size_t i = 0; i < m; ++i) {
    const VertexId bg = a.add("mBackground", 10.0);
    backgrounds.push_back(bg);
    a.edge(bg_model, bg);
    a.edge(projects[i], bg);
  }

  const VertexId imgtbl = a.add("mImgtbl", 12.0);
  for (const VertexId bg : backgrounds) a.edge(bg, imgtbl);
  const VertexId add = a.add("mAdd", 35.0);
  a.edge(imgtbl, add);
  const VertexId shrink = a.add("mShrink", 15.0);
  a.edge(add, shrink);
  const VertexId jpeg = a.add("mJPEG", 4.0);
  a.edge(shrink, jpeg);

  return a.finish();
}

}  // namespace fpsched
