#include "workflows/io.hpp"

#include <fstream>
#include <limits>
#include <sstream>

#include "support/error.hpp"

namespace fpsched {

namespace {
constexpr std::string_view kMagic = "fpsched-workflow";
constexpr int kVersion = 1;

// Reads the next content line (skipping blank lines and '#' comments).
bool next_line(std::istream& is, std::string& line) {
  while (std::getline(is, line)) {
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    if (line[first] == '#') continue;
    return true;
  }
  return false;
}
}  // namespace

void save_workflow(std::ostream& os, const TaskGraph& graph) {
  os << kMagic << ' ' << kVersion << '\n';
  os << "tasks " << graph.task_count() << '\n';
  os.precision(std::numeric_limits<double>::max_digits10);
  for (VertexId v = 0; v < graph.task_count(); ++v) {
    const Task t = graph.task(v);
    os << v << ' ' << (t.name.empty() ? "task" + std::to_string(v) : t.name) << ' '
       << (t.type.empty() ? "generic" : t.type) << ' ' << t.weight << ' ' << t.ckpt_cost << ' '
       << t.recovery_cost << '\n';
  }
  os << "edges " << graph.dag().edge_count() << '\n';
  for (VertexId v = 0; v < graph.task_count(); ++v) {
    for (const VertexId s : graph.dag().successors(v)) os << v << ' ' << s << '\n';
  }
}

void save_workflow_file(const std::string& path, const TaskGraph& graph) {
  std::ofstream os(path);
  ensure(os.good(), "cannot open " + path + " for writing");
  save_workflow(os, graph);
  ensure(os.good(), "write to " + path + " failed");
}

TaskGraph load_workflow(std::istream& is) {
  std::string line;
  if (!next_line(is, line)) throw ParseError("empty workflow file");
  {
    std::istringstream header(line);
    std::string magic;
    int version = 0;
    header >> magic >> version;
    if (magic != kMagic) throw ParseError("bad magic: '" + magic + "'");
    if (version != kVersion) throw ParseError("unsupported version " + std::to_string(version));
  }

  if (!next_line(is, line)) throw ParseError("missing 'tasks' section");
  std::size_t n = 0;
  {
    std::istringstream section(line);
    std::string keyword;
    section >> keyword >> n;
    if (keyword != "tasks" || section.fail()) throw ParseError("malformed 'tasks' line: " + line);
  }

  std::vector<Task> tasks(n);
  std::vector<bool> seen(n, false);
  for (std::size_t i = 0; i < n; ++i) {
    if (!next_line(is, line)) throw ParseError("truncated task list");
    std::istringstream row(line);
    std::size_t id = 0;
    Task t;
    row >> id >> t.name >> t.type >> t.weight >> t.ckpt_cost >> t.recovery_cost;
    if (row.fail() || id >= n) throw ParseError("malformed task line: " + line);
    if (seen[id]) throw ParseError("duplicate task id " + std::to_string(id));
    seen[id] = true;
    tasks[id] = std::move(t);
  }

  if (!next_line(is, line)) throw ParseError("missing 'edges' section");
  std::size_t m = 0;
  {
    std::istringstream section(line);
    std::string keyword;
    section >> keyword >> m;
    if (keyword != "edges" || section.fail()) throw ParseError("malformed 'edges' line: " + line);
  }

  std::vector<std::pair<VertexId, VertexId>> edges;
  edges.reserve(m);
  for (std::size_t i = 0; i < m; ++i) {
    if (!next_line(is, line)) throw ParseError("truncated edge list");
    std::istringstream row(line);
    std::size_t u = 0;
    std::size_t v = 0;
    row >> u >> v;
    if (row.fail() || u >= n || v >= n) throw ParseError("malformed edge line: " + line);
    edges.emplace_back(static_cast<VertexId>(u), static_cast<VertexId>(v));
  }

  try {
    return TaskGraph(Dag::from_edges(n, edges), std::move(tasks));
  } catch (const Error& e) {
    throw ParseError(std::string("invalid workflow: ") + e.what());
  }
}

TaskGraph load_workflow_file(const std::string& path) {
  std::ifstream is(path);
  ensure(is.good(), "cannot open " + path);
  return load_workflow(is);
}

}  // namespace fpsched
