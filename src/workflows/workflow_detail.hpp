// Internal helper shared by the workflow generators (not installed API).
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "dag/graph.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "workflows/generator.hpp"
#include "workflows/task_graph.hpp"

namespace fpsched::detail {

/// Accumulates vertices with typed, gamma-distributed weights and freezes
/// into a TaskGraph with the configured cost model applied.
class WorkflowAssembler {
 public:
  WorkflowAssembler(const GeneratorConfig& config, std::string workflow_name)
      : config_(config), rng_(config.seed), name_(std::move(workflow_name)) {}

  /// Adds a task of `type` with weight drawn around `mean_weight`.
  VertexId add(const std::string& type, double mean_weight) {
    const VertexId id = builder_.add_vertex();
    Task task;
    task.type = type;
    task.name = type + "_" + std::to_string(id);
    task.weight = config_.weight_cv == 0.0 ? mean_weight
                                           : rng_.gamma_mean_cv(mean_weight, config_.weight_cv);
    tasks_.push_back(std::move(task));
    return id;
  }

  void edge(VertexId from, VertexId to) { builder_.add_edge(from, to); }

  Rng& rng() { return rng_; }

  std::size_t task_count() const { return tasks_.size(); }

  TaskGraph finish() {
    ensure(tasks_.size() == config_.task_count,
           name_ + " generator produced " + std::to_string(tasks_.size()) + " tasks, expected " +
               std::to_string(config_.task_count));
    TaskGraph graph(std::move(builder_).build(), std::move(tasks_));
    graph.apply_cost_model(config_.cost_model);
    return graph;
  }

 private:
  GeneratorConfig config_;
  DagBuilder builder_;
  std::vector<Task> tasks_;
  Rng rng_;
  std::string name_;
};

inline void require_minimum(const GeneratorConfig& config, WorkflowKind kind) {
  ensure(config.task_count >= minimum_task_count(kind),
         to_string(kind) + " needs at least " + std::to_string(minimum_task_count(kind)) +
             " tasks, got " + std::to_string(config.task_count));
}

}  // namespace fpsched::detail
