// Internal helper shared by the workflow generators (not installed API).
#pragma once

#include <string>
#include <string_view>
#include <utility>

#include "dag/graph.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "workflows/generator.hpp"
#include "workflows/task_graph.hpp"

namespace fpsched::detail {

/// Accumulates vertices with typed, gamma-distributed weights and freezes
/// into a TaskGraph with the configured cost model applied.
///
/// Streams straight into TaskGraphBuilder: types are interned once, task
/// names are never materialized (the SoA TaskGraph synthesizes
/// "<type>_<id>" on demand — the exact scheme this class used to store),
/// and edges go to the arena-backed DagBuilder. The weight draw per `add`
/// is unchanged, so generator RNG call order — and therefore every figure
/// byte — is preserved.
class WorkflowAssembler {
 public:
  WorkflowAssembler(const GeneratorConfig& config, std::string workflow_name)
      : config_(config), rng_(config.seed), name_(std::move(workflow_name)) {
    builder_.reserve(config.task_count, config.task_count * 2);
  }

  /// Adds a task of `type` with weight drawn around `mean_weight`.
  VertexId add(std::string_view type, double mean_weight) {
    const double weight = config_.weight_cv == 0.0
                              ? mean_weight
                              : rng_.gamma_mean_cv(mean_weight, config_.weight_cv);
    return builder_.add_task(builder_.intern_type(type), weight);
  }

  void edge(VertexId from, VertexId to) { builder_.add_edge(from, to); }

  Rng& rng() { return rng_; }

  std::size_t task_count() const { return builder_.task_count(); }

  TaskGraph finish() {
    ensure(builder_.task_count() == config_.task_count,
           name_ + " generator produced " + std::to_string(builder_.task_count()) +
               " tasks, expected " + std::to_string(config_.task_count));
    TaskGraph graph = std::move(builder_).finish();
    graph.apply_cost_model(config_.cost_model);
    return graph;
  }

 private:
  GeneratorConfig config_;
  TaskGraphBuilder builder_;
  Rng rng_;
  std::string name_;
};

inline void require_minimum(const GeneratorConfig& config, WorkflowKind kind) {
  ensure(config.task_count >= minimum_task_count(kind),
         to_string(kind) + " needs at least " + std::to_string(minimum_task_count(kind)) +
             " tasks, got " + std::to_string(config.task_count));
}

}  // namespace fpsched::detail
