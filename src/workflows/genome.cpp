// Synthetic USC Epigenomics ("Genome") workflow (DNA methylation mapping).
//
// Shape (Bharathi et al. 2008): per sequencing lane, a fastqSplit fans out
// into parallel per-chunk pipelines filterContams -> sol2sanger ->
// fastq2bfq -> map (deep four-task chains dominated by the map step); a
// mapMerge joins the lane, and global maqIndex -> pileup stages close the
// workflow. Average task weight in the paper: > 1000 s, an order of
// magnitude heavier than the other workflows.
#include <algorithm>

#include "workflows/generator.hpp"
#include "workflows/workflow_detail.hpp"

namespace fpsched {

namespace {
// Stage means along a per-chunk chain; chains are extended cyclically with
// extra conversion stages when the requested task count needs padding.
struct Stage {
  const char* type;
  double mean;
};
constexpr Stage kChainStages[] = {
    {"filterContams", 300.0},
    {"sol2sanger", 90.0},
    {"fastq2bfq", 150.0},
    {"map", 4000.0},
    {"mapPad", 600.0},  // padding stages (rare): extra alignment passes
    {"mapPad2", 600.0},
};
}  // namespace

TaskGraph generate_genome(const GeneratorConfig& config) {
  detail::require_minimum(config, WorkflowKind::genome);
  detail::WorkflowAssembler a(config, "Genome");

  const std::size_t n = config.task_count;
  std::size_t lanes = std::max<std::size_t>(1, (n + 60) / 120);
  // Every lane costs 2 fixed tasks (fastqSplit, mapMerge) and needs at
  // least one 4-task chain; 2 global tasks (maqIndex, pileup).
  while (lanes > 1 && n < 2 + lanes * 6) --lanes;

  const std::size_t chain_budget = n - 2 - 2 * lanes;
  std::size_t chain_count = std::max<std::size_t>(lanes, chain_budget / 4);
  while (chain_count * 4 > chain_budget) --chain_count;
  std::vector<std::size_t> chain_length(chain_count, 4);
  {
    std::size_t leftover = chain_budget - 4 * chain_count;
    for (std::size_t c = 0; leftover > 0; c = (c + 1) % chain_count, --leftover)
      ++chain_length[c];
  }

  // Distribute chains over lanes round-robin.
  std::vector<std::vector<std::size_t>> lane_chains(lanes);
  for (std::size_t c = 0; c < chain_count; ++c) lane_chains[c % lanes].push_back(chain_length[c]);

  std::vector<VertexId> merges;
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    const VertexId split = a.add("fastqSplit", 120.0);
    const VertexId merge = a.add("mapMerge", 500.0);
    merges.push_back(merge);
    for (const std::size_t length : lane_chains[lane]) {
      VertexId prev = split;
      for (std::size_t s = 0; s < length; ++s) {
        const Stage& stage = kChainStages[std::min<std::size_t>(s, std::size(kChainStages) - 1)];
        const VertexId t = a.add(stage.type, stage.mean);
        a.edge(prev, t);
        prev = t;
      }
      a.edge(prev, merge);
    }
  }

  const VertexId index = a.add("maqIndex", 300.0);
  for (const VertexId m : merges) a.edge(m, index);
  const VertexId pileup = a.add("pileup", 400.0);
  a.edge(index, pileup);

  return a.finish();
}

}  // namespace fpsched
