#include "workflows/generator.hpp"

#include "support/error.hpp"

namespace fpsched {

TaskGraph generate_workflow(WorkflowKind kind, const GeneratorConfig& config) {
  switch (kind) {
    case WorkflowKind::montage: return generate_montage(config);
    case WorkflowKind::ligo: return generate_ligo(config);
    case WorkflowKind::cybershake: return generate_cybershake(config);
    case WorkflowKind::genome: return generate_genome(config);
  }
  throw InvalidArgument("unknown workflow kind");
}

std::string to_string(WorkflowKind kind) {
  switch (kind) {
    case WorkflowKind::montage: return "Montage";
    case WorkflowKind::ligo: return "Ligo";
    case WorkflowKind::cybershake: return "CyberShake";
    case WorkflowKind::genome: return "Genome";
  }
  return "?";
}

std::span<const WorkflowKind> all_workflow_kinds() {
  static constexpr WorkflowKind kAll[] = {
      WorkflowKind::montage,
      WorkflowKind::ligo,
      WorkflowKind::cybershake,
      WorkflowKind::genome,
  };
  return kAll;
}

std::size_t minimum_task_count(WorkflowKind kind) {
  switch (kind) {
    case WorkflowKind::montage: return 20;
    case WorkflowKind::ligo: return 12;
    case WorkflowKind::cybershake: return 8;
    case WorkflowKind::genome: return 10;
  }
  return 8;
}

double paper_lambda(WorkflowKind kind) {
  return kind == WorkflowKind::genome ? 1e-4 : 1e-3;
}

}  // namespace fpsched
