// Plain-text serialization of task graphs (".wf" files).
//
// Format (line oriented, '#' comments allowed):
//   fpsched-workflow 1
//   tasks <n>
//   <id> <name> <type> <weight> <ckpt_cost> <recovery_cost>   (n lines)
//   edges <m>
//   <from> <to>                                               (m lines)
#pragma once

#include <iosfwd>
#include <string>

#include "workflows/task_graph.hpp"

namespace fpsched {

void save_workflow(std::ostream& os, const TaskGraph& graph);
void save_workflow_file(const std::string& path, const TaskGraph& graph);

/// Throws ParseError on malformed input (bad header, counts, ids, costs).
TaskGraph load_workflow(std::istream& is);
TaskGraph load_workflow_file(const std::string& path);

}  // namespace fpsched
