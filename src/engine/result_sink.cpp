#include "engine/result_sink.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <ostream>

#include "support/ascii_plot.hpp"
#include "support/error.hpp"

namespace fpsched::engine {

Table panel_table(const Panel& panel) {
  std::vector<std::string> headers{panel.x_label};
  for (const PanelSeries& series : panel.series) headers.push_back(series.name);
  Table table(headers);
  // Task counts are integers, lambdas need their leading decimals, the
  // other axes (downtime seconds, cost-model parameters) use 3 decimals.
  const auto format_x = [&](double x) {
    if (panel.axis == GridAxis::task_count) return std::to_string(static_cast<long long>(x));
    return format_double(x, panel.axis == GridAxis::lambda ? 6 : 3);
  };
  for (std::size_t i = 0; i < panel.xs.size(); ++i) {
    std::vector<std::string> row;
    row.push_back(format_x(panel.xs[i]));
    for (const PanelSeries& series : panel.series) row.push_back(format_double(series.values[i], 4));
    table.add_row(std::move(row));
  }
  return table;
}

Panel assemble_panel(const ScenarioGrid& grid, std::span<const ScenarioResult> results,
                     std::string title) {
  grid.validate();
  ensure(grid.workflows.size() == 1, "assemble_panel needs a single-workflow grid");
  ensure(results.size() == grid.scenario_count(),
         "assemble_panel: results do not match the grid");
  // One value per non-axis dimension, so the flattened result order is
  // x-value major, policy minor regardless of which dimension is the axis.
  const auto single = [&](GridAxis axis, std::size_t count) {
    ensure(axis == grid.axis || count <= 1,
           "a " + to_string(grid.axis) + " panel needs a single " + to_string(axis) + " value");
  };
  single(GridAxis::task_count, grid.sizes.size());
  single(GridAxis::lambda, grid.lambdas.size());
  single(GridAxis::downtime, grid.downtimes.size());
  single(GridAxis::checkpoint_cost, grid.cost_models.size());

  Panel panel;
  panel.title = std::move(title);
  panel.axis = grid.axis;
  panel.x_label = to_string(grid.axis);
  switch (grid.axis) {
    case GridAxis::task_count:
      panel.xs.assign(grid.sizes.begin(), grid.sizes.end());
      break;
    case GridAxis::lambda:
      panel.xs = grid.lambdas;
      break;
    case GridAxis::downtime:
      panel.xs = grid.downtimes;
      break;
    case GridAxis::checkpoint_cost:
      // The x coordinate is the model parameter (the factor of c = f*w or
      // the constant cost in seconds, depending on the models' kind).
      for (const CostModel& model : grid.cost_models) panel.xs.push_back(model.parameter);
      break;
  }

  // enumerate() order: x value major, policy minor (one kind, one value on
  // the non-axis dimension).
  const std::size_t policy_count = grid.policies.size();
  for (const ScenarioPolicy& policy : grid.policies) panel.series.push_back({policy.name(), {}});
  for (std::size_t x = 0; x < panel.xs.size(); ++x) {
    for (std::size_t p = 0; p < policy_count; ++p) {
      panel.series[p].values.push_back(results[x * policy_count + p].ratio());
    }
  }
  return panel;
}

TableSink::TableSink(std::ostream& os, bool with_heading) : os_(os), with_heading_(with_heading) {}

void TableSink::emit(const Panel& panel, const std::string&) {
  if (with_heading_) os_ << "\n=== " << panel.title << " ===\n";
  panel_table(panel).print(os_);
}

AsciiChartSink::AsciiChartSink(std::ostream& os) : os_(os) {}

void AsciiChartSink::emit(const Panel& panel, const std::string&) {
  std::vector<double> finite;
  for (const PanelSeries& series : panel.series)
    for (const double r : series.values)
      if (std::isfinite(r)) finite.push_back(r);
  if (finite.empty()) return;
  std::sort(finite.begin(), finite.end());
  const double cap = std::max(finite[finite.size() / 2] * 3.0, finite.front() * 1.5);
  bool clipped = false;
  AsciiChart chart("T / T_inf (chart clipped at " + format_double(cap, 2) + ")", 72, 18);
  chart.set_x_label(panel.x_label);
  chart.set_y_label("T / T_inf");
  for (const PanelSeries& series : panel.series) {
    PlotSeries plot{series.name, panel.xs, series.values};
    for (double& y : plot.ys) {
      if (!std::isfinite(y) || y > cap) {
        y = cap;
        clipped = true;
      }
    }
    chart.add_series(std::move(plot));
  }
  chart.print(os_);
  if (clipped) os_ << "  (some points exceed the chart cap; see the table for exact values)\n";
}

CsvSink::CsvSink(std::string directory, std::ostream* log)
    : directory_(std::move(directory)), log_(log) {}

void CsvSink::emit(const Panel& panel, const std::string& slug) {
  const std::string path = directory_ + "/" + slug + ".csv";
  std::ofstream csv(path);
  if (!csv.good()) throw InvalidArgument("cannot open " + path + " for writing");
  panel_table(panel).to_csv(csv);
  if (log_) *log_ << "  [csv written to " << path << "]\n";
}

}  // namespace fpsched::engine
