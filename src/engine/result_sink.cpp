#include "engine/result_sink.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <sstream>

#include "support/ascii_plot.hpp"
#include "support/error.hpp"

namespace fpsched::engine {

Table panel_table(const Panel& panel, bool machine_precision) {
  std::vector<std::string> headers{panel.x_label};
  for (const PanelSeries& series : panel.series) headers.push_back(series.name);
  Table table(headers);
  // Task counts are integers, lambdas need their leading decimals, the
  // other axes (downtime seconds, cost-model parameters) use 3 decimals.
  const auto format_x = [&](double x) {
    if (panel.axis == GridAxis::task_count) return std::to_string(static_cast<long long>(x));
    return format_double(x, panel.axis == GridAxis::lambda ? 6 : 3);
  };
  const auto format_ratio = [&](double r) {
    return machine_precision ? format_double_full(r) : format_double(r, 4);
  };
  for (std::size_t i = 0; i < panel.xs.size(); ++i) {
    std::vector<std::string> row;
    row.push_back(format_x(panel.xs[i]));
    for (const PanelSeries& series : panel.series) row.push_back(format_ratio(series.values[i]));
    table.add_row(std::move(row));
  }
  return table;
}

namespace {

std::string workflow_list(const std::vector<WorkflowKind>& kinds) {
  std::string out;
  for (const WorkflowKind kind : kinds) {
    if (!out.empty()) out += ", ";
    out += to_string(kind);
  }
  return out;
}

}  // namespace

Panel assemble_panel(const ScenarioGrid& grid, std::span<const ScenarioResult> results,
                     std::string title) {
  grid.validate();
  ensure(grid.workflows.size() == 1, "assemble_panel needs a single-workflow grid (got " +
                                         workflow_list(grid.workflows) + ")");
  const std::string kind_name = to_string(grid.workflows.front());
  ensure(results.size() == grid.scenario_count(),
         "assemble_panel(" + kind_name + "): " + std::to_string(results.size()) +
             " results do not match the grid (" + std::to_string(grid.scenario_count()) +
             " scenarios)");
  // One value per non-axis dimension, so the flattened result order is
  // x-value major, policy minor regardless of which dimension is the axis.
  const auto single = [&](GridAxis axis, std::size_t count) {
    ensure(axis == grid.axis || count <= 1, "a " + to_string(grid.axis) + " panel of " +
                                                kind_name + " needs a single " + to_string(axis) +
                                                " value");
  };
  single(GridAxis::task_count, grid.sizes.size());
  single(GridAxis::lambda, grid.lambdas.size());
  single(GridAxis::downtime, grid.downtimes.size());
  single(GridAxis::checkpoint_cost, grid.cost_models.size());

  Panel panel;
  panel.title = std::move(title);
  panel.axis = grid.axis;
  panel.x_label = to_string(grid.axis);
  switch (grid.axis) {
    case GridAxis::task_count:
      panel.xs.assign(grid.sizes.begin(), grid.sizes.end());
      break;
    case GridAxis::lambda:
      panel.xs = grid.lambdas;
      break;
    case GridAxis::downtime:
      panel.xs = grid.downtimes;
      break;
    case GridAxis::checkpoint_cost:
      // The x coordinate is the model parameter (the factor of c = f*w or
      // the constant cost in seconds, depending on the models' kind).
      for (const CostModel& model : grid.cost_models) panel.xs.push_back(model.parameter);
      break;
  }

  // enumerate() order: x value major, policy minor (one kind, one value on
  // the non-axis dimension).
  const std::size_t policy_count = grid.policies.size();
  for (const ScenarioPolicy& policy : grid.policies) panel.series.push_back({policy.name(), {}});
  for (std::size_t x = 0; x < panel.xs.size(); ++x) {
    for (std::size_t p = 0; p < policy_count; ++p) {
      panel.series[p].values.push_back(results[x * policy_count + p].ratio());
    }
  }
  return panel;
}

void ensure_output_directory(const std::string& directory) {
  const std::filesystem::path path(directory);
  if (std::filesystem::exists(path)) {
    if (!std::filesystem::is_directory(path)) {
      throw InvalidArgument("'" + directory + "' exists and is not a directory");
    }
    return;
  }
  std::error_code ec;
  std::filesystem::create_directories(path, ec);
  if (ec) throw InvalidArgument("cannot create directory '" + directory + "': " + ec.message());
}

// --- JSON records ------------------------------------------------------

std::string json_quote(std::string_view value) {
  std::string out = "\"";
  for (const char c : value) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

namespace {

/// Round-trip JSON number; inf/nan (legal ratios — a schedule may never
/// finish) have no JSON literal and become strings.
std::string json_number(double value) {
  if (!std::isfinite(value)) return json_quote(format_double_full(value));
  return format_double_full(value);
}

std::string_view cost_model_kind(const CostModel& model) {
  switch (model.kind) {
    case CostModel::Kind::proportional: return "proportional";
    case CostModel::Kind::constant: return "constant";
  }
  return "?";
}

std::string_view policy_kind_name(ScenarioPolicy::Kind kind) {
  switch (kind) {
    case ScenarioPolicy::Kind::fixed_heuristic: return "fixed";
    case ScenarioPolicy::Kind::best_linearization: return "best_linearization";
    case ScenarioPolicy::Kind::simulated_best: return "simulated_best";
  }
  return "?";
}

std::string_view sim_distribution_name(ScenarioPolicy::SimDistribution distribution) {
  switch (distribution) {
    case ScenarioPolicy::SimDistribution::analytic: return "analytic";
    case ScenarioPolicy::SimDistribution::exponential: return "exponential";
    case ScenarioPolicy::SimDistribution::weibull: return "weibull";
  }
  return "?";
}

}  // namespace

std::string record_json_prefix(std::string_view experiment, std::string_view panel) {
  return "{\"experiment\":" + json_quote(experiment) + ",\"panel\":" + json_quote(panel) + ",";
}

std::string record_body_json(const ScenarioResult& result) {
  const ScenarioSpec& spec = result.spec;
  std::ostringstream os;
  os << "\"workflow\":" << json_quote(to_string(spec.workflow))
     << ",\"tasks\":" << spec.task_count << ",\"lambda\":" << json_number(spec.model.lambda())
     << ",\"downtime\":" << json_number(spec.model.downtime())
     << ",\"cost_model\":" << json_quote(cost_model_kind(spec.cost_model))
     << ",\"cost_parameter\":" << json_number(spec.cost_model.parameter)
     << ",\"policy_kind\":" << json_quote(policy_kind_name(spec.policy.kind))
     << ",\"policy\":" << json_quote(spec.policy.name());
  if (spec.policy.kind == ScenarioPolicy::Kind::simulated_best) {
    // Appended only for the new kind: records of pre-existing policies
    // keep their historical bytes.
    os << ",\"sim_distribution\":" << json_quote(sim_distribution_name(spec.policy.sim_distribution))
       << ",\"sim_shape\":" << json_number(spec.policy.sim_shape)
       << ",\"sim_trials\":" << spec.policy.sim_trials
       << ",\"sim_seed\":" << spec.policy.sim_seed;
  }
  os << ",\"workflow_seed\":" << spec.workflow_seed
     << ",\"weight_cv\":" << json_number(spec.weight_cv) << ",\"stride\":" << spec.stride
     << ",\"scenario_index\":" << spec.scenario_index
     << ",\"linearization\":" << json_quote(to_string(result.linearization))
     << ",\"best_budget\":" << result.best_budget
     << ",\"expected_makespan\":" << json_number(result.evaluation.expected_makespan)
     << ",\"ratio\":" << json_number(result.evaluation.ratio) << '}';
  return os.str();
}

std::string to_json(const ResultRecord& record) {
  return record_json_prefix(record.experiment, record.panel) + record_body_json(record.result);
}

// --- Sinks -------------------------------------------------------------

TableSink::TableSink(std::ostream& os, bool with_heading) : os_(os), with_heading_(with_heading) {}

void TableSink::emit(const Panel& panel, const std::string&) {
  if (with_heading_) os_ << "\n=== " << panel.title << " ===\n";
  panel_table(panel).print(os_);
}

AsciiChartSink::AsciiChartSink(std::ostream& os) : os_(os) {}

void AsciiChartSink::emit(const Panel& panel, const std::string&) {
  std::vector<double> finite;
  for (const PanelSeries& series : panel.series)
    for (const double r : series.values)
      if (std::isfinite(r)) finite.push_back(r);
  if (finite.empty()) return;
  std::sort(finite.begin(), finite.end());
  const double cap = std::max(finite[finite.size() / 2] * 3.0, finite.front() * 1.5);
  bool clipped = false;
  AsciiChart chart("T / T_inf (chart clipped at " + format_double(cap, 2) + ")", 72, 18);
  chart.set_x_label(panel.x_label);
  chart.set_y_label("T / T_inf");
  for (const PanelSeries& series : panel.series) {
    PlotSeries plot{series.name, panel.xs, series.values};
    for (double& y : plot.ys) {
      if (!std::isfinite(y) || y > cap) {
        y = cap;
        clipped = true;
      }
    }
    chart.add_series(std::move(plot));
  }
  chart.print(os_);
  if (clipped) os_ << "  (some points exceed the chart cap; see the table for exact values)\n";
}

CsvSink::CsvSink(std::string directory, std::ostream* log)
    : directory_(std::move(directory)), log_(log) {
  ensure_output_directory(directory_);
}

void CsvSink::emit(const Panel& panel, const std::string& slug) {
  const std::string path = directory_ + "/" + slug + ".csv";
  std::ofstream csv(path);
  if (!csv.good()) throw InvalidArgument("cannot open " + path + " for writing");
  panel_table(panel, /*machine_precision=*/true).to_csv(csv);
  if (log_) *log_ << "  [csv written to " << path << "]\n";
}

CallbackSink::CallbackSink(RecordFn on_record, FinishFn on_finish)
    : on_record_(std::move(on_record)), on_finish_(std::move(on_finish)) {
  ensure(static_cast<bool>(on_record_), "CallbackSink needs a record callback");
}

void CallbackSink::record(const ResultRecord& record) { on_record_(record); }

void CallbackSink::finish() {
  if (on_finish_) on_finish_();
}

NdjsonSink::NdjsonSink(std::ostream& os) : os_(os) {}

void NdjsonSink::record(const ResultRecord& record) { os_ << to_json(record) << '\n'; }

JsonSink::JsonSink(std::ostream& os) : os_(os) {}

void JsonSink::record(const ResultRecord& record) { objects_.push_back(to_json(record)); }

void JsonSink::finish() {
  os_ << "[\n";
  for (std::size_t i = 0; i < objects_.size(); ++i) {
    os_ << "  " << objects_[i] << (i + 1 < objects_.size() ? ",\n" : "\n");
  }
  os_ << "]\n";
  objects_.clear();
}

}  // namespace fpsched::engine
