// Declarative experiment scenarios (the unit of work of the engine).
//
// The paper's whole evaluation is a grid: workflow kind x size x failure
// model x heuristic. A ScenarioSpec pins down one cell of such a grid —
// everything needed to reproduce one plotted point deterministically,
// independent of execution order or thread count. A ScenarioGrid is the
// declarative cross product the figure binaries used to hand-roll as
// nested loops; `enumerate()` flattens it into the scenario list the
// ExperimentEngine shards across workers.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/failure_model.hpp"
#include "heuristics/heuristic.hpp"
#include "support/rng.hpp"
#include "workflows/generator.hpp"

namespace fpsched::engine {

/// What to run on a scenario's instance: one fixed heuristic, the best
/// linearization for a checkpointing strategy (the selection rule of
/// Figures 3 and 5-7; non-budgeted strategies are DF-only per Section 5),
/// or — for the robustness study — the schedule that wins across ALL
/// heuristics, re-scored under a simulated renewal failure process.
struct ScenarioPolicy {
  enum class Kind : std::uint8_t { fixed_heuristic, best_linearization, simulated_best };

  /// How a simulated_best policy scores the winning schedule: `analytic`
  /// reports the exponential-model expectation unchanged (the sanity
  /// baseline row), `exponential`/`weibull` replace it with the
  /// Monte-Carlo mean makespan under that inter-failure distribution
  /// (Weibull keeps the exponential model's MTBF, so only the shape of
  /// the failure law changes — the robustness question of Section 7).
  enum class SimDistribution : std::uint8_t { analytic, exponential, weibull };

  Kind kind = Kind::fixed_heuristic;
  HeuristicSpec heuristic;                           // fixed_heuristic
  CkptStrategy strategy = CkptStrategy::by_weight;   // best_linearization

  // simulated_best only. sim_seed is part of the spec so results are
  // identical under any sharding or thread count.
  SimDistribution sim_distribution = SimDistribution::analytic;
  double sim_shape = 1.0;        // Weibull shape (ignored otherwise)
  std::size_t sim_trials = 20000;
  std::uint64_t sim_seed = 31;

  static ScenarioPolicy fixed(HeuristicSpec spec);
  static ScenarioPolicy best_lin(CkptStrategy strategy);
  static ScenarioPolicy simulated(SimDistribution distribution, double shape, std::size_t trials,
                                  std::uint64_t seed = 31);

  /// Series label: the heuristic name ("DF-CkptW"), the strategy name
  /// ("CkptW") — matching the paper's figure legends — or the simulated
  /// distribution ("BestEV", "Sim-Exp", "Sim-Weibull-0.7").
  std::string name() const;
};

/// One fully specified experiment cell.
struct ScenarioSpec {
  WorkflowKind workflow = WorkflowKind::montage;
  std::size_t task_count = 100;
  FailureModel model{1e-3, 0.0};
  CostModel cost_model = CostModel::proportional(0.1);
  ScenarioPolicy policy;

  /// Instance randomness: the generator is seeded with
  /// `workflow_seed + task_count` (distinct instance per size,
  /// reproducible — the convention of every figure bench).
  std::uint64_t workflow_seed = 42;
  double weight_cv = 0.2;

  /// N-sweep stride (1 = exhaustive, as in the paper). Must be >= 1.
  std::size_t stride = 1;
  /// Linearization options (RF seed, outweight mode) — part of the spec so
  /// results do not depend on who executes the scenario.
  LinearizeOptions linearize;

  /// Forked sub-stream id assigned by ScenarioGrid::enumerate (position in
  /// the flattened grid). Any scenario-local randomness must come from
  /// `rng()` so results are identical under any sharding.
  std::uint64_t scenario_index = 0;

  /// The scenario's workflow instance (generation is deterministic).
  TaskGraph instantiate() const;

  /// Independent, reproducible random stream for this scenario.
  Rng rng() const;

  /// "CyberShake n=200 lambda=0.001 DF-CkptW" — for logs and errors.
  std::string label() const;
};

/// Canonical, versioned text form of EVERY ScenarioSpec field — the
/// collision-proof body of content-addressed cache keys. Two specs map to
/// the same string iff every field (policy sub-fields included) is equal;
/// doubles serialize at round-trip precision, enums as their numeric
/// codes. The "spec/1" version prefix invalidates persisted keys whenever
/// the spec gains a field that changes record bytes.
std::string canonical_spec_string(const ScenarioSpec& spec);

/// FNV-1a 64-bit hash (the compact index form of canonical key strings).
std::uint64_t fnv1a64(std::string_view text);

/// Which grid dimension forms the x axis of assembled panels.
enum class GridAxis : std::uint8_t { task_count, lambda, downtime, checkpoint_cost };

/// Axis label used by panels and tables ("number of tasks", "lambda",
/// "downtime", "checkpoint cost").
std::string to_string(GridAxis axis);

/// The declarative cross product kind x size x lambda x downtime x
/// cost model x policy. Scenario order is fixed (kind-major, then size,
/// lambda, downtime, cost model, then policy) so a grid always flattens to
/// the same list; grids whose extra dimensions are left at their scalar
/// defaults keep the historical kind x size x lambda x policy order.
struct ScenarioGrid {
  std::vector<WorkflowKind> workflows;
  std::vector<std::size_t> sizes{100};
  /// Failure rates; empty = the paper's per-workflow lambda
  /// (`paper_lambda`).
  std::vector<double> lambdas;
  /// Downtime grid (seconds after each failure); empty = the scalar
  /// `downtime` below. Required non-empty for a downtime-axis grid.
  std::vector<double> downtimes;
  double downtime = 0.0;
  /// Cost-model grid; empty = the scalar `cost_model` below. Required
  /// non-empty for a checkpoint_cost-axis grid.
  std::vector<CostModel> cost_models;
  CostModel cost_model = CostModel::proportional(0.1);
  std::vector<ScenarioPolicy> policies;

  std::uint64_t seed = 42;
  double weight_cv = 0.2;
  std::size_t stride = 1;
  LinearizeOptions linearize;
  GridAxis axis = GridAxis::task_count;

  std::size_t scenario_count() const;

  /// Flattens the grid; throws InvalidArgument when the grid is malformed
  /// (no workflows/sizes/policies, stride < 1, or an empty axis).
  std::vector<ScenarioSpec> enumerate() const;

  /// Throws InvalidArgument when the grid cannot be enumerated.
  void validate() const;
};

}  // namespace fpsched::engine
