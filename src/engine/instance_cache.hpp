// Shared-instance execution support for the experiment engine.
//
// Every figure grid evaluates several policies (and often several failure
// rates, downtimes or cost models) on the *same* workflow instance.
// InstanceKey captures exactly the ScenarioSpec fields that determine the
// TaskGraph topology/weights and the linearizations — the failure model,
// cost model and policy are deliberately excluded, because the topology
// and weights do not depend on them (the cost model only rewrites
// c_i = r_i from the weights, see TaskGraph::apply_cost_model).
// InstanceCache materializes one instance per key: the graph is generated
// once, each linearization method is computed once on first use, and one
// EvaluatorWorkspace is reused — so a worker that receives a group of
// scenarios sharing a key replays the cached state for every
// policy/lambda/downtime/cost cell instead of rebuilding it per cell.
// All cached state is a pure function of the key, so results are
// bit-identical to the uncached path.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "core/evaluator.hpp"
#include "dag/linearize.hpp"
#include "engine/scenario.hpp"
#include "workflows/generator.hpp"
#include "workflows/task_graph.hpp"

namespace fpsched::engine {

/// The spec fields that determine a scenario's instance (graph +
/// linearizations). Scenarios with equal keys can share an InstanceCache.
struct InstanceKey {
  WorkflowKind workflow = WorkflowKind::montage;
  std::size_t task_count = 0;
  std::uint64_t workflow_seed = 0;
  double weight_cv = 0.0;
  LinearizeOptions linearize;

  static InstanceKey of(const ScenarioSpec& spec);

  bool operator==(const InstanceKey&) const = default;
};

/// One materialized instance: the generated TaskGraph, lazily memoized
/// linearizations (one per method), and a reusable evaluator workspace.
/// Owned by a single engine worker; not thread safe.
class InstanceCache {
 public:
  /// Generates the instance for `spec`'s key (with `spec`'s cost model
  /// applied, exactly as ScenarioSpec::instantiate would).
  explicit InstanceCache(const ScenarioSpec& spec);

  const InstanceKey& key() const { return key_; }

  /// The cached graph with `model`'s costs applied. Re-derives c_i/r_i
  /// only when the model differs from the one currently applied; the
  /// result is identical to generating the graph with `model` directly.
  const TaskGraph& graph_for(const CostModel& model);

  /// The memoized linearization for `method` (computed on first use with
  /// the key's LinearizeOptions). Orders depend only on topology and
  /// weights, so they are shared across every failure/cost-model cell.
  const std::vector<VertexId>& order(LinearizeMethod method);

  EvaluatorWorkspace& workspace() { return workspace_; }

 private:
  InstanceKey key_;
  TaskGraph graph_;
  CostModel applied_;
  std::array<std::optional<std::vector<VertexId>>, 3> orders_;
  EvaluatorWorkspace workspace_;
  LinearizeWorkspace linearize_workspace_;
};

}  // namespace fpsched::engine
