#include "engine/instance_cache.hpp"

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/error.hpp"

namespace fpsched::engine {

namespace {

// Telemetry only (see obs/metrics.hpp). Hits are counted at the lookup
// site (engine.cpp WorkerInstanceCaches); misses here, where the
// instance is actually materialized.
struct InstanceMetrics {
  obs::Counter& misses;
  obs::Counter& generate_ns;
  obs::Counter& linearizations;
  obs::Counter& linearize_ns;
};

InstanceMetrics& instance_metrics() {
  static InstanceMetrics* metrics = [] {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
    return new InstanceMetrics{
        reg.counter("fpsched_instance_cache_misses_total",
                    "instances materialized (graph generated + costs applied)"),
        reg.counter("fpsched_instance_generate_ns_total",
                    "nanoseconds spent generating workflow instances"),
        reg.counter("fpsched_instance_linearizations_total",
                    "linearization orders computed (cache misses per method)"),
        reg.counter("fpsched_instance_linearize_ns_total",
                    "nanoseconds spent computing linearization orders")};
  }();
  return *metrics;
}

TaskGraph generate_instrumented(const ScenarioSpec& spec) {
  InstanceMetrics& metrics = instance_metrics();
  metrics.misses.add(1);
  const obs::TraceSpan span("instance.generate");
  const obs::ScopedTimer timer(nullptr, &metrics.generate_ns);
  return spec.instantiate();
}

}  // namespace

InstanceKey InstanceKey::of(const ScenarioSpec& spec) {
  InstanceKey key;
  key.workflow = spec.workflow;
  key.task_count = spec.task_count;
  key.workflow_seed = spec.workflow_seed;
  key.weight_cv = spec.weight_cv;
  key.linearize = spec.linearize;
  return key;
}

InstanceCache::InstanceCache(const ScenarioSpec& spec)
    : key_(InstanceKey::of(spec)), graph_(generate_instrumented(spec)), applied_(spec.cost_model) {}

const TaskGraph& InstanceCache::graph_for(const CostModel& model) {
  if (!(model == applied_)) {
    // apply_cost_model rewrites every c_i/r_i from the (model-independent)
    // weights, so switching models is equivalent to a fresh generation.
    graph_.apply_cost_model(model);
    applied_ = model;
  }
  return graph_;
}

const std::vector<VertexId>& InstanceCache::order(LinearizeMethod method) {
  const auto index = static_cast<std::size_t>(method);
  ensure(index < orders_.size(), "unknown linearization method");
  std::optional<std::vector<VertexId>>& slot = orders_[index];
  if (!slot) {
    InstanceMetrics& metrics = instance_metrics();
    metrics.linearizations.add(1);
    const obs::TraceSpan span("instance.linearize");
    const obs::ScopedTimer timer(nullptr, &metrics.linearize_ns);
    // The SoA weight span feeds the linearizer directly; the workspace
    // persists across the (up to three) methods this cache memoizes.
    slot.emplace();
    linearize_into(graph_.dag(), graph_.weights_view(), method, key_.linearize,
                   linearize_workspace_, *slot);
  }
  return *slot;
}

}  // namespace fpsched::engine
