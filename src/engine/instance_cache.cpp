#include "engine/instance_cache.hpp"

#include "support/error.hpp"

namespace fpsched::engine {

InstanceKey InstanceKey::of(const ScenarioSpec& spec) {
  InstanceKey key;
  key.workflow = spec.workflow;
  key.task_count = spec.task_count;
  key.workflow_seed = spec.workflow_seed;
  key.weight_cv = spec.weight_cv;
  key.linearize = spec.linearize;
  return key;
}

InstanceCache::InstanceCache(const ScenarioSpec& spec)
    : key_(InstanceKey::of(spec)), graph_(spec.instantiate()), applied_(spec.cost_model) {}

const TaskGraph& InstanceCache::graph_for(const CostModel& model) {
  if (!(model == applied_)) {
    // apply_cost_model rewrites every c_i/r_i from the (model-independent)
    // weights, so switching models is equivalent to a fresh generation.
    graph_.apply_cost_model(model);
    applied_ = model;
  }
  return graph_;
}

const std::vector<VertexId>& InstanceCache::order(LinearizeMethod method) {
  const auto index = static_cast<std::size_t>(method);
  ensure(index < orders_.size(), "unknown linearization method");
  std::optional<std::vector<VertexId>>& slot = orders_[index];
  if (!slot) {
    // The SoA weight span feeds the linearizer directly; the workspace
    // persists across the (up to three) methods this cache memoizes.
    slot.emplace();
    linearize_into(graph_.dag(), graph_.weights_view(), method, key_.linearize,
                   linearize_workspace_, *slot);
  }
  return *slot;
}

}  // namespace fpsched::engine
