// ExperimentEngine: sharded parallel execution of scenario lists.
//
// The bench binaries used to run their figure grids as serial loops, with
// parallelism confined to the innermost checkpoint-budget sweep. The
// engine inverts that: the *flattened scenario list* is sharded across
// workers via parallel_for_workers, each worker reuses a private
// EvaluatorWorkspace, and the inner sweep runs serially inside its
// scenario. Every scenario's result depends only on its ScenarioSpec
// (instance seeds and RNG streams are part of the spec), so results are
// bit-for-bit identical regardless of the thread count.
//
// Nested scheduling: scenario-granularity sharding alone caps the speedup
// at the number of scenarios, so whenever the slice has fewer scenarios
// than workers, run() switches to one shared ThreadPool for the whole
// run and hands every scenario worker a PoolToken. The worker's inner
// budget sweep then submits each candidate as a task on the same pool
// (and, with eval_threads > 1, each evaluation additionally splits its
// Theorem-3 k-blocks onto it), so idle scenario workers steal work from
// in-flight scenarios instead of parking. When scenarios >= workers the
// engine keeps today's scenario-parallel path. Both paths — and every
// thread-count / eval-thread combination — produce bit-identical results:
// every task writes only slot-owned state and the k-block evaluator
// recombines in serial pass order.
#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "core/evaluator.hpp"
#include "engine/instance_cache.hpp"
#include "engine/scenario.hpp"
#include "heuristics/heuristic.hpp"

namespace fpsched::engine {

struct EngineOptions {
  /// Worker threads for scenario sharding. 0 = default_thread_count()
  /// (honors FPSCHED_THREADS); 1 = serial. Clamped to a hard ceiling of
  /// 256 real OS threads — thread counts arrive from CLI flags and HTTP
  /// query parameters, and an absurd request must degrade to "as wide as
  /// is useful", not exhaust the host's thread limit.
  std::size_t threads = 0;
  /// Share one materialized instance (TaskGraph + memoized linearizations
  /// + workspace) across all scenarios with equal InstanceKeys: each
  /// run(specs) worker generates and linearizes an instance at most once
  /// and replays it for every policy/lambda/downtime/cost cell it is
  /// handed (sharding stays per scenario, so parallelism is unaffected).
  /// Results are bit-identical either way; disabling this (the
  /// --no-instance-cache escape hatch of the benches) restores the
  /// cache-free path, which the equivalence tests compare against.
  bool instance_cache = true;
  /// Intra-evaluation k-block workers for the Theorem-3 evaluator (CLI:
  /// --eval-threads). 1 (default) keeps every evaluation serial; 0 = all
  /// cores. Takes effect in nested mode (scenarios < workers) and with a
  /// serial engine (threads == 1), where scenario sharding alone cannot
  /// fill the machine; the scenario-saturated path ignores it. Results
  /// are bit-identical for every value.
  std::size_t eval_threads = 1;
  /// Transcendental backend for every Theorem-3 evaluation this engine
  /// runs (CLI: --eval-math; HTTP: eval_math). `exact` reproduces the
  /// historical libm output bit for bit; `fast` opts into the batched
  /// polynomial kernels (<= 4 ulp per call, see math_kernels.hpp), still
  /// deterministic across all thread counts.
  EvalMath eval_math = EvalMath::exact;
};

/// Shared-pool token handed to workers in nested mode: the inner budget
/// sweep submits its candidates to `pool`, and each candidate evaluation
/// splits into `eval_threads` k-blocks on the same pool.
struct PoolToken {
  ThreadPool* pool = nullptr;
  std::size_t eval_threads = 1;
};

/// Outcome of one scenario.
struct ScenarioResult {
  ScenarioSpec spec;
  Evaluation evaluation;
  /// The linearization that produced `evaluation` (for best_linearization
  /// policies, the winner; fixed policies echo the spec).
  LinearizeMethod linearization = LinearizeMethod::depth_first;
  std::size_t best_budget = 0;

  double ratio() const { return evaluation.ratio; }
};

class ExperimentEngine {
 public:
  explicit ExperimentEngine(EngineOptions options = {});

  /// Effective worker count (>= 1).
  std::size_t thread_count() const { return threads_; }

  /// Thread count nested algorithms (sweeps, exact solvers, greedy
  /// scans, Monte-Carlo trials) should use inside one of this engine's
  /// workers: 1 when the engine shards in parallel (a nested pool would
  /// oversubscribe), 0 (= all cores) when the engine itself is serial.
  std::size_t inner_threads() const { return threads_ > 1 ? 1 : 0; }

  /// Heuristic options for code running inside one of this engine's
  /// workers: inner sweep threads from inner_threads(), reusing the
  /// worker's workspace when serial. Callers layer their stride /
  /// linearization on top. With an active `token` (nested mode) the sweep
  /// gets the shared pool and eval-thread width instead.
  HeuristicOptions worker_options(EvaluatorWorkspace& workspace,
                                  const PoolToken& token = {}) const;

  /// Streaming hook for run(): called once per scenario with its input
  /// index and result. Deliveries are serialized and strictly ordered —
  /// index i fires only after every j < i has fired — so a consumer can
  /// stream records live, in flattened order, while later scenarios are
  /// still computing on other workers.
  using ResultCallback = std::function<void(std::size_t, const ScenarioResult&)>;

  /// Runs every scenario; results come back in input order and are
  /// independent of the thread count. A non-null `on_result` receives
  /// each result in input order as soon as its ordered prefix completes.
  std::vector<ScenarioResult> run(std::span<const ScenarioSpec> specs,
                                  const ResultCallback& on_result = {}) const;

  /// Enumerates and runs a grid.
  std::vector<ScenarioResult> run(const ScenarioGrid& grid) const;

  /// Sharded execution of `count` custom work items: body(index,
  /// workspace) runs once per index on some worker, with a per-worker
  /// scratch workspace. The body must write only index-owned state.
  /// Building block for the study benches whose scenarios are not plain
  /// kind x size grids (theory instances, ablations, exact solvers).
  void for_each(std::size_t count,
                const std::function<void(std::size_t, EvaluatorWorkspace&)>& body) const;

  /// Parallel drop-in for fpsched::run_heuristics: shards the heuristic
  /// list across workers (serializing each inner sweep) and returns the
  /// numerically identical results in the same order. When the engine
  /// shards (thread_count() > 1), `options.sweep`'s threads/workspace
  /// fields are overridden; a serial engine forwards them untouched so
  /// the inner sweep keeps the caller's own parallelism settings.
  std::vector<HeuristicResult> run_heuristics(const ScheduleEvaluator& evaluator,
                                              const std::vector<HeuristicSpec>& specs,
                                              HeuristicOptions options = {}) const;

  /// Runs one scenario on the given workspace (the cache-disabled worker
  /// path: the instance is generated and linearized from scratch).
  ScenarioResult run_scenario(const ScenarioSpec& spec, EvaluatorWorkspace& workspace,
                              const PoolToken& token = {}) const;

  /// Runs one scenario against a materialized instance. `cache.key()` must
  /// equal InstanceKey::of(spec); the graph/linearizations are replayed
  /// from the cache, bit-identical to the workspace overload.
  ScenarioResult run_scenario(const ScenarioSpec& spec, InstanceCache& cache,
                              const PoolToken& token = {}) const;

  /// Resolved EngineOptions::eval_threads (>= 1).
  std::size_t eval_threads() const { return eval_threads_; }

  /// The math backend every evaluation of this engine uses.
  EvalMath eval_math() const { return eval_math_; }

 private:
  std::size_t threads_;
  bool instance_cache_;
  std::size_t eval_threads_;
  EvalMath eval_math_;
};

}  // namespace fpsched::engine
