// First-class experiments: the declarative registry behind fpsched_run
// and the per-figure binaries.
//
// The paper's evaluation is one big scenario grid, but the repo used to
// expose it as ten near-identical figure binaries hand-wiring PanelSpecs.
// This header turns each figure/study into data: an Experiment owns a
// name, a one-line summary, and a builder that maps shared FigureOptions
// to a FigurePlan (heading + panels + closing notes). The
// ExperimentRegistry resolves names ("fig2", "downtime") to experiments;
// run_experiment() executes a plan through the engine and streams it
// through any stack of ResultSinks — including, via ShardSpec, a
// deterministic 1/N slice of the flattened scenario list so N processes'
// record streams concatenate to the bit-identical unsharded output.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/math_kernels.hpp"
#include "engine/result_sink.hpp"
#include "engine/scenario.hpp"

namespace fpsched::engine {

/// The shared experiment knobs every figure builder consumes (the CLI of
/// the bench binaries maps onto this 1:1).
struct FigureOptions {
  std::vector<std::size_t> sizes{50, 100, 200, 300, 400, 500, 600, 700};
  std::size_t stride = 1;   // N-sweep stride (1 = exhaustive, as the paper)
  std::uint64_t seed = 42;  // workflow generation seed
  double weight_cv = 0.2;
  std::string csv_dir;       // empty = no CSV output
  std::size_t threads = 0;   // scenario-shard workers; 0 = all cores
  /// Intra-evaluation k-block workers for the Theorem-3 evaluator
  /// (--eval-threads / eval_threads query param). 1 = serial evaluations
  /// (default), 0 = all cores; kicks in when scenario sharding alone
  /// cannot fill the workers. Output is bit-identical for every value.
  std::size_t eval_threads = 1;
  /// Share materialized instances across the scenarios of a figure
  /// (--no-instance-cache disables it; results are identical either way).
  bool instance_cache = true;
  /// Evaluator math backend (--eval-math / eval_math query param):
  /// `exact` (default, bit-identical to libm) or `fast` (batched
  /// polynomial kernels, <= 4 ulp per call — see math_kernels.hpp).
  EvalMath eval_math = EvalMath::exact;
  /// Fixed workflow size for the sweep figures (fig7's lambda sweep, the
  /// downtime sweep); the size-axis figures ignore it.
  std::size_t tasks = 200;
  /// Downtime grid of the downtime-sweep experiment (seconds).
  std::vector<double> downtimes{0, 60, 300, 900, 3600};
  /// Monte-Carlo trials per simulated cell (the robustness study); the
  /// analytic experiments ignore it.
  std::size_t trials = 20000;
};

/// One declared figure panel: the scenario grid plus presentation.
struct PanelSpec {
  ScenarioGrid grid;
  std::string title;  // e.g. "CyberShake: lambda=0.001, c=0.1w  [paper fig. 2a]"
  std::string slug;   // stable file stem, e.g. "fig2a_cybershake"
};

/// A built experiment, ready to run: the text frame plus the panels.
struct FigurePlan {
  /// First stdout line of the run ("Figure 2 — impact of ...").
  std::string heading;
  std::vector<PanelSpec> panels;
  /// Printed verbatim after the panels (own its newlines; may be empty).
  std::string notes;
};

/// A registered experiment: everything fpsched_run needs to list and run
/// a figure or study by name.
struct Experiment {
  std::string name;     // registry key, e.g. "fig2"
  std::string summary;  // one-liner for --list and the shims' --help
  std::function<FigurePlan(const FigureOptions&)> build;
  /// Whether the builder consumes FigureOptions::tasks/downtimes. The
  /// per-figure shims register `--tasks`/`--downtimes` only when true, so
  /// a size-axis binary keeps rejecting them instead of silently
  /// ignoring a flag the user thinks took effect (fpsched_run registers
  /// them always — it can run any mix of experiments).
  bool sweep_options = false;
  /// Whether the builder consumes FigureOptions::trials — same contract
  /// as sweep_options, for the `--trials` flag of the simulated studies.
  bool trial_options = false;
};

/// Name -> Experiment map with registration-order listing. Lookup of an
/// unknown name throws an InvalidArgument that lists every known name, so
/// a typo in `fpsched_run fig9` is self-correcting.
class ExperimentRegistry {
 public:
  /// Registers an experiment; throws InvalidArgument on a duplicate name
  /// or a missing name/builder.
  void add(Experiment experiment);

  bool contains(const std::string& name) const;

  /// Throws InvalidArgument listing the registered names when `name` is
  /// unknown.
  const Experiment& find(const std::string& name) const;

  /// Experiments in registration order.
  std::vector<const Experiment*> experiments() const;

  /// The process-wide registry, populated with the paper figures
  /// (register_paper_figures) on first use.
  static ExperimentRegistry& global();

 private:
  std::vector<Experiment> experiments_;
};

/// Registers the paper's figure reproductions and the engine's sweep
/// studies: fig2-fig7, "downtime", plus the "robustness" Monte-Carlo
/// study (exponential-optimized schedules under Weibull failures).
void register_paper_figures(ExperimentRegistry& registry);

/// One process's slice of a run: shard `index` of `count` (1-based).
/// {1, 1} is the whole run. Sharding partitions the flattened scenario
/// list into contiguous blocks, so the record streams of shards 1..N
/// concatenate to the bit-identical unsharded stream.
struct ShardSpec {
  std::size_t index = 1;
  std::size_t count = 1;

  bool active() const { return count > 1; }

  /// Parses "I/N" (e.g. "2/4"); throws InvalidArgument when malformed or
  /// out of range.
  static ShardSpec parse(const std::string& text);
};

/// [begin, end) of shard `shard` over a `total`-element list: contiguous,
/// exhaustive, and balanced to within one element.
std::pair<std::size_t, std::size_t> shard_range(std::size_t total, const ShardSpec& shard);

/// The `--quick` shrink shared by the bench CLI and the HTTP service:
/// small size grid, sweep stride raised to at least 4. Kept in one place
/// so a service-run "quick" grid is the same grid the binaries smoke-run.
void apply_quick_options(FigureOptions& options);

/// One record-producing position of a plan: the owning panel's slug plus
/// the enumerated spec (spec.scenario_index is grid-local, so the pair
/// `(panel, spec.scenario_index)` identifies the position).
struct PlannedScenario {
  std::string panel;
  ScenarioSpec spec;
};

/// The plan's panels flattened into the run/record order of
/// run_experiment — the reference sequence shard merge tooling validates
/// per-shard NDJSON files against.
std::vector<PlannedScenario> flatten_plan(const FigurePlan& plan);

// --- Figure grid builders (shared by the registered figures) -----------

/// Grid of Figures 2 and 4: the six BF/DF/RF x CkptW/CkptC fixed series
/// over the size axis.
ScenarioGrid linearization_grid(WorkflowKind kind, double lambda, const CostModel& cost_model,
                                const FigureOptions& options);

/// Grid of Figures 3, 5 and 6: every checkpoint strategy with its best
/// linearization, over the size axis.
ScenarioGrid strategy_grid(WorkflowKind kind, double lambda, const CostModel& cost_model,
                           const FigureOptions& options);

/// Grid of Figure 7: fixed size, best-linearization strategies over a
/// lambda axis.
ScenarioGrid lambda_sweep_grid(WorkflowKind kind, std::size_t size,
                               const std::vector<double>& lambdas, const CostModel& cost_model,
                               const FigureOptions& options);

/// Grid of the downtime-sweep study (beyond the paper): fixed size and
/// failure rate, best-linearization strategies over a downtime axis.
ScenarioGrid downtime_sweep_grid(WorkflowKind kind, std::size_t size, double lambda,
                                 const std::vector<double>& downtimes,
                                 const CostModel& cost_model, const FigureOptions& options);

/// Panel titles matching the paper's figure captions.
std::string panel_title(WorkflowKind kind, const std::string& subtitle);
std::string best_lin_panel_title(WorkflowKind kind, const std::string& subtitle);

/// Builds the experiment's plan, runs every panel's scenarios through ONE
/// sharded engine pass (so the whole figure, not just each panel,
/// load-balances across workers), and streams the output through `sinks`:
/// every scenario result as a ResultRecord first — delivered live, in
/// flattened order, as the completed prefix grows (the engine's ordered
/// callback), so record sinks see results while later scenarios still
/// compute — then, for unsharded runs, the assembled panels in order.
/// `text` (when non-null) receives the plan's heading before and notes
/// after the panels. With an active shard only that contiguous slice of
/// the flattened scenario list runs; panel assembly is skipped, records
/// still stream in slice order. Calls finish() on every sink.
void run_experiment(const Experiment& experiment, const FigureOptions& options,
                    std::span<ResultSink* const> sinks, std::ostream* text,
                    const ShardSpec& shard = {});

}  // namespace fpsched::engine
