#include "engine/scenario.hpp"

#include <bit>
#include <sstream>

#include "support/error.hpp"
#include "support/table.hpp"

namespace fpsched::engine {

ScenarioPolicy ScenarioPolicy::fixed(HeuristicSpec spec) {
  ScenarioPolicy policy;
  policy.kind = Kind::fixed_heuristic;
  policy.heuristic = spec;
  return policy;
}

ScenarioPolicy ScenarioPolicy::best_lin(CkptStrategy strategy) {
  ScenarioPolicy policy;
  policy.kind = Kind::best_linearization;
  policy.strategy = strategy;
  return policy;
}

ScenarioPolicy ScenarioPolicy::simulated(SimDistribution distribution, double shape,
                                         std::size_t trials, std::uint64_t seed) {
  ScenarioPolicy policy;
  policy.kind = Kind::simulated_best;
  policy.sim_distribution = distribution;
  policy.sim_shape = shape;
  policy.sim_trials = trials;
  policy.sim_seed = seed;
  return policy;
}

std::string ScenarioPolicy::name() const {
  switch (kind) {
    case Kind::fixed_heuristic: return heuristic.name();
    case Kind::best_linearization: return to_string(strategy);
    case Kind::simulated_best:
      switch (sim_distribution) {
        case SimDistribution::analytic: return "BestEV";
        case SimDistribution::exponential: return "Sim-Exp";
        case SimDistribution::weibull: return "Sim-Weibull-" + format_double(sim_shape, 1);
      }
  }
  return "?";
}

TaskGraph ScenarioSpec::instantiate() const {
  GeneratorConfig config;
  config.task_count = task_count;
  config.seed = workflow_seed + task_count;  // distinct instance per size, reproducible
  config.weight_cv = weight_cv;
  config.cost_model = cost_model;
  return generate_workflow(workflow, config);
}

Rng ScenarioSpec::rng() const {
  // Root stream from the scenario's full identity, not just the grid
  // position: run_figure flattens several grids into one batch, and grids
  // sharing a workflow_seed would otherwise hand the same stream to their
  // respective scenario 0, 1, ... Mixing every spec field keeps distinct
  // scenarios on distinct streams while staying a pure function of the
  // spec — independent of which worker runs the scenario.
  std::uint64_t state = workflow_seed;
  const auto mix = [&state](std::uint64_t word) { state = splitmix64(state) ^ word; };
  mix(static_cast<std::uint64_t>(workflow));
  mix(task_count);
  mix(std::bit_cast<std::uint64_t>(model.lambda()));
  mix(std::bit_cast<std::uint64_t>(model.downtime()));
  mix(std::bit_cast<std::uint64_t>(weight_cv));
  mix(static_cast<std::uint64_t>(cost_model.kind));
  mix(std::bit_cast<std::uint64_t>(cost_model.parameter));
  mix(static_cast<std::uint64_t>(policy.kind));
  mix(static_cast<std::uint64_t>(policy.heuristic.linearization));
  mix(static_cast<std::uint64_t>(policy.heuristic.checkpointing));
  mix(static_cast<std::uint64_t>(policy.strategy));
  mix(static_cast<std::uint64_t>(linearize.outweight));
  mix(linearize.seed);
  mix(stride);
  mix(scenario_index);
  if (policy.kind == ScenarioPolicy::Kind::simulated_best) {
    // Mixed only for the new kind so every pre-existing scenario keeps
    // its historical stream.
    mix(static_cast<std::uint64_t>(policy.sim_distribution));
    mix(std::bit_cast<std::uint64_t>(policy.sim_shape));
    mix(policy.sim_trials);
    mix(policy.sim_seed);
  }
  return Rng(state);
}

std::string canonical_spec_string(const ScenarioSpec& spec) {
  // Every field, unconditionally (unlike the record JSON, which appends
  // sim fields only for simulated policies to preserve historical bytes):
  // the key must distinguish specs even on fields a given policy kind
  // ignores today, so a future kind that starts reading them cannot
  // alias a stale cache entry.
  std::string out = "spec/1";
  const auto field = [&out](std::string_view name, const std::string& value) {
    out += ' ';
    out += name;
    out += '=';
    out += value;
  };
  const auto num = [](auto value) { return std::to_string(static_cast<std::uint64_t>(value)); };
  field("wf", num(spec.workflow));
  field("n", num(spec.task_count));
  field("lambda", format_double_full(spec.model.lambda()));
  field("downtime", format_double_full(spec.model.downtime()));
  field("cost_kind", num(spec.cost_model.kind));
  field("cost_param", format_double_full(spec.cost_model.parameter));
  field("policy", num(spec.policy.kind));
  field("lin", num(spec.policy.heuristic.linearization));
  field("ckpt", num(spec.policy.heuristic.checkpointing));
  field("strategy", num(spec.policy.strategy));
  field("sim_dist", num(spec.policy.sim_distribution));
  field("sim_shape", format_double_full(spec.policy.sim_shape));
  field("sim_trials", num(spec.policy.sim_trials));
  field("sim_seed", num(spec.policy.sim_seed));
  field("seed", num(spec.workflow_seed));
  field("cv", format_double_full(spec.weight_cv));
  field("stride", num(spec.stride));
  field("outweight", num(spec.linearize.outweight));
  field("lin_seed", num(spec.linearize.seed));
  field("index", num(spec.scenario_index));
  return out;
}

std::uint64_t fnv1a64(std::string_view text) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::string ScenarioSpec::label() const {
  std::ostringstream os;
  os << to_string(workflow) << " n=" << task_count << " lambda=" << model.lambda() << " "
     << policy.name();
  return os.str();
}

std::string to_string(GridAxis axis) {
  switch (axis) {
    case GridAxis::task_count: return "number of tasks";
    case GridAxis::lambda: return "lambda";
    case GridAxis::downtime: return "downtime";
    case GridAxis::checkpoint_cost: return "checkpoint cost";
  }
  return "?";
}

void ScenarioGrid::validate() const {
  ensure(!workflows.empty(), "scenario grid needs at least one workflow kind");
  ensure(!sizes.empty(), "scenario grid needs at least one task count");
  ensure(!policies.empty(), "scenario grid needs at least one policy");
  ensure(stride >= 1, "scenario grid stride must be >= 1");
  // An empty list on the axis dimension would enumerate a single implicit
  // point (the scalar default / per-workflow lambda) — a degenerate
  // one-point "sweep" panel that is always a caller mistake.
  ensure(axis != GridAxis::lambda || !lambdas.empty(),
         "a lambda-axis grid needs an explicit lambda list");
  ensure(axis != GridAxis::downtime || !downtimes.empty(),
         "a downtime-axis grid needs an explicit downtime list");
  ensure(axis != GridAxis::checkpoint_cost || !cost_models.empty(),
         "a checkpoint_cost-axis grid needs an explicit cost-model list");
}

std::size_t ScenarioGrid::scenario_count() const {
  const std::size_t lambda_count = lambdas.empty() ? 1 : lambdas.size();
  const std::size_t downtime_count = downtimes.empty() ? 1 : downtimes.size();
  const std::size_t cost_count = cost_models.empty() ? 1 : cost_models.size();
  return workflows.size() * sizes.size() * lambda_count * downtime_count * cost_count *
         policies.size();
}

std::vector<ScenarioSpec> ScenarioGrid::enumerate() const {
  validate();
  // Empty grid dimensions collapse to their scalar defaults.
  const std::vector<double> grid_downtimes =
      downtimes.empty() ? std::vector<double>{downtime} : downtimes;
  const std::vector<CostModel> grid_costs =
      cost_models.empty() ? std::vector<CostModel>{cost_model} : cost_models;
  std::vector<ScenarioSpec> specs;
  specs.reserve(scenario_count());
  for (const WorkflowKind kind : workflows) {
    // Empty lambda list = the paper's per-workflow failure rate.
    const std::vector<double> kind_lambdas =
        lambdas.empty() ? std::vector<double>{paper_lambda(kind)} : lambdas;
    for (const std::size_t size : sizes) {
      for (const double lambda : kind_lambdas) {
        for (const double down : grid_downtimes) {
          for (const CostModel& cost : grid_costs) {
            for (const ScenarioPolicy& policy : policies) {
              ScenarioSpec spec;
              spec.workflow = kind;
              spec.task_count = size;
              spec.model = FailureModel(lambda, down);
              spec.cost_model = cost;
              spec.policy = policy;
              spec.workflow_seed = seed;
              spec.weight_cv = weight_cv;
              spec.stride = stride;
              spec.linearize = linearize;
              spec.scenario_index = specs.size();
              specs.push_back(spec);
            }
          }
        }
      }
    }
  }
  return specs;
}

}  // namespace fpsched::engine
