// The paper's figures as registered experiments.
//
// Each figure that used to be a hand-written bench main is declared here
// as data: a name, a summary, and a FigurePlan builder over the shared
// FigureOptions. The per-figure binaries (bench/fig*.cpp) and the
// fpsched_run driver both resolve these through
// ExperimentRegistry::global(), so their output is byte-identical by
// construction.
#include <cctype>

#include "engine/experiment.hpp"
#include "support/error.hpp"
#include "support/table.hpp"
#include "workflows/generator.hpp"

namespace fpsched::engine {

namespace {

/// The shared grid knobs every panel inherits from the options. The cost
/// model rides on the generalized grid dimension (a one-point
/// checkpoint-cost list) so every figure grid uses the same axis
/// machinery; a singleton list enumerates identically to the scalar.
ScenarioGrid base_grid(WorkflowKind kind, const CostModel& cost_model,
                       const FigureOptions& options) {
  ScenarioGrid grid;
  grid.workflows = {kind};
  grid.sizes = options.sizes;
  grid.cost_models = {cost_model};
  grid.seed = options.seed;
  grid.weight_cv = options.weight_cv;
  grid.stride = options.stride;
  return grid;
}

std::vector<ScenarioPolicy> best_lin_policies() {
  std::vector<ScenarioPolicy> policies;
  for (const CkptStrategy strategy : all_ckpt_strategies())
    policies.push_back(ScenarioPolicy::best_lin(strategy));
  return policies;
}

}  // namespace

ScenarioGrid linearization_grid(WorkflowKind kind, double lambda, const CostModel& cost_model,
                                const FigureOptions& options) {
  ScenarioGrid grid = base_grid(kind, cost_model, options);
  grid.lambdas = {lambda};
  for (const LinearizeMethod lin : all_linearize_methods()) {
    for (const CkptStrategy strategy : {CkptStrategy::by_weight, CkptStrategy::by_cost}) {
      grid.policies.push_back(ScenarioPolicy::fixed({lin, strategy}));
    }
  }
  return grid;
}

ScenarioGrid strategy_grid(WorkflowKind kind, double lambda, const CostModel& cost_model,
                           const FigureOptions& options) {
  ScenarioGrid grid = base_grid(kind, cost_model, options);
  grid.lambdas = {lambda};
  grid.policies = best_lin_policies();
  return grid;
}

ScenarioGrid lambda_sweep_grid(WorkflowKind kind, std::size_t size,
                               const std::vector<double>& lambdas, const CostModel& cost_model,
                               const FigureOptions& options) {
  ScenarioGrid grid = base_grid(kind, cost_model, options);
  grid.sizes = {size};
  grid.lambdas = lambdas;
  grid.axis = GridAxis::lambda;
  grid.policies = best_lin_policies();
  return grid;
}

ScenarioGrid downtime_sweep_grid(WorkflowKind kind, std::size_t size, double lambda,
                                 const std::vector<double>& downtimes,
                                 const CostModel& cost_model, const FigureOptions& options) {
  ScenarioGrid grid = base_grid(kind, cost_model, options);
  grid.sizes = {size};
  grid.lambdas = {lambda};
  grid.downtimes = downtimes;
  grid.axis = GridAxis::downtime;
  grid.policies = best_lin_policies();
  return grid;
}

std::string panel_title(WorkflowKind kind, const std::string& subtitle) {
  return to_string(kind) + ": " + subtitle;
}

std::string best_lin_panel_title(WorkflowKind kind, const std::string& subtitle) {
  return to_string(kind) + ": " + subtitle + " (best linearization per strategy)";
}

namespace {

FigurePlan build_fig2(const FigureOptions& options) {
  FigurePlan plan;
  plan.heading = "Figure 2 — impact of the linearization strategy (c_i = r_i = 0.1 w_i)";
  const CostModel cost = CostModel::proportional(0.1);
  plan.panels = {
      {linearization_grid(WorkflowKind::cybershake, 1e-3, cost, options),
       panel_title(WorkflowKind::cybershake, "lambda=0.001, c=0.1w  [paper fig. 2a]"),
       "fig2a_cybershake"},
      {linearization_grid(WorkflowKind::ligo, 1e-3, cost, options),
       panel_title(WorkflowKind::ligo, "lambda=0.001, c=0.1w  [paper fig. 2b]"), "fig2b_ligo"},
      {linearization_grid(WorkflowKind::genome, 1e-4, cost, options),
       panel_title(WorkflowKind::genome, "lambda=0.0001, c=0.1w  [paper fig. 2c]"),
       "fig2c_genome"},
  };
  plan.notes =
      "\nPaper's observations to compare against: DF is (almost) always the best\n"
      "linearization; on Ligo, RF beats BF because RF often behaves like DF.\n";
  return plan;
}

/// Figures 3, 5 and 6 share the four-workflow strategy layout; they
/// differ only in the cost model and its caption fragment.
FigurePlan strategy_figure(const FigureOptions& options, int figure_number,
                           const CostModel& cost, const std::string& cost_caption) {
  FigurePlan plan;
  const std::string fig = std::to_string(figure_number);
  const char* suffixes[] = {"a_montage", "b_ligo", "c_cybershake", "d_genome"};
  const WorkflowKind kinds[] = {WorkflowKind::montage, WorkflowKind::ligo,
                                WorkflowKind::cybershake, WorkflowKind::genome};
  for (std::size_t i = 0; i < 4; ++i) {
    const double lambda = paper_lambda(kinds[i]);
    plan.panels.push_back(
        {strategy_grid(kinds[i], lambda, cost, options),
         best_lin_panel_title(kinds[i], "lambda=" + format_double(lambda, 4) + ", " +
                                            cost_caption + "  [paper fig. " + fig +
                                            std::string(1, static_cast<char>('a' + i)) + "]"),
         "fig" + fig + suffixes[i]});
  }
  return plan;
}

FigurePlan build_fig3(const FigureOptions& options) {
  FigurePlan plan = strategy_figure(options, 3, CostModel::proportional(0.1), "c=0.1w");
  plan.heading = "Figure 3 — impact of the checkpointing strategy (c_i = r_i = 0.1 w_i)";
  plan.notes =
      "\nPaper's observations to compare against: CkptW best on Montage, Ligo and\n"
      "Genome; CkptC best on CyberShake; CkptPer ignores the DAG structure and\n"
      "trails the structure-aware strategies; all strategies beat CkptNvr.\n";
  return plan;
}

FigurePlan build_fig4(const FigureOptions& options) {
  FigurePlan plan;
  plan.heading = "Figure 4 — CyberShake, linearization impact under constant checkpoints";
  const WorkflowKind kind = WorkflowKind::cybershake;
  plan.panels = {
      {linearization_grid(kind, 1e-3, CostModel::constant(10.0), options),
       panel_title(kind, "lambda=0.001, c=10s  [paper fig. 4a]"), "fig4a_cybershake_c10"},
      {linearization_grid(kind, 1e-3, CostModel::constant(5.0), options),
       panel_title(kind, "lambda=0.001, c=5s  [paper fig. 4b]"), "fig4b_cybershake_c5"},
      {linearization_grid(kind, 1e-3, CostModel::proportional(0.01), options),
       panel_title(kind, "lambda=0.001, c=0.01w  [paper fig. 4c]"), "fig4c_cybershake_c001w"},
  };
  plan.notes =
      "\nPaper's observation to compare against: with a constant checkpoint cost,\n"
      "CkptW behaves as well as CkptC on CyberShake (cf. fig. 2a where the\n"
      "proportional cost separated them).\n";
  return plan;
}

FigurePlan build_fig5(const FigureOptions& options) {
  FigurePlan plan = strategy_figure(options, 5, CostModel::proportional(0.01), "c=0.01w");
  plan.heading = "Figure 5 — impact of the checkpointing strategy (c_i = r_i = 0.01 w_i)";
  return plan;
}

FigurePlan build_fig6(const FigureOptions& options) {
  FigurePlan plan = strategy_figure(options, 6, CostModel::constant(5.0), "c=5s");
  plan.heading = "Figure 6 — impact of the checkpointing strategy (c_i = r_i = 5 s)";
  return plan;
}

FigurePlan build_fig7(const FigureOptions& options) {
  FigurePlan plan;
  const std::size_t size = options.tasks;
  ensure(size >= 1, "fig7 needs tasks >= 1");
  plan.heading = "Figure 7 — checkpointing strategies vs failure rate (" + std::to_string(size) +
                 " tasks, c_i = r_i = 0.1 w_i)";
  const CostModel cost = CostModel::proportional(0.1);
  // The paper's x grids.
  const std::vector<double> common{1e-4, 2.5e-4, 3.8e-4, 5.2e-4, 6.6e-4, 8e-4, 9.3e-4};
  const std::vector<double> genome{1e-6, 5e-5, 9e-5, 1.4e-4, 1.8e-4, 2.3e-4, 2.7e-4};

  const std::string tasks = std::to_string(size) + " tasks, c=0.1w  [paper fig. 7";
  plan.panels = {
      {lambda_sweep_grid(WorkflowKind::montage, size, common, cost, options),
       best_lin_panel_title(WorkflowKind::montage, tasks + "a]"), "fig7a_montage"},
      {lambda_sweep_grid(WorkflowKind::ligo, size, common, cost, options),
       best_lin_panel_title(WorkflowKind::ligo, tasks + "b]"), "fig7b_ligo"},
      {lambda_sweep_grid(WorkflowKind::cybershake, size, common, cost, options),
       best_lin_panel_title(WorkflowKind::cybershake, tasks + "c]"), "fig7c_cybershake"},
      {lambda_sweep_grid(WorkflowKind::genome, size, genome, cost, options),
       best_lin_panel_title(WorkflowKind::genome, tasks + "d]"), "fig7d_genome"},
  };
  return plan;
}

FigurePlan build_downtime(const FigureOptions& options) {
  FigurePlan plan;
  const std::size_t size = options.tasks;
  ensure(size >= 1, "the downtime sweep needs tasks >= 1");
  for (const double d : options.downtimes) {
    ensure(d >= 0.0, "downtimes must be >= 0");
  }
  plan.heading = "Downtime sweep — checkpointing strategies vs downtime D (" +
                 std::to_string(size) + " tasks, paper lambdas, c_i = r_i = 0.1 w_i)";
  const CostModel cost = CostModel::proportional(0.1);
  const auto panel = [&](WorkflowKind kind, const std::string& slug) {
    const double lambda = paper_lambda(kind);
    return PanelSpec{
        downtime_sweep_grid(kind, size, lambda, options.downtimes, cost, options),
        best_lin_panel_title(kind, std::to_string(size) + " tasks, lambda=" +
                                       format_double(lambda, 4) + ", c=0.1w"),
        slug};
  };
  plan.panels = {
      panel(WorkflowKind::montage, "downtime_montage"),
      panel(WorkflowKind::cybershake, "downtime_cybershake"),
      panel(WorkflowKind::genome, "downtime_genome"),
  };
  plan.notes =
      "\nEq. (1) charges every failure 1/lambda + D, so E[makespan] is affine in D\n"
      "with slope lambda * E[#failures]; strategies that recover less work per\n"
      "failure flatten the curve.\n";
  return plan;
}

FigurePlan build_theory(const FigureOptions& options) {
  // Theorem-3 validation as a first-class experiment: the optimized
  // evaluator drives a best-linearization grid over all four workflow
  // kinds at sizes small enough that the literal Algorithm-1
  // transcription can replay every cell (tests/experiment_test.cpp does,
  // at 1e-9). Registering it makes the validation shardable across
  // processes and servable over HTTP like any figure. The sizes are fixed
  // — honoring --sizes would silently put the grid out of reach of the
  // exhaustive cross-check that gives this experiment its meaning.
  FigurePlan plan;
  plan.heading =
      "Theory validation — Theorem 3 (Section 4): optimized evaluator on a "
      "best-linearization grid at exhaustively checkable sizes";
  const CostModel cost = CostModel::proportional(0.1);
  const WorkflowKind kinds[] = {WorkflowKind::montage, WorkflowKind::ligo,
                                WorkflowKind::cybershake, WorkflowKind::genome};
  const char* slugs[] = {"theory_montage", "theory_ligo", "theory_cybershake", "theory_genome"};
  for (std::size_t i = 0; i < 4; ++i) {
    ScenarioGrid grid = base_grid(kinds[i], cost, options);
    grid.sizes = {20, 26, 32};
    grid.downtime = 1.0;  // exercise the downtime term of Eq. (1) too
    grid.policies = best_lin_policies();
    plan.panels.push_back(
        {std::move(grid),
         best_lin_panel_title(kinds[i], "lambda=" + format_double(paper_lambda(kinds[i]), 4) +
                                            ", D=1s, c=0.1w  [Theorem 3 grid]"),
         slugs[i]});
  }
  plan.notes =
      "\nTheorem 3 is cross-checked cell-by-cell against the literal Algorithm-1\n"
      "transcription in tests/experiment_test.cpp (1e-9) and against Monte-Carlo\n"
      "simulation in tests/mc_cross_validation_test.cpp. The remaining Section-4\n"
      "results are validated in the unit suite: Theorem 1 and the fork decision\n"
      "in tests/theory_fork_test.cpp, Lemma 2 / Corollary 1 joins in\n"
      "tests/theory_join_test.cpp, the Toueg-Babaoglu chain DP in\n"
      "tests/theory_chain_test.cpp, and the Theorem-2 SUBSET-SUM gadget in\n"
      "tests/subset_sum_test.cpp.\n";
  return plan;
}

FigurePlan build_robustness(const FigureOptions& options) {
  // The old bench/robustness_weibull study as a registered experiment:
  // for each workflow, pick the best schedule across ALL heuristics under
  // the exponential model, then re-score that same schedule under (i) the
  // analytic expectation (baseline), (ii) simulated exponential failures
  // (model sanity — must agree with the baseline within Monte-Carlo
  // noise), (iii) Weibull shape 0.7 (bursty/infant mortality) and (iv)
  // Weibull shape 1.5 (aging), all at the exponential model's MTBF.
  FigurePlan plan;
  const std::size_t size = options.tasks;
  ensure(size >= 1, "the robustness study needs tasks >= 1");
  ensure(options.trials >= 1, "the robustness study needs trials >= 1");
  plan.heading = "Robustness — exponential-optimized schedules under Weibull failures (" +
                 std::to_string(size) + " tasks, c_i = r_i = 0.1 w_i, " +
                 std::to_string(options.trials) + " trials/cell, equal MTBF across rows)";
  const CostModel cost = CostModel::proportional(0.1);
  using SimDistribution = ScenarioPolicy::SimDistribution;
  for (const WorkflowKind kind : all_workflow_kinds()) {
    const double lambda = paper_lambda(kind);
    std::string slug = to_string(kind);
    for (char& c : slug) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    ScenarioGrid grid = base_grid(kind, cost, options);
    grid.sizes = {size};
    grid.lambdas = {lambda};
    grid.policies = {
        ScenarioPolicy::simulated(SimDistribution::analytic, 1.0, options.trials),
        ScenarioPolicy::simulated(SimDistribution::exponential, 1.0, options.trials),
        ScenarioPolicy::simulated(SimDistribution::weibull, 0.7, options.trials),
        ScenarioPolicy::simulated(SimDistribution::weibull, 1.5, options.trials),
    };
    plan.panels.push_back(
        {std::move(grid),
         panel_title(kind, std::to_string(size) + " tasks, lambda=" + format_double(lambda, 4) +
                               ", c=0.1w (best heuristic, simulated failures)"),
         "robustness_" + slug});
  }
  plan.notes =
      "\nReading guide: Sim-Exp must reproduce BestEV within Monte-Carlo noise\n"
      "(model sanity); bursty failures (k=0.7) cluster, so the same MTBF wastes\n"
      "less completed work and lands below the exponential prediction, while\n"
      "aging platforms (k=1.5) spread failures evenly and typically cost more.\n";
  return plan;
}

}  // namespace

void register_paper_figures(ExperimentRegistry& registry) {
  registry.add({"fig2", "Figure 2: linearization strategies (CkptW/CkptC, c = 0.1 w)",
                build_fig2});
  registry.add({"fig3", "Figure 3: checkpointing strategies, c = 0.1 w", build_fig3});
  registry.add({"fig4", "Figure 4: CyberShake with constant checkpoint costs", build_fig4});
  registry.add({"fig5", "Figure 5: checkpointing strategies, c = 0.01 w", build_fig5});
  registry.add({"fig6", "Figure 6: checkpointing strategies, c = 5 s", build_fig6});
  registry.add({"fig7", "Figure 7: ratio vs failure rate at a fixed size, c = 0.1 w",
                build_fig7, /*sweep_options=*/true});
  registry.add({"downtime",
                "Downtime sweep: ratio vs per-failure downtime D at a fixed size, c = 0.1 w",
                build_downtime, /*sweep_options=*/true});
  registry.add({"theory",
                "Theory validation: Theorem-3 evaluator grid at exhaustively checkable sizes",
                build_theory});
  registry.add({"robustness",
                "Robustness: exponential-optimized schedules under simulated Weibull failures",
                build_robustness, /*sweep_options=*/true, /*trial_options=*/true});
}

}  // namespace fpsched::engine
