#include "engine/engine.hpp"

#include <algorithm>
#include <limits>

#include "support/env.hpp"
#include "support/error.hpp"
#include "support/threading.hpp"

namespace fpsched::engine {

ExperimentEngine::ExperimentEngine(EngineOptions options)
    : threads_(options.threads == 0 ? default_thread_count()
                                    : std::max<std::size_t>(options.threads, 1)) {}

HeuristicOptions ExperimentEngine::worker_options(EvaluatorWorkspace& workspace) const {
  HeuristicOptions options;
  options.sweep.threads = inner_threads();
  options.sweep.workspace = &workspace;  // honored whenever the sweep is serial
  return options;
}

ScenarioResult ExperimentEngine::run_scenario(const ScenarioSpec& spec,
                                              EvaluatorWorkspace& workspace) const {
  ensure(spec.stride >= 1, "scenario stride must be >= 1 (" + spec.label() + ")");
  const TaskGraph graph = spec.instantiate();
  const ScheduleEvaluator evaluator(graph, spec.model);
  HeuristicOptions options = worker_options(workspace);
  options.linearize = spec.linearize;
  options.sweep.stride = spec.stride;

  ScenarioResult result;
  result.spec = spec;
  if (spec.policy.kind == ScenarioPolicy::Kind::fixed_heuristic) {
    HeuristicResult run = run_heuristic(evaluator, spec.policy.heuristic, options);
    result.evaluation = run.evaluation;
    result.linearization = spec.policy.heuristic.linearization;
    result.best_budget = run.best_budget;
    return result;
  }

  // best_linearization: the selection rule of Figures 3 and 5-7 — keep the
  // linearization with the smallest ratio. CkptNvr / CkptAlws are defined
  // with the DF linearization only (Section 5).
  if (!is_budgeted(spec.policy.strategy)) {
    HeuristicResult run = run_heuristic(
        evaluator, {LinearizeMethod::depth_first, spec.policy.strategy}, options);
    result.evaluation = run.evaluation;
    result.linearization = LinearizeMethod::depth_first;
    result.best_budget = run.best_budget;
    return result;
  }
  double best = std::numeric_limits<double>::infinity();
  for (const LinearizeMethod lin : all_linearize_methods()) {
    HeuristicResult run = run_heuristic(evaluator, {lin, spec.policy.strategy}, options);
    if (run.evaluation.ratio < best) {
      best = run.evaluation.ratio;
      result.evaluation = run.evaluation;
      result.linearization = lin;
      result.best_budget = run.best_budget;
    }
  }
  return result;
}

std::vector<ScenarioResult> ExperimentEngine::run(std::span<const ScenarioSpec> specs) const {
  std::vector<ScenarioResult> results(specs.size());
  for_each(specs.size(), [&](std::size_t index, EvaluatorWorkspace& workspace) {
    results[index] = run_scenario(specs[index], workspace);
  });
  return results;
}

std::vector<ScenarioResult> ExperimentEngine::run(const ScenarioGrid& grid) const {
  const std::vector<ScenarioSpec> specs = grid.enumerate();
  return run(specs);
}

void ExperimentEngine::for_each(
    std::size_t count, const std::function<void(std::size_t, EvaluatorWorkspace&)>& body) const {
  if (count == 0) return;
  if (threads_ <= 1) {
    EvaluatorWorkspace workspace;
    for (std::size_t i = 0; i < count; ++i) body(i, workspace);
    return;
  }
  std::vector<EvaluatorWorkspace> workspaces(std::min(threads_, count));
  parallel_for_workers(
      0, count,
      [&](std::size_t index, std::size_t worker) { body(index, workspaces[worker]); }, threads_);
}

std::vector<HeuristicResult> ExperimentEngine::run_heuristics(
    const ScheduleEvaluator& evaluator, const std::vector<HeuristicSpec>& specs,
    HeuristicOptions options) const {
  if (threads_ <= 1) {
    // Serial engine: keep the inner sweep's own parallelism settings.
    return fpsched::run_heuristics(evaluator, specs, options);
  }
  std::vector<HeuristicResult> results(specs.size());
  for_each(specs.size(), [&](std::size_t index, EvaluatorWorkspace& workspace) {
    HeuristicOptions local = options;
    local.sweep.threads = inner_threads();
    local.sweep.workspace = &workspace;
    results[index] = run_heuristic(evaluator, specs[index], local);
  });
  return results;
}

}  // namespace fpsched::engine
