#include "engine/engine.hpp"

#include <algorithm>
#include <limits>
#include <memory>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/fault_distribution.hpp"
#include "sim/simulator.hpp"
#include "sim/trial_runner.hpp"
#include "support/env.hpp"
#include "support/error.hpp"
#include "support/sync.hpp"
#include "support/threading.hpp"

namespace fpsched::engine {

namespace {

/// Thread counts come straight from CLI flags and HTTP query parameters;
/// clamp them to the shared kMaxPoolThreads ceiling.
std::size_t resolve_workers(std::size_t requested) {
  const std::size_t resolved = requested == 0 ? default_thread_count() : requested;
  return std::clamp<std::size_t>(resolved, 1, kMaxPoolThreads);
}

// Telemetry only (see obs/metrics.hpp for the contract). busy_ns sums the
// wall time of every scenario across all workers — together with
// run_seconds it yields worker utilization (busy / (wall * threads)).
struct EngineMetrics {
  obs::Counter& runs;
  obs::Counter& scenarios;
  obs::Counter& busy_ns;
  obs::Counter& cache_hits;
  obs::Histogram& run_seconds;
  obs::Histogram& scenario_seconds;
  obs::Gauge& emitter_buffered;
  obs::Gauge& emitter_buffered_peak;
};

EngineMetrics& engine_metrics() {
  static EngineMetrics* metrics = [] {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
    return new EngineMetrics{
        reg.counter("fpsched_engine_runs_total", "engine batch runs"),
        reg.counter("fpsched_engine_scenarios_total", "scenarios executed"),
        reg.counter("fpsched_engine_busy_ns_total",
                    "summed per-scenario wall nanoseconds across workers"),
        reg.counter("fpsched_instance_cache_hits_total",
                    "scenario lookups served by an already-materialized instance"),
        reg.histogram("fpsched_engine_run_seconds", "wall seconds per engine batch run",
                      obs::latency_buckets_seconds()),
        reg.histogram("fpsched_engine_scenario_seconds", "wall seconds per scenario",
                      obs::latency_buckets_seconds()),
        reg.gauge("fpsched_engine_emitter_buffered",
                  "results completed out of order, held for in-order emission"),
        reg.gauge("fpsched_engine_emitter_buffered_peak",
                  "high-water mark of out-of-order results held by the emitter")};
  }();
  return *metrics;
}

}  // namespace

ExperimentEngine::ExperimentEngine(EngineOptions options)
    : threads_(resolve_workers(options.threads)),
      instance_cache_(options.instance_cache),
      eval_threads_(resolve_workers(options.eval_threads)),
      eval_math_(options.eval_math) {}

HeuristicOptions ExperimentEngine::worker_options(EvaluatorWorkspace& workspace,
                                                  const PoolToken& token) const {
  HeuristicOptions options;
  if (token.pool != nullptr) {
    // Nested mode: budget candidates and k-blocks go to the shared pool;
    // the workspace still serves the sweep's serial bits (non-budgeted
    // strategies, single-candidate paths).
    options.sweep.pool = token.pool;
    options.sweep.eval = {token.eval_threads, token.pool, eval_math_};
    options.sweep.threads = 1;
  } else {
    options.sweep.threads = inner_threads();
    options.sweep.eval.math = eval_math_;
  }
  options.sweep.workspace = &workspace;  // honored whenever the sweep is serial
  return options;
}

namespace {

/// The policy-selection logic shared by both run_scenario overloads.
/// `run_one(heuristic)` must behave as run_heuristic for that heuristic on
/// the scenario's evaluator; the overloads differ only in whether the
/// linearization comes from an InstanceCache or is computed from scratch.
/// `graph` is the scenario's instance (needed by simulated_best, which
/// replays the winning schedule through the fault simulator).
template <typename RunFn>
ScenarioResult execute_policy(const ScenarioSpec& spec, const TaskGraph& graph, RunFn&& run_one) {
  ScenarioResult result;
  result.spec = spec;
  if (spec.policy.kind == ScenarioPolicy::Kind::fixed_heuristic) {
    HeuristicResult run = run_one(spec.policy.heuristic);
    result.evaluation = run.evaluation;
    result.linearization = spec.policy.heuristic.linearization;
    result.best_budget = run.best_budget;
    return result;
  }

  if (spec.policy.kind == ScenarioPolicy::Kind::simulated_best) {
    // Robustness study: pick the schedule that wins across ALL heuristics
    // under the analytic (exponential) model, then re-score it under the
    // policy's failure law. The analytic row keeps the evaluator's
    // expectation; the simulated rows replace expected_makespan (and the
    // ratio derived from it) with the Monte-Carlo mean.
    const std::vector<HeuristicSpec>& heuristics = all_heuristics();
    std::vector<HeuristicResult> runs;
    runs.reserve(heuristics.size());
    for (const HeuristicSpec& heuristic : heuristics) runs.push_back(run_one(heuristic));
    const HeuristicResult& best = runs[best_result_index(runs)];
    result.evaluation = best.evaluation;
    result.linearization = best.spec.linearization;
    result.best_budget = best.best_budget;
    if (spec.policy.sim_distribution == ScenarioPolicy::SimDistribution::analytic) return result;

    const double lambda = spec.model.lambda();
    ensure(lambda > 0.0, "a simulated policy needs lambda > 0 (" + spec.label() + ")");
    ensure(spec.policy.sim_trials >= 1,
           "a simulated policy needs sim_trials >= 1 (" + spec.label() + ")");
    const FaultDistribution faults =
        spec.policy.sim_distribution == ScenarioPolicy::SimDistribution::exponential
            ? FaultDistribution::exponential(lambda)
            : FaultDistribution::weibull_from_mtbf(spec.policy.sim_shape, 1.0 / lambda);
    const FaultSimulator simulator(graph, spec.model, best.schedule);
    // threads = 1: the trial runner merges per-worker partial stats in
    // worker order, so only the serial merge is a pure function of the
    // spec (the byte-identical-under-any-sharding contract).
    const TrialOptions trials{.trials = spec.policy.sim_trials, .seed = spec.policy.sim_seed,
                              .threads = 1};
    const MonteCarloSummary summary = run_trials_with_distribution(simulator, faults, trials);
    result.evaluation.expected_makespan = summary.mean_makespan();
    result.evaluation.ratio = result.evaluation.total_weight > 0.0
                                  ? summary.mean_makespan() / result.evaluation.total_weight
                                  : 1.0;
    return result;
  }

  // best_linearization: the selection rule of Figures 3 and 5-7 — keep the
  // linearization with the smallest ratio. CkptNvr / CkptAlws are defined
  // with the DF linearization only (Section 5).
  if (!is_budgeted(spec.policy.strategy)) {
    HeuristicResult run = run_one({LinearizeMethod::depth_first, spec.policy.strategy});
    result.evaluation = run.evaluation;
    result.linearization = LinearizeMethod::depth_first;
    result.best_budget = run.best_budget;
    return result;
  }
  double best = std::numeric_limits<double>::infinity();
  for (const LinearizeMethod lin : all_linearize_methods()) {
    HeuristicResult run = run_one({lin, spec.policy.strategy});
    if (run.evaluation.ratio < best) {
      best = run.evaluation.ratio;
      result.evaluation = run.evaluation;
      result.linearization = lin;
      result.best_budget = run.best_budget;
    }
  }
  return result;
}

HeuristicOptions scenario_options(const ExperimentEngine& engine, const ScenarioSpec& spec,
                                  EvaluatorWorkspace& workspace, const PoolToken& token) {
  ensure(spec.stride >= 1, "scenario stride must be >= 1 (" + spec.label() + ")");
  HeuristicOptions options = engine.worker_options(workspace, token);
  options.linearize = spec.linearize;
  options.sweep.stride = spec.stride;
  return options;
}

}  // namespace

ScenarioResult ExperimentEngine::run_scenario(const ScenarioSpec& spec,
                                              EvaluatorWorkspace& workspace,
                                              const PoolToken& token) const {
  EngineMetrics& metrics = engine_metrics();
  const obs::ScopedTimer timer(&metrics.scenario_seconds, &metrics.busy_ns);
  const obs::TraceSpan span([&] { return "scenario " + spec.label(); });
  metrics.scenarios.add(1);
  const TaskGraph graph = spec.instantiate();
  const ScheduleEvaluator evaluator(graph, spec.model);
  const HeuristicOptions options = scenario_options(*this, spec, workspace, token);
  return execute_policy(spec, graph, [&](const HeuristicSpec& heuristic) {
    return run_heuristic(evaluator, heuristic, options);
  });
}

ScenarioResult ExperimentEngine::run_scenario(const ScenarioSpec& spec, InstanceCache& cache,
                                              const PoolToken& token) const {
  ensure(cache.key() == InstanceKey::of(spec),
         "instance cache does not match the scenario (" + spec.label() + ")");
  EngineMetrics& metrics = engine_metrics();
  const obs::ScopedTimer timer(&metrics.scenario_seconds, &metrics.busy_ns);
  const obs::TraceSpan span([&] { return "scenario " + spec.label(); });
  metrics.scenarios.add(1);
  const TaskGraph& graph = cache.graph_for(spec.cost_model);
  const ScheduleEvaluator evaluator(graph, spec.model);
  const HeuristicOptions options = scenario_options(*this, spec, cache.workspace(), token);
  return execute_policy(spec, graph, [&](const HeuristicSpec& heuristic) {
    return run_heuristic(evaluator, heuristic, cache.order(heuristic.linearization), options);
  });
}

namespace {

/// Per-worker memo of materialized instances. Sharding stays at scenario
/// granularity (grouping work units by instance would cap parallelism at
/// the number of distinct instances — a lambda/downtime sweep has one per
/// panel); instead every worker lazily materializes each InstanceKey it
/// encounters once and replays it for all of its scenarios with that key.
/// Grids emit an instance's cells consecutively, so the last-used cache
/// almost always hits.
class WorkerInstanceCaches {
 public:
  InstanceCache& for_spec(const ScenarioSpec& spec) {
    const InstanceKey key = InstanceKey::of(spec);
    if (!caches_.empty() && caches_.back()->key() == key) {
      engine_metrics().cache_hits.add(1);
      return *caches_.back();
    }
    for (const auto& cache : caches_) {
      if (cache->key() == key) {
        engine_metrics().cache_hits.add(1);
        return *cache;
      }
    }
    caches_.push_back(std::make_unique<InstanceCache>(spec));
    return *caches_.back();
  }

 private:
  std::vector<std::unique_ptr<InstanceCache>> caches_;
};

/// Turns out-of-order scenario completions into the in-order
/// ResultCallback contract: a worker marks its slot done, and whoever
/// extends the completed prefix delivers the pending callbacks under one
/// mutex (which also serializes the callback itself — consumers need no
/// locking of their own).
class OrderedEmitter {
 public:
  OrderedEmitter(const ExperimentEngine::ResultCallback& on_result,
                 const std::vector<ScenarioResult>& results)
      : on_result_(on_result), results_(results), done_(results.size(), false) {}

  void complete(std::size_t index) EXCLUDES(mutex_) {
    if (!on_result_) return;
    const LockGuard lock(mutex_);
    done_[index] = true;
    ++done_count_;
    while (next_ < done_.size() && done_[next_]) {
      on_result_(next_, results_[next_]);
      ++next_;
    }
    // Completed-but-not-yet-emitted results = head-of-line blocking depth.
    const auto buffered = static_cast<std::int64_t>(done_count_ - next_);
    engine_metrics().emitter_buffered.set(buffered);
    engine_metrics().emitter_buffered_peak.set_max(buffered);
  }

 private:
  const ExperimentEngine::ResultCallback& on_result_;
  const std::vector<ScenarioResult>& results_;
  Mutex mutex_;
  std::vector<char> done_ GUARDED_BY(mutex_);
  std::size_t done_count_ GUARDED_BY(mutex_) = 0;
  std::size_t next_ GUARDED_BY(mutex_) = 0;
};

}  // namespace

std::vector<ScenarioResult> ExperimentEngine::run(std::span<const ScenarioSpec> specs,
                                                  const ResultCallback& on_result) const {
  EngineMetrics& metrics = engine_metrics();
  metrics.runs.add(1);
  const obs::ScopedTimer run_timer(metrics.run_seconds);
  const obs::TraceSpan run_span([&] {
    return "engine.run " + std::to_string(specs.size()) + " scenarios";
  });
  std::vector<ScenarioResult> results(specs.size());
  OrderedEmitter emitter(on_result, results);

  // Nested scheduling: with fewer scenarios than workers (or a serial
  // engine that was given eval-threads), scenario sharding alone would
  // leave workers idle. One shared pool runs scenario tasks, stolen
  // budget-sweep tasks and k-blocks side by side; the calling thread
  // participates through the groups' cooperative waits, so the pool needs
  // width - 1 workers. Every task writes only slot-owned state and each
  // evaluation recombines in serial pass order, so the records are
  // bit-identical to the serial and scenario-parallel paths.
  const bool nested = threads_ > 1 && !specs.empty() && specs.size() < threads_;
  const bool eval_boost = threads_ <= 1 && eval_threads_ > 1 && !specs.empty();
  if (nested || eval_boost) {
    const std::size_t width = nested ? threads_ : eval_threads_;
    ThreadPool pool(width - 1);
    const PoolToken token{&pool, eval_threads_};
    const auto run_one = [&](std::size_t index) {
      // Scenario tasks run on arbitrary threads here, so each owns its
      // instance materialization outright instead of sharing a per-worker
      // memo; with scenarios < workers the lost reuse is bounded by the
      // worker count (and results do not depend on the cache either way).
      const ScenarioSpec& spec = specs[index];
      if (instance_cache_) {
        InstanceCache cache(spec);
        results[index] = run_scenario(spec, cache, token);
      } else {
        EvaluatorWorkspace workspace;
        results[index] = run_scenario(spec, workspace, token);
      }
      emitter.complete(index);
    };
    if (nested) {
      TaskGroup scenarios(pool);
      for (std::size_t index = 0; index < specs.size(); ++index) {
        scenarios.run([&run_one, index] { run_one(index); });
      }
      scenarios.wait();
    } else {
      for (std::size_t index = 0; index < specs.size(); ++index) run_one(index);
    }
    return results;
  }

  if (!instance_cache_) {
    for_each(specs.size(), [&](std::size_t index, EvaluatorWorkspace& workspace) {
      results[index] = run_scenario(specs[index], workspace);
      emitter.complete(index);
    });
    return results;
  }

  // Instance-sharing plan: same scenario sharding as the uncached path,
  // with a per-worker instance memo. Every result is a pure function of
  // its spec (the cached state is a pure function of the key), so the
  // output — written to input-order slots — is identical for any thread
  // count or work distribution.
  if (threads_ <= 1 || specs.size() <= 1) {
    WorkerInstanceCaches caches;
    for (std::size_t index = 0; index < specs.size(); ++index) {
      results[index] = run_scenario(specs[index], caches.for_spec(specs[index]));
      emitter.complete(index);
    }
    return results;
  }
  std::vector<WorkerInstanceCaches> worker_caches(std::min(threads_, specs.size()));
  parallel_for_workers(
      0, specs.size(),
      [&](std::size_t index, std::size_t worker) {
        results[index] = run_scenario(specs[index], worker_caches[worker].for_spec(specs[index]));
        emitter.complete(index);
      },
      threads_);
  return results;
}

std::vector<ScenarioResult> ExperimentEngine::run(const ScenarioGrid& grid) const {
  const std::vector<ScenarioSpec> specs = grid.enumerate();
  return run(specs);
}

void ExperimentEngine::for_each(
    std::size_t count, const std::function<void(std::size_t, EvaluatorWorkspace&)>& body) const {
  if (count == 0) return;
  if (threads_ <= 1) {
    EvaluatorWorkspace workspace;
    for (std::size_t i = 0; i < count; ++i) body(i, workspace);
    return;
  }
  std::vector<EvaluatorWorkspace> workspaces(std::min(threads_, count));
  parallel_for_workers(
      0, count,
      [&](std::size_t index, std::size_t worker) { body(index, workspaces[worker]); }, threads_);
}

std::vector<HeuristicResult> ExperimentEngine::run_heuristics(
    const ScheduleEvaluator& evaluator, const std::vector<HeuristicSpec>& specs,
    HeuristicOptions options) const {
  if (threads_ <= 1) {
    // Serial engine: keep the inner sweep's own parallelism settings.
    return fpsched::run_heuristics(evaluator, specs, options);
  }
  std::vector<HeuristicResult> results(specs.size());
  for_each(specs.size(), [&](std::size_t index, EvaluatorWorkspace& workspace) {
    HeuristicOptions local = options;
    local.sweep.threads = inner_threads();
    local.sweep.workspace = &workspace;
    results[index] = run_heuristic(evaluator, specs[index], local);
  });
  return results;
}

}  // namespace fpsched::engine
