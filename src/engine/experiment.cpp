#include "engine/experiment.hpp"

#include <algorithm>
#include <ostream>

#include "engine/engine.hpp"
#include "obs/trace.hpp"
#include "support/error.hpp"

namespace fpsched::engine {

void ExperimentRegistry::add(Experiment experiment) {
  ensure(!experiment.name.empty(), "an experiment needs a name");
  ensure(static_cast<bool>(experiment.build),
         "experiment '" + experiment.name + "' needs a builder");
  if (contains(experiment.name)) {
    throw InvalidArgument("experiment '" + experiment.name + "' is already registered");
  }
  experiments_.push_back(std::move(experiment));
}

bool ExperimentRegistry::contains(const std::string& name) const {
  for (const Experiment& experiment : experiments_) {
    if (experiment.name == name) return true;
  }
  return false;
}

const Experiment& ExperimentRegistry::find(const std::string& name) const {
  for (const Experiment& experiment : experiments_) {
    if (experiment.name == name) return experiment;
  }
  std::string known;
  for (const Experiment& experiment : experiments_) {
    if (!known.empty()) known += ", ";
    known += experiment.name;
  }
  throw InvalidArgument("unknown experiment '" + name + "' (registered: " +
                        (known.empty() ? "none" : known) + ")");
}

std::vector<const Experiment*> ExperimentRegistry::experiments() const {
  std::vector<const Experiment*> out;
  out.reserve(experiments_.size());
  for (const Experiment& experiment : experiments_) out.push_back(&experiment);
  return out;
}

ExperimentRegistry& ExperimentRegistry::global() {
  static ExperimentRegistry* registry = [] {
    auto* r = new ExperimentRegistry();
    register_paper_figures(*r);
    return r;
  }();
  return *registry;
}

ShardSpec ShardSpec::parse(const std::string& text) {
  const auto fail = [&] {
    throw InvalidArgument("shard must be I/N with 1 <= I <= N (e.g. \"2/4\"), got '" + text +
                          "'");
  };
  const std::size_t slash = text.find('/');
  if (slash == std::string::npos) fail();
  const auto parse_count = [&](const std::string& part) -> std::size_t {
    if (part.empty() || part.find_first_not_of("0123456789") != std::string::npos) fail();
    try {
      return static_cast<std::size_t>(std::stoull(part));
    } catch (const std::exception&) {
      fail();
    }
    return 0;  // unreachable
  };
  ShardSpec shard;
  shard.index = parse_count(text.substr(0, slash));
  shard.count = parse_count(text.substr(slash + 1));
  if (shard.count < 1 || shard.index < 1 || shard.index > shard.count) fail();
  return shard;
}

std::pair<std::size_t, std::size_t> shard_range(std::size_t total, const ShardSpec& shard) {
  ensure(shard.count >= 1 && shard.index >= 1 && shard.index <= shard.count,
         "shard index out of range");
  // Contiguous balanced blocks: shard i of N covers
  // [total*(i-1)/N, total*i/N). Adjacent shards tile [0, total) exactly,
  // which is what makes concatenated shard outputs equal the unsharded
  // run byte for byte.
  return {total * (shard.index - 1) / shard.count, total * shard.index / shard.count};
}

void apply_quick_options(FigureOptions& options) {
  options.sizes = {50, 100, 200, 300};
  options.stride = std::max<std::size_t>(options.stride, 4);
}

std::vector<PlannedScenario> flatten_plan(const FigurePlan& plan) {
  std::vector<PlannedScenario> flattened;
  for (const PanelSpec& panel : plan.panels) {
    for (ScenarioSpec& spec : panel.grid.enumerate()) {
      flattened.push_back({panel.slug, std::move(spec)});
    }
  }
  return flattened;
}

void run_experiment(const Experiment& experiment, const FigureOptions& options,
                    std::span<ResultSink* const> sinks, std::ostream* text,
                    const ShardSpec& shard) {
  const obs::TraceSpan span([&] { return "experiment " + experiment.name; });
  const FigurePlan plan = experiment.build(options);

  // Flatten every panel's grid into one list so the whole figure shards
  // across the engine's workers as a single batch.
  std::vector<ScenarioSpec> specs;
  std::vector<std::size_t> offsets;  // first flattened index of each panel
  for (const PanelSpec& panel : plan.panels) {
    offsets.push_back(specs.size());
    const std::vector<ScenarioSpec> grid_specs = panel.grid.enumerate();
    specs.insert(specs.end(), grid_specs.begin(), grid_specs.end());
  }

  // Heading first: a full-grid run can take hours, and the old binaries
  // announced themselves before computing.
  if (text && !plan.heading.empty()) *text << plan.heading << "\n";

  const auto [begin, end] = shard_range(specs.size(), shard);
  const ExperimentEngine engine({.threads = options.threads,
                                 .instance_cache = options.instance_cache,
                                 .eval_threads = options.eval_threads,
                                 .eval_math = options.eval_math});

  // Level 1: every scenario result as a record, in flattened order —
  // streamed live through the engine's ordered callback, so a record
  // sink (NDJSON file, HTTP stream) sees each result as soon as its
  // ordered prefix completes instead of after the whole slice. The
  // callback's deliveries are strictly ordered and serialized, so the
  // monotone panel_index walk over the offsets is safe.
  std::size_t panel_index = 0;
  const std::vector<ScenarioResult> results = engine.run(
      std::span<const ScenarioSpec>(specs).subspan(begin, end - begin),
      [&](std::size_t offset_in_slice, const ScenarioResult& result) {
        const std::size_t i = begin + offset_in_slice;
        while (panel_index + 1 < offsets.size() && i >= offsets[panel_index + 1]) ++panel_index;
        const ResultRecord record{experiment.name, plan.panels[panel_index].slug, result};
        for (ResultSink* sink : sinks) sink->record(record);
      });

  // Level 2: assembled panels — only when this process ran the whole
  // grid (a shard's slice does not cover whole panels).
  if (!shard.active()) {
    for (std::size_t p = 0; p < plan.panels.size(); ++p) {
      const PanelSpec& panel = plan.panels[p];
      const std::span<const ScenarioResult> slice(results.data() + offsets[p],
                                                  panel.grid.scenario_count());
      const Panel assembled = assemble_panel(panel.grid, slice, panel.title);
      for (ResultSink* sink : sinks) sink->emit(assembled, panel.slug);
    }
  }

  if (text && !plan.notes.empty()) *text << plan.notes;
  for (ResultSink* sink : sinks) sink->finish();
}

}  // namespace fpsched::engine
