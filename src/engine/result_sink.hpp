// Pluggable result sinks for engine output.
//
// A Panel is the paper's figure unit: an x grid (task counts, failure
// rates, downtimes or checkpoint-cost parameters, per the grid's axis)
// with one T/T_inf series per policy. Sinks render panels — a
// fixed-width table, an ASCII chart, a CSV file — and can be composed
// freely; the bench harness stacks all three, a future HTTP frontend could
// stream JSON. assemble_panel() maps a grid's flattened ScenarioResults
// back onto panel coordinates.
#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "engine/engine.hpp"
#include "engine/scenario.hpp"
#include "support/table.hpp"

namespace fpsched::engine {

/// One plotted line: a policy's ratio per x-grid point.
struct PanelSeries {
  std::string name;
  std::vector<double> values;
};

struct Panel {
  std::string title;  // e.g. "CyberShake: lambda=0.001, c=0.1w"
  /// Which grid dimension the xs came from; drives their formatting.
  GridAxis axis = GridAxis::task_count;
  std::string x_label;  // to_string(axis): "number of tasks", "lambda", ...
  std::vector<double> xs;
  std::vector<PanelSeries> series;
};

/// The panel as a printable/CSV-able table (x column plus one column per
/// series; lambda grids format x with 6 decimals, size grids as integers,
/// downtime/checkpoint-cost grids with 3 decimals).
Table panel_table(const Panel& panel);

/// Builds the panel of a single-workflow grid from the results of
/// `ExperimentEngine::run(grid)` (same order). The grid must have exactly
/// one workflow kind and at most one value on every non-axis dimension.
Panel assemble_panel(const ScenarioGrid& grid, std::span<const ScenarioResult> results,
                     std::string title);

/// Consumes rendered panels. `slug` is a stable per-panel file stem
/// ("fig2a_cybershake"); stream sinks ignore it.
class ResultSink {
 public:
  virtual ~ResultSink() = default;
  virtual void emit(const Panel& panel, const std::string& slug) = 0;
};

/// "\n=== title ===\n" heading plus the column-aligned ratio table.
class TableSink : public ResultSink {
 public:
  explicit TableSink(std::ostream& os, bool with_heading = true);
  void emit(const Panel& panel, const std::string& slug) override;

 private:
  std::ostream& os_;
  bool with_heading_;
};

/// Terminal chart of every series. Runaway series (e.g. CkptNvr on
/// Genome) are clipped at 3x the median finite ratio so the contenders
/// stay readable; the table sink keeps the exact values.
class AsciiChartSink : public ResultSink {
 public:
  explicit AsciiChartSink(std::ostream& os);
  void emit(const Panel& panel, const std::string& slug) override;

 private:
  std::ostream& os_;
};

/// Writes `<directory>/<slug>.csv`; logs "[csv written to ...]" to `log`
/// when provided. Throws InvalidArgument when the file cannot be opened.
class CsvSink : public ResultSink {
 public:
  explicit CsvSink(std::string directory, std::ostream* log = nullptr);
  void emit(const Panel& panel, const std::string& slug) override;

 private:
  std::string directory_;
  std::ostream* log_;
};

}  // namespace fpsched::engine
