// Pluggable result sinks for engine output — a two-level API.
//
// Level 1: every scenario result streams through the sink as a
// ResultRecord (the full ScenarioSpec provenance plus the outcome), in
// flattened scenario order. Machine-readable sinks (NDJSON, JSON) consume
// records; because each record is a pure function of its spec, the
// record streams of a sharded run concatenate to the bit-identical
// unsharded stream.
//
// Level 2: a Panel is the paper's figure unit — an x grid (task counts,
// failure rates, downtimes or checkpoint-cost parameters, per the grid's
// axis) with one T/T_inf series per policy. Presentation sinks render
// panels — a fixed-width table, an ASCII chart, a CSV file.
// assemble_panel() maps a grid's flattened ScenarioResults back onto
// panel coordinates; sharded runs skip this level (their slice does not
// cover whole panels).
//
// Sinks compose freely: the bench harness stacks table + chart + CSV, the
// fpsched_run driver adds NDJSON/JSON, a future HTTP frontend could
// stream records as they arrive.
#pragma once

#include <functional>
#include <iosfwd>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "engine/engine.hpp"
#include "engine/scenario.hpp"
#include "support/table.hpp"

namespace fpsched::engine {

/// One plotted line: a policy's ratio per x-grid point.
struct PanelSeries {
  std::string name;
  std::vector<double> values;
};

struct Panel {
  std::string title;  // e.g. "CyberShake: lambda=0.001, c=0.1w"
  /// Which grid dimension the xs came from; drives their formatting.
  GridAxis axis = GridAxis::task_count;
  std::string x_label;  // to_string(axis): "number of tasks", "lambda", ...
  std::vector<double> xs;
  std::vector<PanelSeries> series;
};

/// One scenario outcome with its full provenance: which experiment and
/// panel produced it, and the complete ScenarioSpec (inside `result.spec`)
/// that reproduces it. Views borrow from the caller for the duration of
/// the record() call; sinks that buffer must copy what they keep.
struct ResultRecord {
  std::string_view experiment;  // registry name; empty for ad-hoc runs
  std::string_view panel;       // panel slug ("fig2a_cybershake")
  const ScenarioResult& result;
};

/// The record as one JSON object (a single NDJSON line, no trailing
/// newline). Doubles serialize at round-trip precision
/// (max_digits10); non-finite values become the JSON strings "inf" /
/// "-inf" / "nan" since JSON has no literal for them.
std::string to_json(const ResultRecord& record);

/// The two halves of to_json, split so the service's result cache can
/// store the provenance-free tail once and re-head it per request:
/// to_json(record) == record_json_prefix(record.experiment, record.panel)
///                    + record_body_json(record.result), byte for byte.
/// The body starts at the "workflow" field and includes the closing
/// brace; it is a pure function of (spec, math backend) — everything a
/// ResultCacheKey pins down.
std::string record_json_prefix(std::string_view experiment, std::string_view panel);
std::string record_body_json(const ScenarioResult& result);

/// `value` as a quoted JSON string (escapes quotes, backslashes and
/// control characters) — the one escaper every JSON-emitting layer
/// (records, HTTP service) shares.
std::string json_quote(std::string_view value);

/// The panel as a printable/CSV-able table (x column plus one column per
/// series; lambda grids format x with 6 decimals, size grids as integers,
/// downtime/checkpoint-cost grids with 3 decimals). Human tables round
/// ratios to 4 decimals; machine_precision serializes them at
/// round-trip precision (max_digits10) for CSV export.
Table panel_table(const Panel& panel, bool machine_precision = false);

/// Builds the panel of a single-workflow grid from the results of
/// `ExperimentEngine::run(grid)` (same order). The grid must have exactly
/// one workflow kind and at most one value on every non-axis dimension.
Panel assemble_panel(const ScenarioGrid& grid, std::span<const ScenarioResult> results,
                     std::string title);

/// Creates `directory` (and parents) when missing; throws InvalidArgument
/// when the path exists as a non-directory.
void ensure_output_directory(const std::string& directory);

/// Consumes experiment output. Both levels default to no-ops so a sink
/// implements only the granularity it cares about; `slug` is a stable
/// per-panel file stem ("fig2a_cybershake"), which stream sinks ignore.
class ResultSink {
 public:
  virtual ~ResultSink() = default;
  /// Level 1: one scenario result, in flattened scenario order, before
  /// any panel of the run is emitted.
  virtual void record(const ResultRecord& record) { (void)record; }
  /// Level 2: an assembled panel (skipped in sharded runs).
  virtual void emit(const Panel& panel, const std::string& slug) {
    (void)panel;
    (void)slug;
  }
  /// Called once after the run's last record/panel (flush buffers, close
  /// JSON arrays).
  virtual void finish() {}
};

/// "\n=== title ===\n" heading plus the column-aligned ratio table.
class TableSink : public ResultSink {
 public:
  explicit TableSink(std::ostream& os, bool with_heading = true);
  void emit(const Panel& panel, const std::string& slug) override;

 private:
  std::ostream& os_;
  bool with_heading_;
};

/// Terminal chart of every series. Runaway series (e.g. CkptNvr on
/// Genome) are clipped at 3x the median finite ratio so the contenders
/// stay readable; the table sink keeps the exact values.
class AsciiChartSink : public ResultSink {
 public:
  explicit AsciiChartSink(std::ostream& os);
  void emit(const Panel& panel, const std::string& slug) override;

 private:
  std::ostream& os_;
};

/// Writes `<directory>/<slug>.csv` with ratios at round-trip precision;
/// logs "[csv written to ...]" to `log` when provided. Creates the
/// directory on demand; throws InvalidArgument when the path exists as a
/// non-directory or the file cannot be opened.
class CsvSink : public ResultSink {
 public:
  explicit CsvSink(std::string directory, std::ostream* log = nullptr);
  void emit(const Panel& panel, const std::string& slug) override;

 private:
  std::string directory_;
  std::ostream* log_;
};

/// Invokes a callback per record (plus an optional one on finish) — the
/// in-process streaming adapter behind consumers that are not ostreams,
/// e.g. the HTTP service appending NDJSON lines to a live job buffer.
/// The record callback is required; the views inside the ResultRecord
/// only outlive the call if the callback copies what it keeps.
class CallbackSink : public ResultSink {
 public:
  using RecordFn = std::function<void(const ResultRecord&)>;
  using FinishFn = std::function<void()>;

  /// Throws InvalidArgument when `on_record` is empty.
  explicit CallbackSink(RecordFn on_record, FinishFn on_finish = {});
  void record(const ResultRecord& record) override;
  void finish() override;

 private:
  RecordFn on_record_;
  FinishFn on_finish_;
};

/// Streams each record as one JSON object per line (NDJSON).
class NdjsonSink : public ResultSink {
 public:
  explicit NdjsonSink(std::ostream& os);
  void record(const ResultRecord& record) override;

 private:
  std::ostream& os_;
};

/// Buffers records and writes them as one JSON array on finish().
class JsonSink : public ResultSink {
 public:
  explicit JsonSink(std::ostream& os);
  void record(const ResultRecord& record) override;
  void finish() override;

 private:
  std::ostream& os_;
  std::vector<std::string> objects_;
};

}  // namespace fpsched::engine
