// Failure inter-arrival distributions for the simulator.
//
// The paper's model (and the analytic evaluator) assume exponential
// failures. The simulator additionally supports Weibull inter-arrival
// times — the distribution the related work ([14-16, 18]) uses for real
// platforms — as a *robustness* probe: schedules optimized under the
// exponential assumption are executed under a Weibull renewal process
// with the same MTBF (each failure is a renewal point, as in Gelenbe &
// Hernandez). shape < 1 models infant mortality (bursty failures),
// shape > 1 models aging.
#pragma once

#include <string>

#include "support/rng.hpp"

namespace fpsched {

class FaultDistribution {
 public:
  enum class Law { exponential, weibull };

  /// Exponential with rate `lambda` (> 0).
  static FaultDistribution exponential(double lambda);

  /// Weibull with the given shape (> 0) and *mean* inter-arrival time
  /// `mtbf` (> 0); the scale is derived as mtbf / Gamma(1 + 1/shape).
  static FaultDistribution weibull_from_mtbf(double shape, double mtbf);

  /// Weibull from shape and scale directly.
  static FaultDistribution weibull(double shape, double scale);

  Law law() const { return law_; }
  bool is_exponential() const { return law_ == Law::exponential; }

  /// Mean inter-arrival time (the platform MTBF).
  double mean() const;

  /// Samples the uptime gap until the next failure (renewal process).
  double sample_gap(Rng& rng) const;

  std::string describe() const;

 private:
  FaultDistribution(Law law, double a, double b) : law_(law), a_(a), b_(b) {}

  Law law_;
  double a_;  // exponential: rate; weibull: shape
  double b_;  // exponential: unused; weibull: scale
};

}  // namespace fpsched
