// Parallel Monte-Carlo trial aggregation.
#pragma once

#include <cstdint>

#include "sim/simulator.hpp"
#include "support/stats.hpp"

namespace fpsched {

struct TrialOptions {
  std::size_t trials = 10000;
  std::uint64_t seed = 1234;
  /// 0 = default_thread_count(); 1 = serial.
  std::size_t threads = 0;
};

struct MonteCarloSummary {
  RunningStats makespan;
  RunningStats failures;
  RunningStats wasted_time;

  double mean_makespan() const { return makespan.mean(); }
  double ci95() const { return makespan.ci95_halfwidth(); }

  /// True when `value` lies inside the 95% CI of the mean makespan widened
  /// by `slack` standard errors (guards differential tests against rare
  /// statistical flukes).
  bool consistent_with(double value, double slack = 2.0) const;
};

/// Runs independent trials (deterministic: trial t uses rng.fork(t) of a
/// root RNG seeded with options.seed) and merges their statistics.
MonteCarloSummary run_trials(const FaultSimulator& simulator, const TrialOptions& options = {});

/// Same, but injecting failures from an arbitrary renewal process (see
/// FaultSimulator::run_with_distribution).
MonteCarloSummary run_trials_with_distribution(const FaultSimulator& simulator,
                                               const FaultDistribution& faults,
                                               const TrialOptions& options = {});

}  // namespace fpsched
