// Monte-Carlo fault-injection simulator.
//
// Executes a schedule under actual exponential failures, implementing the
// paper's rollback/recovery semantics directly:
//  * memory holds the outputs of tasks completed since the last failure;
//    a failure wipes it entirely; checkpoints persist on stable storage;
//  * before running task i, a recovery plan is built by walking i's
//    predecessors: in-memory outputs are free, checkpointed outputs are
//    reloaded (r_j), lost non-checkpointed outputs are re-executed (w_j,
//    recursively pulling their own inputs);
//  * the plan + the task (+ its checkpoint if scheduled) runs as one
//    fault-interruptible segment; a failure costs the downtime D, wipes
//    memory, and the (rebuilt) plan is retried until it succeeds.
//
// This is the stochastic oracle the paper says would be "prohibitively
// time-consuming" to use for schedule search — which is exactly why it is
// the right independent witness for the analytic evaluator: the test suite
// checks that simulated means match Theorem-3 values within confidence
// intervals.
#pragma once

#include <cstdint>
#include <vector>

#include "core/failure_model.hpp"
#include "core/schedule.hpp"
#include "sim/fault_distribution.hpp"
#include "support/rng.hpp"
#include "workflows/task_graph.hpp"

namespace fpsched {

/// One trace event (recorded only when tracing is enabled).
struct SimEvent {
  enum class Kind : std::uint8_t {
    task_start,       // first attempt of a task's segment
    recovery,         // reloaded a checkpointed predecessor
    reexecution,      // re-ran a lost non-checkpointed predecessor
    task_complete,    // task output now in memory
    checkpoint_done,  // task output now on stable storage
    failure,          // a fault struck (downtime follows)
  };
  Kind kind = Kind::task_start;
  VertexId task = 0;
  double time = 0.0;  // simulation clock at the event
};

std::string to_string(SimEvent::Kind kind);

struct SimResult {
  double makespan = 0.0;
  std::size_t failure_count = 0;
  /// Time spent on recoveries, re-executions, downtime and aborted
  /// attempts — everything beyond the fault-free time of the schedule.
  double wasted_time = 0.0;
  std::vector<SimEvent> trace;  // empty unless tracing was requested
};

/// Simulator for one (graph, model, schedule) triple; `run` draws failures
/// from the provided RNG, so distinct seeds give independent trials.
class FaultSimulator {
 public:
  FaultSimulator(const TaskGraph& graph, FailureModel model, Schedule schedule);

  const Schedule& schedule() const { return schedule_; }

  /// Runs one trial with the model's exponential failures.
  SimResult run(Rng& rng, bool record_trace = false) const;

  /// Runs one trial injecting failures from an arbitrary renewal process
  /// (each failure renews the clock; failures cannot strike during the
  /// downtime). The model's lambda is ignored — only its downtime is used
  /// — which makes this the robustness probe for schedules optimized
  /// under the exponential assumption.
  SimResult run_with_distribution(Rng& rng, const FaultDistribution& faults,
                                  bool record_trace = false) const;

 private:
  SimResult run_impl(Rng& rng, const FaultDistribution* faults, bool record_trace) const;

  const TaskGraph* graph_;
  FailureModel model_;
  Schedule schedule_;
  double fault_free_time_ = 0.0;
};

}  // namespace fpsched
