#include "sim/simulator.hpp"

#include <algorithm>
#include <limits>

#include "support/error.hpp"

namespace fpsched {

std::string to_string(SimEvent::Kind kind) {
  switch (kind) {
    case SimEvent::Kind::task_start: return "start";
    case SimEvent::Kind::recovery: return "recover";
    case SimEvent::Kind::reexecution: return "re-execute";
    case SimEvent::Kind::task_complete: return "complete";
    case SimEvent::Kind::checkpoint_done: return "checkpoint";
    case SimEvent::Kind::failure: return "FAILURE";
  }
  return "?";
}

FaultSimulator::FaultSimulator(const TaskGraph& graph, FailureModel model, Schedule schedule)
    : graph_(&graph), model_(model), schedule_(std::move(schedule)) {
  validate_schedule(graph, schedule_);
  for (VertexId v = 0; v < graph.task_count(); ++v) {
    fault_free_time_ += graph.weight(v);
    if (schedule_.is_checkpointed(v)) fault_free_time_ += graph.ckpt_cost(v);
  }
}

namespace {

/// One fault-interruptible unit of the segment built for a task.
struct Atom {
  SimEvent::Kind kind;  // recovery / reexecution / task_complete / checkpoint_done
  VertexId task;
  double duration;
};

}  // namespace

SimResult FaultSimulator::run(Rng& rng, bool record_trace) const {
  if (model_.failure_free()) return run_impl(rng, nullptr, record_trace);
  const FaultDistribution faults = FaultDistribution::exponential(model_.lambda());
  return run_impl(rng, &faults, record_trace);
}

SimResult FaultSimulator::run_with_distribution(Rng& rng, const FaultDistribution& faults,
                                                bool record_trace) const {
  return run_impl(rng, &faults, record_trace);
}

SimResult FaultSimulator::run_impl(Rng& rng, const FaultDistribution* faults,
                                   bool record_trace) const {
  const Dag& dag = graph_->dag();
  const std::size_t n = graph_->task_count();
  SimResult result;

  std::vector<std::uint8_t> in_memory(n, 0);
  std::vector<std::uint8_t> on_disk(n, 0);
  // Plan-builder DFS state: 0 = unvisited, 1 = expansion pending,
  // 2 = already placed in the plan.
  std::vector<std::uint8_t> mark(n, 0);
  std::vector<Atom> plan;
  double clock = 0.0;

  // Builds the recovery plan for `target` against the current memory /
  // disk state, in dependency order (post-order DFS over lost inputs).
  const auto build_plan = [&](VertexId target) {
    plan.clear();
    std::fill(mark.begin(), mark.end(), 0);
    // Iterative post-order: (vertex, expanded?) pairs.
    std::vector<std::pair<VertexId, bool>> stack;
    for (const VertexId p : dag.predecessors(target)) stack.emplace_back(p, false);
    while (!stack.empty()) {
      const auto [v, expanded] = stack.back();
      stack.pop_back();
      if (expanded) {
        // All inputs of v are planned by now: re-execute v.
        mark[v] = 2;
        plan.push_back({SimEvent::Kind::reexecution, v, graph_->weight(v)});
        continue;
      }
      if (in_memory[v] || mark[v] != 0) continue;
      if (on_disk[v]) {
        mark[v] = 2;
        plan.push_back({SimEvent::Kind::recovery, v, graph_->recovery_cost(v)});
        continue;
      }
      // Lost and not checkpointed: re-execute after its own inputs.
      mark[v] = 1;
      stack.emplace_back(v, true);
      for (const VertexId p : dag.predecessors(v)) stack.emplace_back(p, false);
    }
    plan.push_back({SimEvent::Kind::task_complete, target, graph_->weight(target)});
    if (schedule_.is_checkpointed(target))
      plan.push_back({SimEvent::Kind::checkpoint_done, target, graph_->ckpt_cost(target)});
  };

  const auto emit = [&](SimEvent::Kind kind, VertexId task, double time) {
    if (record_trace) result.trace.push_back({kind, task, time});
  };

  // Failures form a renewal process over platform *uptime*: the next
  // failure is `fault_in` uptime-seconds away, re-sampled only when a
  // failure occurs (each failure is a renewal point; the downtime is not
  // exposed to failures). For the exponential law this is equivalent to
  // per-attempt sampling by memorylessness; for Weibull it is the correct
  // semantics.
  double fault_in =
      faults ? faults->sample_gap(rng) : std::numeric_limits<double>::infinity();

  for (std::size_t i = 0; i < n; ++i) {
    const VertexId v = schedule_.order[i];
    emit(SimEvent::Kind::task_start, v, clock);
    for (;;) {
      build_plan(v);
      double segment = 0.0;
      for (const Atom& atom : plan) segment += atom.duration;
      if (fault_in >= segment) {
        // Fault-free attempt: commit every atom.
        fault_in -= segment;
        for (const Atom& atom : plan) {
          clock += atom.duration;
          emit(atom.kind, atom.task, clock);
          switch (atom.kind) {
            case SimEvent::Kind::recovery:
            case SimEvent::Kind::reexecution:
            case SimEvent::Kind::task_complete: in_memory[atom.task] = 1; break;
            case SimEvent::Kind::checkpoint_done: on_disk[atom.task] = 1; break;
            default: break;
          }
        }
        break;
      }
      // A failure interrupts the segment: lose all memory, pay downtime.
      clock += fault_in;
      emit(SimEvent::Kind::failure, v, clock);
      clock += model_.downtime();
      ++result.failure_count;
      std::fill(in_memory.begin(), in_memory.end(), 0);
      fault_in = faults->sample_gap(rng);
    }
  }

  result.makespan = clock;
  result.wasted_time = clock - fault_free_time_;
  return result;
}

}  // namespace fpsched
