#include "sim/fault_distribution.hpp"

#include <cmath>

#include "support/error.hpp"
#include "support/table.hpp"

namespace fpsched {

FaultDistribution FaultDistribution::exponential(double lambda) {
  ensure(lambda > 0.0, "exponential fault law requires lambda > 0");
  return FaultDistribution(Law::exponential, lambda, 0.0);
}

FaultDistribution FaultDistribution::weibull(double shape, double scale) {
  ensure(shape > 0.0 && scale > 0.0, "weibull fault law requires positive shape and scale");
  return FaultDistribution(Law::weibull, shape, scale);
}

FaultDistribution FaultDistribution::weibull_from_mtbf(double shape, double mtbf) {
  ensure(shape > 0.0 && mtbf > 0.0, "weibull fault law requires positive shape and MTBF");
  const double scale = mtbf / std::tgamma(1.0 + 1.0 / shape);
  return FaultDistribution(Law::weibull, shape, scale);
}

double FaultDistribution::mean() const {
  switch (law_) {
    case Law::exponential: return 1.0 / a_;
    case Law::weibull: return b_ * std::tgamma(1.0 + 1.0 / a_);
  }
  return 0.0;
}

double FaultDistribution::sample_gap(Rng& rng) const {
  switch (law_) {
    case Law::exponential: return rng.exponential(a_);
    case Law::weibull: {
      // Inverse CDF: scale * (-ln(1-U))^{1/shape}.
      const double u = rng.uniform();
      return b_ * std::pow(-std::log1p(-u), 1.0 / a_);
    }
  }
  return 0.0;
}

std::string FaultDistribution::describe() const {
  switch (law_) {
    case Law::exponential: return "exponential(lambda=" + format_double(a_, 6) + ")";
    case Law::weibull:
      return "weibull(shape=" + format_double(a_, 3) + ", scale=" + format_double(b_, 3) + ")";
  }
  return "?";
}

}  // namespace fpsched
