#include "sim/trial_runner.hpp"

#include <cmath>
#include <mutex>
#include <vector>

#include "support/env.hpp"
#include "support/threading.hpp"

namespace fpsched {

bool MonteCarloSummary::consistent_with(double value, double slack) const {
  const double half = makespan.ci95_halfwidth() + slack * makespan.standard_error();
  return std::fabs(value - makespan.mean()) <= half;
}

namespace {

MonteCarloSummary run_trials_impl(const FaultSimulator& simulator,
                                  const FaultDistribution* faults, const TrialOptions& options) {
  const std::size_t worker_count =
      options.threads == 0 ? default_thread_count() : options.threads;
  const Rng root(options.seed);

  std::vector<MonteCarloSummary> partial(std::max<std::size_t>(worker_count, 1));
  parallel_for_workers(
      0, options.trials,
      [&](std::size_t trial, std::size_t worker) {
        Rng rng = root.fork(trial);
        const SimResult result =
            faults ? simulator.run_with_distribution(rng, *faults) : simulator.run(rng);
        partial[worker].makespan.push(result.makespan);
        partial[worker].failures.push(static_cast<double>(result.failure_count));
        partial[worker].wasted_time.push(result.wasted_time);
      },
      worker_count);

  MonteCarloSummary merged;
  for (const MonteCarloSummary& p : partial) {
    merged.makespan.merge(p.makespan);
    merged.failures.merge(p.failures);
    merged.wasted_time.merge(p.wasted_time);
  }
  return merged;
}

}  // namespace

MonteCarloSummary run_trials(const FaultSimulator& simulator, const TrialOptions& options) {
  return run_trials_impl(simulator, nullptr, options);
}

MonteCarloSummary run_trials_with_distribution(const FaultSimulator& simulator,
                                               const FaultDistribution& faults,
                                               const TrialOptions& options) {
  return run_trials_impl(simulator, &faults, options);
}

}  // namespace fpsched
