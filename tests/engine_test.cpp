// Engine equivalence and determinism suite.
//
// The refactor contract: an engine-driven grid must produce numerically
// identical ratios to direct serial run_heuristic calls, at 1 thread and
// at >= 4 threads, and two engine runs with different thread counts must
// agree bit for bit. The serial reference below is the pre-engine bench
// path (generate instance with seed + size, linearize, sweep, evaluate).
#include "engine/engine.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "core/evaluator.hpp"
#include "engine/scenario.hpp"
#include "heuristics/heuristic.hpp"
#include "support/error.hpp"
#include "workflows/generator.hpp"

namespace fpsched::engine {
namespace {

/// The pre-engine serial instance path: seed + size, cost model applied.
TaskGraph serial_instance(WorkflowKind kind, std::size_t size, const ScenarioGrid& grid) {
  GeneratorConfig config;
  config.task_count = size;
  config.seed = grid.seed + size;
  config.weight_cv = grid.weight_cv;
  config.cost_model = grid.cost_model;
  return generate_workflow(kind, config);
}

/// The pre-engine serial ratio path (bench_common::heuristic_ratio).
double serial_ratio(const ScheduleEvaluator& evaluator, const HeuristicSpec& spec,
                    std::size_t stride) {
  HeuristicOptions options;
  options.sweep.stride = stride;
  return run_heuristic(evaluator, spec, options).evaluation.ratio;
}

/// The pre-engine serial best-linearization path
/// (bench_common::best_linearization_ratio).
double serial_best_lin_ratio(const ScheduleEvaluator& evaluator, CkptStrategy strategy,
                             std::size_t stride) {
  if (!is_budgeted(strategy)) {
    return serial_ratio(evaluator, {LinearizeMethod::depth_first, strategy}, stride);
  }
  double best = std::numeric_limits<double>::infinity();
  for (const LinearizeMethod lin : all_linearize_methods()) {
    best = std::min(best, serial_ratio(evaluator, {lin, strategy}, stride));
  }
  return best;
}

/// A small Figure-2 grid: fixed BF/DF/RF x CkptW/CkptC series.
ScenarioGrid small_fig2_grid() {
  ScenarioGrid grid;
  grid.workflows = {WorkflowKind::cybershake};
  grid.sizes = {50, 80};
  grid.lambdas = {1e-3};
  grid.cost_model = CostModel::proportional(0.1);
  grid.stride = 8;
  for (const LinearizeMethod lin : all_linearize_methods()) {
    for (const CkptStrategy strategy : {CkptStrategy::by_weight, CkptStrategy::by_cost}) {
      grid.policies.push_back(ScenarioPolicy::fixed({lin, strategy}));
    }
  }
  return grid;
}

/// A small Figure-3 grid: every strategy at its best linearization.
ScenarioGrid small_fig3_grid() {
  ScenarioGrid grid;
  grid.workflows = {WorkflowKind::montage};
  grid.sizes = {60};
  grid.lambdas = {1e-3};
  grid.cost_model = CostModel::proportional(0.1);
  grid.stride = 8;
  for (const CkptStrategy strategy : all_ckpt_strategies()) {
    grid.policies.push_back(ScenarioPolicy::best_lin(strategy));
  }
  return grid;
}

TEST(ScenarioGridTest, EnumerateIsTheDeclaredCrossProduct) {
  const ScenarioGrid grid = small_fig2_grid();
  const std::vector<ScenarioSpec> specs = grid.enumerate();
  ASSERT_EQ(specs.size(), grid.scenario_count());
  ASSERT_EQ(specs.size(), 2u * 6u);
  // Order: size-major, policy-minor; scenario_index = flat position.
  EXPECT_EQ(specs[0].task_count, 50u);
  EXPECT_EQ(specs[6].task_count, 80u);
  EXPECT_EQ(specs[3].policy.name(), "BF-CkptC");
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(specs[i].scenario_index, i);
    EXPECT_EQ(specs[i].stride, 8u);
    EXPECT_DOUBLE_EQ(specs[i].model.lambda(), 1e-3);
  }
}

TEST(ScenarioGridTest, EmptyLambdaListUsesPaperLambda) {
  ScenarioGrid grid;
  grid.workflows = {WorkflowKind::genome, WorkflowKind::ligo};
  grid.sizes = {50};
  grid.policies = {ScenarioPolicy::fixed({LinearizeMethod::depth_first, CkptStrategy::never})};
  const auto specs = grid.enumerate();
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_DOUBLE_EQ(specs[0].model.lambda(), paper_lambda(WorkflowKind::genome));
  EXPECT_DOUBLE_EQ(specs[1].model.lambda(), paper_lambda(WorkflowKind::ligo));
}

TEST(ScenarioGridTest, MalformedGridsAreRejected) {
  ScenarioGrid grid = small_fig2_grid();
  grid.stride = 0;  // would loop forever on the budget grid
  EXPECT_THROW(grid.enumerate(), Error);

  ScenarioGrid no_policies = small_fig2_grid();
  no_policies.policies.clear();
  EXPECT_THROW(no_policies.enumerate(), Error);

  ScenarioGrid lambda_axis = small_fig2_grid();
  lambda_axis.axis = GridAxis::lambda;
  lambda_axis.lambdas.clear();
  // An empty axis list would enumerate one implicit point — a degenerate
  // one-point "sweep" — and must be rejected, not silently accepted.
  EXPECT_THROW(lambda_axis.enumerate(), Error);

  ScenarioGrid downtime_axis = small_fig2_grid();
  downtime_axis.axis = GridAxis::downtime;
  EXPECT_THROW(downtime_axis.enumerate(), Error);  // empty downtime list

  ScenarioGrid cost_axis = small_fig2_grid();
  cost_axis.axis = GridAxis::checkpoint_cost;
  EXPECT_THROW(cost_axis.enumerate(), Error);  // empty cost-model list
}

TEST(ScenarioGridTest, DowntimeAndCostModelDimensionsEnumerate) {
  ScenarioGrid grid = small_fig3_grid();
  grid.downtimes = {0.0, 120.0};
  grid.cost_models = {CostModel::proportional(0.01), CostModel::proportional(0.1),
                      CostModel::constant(5.0)};
  const auto specs = grid.enumerate();
  ASSERT_EQ(specs.size(), grid.scenario_count());
  ASSERT_EQ(specs.size(), 1u * 1u * 2u * 3u * grid.policies.size());
  // Nesting order: downtime outer, cost model inner, policy innermost.
  EXPECT_DOUBLE_EQ(specs[0].model.downtime(), 0.0);
  EXPECT_TRUE(specs[0].cost_model == CostModel::proportional(0.01));
  EXPECT_TRUE(specs[grid.policies.size()].cost_model == CostModel::proportional(0.1));
  EXPECT_DOUBLE_EQ(specs[3 * grid.policies.size()].model.downtime(), 120.0);
  for (std::size_t i = 0; i < specs.size(); ++i) EXPECT_EQ(specs[i].scenario_index, i);
}

TEST(SweepOptionsTest, ZeroStrideIsRejected) {
  SweepOptions options;
  options.stride = 0;
  EXPECT_THROW(options.validate(), Error);

  const TaskGraph graph = serial_instance(WorkflowKind::montage, 50, ScenarioGrid{});
  const ScheduleEvaluator evaluator(graph, FailureModel(1e-3, 0.0));
  const auto order = linearize(graph.dag(), graph.weights(), LinearizeMethod::depth_first);
  EXPECT_THROW(sweep_checkpoint_budget(evaluator, order, CkptStrategy::by_weight, options), Error);
}

TEST(SweepOptionsTest, CallerWorkspaceMatchesPooledSweep) {
  const TaskGraph graph = serial_instance(WorkflowKind::ligo, 60, ScenarioGrid{});
  const ScheduleEvaluator evaluator(graph, FailureModel(1e-3, 0.0));
  const auto order = linearize(graph.dag(), graph.weights(), LinearizeMethod::depth_first);

  SweepOptions serial;
  serial.threads = 1;
  EvaluatorWorkspace ws;
  serial.workspace = &ws;
  const SweepResult reused = sweep_checkpoint_budget(evaluator, order, CkptStrategy::by_weight,
                                                     serial);
  const SweepResult pooled = sweep_checkpoint_budget(evaluator, order, CkptStrategy::by_weight,
                                                     {.threads = 4});
  EXPECT_EQ(reused.best_budget, pooled.best_budget);
  EXPECT_EQ(reused.best_expected_makespan, pooled.best_expected_makespan);
  ASSERT_EQ(reused.curve.size(), pooled.curve.size());
  for (std::size_t i = 0; i < reused.curve.size(); ++i) {
    EXPECT_EQ(reused.curve[i].expected_makespan, pooled.curve[i].expected_makespan);
  }
}

TEST(ExperimentEngineTest, Fig2GridMatchesSerialRatiosAtOneAndManyThreads) {
  const ScenarioGrid grid = small_fig2_grid();
  const std::vector<ScenarioSpec> specs = grid.enumerate();

  // Direct serial reference, one evaluator per size as the benches did it.
  std::vector<double> expected;
  for (const std::size_t size : grid.sizes) {
    const TaskGraph graph = serial_instance(WorkflowKind::cybershake, size, grid);
    const ScheduleEvaluator evaluator(graph, FailureModel(1e-3, 0.0));
    for (const ScenarioPolicy& policy : grid.policies) {
      expected.push_back(serial_ratio(evaluator, policy.heuristic, grid.stride));
    }
  }

  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    const ExperimentEngine engine({.threads = threads});
    const std::vector<ScenarioResult> results = engine.run(specs);
    ASSERT_EQ(results.size(), expected.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
      // Bit-for-bit: the engine runs the same arithmetic in the same order.
      EXPECT_EQ(results[i].ratio(), expected[i])
          << "threads=" << threads << " scenario=" << specs[i].label();
    }
  }
}

TEST(ExperimentEngineTest, Fig3GridMatchesSerialBestLinearizationRatios) {
  const ScenarioGrid grid = small_fig3_grid();
  const std::vector<ScenarioSpec> specs = grid.enumerate();

  const TaskGraph graph = serial_instance(WorkflowKind::montage, 60, grid);
  const ScheduleEvaluator evaluator(graph, FailureModel(1e-3, 0.0));
  std::vector<double> expected;
  for (const ScenarioPolicy& policy : grid.policies) {
    expected.push_back(serial_best_lin_ratio(evaluator, policy.strategy, grid.stride));
  }

  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    const ExperimentEngine engine({.threads = threads});
    const std::vector<ScenarioResult> results = engine.run(specs);
    ASSERT_EQ(results.size(), expected.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
      EXPECT_EQ(results[i].ratio(), expected[i]) << specs[i].label();
    }
  }
}

TEST(ExperimentEngineTest, ThreadCountDoesNotChangeAnyBit) {
  ScenarioGrid grid = small_fig3_grid();
  grid.sizes = {50, 70};
  const std::vector<ScenarioSpec> specs = grid.enumerate();

  const ExperimentEngine serial({.threads = 1});
  const ExperimentEngine sharded({.threads = 5});
  EXPECT_EQ(serial.thread_count(), 1u);
  EXPECT_EQ(sharded.thread_count(), 5u);

  const std::vector<ScenarioResult> a = serial.run(specs);
  const std::vector<ScenarioResult> b = sharded.run(specs);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].evaluation.expected_makespan, b[i].evaluation.expected_makespan);
    EXPECT_EQ(a[i].evaluation.ratio, b[i].evaluation.ratio);
    EXPECT_EQ(a[i].evaluation.fault_free_time, b[i].evaluation.fault_free_time);
    EXPECT_EQ(a[i].evaluation.checkpoint_count, b[i].evaluation.checkpoint_count);
    EXPECT_EQ(a[i].linearization, b[i].linearization);
    EXPECT_EQ(a[i].best_budget, b[i].best_budget);
  }
}

TEST(ExperimentEngineTest, ResultCallbackDeliversEveryResultInInputOrder) {
  ScenarioGrid grid = small_fig3_grid();
  grid.sizes = {50, 70};
  const std::vector<ScenarioSpec> specs = grid.enumerate();
  for (const std::size_t threads : {1u, 4u}) {
    const ExperimentEngine engine({.threads = threads});
    std::vector<double> streamed;  // ratio per delivery, in delivery order
    const std::vector<ScenarioResult> results =
        engine.run(specs, [&](std::size_t index, const ScenarioResult& result) {
          // Strictly ordered: delivery i carries input index i, even
          // when workers finish out of order.
          EXPECT_EQ(index, streamed.size());
          EXPECT_EQ(result.spec.scenario_index, specs[index].scenario_index);
          streamed.push_back(result.evaluation.ratio);
        });
    ASSERT_EQ(streamed.size(), results.size()) << threads << " threads";
    for (std::size_t i = 0; i < results.size(); ++i) {
      EXPECT_EQ(streamed[i], results[i].evaluation.ratio) << threads << " threads";
    }
  }
}

TEST(ExperimentEngineTest, RunHeuristicsMatchesSerialRunner) {
  const TaskGraph graph = serial_instance(WorkflowKind::cybershake, 70, ScenarioGrid{});
  const ScheduleEvaluator evaluator(graph, FailureModel(1e-3, 0.0));
  HeuristicOptions options;
  options.sweep.stride = 4;

  const std::vector<HeuristicResult> serial =
      fpsched::run_heuristics(evaluator, all_heuristics(), options);
  const ExperimentEngine engine({.threads = 4});
  const std::vector<HeuristicResult> sharded =
      engine.run_heuristics(evaluator, all_heuristics(), options);

  ASSERT_EQ(serial.size(), sharded.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].spec.name(), sharded[i].spec.name());
    EXPECT_EQ(serial[i].evaluation.expected_makespan, sharded[i].evaluation.expected_makespan);
    EXPECT_EQ(serial[i].best_budget, sharded[i].best_budget);
    EXPECT_EQ(serial[i].schedule.checkpointed, sharded[i].schedule.checkpointed);
  }
}

TEST(ExperimentEngineTest, ForEachVisitsEveryIndexOnce) {
  const ExperimentEngine engine({.threads = 3});
  std::vector<int> visits(100, 0);
  engine.for_each(visits.size(),
                  [&](std::size_t i, EvaluatorWorkspace&) { visits[i] += 1; });
  for (const int v : visits) EXPECT_EQ(v, 1);
}

TEST(InstanceKeyTest, ExcludesFailureCostModelAndPolicyFields) {
  const ScenarioGrid grid = small_fig2_grid();
  ScenarioSpec spec = grid.enumerate().front();
  const InstanceKey key = InstanceKey::of(spec);

  // Fields that do NOT change the instance: failure model, cost model,
  // policy, stride, grid position.
  ScenarioSpec same = spec;
  same.model = FailureModel(9e-2, 3600.0);
  same.cost_model = CostModel::constant(7.0);
  same.policy = ScenarioPolicy::best_lin(CkptStrategy::periodic);
  same.stride = 17;
  same.scenario_index = 999;
  EXPECT_TRUE(InstanceKey::of(same) == key);

  // Fields that DO change the generated graph or the linearizations.
  ScenarioSpec other = spec;
  other.workflow = WorkflowKind::genome;
  EXPECT_FALSE(InstanceKey::of(other) == key);
  other = spec;
  other.task_count += 10;
  EXPECT_FALSE(InstanceKey::of(other) == key);
  other = spec;
  other.workflow_seed += 1;
  EXPECT_FALSE(InstanceKey::of(other) == key);
  other = spec;
  other.weight_cv = 0.5;
  EXPECT_FALSE(InstanceKey::of(other) == key);
  other = spec;
  other.linearize.seed += 1;
  EXPECT_FALSE(InstanceKey::of(other) == key);
  other = spec;
  other.linearize.outweight = OutweightMode::descendants;
  EXPECT_FALSE(InstanceKey::of(other) == key);
}

TEST(InstanceCacheTest, ReplaysGraphAndOrdersAcrossCostModels) {
  const ScenarioGrid grid = small_fig2_grid();
  ScenarioSpec spec = grid.enumerate().front();
  InstanceCache cache(spec);

  const TaskGraph direct = spec.instantiate();
  const TaskGraph& cached = cache.graph_for(spec.cost_model);
  ASSERT_EQ(cached.task_count(), direct.task_count());
  for (VertexId v = 0; v < direct.task_count(); ++v) {
    EXPECT_EQ(cached.weight(v), direct.weight(v));
    EXPECT_EQ(cached.ckpt_cost(v), direct.ckpt_cost(v));
  }

  // Switching the cost model matches a from-scratch generation bit for bit.
  ScenarioSpec constant_spec = spec;
  constant_spec.cost_model = CostModel::constant(3.0);
  const TaskGraph direct_constant = constant_spec.instantiate();
  const TaskGraph& cached_constant = cache.graph_for(constant_spec.cost_model);
  for (VertexId v = 0; v < direct_constant.task_count(); ++v) {
    EXPECT_EQ(cached_constant.weight(v), direct_constant.weight(v));
    EXPECT_EQ(cached_constant.ckpt_cost(v), direct_constant.ckpt_cost(v));
    EXPECT_EQ(cached_constant.recovery_cost(v), direct_constant.recovery_cost(v));
  }

  // Memoized linearizations equal fresh ones (weights are cost independent).
  for (const LinearizeMethod method : all_linearize_methods()) {
    const auto fresh = linearize(direct.dag(), direct.weights(), method, spec.linearize);
    const VertexId* first_call_data = cache.order(method).data();
    EXPECT_EQ(cache.order(method), fresh) << to_string(method);
    // Memoized: a recomputation would allocate a new buffer while the old
    // one is still alive, so repeated calls must return the same storage.
    EXPECT_EQ(cache.order(method).data(), first_call_data) << to_string(method);
  }
}

TEST(ExperimentEngineTest, InstanceCachePathMatchesUncachedBitForBit) {
  // A grid that stresses sharing: several policies, lambdas, downtimes and
  // cost models all mapping onto the same two instances.
  ScenarioGrid grid = small_fig3_grid();
  grid.sizes = {50, 60};
  grid.lambdas = {1e-3, 5e-3};
  grid.downtimes = {0.0, 300.0};
  grid.cost_models = {CostModel::proportional(0.1), CostModel::constant(2.0)};
  const std::vector<ScenarioSpec> specs = grid.enumerate();

  const ExperimentEngine reference({.threads = 1, .instance_cache = false});
  const std::vector<ScenarioResult> expected = reference.run(specs);

  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    for (const bool cache : {true, false}) {
      const ExperimentEngine engine({.threads = threads, .instance_cache = cache});
      const std::vector<ScenarioResult> results = engine.run(specs);
      ASSERT_EQ(results.size(), expected.size());
      for (std::size_t i = 0; i < results.size(); ++i) {
        EXPECT_EQ(results[i].evaluation.expected_makespan,
                  expected[i].evaluation.expected_makespan)
            << "threads=" << threads << " cache=" << cache << " " << specs[i].label();
        EXPECT_EQ(results[i].evaluation.ratio, expected[i].evaluation.ratio);
        EXPECT_EQ(results[i].evaluation.fault_free_time, expected[i].evaluation.fault_free_time);
        EXPECT_EQ(results[i].evaluation.checkpoint_count,
                  expected[i].evaluation.checkpoint_count);
        EXPECT_EQ(results[i].linearization, expected[i].linearization);
        EXPECT_EQ(results[i].best_budget, expected[i].best_budget);
      }
    }
  }
}

TEST(ExperimentEngineTest, CachedRunScenarioRejectsMismatchedCache) {
  const ScenarioGrid grid = small_fig2_grid();
  const auto specs = grid.enumerate();
  InstanceCache cache(specs.front());
  ScenarioSpec other = specs.front();
  other.workflow_seed += 1;  // different instance
  const ExperimentEngine engine({.threads = 1});
  EXPECT_THROW(engine.run_scenario(other, cache), Error);
}

TEST(ExperimentEngineTest, ScenarioRngIsPerIndexDeterministic) {
  const ScenarioGrid grid = small_fig2_grid();
  const auto specs = grid.enumerate();
  Rng a = specs[0].rng();
  Rng b = specs[1].rng();
  Rng a_again = grid.enumerate()[0].rng();
  EXPECT_NE(a(), b());  // independent streams
  Rng a2 = specs[0].rng();
  EXPECT_EQ(a2(), a_again());  // reproducible
}

}  // namespace
}  // namespace fpsched::engine
