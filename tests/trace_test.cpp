// Trace-export suite: RAII spans across threads must render to a
// well-formed chrome://tracing JSON document, spans while tracing is off
// must cost nothing and record nothing, and start_tracing must reset the
// buffers so consecutive traced runs do not bleed into each other.
//
// Tracing state is process-global, so the tests serialize through a
// single suite (gtest runs tests in one thread) and always leave tracing
// stopped.
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace fpsched::obs {
namespace {

std::size_t count_occurrences(const std::string& text, const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t at = text.find(needle); at != std::string::npos;
       at = text.find(needle, at + needle.size())) {
    ++count;
  }
  return count;
}

TEST(TraceTest, DisabledSpansRecordNothingAndSkipNameConstruction) {
  ASSERT_FALSE(tracing_enabled());
  int name_calls = 0;
  {
    const TraceSpan literal("never recorded");
    const TraceSpan lazy([&] {
      ++name_calls;
      return std::string("expensive name");
    });
  }
  EXPECT_EQ(name_calls, 0);  // the lazy-name form must not pay when off
  start_tracing();
  stop_tracing();
  EXPECT_EQ(trace_json(), "{\"traceEvents\":[]}\n");
}

TEST(TraceTest, MultithreadedSpansExportWellFormedJson) {
  start_tracing();
  {
    const TraceSpan outer("outer \"quoted\" span");
    constexpr int kThreads = 3;
    constexpr int kSpansPerThread = 4;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([t] {
        for (int i = 0; i < kSpansPerThread; ++i) {
          const TraceSpan span(
              [&] { return "worker " + std::to_string(t) + " op " + std::to_string(i); });
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
  }
  stop_tracing();
  const std::string json = trace_json();

  EXPECT_TRUE(json.starts_with("{\"traceEvents\":["));
  EXPECT_TRUE(json.ends_with("]}\n"));
  // One complete event per span: 3 threads x 4 spans + the outer one.
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"X\""), 13u);
  EXPECT_EQ(count_occurrences(json, "\"cat\":\"fpsched\""), 13u);
  EXPECT_EQ(count_occurrences(json, "\"pid\":1"), 13u);
  // Quotes inside span names must arrive escaped.
  EXPECT_NE(json.find("outer \\\"quoted\\\" span"), std::string::npos);
  EXPECT_NE(json.find("worker 0 op 3"), std::string::npos);
  // Balanced braces/brackets — the cheap well-formedness invariant the
  // CI leg re-checks with a real JSON parser.
  EXPECT_EQ(count_occurrences(json, "{"), count_occurrences(json, "}"));
  EXPECT_EQ(count_occurrences(json, "["), count_occurrences(json, "]"));
}

TEST(TraceTest, StartTracingResetsPriorEvents) {
  start_tracing();
  { const TraceSpan span("from the first run"); }
  stop_tracing();
  ASSERT_NE(trace_json().find("from the first run"), std::string::npos);

  start_tracing();
  { const TraceSpan span("from the second run"); }
  stop_tracing();
  const std::string json = trace_json();
  EXPECT_EQ(json.find("from the first run"), std::string::npos);
  EXPECT_NE(json.find("from the second run"), std::string::npos);
}

TEST(TraceTest, SpansOpenAcrossStopAreDropped) {
  start_tracing();
  {
    const TraceSpan span("open when tracing stopped");
    stop_tracing();
  }
  EXPECT_EQ(trace_json().find("open when tracing stopped"), std::string::npos);
}

}  // namespace
}  // namespace fpsched::obs
