// Unit tests of the fault-injection simulator's mechanics (semantics,
// traces, determinism); statistical agreement with the analytic evaluator
// is covered by mc_cross_validation_test.cpp.
#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/evaluator.hpp"
#include "sim/trial_runner.hpp"
#include "support/error.hpp"
#include "test_util.hpp"
#include "workflows/synthetic.hpp"

namespace fpsched {
namespace {

using testing::topo_schedule;
using testing::topo_schedule_with_ckpts;

TEST(Simulator, FailureFreeRunEqualsFaultFreeTime) {
  TaskGraph graph = make_fork_join(2, 3, 10.0);
  graph.apply_cost_model(CostModel::constant(2.0));
  Schedule schedule = topo_schedule(graph);
  schedule.checkpointed[0] = 1;
  schedule.checkpointed[3] = 1;
  const FaultSimulator sim(graph, FailureModel(0.0, 0.0), schedule);
  Rng rng(1);
  const SimResult result = sim.run(rng);
  EXPECT_DOUBLE_EQ(result.makespan, graph.total_weight() + 4.0);
  EXPECT_EQ(result.failure_count, 0u);
  EXPECT_DOUBLE_EQ(result.wasted_time, 0.0);
}

TEST(Simulator, DeterministicGivenSeed) {
  TaskGraph graph = make_paper_figure1(10.0);
  graph.apply_cost_model(CostModel::proportional(0.1));
  const Schedule schedule({0, 3, 1, 2, 4, 5, 6, 7}, {0, 0, 0, 1, 1, 0, 0, 0});
  const FaultSimulator sim(graph, FailureModel(0.01, 1.0), schedule);
  Rng rng1(77);
  Rng rng2(77);
  const SimResult a = sim.run(rng1);
  const SimResult b = sim.run(rng2);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.failure_count, b.failure_count);
}

TEST(Simulator, MakespanAlwaysAtLeastFaultFree) {
  TaskGraph graph = make_layered_random({.task_count = 20, .seed = 5});
  graph.apply_cost_model(CostModel::proportional(0.1));
  Schedule schedule = topo_schedule(graph);
  for (VertexId v = 0; v < graph.task_count(); v += 2) schedule.checkpointed[v] = 1;
  double fault_free = graph.total_weight();
  for (VertexId v = 0; v < graph.task_count(); ++v)
    if (schedule.is_checkpointed(v)) fault_free += graph.ckpt_cost(v);
  const FaultSimulator sim(graph, FailureModel(0.02, 2.0), schedule);
  Rng rng(9);
  for (int trial = 0; trial < 50; ++trial) {
    const SimResult result = sim.run(rng);
    EXPECT_GE(result.makespan, fault_free - 1e-9);
    EXPECT_GE(result.wasted_time, -1e-9);
    if (result.failure_count == 0) {
      EXPECT_NEAR(result.makespan, fault_free, 1e-9);
    }
  }
}

TEST(Simulator, TraceAccountsForEveryTask) {
  TaskGraph graph = make_paper_figure1(10.0);
  graph.apply_cost_model(CostModel::proportional(0.1));
  const Schedule schedule({0, 3, 1, 2, 4, 5, 6, 7}, {0, 0, 0, 1, 1, 0, 0, 0});
  const FaultSimulator sim(graph, FailureModel(0.005, 1.0), schedule);
  Rng rng(123);
  const SimResult result = sim.run(rng, /*record_trace=*/true);
  ASSERT_FALSE(result.trace.empty());

  // Times are non-decreasing; every task completes exactly once (a
  // re-execution is not a completion) and the final event closes the run.
  double previous = 0.0;
  std::size_t completions = 0;
  std::size_t failures = 0;
  for (const SimEvent& event : result.trace) {
    EXPECT_GE(event.time, previous - 1e-12);
    previous = event.time;
    if (event.kind == SimEvent::Kind::task_complete) ++completions;
    if (event.kind == SimEvent::Kind::failure) ++failures;
  }
  EXPECT_EQ(completions, graph.task_count());
  EXPECT_EQ(failures, result.failure_count);
  EXPECT_NEAR(result.trace.back().time, result.makespan, 1e-9);
}

TEST(Simulator, CheckpointShieldsPredecessorsFromReexecution) {
  // Chain a -> b -> c with b checkpointed: once b's checkpoint is taken, a
  // failure during c must never re-execute a or b, only recover b.
  TaskGraph graph = make_uniform_chain(3, 50.0);
  graph.apply_cost_model(CostModel::constant(1.0));
  const Schedule schedule = topo_schedule_with_ckpts(graph, {1});
  const FaultSimulator sim(graph, FailureModel(0.01, 0.0), schedule);
  Rng rng(31);
  for (int trial = 0; trial < 200; ++trial) {
    const SimResult result = sim.run(rng, /*record_trace=*/true);
    bool ckpt_done = false;
    for (const SimEvent& event : result.trace) {
      if (event.kind == SimEvent::Kind::checkpoint_done && event.task == 1) ckpt_done = true;
      if (!ckpt_done) continue;
      EXPECT_NE(event.kind, SimEvent::Kind::reexecution)
          << "task " << event.task << " re-executed after the checkpoint";
      if (event.kind == SimEvent::Kind::recovery) {
        EXPECT_EQ(event.task, 1u);
      }
    }
  }
}

TEST(Simulator, WithoutCheckpointsAFailureRestartsFromEntryTasks) {
  // Chain without checkpoints: a failure during a later task forces the
  // whole prefix to be re-executed (visible as reexecution events).
  const TaskGraph graph = make_uniform_chain(4, 25.0);
  const Schedule schedule = topo_schedule(graph);
  const FaultSimulator sim(graph, FailureModel(0.01, 0.0), schedule);
  Rng rng(7);
  bool saw_reexecution = false;
  for (int trial = 0; trial < 200 && !saw_reexecution; ++trial) {
    const SimResult result = sim.run(rng, /*record_trace=*/true);
    for (const SimEvent& event : result.trace) {
      if (event.kind == SimEvent::Kind::reexecution) {
        saw_reexecution = true;
        break;
      }
    }
  }
  EXPECT_TRUE(saw_reexecution);
}

TEST(Simulator, DowntimeIsChargedPerFailure) {
  // Makespan must cover failures * downtime plus all the real work.
  const TaskGraph graph = make_uniform_chain(5, 40.0);
  const Schedule schedule = topo_schedule(graph);
  const double downtime = 500.0;
  const FaultSimulator sim(graph, FailureModel(0.01, downtime), schedule);
  Rng rng(15);
  for (int trial = 0; trial < 20; ++trial) {
    const SimResult result = sim.run(rng);
    EXPECT_GE(result.makespan,
              static_cast<double>(result.failure_count) * downtime + graph.total_weight() - 1e-9);
  }
}

TEST(Simulator, RejectsInvalidSchedule) {
  const TaskGraph graph = make_uniform_chain(3, 1.0);
  EXPECT_THROW(FaultSimulator(graph, FailureModel(0.1, 0.0), Schedule({2, 1, 0}, {0, 0, 0})),
               ScheduleError);
}

TEST(TrialRunner, MergesTrialsDeterministically) {
  TaskGraph graph = make_paper_figure1(10.0);
  graph.apply_cost_model(CostModel::proportional(0.1));
  const Schedule schedule({0, 3, 1, 2, 4, 5, 6, 7}, {0, 0, 0, 1, 1, 0, 0, 0});
  const FaultSimulator sim(graph, FailureModel(0.005, 1.0), schedule);
  const MonteCarloSummary serial = run_trials(sim, {.trials = 500, .seed = 42, .threads = 1});
  const MonteCarloSummary parallel = run_trials(sim, {.trials = 500, .seed = 42, .threads = 4});
  EXPECT_EQ(serial.makespan.count(), 500u);
  EXPECT_EQ(parallel.makespan.count(), 500u);
  // Same trial set, different partitioning: identical means (up to merge
  // rounding).
  EXPECT_NEAR(serial.mean_makespan(), parallel.mean_makespan(), 1e-7);
}

}  // namespace
}  // namespace fpsched
