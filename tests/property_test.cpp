// Cross-cutting property tests over randomized inputs: invariants the
// model must satisfy regardless of DAG shape, schedule, or parameters.
#include <gtest/gtest.h>

#include <cmath>

#include "core/evaluator.hpp"
#include "dag/linearize.hpp"
#include "dag/traversal.hpp"
#include "support/rng.hpp"
#include "test_util.hpp"
#include "workflows/generator.hpp"
#include "workflows/synthetic.hpp"

namespace fpsched {
namespace {

struct PropertyCase {
  std::uint64_t seed;
  std::size_t tasks;
  std::size_t layers;
};

class RandomDagProperties : public ::testing::TestWithParam<PropertyCase> {
 protected:
  TaskGraph make_graph() const {
    TaskGraph graph = make_layered_random({.task_count = GetParam().tasks,
                                           .layer_count = GetParam().layers,
                                           .edge_probability = 0.3,
                                           .mean_weight = 12.0,
                                           .weight_cv = 0.7,
                                           .seed = GetParam().seed});
    graph.apply_cost_model(CostModel::proportional(0.1));
    return graph;
  }

  Schedule random_schedule(const TaskGraph& graph, double ckpt_probability) const {
    Rng rng(GetParam().seed * 7919 + 13);
    Schedule schedule = make_schedule(linearize(graph.dag(), graph.weights(),
                                                LinearizeMethod::random_first,
                                                {.seed = rng()}));
    for (VertexId v = 0; v < graph.task_count(); ++v)
      schedule.checkpointed[v] = rng.bernoulli(ckpt_probability) ? 1 : 0;
    return schedule;
  }
};

TEST_P(RandomDagProperties, MakespanDominatesFaultFreeTime) {
  const TaskGraph graph = make_graph();
  const ScheduleEvaluator evaluator(graph, FailureModel(0.004, 1.0));
  const Schedule schedule = random_schedule(graph, 0.3);
  const Evaluation eval = evaluator.evaluate(schedule);
  EXPECT_GE(eval.expected_makespan, eval.fault_free_time * (1.0 - 1e-12));
  EXPECT_GE(eval.fault_free_time, eval.total_weight);
}

TEST_P(RandomDagProperties, MonotoneInLambda) {
  const TaskGraph graph = make_graph();
  const Schedule schedule = random_schedule(graph, 0.3);
  double previous = 0.0;
  for (const double lambda : {1e-5, 1e-4, 1e-3, 1e-2}) {
    const double value = ScheduleEvaluator(graph, FailureModel(lambda, 0.0))
                             .evaluate(schedule)
                             .expected_makespan;
    EXPECT_GT(value, previous);
    previous = value;
  }
}

TEST_P(RandomDagProperties, MonotoneInDowntime) {
  const TaskGraph graph = make_graph();
  const Schedule schedule = random_schedule(graph, 0.3);
  double previous = -1.0;
  for (const double downtime : {0.0, 1.0, 10.0, 100.0}) {
    const double value = ScheduleEvaluator(graph, FailureModel(0.003, downtime))
                             .evaluate(schedule)
                             .expected_makespan;
    EXPECT_GT(value, previous);
    previous = value;
  }
}

TEST_P(RandomDagProperties, LambdaToZeroLimitIsFaultFreeTime) {
  const TaskGraph graph = make_graph();
  const Schedule schedule = random_schedule(graph, 0.5);
  const Evaluation tiny = ScheduleEvaluator(graph, FailureModel(1e-12, 0.0)).evaluate(schedule);
  EXPECT_NEAR(tiny.expected_makespan / tiny.fault_free_time, 1.0, 1e-6);
}

TEST_P(RandomDagProperties, InflatingACheckpointCostNeverHelps) {
  const TaskGraph graph = make_graph();
  Schedule schedule = random_schedule(graph, 0.5);
  // Pick some checkpointed vertex (if none, checkpoint vertex 0).
  VertexId target = 0;
  for (VertexId v = 0; v < graph.task_count(); ++v) {
    if (schedule.is_checkpointed(v)) {
      target = v;
      break;
    }
  }
  schedule.checkpointed[target] = 1;
  const FailureModel model(0.005, 0.0);
  const double base = ScheduleEvaluator(graph, model).evaluate(schedule).expected_makespan;
  TaskGraph costly = graph;
  costly.set_costs(target, graph.ckpt_cost(target) * 3.0 + 1.0, graph.recovery_cost(target));
  const double inflated =
      ScheduleEvaluator(costly, model).evaluate(schedule).expected_makespan;
  EXPECT_GT(inflated, base);
}

TEST_P(RandomDagProperties, EveryLinearizationGivesFiniteConsistentValues) {
  const TaskGraph graph = make_graph();
  const ScheduleEvaluator evaluator(graph, FailureModel(0.002, 0.5));
  for (const LinearizeMethod method : all_linearize_methods()) {
    const auto order =
        linearize(graph.dag(), graph.weights(), method, {.seed = GetParam().seed});
    ASSERT_TRUE(is_valid_linearization(graph.dag(), order));
    const double value = evaluator.evaluate(make_schedule(order)).expected_makespan;
    EXPECT_TRUE(std::isfinite(value));
    EXPECT_GT(value, graph.total_weight());
  }
}

TEST_P(RandomDagProperties, CheckpointingEverythingBoundsTheLostWork) {
  // With every task checkpointed, the lost work of task i is at most the
  // recoveries of its direct predecessors R_i (re-execution chains cannot
  // survive), so E[X_i] <= E[t(R_i + w_i; c_i; 0)] — the worst case where
  // every attempt starts from a full recovery.
  const TaskGraph graph = make_graph();
  const FailureModel model(0.006, 0.0);
  Schedule schedule = random_schedule(graph, 0.0);
  for (VertexId v = 0; v < graph.task_count(); ++v) schedule.checkpointed[v] = 1;
  const Evaluation eval = ScheduleEvaluator(graph, model).evaluate(schedule);
  for (std::size_t i = 0; i < schedule.order.size(); ++i) {
    const VertexId v = schedule.order[i];
    double recovery_bound = 0.0;
    for (const VertexId p : graph.dag().predecessors(v))
      recovery_bound += graph.recovery_cost(p);
    EXPECT_LE(eval.per_task_expected[i],
              model.expected_time(recovery_bound + graph.weight(v), graph.ckpt_cost(v), 0.0) *
                  (1.0 + 1e-12));
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomDagProperties,
                         ::testing::Values(PropertyCase{1, 10, 3}, PropertyCase{2, 18, 4},
                                           PropertyCase{3, 30, 5}, PropertyCase{4, 30, 10},
                                           PropertyCase{5, 50, 5}, PropertyCase{6, 80, 8},
                                           PropertyCase{7, 15, 15}, PropertyCase{8, 64, 4}));

// Workflow-level property: on every family, the ratio T/T_inf grows with
// the failure rate and shrinks... (stays >= 1 always).
class WorkflowRatioProperties : public ::testing::TestWithParam<WorkflowKind> {};

TEST_P(WorkflowRatioProperties, RatioGrowsWithLambda) {
  const TaskGraph graph = generate_workflow(GetParam(), {.task_count = 60, .seed = 17});
  const auto order = linearize(graph.dag(), graph.weights(), LinearizeMethod::depth_first);
  Schedule schedule = make_schedule(order);
  for (std::size_t i = 0; i < schedule.order.size(); i += 4)
    schedule.checkpointed[schedule.order[i]] = 1;
  const double base_lambda = paper_lambda(GetParam());
  double previous = 1.0;
  for (const double factor : {0.1, 0.3, 1.0, 3.0}) {
    const Evaluation eval =
        ScheduleEvaluator(graph, FailureModel(base_lambda * factor, 0.0)).evaluate(schedule);
    EXPECT_GT(eval.ratio, previous);
    previous = eval.ratio;
  }
}

INSTANTIATE_TEST_SUITE_P(Families, WorkflowRatioProperties,
                         ::testing::ValuesIn(all_workflow_kinds().begin(),
                                             all_workflow_kinds().end()));

}  // namespace
}  // namespace fpsched
