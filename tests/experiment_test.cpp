// Experiment-API suite: registry lookup and error reporting, the paper
// figure registrations, deterministic shard partitioning, and the
// headline guarantee of the record-level sinks — sharded NDJSON streams
// concatenate to the bit-identical unsharded output.
#include "engine/experiment.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <vector>

#include "core/evaluator.hpp"
#include "core/evaluator_naive.hpp"
#include "engine/result_sink.hpp"
#include "heuristics/heuristic.hpp"
#include "support/error.hpp"
#include "test_util.hpp"

namespace fpsched::engine {
namespace {

// --- Registry ----------------------------------------------------------

TEST(ExperimentRegistryTest, GlobalRegistryKnowsThePaperFigures) {
  ExperimentRegistry& registry = ExperimentRegistry::global();
  for (const std::string name :
       {"fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "downtime", "theory"}) {
    EXPECT_TRUE(registry.contains(name)) << name;
    EXPECT_EQ(registry.find(name).name, name);
  }
  EXPECT_GE(registry.experiments().size(), 8u);
  // Only the sweep figures consume --tasks/--downtimes; the shims use
  // this to keep strict CLIs on the size-axis binaries.
  EXPECT_TRUE(registry.find("fig7").sweep_options);
  EXPECT_TRUE(registry.find("downtime").sweep_options);
  EXPECT_FALSE(registry.find("fig2").sweep_options);
}

TEST(ExperimentRegistryTest, UnknownNameErrorListsRegisteredNames) {
  try {
    ExperimentRegistry::global().find("fig9");
    FAIL() << "expected an unknown-experiment rejection";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unknown experiment 'fig9'"), std::string::npos) << what;
    EXPECT_NE(what.find("fig2"), std::string::npos) << what;
    EXPECT_NE(what.find("downtime"), std::string::npos) << what;
  }
}

TEST(ExperimentRegistryTest, RejectsDuplicatesAndMalformedExperiments) {
  ExperimentRegistry registry;
  const auto build = [](const FigureOptions&) { return FigurePlan{}; };
  registry.add({"exp", "summary", build});
  EXPECT_THROW(registry.add({"exp", "again", build}), Error);
  EXPECT_THROW(registry.add({"", "nameless", build}), Error);
  EXPECT_THROW(registry.add({"builderless", "summary", nullptr}), Error);
  EXPECT_FALSE(registry.contains("builderless"));
}

TEST(ExperimentRegistryTest, ListsInRegistrationOrder) {
  ExperimentRegistry registry;
  const auto build = [](const FigureOptions&) { return FigurePlan{}; };
  registry.add({"zz", "", build});
  registry.add({"aa", "", build});
  const auto experiments = registry.experiments();
  ASSERT_EQ(experiments.size(), 2u);
  EXPECT_EQ(experiments[0]->name, "zz");
  EXPECT_EQ(experiments[1]->name, "aa");
}

// --- Figure builders ---------------------------------------------------

TEST(ExperimentFiguresTest, Fig2BuildsThreePanelsOverTheSizeAxis) {
  FigureOptions options;
  options.sizes = {50, 100};
  const FigurePlan plan = ExperimentRegistry::global().find("fig2").build(options);
  EXPECT_NE(plan.heading.find("Figure 2"), std::string::npos);
  ASSERT_EQ(plan.panels.size(), 3u);
  EXPECT_EQ(plan.panels[0].slug, "fig2a_cybershake");
  EXPECT_EQ(plan.panels[1].slug, "fig2b_ligo");
  EXPECT_EQ(plan.panels[2].slug, "fig2c_genome");
  for (const PanelSpec& panel : plan.panels) {
    EXPECT_EQ(panel.grid.axis, GridAxis::task_count);
    EXPECT_EQ(panel.grid.sizes, options.sizes);
    EXPECT_EQ(panel.grid.policies.size(), 6u);  // {DF,BF,RF} x {CkptW,CkptC}
  }
  EXPECT_FALSE(plan.notes.empty());
}

TEST(ExperimentFiguresTest, Fig7UsesTheTasksOption) {
  FigureOptions options;
  options.tasks = 123;
  const FigurePlan plan = ExperimentRegistry::global().find("fig7").build(options);
  EXPECT_NE(plan.heading.find("123 tasks"), std::string::npos);
  ASSERT_EQ(plan.panels.size(), 4u);
  for (const PanelSpec& panel : plan.panels) {
    EXPECT_EQ(panel.grid.axis, GridAxis::lambda);
    ASSERT_EQ(panel.grid.sizes.size(), 1u);
    EXPECT_EQ(panel.grid.sizes[0], 123u);
  }
}

TEST(ExperimentFiguresTest, DowntimeSweepRejectsNegativeDowntimes) {
  FigureOptions options;
  options.downtimes = {0.0, -5.0};
  EXPECT_THROW(ExperimentRegistry::global().find("downtime").build(options), Error);
}

// --- Shard partitioning ------------------------------------------------

TEST(ExperimentFiguresTest, TheoryBuildsFourFixedSizePanels) {
  const FigurePlan plan = ExperimentRegistry::global().find("theory").build({});
  ASSERT_EQ(plan.panels.size(), 4u);
  for (const PanelSpec& panel : plan.panels) {
    // Fixed small sizes, independent of --sizes: the grid must stay
    // replayable by the exhaustive Algorithm-1 cross-check below.
    EXPECT_EQ(panel.grid.sizes, (std::vector<std::size_t>{20, 26, 32}));
    EXPECT_DOUBLE_EQ(panel.grid.downtime, 1.0);
    EXPECT_FALSE(panel.grid.policies.empty());
  }
  EXPECT_NE(plan.notes.find("theory_fork_test"), std::string::npos);
}

TEST(ExperimentFiguresTest, TheoryGridCellsMatchAlgorithmOne) {
  // Theorem 3, cell by cell: every schedule the theory grid evaluates
  // must agree with the literal Algorithm-1 transcription to 1e-9. The
  // grid's sizes (<= 32) keep the naive O(n^3) replay in tier-1 time.
  const FigurePlan plan = ExperimentRegistry::global().find("theory").build({});
  std::size_t checked = 0;
  for (const PlannedScenario& planned : flatten_plan(plan)) {
    const ScenarioSpec& spec = planned.spec;
    const TaskGraph graph = spec.instantiate();
    const ScheduleEvaluator evaluator(graph, spec.model);
    HeuristicOptions options;
    options.linearize = spec.linearize;
    options.sweep.stride = spec.stride;
    // The DF member of each policy (every strategy considers it); the
    // engine's best-lin selection only picks among such runs.
    const HeuristicResult run = run_heuristic(
        evaluator, {LinearizeMethod::depth_first, spec.policy.strategy}, options);
    fpsched::testing::assert_rel_near(evaluate_reference(graph, spec.model, run.schedule),
                                      run.evaluation.expected_makespan, 1e-9,
                                      spec.label().c_str());
    ++checked;
  }
  EXPECT_GE(checked, 4u * 3u);  // 4 kinds x 3 sizes x strategies
}

TEST(ShardSpecTest, ParsesWellFormedSpecs) {
  const ShardSpec whole = ShardSpec::parse("1/1");
  EXPECT_FALSE(whole.active());
  const ShardSpec second = ShardSpec::parse("2/4");
  EXPECT_EQ(second.index, 2u);
  EXPECT_EQ(second.count, 4u);
  EXPECT_TRUE(second.active());
}

TEST(ShardSpecTest, RejectsMalformedSpecs) {
  for (const std::string bad : {"", "2", "0/2", "3/2", "1/0", "a/2", "1/b", "1/2/3", "-1/2"}) {
    EXPECT_THROW(ShardSpec::parse(bad), Error) << "'" << bad << "'";
  }
}

TEST(ShardRangeTest, ShardsTileTheListContiguouslyAndExhaustively) {
  for (const std::size_t total : {0u, 1u, 7u, 24u, 100u}) {
    for (const std::size_t count : {1u, 2u, 3u, 7u, 13u}) {
      std::size_t covered = 0;
      std::size_t expected_begin = 0;
      for (std::size_t index = 1; index <= count; ++index) {
        const auto [begin, end] = shard_range(total, {index, count});
        EXPECT_EQ(begin, expected_begin) << total << " " << index << "/" << count;
        EXPECT_LE(begin, end);
        // Balanced to within one element.
        EXPECT_LE(end - begin, total / count + 1);
        covered += end - begin;
        expected_begin = end;
      }
      EXPECT_EQ(covered, total);
      EXPECT_EQ(expected_begin, total);
    }
  }
}

TEST(ShardRangeTest, RejectsOutOfRangeShards) {
  EXPECT_THROW(shard_range(10, {0, 2}), Error);
  EXPECT_THROW(shard_range(10, {3, 2}), Error);
}

// --- run_experiment ----------------------------------------------------

/// A tiny two-panel experiment, cheap enough for unit tests: 2 sizes x 2
/// policies on Montage plus 1 size x 2 policies on CyberShake = 6
/// scenarios, strided sweeps throughout.
Experiment tiny_experiment() {
  return {"tiny", "two tiny panels", [](const FigureOptions& options) {
            FigurePlan plan;
            plan.heading = "tiny experiment";
            ScenarioGrid first;
            first.workflows = {WorkflowKind::montage};
            first.sizes = options.sizes;
            first.lambdas = {1e-3};
            first.stride = 16;
            first.policies = {
                ScenarioPolicy::fixed({LinearizeMethod::depth_first, CkptStrategy::by_weight}),
                ScenarioPolicy::fixed({LinearizeMethod::breadth_first, CkptStrategy::by_cost}),
            };
            ScenarioGrid second = first;
            second.workflows = {WorkflowKind::cybershake};
            second.sizes = {options.sizes.front()};
            plan.panels = {{first, "panel one", "tiny_one"}, {second, "panel two", "tiny_two"}};
            plan.notes = "done\n";
            return plan;
          }};
}

FigureOptions tiny_options() {
  FigureOptions options;
  options.sizes = {50, 60};
  return options;
}

std::string run_ndjson(const Experiment& experiment, const FigureOptions& options,
                       const ShardSpec& shard) {
  std::ostringstream os;
  NdjsonSink sink(os);
  const std::vector<ResultSink*> sinks{&sink};
  run_experiment(experiment, options, sinks, nullptr, shard);
  return os.str();
}

TEST(RunExperimentTest, StreamsRecordsAndPanelsThroughTheSinks) {
  const Experiment experiment = tiny_experiment();
  std::ostringstream records;
  std::ostringstream panels;
  NdjsonSink ndjson(records);
  TableSink table(panels);
  std::ostringstream text;
  const std::vector<ResultSink*> sinks{&ndjson, &table};
  run_experiment(experiment, tiny_options(), sinks, &text);

  const std::string record_out = records.str();
  EXPECT_EQ(std::count(record_out.begin(), record_out.end(), '\n'), 6);  // 4 + 2 scenarios
  EXPECT_NE(record_out.find("\"experiment\":\"tiny\""), std::string::npos);
  EXPECT_NE(record_out.find("\"panel\":\"tiny_one\""), std::string::npos);
  EXPECT_NE(record_out.find("\"panel\":\"tiny_two\""), std::string::npos);

  EXPECT_NE(panels.str().find("=== panel one ==="), std::string::npos);
  EXPECT_NE(panels.str().find("=== panel two ==="), std::string::npos);
  EXPECT_EQ(text.str(), "tiny experiment\ndone\n");
}

TEST(RunExperimentTest, ShardedNdjsonStreamsConcatenateBitIdentically) {
  const Experiment experiment = tiny_experiment();
  const FigureOptions options = tiny_options();
  const std::string unsharded = run_ndjson(experiment, options, {});
  ASSERT_FALSE(unsharded.empty());

  for (const std::size_t count : {2u, 3u, 5u}) {
    std::string merged;
    for (std::size_t index = 1; index <= count; ++index) {
      merged += run_ndjson(experiment, options, {index, count});
    }
    EXPECT_EQ(merged, unsharded) << count << " shards";
  }
}

TEST(RunExperimentTest, DegenerateShardCountsProduceEmptyShardsThatStillConcatenate) {
  // The tiny experiment has 6 scenarios; sharding 7/9/20 ways leaves
  // some shards with an empty slice. Those runs must stream nothing
  // (and not crash), and the concatenation must stay bit-identical.
  const Experiment experiment = tiny_experiment();
  const FigureOptions options = tiny_options();
  const std::string unsharded = run_ndjson(experiment, options, {});

  for (const std::size_t count : {7u, 9u, 20u}) {
    std::string merged;
    std::size_t empty_shards = 0;
    for (std::size_t index = 1; index <= count; ++index) {
      const std::string shard = run_ndjson(experiment, options, {index, count});
      if (shard.empty()) ++empty_shards;
      merged += shard;
    }
    EXPECT_GT(empty_shards, 0u) << count << " shards over 6 scenarios";
    EXPECT_EQ(merged, unsharded) << count << " shards";
  }
}

TEST(RunExperimentTest, FlattenPlanMatchesRecordOrder) {
  const Experiment experiment = tiny_experiment();
  const FigureOptions options = tiny_options();
  const std::vector<PlannedScenario> flattened = flatten_plan(experiment.build(options));
  ASSERT_EQ(flattened.size(), 6u);  // 4 + 2 scenarios

  // The flattened sequence is exactly what run_experiment streams:
  // panel slugs in panel order, spec.scenario_index grid-local.
  EXPECT_EQ(flattened[0].panel, "tiny_one");
  EXPECT_EQ(flattened[3].panel, "tiny_one");
  EXPECT_EQ(flattened[4].panel, "tiny_two");
  EXPECT_EQ(flattened[4].spec.scenario_index, 0u);
  std::ostringstream os;
  NdjsonSink sink(os);
  const std::vector<ResultSink*> sinks{&sink};
  run_experiment(experiment, options, sinks, nullptr);
  std::istringstream lines(os.str());
  std::string line;
  for (const PlannedScenario& planned : flattened) {
    ASSERT_TRUE(std::getline(lines, line));
    EXPECT_NE(line.find("\"panel\":\"" + planned.panel + "\""), std::string::npos) << line;
    EXPECT_NE(line.find("\"scenario_index\":" +
                        std::to_string(planned.spec.scenario_index)),
              std::string::npos)
        << line;
  }
  EXPECT_FALSE(std::getline(lines, line));  // no extra records
}

TEST(ExperimentOptionsTest, ApplyQuickShrinksTheGridAndKeepsLargerStrides) {
  FigureOptions options;
  options.sizes = {600, 700};
  options.stride = 1;
  apply_quick_options(options);
  EXPECT_EQ(options.sizes, (std::vector<std::size_t>{50, 100, 200, 300}));
  EXPECT_EQ(options.stride, 4u);
  options.stride = 16;  // an explicit coarser stride survives quick
  apply_quick_options(options);
  EXPECT_EQ(options.stride, 16u);
}

TEST(RunExperimentTest, ShardedRunsSkipPanelAssembly) {
  const Experiment experiment = tiny_experiment();
  std::ostringstream panels;
  TableSink table(panels);
  std::ostringstream text;
  const std::vector<ResultSink*> sinks{&table};
  run_experiment(experiment, tiny_options(), sinks, &text, {1, 2});
  EXPECT_EQ(panels.str(), "");           // no panel can be assembled from half a grid
  EXPECT_NE(text.str().find("tiny experiment"), std::string::npos);
}

}  // namespace
}  // namespace fpsched::engine
