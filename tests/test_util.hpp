// Shared helpers for the fpsched test suite.
#pragma once

#include <gtest/gtest.h>

#include <vector>

#include "core/schedule.hpp"
#include "support/stats.hpp"
#include "workflows/task_graph.hpp"

namespace fpsched::testing {

/// EXPECT that two doubles agree within a relative tolerance (handles the
/// magnitude swings of Eq. (1) better than absolute EXPECT_NEAR).
inline void expect_rel_near(double expected, double actual, double tol = 1e-9,
                            const char* what = "") {
  EXPECT_LE(relative_difference(expected, actual), tol)
      << what << " expected=" << expected << " actual=" << actual;
}

inline void assert_rel_near(double expected, double actual, double tol = 1e-9,
                            const char* what = "") {
  ASSERT_LE(relative_difference(expected, actual), tol)
      << what << " expected=" << expected << " actual=" << actual;
}

/// Schedule with the graph's deterministic topological order and no
/// checkpoints.
inline Schedule topo_schedule(const TaskGraph& graph) {
  const auto topo = graph.dag().topological_order();
  return make_schedule(std::vector<VertexId>(topo.begin(), topo.end()));
}

/// Same, with the given vertices checkpointed.
inline Schedule topo_schedule_with_ckpts(const TaskGraph& graph,
                                         const std::vector<VertexId>& ckpts) {
  Schedule schedule = topo_schedule(graph);
  for (const VertexId v : ckpts) schedule.checkpointed[v] = 1;
  return schedule;
}

}  // namespace fpsched::testing
