// Tests for the Schedule type and its validation.
#include "core/schedule.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"
#include "workflows/synthetic.hpp"

namespace fpsched {
namespace {

TEST(Schedule, MakeScheduleHasNoCheckpoints) {
  const Schedule schedule = make_schedule({2, 0, 1});
  EXPECT_EQ(schedule.task_count(), 3u);
  EXPECT_EQ(schedule.checkpoint_count(), 0u);
  EXPECT_FALSE(schedule.is_checkpointed(0));
}

TEST(Schedule, CheckpointCountAndFlags) {
  Schedule schedule = make_schedule({0, 1, 2, 3});
  schedule.checkpointed[1] = 1;
  schedule.checkpointed[3] = 1;
  EXPECT_EQ(schedule.checkpoint_count(), 2u);
  EXPECT_TRUE(schedule.is_checkpointed(1));
  EXPECT_FALSE(schedule.is_checkpointed(2));
}

TEST(Schedule, PositionsInvertTheOrder) {
  const Schedule schedule = make_schedule({3, 1, 0, 2});
  const auto pos = schedule.positions();
  EXPECT_EQ(pos[3], 0u);
  EXPECT_EQ(pos[1], 1u);
  EXPECT_EQ(pos[0], 2u);
  EXPECT_EQ(pos[2], 3u);
  for (std::size_t i = 0; i < schedule.order.size(); ++i)
    EXPECT_EQ(pos[schedule.order[i]], i);
}

TEST(Schedule, DescribeMarksCheckpoints) {
  const TaskGraph graph = make_paper_figure1(1.0);
  const Schedule schedule({0, 3, 1, 2, 4, 5, 6, 7}, {0, 0, 0, 1, 1, 0, 0, 0});
  EXPECT_EQ(schedule.describe(graph), "T0 T3* T1 T2 T4* T5 T6 T7");
}

TEST(Schedule, ValidationAcceptsAnyLinearization) {
  const TaskGraph graph = make_paper_figure1(1.0);
  EXPECT_NO_THROW(validate_schedule(graph, make_schedule({0, 3, 1, 2, 4, 5, 6, 7})));
  EXPECT_NO_THROW(validate_schedule(graph, make_schedule({1, 2, 7, 0, 3, 4, 5, 6})));
}

TEST(Schedule, ValidationRejectsBadInputs) {
  const TaskGraph graph = make_paper_figure1(1.0);
  // Dependency violation: T3 before T0.
  EXPECT_THROW(validate_schedule(graph, make_schedule({3, 0, 1, 2, 4, 5, 6, 7})), ScheduleError);
  // Wrong order length.
  EXPECT_THROW(validate_schedule(graph, make_schedule({0, 1, 2})), ScheduleError);
  // Wrong flag vector length.
  Schedule bad_flags = make_schedule({0, 3, 1, 2, 4, 5, 6, 7});
  bad_flags.checkpointed.resize(4);
  EXPECT_THROW(validate_schedule(graph, bad_flags), ScheduleError);
  // Duplicate vertex in order.
  EXPECT_THROW(validate_schedule(graph, make_schedule({0, 0, 1, 2, 4, 5, 6, 7})), ScheduleError);
}

}  // namespace
}  // namespace fpsched
