// Tests for the CSR DAG container and builder.
#include "dag/graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "support/error.hpp"

namespace fpsched {
namespace {

Dag diamond() {
  DagBuilder builder;
  builder.add_vertices(4);
  builder.add_edge(0, 1);
  builder.add_edge(0, 2);
  builder.add_edge(1, 3);
  builder.add_edge(2, 3);
  return std::move(builder).build();
}

TEST(Dag, EmptyGraph) {
  DagBuilder builder;
  const Dag dag = std::move(builder).build();
  EXPECT_EQ(dag.vertex_count(), 0u);
  EXPECT_EQ(dag.edge_count(), 0u);
  EXPECT_TRUE(dag.sources().empty());
  EXPECT_TRUE(dag.topological_order().empty());
}

TEST(Dag, DiamondAdjacency) {
  const Dag dag = diamond();
  EXPECT_EQ(dag.vertex_count(), 4u);
  EXPECT_EQ(dag.edge_count(), 4u);
  EXPECT_EQ(dag.in_degree(0), 0u);
  EXPECT_EQ(dag.out_degree(0), 2u);
  EXPECT_EQ(dag.in_degree(3), 2u);
  const auto preds3 = dag.predecessors(3);
  EXPECT_EQ(std::vector<VertexId>(preds3.begin(), preds3.end()), (std::vector<VertexId>{1, 2}));
  const auto succs0 = dag.successors(0);
  EXPECT_EQ(std::vector<VertexId>(succs0.begin(), succs0.end()), (std::vector<VertexId>{1, 2}));
}

TEST(Dag, SourcesAndSinks) {
  const Dag dag = diamond();
  const auto sources = dag.sources();
  const auto sinks = dag.sinks();
  EXPECT_EQ(std::vector<VertexId>(sources.begin(), sources.end()), std::vector<VertexId>{0});
  EXPECT_EQ(std::vector<VertexId>(sinks.begin(), sinks.end()), std::vector<VertexId>{3});
}

TEST(Dag, HasEdge) {
  const Dag dag = diamond();
  EXPECT_TRUE(dag.has_edge(0, 1));
  EXPECT_TRUE(dag.has_edge(2, 3));
  EXPECT_FALSE(dag.has_edge(1, 0));
  EXPECT_FALSE(dag.has_edge(0, 3));
}

TEST(Dag, DuplicateEdgesAreDeduplicated) {
  DagBuilder builder;
  builder.add_vertices(2);
  builder.add_edge(0, 1);
  builder.add_edge(0, 1);
  builder.add_edge(0, 1);
  const Dag dag = std::move(builder).build();
  EXPECT_EQ(dag.edge_count(), 1u);
}

TEST(Dag, TopologicalOrderIsDeterministicSmallestFirst) {
  // Two independent chains: 0->2, 1->3. Kahn with a min-heap gives
  // 0 1 2 3.
  DagBuilder builder;
  builder.add_vertices(4);
  builder.add_edge(0, 2);
  builder.add_edge(1, 3);
  const Dag dag = std::move(builder).build();
  const auto topo = dag.topological_order();
  EXPECT_EQ(std::vector<VertexId>(topo.begin(), topo.end()), (std::vector<VertexId>{0, 1, 2, 3}));
}

TEST(Dag, TopologicalOrderRespectsEdges) {
  const Dag dag = diamond();
  const auto topo = dag.topological_order();
  std::vector<std::size_t> pos(dag.vertex_count());
  for (std::size_t i = 0; i < topo.size(); ++i) pos[topo[i]] = i;
  for (VertexId v = 0; v < dag.vertex_count(); ++v) {
    for (const VertexId s : dag.successors(v)) EXPECT_LT(pos[v], pos[s]);
  }
}

TEST(Dag, CycleDetection) {
  DagBuilder builder;
  builder.add_vertices(3);
  builder.add_edge(0, 1);
  builder.add_edge(1, 2);
  builder.add_edge(2, 0);
  EXPECT_THROW(std::move(builder).build(), GraphError);
}

TEST(Dag, SelfLoopRejectedImmediately) {
  DagBuilder builder;
  builder.add_vertices(2);
  EXPECT_THROW(builder.add_edge(1, 1), GraphError);
}

TEST(Dag, OutOfRangeEdgeRejected) {
  DagBuilder builder;
  builder.add_vertices(2);
  EXPECT_THROW(builder.add_edge(0, 5), GraphError);
  const std::vector<std::pair<VertexId, VertexId>> edges{{0, 7}};
  EXPECT_THROW(Dag::from_edges(2, edges), GraphError);
}

TEST(Dag, FromEdgesMatchesBuilder) {
  const std::vector<std::pair<VertexId, VertexId>> edges{{0, 1}, {0, 2}, {1, 3}, {2, 3}};
  const Dag dag = Dag::from_edges(4, edges);
  EXPECT_EQ(dag.edge_count(), 4u);
  EXPECT_TRUE(dag.has_edge(1, 3));
}

TEST(DagBuilder, AddVerticesReturnsFirstId) {
  DagBuilder builder;
  EXPECT_EQ(builder.add_vertex(), 0u);
  EXPECT_EQ(builder.add_vertices(5), 1u);
  EXPECT_EQ(builder.add_vertex(), 6u);
  EXPECT_EQ(builder.vertex_count(), 7u);
}

}  // namespace
}  // namespace fpsched
