// Edge cases across module boundaries: zero-weight tasks (the Theorem-2
// gadget has a weightless sink), single-task graphs, overflow to +inf on
// failure-dominated segments, and degenerate strategy inputs.
#include <gtest/gtest.h>

#include <cmath>

#include "core/evaluator.hpp"
#include "core/evaluator_naive.hpp"
#include "core/subset_sum.hpp"
#include "core/theory_join.hpp"
#include "heuristics/checkpoint_strategy.hpp"
#include "heuristics/heuristic.hpp"
#include "sim/trial_runner.hpp"
#include "support/stats.hpp"
#include "test_util.hpp"
#include "workflows/synthetic.hpp"

namespace fpsched {
namespace {

using testing::expect_rel_near;
using testing::topo_schedule;

TEST(EdgeCases, ZeroWeightTasksFlowThroughEvaluatorAndSimulator) {
  // A join whose sink has weight zero (the NP gadget's shape).
  TaskGraph graph = make_join(std::vector<double>{10.0, 20.0}, 0.0);
  graph.set_costs(0, 2.0, 1.0);
  const FailureModel model(0.01, 0.0);
  Schedule schedule = topo_schedule(graph);
  schedule.checkpointed[0] = 1;
  const double fast = ScheduleEvaluator(graph, model).evaluate(schedule).expected_makespan;
  const double naive = evaluate_reference(graph, model, schedule);
  expect_rel_near(naive, fast, 1e-9);
  const MonteCarloSummary mc =
      run_trials(FaultSimulator(graph, model, schedule), {.trials = 30000, .seed = 4});
  EXPECT_TRUE(mc.consistent_with(fast, 3.0))
      << "analytic=" << fast << " mc=" << mc.mean_makespan() << " +/- " << mc.ci95();
}

TEST(EdgeCases, TheNpGadgetEvaluatesConsistentlyInTheGeneralModel) {
  // Connects Theorem 2 to Theorem 3: the gadget's Corollary-2 value equals
  // the general evaluator's on the corresponding schedule.
  const SubsetSumReduction reduction = reduce_subset_sum({{3, 5, 7}, 8});
  const std::vector<VertexId> ckpt{2};  // checkpoint the "7" source
  const double corollary =
      join_expected_time_zero_recovery(reduction.graph, reduction.model, ckpt);
  const Schedule schedule = join_schedule(reduction.graph, reduction.model, ckpt);
  const double general = ScheduleEvaluator(reduction.graph, reduction.model)
                             .evaluate(schedule)
                             .expected_makespan;
  expect_rel_near(corollary, general, 1e-9);
}

TEST(EdgeCases, AllZeroWeightsAreFreeUnderAnyFailureRate) {
  TaskGraph graph = make_uniform_chain(4, 0.0);
  const ScheduleEvaluator evaluator(graph, FailureModel(0.5, 100.0));
  EXPECT_DOUBLE_EQ(evaluator.evaluate(topo_schedule(graph)).expected_makespan, 0.0);
  Rng rng(1);
  const FaultSimulator sim(graph, FailureModel(0.5, 100.0), topo_schedule(graph));
  EXPECT_DOUBLE_EQ(sim.run(rng).makespan, 0.0);
}

TEST(EdgeCases, FailureDominatedSegmentsOverflowToInfinityGracefully) {
  // lambda * W huge: the expectation is +inf, not a NaN or a crash.
  TaskGraph graph = make_uniform_chain(3, 1000.0);
  const ScheduleEvaluator evaluator(graph, FailureModel(1.0, 0.0));
  const Evaluation eval = evaluator.evaluate(topo_schedule(graph));
  EXPECT_TRUE(std::isinf(eval.expected_makespan));
  EXPECT_FALSE(std::isnan(eval.ratio));
}

TEST(EdgeCases, CheckpointingRescuesAFailureDominatedChain) {
  // Same chain, but checkpointing every task keeps segments small enough
  // to finish: a dramatic illustration of why checkpoints matter.
  TaskGraph graph = make_uniform_chain(3, 10.0);
  graph.apply_cost_model(CostModel::constant(0.5));
  const ScheduleEvaluator evaluator(graph, FailureModel(0.2, 0.0));
  const double bare = evaluator.evaluate(topo_schedule(graph)).expected_makespan;
  Schedule all = topo_schedule(graph);
  for (VertexId v = 0; v < graph.task_count(); ++v) all.checkpointed[v] = 1;
  const double protected_run = evaluator.evaluate(all).expected_makespan;
  EXPECT_LT(protected_run, bare / 3.0);
}

TEST(EdgeCases, SingleTaskHeuristicsAndSweeps) {
  TaskGraph graph = make_uniform_chain(1, 25.0);
  graph.set_costs(0, 2.0, 2.0);
  const ScheduleEvaluator evaluator(graph, FailureModel(0.01, 0.0));
  for (const HeuristicSpec& spec : all_heuristics()) {
    const HeuristicResult result = run_heuristic(evaluator, spec);
    EXPECT_EQ(result.schedule.order.size(), 1u) << spec.name();
    EXPECT_GT(result.evaluation.expected_makespan, 0.0) << spec.name();
  }
}

TEST(EdgeCases, PeriodicOnZeroTotalWeightPlacesNothing) {
  const TaskGraph graph = make_uniform_chain(3, 0.0);
  const auto order = graph.dag().topological_order();
  const auto flags = place_checkpoints(graph, order, CkptStrategy::periodic, 3);
  for (const auto f : flags) EXPECT_EQ(f, 0);
}

TEST(EdgeCases, DisconnectedComponentsEvaluateIndependently) {
  // Two independent chains in one graph: the expected makespan equals the
  // sum of the two chains evaluated separately (serialized platform).
  DagBuilder builder;
  builder.add_vertices(4);
  builder.add_edge(0, 1);
  builder.add_edge(2, 3);
  std::vector<Task> tasks(4);
  for (auto& t : tasks) t.weight = 30.0;
  const TaskGraph graph(std::move(builder).build(), std::move(tasks));
  const FailureModel model(0.005, 0.0);
  const double whole = ScheduleEvaluator(graph, model)
                           .evaluate(make_schedule({0, 1, 2, 3}))
                           .expected_makespan;
  const TaskGraph chain = make_uniform_chain(2, 30.0);
  const double one = ScheduleEvaluator(chain, model)
                         .evaluate(topo_schedule(chain))
                         .expected_makespan;
  expect_rel_near(2.0 * one, whole, 1e-9);
}

TEST(EdgeCases, InterleavingIndependentChainsIsStrictlyWorse) {
  // The deferral identity does NOT extend across independent components:
  // finishing a chain retires its work (completed exit tasks are never
  // re-executed), whereas interleaving keeps both chains' uncheckpointed
  // work exposed to failures for longer. This is the quantitative heart
  // of the paper's depth-first-beats-breadth-first observation. Verified
  // by hand for this instance: sequential ~139.9 s vs interleaved ~149.5 s.
  DagBuilder builder;
  builder.add_vertices(4);
  builder.add_edge(0, 1);
  builder.add_edge(2, 3);
  std::vector<Task> tasks(4);
  for (auto& t : tasks) t.weight = 30.0;
  const TaskGraph graph(std::move(builder).build(), std::move(tasks));
  const FailureModel model(0.005, 0.0);
  const ScheduleEvaluator evaluator(graph, model);
  const double sequential = evaluator.evaluate(make_schedule({0, 1, 2, 3})).expected_makespan;
  const double interleaved = evaluator.evaluate(make_schedule({0, 2, 1, 3})).expected_makespan;
  EXPECT_LT(sequential, interleaved);
  expect_rel_near(139.94, sequential, 1e-3);   // 2 x E[t(60; 0; 0)]
  expect_rel_near(149.50, interleaved, 1e-3);  // hand-computed over Z events
}

}  // namespace
}  // namespace fpsched
