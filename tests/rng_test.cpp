// Tests for the xoshiro256** RNG wrapper and its distributions.
#include "support/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "support/error.hpp"
#include "support/stats.hpp"

namespace fpsched {
namespace {

TEST(Rng, DeterministicForEqualSeeds) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(123);
  Rng b(124);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Rng, ForkedStreamsAreIndependentAndReproducible) {
  const Rng root(7);
  Rng s1 = root.fork(1);
  Rng s1_again = root.fork(1);
  Rng s2 = root.fork(2);
  bool all_equal = true;
  for (int i = 0; i < 50; ++i) {
    const auto a = s1();
    EXPECT_EQ(a, s1_again());
    if (a != s2()) all_equal = false;
  }
  EXPECT_FALSE(all_equal);
}

TEST(Rng, UniformStaysInRange) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(3.0, 8.0);
    EXPECT_GE(u, 3.0);
    EXPECT_LT(u, 8.0);
  }
}

TEST(Rng, UniformIndexCoversTheRangeWithoutBias) {
  Rng rng(11);
  std::vector<int> hits(10, 0);
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) ++hits[rng.uniform_index(10)];
  for (const int h : hits) {
    // Each bucket expects 10000 +- a few hundred.
    EXPECT_GT(h, 9300);
    EXPECT_LT(h, 10700);
  }
  EXPECT_THROW(rng.uniform_index(0), InvalidArgument);
}

TEST(Rng, ExponentialHasCorrectMeanAndVariance) {
  Rng rng(13);
  const double lambda = 0.05;
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.push(rng.exponential(lambda));
  EXPECT_NEAR(stats.mean(), 1.0 / lambda, 0.3);    // mean 20
  EXPECT_NEAR(stats.stddev(), 1.0 / lambda, 0.5);  // stddev 20
  EXPECT_THROW(rng.exponential(0.0), InvalidArgument);
}

TEST(Rng, ExponentialMemorylessTail) {
  // P(X > a+b | X > a) == P(X > b): compare empirical tail fractions.
  Rng rng(17);
  const double lambda = 0.1;
  int beyond_10 = 0;
  int beyond_20_given_10 = 0;
  const int draws = 200000;
  for (int i = 0; i < draws; ++i) {
    const double x = rng.exponential(lambda);
    if (x > 10.0) {
      ++beyond_10;
      if (x > 20.0) ++beyond_20_given_10;
    }
  }
  const double conditional = static_cast<double>(beyond_20_given_10) / beyond_10;
  EXPECT_NEAR(conditional, std::exp(-lambda * 10.0), 0.01);
}

TEST(Rng, GammaMatchesMeanAndCv) {
  Rng rng(19);
  RunningStats stats;
  const double mean = 50.0;
  const double cv = 0.4;
  for (int i = 0; i < 200000; ++i) {
    const double x = rng.gamma_mean_cv(mean, cv);
    EXPECT_GT(x, 0.0);
    stats.push(x);
  }
  EXPECT_NEAR(stats.mean(), mean, 0.5);
  EXPECT_NEAR(stats.stddev() / stats.mean(), cv, 0.02);
  EXPECT_DOUBLE_EQ(rng.gamma_mean_cv(mean, 0.0), mean);
}

TEST(Rng, GammaSmallShape) {
  // shape < 1 exercises the boost branch.
  Rng rng(23);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.push(rng.gamma(0.5, 2.0));
  EXPECT_NEAR(stats.mean(), 1.0, 0.05);  // mean = shape * scale
}

TEST(Rng, NormalMoments) {
  Rng rng(29);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.push(rng.normal(10.0, 3.0));
  EXPECT_NEAR(stats.mean(), 10.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 3.0, 0.05);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(31);
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
  int heads = 0;
  for (int i = 0; i < 100000; ++i)
    if (rng.bernoulli(0.25)) ++heads;
  EXPECT_NEAR(heads / 100000.0, 0.25, 0.01);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(37);
  std::vector<int> values{1, 2, 3, 4, 5, 6, 7, 8};
  auto shuffled = values;
  rng.shuffle(shuffled);
  std::multiset<int> a(values.begin(), values.end());
  std::multiset<int> b(shuffled.begin(), shuffled.end());
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace fpsched
