// Tests for the thread pool, nested task groups, and parallel_for helpers.
#include "support/threading.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <future>
#include <iostream>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "engine/engine.hpp"
#include "engine/result_sink.hpp"
#include "support/error.hpp"

namespace fpsched {
namespace {

/// Runs `body` on a separate thread and fails WITHOUT hanging the suite
/// when it does not finish within `seconds` — the deadlock guard for the
/// nested-scheduling tests. A deadlocked body can never be joined (an
/// std::async future's destructor would just block on it), so on timeout
/// this reports and hard-exits the binary: a loud red test beats hanging
/// to the CI job timeout with no diagnostic.
void expect_finishes_within(int seconds, const std::function<void()>& body) {
  std::promise<void> promise;
  std::future<void> done = promise.get_future();
  std::thread worker(
      [&body](std::promise<void> result) {
        try {
          body();
          result.set_value();
        } catch (...) {
          result.set_exception(std::current_exception());
        }
      },
      std::move(promise));
  if (done.wait_for(std::chrono::seconds(seconds)) != std::future_status::ready) {
    std::cerr << "FATAL: timed out after " << seconds
              << "s — nested pool scheduling deadlocked?\n";
    std::_Exit(3);
  }
  worker.join();
  done.get();  // propagate assertions/exceptions
}

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.submit([&counter] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPool, PropagatesExceptionsThroughFutures) {
  ThreadPool pool(2);
  auto future = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
  // The pool survives a throwing task.
  auto ok = pool.submit([] {});
  EXPECT_NO_THROW(ok.get());
}

TEST(ThreadPool, RejectsZeroWorkers) { EXPECT_THROW(ThreadPool(0), InvalidArgument); }

TEST(TaskGroup, RunsEveryTaskExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(200);
  TaskGroup group(pool);
  for (std::size_t i = 0; i < hits.size(); ++i) {
    group.run([&hits, i] { hits[i].fetch_add(1); });
  }
  group.wait();
  for (std::size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(TaskGroup, WaitWithoutTasksReturnsImmediately) {
  ThreadPool pool(2);
  TaskGroup group(pool);
  group.wait();
}

TEST(TaskGroup, RethrowsTheFirstTaskException) {
  ThreadPool pool(2);
  TaskGroup group(pool);
  std::atomic<int> completed{0};
  for (int i = 0; i < 32; ++i) {
    group.run([&completed, i] {
      if (i == 7) throw std::runtime_error("task 7");
      completed.fetch_add(1);
    });
  }
  EXPECT_THROW(group.wait(), std::runtime_error);
  // The pool survives: plain submits still work.
  auto ok = pool.submit([] {});
  EXPECT_NO_THROW(ok.get());
}

TEST(TaskGroup, NestedGroupsOnOneWorkerDoNotDeadlock) {
  // The hard case: a pool with a SINGLE worker, where an outer task joins
  // an inner group. Without the cooperative wait (waiters executing their
  // own group's queued tasks) this deadlocks instantly — the one worker
  // is parked inside the outer task.
  expect_finishes_within(30, [] {
    ThreadPool pool(1);
    std::atomic<int> inner_total{0};
    TaskGroup outer(pool);
    for (int i = 0; i < 8; ++i) {
      outer.run([&pool, &inner_total] {
        TaskGroup inner(pool);
        for (int j = 0; j < 16; ++j) inner.run([&inner_total] { inner_total.fetch_add(1); });
        inner.wait();
      });
    }
    outer.wait();
    EXPECT_EQ(inner_total.load(), 8 * 16);
  });
}

TEST(TaskGroup, ThreeLevelNestingUnderContention) {
  // Scenario -> budget-sweep -> k-block shaped nesting, more groups than
  // workers at every level, joined from inside pool tasks throughout.
  expect_finishes_within(60, [] {
    ThreadPool pool(3);
    std::atomic<int> leaves{0};
    TaskGroup scenarios(pool);
    for (int s = 0; s < 6; ++s) {
      scenarios.run([&pool, &leaves] {
        TaskGroup budgets(pool);
        for (int b = 0; b < 5; ++b) {
          budgets.run([&pool, &leaves] {
            TaskGroup blocks(pool);
            for (int k = 0; k < 4; ++k) blocks.run([&leaves] { leaves.fetch_add(1); });
            blocks.wait();
          });
        }
        budgets.wait();
      });
    }
    scenarios.wait();
    EXPECT_EQ(leaves.load(), 6 * 5 * 4);
  });
}

TEST(TaskGroup, MixesWithPlainSubmits) {
  ThreadPool pool(2);
  std::atomic<int> plain{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 16; ++i) futures.push_back(pool.submit([&plain] { plain.fetch_add(1); }));
  TaskGroup group(pool);
  std::atomic<int> grouped{0};
  for (int i = 0; i < 16; ++i) group.run([&grouped] { grouped.fetch_add(1); });
  group.wait();
  for (auto& f : futures) f.get();
  EXPECT_EQ(plain.load(), 16);
  EXPECT_EQ(grouped.load(), 16);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  const std::size_t n = 10000;
  std::vector<std::atomic<int>> hits(n);
  parallel_for(0, n, [&](std::size_t i) { hits[i].fetch_add(1); }, 8);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelFor, EmptyAndSingleRanges) {
  int calls = 0;
  parallel_for(5, 5, [&](std::size_t) { ++calls; }, 4);
  EXPECT_EQ(calls, 0);
  parallel_for(5, 6, [&](std::size_t i) { EXPECT_EQ(i, 5u); ++calls; }, 4);
  EXPECT_EQ(calls, 1);
}

TEST(ParallelFor, SerialFallbackMatchesParallel) {
  const std::size_t n = 1000;
  std::vector<double> serial(n);
  std::vector<double> parallel(n);
  const auto body = [](std::size_t i) { return static_cast<double>(i * i % 97); };
  parallel_for(0, n, [&](std::size_t i) { serial[i] = body(i); }, 1);
  parallel_for(0, n, [&](std::size_t i) { parallel[i] = body(i); }, 8);
  EXPECT_EQ(serial, parallel);
}

TEST(ParallelFor, PropagatesFirstException) {
  EXPECT_THROW(
      parallel_for(0, 1000,
                   [](std::size_t i) {
                     if (i == 500) throw std::runtime_error("index 500");
                   },
                   4),
      std::runtime_error);
}

TEST(ParallelForWorkers, WorkerIdsAreInRange) {
  const std::size_t threads = 4;
  std::atomic<bool> ok{true};
  parallel_for_workers(
      0, 5000,
      [&](std::size_t, std::size_t worker) {
        if (worker >= threads) ok.store(false);
      },
      threads);
  EXPECT_TRUE(ok.load());
}

// --- Nested scheduling through the engine ------------------------------

/// NDJSON serialization of a grid run under the given engine options —
/// the byte stream the nested and serial paths must agree on.
std::string grid_ndjson(const engine::ScenarioGrid& grid, const engine::EngineOptions& options) {
  const engine::ExperimentEngine eng(options);
  std::string out;
  for (const engine::ScenarioResult& result : eng.run(grid)) {
    out += engine::to_json({"stress", "panel", result});
    out += '\n';
  }
  return out;
}

engine::ScenarioGrid nested_stress_grid() {
  engine::ScenarioGrid grid;
  grid.workflows = {WorkflowKind::cybershake};
  grid.sizes = {40};
  grid.lambdas = {1e-3};
  grid.stride = 4;
  grid.policies = {
      engine::ScenarioPolicy::fixed({LinearizeMethod::depth_first, CkptStrategy::by_weight}),
      engine::ScenarioPolicy::best_lin(CkptStrategy::by_cost),
      engine::ScenarioPolicy::fixed({LinearizeMethod::depth_first, CkptStrategy::never}),
  };
  return grid;
}

TEST(NestedScheduling, RecordsBitIdenticalToSerialRun) {
  // 3 scenarios on an 8-worker engine: scenarios < workers switches run()
  // to the shared-pool path where idle scenario workers steal budget
  // tasks from in-flight sweeps. The records must be the same bytes as
  // the fully serial run — with and without intra-evaluation k-blocks,
  // and with the instance cache on and off.
  expect_finishes_within(120, [] {
    const engine::ScenarioGrid grid = nested_stress_grid();
    const std::string serial = grid_ndjson(grid, {.threads = 1});
    EXPECT_FALSE(serial.empty());
    EXPECT_EQ(serial, grid_ndjson(grid, {.threads = 8}));
    EXPECT_EQ(serial, grid_ndjson(grid, {.threads = 8, .eval_threads = 3}));
    EXPECT_EQ(serial, grid_ndjson(grid, {.threads = 8, .instance_cache = false}));
    EXPECT_EQ(serial, grid_ndjson(grid, {.threads = 1, .eval_threads = 4}));
  });
}

TEST(NestedScheduling, SingleScenarioManyWorkers) {
  // The acceptance shape: one scenario, many workers — all parallelism
  // must come from stolen budget tasks (and k-blocks), and the pool must
  // wind down cleanly with most workers never seeing a scenario task.
  expect_finishes_within(120, [] {
    engine::ScenarioGrid grid = nested_stress_grid();
    grid.policies = {
        engine::ScenarioPolicy::fixed({LinearizeMethod::depth_first, CkptStrategy::by_weight})};
    grid.stride = 1;  // full 1..n-1 budget fan-out
    const std::string serial = grid_ndjson(grid, {.threads = 1});
    EXPECT_EQ(serial, grid_ndjson(grid, {.threads = 8}));
    EXPECT_EQ(serial, grid_ndjson(grid, {.threads = 8, .eval_threads = 2}));
  });
}

TEST(NestedScheduling, AbsurdThreadCountsAreClampedNotFatal) {
  // Thread counts arrive from CLI flags and HTTP query parameters; a
  // threads=10^9 request must degrade to the engine's hard worker
  // ceiling (and the same bytes), not attempt a billion OS threads.
  expect_finishes_within(120, [] {
    engine::ScenarioGrid grid = nested_stress_grid();
    grid.policies.resize(1);
    const std::string serial = grid_ndjson(grid, {.threads = 1});
    EXPECT_EQ(serial, grid_ndjson(grid, {.threads = 1'000'000'000}));
    const engine::ExperimentEngine wide({.threads = 1'000'000'000, .eval_threads = 500'000});
    EXPECT_LE(wide.thread_count(), kMaxPoolThreads);
    EXPECT_LE(wide.eval_threads(), kMaxPoolThreads);
  });
}

TEST(ParallelForWorkers, DisjointAccumulatorsSumCorrectly) {
  const std::size_t threads = 6;
  const std::size_t n = 20000;
  std::vector<std::uint64_t> partial(threads, 0);
  parallel_for_workers(
      0, n, [&](std::size_t i, std::size_t worker) { partial[worker] += i; }, threads);
  const std::uint64_t total = std::accumulate(partial.begin(), partial.end(), std::uint64_t{0});
  EXPECT_EQ(total, static_cast<std::uint64_t>(n) * (n - 1) / 2);
}

}  // namespace
}  // namespace fpsched
