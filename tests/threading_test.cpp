// Tests for the thread pool and parallel_for helpers.
#include "support/threading.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "support/error.hpp"

namespace fpsched {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.submit([&counter] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPool, PropagatesExceptionsThroughFutures) {
  ThreadPool pool(2);
  auto future = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
  // The pool survives a throwing task.
  auto ok = pool.submit([] {});
  EXPECT_NO_THROW(ok.get());
}

TEST(ThreadPool, RejectsZeroWorkers) { EXPECT_THROW(ThreadPool(0), InvalidArgument); }

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  const std::size_t n = 10000;
  std::vector<std::atomic<int>> hits(n);
  parallel_for(0, n, [&](std::size_t i) { hits[i].fetch_add(1); }, 8);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelFor, EmptyAndSingleRanges) {
  int calls = 0;
  parallel_for(5, 5, [&](std::size_t) { ++calls; }, 4);
  EXPECT_EQ(calls, 0);
  parallel_for(5, 6, [&](std::size_t i) { EXPECT_EQ(i, 5u); ++calls; }, 4);
  EXPECT_EQ(calls, 1);
}

TEST(ParallelFor, SerialFallbackMatchesParallel) {
  const std::size_t n = 1000;
  std::vector<double> serial(n);
  std::vector<double> parallel(n);
  const auto body = [](std::size_t i) { return static_cast<double>(i * i % 97); };
  parallel_for(0, n, [&](std::size_t i) { serial[i] = body(i); }, 1);
  parallel_for(0, n, [&](std::size_t i) { parallel[i] = body(i); }, 8);
  EXPECT_EQ(serial, parallel);
}

TEST(ParallelFor, PropagatesFirstException) {
  EXPECT_THROW(
      parallel_for(0, 1000,
                   [](std::size_t i) {
                     if (i == 500) throw std::runtime_error("index 500");
                   },
                   4),
      std::runtime_error);
}

TEST(ParallelForWorkers, WorkerIdsAreInRange) {
  const std::size_t threads = 4;
  std::atomic<bool> ok{true};
  parallel_for_workers(
      0, 5000,
      [&](std::size_t, std::size_t worker) {
        if (worker >= threads) ok.store(false);
      },
      threads);
  EXPECT_TRUE(ok.load());
}

TEST(ParallelForWorkers, DisjointAccumulatorsSumCorrectly) {
  const std::size_t threads = 6;
  const std::size_t n = 20000;
  std::vector<std::uint64_t> partial(threads, 0);
  parallel_for_workers(
      0, n, [&](std::size_t i, std::size_t worker) { partial[worker] += i; }, threads);
  const std::uint64_t total = std::accumulate(partial.begin(), partial.end(), std::uint64_t{0});
  EXPECT_EQ(total, static_cast<std::uint64_t>(n) * (n - 1) / 2);
}

}  // namespace
}  // namespace fpsched
