// Tests for Theorem 1 (optimal schedules on fork graphs).
#include "core/theory_fork.hpp"

#include <gtest/gtest.h>

#include "core/evaluator.hpp"
#include "support/error.hpp"
#include "test_util.hpp"
#include "workflows/synthetic.hpp"

namespace fpsched {
namespace {

using testing::expect_rel_near;

TEST(IsFork, RecognizesForks) {
  VertexId src = 99;
  EXPECT_TRUE(is_fork(make_fork(1.0, std::vector<double>{1.0, 2.0}).dag(), &src));
  EXPECT_EQ(src, 0u);
  EXPECT_TRUE(is_fork(make_uniform_chain(1, 1.0).dag()));          // degenerate
  EXPECT_TRUE(is_fork(make_uniform_chain(2, 1.0).dag()));          // 1 source, 1 sink
  EXPECT_FALSE(is_fork(make_uniform_chain(3, 1.0).dag()));         // depth 2
  EXPECT_FALSE(is_fork(make_join(std::vector<double>{1.0, 2.0}, 1.0).dag()));
  EXPECT_FALSE(is_fork(make_paper_figure1(1.0).dag()));
}

TEST(ForkAnalysis, BothBranchesMatchTheGeneralEvaluator) {
  TaskGraph graph = make_fork(30.0, std::vector<double>{10.0, 20.0, 5.0});
  graph.set_costs(0, 3.0, 2.0);
  const FailureModel model(0.01, 1.0);
  const ForkAnalysis analysis = analyze_fork(graph, model);

  const ScheduleEvaluator evaluator(graph, model);
  Schedule with = make_schedule({0, 1, 2, 3});
  with.checkpointed[0] = 1;
  const Schedule without = make_schedule({0, 1, 2, 3});

  expect_rel_near(evaluator.evaluate(with).expected_makespan, analysis.expected_with_checkpoint,
                  1e-9);
  expect_rel_near(evaluator.evaluate(without).expected_makespan,
                  analysis.expected_without_checkpoint, 1e-9);
}

TEST(ForkAnalysis, CheapCheckpointIsTaken) {
  // Heavy source, nearly free checkpoint: checkpointing must win.
  TaskGraph graph = make_fork(500.0, std::vector<double>{50.0, 60.0, 70.0});
  graph.set_costs(0, 0.1, 0.1);
  const ForkAnalysis analysis = analyze_fork(graph, FailureModel(0.005, 0.0));
  EXPECT_TRUE(analysis.checkpoint_source);
  EXPECT_LT(analysis.expected_with_checkpoint, analysis.expected_without_checkpoint);
}

TEST(ForkAnalysis, ExpensiveCheckpointIsSkipped) {
  // Tiny source, enormous checkpoint cost: not worth it.
  TaskGraph graph = make_fork(1.0, std::vector<double>{1.0, 1.0});
  graph.set_costs(0, 500.0, 500.0);
  const ForkAnalysis analysis = analyze_fork(graph, FailureModel(0.001, 0.0));
  EXPECT_FALSE(analysis.checkpoint_source);
}

TEST(ForkAnalysis, NoFailuresMeansNoCheckpoint) {
  TaskGraph graph = make_fork(10.0, std::vector<double>{1.0, 2.0});
  graph.set_costs(0, 1.0, 1.0);
  const ForkAnalysis analysis = analyze_fork(graph, FailureModel(0.0, 0.0));
  EXPECT_FALSE(analysis.checkpoint_source);
  EXPECT_DOUBLE_EQ(analysis.expected_without_checkpoint, 13.0);
}

TEST(ForkAnalysis, DecisionFlipsWithTheFailureRate) {
  // Moderate checkpoint cost: useless at low rates, vital at high rates.
  TaskGraph graph = make_fork(100.0, std::vector<double>{40.0, 40.0, 40.0, 40.0});
  graph.set_costs(0, 20.0, 10.0);
  EXPECT_FALSE(analyze_fork(graph, FailureModel(1e-5, 0.0)).checkpoint_source);
  EXPECT_TRUE(analyze_fork(graph, FailureModel(1e-2, 0.0)).checkpoint_source);
}

TEST(OptimalForkSchedule, IsOptimalAgainstBothCandidates) {
  TaskGraph graph = make_fork(80.0, std::vector<double>{25.0, 10.0, 35.0});
  graph.set_costs(0, 8.0, 5.0);
  const FailureModel model(0.004, 2.0);
  const Schedule schedule = optimal_fork_schedule(graph, model);
  const ScheduleEvaluator evaluator(graph, model);
  const double value = evaluator.evaluate(schedule).expected_makespan;
  const ForkAnalysis analysis = analyze_fork(graph, model);
  expect_rel_near(analysis.optimal_expected_makespan, value, 1e-9);
  EXPECT_LE(value, analysis.expected_with_checkpoint * (1 + 1e-12));
  EXPECT_LE(value, analysis.expected_without_checkpoint * (1 + 1e-12));
}

TEST(ForkAnalysis, RejectsNonForks) {
  const TaskGraph chain = make_uniform_chain(3, 1.0);
  EXPECT_THROW(analyze_fork(chain, FailureModel(0.01, 0.0)), InvalidArgument);
}

}  // namespace
}  // namespace fpsched
