// Tests of the optimized Theorem-3 evaluator against closed forms and
// model identities.
#include "core/evaluator.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <numeric>

#include "core/failure_model.hpp"
#include "support/error.hpp"
#include "test_util.hpp"
#include "workflows/synthetic.hpp"

namespace fpsched {
namespace {

using testing::assert_rel_near;
using testing::expect_rel_near;
using testing::topo_schedule;
using testing::topo_schedule_with_ckpts;

TEST(Evaluator, SingleTaskNoCheckpointMatchesEquationOne) {
  const TaskGraph graph = make_uniform_chain(1, 42.0);
  const FailureModel model(0.01, 3.0);
  const ScheduleEvaluator evaluator(graph, model);
  const Evaluation eval = evaluator.evaluate(topo_schedule(graph));
  expect_rel_near(model.expected_time(42.0, 0.0, 0.0), eval.expected_makespan, 1e-12);
  EXPECT_DOUBLE_EQ(eval.total_weight, 42.0);
  EXPECT_EQ(eval.checkpoint_count, 0u);
}

TEST(Evaluator, SingleTaskWithCheckpoint) {
  TaskGraph graph = make_uniform_chain(1, 42.0);
  graph.set_costs(0, 5.0, 4.0);
  const FailureModel model(0.01, 0.0);
  const ScheduleEvaluator evaluator(graph, model);
  const Evaluation eval = evaluator.evaluate(topo_schedule_with_ckpts(graph, {0}));
  expect_rel_near(model.expected_time(42.0, 5.0, 0.0), eval.expected_makespan, 1e-12);
  EXPECT_DOUBLE_EQ(eval.fault_free_time, 47.0);
}

TEST(Evaluator, UncheckpointedChainEqualsOneAtomicSegment) {
  // Memorylessness: per-task accounting of a checkpoint-free chain equals
  // the single-segment expectation E[t(sum w; 0; 0)] — the identity the
  // join/chain closed forms rely on.
  const std::vector<double> weights{13.0, 7.5, 21.0, 2.0, 40.0};
  const TaskGraph graph = make_chain(weights);
  for (const double lambda : {1e-4, 1e-3, 1e-2}) {
    for (const double downtime : {0.0, 12.0}) {
      const FailureModel model(lambda, downtime);
      const ScheduleEvaluator evaluator(graph, model);
      const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
      expect_rel_near(model.expected_time(total, 0.0, 0.0),
                      evaluator.evaluate(topo_schedule(graph)).expected_makespan, 1e-9);
    }
  }
}

TEST(Evaluator, FullyCheckpointedChainIsAProductOfSegments) {
  const std::vector<double> weights{13.0, 7.5, 21.0, 2.0, 40.0};
  TaskGraph graph = make_chain(weights);
  graph.apply_cost_model(CostModel::proportional(0.1));
  const FailureModel model(0.004, 1.0);
  const ScheduleEvaluator evaluator(graph, model);

  Schedule schedule = topo_schedule(graph);
  for (VertexId v = 0; v < graph.task_count(); ++v) schedule.checkpointed[v] = 1;

  double expected = model.expected_time(weights[0], graph.ckpt_cost(0), 0.0);
  for (std::size_t i = 1; i < weights.size(); ++i) {
    expected += model.expected_time(weights[i], graph.ckpt_cost(static_cast<VertexId>(i)),
                                    graph.recovery_cost(static_cast<VertexId>(i - 1)));
  }
  expect_rel_near(expected, evaluator.evaluate(schedule).expected_makespan, 1e-9);
}

TEST(Evaluator, PartiallyCheckpointedChainMatchesSegmentForm) {
  // Checkpoints at positions 1 and 3 of a 6-chain: three segments.
  const std::vector<double> w{5.0, 9.0, 14.0, 3.0, 8.0, 11.0};
  TaskGraph graph = make_chain(w);
  for (VertexId v = 0; v < graph.task_count(); ++v) graph.set_costs(v, 2.0, 1.5);
  const FailureModel model(0.01, 0.5);
  const ScheduleEvaluator evaluator(graph, model);
  const Schedule schedule = topo_schedule_with_ckpts(graph, {1, 3});

  const double expected = model.expected_time(w[0] + w[1], 2.0, 0.0) +
                          model.expected_time(w[2] + w[3], 2.0, 1.5) +
                          model.expected_time(w[4] + w[5], 0.0, 1.5);
  expect_rel_near(expected, evaluator.evaluate(schedule).expected_makespan, 1e-9);
}

TEST(Evaluator, ForkWithCheckpointedSourceMatchesTheoremOneFormula) {
  const std::vector<double> sinks{11.0, 17.0, 23.0, 4.0};
  TaskGraph graph = make_fork(31.0, sinks);
  graph.set_costs(0, 6.0, 2.5);
  const FailureModel model(0.008, 2.0);
  const ScheduleEvaluator evaluator(graph, model);
  const Schedule schedule = topo_schedule_with_ckpts(graph, {0});

  double expected = model.expected_time(31.0, 6.0, 0.0);
  for (const double w : sinks) expected += model.expected_time(w, 0.0, 2.5);
  expect_rel_near(expected, evaluator.evaluate(schedule).expected_makespan, 1e-9);
}

TEST(Evaluator, ForkWithoutCheckpointMatchesTheoremOneFormula) {
  const std::vector<double> sinks{11.0, 17.0, 23.0, 4.0};
  const TaskGraph graph = make_fork(31.0, sinks);
  const FailureModel model(0.008, 2.0);
  const ScheduleEvaluator evaluator(graph, model);

  double expected = model.expected_time(31.0, 0.0, 0.0);
  for (const double w : sinks) expected += model.expected_time(w, 0.0, 31.0);
  expect_rel_near(expected, evaluator.evaluate(topo_schedule(graph)).expected_makespan, 1e-9);
}

TEST(Evaluator, ForkSinkOrderIsIrrelevant) {
  TaskGraph graph = make_fork(31.0, std::vector<double>{11.0, 17.0, 23.0, 4.0});
  graph.set_costs(0, 6.0, 2.5);
  const FailureModel model(0.01, 0.0);
  const ScheduleEvaluator evaluator(graph, model);

  const Schedule a({0, 1, 2, 3, 4}, {1, 0, 0, 0, 0});
  const Schedule b({0, 4, 2, 1, 3}, {1, 0, 0, 0, 0});
  expect_rel_near(evaluator.evaluate(a).expected_makespan, evaluator.evaluate(b).expected_makespan,
                  1e-12);
}

TEST(Evaluator, NoFailuresReducesToFaultFreeTime) {
  TaskGraph graph = make_fork_join(3, 4, 10.0);
  graph.apply_cost_model(CostModel::constant(2.0));
  const ScheduleEvaluator evaluator(graph, FailureModel(0.0, 100.0));
  Schedule schedule = topo_schedule(graph);
  schedule.checkpointed[2] = 1;
  schedule.checkpointed[5] = 1;
  const Evaluation eval = evaluator.evaluate(schedule);
  EXPECT_DOUBLE_EQ(eval.expected_makespan, graph.total_weight() + 4.0);
  EXPECT_DOUBLE_EQ(eval.expected_makespan, eval.fault_free_time);
}

TEST(Evaluator, ExpectedMakespanNeverBelowFaultFreeTime) {
  TaskGraph graph = make_layered_random({});
  graph.apply_cost_model(CostModel::proportional(0.1));
  const ScheduleEvaluator evaluator(graph, FailureModel(0.002, 1.0));
  Schedule schedule = topo_schedule(graph);
  for (VertexId v = 0; v < graph.task_count(); v += 3) schedule.checkpointed[v] = 1;
  const Evaluation eval = evaluator.evaluate(schedule);
  EXPECT_GE(eval.expected_makespan, eval.fault_free_time);
  EXPECT_GE(eval.ratio, 1.0);
}

TEST(Evaluator, MonotoneInFailureRate) {
  TaskGraph graph = make_fork_join(2, 3, 25.0);
  graph.apply_cost_model(CostModel::proportional(0.1));
  Schedule schedule = topo_schedule(graph);
  schedule.checkpointed[1] = 1;
  double previous = 0.0;
  for (const double lambda : {1e-5, 1e-4, 1e-3, 1e-2}) {
    const double value =
        ScheduleEvaluator(graph, FailureModel(lambda, 0.0)).evaluate(schedule).expected_makespan;
    EXPECT_GT(value, previous);
    previous = value;
  }
}

TEST(Evaluator, PerTaskBreakdownSumsToMakespan) {
  TaskGraph graph = make_paper_figure1(10.0);
  graph.apply_cost_model(CostModel::proportional(0.1));
  const ScheduleEvaluator evaluator(graph, FailureModel(0.003, 0.0));
  // The paper's linearization T0 T3 T1 T2 T4 T5 T6 T7, checkpoints on T3, T4.
  const Schedule schedule({0, 3, 1, 2, 4, 5, 6, 7},
                          {0, 0, 0, 1, 1, 0, 0, 0});
  const Evaluation eval = evaluator.evaluate(schedule);
  ASSERT_EQ(eval.per_task_expected.size(), graph.task_count());
  double sum = 0.0;
  for (const double x : eval.per_task_expected) {
    EXPECT_GT(x, 0.0);
    sum += x;
  }
  expect_rel_near(eval.expected_makespan, sum, 1e-12);
  EXPECT_EQ(eval.checkpoint_count, 2u);
}

TEST(Evaluator, PaperFigure1RecoverySemantics) {
  // With T3 and T4 checkpointed, a failure while running T5 must not force
  // re-running T0 (T3's checkpoint shields it); the lost-work set of T7
  // after a late failure contains T1 and T2 (nothing on that path is
  // checkpointed). We check the consequences numerically: making T3's
  // recovery free lowers the makespan, and checkpointing T2 lowers the
  // re-execution exposure of T7.
  TaskGraph graph = make_paper_figure1(10.0);
  graph.apply_cost_model(CostModel::proportional(0.3));
  const FailureModel model(0.01, 0.0);
  const Schedule schedule({0, 3, 1, 2, 4, 5, 6, 7}, {0, 0, 0, 1, 1, 0, 0, 0});
  const double base =
      ScheduleEvaluator(graph, model).evaluate(schedule).expected_makespan;

  TaskGraph cheap_recovery = graph;
  cheap_recovery.set_costs(3, graph.ckpt_cost(3), 0.0);
  EXPECT_LT(ScheduleEvaluator(cheap_recovery, model).evaluate(schedule).expected_makespan, base);

  TaskGraph free_ckpt_t2 = graph;
  free_ckpt_t2.set_costs(2, 0.0, 0.0);
  Schedule with_t2 = schedule;
  with_t2.checkpointed[2] = 1;
  EXPECT_LT(ScheduleEvaluator(free_ckpt_t2, model).evaluate(with_t2).expected_makespan, base);
}

TEST(Evaluator, FreeCheckpointNeverHurts) {
  // A checkpoint with c = r = 0 can only shrink lost-work sets.
  TaskGraph graph = make_layered_random({.task_count = 24, .layer_count = 4, .seed = 11});
  const FailureModel model(0.01, 0.0);
  for (VertexId v = 0; v < graph.task_count(); ++v) {
    TaskGraph modified = graph;
    modified.set_costs(v, 0.0, 0.0);
    const ScheduleEvaluator evaluator(modified, model);
    Schedule without = topo_schedule(modified);
    Schedule with = without;
    with.checkpointed[v] = 1;
    EXPECT_LE(evaluator.evaluate(with).expected_makespan,
              evaluator.evaluate(without).expected_makespan * (1.0 + 1e-12))
        << "vertex " << v;
  }
}

TEST(Evaluator, RelabelingVerticesDoesNotChangeTheValue) {
  // Same logical workflow, ids permuted: the evaluation must be identical.
  const std::vector<double> w{5.0, 9.0, 14.0, 3.0};
  TaskGraph chain = make_chain(w);
  chain.apply_cost_model(CostModel::constant(1.0));
  const FailureModel model(0.02, 0.0);
  const double reference = ScheduleEvaluator(chain, model)
                               .evaluate(topo_schedule_with_ckpts(chain, {1}))
                               .expected_makespan;

  // Rebuild the chain with reversed ids: 3 -> 2 -> 1 -> 0.
  DagBuilder builder;
  builder.add_vertices(4);
  builder.add_edge(3, 2);
  builder.add_edge(2, 1);
  builder.add_edge(1, 0);
  std::vector<Task> tasks(4);
  for (std::size_t i = 0; i < 4; ++i) {
    tasks[3 - i].weight = w[i];
    tasks[3 - i].ckpt_cost = 1.0;
    tasks[3 - i].recovery_cost = 1.0;
  }
  const TaskGraph relabeled(std::move(builder).build(), std::move(tasks));
  Schedule schedule({3, 2, 1, 0}, {0, 0, 1, 0});  // checkpoint the 2nd task
  expect_rel_near(reference,
                  ScheduleEvaluator(relabeled, model).evaluate(schedule).expected_makespan, 1e-12);
}

TEST(Evaluator, WorkspaceReuseIsIdempotent) {
  TaskGraph graph = make_layered_random({.task_count = 30, .seed = 3});
  graph.apply_cost_model(CostModel::proportional(0.1));
  const ScheduleEvaluator evaluator(graph, FailureModel(0.005, 1.0));
  EvaluatorWorkspace ws;
  Schedule a = topo_schedule(graph);
  Schedule b = a;
  for (VertexId v = 0; v < graph.task_count(); v += 2) b.checkpointed[v] = 1;
  const double a1 = evaluator.expected_makespan(a, ws);
  const double b1 = evaluator.expected_makespan(b, ws);
  const double a2 = evaluator.expected_makespan(a, ws);
  const double b2 = evaluator.expected_makespan(b, ws);
  EXPECT_DOUBLE_EQ(a1, a2);
  EXPECT_DOUBLE_EQ(b1, b2);
  EXPECT_NE(a1, b1);
}

TEST(WorkspacePool, LeasesAreExclusiveAndRecycled) {
  WorkspacePool pool;
  EvaluatorWorkspace* first = nullptr;
  EvaluatorWorkspace* second = nullptr;
  {
    WorkspacePool::Lease a = pool.acquire();
    WorkspacePool::Lease b = pool.acquire();
    first = &a.get();
    second = &b.get();
    EXPECT_NE(first, second);  // concurrent leases never share a workspace
  }
  {
    // Returned workspaces are recycled (LIFO — `a` is returned last,
    // so it comes back first), keeping warmed buffers instead of
    // re-allocating.
    WorkspacePool::Lease lease = pool.acquire();
    EXPECT_EQ(first, &lease.get());
  }
}

TEST(WorkspacePoolDeathTest, AbortsWhenALeaseOutlivesThePool) {
  // The Lease destructor takes the pool mutex, so a lease that outlives
  // its pool is a use-after-free. The pool destructor turns that silent
  // corruption into a loud abort (see the lifetime contract in the
  // header); this pins the diagnostic down as a regression test.
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  EXPECT_DEATH(
      {
        auto pool = std::make_unique<WorkspacePool>();
        WorkspacePool::Lease lease = pool->acquire();
        pool.reset();  // dies with the lease still outstanding
      },
      "outstanding");
}

TEST(Evaluator, RejectsInvalidSchedules) {
  const TaskGraph graph = make_uniform_chain(3, 1.0);
  const ScheduleEvaluator evaluator(graph, FailureModel(0.01, 0.0));
  EXPECT_THROW(evaluator.evaluate(Schedule({0, 2, 1}, {0, 0, 0})), ScheduleError);
  EXPECT_THROW(evaluator.evaluate(Schedule({0, 1}, {0, 0})), ScheduleError);
  EXPECT_THROW(evaluator.evaluate(Schedule({0, 1, 2}, {0, 0})), ScheduleError);
  EXPECT_THROW(evaluator.evaluate(Schedule({0, 1, 1}, {0, 0, 0})), ScheduleError);
}

TEST(Evaluator, EmptyGraphHasZeroMakespan) {
  const TaskGraph graph;
  const ScheduleEvaluator evaluator(graph, FailureModel(0.01, 0.0));
  EXPECT_DOUBLE_EQ(evaluator.evaluate(Schedule()).expected_makespan, 0.0);
}

// Deferral identity on joins: executing independent sources one-by-one and
// deferring lost re-executions to the sink gives the same expectation as
// the atomic phase-2 accounting. Parameterized over lambda and downtime.
class DeferralIdentity : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(DeferralIdentity, JoinEqualsAtomicSegment) {
  const auto [lambda, downtime] = GetParam();
  const std::vector<double> sources{12.0, 5.0, 30.0, 8.0};
  const TaskGraph graph = make_join(sources, 9.0);
  const FailureModel model(lambda, downtime);
  const ScheduleEvaluator evaluator(graph, model);
  const double atomic = model.expected_time(
      std::accumulate(sources.begin(), sources.end(), 0.0) + 9.0, 0.0, 0.0);
  assert_rel_near(atomic, evaluator.evaluate(topo_schedule(graph)).expected_makespan, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Rates, DeferralIdentity,
                         ::testing::Combine(::testing::Values(1e-4, 1e-3, 1e-2, 5e-2),
                                            ::testing::Values(0.0, 1.0, 10.0)));

}  // namespace
}  // namespace fpsched
