// Tests for the terminal chart renderer.
#include "support/ascii_plot.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <sstream>

#include "support/error.hpp"

namespace fpsched {
namespace {

TEST(AsciiChart, EmptyChartPrintsNothing) {
  AsciiChart chart("empty");
  std::ostringstream os;
  chart.print(os);
  EXPECT_TRUE(os.str().empty());
}

TEST(AsciiChart, RendersTitleLegendAndFrame) {
  AsciiChart chart("my figure", 40, 10);
  chart.set_x_label("n");
  chart.set_y_label("ratio");
  chart.add_series({"DF-CkptW", {1, 2, 3}, {1.0, 1.2, 1.5}});
  chart.add_series({"DF-CkptC", {1, 2, 3}, {1.1, 1.15, 1.3}});
  std::ostringstream os;
  chart.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("my figure"), std::string::npos);
  EXPECT_NE(out.find("DF-CkptW"), std::string::npos);
  EXPECT_NE(out.find("DF-CkptC"), std::string::npos);
  EXPECT_NE(out.find("legend:"), std::string::npos);
  EXPECT_NE(out.find("x: n"), std::string::npos);
  EXPECT_NE(out.find("y: ratio"), std::string::npos);
  // Distinct glyphs for distinct series.
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find('o'), std::string::npos);
}

TEST(AsciiChart, SkipsNonFinitePoints) {
  AsciiChart chart("with-nans", 30, 8);
  chart.add_series({"s", {1, 2, 3}, {1.0, std::numeric_limits<double>::quiet_NaN(), 2.0}});
  std::ostringstream os;
  chart.print(os);
  EXPECT_FALSE(os.str().empty());
}

TEST(AsciiChart, AllNonFinitePrintsNothing) {
  AsciiChart chart("all-nan", 30, 8);
  chart.add_series({"s", {1.0}, {std::numeric_limits<double>::infinity()}});
  std::ostringstream os;
  chart.print(os);
  EXPECT_TRUE(os.str().empty());
}

TEST(AsciiChart, ConstantSeriesDoesNotDivideByZero) {
  AsciiChart chart("flat", 30, 8);
  chart.add_series({"s", {1, 2, 3}, {5.0, 5.0, 5.0}});
  std::ostringstream os;
  chart.print(os);
  EXPECT_FALSE(os.str().empty());
}

TEST(AsciiChart, MismatchedSeriesSizesRejected) {
  AsciiChart chart("bad", 30, 8);
  EXPECT_THROW(chart.add_series({"s", {1, 2}, {1.0}}), InvalidArgument);
}

}  // namespace
}  // namespace fpsched
