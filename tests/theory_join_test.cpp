// Tests for the join-graph theory (Lemmas 1-2, Corollaries 1-2).
#include "core/theory_join.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/evaluator.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "test_util.hpp"
#include "workflows/synthetic.hpp"

namespace fpsched {
namespace {

using testing::assert_rel_near;
using testing::expect_rel_near;

TaskGraph random_join(Rng& rng, std::size_t sources, double cost_factor) {
  std::vector<double> weights(sources);
  for (double& w : weights) w = rng.uniform(5.0, 60.0);
  TaskGraph graph = make_join(weights, rng.uniform(2.0, 20.0));
  for (VertexId v = 0; v < graph.task_count(); ++v) {
    const double c = cost_factor * graph.weight(v);
    graph.set_costs(v, c, c);
  }
  return graph;
}

TEST(IsJoin, RecognizesJoins) {
  VertexId sink = 0;
  EXPECT_TRUE(is_join(make_join(std::vector<double>{1.0, 2.0}, 3.0).dag(), &sink));
  EXPECT_EQ(sink, 2u);
  EXPECT_TRUE(is_join(make_uniform_chain(2, 1.0).dag()));
  EXPECT_FALSE(is_join(make_uniform_chain(3, 1.0).dag()));
  EXPECT_FALSE(is_join(make_fork(1.0, std::vector<double>{1.0, 2.0}).dag()));
}

TEST(JoinGValue, MatchesLemma2Formula) {
  TaskGraph graph = make_join(std::vector<double>{10.0}, 1.0);
  graph.set_costs(0, 2.0, 3.0);
  const FailureModel model(0.05, 0.0);
  const double lambda = model.lambda();
  const double expected = std::exp(-lambda * (10.0 + 2.0 + 3.0)) + std::exp(-lambda * 3.0) -
                          std::exp(-lambda * (10.0 + 2.0));
  expect_rel_near(expected, join_g_value(graph, model, 0), 1e-12);
}

// The closed form of Lemma 2 (as re-derived; the typeset Eq. (2) has
// typos) must match the general Theorem-3 evaluator on the corresponding
// schedule, for every partition.
TEST(JoinExpectedTime, AgreesWithGeneralEvaluatorOnAllPartitions) {
  Rng rng(4242);
  for (int instance = 0; instance < 8; ++instance) {
    const TaskGraph graph = random_join(rng, 5, 0.15);
    const FailureModel model(rng.uniform(0.001, 0.02), (instance % 2) ? 0.0 : 2.5);
    const ScheduleEvaluator evaluator(graph, model);
    for (std::uint64_t mask = 0; mask < 32; ++mask) {
      std::vector<VertexId> ckpt;
      for (std::size_t b = 0; b < 5; ++b)
        if (mask & (1ull << b)) ckpt.push_back(static_cast<VertexId>(b));
      const double closed_form = join_expected_time(graph, model, ckpt);
      const Schedule schedule = join_schedule(graph, model, ckpt);
      const double general = evaluator.evaluate(schedule).expected_makespan;
      assert_rel_near(general, closed_form, 1e-9, "join closed form vs evaluator");
    }
  }
}

TEST(JoinExpectedTime, FailureFreeCase) {
  const TaskGraph graph = make_join(std::vector<double>{10.0, 20.0}, 5.0);
  const FailureModel model(0.0, 0.0);
  EXPECT_DOUBLE_EQ(join_expected_time(graph, model, {}), 35.0);
  EXPECT_DOUBLE_EQ(join_expected_time(graph, model, {0, 1}), 35.0);  // c = 0 by default
}

TEST(Lemma2Ordering, GSortBeatsOrEqualsEveryPermutation) {
  // The g-descending order of the checkpointed set must minimize the
  // expected time among all phase-1 orders. We brute-force permutations
  // through the general evaluator on schedules ordered accordingly.
  Rng rng(99);
  const TaskGraph graph = random_join(rng, 4, 0.3);
  const FailureModel model(0.02, 1.0);
  const ScheduleEvaluator evaluator(graph, model);

  const std::vector<VertexId> ckpt{0, 1, 2, 3};
  const double lemma_value = join_expected_time(graph, model, ckpt);

  std::vector<VertexId> perm = ckpt;
  std::sort(perm.begin(), perm.end());
  double best_permutation = std::numeric_limits<double>::infinity();
  do {
    // Phase 1 in this order, then the sink (no non-checkpointed sources).
    std::vector<VertexId> order = perm;
    order.push_back(4);
    Schedule schedule(order, {1, 1, 1, 1, 0});
    best_permutation =
        std::min(best_permutation, evaluator.evaluate(schedule).expected_makespan);
  } while (std::next_permutation(perm.begin(), perm.end()));
  expect_rel_near(best_permutation, lemma_value, 1e-9,
                  "g-ordering should achieve the best permutation value");
}

TEST(Corollary1, MatchesBruteForceWithUniformCosts) {
  Rng rng(7);
  for (int instance = 0; instance < 6; ++instance) {
    std::vector<double> weights(7);
    for (double& w : weights) w = rng.uniform(5.0, 80.0);
    TaskGraph graph = make_join(weights, rng.uniform(1.0, 10.0));
    graph.apply_cost_model(CostModel::constant(rng.uniform(0.5, 6.0)));
    const FailureModel model(rng.uniform(0.002, 0.03), 0.0);

    const JoinSolution fast = solve_join_equal_costs(graph, model);
    const JoinSolution exact = solve_join_bruteforce(graph, model);
    assert_rel_near(exact.expected_makespan, fast.expected_makespan, 1e-9,
                    "Corollary 1 vs brute force");
    EXPECT_NO_THROW(validate_schedule(graph, fast.schedule));
  }
}

TEST(Corollary1, RequiresUniformCosts) {
  TaskGraph graph = make_join(std::vector<double>{10.0, 20.0}, 5.0);
  graph.set_costs(0, 1.0, 1.0);
  graph.set_costs(1, 2.0, 2.0);
  EXPECT_THROW(solve_join_equal_costs(graph, FailureModel(0.01, 0.0)), InvalidArgument);
}

TEST(Corollary2, ZeroRecoveryClosedForm) {
  // With r = 0, Corollary 2's simple sum must match both the Lemma-2 form
  // and the general evaluator.
  TaskGraph graph = make_join(std::vector<double>{15.0, 25.0, 35.0}, 0.0);
  for (VertexId v = 0; v < 3; ++v) graph.set_costs(v, 4.0, 0.0);
  const FailureModel model(0.02, 0.0);
  const ScheduleEvaluator evaluator(graph, model);
  for (const std::vector<VertexId>& ckpt :
       {std::vector<VertexId>{}, {0}, {0, 1}, {0, 1, 2}, {2}}) {
    const double corollary = join_expected_time_zero_recovery(graph, model, ckpt);
    const double lemma = join_expected_time(graph, model, ckpt);
    const double general =
        evaluator.evaluate(join_schedule(graph, model, ckpt)).expected_makespan;
    expect_rel_near(corollary, lemma, 1e-9, "Corollary 2 vs Lemma 2");
    expect_rel_near(corollary, general, 1e-9, "Corollary 2 vs evaluator");
  }
}

TEST(Corollary2, RejectsNonZeroRecovery) {
  TaskGraph graph = make_join(std::vector<double>{15.0, 25.0}, 0.0);
  graph.set_costs(0, 4.0, 3.0);
  EXPECT_THROW(join_expected_time_zero_recovery(graph, FailureModel(0.01, 0.0), {0}),
               InvalidArgument);
}

TEST(JoinBruteForce, NeverWorseThanArbitraryPartitions) {
  Rng rng(55);
  const TaskGraph graph = random_join(rng, 6, 0.2);
  const FailureModel model(0.015, 0.0);
  const JoinSolution best = solve_join_bruteforce(graph, model);
  for (int probe = 0; probe < 20; ++probe) {
    std::vector<VertexId> ckpt;
    for (VertexId v = 0; v < 6; ++v)
      if (rng.bernoulli(0.5)) ckpt.push_back(v);
    EXPECT_LE(best.expected_makespan,
              join_expected_time(graph, model, ckpt) * (1.0 + 1e-12));
  }
}

TEST(JoinSchedule, ShapeFollowsLemma1) {
  Rng rng(21);
  const TaskGraph graph = random_join(rng, 5, 0.1);
  const FailureModel model(0.01, 0.0);
  const std::vector<VertexId> ckpt{1, 3, 4};
  const Schedule schedule = join_schedule(graph, model, ckpt);
  EXPECT_NO_THROW(validate_schedule(graph, schedule));
  // Checkpointed sources first, then the rest, sink last.
  EXPECT_EQ(schedule.order.size(), 6u);
  EXPECT_EQ(schedule.order.back(), 5u);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_TRUE(schedule.is_checkpointed(schedule.order[i]));
  for (std::size_t i = 3; i < 5; ++i) EXPECT_FALSE(schedule.is_checkpointed(schedule.order[i]));
  // And they are g-sorted (non-increasing).
  for (std::size_t i = 0; i + 1 < 3; ++i) {
    EXPECT_GE(join_g_value(graph, model, schedule.order[i]),
              join_g_value(graph, model, schedule.order[i + 1]) - 1e-12);
  }
}

TEST(JoinRoutines, RejectNonJoins) {
  const TaskGraph fork = make_fork(1.0, std::vector<double>{1.0, 2.0});
  const FailureModel model(0.01, 0.0);
  EXPECT_THROW(join_expected_time(fork, model, {}), InvalidArgument);
  EXPECT_THROW(solve_join_bruteforce(fork, model), InvalidArgument);
}

}  // namespace
}  // namespace fpsched
