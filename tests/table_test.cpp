// Tests for the console table / CSV writer.
#include "support/table.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <sstream>

#include "support/error.hpp"

namespace fpsched {
namespace {

TEST(FormatDouble, FixedPrecision) {
  EXPECT_EQ(format_double(1.23456, 3), "1.235");
  EXPECT_EQ(format_double(2.0, 1), "2.0");
  EXPECT_EQ(format_double(-0.5, 2), "-0.50");
}

TEST(FormatDouble, NanRendersWithoutSign) {
  // Empty-accumulator NaNs must render recognizably (never as "-nan" or a
  // digit string) in tables and CSV.
  EXPECT_EQ(format_double(std::numeric_limits<double>::quiet_NaN(), 4), "nan");
  EXPECT_EQ(format_double(-std::numeric_limits<double>::quiet_NaN(), 4), "nan");
}

TEST(Table, RejectsEmptyHeaderAndBadRows) {
  EXPECT_THROW(Table({}), InvalidArgument);
  Table table({"a", "b"});
  EXPECT_THROW(table.add_row({"only one"}), InvalidArgument);
}

TEST(Table, PrintsAlignedColumns) {
  Table table({"name", "value"});
  table.row().cell("short").cell(1.5);
  table.row().cell("a-much-longer-name").cell(20.25, 2);
  std::ostringstream os;
  table.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("a-much-longer-name"), std::string::npos);
  EXPECT_NE(out.find("20.25"), std::string::npos);
  // Header separator row exists.
  EXPECT_NE(out.find("|-"), std::string::npos);
  // All lines end with the table border.
  std::istringstream lines(out);
  std::string line;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.back(), '|');
  }
}

TEST(Table, CsvEscapesSpecialCells) {
  Table table({"k", "v"});
  table.add_row({"plain", "with,comma"});
  table.add_row({"quote\"inside", "multi\nline"});
  std::ostringstream os;
  table.to_csv(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("k,v"), std::string::npos);
  EXPECT_NE(out.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(out.find("\"quote\"\"inside\""), std::string::npos);
  EXPECT_NE(out.find("\"multi\nline\""), std::string::npos);
}

TEST(Table, RowBuilderSizeTypes) {
  Table table({"n", "x"});
  table.row().cell(std::size_t{42}).cell(3.14159, 4);
  std::ostringstream os;
  table.to_csv(os);
  EXPECT_NE(os.str().find("42,3.1416"), std::string::npos);
}

TEST(Table, CountsRowsAndColumns) {
  Table table({"a", "b", "c"});
  EXPECT_EQ(table.columns(), 3u);
  EXPECT_EQ(table.rows(), 0u);
  table.add_row({"1", "2", "3"});
  EXPECT_EQ(table.rows(), 1u);
}

}  // namespace
}  // namespace fpsched
