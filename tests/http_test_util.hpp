// Raw-socket HTTP helpers for the service tests: a blocking one-shot
// exchange (the server always closes after one response) plus minimal
// response splitting and chunked-transfer decoding. Deliberately not a
// real HTTP client — the tests should exercise the server's actual wire
// format, not a library's tolerance for deviations from it.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "support/error.hpp"
#include "support/socket.hpp"

namespace fpsched::testing {

/// Sends `request` verbatim to 127.0.0.1:port and returns everything the
/// server sends back until it closes the connection.
inline std::string http_exchange(std::uint16_t port, const std::string& request) {
  FileDescriptor fd = connect_loopback(port);
  if (!send_all(fd.get(), request)) throw Error("send failed");
  std::string response;
  char buffer[4096];
  for (;;) {
    const long received = recv_some(fd.get(), buffer, sizeof buffer);
    if (received <= 0) break;
    response.append(buffer, static_cast<std::size_t>(received));
  }
  return response;
}

/// Convenience GET in the exact shape curl sends.
inline std::string http_get(std::uint16_t port, const std::string& target) {
  return http_exchange(port, "GET " + target + " HTTP/1.1\r\nHost: t\r\n\r\n");
}

/// The response body (everything after the header block).
inline std::string http_body(const std::string& response) {
  const std::size_t at = response.find("\r\n\r\n");
  return at == std::string::npos ? std::string() : response.substr(at + 4);
}

/// The numeric status of the response's status line ("HTTP/1.1 200 OK").
inline int http_status(const std::string& response) {
  if (response.size() < 12 || response.compare(0, 9, "HTTP/1.1 ") != 0) return -1;
  return std::stoi(response.substr(9, 3));
}

/// Reassembles a chunked-transfer body (sizes in hex, 0-chunk ends).
inline std::string dechunk(const std::string& body) {
  std::string out;
  std::size_t pos = 0;
  for (;;) {
    const std::size_t line_end = body.find("\r\n", pos);
    if (line_end == std::string::npos) throw Error("truncated chunk size line");
    const std::size_t size = std::stoul(body.substr(pos, line_end - pos), nullptr, 16);
    if (size == 0) return out;
    pos = line_end + 2;
    if (pos + size + 2 > body.size()) throw Error("truncated chunk");
    out.append(body, pos, size);
    pos += size + 2;  // skip the chunk's trailing CRLF
  }
}

}  // namespace fpsched::testing
