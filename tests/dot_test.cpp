// Tests for DOT export.
#include "dag/dot.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "workflows/synthetic.hpp"

namespace fpsched {
namespace {

TEST(Dot, EmitsNodesAndEdges) {
  const TaskGraph graph = make_paper_figure1(1.0);
  std::ostringstream os;
  write_dot(os, graph.dag());
  const std::string out = os.str();
  EXPECT_NE(out.find("digraph workflow"), std::string::npos);
  for (int v = 0; v < 8; ++v) {
    // Built piecewise (+= instead of one operator+ chain): GCC 12's
    // -Wrestrict misfires on `const char* + std::string&&` chains when
    // inlined (GCC PR 105651), and the build runs -Werror in CI.
    std::string needle = "n";
    needle += std::to_string(v);
    needle += " [label=\"T";
    needle += std::to_string(v);
    EXPECT_NE(out.find(needle), std::string::npos);
  }
  EXPECT_NE(out.find("n0 -> n3;"), std::string::npos);
  EXPECT_NE(out.find("n2 -> n7;"), std::string::npos);
  EXPECT_EQ(out.find("n3 -> n0;"), std::string::npos);
}

TEST(Dot, MarksCheckpointedVertices) {
  const TaskGraph graph = make_paper_figure1(1.0);
  const std::vector<std::uint8_t> ckpt{0, 0, 0, 1, 1, 0, 0, 0};
  std::ostringstream os;
  DotOptions options;
  options.graph_name = "fig1";
  options.checkpointed = ckpt;
  write_dot(os, graph.dag(), options);
  const std::string out = os.str();
  EXPECT_NE(out.find("digraph fig1"), std::string::npos);
  // Exactly two filled nodes (T3 and T4, the paper's example).
  std::size_t filled = 0;
  for (std::size_t at = out.find("style=filled"); at != std::string::npos;
       at = out.find("style=filled", at + 1))
    ++filled;
  EXPECT_EQ(filled, 2u);
}

TEST(Dot, UsesProvidedNamesAndAnnotations) {
  const TaskGraph graph = make_chain(std::vector<double>{1.0, 2.0});
  const std::vector<std::string> names{"first", "second"};
  const std::vector<std::string> annotations{"w=1", ""};
  std::ostringstream os;
  DotOptions options;
  options.names = names;
  options.annotations = annotations;
  write_dot(os, graph.dag(), options);
  const std::string out = os.str();
  EXPECT_NE(out.find("first"), std::string::npos);
  EXPECT_NE(out.find("second"), std::string::npos);
  EXPECT_NE(out.find("w=1"), std::string::npos);
}

}  // namespace
}  // namespace fpsched
