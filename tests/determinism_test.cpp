// Determinism audit: the NDJSON record stream of a registered experiment
// must be byte-identical across every thread-count / eval-thread / cache
// combination, including the FPSCHED_THREADS environment default. This
// promotes the CI `cmp` legs into tier-1: a nondeterministic scheduler or
// a reassociated reduction fails here, with no CI round-trip.
#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>
#include <sstream>
#include <string>

#include "engine/experiment.hpp"
#include "engine/result_sink.hpp"
#include "obs/trace.hpp"
#include "support/env.hpp"

namespace fpsched::engine {
namespace {

/// The full fpsched_run-style NDJSON output of `name` under `options`,
/// produced in-process.
std::string run_ndjson(const std::string& name, const FigureOptions& options,
                       const ShardSpec& shard = {}) {
  std::ostringstream out;
  NdjsonSink sink(out);
  ResultSink* sinks[] = {&sink};
  run_experiment(ExperimentRegistry::global().find(name), options, sinks, nullptr, shard);
  return out.str();
}

/// Quick fig2 grid shrunk further (two sizes, strided sweep) so the audit
/// re-runs the experiment several times in tier-1 time.
FigureOptions audit_options() {
  FigureOptions options;
  apply_quick_options(options);
  options.sizes = {50, 100};
  options.stride = 8;
  return options;
}

/// RAII override of an environment variable.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name), saved_(env_string(name)) {
    ::setenv(name, value, 1);
  }
  ~ScopedEnv() {
    if (saved_) {
      ::setenv(name_, saved_->c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::optional<std::string> saved_;
};

TEST(DeterminismAudit, Fig2BytesInvariantAcrossThreadCombinations) {
  const FigureOptions baseline = audit_options();
  const std::string serial = [&] {
    FigureOptions options = baseline;
    options.threads = 1;
    return run_ndjson("fig2", options);
  }();
  ASSERT_FALSE(serial.empty());
  ASSERT_EQ(serial.back(), '\n');

  const struct {
    std::size_t threads;
    std::size_t eval_threads;
    bool instance_cache;
  } combos[] = {
      {4, 1, true},   // scenario-parallel
      {4, 1, false},  // ... without the instance cache
      {1, 4, true},   // serial engine, k-blocked evaluations
      {64, 3, true},  // nested: scenarios < workers, budgets + k-blocks stolen
      {64, 1, false},
  };
  for (const auto& combo : combos) {
    FigureOptions options = baseline;
    options.threads = combo.threads;
    options.eval_threads = combo.eval_threads;
    options.instance_cache = combo.instance_cache;
    EXPECT_EQ(serial, run_ndjson("fig2", options))
        << "threads=" << combo.threads << " eval_threads=" << combo.eval_threads
        << " cache=" << combo.instance_cache;
  }
}

TEST(DeterminismAudit, ExplicitExactMathMatchesDefaultBytes) {
  // eval_math = exact is the default spelled out; requesting it must not
  // perturb a single byte (the kernel layer routes through the same libm
  // call sequence).
  FigureOptions options = audit_options();
  options.threads = 1;
  const std::string implicit = run_ndjson("fig2", options);
  options.eval_math = EvalMath::exact;
  EXPECT_EQ(implicit, run_ndjson("fig2", options));
}

TEST(DeterminismAudit, FastMathIsThreadInvariantToo) {
  // The fast backend trades cross-host byte stability for speed, but
  // within one process the determinism contract is unchanged: threads,
  // eval-threads and the instance cache must not move a byte.
  FigureOptions baseline = audit_options();
  baseline.eval_math = EvalMath::fast;
  FigureOptions serial_options = baseline;
  serial_options.threads = 1;
  const std::string serial = run_ndjson("fig2", serial_options);
  ASSERT_FALSE(serial.empty());
  const struct {
    std::size_t threads;
    std::size_t eval_threads;
    bool instance_cache;
  } combos[] = {
      {4, 1, true},
      {1, 4, true},
      {64, 3, false},
  };
  for (const auto& combo : combos) {
    FigureOptions options = baseline;
    options.threads = combo.threads;
    options.eval_threads = combo.eval_threads;
    options.instance_cache = combo.instance_cache;
    EXPECT_EQ(serial, run_ndjson("fig2", options))
        << "threads=" << combo.threads << " eval_threads=" << combo.eval_threads
        << " cache=" << combo.instance_cache;
  }
}

TEST(DeterminismAudit, HonorsFpschedThreadsEnvDefault) {
  const FigureOptions baseline = audit_options();
  FigureOptions serial_options = baseline;
  serial_options.threads = 1;
  const std::string serial = run_ndjson("fig2", serial_options);
  for (const char* threads : {"5", "64"}) {
    const ScopedEnv env("FPSCHED_THREADS", threads);
    FigureOptions options = baseline;  // threads = 0: resolve from the environment
    EXPECT_EQ(serial, run_ndjson("fig2", options)) << "FPSCHED_THREADS=" << threads;
  }
}

TEST(DeterminismAudit, ShardsConcatenateUnderNestedScheduling) {
  // Process sharding composed with nested scheduling: each shard's slice
  // has few scenarios, so a wide engine goes nested inside every shard —
  // the concatenated shard streams must still equal the unsharded bytes.
  const FigureOptions baseline = audit_options();
  FigureOptions serial_options = baseline;
  serial_options.threads = 1;
  const std::string serial = run_ndjson("fig2", serial_options);
  FigureOptions wide = baseline;
  wide.threads = 32;
  wide.eval_threads = 2;
  std::string merged;
  const std::size_t shards = 3;
  for (std::size_t index = 1; index <= shards; ++index) {
    merged += run_ndjson("fig2", wide, {index, shards});
  }
  EXPECT_EQ(serial, merged);
}

TEST(DeterminismAudit, TelemetryAndTracingNeverTouchRecordBytes) {
  // The observability hard invariant: metrics are always-on and tracing
  // is opt-in, and neither may perturb a single figure byte. Compare the
  // fig2 and fig7 streams produced with tracing off against the same
  // runs with tracing on (metrics accumulate in both — they have no off
  // switch, which is exactly why they must stay out of the output path).
  FigureOptions options = audit_options();
  options.tasks = 60;
  options.threads = 4;
  const std::string fig2_plain = run_ndjson("fig2", options);
  const std::string fig7_plain = run_ndjson("fig7", options);

  obs::start_tracing();
  const std::string fig2_traced = run_ndjson("fig2", options);
  const std::string fig7_traced = run_ndjson("fig7", options);
  obs::stop_tracing();

  EXPECT_EQ(fig2_plain, fig2_traced);
  EXPECT_EQ(fig7_plain, fig7_traced);
  // And the trace actually captured the runs (an empty trace would make
  // the byte-compare vacuous).
  const std::string trace = obs::trace_json();
  EXPECT_NE(trace.find("\"name\":\"experiment fig2\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"experiment fig7\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);
}

TEST(DeterminismAudit, RobustnessSimulationIsThreadInvariant) {
  // The registry-migrated robustness study adds the simulated-best
  // policy path (Monte-Carlo trials inside a scenario); its records must
  // obey the same contract. Tiny trial count: the audit checks bytes,
  // not statistics.
  FigureOptions options;
  options.tasks = 40;
  options.trials = 25;
  options.threads = 1;
  const std::string serial = run_ndjson("robustness", options);
  ASSERT_FALSE(serial.empty());
  EXPECT_NE(serial.find("\"policy_kind\":\"simulated_best\""), std::string::npos);
  EXPECT_NE(serial.find("\"sim_distribution\":\"weibull\""), std::string::npos);
  options.threads = 8;
  options.eval_threads = 2;
  EXPECT_EQ(serial, run_ndjson("robustness", options));
}

TEST(DeterminismAudit, Fig7SweepExperimentIsInvariantToo) {
  // A lambda-axis experiment with best-linearization policies (the other
  // record shape CI used to cmp).
  FigureOptions options = audit_options();
  options.tasks = 60;
  options.threads = 1;
  const std::string serial = run_ndjson("fig7", options);
  ASSERT_FALSE(serial.empty());
  options.threads = 64;
  options.eval_threads = 2;
  EXPECT_EQ(serial, run_ndjson("fig7", options));
}

}  // namespace
}  // namespace fpsched::engine
