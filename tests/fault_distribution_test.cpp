// Tests for the fault inter-arrival distributions and the Weibull
// robustness extension of the simulator.
#include "sim/fault_distribution.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/evaluator.hpp"
#include "sim/trial_runner.hpp"
#include "support/error.hpp"
#include "support/stats.hpp"
#include "test_util.hpp"
#include "workflows/synthetic.hpp"

namespace fpsched {
namespace {

TEST(FaultDistribution, ExponentialMeanAndSampling) {
  const FaultDistribution dist = FaultDistribution::exponential(0.01);
  EXPECT_DOUBLE_EQ(dist.mean(), 100.0);
  EXPECT_TRUE(dist.is_exponential());
  Rng rng(1);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.push(dist.sample_gap(rng));
  EXPECT_NEAR(stats.mean(), 100.0, 2.0);
}

TEST(FaultDistribution, WeibullFromMtbfHitsTheRequestedMean) {
  for (const double shape : {0.5, 0.7, 1.0, 1.5, 3.0}) {
    const FaultDistribution dist = FaultDistribution::weibull_from_mtbf(shape, 250.0);
    EXPECT_NEAR(dist.mean(), 250.0, 1e-9) << "shape " << shape;
    Rng rng(7);
    RunningStats stats;
    for (int i = 0; i < 200000; ++i) stats.push(dist.sample_gap(rng));
    EXPECT_NEAR(stats.mean(), 250.0, 0.02 * 250.0) << "shape " << shape;
  }
}

TEST(FaultDistribution, WeibullShapeOneIsExponential) {
  // shape = 1 Weibull == exponential with rate 1/scale: compare tails.
  const FaultDistribution weibull = FaultDistribution::weibull(1.0, 100.0);
  Rng rng(5);
  int beyond = 0;
  const int draws = 200000;
  for (int i = 0; i < draws; ++i)
    if (weibull.sample_gap(rng) > 100.0) ++beyond;
  EXPECT_NEAR(static_cast<double>(beyond) / draws, std::exp(-1.0), 0.01);
}

TEST(FaultDistribution, SmallShapeIsBursty) {
  // shape < 1: higher variance than exponential at the same mean.
  const FaultDistribution bursty = FaultDistribution::weibull_from_mtbf(0.5, 100.0);
  const FaultDistribution expo = FaultDistribution::exponential(0.01);
  Rng rng(3);
  RunningStats b;
  RunningStats e;
  for (int i = 0; i < 100000; ++i) {
    b.push(bursty.sample_gap(rng));
    e.push(expo.sample_gap(rng));
  }
  EXPECT_GT(b.stddev(), 1.5 * e.stddev());
}

TEST(FaultDistribution, Validation) {
  EXPECT_THROW(FaultDistribution::exponential(0.0), InvalidArgument);
  EXPECT_THROW(FaultDistribution::weibull(0.0, 1.0), InvalidArgument);
  EXPECT_THROW(FaultDistribution::weibull_from_mtbf(1.0, -5.0), InvalidArgument);
  EXPECT_NE(FaultDistribution::weibull(2.0, 10.0).describe().find("weibull"),
            std::string::npos);
}

TEST(WeibullSimulation, ExponentialInjectionMatchesTheAnalyticModel) {
  // Injecting an explicit exponential distribution must agree with the
  // evaluator exactly like the built-in path does.
  TaskGraph graph = make_paper_figure1(20.0);
  graph.apply_cost_model(CostModel::proportional(0.1));
  const FailureModel model(0.004, 1.0);
  const Schedule schedule({0, 3, 1, 2, 4, 5, 6, 7}, {0, 0, 0, 1, 1, 0, 0, 0});
  const double analytic = ScheduleEvaluator(graph, model).evaluate(schedule).expected_makespan;
  const FaultSimulator sim(graph, model, schedule);
  const MonteCarloSummary mc = run_trials_with_distribution(
      sim, FaultDistribution::exponential(model.lambda()), {.trials = 40000, .seed = 2});
  EXPECT_TRUE(mc.consistent_with(analytic, 3.0))
      << "analytic=" << analytic << " mc=" << mc.mean_makespan() << " +/- " << mc.ci95();
}

TEST(WeibullSimulation, SameMtbfDifferentShapeChangesTheMakespan) {
  // The whole point of the robustness probe: at equal MTBF, non-memoryless
  // failures give a different expected makespan than exponential ones.
  TaskGraph graph = make_uniform_chain(8, 60.0);
  graph.apply_cost_model(CostModel::proportional(0.1));
  const FailureModel model(0.005, 0.0);
  Schedule schedule = testing::topo_schedule(graph);
  for (VertexId v = 1; v < graph.task_count(); v += 2) schedule.checkpointed[v] = 1;
  const FaultSimulator sim(graph, model, schedule);

  const MonteCarloSummary expo = run_trials_with_distribution(
      sim, FaultDistribution::exponential(0.005), {.trials = 30000, .seed = 5});
  const MonteCarloSummary bursty = run_trials_with_distribution(
      sim, FaultDistribution::weibull_from_mtbf(0.5, 200.0), {.trials = 30000, .seed = 5});
  // Same MTBF by construction; different distribution of makespans.
  const double gap = std::fabs(expo.mean_makespan() - bursty.mean_makespan());
  EXPECT_GT(gap, 3.0 * (expo.ci95() + bursty.ci95()));
}

TEST(WeibullSimulation, FailureCountsScaleWithMtbf) {
  TaskGraph graph = make_uniform_chain(6, 50.0);
  graph.apply_cost_model(CostModel::proportional(0.1));
  const FailureModel model(1e-3, 0.0);
  Schedule schedule = testing::topo_schedule(graph);
  for (VertexId v = 0; v < graph.task_count(); ++v) schedule.checkpointed[v] = 1;
  const FaultSimulator sim(graph, model, schedule);
  const MonteCarloSummary rare = run_trials_with_distribution(
      sim, FaultDistribution::weibull_from_mtbf(1.5, 5000.0), {.trials = 5000, .seed = 9});
  const MonteCarloSummary frequent = run_trials_with_distribution(
      sim, FaultDistribution::weibull_from_mtbf(1.5, 500.0), {.trials = 5000, .seed = 9});
  EXPECT_LT(rare.failures.mean(), frequent.failures.mean());
  EXPECT_LT(rare.mean_makespan(), frequent.mean_makespan());
}

}  // namespace
}  // namespace fpsched
