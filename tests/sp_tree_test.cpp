// Tests for series-parallel detection and decomposition (dag/sp_tree).
#include "dag/sp_tree.hpp"

#include <gtest/gtest.h>

#include <set>

#include "workflows/generator.hpp"
#include "workflows/synthetic.hpp"

namespace fpsched {
namespace {

Dag make_dag(std::size_t n, std::initializer_list<std::pair<VertexId, VertexId>> edges) {
  DagBuilder builder;
  builder.add_vertices(n);
  for (const auto& [u, v] : edges) builder.add_edge(u, v);
  return std::move(builder).build();
}

/// Recursively validates the decomposition tree rooted at `index`:
/// terminals must compose correctly (series chains through a shared
/// interior vertex, parallel shares both endpoints) and every leaf is a
/// distinct edge. Returns the number of leaves under `index`.
std::size_t check_tree(const SpDecomposition& sp, std::uint32_t index,
                       std::set<std::pair<VertexId, VertexId>>& leaves) {
  const SpNode& node = sp.nodes.at(index);
  if (node.kind == SpKind::edge) {
    EXPECT_EQ(node.left, kSpNoChild);
    EXPECT_EQ(node.right, kSpNoChild);
    EXPECT_TRUE(leaves.emplace(node.source, node.sink).second)
        << "duplicate leaf edge " << node.source << "->" << node.sink;
    return 1;
  }
  const SpNode& left = sp.nodes.at(node.left);
  const SpNode& right = sp.nodes.at(node.right);
  if (node.kind == SpKind::series) {
    EXPECT_EQ(left.sink, right.source);
    EXPECT_EQ(node.source, left.source);
    EXPECT_EQ(node.sink, right.sink);
  } else {  // parallel
    EXPECT_EQ(left.source, right.source);
    EXPECT_EQ(left.sink, right.sink);
    EXPECT_EQ(node.source, left.source);
    EXPECT_EQ(node.sink, left.sink);
  }
  return check_tree(sp, node.left, leaves) + check_tree(sp, node.right, leaves);
}

/// Full structural check: the tree must cover exactly `expected_edges`
/// distinct leaf edges (including virtual-terminal edges) and span the
/// terminals `source`..`sink`.
void expect_valid_tree(const SpDecomposition& sp, std::size_t expected_edges, VertexId source,
                       VertexId sink) {
  ASSERT_TRUE(sp.is_series_parallel);
  ASSERT_LT(sp.root, sp.nodes.size());
  std::set<std::pair<VertexId, VertexId>> leaves;
  EXPECT_EQ(check_tree(sp, sp.root, leaves), expected_edges);
  EXPECT_EQ(sp.nodes[sp.root].source, source);
  EXPECT_EQ(sp.nodes[sp.root].sink, sink);
}

TEST(SpTree, TrivialGraphsAreSeriesParallel) {
  EXPECT_TRUE(make_dag(0, {}).is_series_parallel());
  EXPECT_TRUE(make_dag(1, {}).is_series_parallel());
  const Dag edge = make_dag(2, {{0, 1}});
  EXPECT_TRUE(edge.is_series_parallel());
  const SpDecomposition sp = sp_decompose(edge);
  expect_valid_tree(sp, 1, 0, 1);
  EXPECT_FALSE(sp.virtual_terminals);
  EXPECT_EQ(sp.nodes[sp.root].kind, SpKind::edge);
}

TEST(SpTree, ChainIsSeries) {
  const Dag chain = make_dag(4, {{0, 1}, {1, 2}, {2, 3}});
  EXPECT_TRUE(chain.is_series_parallel());
  const SpDecomposition sp = sp_decompose(chain);
  expect_valid_tree(sp, 3, 0, 3);
  EXPECT_FALSE(sp.virtual_terminals);
  EXPECT_EQ(sp.nodes[sp.root].kind, SpKind::series);
}

TEST(SpTree, ForkNeedsAVirtualSink) {
  // 0 -> {1, 2, 3}: three sinks, so the embedding adds virtual sink id 5
  // (n = 4 gives virtual source 4, virtual sink 5).
  const Dag fork = make_dag(4, {{0, 1}, {0, 2}, {0, 3}});
  EXPECT_TRUE(fork.is_series_parallel());
  const SpDecomposition sp = sp_decompose(fork);
  // 3 real edges + 3 virtual sink edges; terminals are 0 and the virtual
  // sink.
  expect_valid_tree(sp, 6, 0, 5);
  EXPECT_TRUE(sp.virtual_terminals);
}

TEST(SpTree, JoinNeedsAVirtualSource) {
  const Dag join = make_dag(4, {{0, 3}, {1, 3}, {2, 3}});
  EXPECT_TRUE(join.is_series_parallel());
  const SpDecomposition sp = sp_decompose(join);
  expect_valid_tree(sp, 6, 4, 3);  // virtual source id n = 4
  EXPECT_TRUE(sp.virtual_terminals);
}

TEST(SpTree, DiamondIsParallelOfTwoSeries) {
  const Dag diamond = make_dag(4, {{0, 1}, {0, 2}, {1, 3}, {2, 3}});
  EXPECT_TRUE(diamond.is_series_parallel());
  const SpDecomposition sp = sp_decompose(diamond);
  expect_valid_tree(sp, 4, 0, 3);
  EXPECT_FALSE(sp.virtual_terminals);
  EXPECT_EQ(sp.nodes[sp.root].kind, SpKind::parallel);
}

TEST(SpTree, DiamondWithChordIsNotSeriesParallel) {
  // The Wheatstone bridge / forbidden "N": s->a, s->b, a->b, a->t, b->t.
  // No vertex has in-degree 1 AND out-degree 1, and no parallel pair
  // exists, so the reduction stalls immediately.
  const Dag bridge = make_dag(4, {{0, 1}, {0, 2}, {1, 2}, {1, 3}, {2, 3}});
  EXPECT_FALSE(bridge.is_series_parallel());
  const SpDecomposition sp = sp_decompose(bridge);
  EXPECT_FALSE(sp.is_series_parallel);
  EXPECT_EQ(sp.root, kSpNoChild);
  EXPECT_TRUE(sp.nodes.empty());
}

TEST(SpTree, CyberShakeGadgetIsNotSeriesParallel) {
  // The CyberShake kernel: extract -> synthesis -> {peak, zipSeis} with
  // both zip collectors joining across synthesis branches. After the
  // chains series-reduce, the two branches meet both collectors — a
  // K_{2,2} between {synthesis1, synthesis2} and {zipSeis, zipPSA},
  // which embeds the forbidden N.
  //   0,1 extract; 2,3 synthesis; 4,5 peak; 6 zipSeis; 7 zipPSA
  const Dag gadget = make_dag(8, {{0, 2},
                                  {1, 3},
                                  {2, 4},
                                  {2, 6},
                                  {3, 5},
                                  {3, 6},
                                  {4, 7},
                                  {5, 7}});
  EXPECT_FALSE(gadget.is_series_parallel());
  EXPECT_FALSE(sp_decompose(gadget).is_series_parallel);
}

TEST(SpTree, SingleLevelForkJoinIsSeriesParallel) {
  // source -> 4 parallel tasks -> sink: four series chains in parallel.
  const TaskGraph fj = make_fork_join(1, 4, 1.0);
  EXPECT_TRUE(fj.dag().is_series_parallel());
  const SpDecomposition sp = sp_decompose(fj.dag());
  expect_valid_tree(sp, fj.dag().edge_count(), 0,
                    static_cast<VertexId>(fj.task_count() - 1));
  EXPECT_FALSE(sp.virtual_terminals);
}

TEST(SpTree, DenseLayeredForkJoinIsNot) {
  // With >= 2 levels of width >= 2 the levels are completely bipartite
  // (every task depends on the whole previous level), which embeds the
  // forbidden N — dense fork-joins are exactly the non-SP workflows the
  // classifier must reject.
  const TaskGraph fj = make_fork_join(3, 4, 1.0);
  EXPECT_FALSE(fj.dag().is_series_parallel());
  EXPECT_FALSE(sp_decompose(fj.dag()).is_series_parallel);
}

TEST(SpTree, ParallelEdgesBetweenChainsReduce) {
  // Two disjoint chains sharing endpoints through virtual terminals:
  // {0->1, 2->3} reduces to two parallel source->sink edges.
  const Dag two_chains = make_dag(4, {{0, 1}, {2, 3}});
  EXPECT_TRUE(two_chains.is_series_parallel());
  const SpDecomposition sp = sp_decompose(two_chains);
  EXPECT_TRUE(sp.virtual_terminals);
  expect_valid_tree(sp, 6, 4, 5);  // 2 real + 4 virtual edges
  EXPECT_EQ(sp.nodes[sp.root].kind, SpKind::parallel);
}

// The boolean recorded at Dag freeze must agree with the full
// decomposition on every generated workflow family.
class SpTreeGeneratedWorkflows : public ::testing::TestWithParam<WorkflowKind> {};

TEST_P(SpTreeGeneratedWorkflows, FreezeFlagMatchesDecomposition) {
  const TaskGraph graph =
      generate_workflow(GetParam(), {.task_count = 120, .seed = 3});
  const SpDecomposition sp = sp_decompose(graph.dag());
  EXPECT_EQ(graph.dag().is_series_parallel(), sp.is_series_parallel);
  if (sp.is_series_parallel) {
    std::set<std::pair<VertexId, VertexId>> leaves;
    check_tree(sp, sp.root, leaves);
  }
}

INSTANTIATE_TEST_SUITE_P(Families, SpTreeGeneratedWorkflows,
                         ::testing::ValuesIn(all_workflow_kinds().begin(),
                                             all_workflow_kinds().end()));

}  // namespace
}  // namespace fpsched
