// Service-layer suite: request parsing (query params, flat JSON
// bodies), the JobManager lifecycle, and the headline guarantee over
// real HTTP — the streamed record bytes of a run equal the NDJSON sink
// output of run_experiment for the same experiment and options.
#include "service/service.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "engine/result_sink.hpp"
#include "http_test_util.hpp"
#include "support/error.hpp"

namespace fpsched::service {
namespace {

using fpsched::testing::dechunk;
using fpsched::testing::http_body;
using fpsched::testing::http_exchange;
using fpsched::testing::http_get;
using fpsched::testing::http_status;

// --- Request parsing ---------------------------------------------------

TEST(ParseJobRequestTest, MapsTheFigureOptionsSurface) {
  const JobRequest request = parse_job_request({{"experiment", "fig7"},
                                                {"sizes", "50,100"},
                                                {"stride", "8"},
                                                {"seed", "7"},
                                                {"weight_cv", "0.5"},
                                                {"threads", "2"},
                                                {"eval_threads", "4"},
                                                {"eval_math", "fast"},
                                                {"tasks", "123"},
                                                {"downtimes", "0,60"},
                                                {"instance_cache", "false"}});
  EXPECT_EQ(request.experiment, "fig7");
  EXPECT_EQ(request.options.sizes, (std::vector<std::size_t>{50, 100}));
  EXPECT_EQ(request.options.stride, 8u);
  EXPECT_EQ(request.options.seed, 7u);
  EXPECT_DOUBLE_EQ(request.options.weight_cv, 0.5);
  EXPECT_EQ(request.options.threads, 2u);
  EXPECT_EQ(request.options.eval_threads, 4u);
  EXPECT_EQ(request.options.eval_math, EvalMath::fast);
  EXPECT_EQ(request.options.tasks, 123u);
  EXPECT_EQ(request.options.downtimes, (std::vector<double>{0, 60}));
  EXPECT_FALSE(request.options.instance_cache);
}

TEST(ParseJobRequestTest, QuickMatchesTheCliShrink) {
  const JobRequest quick =
      parse_job_request({{"experiment", "fig2"}, {"quick", "1"}, {"sizes", "600,700"}});
  engine::FigureOptions expected;
  engine::apply_quick_options(expected);
  EXPECT_EQ(quick.options.sizes, expected.sizes);  // quick overrides sizes, as --quick does
  EXPECT_EQ(quick.options.stride, expected.stride);
  // The bare-key form curl produces for "?quick".
  EXPECT_EQ(parse_job_request({{"experiment", "fig2"}, {"quick", ""}}).options.sizes,
            expected.sizes);
}

TEST(ParseJobRequestTest, RejectsBadRequests) {
  EXPECT_THROW(parse_job_request({}), InvalidArgument);                          // no experiment
  EXPECT_THROW(parse_job_request({{"experiment", "fig2"}, {"bogus", "1"}}),
               InvalidArgument);                                                 // unknown key
  EXPECT_THROW(parse_job_request({{"experiment", "fig2"}, {"sizes", "0"}}),
               InvalidArgument);                                                 // size < 1
  EXPECT_THROW(parse_job_request({{"experiment", "fig2"}, {"sizes", "50,,100"}}),
               InvalidArgument);                                                 // empty item
  EXPECT_THROW(parse_job_request({{"experiment", "fig2"}, {"stride", "0"}}), InvalidArgument);
  EXPECT_THROW(parse_job_request({{"experiment", "fig2"}, {"seed", "-1"}}), InvalidArgument);
  EXPECT_THROW(parse_job_request({{"experiment", "fig2"}, {"downtimes", "-5"}}),
               InvalidArgument);
  EXPECT_THROW(parse_job_request({{"experiment", "fig2"}, {"quick", "maybe"}}),
               InvalidArgument);
  EXPECT_THROW(parse_job_request({{"experiment", "fig2"}, {"eval_math", "float"}}),
               InvalidArgument);  // backend names are exact | fast only
}

TEST(ParseFlatJsonTest, ParsesScalarsAndScalarArrays) {
  const auto params = parse_flat_json(
      R"({"experiment": "fig2", "quick": true, "sizes": [50, 100], "weight_cv": 0.3,)"
      R"( "note": "a\"b", "nothing": null})");
  EXPECT_EQ(params.at("experiment"), "fig2");
  EXPECT_EQ(params.at("quick"), "true");
  EXPECT_EQ(params.at("sizes"), "50,100");
  EXPECT_EQ(params.at("weight_cv"), "0.3");
  EXPECT_EQ(params.at("note"), "a\"b");
  EXPECT_EQ(params.at("nothing"), "");
  EXPECT_TRUE(parse_flat_json("{}").empty());
}

TEST(ParseFlatJsonTest, RejectsMalformedAndNestedJson) {
  for (const std::string bad :
       {"", "[1]", "{", "{\"a\":}", "{\"a\":1,}", "{\"a\":{\"b\":1}}", "{\"a\":[[1]]}",
        "{\"a\":1} trailing", "{'a':1}"}) {
    EXPECT_THROW(parse_flat_json(bad), InvalidArgument) << bad;
  }
}

TEST(JobStatusJsonTest, SerializesStateAndError) {
  JobStatus status;
  status.id = 3;
  status.experiment = "fig2";
  status.state = JobState::failed;
  status.records = 10;
  status.total_scenarios = 72;
  status.error = "boom";
  const std::string json = to_json(status);
  EXPECT_EQ(json,
            "{\"id\":3,\"experiment\":\"fig2\",\"state\":\"failed\",\"records\":10,"
            "\"total_scenarios\":72,\"records_path\":\"/runs/3/records\",\"error\":\"boom\"}");
}

// --- JobManager over a tiny registry -----------------------------------

/// The cheap two-policy single-panel experiment the manager tests run.
engine::ExperimentRegistry tiny_registry() {
  engine::ExperimentRegistry registry;
  registry.add({"tiny", "tiny test experiment", [](const engine::FigureOptions& options) {
                  engine::FigurePlan plan;
                  plan.heading = "tiny";
                  engine::ScenarioGrid grid;
                  grid.workflows = {WorkflowKind::montage};
                  grid.sizes = options.sizes;
                  grid.lambdas = {1e-3};
                  grid.stride = 16;
                  grid.policies = {
                      engine::ScenarioPolicy::fixed(
                          {LinearizeMethod::depth_first, CkptStrategy::by_weight}),
                      engine::ScenarioPolicy::fixed(
                          {LinearizeMethod::breadth_first, CkptStrategy::by_cost}),
                  };
                  plan.panels = {{grid, "tiny panel", "tiny_panel"}};
                  return plan;
                }});
  return registry;
}

engine::FigureOptions tiny_options() {
  engine::FigureOptions options;
  options.sizes = {50, 60};
  options.threads = 2;
  return options;
}

/// The reference bytes: run_experiment through an NdjsonSink.
std::string reference_ndjson(const engine::ExperimentRegistry& registry,
                             const engine::FigureOptions& options) {
  std::ostringstream os;
  engine::NdjsonSink sink(os);
  engine::ResultSink* sinks[] = {&sink};
  engine::run_experiment(registry.find("tiny"), options, sinks, nullptr);
  return os.str();
}

TEST(JobManagerTest, RunsAJobAndStreamsByteIdenticalRecords) {
  const engine::ExperimentRegistry registry = tiny_registry();
  JobManager manager(registry);
  const std::uint64_t id = manager.submit({"tiny", tiny_options()});

  std::string streamed;
  const auto result = manager.stream_records(id, [&](std::string_view line) {
    streamed.append(line);
    return true;
  });
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->status.state, JobState::completed);
  EXPECT_EQ(result->status.records, 4u);
  EXPECT_EQ(result->status.total_scenarios, 4u);
  EXPECT_TRUE(result->delivered_all);
  EXPECT_EQ(streamed, reference_ndjson(registry, tiny_options()));

  // A second reader of the finished job sees the same bytes.
  std::string replay;
  manager.stream_records(id, [&](std::string_view line) {
    replay.append(line);
    return true;
  });
  EXPECT_EQ(replay, streamed);
}

TEST(JobManagerTest, ValidatesAtSubmission) {
  const engine::ExperimentRegistry registry = tiny_registry();
  JobManager manager(registry);
  EXPECT_THROW(manager.submit({"unknown", {}}), InvalidArgument);
  engine::FigureOptions bad = tiny_options();
  bad.sizes.clear();  // the grid rejects an empty size axis at build time
  EXPECT_THROW(manager.submit({"tiny", bad}), Error);
  EXPECT_EQ(manager.job_count(), 0u);  // nothing enqueued
}

TEST(JobManagerTest, AdmissionCountsOnlyActiveJobsAndDeleteFreesCapacity) {
  const engine::ExperimentRegistry registry = tiny_registry();
  // executors = 0 pins every job in the queued state, so the active
  // count is deterministic.
  JobManager manager(registry, {.max_jobs = 2, .executors = 0});
  const std::uint64_t first = manager.submit({"tiny", tiny_options()});
  const std::uint64_t second = manager.submit({"tiny", tiny_options()});
  EXPECT_THROW(manager.submit({"tiny", tiny_options()}), TooManyJobs);
  EXPECT_EQ(manager.active_count(), 2u);

  // DELETE of a queued job cancels it and frees its capacity slot.
  const auto erased = manager.erase_job(first);
  ASSERT_TRUE(erased.has_value());
  EXPECT_EQ(erased->state, JobState::queued);
  EXPECT_FALSE(manager.status(first).has_value());
  const std::uint64_t third = manager.submit({"tiny", tiny_options()});
  EXPECT_GT(third, second);
  EXPECT_EQ(manager.active_count(), 2u);
  EXPECT_EQ(manager.jobs().size(), 2u);

  EXPECT_FALSE(manager.erase_job(99).has_value());
  EXPECT_FALSE(manager.status(99).has_value());
  EXPECT_FALSE(manager.stream_records(99, [](std::string_view) { return true; }).has_value());
}

TEST(JobManagerTest, FinishedJobsDoNotConsumeAdmissionCapacity) {
  const engine::ExperimentRegistry registry = tiny_registry();
  // The seed's admission counted every held job, so max_jobs=1 rejected
  // the second submission forever once one run finished. Active-only
  // admission + terminal eviction makes sequential traffic just work.
  JobManager manager(registry, {.max_jobs = 1});
  for (int round = 0; round < 3; ++round) {
    const std::uint64_t id = manager.submit({"tiny", tiny_options()});
    const auto result = manager.stream_records(id, [](std::string_view) { return true; });
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(result->status.state, JobState::completed);
  }
  // max_finished_jobs defaults to max_jobs, so at most one terminal job
  // is retained alongside the latest one.
  EXPECT_LE(manager.job_count(), 2u);
}

TEST(JobManagerTest, EvictionDropsOldestTerminalJobsNeverActiveOnes) {
  const engine::ExperimentRegistry registry = tiny_registry();
  JobManager manager(registry, {.max_jobs = 8, .max_finished_jobs = 1});
  std::vector<std::uint64_t> finished;
  for (int round = 0; round < 3; ++round) {
    const std::uint64_t id = manager.submit({"tiny", tiny_options()});
    const auto result = manager.stream_records(id, [](std::string_view) { return true; });
    ASSERT_TRUE(result.has_value());
    ASSERT_EQ(result->status.state, JobState::completed);
    finished.push_back(id);
  }
  // The next submission triggers eviction: of the three terminal jobs
  // only the newest stays; the fresh (active) job is untouched.
  const std::uint64_t fresh = manager.submit({"tiny", tiny_options()});
  EXPECT_FALSE(manager.status(finished[0]).has_value());
  EXPECT_FALSE(manager.status(finished[1]).has_value());
  EXPECT_TRUE(manager.status(finished[2]).has_value());
  ASSERT_TRUE(manager.status(fresh).has_value());
  const auto result = manager.stream_records(fresh, [](std::string_view) { return true; });
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->status.state, JobState::completed);
}

TEST(JobManagerTest, DeleteWhileStreamingEndsTheStreamCleanly) {
  const engine::ExperimentRegistry registry = tiny_registry();
  JobManager manager(registry, {.max_jobs = 2, .executors = 0});
  const std::uint64_t id = manager.submit({"tiny", tiny_options()});
  std::optional<StreamResult> result;
  std::thread streamer([&] {
    // Blocks: with no executor the job never produces records.
    result = manager.stream_records(id, [](std::string_view) { return true; });
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_TRUE(manager.erase_job(id).has_value());
  streamer.join();  // erase_job wakes the streamer; join must not hang
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->delivered_all);
}

TEST(JobManagerTest, AbortedReaderLeavesTheJobRunning) {
  const engine::ExperimentRegistry registry = tiny_registry();
  JobManager manager(registry);
  const std::uint64_t id = manager.submit({"tiny", tiny_options()});
  // Take one record, then hang up.
  std::size_t seen = 0;
  const auto aborted = manager.stream_records(id, [&](std::string_view) { return ++seen < 1; });
  ASSERT_TRUE(aborted.has_value());
  EXPECT_FALSE(aborted->delivered_all);
  // The job still completes for a later full reader.
  const auto result = manager.stream_records(id, [](std::string_view) { return true; });
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->status.state, JobState::completed);
  EXPECT_TRUE(result->delivered_all);
}

// --- The result cache through the JobManager ---------------------------

/// Streams job `id` to completion, expecting full delivery; returns the
/// bytes.
std::string drain_job(JobManager& manager, std::uint64_t id) {
  std::string bytes;
  const auto result = manager.stream_records(id, [&](std::string_view line) {
    bytes.append(line);
    return true;
  });
  EXPECT_TRUE(result.has_value());
  if (result.has_value()) {
    EXPECT_EQ(result->status.state, JobState::completed) << result->status.error;
    EXPECT_TRUE(result->delivered_all);
  }
  return bytes;
}

TEST(JobManagerTest, RepeatRunsServeEveryScenarioFromTheCache) {
  const engine::ExperimentRegistry registry = tiny_registry();
  JobManager manager(registry);
  const std::string reference = reference_ndjson(registry, tiny_options());

  const std::uint64_t cold = manager.submit({"tiny", tiny_options()});
  EXPECT_EQ(drain_job(manager, cold), reference);
  EXPECT_EQ(manager.cache().size(), 4u);

  // The repeat run replays byte-identical records without touching the
  // engine: its counter delta shows one cache hit per scenario and no
  // engine/evaluator activity at all.
  const std::uint64_t warm = manager.submit({"tiny", tiny_options()});
  EXPECT_EQ(drain_job(manager, warm), reference);
  const auto stats = manager.stats(warm);
  ASSERT_TRUE(stats.has_value());
  std::uint64_t hits = 0;
  for (const auto& [name, delta] : stats->counter_deltas) {
    EXPECT_EQ(name.find("fpsched_engine_"), std::string::npos) << name << " advanced";
    EXPECT_EQ(name.find("fpsched_eval_"), std::string::npos) << name << " advanced";
    if (name == "fpsched_result_cache_hits_total") hits = delta;
  }
  EXPECT_EQ(hits, 4u);
}

TEST(JobManagerTest, DiskCacheSurvivesManagerRestart) {
  const engine::ExperimentRegistry registry = tiny_registry();
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "fpsched_jobcache_restart_test";
  std::filesystem::remove_all(dir);
  const std::string reference = reference_ndjson(registry, tiny_options());
  JobManagerOptions options;
  options.cache.directory = dir.string();
  {
    JobManager manager(registry, options);
    EXPECT_EQ(drain_job(manager, manager.submit({"tiny", tiny_options()})), reference);
  }
  {
    JobManager manager(registry, options);
    EXPECT_EQ(manager.cache().restored(), 4u);
    const std::uint64_t id = manager.submit({"tiny", tiny_options()});
    EXPECT_EQ(drain_job(manager, id), reference);
    const auto stats = manager.stats(id);
    ASSERT_TRUE(stats.has_value());
    for (const auto& [name, delta] : stats->counter_deltas) {
      EXPECT_EQ(name.find("fpsched_engine_"), std::string::npos) << name << " advanced";
    }
  }
  std::filesystem::remove_all(dir);
}

TEST(JobManagerTest, BoundedBuffersTrimWithoutStreamersAndReplayFromCache) {
  const engine::ExperimentRegistry registry = tiny_registry();
  // Buffer bounded to 2 of the 4 records, and nobody streaming while
  // the job runs: the producer must trim (not block), and a late
  // streamer re-renders the trimmed lines from the cache.
  JobManager manager(registry, {.max_record_lines = 2});
  const std::uint64_t id = manager.submit({"tiny", tiny_options()});
  for (int spins = 0; spins < 2000; ++spins) {
    const auto status = manager.status(id);
    ASSERT_TRUE(status.has_value());
    if (status->state == JobState::completed) break;
    ASSERT_NE(status->state, JobState::failed) << status->error;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_EQ(manager.status(id)->state, JobState::completed);
  EXPECT_EQ(drain_job(manager, id), reference_ndjson(registry, tiny_options()));
}

TEST(JobManagerTest, BackpressureBlocksProducersWithoutDeadlock) {
  const engine::ExperimentRegistry registry = tiny_registry();
  // A one-line buffer with an attached (slow) streamer: the producer
  // blocks at the ceiling and resumes as the streamer advances; the
  // stream still delivers the full reference bytes.
  JobManager manager(registry, {.max_record_lines = 1});
  const std::uint64_t id = manager.submit({"tiny", tiny_options()});
  std::string streamed;
  const auto result = manager.stream_records(id, [&](std::string_view line) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    streamed.append(line);
    return true;
  });
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->status.state, JobState::completed);
  EXPECT_TRUE(result->delivered_all);
  EXPECT_EQ(streamed, reference_ndjson(registry, tiny_options()));
}

// --- The full service over HTTP ----------------------------------------

class ExperimentServiceTest : public ::testing::Test {
 protected:
  ExperimentServiceTest()
      : registry_(tiny_registry()),
        service_({.http = {.port = 0, .threads = 2}, .jobs = {.max_jobs = 3}}, registry_) {
    service_.start();
  }

  std::uint16_t port() { return service_.port(); }

  engine::ExperimentRegistry registry_;
  ExperimentService service_;
};

TEST_F(ExperimentServiceTest, HealthAndExperimentListing) {
  const std::string health = http_get(port(), "/healthz");
  EXPECT_EQ(http_status(health), 200);
  const std::string body = http_body(health);
  EXPECT_NE(body.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(body.find("\"version\":\""), std::string::npos);
  EXPECT_NE(body.find("\"uptime_seconds\":"), std::string::npos);
  EXPECT_NE(body.find("\"jobs\":0"), std::string::npos);
  EXPECT_NE(body.find("\"active_jobs\":0"), std::string::npos);

  const std::string listing = http_get(port(), "/experiments");
  EXPECT_EQ(http_status(listing), 200);
  EXPECT_EQ(http_body(listing),
            "[{\"name\":\"tiny\",\"summary\":\"tiny test experiment\"}]\n");
}

TEST_F(ExperimentServiceTest, MetricsExposesEveryInstrumentedLayer) {
  // Run a job first so the engine/evaluator/job families exist and have
  // advanced (registration is lazy, on first touch of each layer).
  ASSERT_EQ(http_status(http_exchange(
                port(), "POST /runs?experiment=tiny&sizes=50 HTTP/1.1\r\nHost: t\r\n\r\n")),
            201);
  http_get(port(), "/runs/1/records");  // drain: the job is finished after this

  const std::string response = http_get(port(), "/metrics");
  ASSERT_EQ(http_status(response), 200);
  EXPECT_NE(response.find("text/plain; version=0.0.4"), std::string::npos);
  const std::string metrics = http_body(response);
  // One family per instrumented layer: evaluator, instance cache,
  // engine, job manager, HTTP server — plus the service info gauge.
  for (const std::string_view family :
       {"# TYPE fpsched_eval_runs_total counter", "# TYPE fpsched_instance_cache_misses_total",
        "# TYPE fpsched_engine_scenarios_total", "# TYPE fpsched_jobs gauge",
        "# TYPE fpsched_http_requests_total", "# TYPE fpsched_http_request_seconds histogram",
        "fpsched_info{version=", "fpsched_uptime_seconds"}) {
    EXPECT_NE(metrics.find(family), std::string::npos) << "missing: " << family;
  }
  // Presence only, not the value: the by-state gauges are process-global
  // and accumulate across the suite's earlier JobManager tests.
  EXPECT_NE(metrics.find("fpsched_jobs{state=\"completed\"}"), std::string::npos) << metrics;
  // The route label is the registered pattern, not the concrete path —
  // bounded cardinality under arbitrary ids.
  EXPECT_NE(metrics.find("fpsched_http_requests_total{route=\"/runs/{id}/records\","
                         "status=\"200\"}"),
            std::string::npos)
      << metrics;
}

TEST_F(ExperimentServiceTest, ConcurrentScrapesDuringARunStayWellFormed) {
  ASSERT_EQ(http_status(http_exchange(
                port(),
                "POST /runs?experiment=tiny&sizes=50%2C60&threads=2 HTTP/1.1\r\nHost: "
                "t\r\n\r\n")),
            201);
  // Scrape repeatedly while the job executes; every response must be a
  // complete 200 exposition (the registry lock only guards snapshots).
  std::atomic<bool> done{false};
  std::atomic<int> bad{0};
  std::thread scraper([&] {
    while (!done.load()) {
      const std::string scrape = http_get(port(), "/metrics");
      if (http_status(scrape) != 200 ||
          http_body(scrape).find("# TYPE fpsched_jobs gauge") == std::string::npos) {
        bad.fetch_add(1);
      }
    }
  });
  const std::string stream = http_get(port(), "/runs/1/records");
  done.store(true);
  scraper.join();
  EXPECT_EQ(http_status(stream), 200);
  EXPECT_EQ(bad.load(), 0);
}

TEST_F(ExperimentServiceTest, RunStatsReportTimingAndCounterDeltas) {
  ASSERT_EQ(http_status(http_exchange(
                port(), "POST /runs?experiment=tiny&sizes=50 HTTP/1.1\r\nHost: t\r\n\r\n")),
            201);
  http_get(port(), "/runs/1/records");  // wait for completion

  const std::string response = http_get(port(), "/runs/1/stats");
  ASSERT_EQ(http_status(response), 200);
  const std::string stats = http_body(response);
  EXPECT_NE(stats.find("\"state\":\"completed\""), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"queued_seconds\":"), std::string::npos);
  EXPECT_NE(stats.find("\"run_seconds\":"), std::string::npos);
  // The frozen delta must attribute this job's scenarios to it.
  EXPECT_NE(stats.find("\"fpsched_engine_scenarios_total\":2"), std::string::npos) << stats;
  EXPECT_EQ(http_status(http_get(port(), "/runs/9/stats")), 404);
}

TEST_F(ExperimentServiceTest, SubmittedRunStreamsReferenceBytes) {
  const std::string post = http_exchange(
      port(),
      "POST /runs?experiment=tiny&sizes=50%2C60&threads=2 HTTP/1.1\r\nHost: t\r\n\r\n");
  ASSERT_EQ(http_status(post), 201) << post;
  EXPECT_NE(http_body(post).find("\"id\":1"), std::string::npos) << post;

  const std::string stream = http_get(port(), "/runs/1/records");
  ASSERT_EQ(http_status(stream), 200);
  EXPECT_NE(stream.find("application/x-ndjson"), std::string::npos);
  EXPECT_EQ(dechunk(http_body(stream)), reference_ndjson(registry_, tiny_options()));

  const std::string status = http_get(port(), "/runs/1");
  EXPECT_NE(http_body(status).find("\"state\":\"completed\""), std::string::npos) << status;
  const std::string runs = http_get(port(), "/runs");
  EXPECT_NE(http_body(runs).find("\"id\":1"), std::string::npos) << runs;
}

TEST_F(ExperimentServiceTest, AcceptsJsonBodiesWithQueryOverride) {
  const std::string body = R"({"experiment":"tiny","sizes":[50,60],"threads":1})";
  const std::string post = http_exchange(
      port(), "POST /runs?threads=2 HTTP/1.1\r\nHost: t\r\nContent-Type: application/json\r\n"
              "Content-Length: " +
                  std::to_string(body.size()) + "\r\n\r\n" + body);
  ASSERT_EQ(http_status(post), 201) << post;
  const std::string stream = http_get(port(), "/runs/1/records");
  EXPECT_EQ(dechunk(http_body(stream)), reference_ndjson(registry_, tiny_options()));
}

TEST_F(ExperimentServiceTest, ErrorPathsMapToHttpStatuses) {
  EXPECT_EQ(http_status(http_exchange(
                port(), "POST /runs?experiment=unknown HTTP/1.1\r\nHost: t\r\n\r\n")),
            400);
  EXPECT_EQ(http_status(http_exchange(
                port(), "POST /runs?experiment=tiny&bogus=1 HTTP/1.1\r\nHost: t\r\n\r\n")),
            400);
  EXPECT_EQ(http_status(http_get(port(), "/runs/7")), 404);
  EXPECT_EQ(http_status(http_get(port(), "/runs/7/records")), 404);
  EXPECT_EQ(http_status(http_get(port(), "/runs/notanumber")), 404);
  EXPECT_EQ(http_status(http_exchange(
                port(), "DELETE /runs/7 HTTP/1.1\r\nHost: t\r\n\r\n")),
            404);
}

TEST(ExperimentServiceAdmissionTest, CapacityDeleteAndEvictionOverHttp) {
  // executors = 0 keeps jobs queued, making the 429 path deterministic
  // (with a live executor, finished jobs stop counting toward capacity).
  engine::ExperimentRegistry registry = tiny_registry();
  ExperimentService service(
      {.http = {.port = 0, .threads = 2}, .jobs = {.max_jobs = 1, .executors = 0}}, registry);
  service.start();
  const auto post = [&] {
    return http_exchange(service.port(),
                         "POST /runs?experiment=tiny&sizes=50 HTTP/1.1\r\nHost: t\r\n\r\n");
  };
  ASSERT_EQ(http_status(post()), 201);
  EXPECT_EQ(http_status(post()), 429);

  // DELETE returns the job's last status and frees the capacity slot.
  const std::string erased =
      http_exchange(service.port(), "DELETE /runs/1 HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_EQ(http_status(erased), 200);
  EXPECT_NE(http_body(erased).find("\"state\":\"queued\""), std::string::npos) << erased;
  EXPECT_EQ(http_status(http_get(service.port(), "/runs/1")), 404);
  EXPECT_EQ(http_status(http_exchange(service.port(),
                                      "DELETE /runs/1 HTTP/1.1\r\nHost: t\r\n\r\n")),
            404);
  EXPECT_EQ(http_status(post()), 201);
}

}  // namespace
}  // namespace fpsched::service
