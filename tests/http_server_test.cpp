// HTTP server suite: URL/query decoding, routing (literals, {captures},
// 404/405), buffered and chunked responses, request bodies, handler
// error mapping, and client-disconnect behavior on streams.
#include "service/http_server.hpp"

#include <gtest/gtest.h>

#include <sys/socket.h>

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "http_test_util.hpp"
#include "support/error.hpp"

namespace fpsched::service {
namespace {

using fpsched::testing::dechunk;
using fpsched::testing::http_body;
using fpsched::testing::http_exchange;
using fpsched::testing::http_get;
using fpsched::testing::http_status;

TEST(UrlDecodeTest, DecodesEscapesAndPlus) {
  EXPECT_EQ(url_decode("plain"), "plain");
  EXPECT_EQ(url_decode("a%20b+c"), "a b c");
  EXPECT_EQ(url_decode("%2Fruns%3Fx%3D1"), "/runs?x=1");
  // Malformed escapes pass through untouched rather than throwing — a
  // bad client should get a 404, not crash parsing.
  EXPECT_EQ(url_decode("100%"), "100%");
  EXPECT_EQ(url_decode("%zz"), "%zz");
}

TEST(ParseQueryTest, SplitsPairsAndBareKeys) {
  const auto params = parse_query("experiment=fig2&quick&sizes=50%2C100&x=");
  EXPECT_EQ(params.at("experiment"), "fig2");
  EXPECT_EQ(params.at("quick"), "");
  EXPECT_EQ(params.at("sizes"), "50,100");
  EXPECT_EQ(params.at("x"), "");
  EXPECT_TRUE(parse_query("").empty());
}

/// A server with the routes the tests poke at, started on an ephemeral
/// port.
class HttpServerTest : public ::testing::Test {
 protected:
  HttpServerTest() : server_({.port = 0, .threads = 2}) {
    server_.route("GET", "/hello", [](const HttpRequest&, HttpResponseWriter& writer) {
      writer.respond(200, "text/plain", "hi\n");
    });
    server_.route("GET", "/items/{id}", [](const HttpRequest& request,
                                           HttpResponseWriter& writer) {
      writer.respond(200, "text/plain", "item=" + request.path_params.at("id") + "\n");
    });
    server_.route("POST", "/echo", [](const HttpRequest& request, HttpResponseWriter& writer) {
      writer.respond(200, "text/plain", request.body);
    });
    server_.route("GET", "/query", [](const HttpRequest& request, HttpResponseWriter& writer) {
      writer.respond(200, "text/plain", request.query_params().at("q"));
    });
    server_.route("GET", "/throws", [](const HttpRequest&, HttpResponseWriter&) {
      throw InvalidArgument("bad input");
    });
    server_.route("GET", "/silent", [](const HttpRequest&, HttpResponseWriter&) {});
    server_.route("GET", "/stream", [this](const HttpRequest&, HttpResponseWriter& writer) {
      writer.begin_chunked(200, "text/plain");
      writer.write_chunk("one\n");
      writer.write_chunk("two\n");
    });
    server_.route("GET", "/endless", [this](const HttpRequest&, HttpResponseWriter& writer) {
      // Streams until the client hangs up; the test asserts the handler
      // actually observes the disconnect instead of spinning forever.
      writer.begin_chunked(200, "text/plain");
      std::size_t chunks = 0;
      while (writer.write_chunk("data data data data data data data data\n")) ++chunks;
      const std::lock_guard<std::mutex> lock(mutex_);
      disconnect_seen_ = true;
      seen_cv_.notify_all();
    });
    server_.start();
  }

  // Declared before server_ so the server (whose handlers touch them)
  // drains first on destruction.
  std::mutex mutex_;
  std::condition_variable seen_cv_;
  bool disconnect_seen_ = false;
  HttpServer server_;
};

TEST_F(HttpServerTest, ServesBufferedResponses) {
  const std::string response = http_get(server_.port(), "/hello");
  EXPECT_EQ(http_status(response), 200);
  EXPECT_NE(response.find("Content-Length: 3"), std::string::npos) << response;
  EXPECT_NE(response.find("Connection: close"), std::string::npos) << response;
  EXPECT_EQ(http_body(response), "hi\n");
}

TEST_F(HttpServerTest, CapturesPathParams) {
  EXPECT_EQ(http_body(http_get(server_.port(), "/items/42")), "item=42\n");
  EXPECT_EQ(http_body(http_get(server_.port(), "/items/a%20b")), "item=a b\n");
}

TEST_F(HttpServerTest, DecodesQueryParams) {
  EXPECT_EQ(http_body(http_get(server_.port(), "/query?q=a%2Cb+c")), "a,b c");
}

TEST_F(HttpServerTest, ReadsRequestBodies) {
  const std::string response = http_exchange(
      server_.port(), "POST /echo HTTP/1.1\r\nHost: t\r\nContent-Length: 7\r\n\r\npayload");
  EXPECT_EQ(http_status(response), 200);
  EXPECT_EQ(http_body(response), "payload");
}

TEST_F(HttpServerTest, UnknownPathIs404KnownPathWrongMethodIs405) {
  EXPECT_EQ(http_status(http_get(server_.port(), "/nope")), 404);
  const std::string response =
      http_exchange(server_.port(), "DELETE /hello HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_EQ(http_status(response), 405);
}

TEST_F(HttpServerTest, HandlerExceptionsMapToJsonErrors) {
  const std::string response = http_get(server_.port(), "/throws");
  EXPECT_EQ(http_status(response), 400);
  EXPECT_NE(http_body(response).find("bad input"), std::string::npos);
  EXPECT_EQ(http_status(http_get(server_.port(), "/silent")), 500);
}

TEST_F(HttpServerTest, MalformedRequestLineIs400) {
  EXPECT_EQ(http_status(http_exchange(server_.port(), "NONSENSE\r\n\r\n")), 400);
}

TEST_F(HttpServerTest, MalformedContentLengthIs400) {
  // std::stoul used to throw on "abc" (crashing the worker thread),
  // silently wrap "-1" to a huge value, and accept trailing garbage.
  // All of these must be a clean 400 now.
  for (const std::string_view bad : {"abc", "-1", "12abc", "", "+5",
                                     "99999999999999999999999999"}) {
    const std::string response = http_exchange(
        server_.port(), "POST /echo HTTP/1.1\r\nHost: t\r\nContent-Length: " +
                            std::string(bad) + "\r\n\r\nbody");
    EXPECT_EQ(http_status(response), 400) << "Content-Length: " << bad;
  }
}

TEST_F(HttpServerTest, EncodedSlashesDoNotActAsPathSeparators) {
  // "a%2Fb" must stay ONE segment: it matches /items/{id} with the
  // decoded capture "a/b" — it must NOT become /items/a/b (no route).
  EXPECT_EQ(http_body(http_get(server_.port(), "/items/a%2Fb")), "item=a/b\n");
  // And an encoded slash cannot splice extra structure onto a literal
  // route: "/hello%2Fx" is the unknown segment "hello/x", not /hello.
  EXPECT_EQ(http_status(http_get(server_.port(), "/hello%2Fx")), 404);
}

TEST_F(HttpServerTest, StreamsChunkedResponses) {
  const std::string response = http_get(server_.port(), "/stream");
  EXPECT_EQ(http_status(response), 200);
  EXPECT_NE(response.find("Transfer-Encoding: chunked"), std::string::npos) << response;
  EXPECT_EQ(dechunk(http_body(response)), "one\ntwo\n");
}

TEST_F(HttpServerTest, StreamingHandlerObservesClientDisconnect) {
  {
    // Read a little of the endless stream, then hang up mid-flight.
    FileDescriptor fd = connect_loopback(server_.port());
    ASSERT_TRUE(send_all(fd.get(), "GET /endless HTTP/1.1\r\nHost: t\r\n\r\n"));
    char buffer[512];
    ASSERT_GT(recv_some(fd.get(), buffer, sizeof buffer), 0);
  }  // fd closes here
  std::unique_lock<std::mutex> lock(mutex_);
  const bool seen = seen_cv_.wait_for(lock, std::chrono::seconds(10),
                                      [this] { return disconnect_seen_; });
  EXPECT_TRUE(seen) << "the streaming handler never observed the disconnect";
}

TEST(HttpServerLifecycleTest, StopIsIdempotentAndRestartForbidden) {
  HttpServer server({.port = 0, .threads = 1});
  server.route("GET", "/x", [](const HttpRequest&, HttpResponseWriter& writer) {
    writer.respond(200, "text/plain", "x");
  });
  server.start();
  EXPECT_NE(server.port(), 0);
  server.stop();
  server.stop();  // no-op
  EXPECT_THROW(server.start(), Error);
}

TEST(HttpServerLifecycleTest, RejectsRoutesAfterStartAndNullHandlers) {
  HttpServer server({.port = 0, .threads = 1});
  EXPECT_THROW(server.route("GET", "/x", nullptr), Error);
  server.start();
  EXPECT_THROW(server.route("GET", "/late",
                            [](const HttpRequest&, HttpResponseWriter&) {}),
               Error);
  server.stop();
}

}  // namespace
}  // namespace fpsched::service
