// Differential tests: the optimized evaluator must agree exactly (up to
// floating-point noise) with the literal Algorithm-1 transcription on
// randomized DAGs, schedules, and checkpoint patterns.
#include <gtest/gtest.h>

#include <cstdint>

#include "core/evaluator.hpp"
#include "core/evaluator_naive.hpp"
#include "dag/linearize.hpp"
#include "support/rng.hpp"
#include "test_util.hpp"
#include "workflows/generator.hpp"
#include "workflows/synthetic.hpp"

namespace fpsched {
namespace {

using testing::assert_rel_near;

Schedule random_schedule(const TaskGraph& graph, Rng& rng, double ckpt_probability) {
  const std::vector<double> weights = graph.weights();
  Schedule schedule = make_schedule(
      linearize(graph.dag(), weights, LinearizeMethod::random_first, {.seed = rng()}));
  for (VertexId v = 0; v < graph.task_count(); ++v)
    schedule.checkpointed[v] = rng.bernoulli(ckpt_probability) ? 1 : 0;
  return schedule;
}

void expect_evaluators_agree(const TaskGraph& graph, const FailureModel& model,
                             const Schedule& schedule) {
  const double fast = ScheduleEvaluator(graph, model).evaluate(schedule).expected_makespan;
  const double reference = evaluate_reference(graph, model, schedule);
  assert_rel_near(reference, fast, 1e-9, "optimized vs Algorithm 1");
}

TEST(EvaluatorReference, PaperFigure1Example) {
  TaskGraph graph = make_paper_figure1(10.0);
  graph.apply_cost_model(CostModel::proportional(0.1));
  const Schedule schedule({0, 3, 1, 2, 4, 5, 6, 7}, {0, 0, 0, 1, 1, 0, 0, 0});
  expect_evaluators_agree(graph, FailureModel(0.01, 0.0), schedule);
  expect_evaluators_agree(graph, FailureModel(0.001, 5.0), schedule);
}

TEST(EvaluatorReference, LostWorkTableMatchesPaperExample) {
  // Linearization T0 T3 T1 T2 T4 T5 T6 T7 with T3, T4 checkpointed
  // (positions: T0=0, T3=1, T1=2, T2=3, T4=4, T5=5, T6=6, T7=7).
  TaskGraph graph = make_paper_figure1(10.0);
  graph.apply_cost_model(CostModel::proportional(0.1));
  const Schedule schedule({0, 3, 1, 2, 4, 5, 6, 7}, {0, 0, 0, 1, 1, 0, 0, 0});

  // Failure during X_5 (T5, position 5): T5 recovers T3's checkpoint only.
  const LostWorkTable at5 = find_lost_work_reference(graph, schedule, 5);
  EXPECT_DOUBLE_EQ(at5.reexecuted_weight[5], 0.0);
  EXPECT_DOUBLE_EQ(at5.recovered_cost[5], graph.recovery_cost(3));
  // Next, T6 (position 6) recovers T4's checkpoint; T5 is in memory.
  EXPECT_DOUBLE_EQ(at5.reexecuted_weight[6], 0.0);
  EXPECT_DOUBLE_EQ(at5.recovered_cost[6], graph.recovery_cost(4));
  // T7 (position 7) needs T2, which needs T1: both re-executed, as in the
  // paper's walk-through.
  EXPECT_DOUBLE_EQ(at5.reexecuted_weight[7], graph.weight(1) + graph.weight(2));
  EXPECT_DOUBLE_EQ(at5.recovered_cost[7], 0.0);
}

TEST(EvaluatorReference, ChainsForksJoins) {
  Rng rng(99);
  const FailureModel model(0.02, 1.0);
  {
    TaskGraph graph = make_uniform_chain(9, 7.0);
    graph.apply_cost_model(CostModel::constant(1.0));
    for (int rep = 0; rep < 5; ++rep)
      expect_evaluators_agree(graph, model, random_schedule(graph, rng, 0.4));
  }
  {
    TaskGraph graph = make_fork(20.0, std::vector<double>{3.0, 8.0, 15.0, 2.0, 9.0});
    graph.apply_cost_model(CostModel::proportional(0.2));
    for (int rep = 0; rep < 5; ++rep)
      expect_evaluators_agree(graph, model, random_schedule(graph, rng, 0.4));
  }
  {
    TaskGraph graph = make_join(std::vector<double>{3.0, 8.0, 15.0, 2.0, 9.0}, 12.0);
    graph.apply_cost_model(CostModel::proportional(0.2));
    for (int rep = 0; rep < 5; ++rep)
      expect_evaluators_agree(graph, model, random_schedule(graph, rng, 0.4));
  }
}

// Randomized sweep: layered DAGs of several shapes x failure rates x
// checkpoint densities.
struct DifferentialCase {
  std::uint64_t seed;
  std::size_t tasks;
  std::size_t layers;
  double lambda;
  double downtime;
  double ckpt_probability;
};

class EvaluatorDifferential : public ::testing::TestWithParam<DifferentialCase> {};

TEST_P(EvaluatorDifferential, OptimizedMatchesAlgorithmOne) {
  const DifferentialCase& param = GetParam();
  TaskGraph graph = make_layered_random({.task_count = param.tasks,
                                         .layer_count = param.layers,
                                         .edge_probability = 0.35,
                                         .mean_weight = 15.0,
                                         .weight_cv = 0.6,
                                         .seed = param.seed});
  graph.apply_cost_model(CostModel::proportional(0.15));
  const FailureModel model(param.lambda, param.downtime);
  Rng rng(param.seed ^ 0xabcdef);
  for (int rep = 0; rep < 3; ++rep) {
    expect_evaluators_agree(graph, model, random_schedule(graph, rng, param.ckpt_probability));
  }
}

std::vector<DifferentialCase> differential_cases() {
  std::vector<DifferentialCase> cases;
  std::uint64_t seed = 1;
  for (const std::size_t tasks : {6, 12, 25, 40}) {
    for (const double lambda : {1e-3, 1e-2}) {
      for (const double ckpt_probability : {0.0, 0.3, 0.8}) {
        cases.push_back({seed++, tasks, std::max<std::size_t>(2, tasks / 6), lambda,
                         (seed % 2) ? 0.0 : 2.0, ckpt_probability});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(RandomDags, EvaluatorDifferential,
                         ::testing::ValuesIn(differential_cases()));

TEST(EvaluatorReference, PegasusWorkflowsSmall) {
  // One real workflow of each family, moderate size.
  Rng rng(2024);
  for (const WorkflowKind kind : all_workflow_kinds()) {
    const TaskGraph graph = generate_workflow(
        kind, {.task_count = 50, .seed = 5, .weight_cv = 0.3,
               .cost_model = CostModel::proportional(0.1)});
    const FailureModel model(kind == WorkflowKind::genome ? 1e-5 : 1e-3, 0.0);
    expect_evaluators_agree(graph, model, random_schedule(graph, rng, 0.25));
  }
}

}  // namespace
}  // namespace fpsched
