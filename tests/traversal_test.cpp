// Tests for levels, critical path, reachability, outweights, and
// linearization validation.
#include "dag/traversal.hpp"

#include <gtest/gtest.h>

#include "workflows/synthetic.hpp"

namespace fpsched {
namespace {

Dag paper_dag() { return make_paper_figure1(1.0).dag(); }

TEST(Traversal, LevelsOnPaperFigure1) {
  const auto levels = vertex_levels(paper_dag());
  // T0, T1 are sources (level 0); T3, T2 level 1; T5, T4, T7 level 2;
  // T6 level 3.
  EXPECT_EQ(levels[0], 0u);
  EXPECT_EQ(levels[1], 0u);
  EXPECT_EQ(levels[3], 1u);
  EXPECT_EQ(levels[2], 1u);
  EXPECT_EQ(levels[5], 2u);
  EXPECT_EQ(levels[4], 2u);
  EXPECT_EQ(levels[7], 2u);
  EXPECT_EQ(levels[6], 3u);
}

TEST(Traversal, CriticalPathOnWeightedChain) {
  const TaskGraph chain = make_chain(std::vector<double>{3.0, 4.0, 5.0});
  const CriticalPath cp = critical_path(chain.dag(), chain.weights());
  EXPECT_DOUBLE_EQ(cp.length, 12.0);
  EXPECT_EQ(cp.vertices, (std::vector<VertexId>{0, 1, 2}));
}

TEST(Traversal, CriticalPathPicksHeaviestBranch) {
  // Fork: source 10, sinks 1 and 30 -> path through the heavy sink.
  const TaskGraph fork = make_fork(10.0, std::vector<double>{1.0, 30.0});
  const CriticalPath cp = critical_path(fork.dag(), fork.weights());
  EXPECT_DOUBLE_EQ(cp.length, 40.0);
  EXPECT_EQ(cp.vertices, (std::vector<VertexId>{0, 2}));
}

TEST(Reachability, PaperFigure1) {
  const Reachability reach(paper_dag());
  EXPECT_TRUE(reach.reaches(0, 3));
  EXPECT_TRUE(reach.reaches(0, 6));   // 0 -> 3 -> 5 -> 6
  EXPECT_TRUE(reach.reaches(1, 7));   // 1 -> 2 -> 7
  EXPECT_TRUE(reach.reaches(1, 6));   // 1 -> 2 -> 4 -> 6
  EXPECT_FALSE(reach.reaches(0, 7));
  EXPECT_FALSE(reach.reaches(3, 4));
  EXPECT_FALSE(reach.reaches(6, 0));  // no backwards reachability
  EXPECT_FALSE(reach.reaches(5, 5));  // strict
}

TEST(Reachability, DescendantCountsAndWeights) {
  const TaskGraph graph = make_paper_figure1(2.0);
  const Reachability reach(graph.dag());
  EXPECT_EQ(reach.descendant_count(0), 3u);  // 3, 5, 6
  EXPECT_EQ(reach.descendant_count(1), 4u);  // 2, 4, 6, 7
  EXPECT_EQ(reach.descendant_count(6), 0u);
  EXPECT_DOUBLE_EQ(reach.descendant_weight(0, graph.weights()), 6.0);
}

TEST(Reachability, LargeGraphCrossesWordBoundaries) {
  // > 64 vertices exercises multi-word bitset rows.
  const TaskGraph chain = make_uniform_chain(130, 1.0);
  const Reachability reach(chain.dag());
  EXPECT_TRUE(reach.reaches(0, 129));
  EXPECT_TRUE(reach.reaches(63, 64));
  EXPECT_FALSE(reach.reaches(129, 0));
  EXPECT_EQ(reach.descendant_count(0), 129u);
}

TEST(Outweights, DirectSuccessorsOnly) {
  const TaskGraph graph = make_paper_figure1(1.0);
  const auto out = direct_outweights(graph.dag(), graph.weights());
  EXPECT_DOUBLE_EQ(out[0], 1.0);  // successor: T3
  EXPECT_DOUBLE_EQ(out[2], 2.0);  // successors: T4, T7
  EXPECT_DOUBLE_EQ(out[6], 0.0);  // sink
}

TEST(Outweights, DescendantsVariantCountsWholeSubgraph) {
  const TaskGraph graph = make_paper_figure1(1.0);
  const auto out = descendant_outweights(graph.dag(), graph.weights());
  EXPECT_DOUBLE_EQ(out[0], 3.0);  // {3, 5, 6}
  EXPECT_DOUBLE_EQ(out[1], 4.0);  // {2, 4, 6, 7}
  EXPECT_DOUBLE_EQ(out[6], 0.0);
}

TEST(Linearization, Validation) {
  const Dag dag = paper_dag();
  EXPECT_TRUE(is_valid_linearization(dag, std::vector<VertexId>{0, 3, 1, 2, 4, 5, 6, 7}));
  EXPECT_TRUE(is_valid_linearization(dag, std::vector<VertexId>{1, 2, 0, 3, 7, 4, 5, 6}));
  // Dependency violated: T3 before T0.
  EXPECT_FALSE(is_valid_linearization(dag, std::vector<VertexId>{3, 0, 1, 2, 4, 5, 6, 7}));
  // Not a permutation.
  EXPECT_FALSE(is_valid_linearization(dag, std::vector<VertexId>{0, 0, 1, 2, 4, 5, 6, 7}));
  // Wrong length.
  EXPECT_FALSE(is_valid_linearization(dag, std::vector<VertexId>{0, 1, 2}));
}

}  // namespace
}  // namespace fpsched
