// Tests for the Theorem-2 NP-completeness gadget (SUBSET-SUM -> join).
#include "core/subset_sum.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/theory_join.hpp"
#include "support/error.hpp"
#include "test_util.hpp"

namespace fpsched {
namespace {

using testing::expect_rel_near;

TEST(SubsetSumSolver, PseudoPolynomialDp) {
  EXPECT_TRUE(subset_sum_solvable({{3, 5, 7}, 8}));     // 3 + 5
  EXPECT_TRUE(subset_sum_solvable({{3, 5, 7}, 15}));    // all
  EXPECT_TRUE(subset_sum_solvable({{3, 5, 7}, 7}));     // single
  EXPECT_FALSE(subset_sum_solvable({{3, 5, 7}, 4}));
  EXPECT_FALSE(subset_sum_solvable({{2, 4, 6}, 5}));    // parity
  EXPECT_TRUE(subset_sum_solvable({{1, 1, 1, 1}, 3}));
}

TEST(Reduction, BuildsAValidJoinGadget) {
  const SubsetSumReduction reduction = reduce_subset_sum({{3, 5, 7}, 8});
  EXPECT_EQ(reduction.graph.task_count(), 4u);
  EXPECT_TRUE(is_join(reduction.graph.dag()));
  EXPECT_DOUBLE_EQ(reduction.sum, 15.0);
  EXPECT_DOUBLE_EQ(reduction.target, 8.0);
  // lambda defaults to 1 / min value.
  expect_rel_near(1.0 / 3.0, reduction.model.lambda(), 1e-12);
  // Every c_i strictly positive, every r_i zero, sink weightless.
  for (VertexId v = 0; v + 1 < reduction.graph.task_count(); ++v) {
    EXPECT_GT(reduction.graph.ckpt_cost(v), 0.0);
    EXPECT_DOUBLE_EQ(reduction.graph.recovery_cost(v), 0.0);
  }
  EXPECT_DOUBLE_EQ(reduction.graph.weight(3), 0.0);
}

TEST(Reduction, CheckpointCostFormula) {
  // c_i = (X - w_i) + ln(lambda w_i + e^{-lambda X}) / lambda.
  const SubsetSumReduction reduction = reduce_subset_sum({{3, 5, 7}, 8});
  const double lambda = reduction.model.lambda();
  for (std::size_t i = 0; i < 3; ++i) {
    const double w = reduction.graph.weight(static_cast<VertexId>(i));
    const double expected = (8.0 - w) + std::log(lambda * w + std::exp(-lambda * 8.0)) / lambda;
    expect_rel_near(expected, reduction.graph.ckpt_cost(static_cast<VertexId>(i)), 1e-12);
  }
}

TEST(Reduction, GadgetCostTermCollapsesToLinear) {
  // The construction makes e^{lambda (w_i + c_i)} - 1 == lambda e^{lambda X} w_i
  // — the key step in the proof of Theorem 2.
  const SubsetSumReduction reduction = reduce_subset_sum({{4, 9, 6}, 10});
  const double lambda = reduction.model.lambda();
  for (std::size_t i = 0; i < 3; ++i) {
    const VertexId v = static_cast<VertexId>(i);
    const double w = reduction.graph.weight(v);
    const double c = reduction.graph.ckpt_cost(v);
    expect_rel_near(lambda * std::exp(lambda * reduction.target) * w,
                    std::expm1(lambda * (w + c)), 1e-9);
  }
}

TEST(Reduction, ExpectedTimeMatchesCorollary2OnTheGadget) {
  // gadget_expected_time (the E(W) polynomial) must agree with the
  // Corollary-2 evaluation of the actual join gadget, in units of
  // (1/lambda + D).
  const SubsetSumReduction reduction = reduce_subset_sum({{3, 5, 7}, 8});
  const double unit = 1.0 / reduction.model.lambda();
  // Non-checkpointed set {0, 1}: W = 8.
  const double direct =
      join_expected_time_zero_recovery(reduction.graph, reduction.model, {2});
  expect_rel_near(gadget_expected_time(reduction, 8.0), direct / unit, 1e-9);
}

TEST(Reduction, ThresholdAttainedIffYesInstance) {
  const std::vector<SubsetSumInstance> yes_instances = {
      {{3, 5, 7}, 8}, {{2, 4, 6, 8}, 10}, {{1, 2, 5, 9}, 16}, {{10, 20, 30}, 60},
  };
  const std::vector<SubsetSumInstance> no_instances = {
      {{3, 5, 7}, 9}, {{2, 4, 6, 8}, 11}, {{10, 20, 30}, 35}, {{5, 5, 5}, 7},
  };
  for (const auto& instance : yes_instances) {
    ASSERT_TRUE(subset_sum_solvable(instance));
    const SubsetSumReduction reduction = reduce_subset_sum(instance);
    EXPECT_TRUE(gadget_reaches_threshold(reduction)) << "target " << instance.target;
  }
  for (const auto& instance : no_instances) {
    ASSERT_FALSE(subset_sum_solvable(instance));
    const SubsetSumReduction reduction = reduce_subset_sum(instance);
    EXPECT_FALSE(gadget_reaches_threshold(reduction)) << "target " << instance.target;
  }
}

TEST(Reduction, EWIsMinimizedExactlyAtTheTarget) {
  const SubsetSumReduction reduction = reduce_subset_sum({{3, 5, 7}, 8});
  const double at_target = gadget_expected_time(reduction, 8.0);
  expect_rel_near(reduction.threshold, at_target, 1e-12);
  for (const double w : {0.0, 3.0, 5.0, 7.0, 10.0, 12.0, 15.0}) {
    if (w != 8.0) {
      EXPECT_GT(gadget_expected_time(reduction, w), at_target);
    }
  }
}

TEST(Reduction, InputValidation) {
  EXPECT_THROW(reduce_subset_sum({{}, 1}), InvalidArgument);
  EXPECT_THROW(reduce_subset_sum({{3, -5}, 2}), InvalidArgument);
  EXPECT_THROW(reduce_subset_sum({{3, 5}, 0}), InvalidArgument);
  EXPECT_THROW(reduce_subset_sum({{3, 5}, 9}), InvalidArgument);   // > sum
  EXPECT_THROW(reduce_subset_sum({{3, 5}, 8}, 0.01), InvalidArgument);  // lambda too small
  EXPECT_THROW(reduce_subset_sum({{3, 9}, 7}), InvalidArgument);   // value above target
}

}  // namespace
}  // namespace fpsched
