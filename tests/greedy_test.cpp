// Tests for the evaluator-guided greedy checkpoint search (our extension
// beyond the paper's ranked strategies).
#include "heuristics/greedy.hpp"

#include <gtest/gtest.h>

#include "core/theory_chain.hpp"
#include "dag/linearize.hpp"
#include "heuristics/heuristic.hpp"
#include "support/error.hpp"
#include "test_util.hpp"
#include "workflows/generator.hpp"
#include "workflows/synthetic.hpp"

namespace fpsched {
namespace {

using testing::expect_rel_near;

std::vector<VertexId> df_order(const TaskGraph& graph) {
  return linearize(graph.dag(), graph.weights(), LinearizeMethod::depth_first);
}

TEST(Greedy, NoFailuresMeansNoCheckpoints) {
  TaskGraph graph = generate_montage({.task_count = 40, .seed = 2});
  const ScheduleEvaluator evaluator(graph, FailureModel(0.0, 0.0));
  const GreedyResult result = greedy_checkpoint_search(evaluator, df_order(graph));
  EXPECT_EQ(result.schedule.checkpoint_count(), 0u);
  EXPECT_EQ(result.rounds, 0u);
  expect_rel_near(graph.total_weight(), result.expected_makespan, 1e-12);
}

TEST(Greedy, TrajectoryIsStrictlyDecreasing) {
  TaskGraph graph = generate_cybershake({.task_count = 60, .seed = 4});
  const ScheduleEvaluator evaluator(graph, FailureModel(1e-3, 0.0));
  const GreedyResult result = greedy_checkpoint_search(evaluator, df_order(graph));
  ASSERT_GE(result.trajectory.size(), 2u);  // checkpointing must help here
  for (std::size_t i = 1; i < result.trajectory.size(); ++i)
    EXPECT_LT(result.trajectory[i], result.trajectory[i - 1]);
  EXPECT_EQ(result.rounds + 1, result.trajectory.size());
  expect_rel_near(result.trajectory.back(), result.expected_makespan, 1e-12);
}

TEST(Greedy, ResultIsSingleFlipLocalOptimum) {
  TaskGraph graph = generate_montage({.task_count = 30, .seed = 9});
  const FailureModel model(2e-3, 0.0);
  const ScheduleEvaluator evaluator(graph, model);
  const GreedyResult result = greedy_checkpoint_search(evaluator, df_order(graph));
  EvaluatorWorkspace ws;
  for (VertexId v = 0; v < graph.task_count(); ++v) {
    Schedule flipped = result.schedule;
    flipped.checkpointed[v] ^= 1;
    EXPECT_GE(evaluator.expected_makespan(flipped, ws, false),
              result.expected_makespan * (1.0 - 1e-12))
        << "flip of vertex " << v << " improves the greedy optimum";
  }
}

TEST(Greedy, MatchesTheOptimumOnChains) {
  // On chains the DP optimum is known; greedy should land on (or extremely
  // close to) it.
  TaskGraph graph = make_chain(std::vector<double>{40.0, 10.0, 90.0, 25.0, 60.0, 15.0, 70.0});
  graph.apply_cost_model(CostModel::proportional(0.15));
  const FailureModel model(0.008, 0.0);
  const ChainSolution optimal = solve_chain_optimal(graph, model);
  const ScheduleEvaluator evaluator(graph, model);
  const GreedyResult greedy = greedy_checkpoint_search(evaluator, df_order(graph));
  EXPECT_LE(greedy.expected_makespan, optimal.expected_makespan * 1.002);
  EXPECT_GE(greedy.expected_makespan, optimal.expected_makespan * (1.0 - 1e-9));
}

TEST(Greedy, AtLeastAsGoodAsEveryPaperHeuristicOnTheSameOrder) {
  TaskGraph graph = generate_ligo({.task_count = 44, .seed = 6});
  const ScheduleEvaluator evaluator(graph, FailureModel(1e-3, 0.0));
  const auto order = df_order(graph);
  const GreedyResult greedy = greedy_checkpoint_search(evaluator, order);
  for (const CkptStrategy strategy :
       {CkptStrategy::never, CkptStrategy::always, CkptStrategy::by_weight,
        CkptStrategy::by_cost, CkptStrategy::by_outweight, CkptStrategy::periodic}) {
    const SweepResult sweep = sweep_checkpoint_budget(evaluator, order, strategy, {});
    EXPECT_LE(greedy.expected_makespan, sweep.best_expected_makespan * (1.0 + 1e-9))
        << to_string(strategy);
  }
}

TEST(Greedy, RemovalCanUndoInsertions) {
  // allow_removal=false can get stuck with more checkpoints than the
  // unrestricted search; the unrestricted result is never worse.
  TaskGraph graph = generate_cybershake({.task_count = 50, .seed = 13});
  const ScheduleEvaluator evaluator(graph, FailureModel(1e-3, 0.0));
  const auto order = df_order(graph);
  GreedyOptions no_removal;
  no_removal.allow_removal = false;
  const GreedyResult restricted = greedy_checkpoint_search(evaluator, order, no_removal);
  const GreedyResult full = greedy_checkpoint_search(evaluator, order);
  EXPECT_LE(full.expected_makespan, restricted.expected_makespan * (1.0 + 1e-9));
}

TEST(Greedy, RoundLimitIsHonored) {
  TaskGraph graph = generate_cybershake({.task_count = 50, .seed = 13});
  const ScheduleEvaluator evaluator(graph, FailureModel(1e-3, 0.0));
  GreedyOptions options;
  options.max_rounds = 3;
  const GreedyResult result = greedy_checkpoint_search(evaluator, df_order(graph), options);
  EXPECT_LE(result.rounds, 3u);
  EXPECT_LE(result.schedule.checkpoint_count(), 3u);
}

TEST(Greedy, SerialAndParallelAgree) {
  TaskGraph graph = generate_montage({.task_count = 40, .seed = 21});
  const ScheduleEvaluator evaluator(graph, FailureModel(1e-3, 0.0));
  GreedyOptions serial;
  serial.threads = 1;
  GreedyOptions parallel;
  parallel.threads = 8;
  const GreedyResult a = greedy_checkpoint_search(evaluator, df_order(graph), serial);
  const GreedyResult b = greedy_checkpoint_search(evaluator, df_order(graph), parallel);
  EXPECT_DOUBLE_EQ(a.expected_makespan, b.expected_makespan);
  EXPECT_EQ(a.schedule.checkpointed, b.schedule.checkpointed);
}

TEST(Greedy, RejectsBadOrder) {
  const TaskGraph graph = make_uniform_chain(3, 1.0);
  const ScheduleEvaluator evaluator(graph, FailureModel(1e-2, 0.0));
  EXPECT_THROW(greedy_checkpoint_search(evaluator, {2, 1, 0}), ScheduleError);
  EXPECT_THROW(greedy_checkpoint_search(evaluator, {0, 1}), InvalidArgument);
}

}  // namespace
}  // namespace fpsched
