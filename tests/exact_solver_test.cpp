// Tests for the exact small-instance solver (optimality ground truth).
#include "core/exact_solver.hpp"

#include <gtest/gtest.h>

#include <set>

#include "core/theory_chain.hpp"
#include "core/theory_fork.hpp"
#include "core/theory_join.hpp"
#include "dag/linearize.hpp"
#include "dag/traversal.hpp"
#include "heuristics/greedy.hpp"
#include "heuristics/heuristic.hpp"
#include "support/error.hpp"
#include "test_util.hpp"
#include "workflows/synthetic.hpp"

namespace fpsched {
namespace {

using testing::expect_rel_near;

TEST(LinearizationEnumeration, CountsMatchCombinatorics) {
  // Chain: exactly one linearization.
  EXPECT_EQ(count_linearizations(make_uniform_chain(5, 1.0).dag()), 1u);
  // k independent sources of a join can permute freely: k! (sink fixed last).
  EXPECT_EQ(count_linearizations(make_join(std::vector<double>(3, 1.0), 1.0).dag()), 6u);
  EXPECT_EQ(count_linearizations(make_join(std::vector<double>(4, 1.0), 1.0).dag()), 24u);
  // Fork: source first, then the k sinks in any order: k!.
  EXPECT_EQ(count_linearizations(make_fork(1.0, std::vector<double>(4, 1.0)).dag()), 24u);
}

TEST(LinearizationEnumeration, EveryVisitIsAValidDistinctOrder) {
  const TaskGraph graph = make_paper_figure1(1.0);
  std::set<std::vector<VertexId>> seen;
  const std::uint64_t count = for_each_linearization(graph.dag(), [&](const auto& order) {
    EXPECT_TRUE(is_valid_linearization(graph.dag(), order));
    EXPECT_TRUE(seen.insert(order).second) << "duplicate linearization";
  });
  EXPECT_EQ(count, seen.size());
  EXPECT_GT(count, 1u);
}

TEST(LinearizationEnumeration, LimitIsEnforced) {
  const TaskGraph join = make_join(std::vector<double>(6, 1.0), 1.0);  // 720 orders
  EXPECT_THROW(count_linearizations(join.dag(), 100), InvalidArgument);
  EXPECT_EQ(count_linearizations(join.dag(), 720), 720u);
}

TEST(ExactFixedOrder, MatchesChainBruteForce) {
  TaskGraph graph = make_chain(std::vector<double>{30.0, 12.0, 45.0, 8.0, 20.0, 60.0});
  graph.apply_cost_model(CostModel::proportional(0.15));
  const FailureModel model(0.01, 1.0);
  const ScheduleEvaluator evaluator(graph, model);
  const auto topo = graph.dag().topological_order();
  const ExactSolution exact =
      solve_exact_fixed_order(evaluator, {topo.begin(), topo.end()});
  const ChainSolution chain = solve_chain_bruteforce(graph, model);
  expect_rel_near(chain.expected_makespan, exact.expected_makespan, 1e-9);
  EXPECT_EQ(exact.schedules_evaluated, 64u);
}

TEST(ExactFixedOrder, SerialAndParallelAgree) {
  TaskGraph graph = make_paper_figure1(20.0);
  graph.apply_cost_model(CostModel::proportional(0.1));
  const ScheduleEvaluator evaluator(graph, FailureModel(0.005, 0.0));
  const std::vector<VertexId> order{0, 3, 1, 2, 4, 5, 6, 7};
  ExactSolverOptions serial;
  serial.threads = 1;
  ExactSolverOptions parallel;
  parallel.threads = 8;
  const ExactSolution a = solve_exact_fixed_order(evaluator, order, serial);
  const ExactSolution b = solve_exact_fixed_order(evaluator, order, parallel);
  EXPECT_DOUBLE_EQ(a.expected_makespan, b.expected_makespan);
  EXPECT_EQ(a.schedule.checkpointed, b.schedule.checkpointed);
}

TEST(ExactFull, MatchesJoinBruteForce) {
  // The join brute force explores all partitions under the Lemma-1 order;
  // the exact solver explores all orders too and must land on the same
  // optimum (order does not matter beyond Lemma 1 on joins).
  TaskGraph graph = make_join(std::vector<double>{22.0, 35.0, 11.0}, 16.0);
  graph.apply_cost_model(CostModel::proportional(0.2));
  const FailureModel model(0.01, 0.0);
  const ScheduleEvaluator evaluator(graph, model);
  const ExactSolution exact = solve_exact(evaluator);
  const JoinSolution join = solve_join_bruteforce(graph, model);
  expect_rel_near(join.expected_makespan, exact.expected_makespan, 1e-9);
  EXPECT_EQ(exact.linearizations_seen, 6u);
}

TEST(ExactFull, MatchesForkTheorem) {
  TaskGraph graph = make_fork(60.0, std::vector<double>{25.0, 10.0});
  graph.set_costs(0, 6.0, 4.0);
  const FailureModel model(0.008, 0.0);
  const ScheduleEvaluator evaluator(graph, model);
  const ExactSolution exact = solve_exact(evaluator);
  const ForkAnalysis fork = analyze_fork(graph, model);
  // Checkpointing sinks can never help (their outputs feed nothing), so
  // the exact optimum equals Theorem 1's value.
  expect_rel_near(fork.optimal_expected_makespan, exact.expected_makespan, 1e-9);
}

TEST(ExactFull, NeverWorseThanHeuristicsOrGreedy) {
  TaskGraph graph = make_paper_figure1(25.0);
  graph.apply_cost_model(CostModel::proportional(0.12));
  const FailureModel model(0.004, 0.0);
  const ScheduleEvaluator evaluator(graph, model);
  const ExactSolution exact = solve_exact(evaluator);

  for (const HeuristicSpec& spec : all_heuristics()) {
    const HeuristicResult heuristic = run_heuristic(evaluator, spec);
    EXPECT_GE(heuristic.evaluation.expected_makespan,
              exact.expected_makespan * (1.0 - 1e-9))
        << spec.name();
  }
  const auto order = linearize(graph.dag(), graph.weights(), LinearizeMethod::depth_first);
  const GreedyResult greedy = greedy_checkpoint_search(evaluator, order);
  EXPECT_GE(greedy.expected_makespan, exact.expected_makespan * (1.0 - 1e-9));
}

TEST(ExactFull, ZeroFailureOptimumIsNoCheckpoints) {
  TaskGraph graph = make_paper_figure1(5.0);
  graph.apply_cost_model(CostModel::proportional(0.1));
  const ScheduleEvaluator evaluator(graph, FailureModel(0.0, 0.0));
  const ExactSolution exact = solve_exact(evaluator);
  EXPECT_EQ(exact.schedule.checkpoint_count(), 0u);
  expect_rel_near(graph.total_weight(), exact.expected_makespan, 1e-12);
}

TEST(ExactSolver, EnforcesLimits) {
  const TaskGraph big = make_uniform_chain(30, 1.0);
  const ScheduleEvaluator evaluator(big, FailureModel(0.01, 0.0));
  const auto topo = big.dag().topological_order();
  EXPECT_THROW(solve_exact_fixed_order(evaluator, {topo.begin(), topo.end()}),
               InvalidArgument);
  const TaskGraph wide = make_join(std::vector<double>(10, 1.0), 1.0);  // 10! orders
  const ScheduleEvaluator wide_eval(wide, FailureModel(0.01, 0.0));
  ExactSolverOptions options;
  options.max_linearizations = 1000;
  EXPECT_THROW(solve_exact(wide_eval, options), InvalidArgument);
}

}  // namespace
}  // namespace fpsched
