// Result-sink suite: panel assembly from grid results and the three
// extracted sinks (table, ASCII chart, CSV).
#include "engine/result_sink.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

#include "engine/engine.hpp"
#include "support/error.hpp"

namespace fpsched::engine {
namespace {

Panel sample_panel() {
  Panel panel;
  panel.title = "CyberShake: test panel";
  panel.x_label = "number of tasks";
  panel.xs = {50, 100};
  panel.series = {{"DF-CkptW", {1.25, 1.5}}, {"DF-CkptC", {1.375, 1.625}}};
  return panel;
}

TEST(ResultSinkTest, TableSinkRendersHeadingHeadersAndValues) {
  std::ostringstream os;
  TableSink sink(os);
  sink.emit(sample_panel(), "slug");
  const std::string out = os.str();
  EXPECT_NE(out.find("=== CyberShake: test panel ==="), std::string::npos);
  EXPECT_NE(out.find("DF-CkptW"), std::string::npos);
  EXPECT_NE(out.find("1.2500"), std::string::npos);
  EXPECT_NE(out.find(" 50 |"), std::string::npos);  // integer x formatting
}

TEST(ResultSinkTest, LambdaPanelsFormatXWithSixDecimals) {
  Panel panel = sample_panel();
  panel.axis = GridAxis::lambda;
  panel.x_label = "lambda";
  panel.xs = {1e-3, 2e-3};
  const Table table = panel_table(panel);
  std::ostringstream os;
  table.print(os);
  EXPECT_NE(os.str().find("0.001000"), std::string::npos);
}

TEST(ResultSinkTest, ChartSinkClipsRunawaySeries) {
  Panel panel = sample_panel();
  panel.series.push_back({"CkptNvr", {40.0, std::numeric_limits<double>::infinity()}});
  std::ostringstream os;
  AsciiChartSink sink(os);
  sink.emit(panel, "slug");
  EXPECT_NE(os.str().find("chart clipped"), std::string::npos);
  EXPECT_NE(os.str().find("some points exceed the chart cap"), std::string::npos);
}

TEST(ResultSinkTest, CsvSinkWritesFileAndLogs) {
  const std::string dir = ::testing::TempDir();
  std::ostringstream log;
  CsvSink sink(dir, &log);
  sink.emit(sample_panel(), "result_sink_test_panel");
  const std::string path = dir + "/result_sink_test_panel.csv";
  std::ifstream csv(path);
  ASSERT_TRUE(csv.good());
  std::string header;
  std::getline(csv, header);
  EXPECT_EQ(header, "number of tasks,DF-CkptW,DF-CkptC");
  EXPECT_NE(log.str().find("[csv written to"), std::string::npos);
  std::remove(path.c_str());
}

TEST(ResultSinkTest, CsvSinkRejectsUnwritableDirectory) {
  CsvSink sink("/nonexistent-dir-for-fpsched-test");
  EXPECT_THROW(sink.emit(sample_panel(), "x"), Error);
}

TEST(ResultSinkTest, AssemblePanelMapsGridResultsToSeries) {
  ScenarioGrid grid;
  grid.workflows = {WorkflowKind::montage};
  grid.sizes = {50, 60};
  grid.lambdas = {1e-3};
  grid.policies = {
      ScenarioPolicy::fixed({LinearizeMethod::depth_first, CkptStrategy::never}),
      ScenarioPolicy::best_lin(CkptStrategy::by_weight),
  };
  const auto specs = grid.enumerate();
  std::vector<ScenarioResult> results(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    results[i].spec = specs[i];
    results[i].evaluation.ratio = 1.0 + static_cast<double>(i);  // distinct marker per cell
  }

  const Panel panel = assemble_panel(grid, results, "title");
  EXPECT_EQ(panel.title, "title");
  EXPECT_EQ(panel.x_label, "number of tasks");
  ASSERT_EQ(panel.xs.size(), 2u);
  ASSERT_EQ(panel.series.size(), 2u);
  EXPECT_EQ(panel.series[0].name, "DF-CkptNvr");
  EXPECT_EQ(panel.series[1].name, "CkptW");
  // enumerate order is x-major, policy-minor.
  EXPECT_DOUBLE_EQ(panel.series[0].values[0], 1.0);
  EXPECT_DOUBLE_EQ(panel.series[1].values[0], 2.0);
  EXPECT_DOUBLE_EQ(panel.series[0].values[1], 3.0);
  EXPECT_DOUBLE_EQ(panel.series[1].values[1], 4.0);
}

TEST(ResultSinkTest, AssemblePanelMapsDowntimeAxisToX) {
  ScenarioGrid grid;
  grid.workflows = {WorkflowKind::montage};
  grid.sizes = {50};
  grid.lambdas = {1e-3};
  grid.downtimes = {0.0, 300.0, 900.0};
  grid.axis = GridAxis::downtime;
  grid.policies = {ScenarioPolicy::best_lin(CkptStrategy::by_weight)};
  const auto specs = grid.enumerate();
  ASSERT_EQ(specs.size(), 3u);
  EXPECT_DOUBLE_EQ(specs[1].model.downtime(), 300.0);
  std::vector<ScenarioResult> results(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    results[i].spec = specs[i];
    results[i].evaluation.ratio = 1.0 + static_cast<double>(i);
  }

  const Panel panel = assemble_panel(grid, results, "downtime panel");
  EXPECT_EQ(panel.x_label, "downtime");
  ASSERT_EQ(panel.xs.size(), 3u);
  EXPECT_DOUBLE_EQ(panel.xs[1], 300.0);
  EXPECT_DOUBLE_EQ(panel.series[0].values[2], 3.0);
}

TEST(ResultSinkTest, AssemblePanelMapsCostModelAxisToParameter) {
  ScenarioGrid grid;
  grid.workflows = {WorkflowKind::montage};
  grid.sizes = {50};
  grid.lambdas = {1e-3};
  grid.cost_models = {CostModel::proportional(0.01), CostModel::proportional(0.1)};
  grid.axis = GridAxis::checkpoint_cost;
  grid.policies = {ScenarioPolicy::best_lin(CkptStrategy::by_weight)};
  const auto specs = grid.enumerate();
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_TRUE(specs[1].cost_model == CostModel::proportional(0.1));
  std::vector<ScenarioResult> results(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) results[i].spec = specs[i];

  const Panel panel = assemble_panel(grid, results, "cost panel");
  EXPECT_EQ(panel.x_label, "checkpoint cost");
  ASSERT_EQ(panel.xs.size(), 2u);
  EXPECT_DOUBLE_EQ(panel.xs[0], 0.01);
  EXPECT_DOUBLE_EQ(panel.xs[1], 0.1);
}

TEST(ResultSinkTest, AssemblePanelRejectsMultiValuedNonAxisDimensions) {
  ScenarioGrid grid;
  grid.workflows = {WorkflowKind::montage};
  grid.sizes = {50, 60};
  grid.lambdas = {1e-3};
  grid.downtimes = {0.0, 60.0};  // second free dimension under task_count axis
  grid.policies = {ScenarioPolicy::best_lin(CkptStrategy::by_weight)};
  const std::vector<ScenarioResult> results(grid.scenario_count());
  EXPECT_THROW(assemble_panel(grid, results, "t"), Error);
}

TEST(ResultSinkTest, AssemblePanelValidatesShape) {
  ScenarioGrid grid;
  grid.workflows = {WorkflowKind::montage, WorkflowKind::ligo};
  grid.sizes = {50};
  grid.policies = {ScenarioPolicy::best_lin(CkptStrategy::by_weight)};
  const std::vector<ScenarioResult> results(grid.scenario_count());
  EXPECT_THROW(assemble_panel(grid, results, "t"), Error);  // two workflows

  ScenarioGrid ok = grid;
  ok.workflows = {WorkflowKind::montage};
  const std::vector<ScenarioResult> wrong(3);
  EXPECT_THROW(assemble_panel(ok, wrong, "t"), Error);  // result count mismatch
}

TEST(ResultSinkTest, EndToEndGridToPanel) {
  ScenarioGrid grid;
  grid.workflows = {WorkflowKind::montage};
  grid.sizes = {50};
  grid.lambdas = {1e-3};
  grid.stride = 8;
  grid.policies = {
      ScenarioPolicy::fixed({LinearizeMethod::depth_first, CkptStrategy::by_weight})};
  const ExperimentEngine engine({.threads = 2});
  const auto results = engine.run(grid);
  const Panel panel = assemble_panel(grid, results, "Montage: smoke");
  ASSERT_EQ(panel.series.size(), 1u);
  ASSERT_EQ(panel.series[0].values.size(), 1u);
  EXPECT_GT(panel.series[0].values[0], 1.0);  // checkpoints + failures cost something
  EXPECT_TRUE(std::isfinite(panel.series[0].values[0]));
}

}  // namespace
}  // namespace fpsched::engine
