// Result-sink suite: panel assembly from grid results and the three
// extracted sinks (table, ASCII chart, CSV).
#include "engine/result_sink.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>

#include "engine/engine.hpp"
#include "support/error.hpp"

namespace fpsched::engine {
namespace {

Panel sample_panel() {
  Panel panel;
  panel.title = "CyberShake: test panel";
  panel.x_label = "number of tasks";
  panel.xs = {50, 100};
  panel.series = {{"DF-CkptW", {1.25, 1.5}}, {"DF-CkptC", {1.375, 1.625}}};
  return panel;
}

TEST(ResultSinkTest, TableSinkRendersHeadingHeadersAndValues) {
  std::ostringstream os;
  TableSink sink(os);
  sink.emit(sample_panel(), "slug");
  const std::string out = os.str();
  EXPECT_NE(out.find("=== CyberShake: test panel ==="), std::string::npos);
  EXPECT_NE(out.find("DF-CkptW"), std::string::npos);
  EXPECT_NE(out.find("1.2500"), std::string::npos);
  EXPECT_NE(out.find(" 50 |"), std::string::npos);  // integer x formatting
}

TEST(ResultSinkTest, LambdaPanelsFormatXWithSixDecimals) {
  Panel panel = sample_panel();
  panel.axis = GridAxis::lambda;
  panel.x_label = "lambda";
  panel.xs = {1e-3, 2e-3};
  const Table table = panel_table(panel);
  std::ostringstream os;
  table.print(os);
  EXPECT_NE(os.str().find("0.001000"), std::string::npos);
}

TEST(ResultSinkTest, ChartSinkClipsRunawaySeries) {
  Panel panel = sample_panel();
  panel.series.push_back({"CkptNvr", {40.0, std::numeric_limits<double>::infinity()}});
  std::ostringstream os;
  AsciiChartSink sink(os);
  sink.emit(panel, "slug");
  EXPECT_NE(os.str().find("chart clipped"), std::string::npos);
  EXPECT_NE(os.str().find("some points exceed the chart cap"), std::string::npos);
}

TEST(ResultSinkTest, CsvSinkWritesFileAndLogs) {
  const std::string dir = ::testing::TempDir();
  std::ostringstream log;
  CsvSink sink(dir, &log);
  sink.emit(sample_panel(), "result_sink_test_panel");
  const std::string path = dir + "/result_sink_test_panel.csv";
  std::ifstream csv(path);
  ASSERT_TRUE(csv.good());
  std::string header;
  std::getline(csv, header);
  EXPECT_EQ(header, "number of tasks,DF-CkptW,DF-CkptC");
  EXPECT_NE(log.str().find("[csv written to"), std::string::npos);
  std::remove(path.c_str());
}

TEST(ResultSinkTest, CsvSinkCreatesMissingDirectory) {
  const std::string dir = ::testing::TempDir() + "/fpsched_csv_sink_test/nested";
  ASSERT_FALSE(std::filesystem::exists(dir));
  CsvSink sink(dir);
  sink.emit(sample_panel(), "created");
  EXPECT_TRUE(std::filesystem::is_regular_file(dir + "/created.csv"));
  std::filesystem::remove_all(::testing::TempDir() + "/fpsched_csv_sink_test");
}

TEST(ResultSinkTest, CsvSinkRejectsPathThatExistsAsFile) {
  const std::string path = ::testing::TempDir() + "/fpsched_not_a_directory";
  { std::ofstream(path) << "occupied"; }
  EXPECT_THROW(CsvSink sink(path), Error);
  std::remove(path.c_str());
}

TEST(ResultSinkTest, CsvSerializesRatiosAtRoundTripPrecision) {
  Panel panel = sample_panel();
  panel.series[0].values[0] = 1.0 / 3.0;
  std::ostringstream human;
  panel_table(panel).print(human);
  EXPECT_NE(human.str().find("0.3333 "), std::string::npos);  // 4 decimals for eyes
  EXPECT_EQ(human.str().find("0.33333333"), std::string::npos);

  std::ostringstream machine;
  panel_table(panel, /*machine_precision=*/true).to_csv(machine);
  const std::string csv = machine.str();
  const std::size_t pos = csv.find("0.33333333333333331");  // max_digits10 of 1/3
  ASSERT_NE(pos, std::string::npos);
  EXPECT_DOUBLE_EQ(std::strtod(csv.c_str() + pos, nullptr), 1.0 / 3.0);
}

TEST(ResultSinkTest, AssemblePanelMapsGridResultsToSeries) {
  ScenarioGrid grid;
  grid.workflows = {WorkflowKind::montage};
  grid.sizes = {50, 60};
  grid.lambdas = {1e-3};
  grid.policies = {
      ScenarioPolicy::fixed({LinearizeMethod::depth_first, CkptStrategy::never}),
      ScenarioPolicy::best_lin(CkptStrategy::by_weight),
  };
  const auto specs = grid.enumerate();
  std::vector<ScenarioResult> results(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    results[i].spec = specs[i];
    results[i].evaluation.ratio = 1.0 + static_cast<double>(i);  // distinct marker per cell
  }

  const Panel panel = assemble_panel(grid, results, "title");
  EXPECT_EQ(panel.title, "title");
  EXPECT_EQ(panel.x_label, "number of tasks");
  ASSERT_EQ(panel.xs.size(), 2u);
  ASSERT_EQ(panel.series.size(), 2u);
  EXPECT_EQ(panel.series[0].name, "DF-CkptNvr");
  EXPECT_EQ(panel.series[1].name, "CkptW");
  // enumerate order is x-major, policy-minor.
  EXPECT_DOUBLE_EQ(panel.series[0].values[0], 1.0);
  EXPECT_DOUBLE_EQ(panel.series[1].values[0], 2.0);
  EXPECT_DOUBLE_EQ(panel.series[0].values[1], 3.0);
  EXPECT_DOUBLE_EQ(panel.series[1].values[1], 4.0);
}

TEST(ResultSinkTest, AssemblePanelMapsDowntimeAxisToX) {
  ScenarioGrid grid;
  grid.workflows = {WorkflowKind::montage};
  grid.sizes = {50};
  grid.lambdas = {1e-3};
  grid.downtimes = {0.0, 300.0, 900.0};
  grid.axis = GridAxis::downtime;
  grid.policies = {ScenarioPolicy::best_lin(CkptStrategy::by_weight)};
  const auto specs = grid.enumerate();
  ASSERT_EQ(specs.size(), 3u);
  EXPECT_DOUBLE_EQ(specs[1].model.downtime(), 300.0);
  std::vector<ScenarioResult> results(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    results[i].spec = specs[i];
    results[i].evaluation.ratio = 1.0 + static_cast<double>(i);
  }

  const Panel panel = assemble_panel(grid, results, "downtime panel");
  EXPECT_EQ(panel.x_label, "downtime");
  ASSERT_EQ(panel.xs.size(), 3u);
  EXPECT_DOUBLE_EQ(panel.xs[1], 300.0);
  EXPECT_DOUBLE_EQ(panel.series[0].values[2], 3.0);
}

TEST(ResultSinkTest, AssemblePanelMapsCostModelAxisToParameter) {
  ScenarioGrid grid;
  grid.workflows = {WorkflowKind::montage};
  grid.sizes = {50};
  grid.lambdas = {1e-3};
  grid.cost_models = {CostModel::proportional(0.01), CostModel::proportional(0.1)};
  grid.axis = GridAxis::checkpoint_cost;
  grid.policies = {ScenarioPolicy::best_lin(CkptStrategy::by_weight)};
  const auto specs = grid.enumerate();
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_TRUE(specs[1].cost_model == CostModel::proportional(0.1));
  std::vector<ScenarioResult> results(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) results[i].spec = specs[i];

  const Panel panel = assemble_panel(grid, results, "cost panel");
  EXPECT_EQ(panel.x_label, "checkpoint cost");
  ASSERT_EQ(panel.xs.size(), 2u);
  EXPECT_DOUBLE_EQ(panel.xs[0], 0.01);
  EXPECT_DOUBLE_EQ(panel.xs[1], 0.1);
}

TEST(ResultSinkTest, AssemblePanelRejectsMultiValuedNonAxisDimensions) {
  ScenarioGrid grid;
  grid.workflows = {WorkflowKind::montage};
  grid.sizes = {50, 60};
  grid.lambdas = {1e-3};
  grid.downtimes = {0.0, 60.0};  // second free dimension under task_count axis
  grid.policies = {ScenarioPolicy::best_lin(CkptStrategy::by_weight)};
  const std::vector<ScenarioResult> results(grid.scenario_count());
  EXPECT_THROW(assemble_panel(grid, results, "t"), Error);
}

TEST(ResultSinkTest, AssemblePanelRejectsMultipleWorkflowsNamingThem) {
  ScenarioGrid grid;
  grid.workflows = {WorkflowKind::montage, WorkflowKind::ligo};
  grid.sizes = {50};
  grid.policies = {ScenarioPolicy::best_lin(CkptStrategy::by_weight)};
  const std::vector<ScenarioResult> results(grid.scenario_count());
  try {
    assemble_panel(grid, results, "t");
    FAIL() << "expected a single-workflow rejection";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("single-workflow"), std::string::npos) << what;
    EXPECT_NE(what.find("Montage"), std::string::npos) << what;
    EXPECT_NE(what.find("Ligo"), std::string::npos) << what;
  }
}

TEST(ResultSinkTest, AssemblePanelRejectsResultCountMismatchNamingTheKind) {
  ScenarioGrid grid;
  grid.workflows = {WorkflowKind::cybershake};
  grid.sizes = {50, 60};
  grid.policies = {ScenarioPolicy::best_lin(CkptStrategy::by_weight)};
  const std::vector<ScenarioResult> wrong(3);  // grid has 2 scenarios
  try {
    assemble_panel(grid, wrong, "t");
    FAIL() << "expected a result-count rejection";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("results do not match the grid"), std::string::npos) << what;
    EXPECT_NE(what.find("CyberShake"), std::string::npos) << what;
    EXPECT_NE(what.find("3"), std::string::npos) << what;
    EXPECT_NE(what.find("2"), std::string::npos) << what;
  }
}

ScenarioResult sample_result() {
  ScenarioResult result;
  result.spec.workflow = WorkflowKind::montage;
  result.spec.task_count = 50;
  result.spec.model = FailureModel(1e-3, 60.0);
  result.spec.cost_model = CostModel::proportional(0.1);
  result.spec.policy =
      ScenarioPolicy::fixed({LinearizeMethod::depth_first, CkptStrategy::by_weight});
  result.spec.workflow_seed = 42;
  result.spec.weight_cv = 0.25;
  result.spec.stride = 4;
  result.spec.scenario_index = 7;
  result.linearization = LinearizeMethod::depth_first;
  result.best_budget = 13;
  result.evaluation.expected_makespan = 1887.5;
  result.evaluation.ratio = 1.25;
  return result;
}

TEST(ResultSinkTest, ToJsonGoldenRecord) {
  const ScenarioResult result = sample_result();
  const ResultRecord record{"fig2", "fig2a_montage", result};
  EXPECT_EQ(to_json(record),
            "{\"experiment\":\"fig2\",\"panel\":\"fig2a_montage\",\"workflow\":\"Montage\","
            "\"tasks\":50,\"lambda\":0.001,\"downtime\":60,\"cost_model\":\"proportional\","
            "\"cost_parameter\":0.10000000000000001,\"policy_kind\":\"fixed\","
            "\"policy\":\"DF-CkptW\",\"workflow_seed\":42,\"weight_cv\":0.25,\"stride\":4,"
            "\"scenario_index\":7,\"linearization\":\"DF\",\"best_budget\":13,"
            "\"expected_makespan\":1887.5,\"ratio\":1.25}");
}

TEST(ResultSinkTest, ToJsonRoundTripsRatiosAndQuotesNonFinite) {
  ScenarioResult result = sample_result();
  result.evaluation.ratio = 0.1 + 0.2;  // classically unrepresentable as "0.3"
  const std::string line = to_json({"e", "p", result});
  const std::size_t pos = line.find("\"ratio\":");
  ASSERT_NE(pos, std::string::npos);
  EXPECT_DOUBLE_EQ(std::strtod(line.c_str() + pos + 8, nullptr), 0.1 + 0.2);

  result.evaluation.ratio = std::numeric_limits<double>::infinity();
  EXPECT_NE(to_json({"e", "p", result}).find("\"ratio\":\"inf\""), std::string::npos);
}

TEST(ResultSinkTest, NdjsonSinkStreamsOneLinePerRecord) {
  const ScenarioResult result = sample_result();
  std::ostringstream os;
  NdjsonSink sink(os);
  sink.record({"fig2", "a", result});
  sink.record({"fig2", "b", result});
  sink.finish();  // no-op for NDJSON, but part of the sink contract
  const std::string out = os.str();
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 2);
  EXPECT_EQ(out.find('{'), 0u);
  EXPECT_NE(out.find("\"panel\":\"b\""), std::string::npos);
}

TEST(ResultSinkTest, CallbackSinkForwardsRecordsAndFinish) {
  const ScenarioResult result = sample_result();
  std::vector<std::string> lines;
  bool finished = false;
  CallbackSink sink([&](const ResultRecord& record) { lines.push_back(to_json(record)); },
                    [&] { finished = true; });
  sink.record({"fig2", "a", result});
  sink.record({"fig2", "b", result});
  EXPECT_FALSE(finished);
  sink.finish();
  EXPECT_TRUE(finished);
  ASSERT_EQ(lines.size(), 2u);
  // The callback sees the same serialized record the NDJSON sink writes.
  EXPECT_EQ(lines[0], to_json({"fig2", "a", result}));
  EXPECT_NE(lines[1].find("\"panel\":\"b\""), std::string::npos);
}

TEST(ResultSinkTest, CallbackSinkFinishIsOptionalButRecordIsNot) {
  const ScenarioResult result = sample_result();
  std::size_t records = 0;
  CallbackSink sink([&](const ResultRecord&) { ++records; });
  sink.record({"fig2", "a", result});
  sink.finish();  // no finish callback registered: a no-op, not a crash
  EXPECT_EQ(records, 1u);
  EXPECT_THROW(CallbackSink(nullptr), Error);
}

TEST(ResultSinkTest, JsonSinkBuffersIntoOneArray) {
  const ScenarioResult result = sample_result();
  std::ostringstream os;
  JsonSink sink(os);
  sink.record({"fig2", "a", result});
  sink.record({"fig2", "b", result});
  EXPECT_TRUE(os.str().empty());  // nothing until finish()
  sink.finish();
  const std::string out = os.str();
  EXPECT_EQ(out.find("[\n"), 0u);
  EXPECT_NE(out.find("},\n"), std::string::npos);
  EXPECT_EQ(out.rfind("]\n"), out.size() - 2);
}

TEST(ResultSinkTest, EndToEndGridToPanel) {
  ScenarioGrid grid;
  grid.workflows = {WorkflowKind::montage};
  grid.sizes = {50};
  grid.lambdas = {1e-3};
  grid.stride = 8;
  grid.policies = {
      ScenarioPolicy::fixed({LinearizeMethod::depth_first, CkptStrategy::by_weight})};
  const ExperimentEngine engine({.threads = 2});
  const auto results = engine.run(grid);
  const Panel panel = assemble_panel(grid, results, "Montage: smoke");
  ASSERT_EQ(panel.series.size(), 1u);
  ASSERT_EQ(panel.series[0].values.size(), 1u);
  EXPECT_GT(panel.series[0].values[0], 1.0);  // checkpoints + failures cost something
  EXPECT_TRUE(std::isfinite(panel.series[0].values[0]));
}

}  // namespace
}  // namespace fpsched::engine
