// Expected-to-PASS positive control for the thread-safety gate.
//
// Exercises every primitive in support/sync.hpp the way the codebase
// uses them — LockGuard scopes, a relockable UniqueLock with a manual
// unlock/relock window, a CondVar predicate loop, and a REQUIRES helper
// — and must compile warning-free under -Wthread-safety -Werror. If
// this TU fails, the negative test above proves nothing (a broken gate
// rejects everything), so tools/check_thread_safety.sh requires this
// one to succeed first.
#include "support/sync.hpp"

namespace {

class Queue {
 public:
  void push(long item) {
    {
      const fpsched::LockGuard lock(mutex_);
      head_ = item;
      ++size_;
    }
    changed_.notify_all();
  }

  long pop_or_process() {
    fpsched::UniqueLock lock(mutex_);
    while (size_ == 0) changed_.wait(lock, mutex_);
    const long item = head_;
    --size_;
    lock.unlock();
    // Slow work happens outside the lock; the analysis tracks the
    // released state across the window.
    const long processed = item * 2;
    lock.lock();
    head_ = processed;
    return processed;
  }

 private:
  long drain_locked() REQUIRES(mutex_) {
    const long drained = size_;
    size_ = 0;
    return drained;
  }

  fpsched::Mutex mutex_;
  fpsched::CondVar changed_;
  long head_ GUARDED_BY(mutex_) = 0;
  long size_ GUARDED_BY(mutex_) = 0;

 public:
  long drain() {
    const fpsched::LockGuard lock(mutex_);
    return drain_locked();
  }
};

}  // namespace

int main() {
  Queue queue;
  queue.push(21);
  const long processed = queue.pop_or_process();
  return processed == 42 && queue.drain() >= 0 ? 0 : 1;
}
