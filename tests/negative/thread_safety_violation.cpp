// Expected-to-FAIL translation unit for the thread-safety gate.
//
// tools/check_thread_safety.sh compiles this TU twice: without
// -Wthread-safety it must build (it is valid C++ — the bug is a lock
// discipline violation, not a syntax error), and with
// -Wthread-safety -Werror it must be rejected, proving the annotations
// in support/sync.hpp actually carry analysis weight instead of
// expanding to decoration. It is never part of the real build (the test
// glob only picks up tests/*_test.cpp).
#include "support/sync.hpp"

namespace {

class Counter {
 public:
  // BAD: writes a GUARDED_BY field without holding its mutex. This is
  // the access -Wthread-safety must reject.
  void bump_unlocked() { ++value_; }

  void bump() {
    const fpsched::LockGuard lock(mutex_);
    ++value_;
  }

  long value() {
    const fpsched::LockGuard lock(mutex_);
    return value_;
  }

 private:
  fpsched::Mutex mutex_;
  long value_ GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.bump_unlocked();
  counter.bump();
  return counter.value() == 2 ? 0 : 1;
}
