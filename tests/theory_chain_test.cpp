// Tests for the chain dynamic program (Toueg-Babaoglu style optimal
// checkpoint placement).
#include "core/theory_chain.hpp"

#include <gtest/gtest.h>

#include "core/evaluator.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "test_util.hpp"
#include "workflows/synthetic.hpp"

namespace fpsched {
namespace {

using testing::assert_rel_near;
using testing::expect_rel_near;

TaskGraph random_chain(Rng& rng, std::size_t n, double cost_factor) {
  std::vector<double> weights(n);
  for (double& w : weights) w = rng.uniform(2.0, 50.0);
  TaskGraph graph = make_chain(weights);
  for (VertexId v = 0; v < graph.task_count(); ++v) {
    const double c = cost_factor * graph.weight(v);
    graph.set_costs(v, c, 0.8 * c);
  }
  return graph;
}

TEST(IsChain, Recognition) {
  std::vector<VertexId> path;
  EXPECT_TRUE(is_chain(make_uniform_chain(4, 1.0).dag(), &path));
  EXPECT_EQ(path.size(), 4u);
  EXPECT_FALSE(is_chain(make_fork(1.0, std::vector<double>{1.0, 2.0}).dag()));
  EXPECT_FALSE(is_chain(make_join(std::vector<double>{1.0, 2.0}, 1.0).dag()));
  EXPECT_FALSE(is_chain(make_paper_figure1(1.0).dag()));
}

TEST(ChainExpectedTime, SegmentsMatchTheGeneralEvaluator) {
  Rng rng(31);
  const TaskGraph graph = random_chain(rng, 8, 0.2);
  const FailureModel model(0.012, 1.5);
  const ScheduleEvaluator evaluator(graph, model);
  for (const std::vector<std::size_t>& marks :
       {std::vector<std::size_t>{}, {0}, {7}, {2, 5}, {0, 1, 2, 3, 4, 5, 6, 7}, {3}}) {
    const double closed = chain_expected_time(graph, model, marks);
    Schedule schedule = testing::topo_schedule(graph);
    for (const std::size_t pos : marks) schedule.checkpointed[pos] = 1;
    assert_rel_near(evaluator.evaluate(schedule).expected_makespan, closed, 1e-9,
                    "chain segment form vs evaluator");
  }
}

TEST(ChainExpectedTime, DeduplicatesAndValidatesPositions) {
  const TaskGraph graph = make_uniform_chain(4, 10.0);
  const FailureModel model(0.01, 0.0);
  EXPECT_DOUBLE_EQ(chain_expected_time(graph, model, {1, 1, 1}),
                   chain_expected_time(graph, model, {1}));
  EXPECT_THROW(chain_expected_time(graph, model, {9}), InvalidArgument);
}

TEST(ChainOptimal, MatchesBruteForce) {
  Rng rng(77);
  for (int instance = 0; instance < 8; ++instance) {
    const TaskGraph graph = random_chain(rng, 9, rng.uniform(0.05, 0.4));
    const FailureModel model(rng.uniform(0.002, 0.05), (instance % 2) ? 2.0 : 0.0);
    const ChainSolution dp = solve_chain_optimal(graph, model);
    const ChainSolution exact = solve_chain_bruteforce(graph, model);
    assert_rel_near(exact.expected_makespan, dp.expected_makespan, 1e-9,
                    "chain DP vs brute force");
    EXPECT_NO_THROW(validate_schedule(graph, dp.schedule));
    // The reported checkpoint set reproduces the reported value.
    assert_rel_near(chain_expected_time(graph, model, dp.checkpoint_positions),
                    dp.expected_makespan, 1e-9);
  }
}

TEST(ChainOptimal, NoFailuresMeansNoCheckpoints) {
  Rng rng(5);
  const TaskGraph graph = random_chain(rng, 6, 0.2);
  const ChainSolution solution = solve_chain_optimal(graph, FailureModel(0.0, 0.0));
  EXPECT_TRUE(solution.checkpoint_positions.empty());
  expect_rel_near(graph.total_weight(), solution.expected_makespan, 1e-12);
}

TEST(ChainOptimal, HighFailureRateCheckpointsDensely) {
  // Cheap checkpoints + high failure rate: checkpoint nearly everywhere.
  TaskGraph graph = make_uniform_chain(10, 20.0);
  graph.apply_cost_model(CostModel::constant(0.1));
  const ChainSolution solution = solve_chain_optimal(graph, FailureModel(0.05, 0.0));
  EXPECT_GE(solution.checkpoint_positions.size(), 8u);
}

TEST(ChainOptimal, ExpensiveCheckpointsAreSkipped) {
  TaskGraph graph = make_uniform_chain(6, 5.0);
  graph.apply_cost_model(CostModel::constant(1000.0));
  const ChainSolution solution = solve_chain_optimal(graph, FailureModel(0.001, 0.0));
  EXPECT_TRUE(solution.checkpoint_positions.empty());
}

TEST(ChainOptimal, NeverCheckpointsTheLastTaskUnlessFree) {
  // A checkpoint on the final task is pure overhead; the optimum avoids
  // it whenever c > 0.
  Rng rng(13);
  for (int instance = 0; instance < 5; ++instance) {
    const TaskGraph graph = random_chain(rng, 7, 0.25);
    const ChainSolution solution =
        solve_chain_optimal(graph, FailureModel(rng.uniform(0.005, 0.05), 0.0));
    for (const std::size_t pos : solution.checkpoint_positions) EXPECT_NE(pos, 6u);
  }
}

TEST(ChainOptimal, BeatsArbitraryPlacements) {
  Rng rng(17);
  const TaskGraph graph = random_chain(rng, 12, 0.15);
  const FailureModel model(0.02, 1.0);
  const ChainSolution solution = solve_chain_optimal(graph, model);
  for (int probe = 0; probe < 30; ++probe) {
    std::vector<std::size_t> marks;
    for (std::size_t pos = 0; pos < 12; ++pos)
      if (rng.bernoulli(0.4)) marks.push_back(pos);
    EXPECT_LE(solution.expected_makespan,
              chain_expected_time(graph, model, marks) * (1.0 + 1e-12));
  }
}

TEST(ChainSolvers, RejectNonChains) {
  const TaskGraph fork = make_fork(1.0, std::vector<double>{1.0, 2.0});
  EXPECT_THROW(solve_chain_optimal(fork, FailureModel(0.01, 0.0)), InvalidArgument);
  EXPECT_THROW(chain_expected_time(fork, FailureModel(0.01, 0.0), {}), InvalidArgument);
}

}  // namespace
}  // namespace fpsched
