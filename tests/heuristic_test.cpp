// Tests for the 14 named heuristics and their runner.
#include "heuristics/heuristic.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>

#include "dag/traversal.hpp"
#include "test_util.hpp"
#include "workflows/generator.hpp"

namespace fpsched {
namespace {

TEST(Heuristics, ExactlyFourteenWithPaperNames) {
  const auto specs = all_heuristics();
  ASSERT_EQ(specs.size(), 14u);
  std::set<std::string> names;
  for (const auto& spec : specs) names.insert(spec.name());
  EXPECT_EQ(names.size(), 14u);
  EXPECT_TRUE(names.contains("DF-CkptNvr"));
  EXPECT_TRUE(names.contains("DF-CkptAlws"));
  for (const std::string lin : {"DF", "BF", "RF"}) {
    for (const std::string ck : {"CkptW", "CkptC", "CkptD", "CkptPer"}) {
      EXPECT_TRUE(names.contains(lin + "-" + ck)) << lin + "-" + ck;
    }
  }
  EXPECT_EQ(budgeted_heuristics().size(), 12u);
}

TEST(Heuristics, RunHeuristicProducesAValidEvaluatedSchedule) {
  const TaskGraph graph = generate_montage({.task_count = 40, .seed = 8});
  const ScheduleEvaluator evaluator(graph, FailureModel(1e-3, 0.0));
  const HeuristicResult result =
      run_heuristic(evaluator, {LinearizeMethod::depth_first, CkptStrategy::by_weight});
  EXPECT_NO_THROW(validate_schedule(graph, result.schedule));
  EXPECT_GT(result.evaluation.expected_makespan, graph.total_weight());
  EXPECT_GE(result.evaluation.ratio, 1.0);
  EXPECT_EQ(result.best_budget, result.schedule.checkpoint_count());
  EXPECT_FALSE(result.curve.empty());
}

TEST(Heuristics, BudgetedHeuristicsBeatOrMatchBothBaselinesHere) {
  // On a workload where both baselines are clearly suboptimal (expensive
  // checkpoints penalize CkptAlws, a non-trivial failure rate penalizes
  // CkptNvr), the swept strategies must improve on both — the paper's
  // headline finding.
  const TaskGraph graph = generate_cybershake(
      {.task_count = 60, .seed = 12, .cost_model = CostModel::proportional(0.3)});
  const ScheduleEvaluator evaluator(graph, FailureModel(1e-3, 0.0));
  const double never =
      run_heuristic(evaluator, {LinearizeMethod::depth_first, CkptStrategy::never})
          .evaluation.expected_makespan;
  const double always =
      run_heuristic(evaluator, {LinearizeMethod::depth_first, CkptStrategy::always})
          .evaluation.expected_makespan;
  double best_swept = std::numeric_limits<double>::infinity();
  for (const CkptStrategy strategy :
       {CkptStrategy::by_weight, CkptStrategy::by_cost, CkptStrategy::by_outweight}) {
    const double swept = run_heuristic(evaluator, {LinearizeMethod::depth_first, strategy})
                             .evaluation.expected_makespan;
    // No single family is guaranteed to dominate CkptAlws on every
    // instance, but none should lose badly to it.
    EXPECT_LE(swept, always * 1.05) << to_string(strategy);
    best_swept = std::min(best_swept, swept);
  }
  EXPECT_LT(best_swept, std::min(never, always));
}

TEST(Heuristics, AllFourteenRunOnEveryWorkflowFamily) {
  for (const WorkflowKind kind : all_workflow_kinds()) {
    const TaskGraph graph = generate_workflow(kind, {.task_count = 36, .seed = 3});
    const ScheduleEvaluator evaluator(graph, FailureModel(paper_lambda(kind), 0.0));
    const auto results = run_heuristics(evaluator, all_heuristics());
    ASSERT_EQ(results.size(), 14u);
    for (const auto& result : results) {
      EXPECT_NO_THROW(validate_schedule(graph, result.schedule)) << result.spec.name();
      EXPECT_GE(result.evaluation.ratio, 1.0) << result.spec.name();
      EXPECT_TRUE(std::isfinite(result.evaluation.expected_makespan)) << result.spec.name();
    }
    const std::size_t best = best_result_index(results);
    for (const auto& result : results) {
      EXPECT_LE(results[best].evaluation.expected_makespan,
                result.evaluation.expected_makespan * (1.0 + 1e-12));
    }
  }
}

TEST(Heuristics, CheckpointNeverIsExactlyTheAtomicLowerStructure) {
  // DF-CkptNvr on a chain equals the single-segment closed form.
  const TaskGraph graph = generate_genome({.task_count = 12, .seed = 1, .weight_cv = 0.0});
  const FailureModel model(1e-5, 0.0);
  const ScheduleEvaluator evaluator(graph, model);
  const HeuristicResult result =
      run_heuristic(evaluator, {LinearizeMethod::depth_first, CkptStrategy::never});
  EXPECT_EQ(result.schedule.checkpoint_count(), 0u);
  EXPECT_GE(result.evaluation.expected_makespan, graph.total_weight());
}

TEST(Heuristics, SweepOptionsArePropagated) {
  const TaskGraph graph = generate_montage({.task_count = 30, .seed = 5});
  const ScheduleEvaluator evaluator(graph, FailureModel(1e-3, 0.0));
  HeuristicOptions options;
  options.sweep.stride = 5;
  const HeuristicResult strided =
      run_heuristic(evaluator, {LinearizeMethod::depth_first, CkptStrategy::by_weight}, options);
  const HeuristicResult full =
      run_heuristic(evaluator, {LinearizeMethod::depth_first, CkptStrategy::by_weight});
  EXPECT_LT(strided.curve.size(), full.curve.size());
  EXPECT_GE(strided.evaluation.expected_makespan,
            full.evaluation.expected_makespan - 1e-9);
}

TEST(Heuristics, RandomLinearizationSeedIsHonored) {
  const TaskGraph graph = generate_cybershake({.task_count = 40, .seed = 2});
  const ScheduleEvaluator evaluator(graph, FailureModel(1e-3, 0.0));
  HeuristicOptions a;
  a.linearize.seed = 1;
  HeuristicOptions b;
  b.linearize.seed = 1;
  HeuristicOptions c;
  c.linearize.seed = 9;
  const auto ra = run_heuristic(evaluator, {LinearizeMethod::random_first,
                                            CkptStrategy::by_weight}, a);
  const auto rb = run_heuristic(evaluator, {LinearizeMethod::random_first,
                                            CkptStrategy::by_weight}, b);
  const auto rc = run_heuristic(evaluator, {LinearizeMethod::random_first,
                                            CkptStrategy::by_weight}, c);
  EXPECT_EQ(ra.schedule.order, rb.schedule.order);
  EXPECT_NE(ra.schedule.order, rc.schedule.order);
}

}  // namespace
}  // namespace fpsched
