// The central validation of the reproduction: the analytic Theorem-3
// evaluator and the independent fault-injection simulator must agree on
// E[makespan] — on elementary shapes, the paper's Figure-1 example, and
// Pegasus-like workflows, across failure rates and checkpoint patterns.
#include <gtest/gtest.h>

#include "core/evaluator.hpp"
#include "dag/linearize.hpp"
#include "heuristics/checkpoint_strategy.hpp"
#include "sim/trial_runner.hpp"
#include "support/stats.hpp"
#include "test_util.hpp"
#include "workflows/generator.hpp"
#include "workflows/synthetic.hpp"

namespace fpsched {
namespace {

using testing::topo_schedule;

// Acceptance: |analytic - MC mean| <= CI95 + slack standard errors. The
// widening guards against the occasional statistical excursion while any
// semantic mismatch still shows up as a many-sigma disagreement.
void expect_mc_agrees(const TaskGraph& graph, const FailureModel& model, const Schedule& schedule,
                      std::size_t trials, std::uint64_t seed) {
  const double analytic = ScheduleEvaluator(graph, model).evaluate(schedule).expected_makespan;
  const FaultSimulator sim(graph, model, schedule);
  const MonteCarloSummary mc = run_trials(sim, {.trials = trials, .seed = seed});
  EXPECT_TRUE(mc.consistent_with(analytic, /*slack=*/3.0))
      << "analytic=" << analytic << " mc=" << mc.mean_makespan() << " +/- " << mc.ci95()
      << " (n=" << trials << ")";
}

TEST(McCrossValidation, SingleTask) {
  TaskGraph graph = make_uniform_chain(1, 80.0);
  graph.set_costs(0, 8.0, 6.0);
  Schedule schedule = topo_schedule(graph);
  schedule.checkpointed[0] = 1;
  expect_mc_agrees(graph, FailureModel(0.01, 2.0), schedule, 40000, 11);
}

TEST(McCrossValidation, ChainWithMixedCheckpoints) {
  TaskGraph graph = make_chain(std::vector<double>{30.0, 12.0, 45.0, 8.0, 20.0});
  graph.apply_cost_model(CostModel::proportional(0.1));
  Schedule schedule = topo_schedule(graph);
  schedule.checkpointed[1] = 1;
  schedule.checkpointed[3] = 1;
  expect_mc_agrees(graph, FailureModel(0.005, 1.0), schedule, 40000, 12);
}

TEST(McCrossValidation, ForkBothDecisions) {
  TaskGraph graph = make_fork(40.0, std::vector<double>{15.0, 25.0, 10.0});
  graph.apply_cost_model(CostModel::proportional(0.2));
  expect_mc_agrees(graph, FailureModel(0.006, 0.0), topo_schedule(graph), 40000, 13);
  Schedule ckpt = topo_schedule(graph);
  ckpt.checkpointed[0] = 1;
  expect_mc_agrees(graph, FailureModel(0.006, 0.0), ckpt, 40000, 14);
}

TEST(McCrossValidation, JoinWithCheckpointedSources) {
  TaskGraph graph = make_join(std::vector<double>{22.0, 35.0, 11.0, 18.0}, 16.0);
  graph.apply_cost_model(CostModel::proportional(0.1));
  Schedule schedule = topo_schedule(graph);
  schedule.checkpointed[1] = 1;
  schedule.checkpointed[3] = 1;
  expect_mc_agrees(graph, FailureModel(0.004, 3.0), schedule, 40000, 15);
}

TEST(McCrossValidation, PaperFigure1Schedule) {
  TaskGraph graph = make_paper_figure1(20.0);
  graph.apply_cost_model(CostModel::proportional(0.1));
  const Schedule schedule({0, 3, 1, 2, 4, 5, 6, 7}, {0, 0, 0, 1, 1, 0, 0, 0});
  expect_mc_agrees(graph, FailureModel(0.004, 1.0), schedule, 40000, 16);
}

TEST(McCrossValidation, DiamondDependencies) {
  // Diamonds exercise the shared-predecessor paths of the recovery plan.
  TaskGraph graph = make_fork_join(3, 3, 18.0);
  graph.apply_cost_model(CostModel::proportional(0.15));
  Schedule schedule = topo_schedule(graph);
  schedule.checkpointed[4] = 1;
  expect_mc_agrees(graph, FailureModel(0.003, 0.0), schedule, 30000, 17);
}

struct McCase {
  WorkflowKind kind;
  double lambda;
  double ckpt_fraction;  // checkpoint the heaviest fraction of tasks
};

class McWorkflow : public ::testing::TestWithParam<McCase> {};

TEST_P(McWorkflow, AnalyticWithinConfidenceInterval) {
  const McCase& param = GetParam();
  const TaskGraph graph =
      generate_workflow(param.kind, {.task_count = 40, .seed = 21, .weight_cv = 0.3,
                                     .cost_model = CostModel::proportional(0.1)});
  const std::vector<double> weights = graph.weights();
  std::vector<VertexId> order = linearize(graph.dag(), weights, LinearizeMethod::depth_first);
  const std::size_t budget =
      static_cast<std::size_t>(param.ckpt_fraction * static_cast<double>(graph.task_count()));
  const Schedule schedule =
      make_heuristic_schedule(graph, std::move(order), CkptStrategy::by_weight, budget);
  expect_mc_agrees(graph, FailureModel(param.lambda, 0.0), schedule, 20000,
                   1000 + static_cast<std::uint64_t>(param.kind));
}

INSTANTIATE_TEST_SUITE_P(Workflows, McWorkflow,
                         ::testing::Values(McCase{WorkflowKind::montage, 1e-3, 0.3},
                                           McCase{WorkflowKind::cybershake, 1e-3, 0.3},
                                           McCase{WorkflowKind::ligo, 2e-4, 0.5},
                                           McCase{WorkflowKind::genome, 2e-5, 0.5}));

TEST(McCrossValidation, WastedTimeMatchesMakespanGap) {
  TaskGraph graph = make_paper_figure1(15.0);
  graph.apply_cost_model(CostModel::proportional(0.1));
  const Schedule schedule({0, 3, 1, 2, 4, 5, 6, 7}, {0, 0, 0, 1, 1, 0, 0, 0});
  const FailureModel model(0.01, 2.0);
  const FaultSimulator sim(graph, model, schedule);
  const MonteCarloSummary mc = run_trials(sim, {.trials = 2000, .seed = 3});
  const double fault_free = graph.total_weight() + graph.ckpt_cost(3) + graph.ckpt_cost(4);
  EXPECT_NEAR(mc.wasted_time.mean(), mc.mean_makespan() - fault_free, 1e-6);
}

}  // namespace
}  // namespace fpsched
