// End-to-end scenarios chaining generators, linearization, heuristics,
// the analytic evaluator, and the Monte-Carlo simulator — plus the
// qualitative findings of the paper's Section 6 on small instances.
#include <gtest/gtest.h>

#include <limits>
#include <sstream>

#include "core/evaluator.hpp"
#include "core/theory_chain.hpp"
#include "heuristics/heuristic.hpp"
#include "sim/trial_runner.hpp"
#include "test_util.hpp"
#include "workflows/generator.hpp"
#include "workflows/io.hpp"
#include "workflows/synthetic.hpp"

namespace fpsched {
namespace {

TEST(Integration, GenerateScheduleEvaluateSimulate) {
  // The full pipeline on a Montage instance: the heuristic's analytic
  // value must be reproduced by the simulator within its CI.
  const TaskGraph graph = generate_montage({.task_count = 60, .seed = 31});
  const FailureModel model(1e-3, 1.0);
  const ScheduleEvaluator evaluator(graph, model);
  const HeuristicResult best =
      run_heuristic(evaluator, {LinearizeMethod::depth_first, CkptStrategy::by_weight});

  const FaultSimulator sim(graph, model, best.schedule);
  const MonteCarloSummary mc = run_trials(sim, {.trials = 20000, .seed = 9});
  EXPECT_TRUE(mc.consistent_with(best.evaluation.expected_makespan, 3.0))
      << "analytic=" << best.evaluation.expected_makespan << " mc=" << mc.mean_makespan()
      << " +/- " << mc.ci95();
}

TEST(Integration, SaveLoadEvaluateIsStable) {
  // Serialization must not perturb evaluation results.
  const TaskGraph graph = generate_ligo({.task_count = 44, .seed = 7});
  const FailureModel model(1e-3, 0.0);
  const HeuristicResult result = run_heuristic(ScheduleEvaluator(graph, model),
                                               {LinearizeMethod::depth_first,
                                                CkptStrategy::by_cost});
  std::stringstream buffer;
  save_workflow(buffer, graph);
  const TaskGraph reloaded = load_workflow(buffer);
  const double replay = ScheduleEvaluator(reloaded, model)
                            .evaluate(result.schedule)
                            .expected_makespan;
  EXPECT_DOUBLE_EQ(result.evaluation.expected_makespan, replay);
}

TEST(Integration, PaperFinding_CheckpointingBeatsBaselinesUnderFailures) {
  // Section 6.2: the budgeted strategies always beat CkptNvr and CkptAlws.
  for (const WorkflowKind kind : {WorkflowKind::montage, WorkflowKind::cybershake}) {
    const TaskGraph graph = generate_workflow(kind, {.task_count = 80, .seed = 23});
    const ScheduleEvaluator evaluator(graph, FailureModel(paper_lambda(kind), 0.0));
    double best_baseline = std::numeric_limits<double>::infinity();
    for (const CkptStrategy baseline : {CkptStrategy::never, CkptStrategy::always}) {
      best_baseline = std::min(
          best_baseline, run_heuristic(evaluator, {LinearizeMethod::depth_first, baseline})
                             .evaluation.expected_makespan);
    }
    double best_swept = std::numeric_limits<double>::infinity();
    for (const CkptStrategy strategy :
         {CkptStrategy::by_weight, CkptStrategy::by_cost, CkptStrategy::by_outweight}) {
      best_swept = std::min(
          best_swept, run_heuristic(evaluator, {LinearizeMethod::depth_first, strategy})
                          .evaluation.expected_makespan);
    }
    EXPECT_LT(best_swept, best_baseline) << to_string(kind);
  }
}

TEST(Integration, PaperFinding_PeriodicIgnoresStructureOnFigure1) {
  // Section 6.2 discusses CkptPer checkpointing T1 instead of T3 on the
  // Figure-1 example: with the DF-like order T0 T3 T1 ..., a periodic
  // mark after w0+w3+w1 lands on source T1 even though checkpointing the
  // finished heavy branch (T3) is the structurally right choice. Verify
  // the placement discrepancy and that CkptW's best beats CkptPer's best
  // on this DAG.
  TaskGraph graph = make_paper_figure1(10.0);
  graph.apply_cost_model(CostModel::proportional(0.1));
  const std::vector<VertexId> order{0, 3, 1, 2, 4, 5, 6, 7};
  const auto periodic3 = place_checkpoints(graph, order, CkptStrategy::periodic, 3);
  // With 8 equal weights and N = 3, the first mark (after ~26.7s) lands on
  // T1 — the paper's complaint.
  EXPECT_TRUE(periodic3[1]);
  EXPECT_FALSE(periodic3[3]);

  const ScheduleEvaluator evaluator(graph, FailureModel(0.01, 0.0));
  const SweepResult per =
      sweep_checkpoint_budget(evaluator, order, CkptStrategy::periodic, {});
  const SweepResult weight =
      sweep_checkpoint_budget(evaluator, order, CkptStrategy::by_weight, {});
  EXPECT_LE(weight.best_expected_makespan, per.best_expected_makespan * (1.0 + 1e-12));
}

TEST(Integration, ChainDpBeatsGenericHeuristicsOnChains) {
  // On a pure chain, the Toueg-Babaoglu DP is optimal; every Section-5
  // heuristic must be at best equal.
  TaskGraph graph = make_chain(std::vector<double>{40.0, 10.0, 90.0, 25.0, 60.0, 15.0});
  graph.apply_cost_model(CostModel::proportional(0.15));
  const FailureModel model(0.008, 0.0);
  const ChainSolution optimal = solve_chain_optimal(graph, model);
  const ScheduleEvaluator evaluator(graph, model);
  for (const HeuristicSpec& spec : all_heuristics()) {
    const HeuristicResult result = run_heuristic(evaluator, spec);
    EXPECT_GE(result.evaluation.expected_makespan,
              optimal.expected_makespan * (1.0 - 1e-9))
        << spec.name();
  }
}

TEST(Integration, HigherFailureRateFavorsMoreCheckpoints) {
  // The swept-optimal number of checkpoints grows with lambda.
  const TaskGraph graph = generate_cybershake({.task_count = 60, .seed = 3});
  std::size_t previous = 0;
  for (const double lambda : {1e-4, 1e-3, 5e-3}) {
    const ScheduleEvaluator evaluator(graph, FailureModel(lambda, 0.0));
    const HeuristicResult result =
        run_heuristic(evaluator, {LinearizeMethod::depth_first, CkptStrategy::by_weight});
    EXPECT_GE(result.best_budget + 2, previous);  // allow small non-monotic wiggle
    previous = result.best_budget;
  }
  EXPECT_GT(previous, 1u);
}

TEST(Integration, RatioWithinPaperBallparkOnCyberShake) {
  // Figure 3c: CyberShake at lambda = 1e-3, c = 0.1 w shows ratios in
  // roughly [1.08, 1.4]. Our synthetic weights differ, so accept a wide
  // band — but the best heuristic should be well under the never/always
  // baselines and under ~1.6.
  const TaskGraph graph = generate_cybershake({.task_count = 100, .seed = 29});
  const ScheduleEvaluator evaluator(graph, FailureModel(1e-3, 0.0));
  const auto results = run_heuristics(evaluator, all_heuristics());
  const double best = results[best_result_index(results)].evaluation.ratio;
  EXPECT_GT(best, 1.0);
  EXPECT_LT(best, 1.6);
}

}  // namespace
}  // namespace fpsched
