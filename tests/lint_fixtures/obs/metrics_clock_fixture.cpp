// NOT compiled — lint self-test fixture. Lives under an obs/ path
// segment, so the wall-clock rule must NOT fire here (the telemetry
// layer is the one sanctioned clock reader); no EXPECT markers.
#include <chrono>

namespace fpsched::obs {

std::uint64_t monotonic_ns_like() {
  return static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
}

}  // namespace fpsched::obs
