// Known-bad fixture for tools/lint_determinism.py --self-test.
//
// NOT compiled, NOT linked: this file exists so the lint's rules are
// themselves regression-tested. Every line carrying an EXPECT marker
// (rule id in square brackets) must produce exactly that finding; lines
// without a marker must stay clean. The file name starts with
// "evaluator" on purpose so the raw-exp rule (scoped to evaluator pass
// files) applies.
#include <cmath>
#include <cstdlib>
#include <random>
#include <unordered_map>

double bad_accumulate() {
  std::unordered_map<int, double> cells;  // EXPECT[unordered-iteration]
  double total = 0.0;
  for (const auto& [key, value] : cells) total += value;
  return total;
}

unsigned bad_seed() {
  std::random_device entropy;  // EXPECT[raw-rng]
  srand(entropy());            // EXPECT[raw-rng]
  const auto stamp = time(nullptr);  // EXPECT[raw-rng]
  return static_cast<unsigned>(std::rand() + stamp);  // EXPECT[raw-rng]
}

double bad_pass(const double* args, int n) {
  double acc = 0.0;
  for (int i = 0; i < n; ++i) acc += std::exp(args[i]);  // EXPECT[raw-exp]
  return acc + expm1(acc);  // EXPECT[raw-exp]
}

double bare_suppression(double x) {
  // A suppression with no justification is itself a finding. EXPECT-NEXT[raw-exp]
  return std::exp(x);  // determinism-ok:
}
