// Known-good fixture for tools/lint_determinism.py --self-test: every
// construct here must scan clean — kernel-routed sweeps, seeded RNG
// idiom, ordered containers, and justified suppressions. NOT compiled.
#include <cmath>
#include <map>
#include <vector>

namespace fpsched {
void vexpm1(const double* x, double* out, unsigned n);
}

// Batched kernel sweep: the blessed way to take exp/expm1 in a pass.
void good_pass(std::vector<double>& staged) {
  fpsched::vexpm1(staged.data(), staged.data(), static_cast<unsigned>(staged.size()));
}

// Ordered containers iterate deterministically.
double good_accumulate(const std::map<int, double>& cells) {
  double total = 0.0;
  for (const auto& [key, value] : cells) total += value;
  return total;
}

// Identifiers merely containing the pattern words must not trip the
// rules: expm1_wc is a buffer name, expected/exported are plain words.
struct Workspace {
  std::vector<double> expm1_wc;
  double expected = 0.0;
  bool exported = false;
};

// A justified suppression is accepted (same-line form) ...
double good_suppressed_tail(double x) {
  return std::exp(x);  // determinism-ok: serial tail outside the batched pass sweeps
}

// ... and the preceding-line form too.
double good_suppressed_above(double x) {
  // determinism-ok: reference implementation, intentionally direct libm
  return std::exp(x);
}
