// NOT compiled — lint self-test fixture (see lint_determinism.py
// --self-test). Known-bad wall-clock reads in a deterministic layer:
// every line carrying an EXPECT marker must fire exactly that rule.
#include <chrono>

#include "obs/metrics.hpp"

namespace fpsched {

double scenario_wall_seconds() {
  const auto start = std::chrono::steady_clock::now();  // EXPECT[wall-clock]
  const auto also = std::chrono::system_clock::now();   // EXPECT[wall-clock]
  const auto hi = std::chrono::high_resolution_clock::now();  // EXPECT[wall-clock]
  return std::chrono::duration<double>(also - start + (hi - hi)).count();
}

std::uint64_t sanctioned_timing() {
  // The telemetry entry point is the fix, not a suppression target.
  return obs::monotonic_ns();
}

std::uint64_t justified_clock_read() {
  // determinism-ok: feeds a log banner only, never a record byte
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

}  // namespace fpsched
