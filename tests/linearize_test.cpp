// Tests for the DF / BF / RF linearization strategies.
#include "dag/linearize.hpp"

#include <gtest/gtest.h>

#include "dag/traversal.hpp"
#include "workflows/generator.hpp"
#include "workflows/synthetic.hpp"

namespace fpsched {
namespace {

TEST(Linearize, NamesAndEnumeration) {
  EXPECT_EQ(to_string(LinearizeMethod::depth_first), "DF");
  EXPECT_EQ(to_string(LinearizeMethod::breadth_first), "BF");
  EXPECT_EQ(to_string(LinearizeMethod::random_first), "RF");
  EXPECT_EQ(all_linearize_methods().size(), 3u);
}

TEST(Linearize, DepthFirstFollowsTheHeavyBranchFirst) {
  // The paper's priority is the OUTWEIGHT (sum of successors' weights), so
  // build branches whose heads differ in successor weight:
  //   0 -> 1 -> 4 (w=50), 0 -> 2 -> 5 (w=10), 0 -> 3 -> 6 (w=1).
  DagBuilder builder;
  builder.add_vertices(7);
  builder.add_edge(0, 1);
  builder.add_edge(0, 2);
  builder.add_edge(0, 3);
  builder.add_edge(1, 4);
  builder.add_edge(2, 5);
  builder.add_edge(3, 6);
  const Dag dag = std::move(builder).build();
  const std::vector<double> w{1.0, 1.0, 1.0, 1.0, 50.0, 10.0, 1.0};
  const auto order = linearize(dag, w, LinearizeMethod::depth_first);
  EXPECT_EQ(order[0], 0u);
  EXPECT_EQ(order[1], 1u);  // outweight 50 first
  EXPECT_EQ(order[2], 4u);  // DF dives into the branch it started
  EXPECT_EQ(order[3], 2u);  // then outweight 10
  EXPECT_EQ(order[4], 5u);
  EXPECT_EQ(order[5], 3u);  // then outweight 1
  EXPECT_EQ(order[6], 6u);
}

TEST(Linearize, DepthFirstDivesBeforeSwitchingBranches) {
  // Two independent chains a0->a1, b0->b1 with equal weights: DF finishes
  // the chain it starts; BF alternates between the chains.
  DagBuilder builder;
  builder.add_vertices(4);
  builder.add_edge(0, 1);  // chain A
  builder.add_edge(2, 3);  // chain B
  const Dag dag = std::move(builder).build();
  const std::vector<double> w{1.0, 1.0, 1.0, 1.0};

  const auto df = linearize(dag, w, LinearizeMethod::depth_first);
  // DF: after executing a source, its newly-enabled successor runs next.
  const auto pos = [&](const std::vector<VertexId>& order, VertexId v) {
    return std::find(order.begin(), order.end(), v) - order.begin();
  };
  EXPECT_EQ(pos(df, 1), pos(df, 0) + 1);  // A's successor immediately follows
  const auto bf = linearize(dag, w, LinearizeMethod::breadth_first);
  EXPECT_EQ(bf, (std::vector<VertexId>{0, 2, 1, 3}));  // wave by wave
}

TEST(Linearize, BreadthFirstOrdersWavesByOutweight) {
  // Join: sources with different outweights... all share the sink, so use
  // weights to check in-wave ordering via the outweight tie-break on ids.
  const TaskGraph join = make_join(std::vector<double>{5.0, 1.0, 3.0}, 2.0);
  const auto order = linearize(join.dag(), join.weights(), LinearizeMethod::breadth_first);
  // All sources have outweight = w_sink = 2; tie-break is ascending id.
  EXPECT_EQ(order, (std::vector<VertexId>{0, 1, 2, 3}));
}

TEST(Linearize, RandomFirstIsSeededAndValid) {
  const TaskGraph graph = make_paper_figure1(1.0);
  const auto a = linearize(graph.dag(), graph.weights(), LinearizeMethod::random_first,
                           {.seed = 1});
  const auto b = linearize(graph.dag(), graph.weights(), LinearizeMethod::random_first,
                           {.seed = 1});
  const auto c = linearize(graph.dag(), graph.weights(), LinearizeMethod::random_first,
                           {.seed = 2});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);  // with 8 tasks a collision is vanishingly unlikely
  EXPECT_TRUE(is_valid_linearization(graph.dag(), a));
  EXPECT_TRUE(is_valid_linearization(graph.dag(), c));
}

TEST(Linearize, OutweightModeChangesPriorities) {
  // Vertex 1's direct successors are light but its subtree is heavy:
  //   0 -> {1, 2}; 1 -> 3 (w=1) -> 4 (w=100); 2 -> 5 (w=10).
  DagBuilder builder;
  builder.add_vertices(6);
  builder.add_edge(0, 1);
  builder.add_edge(0, 2);
  builder.add_edge(1, 3);
  builder.add_edge(3, 4);
  builder.add_edge(2, 5);
  const Dag dag = std::move(builder).build();
  const std::vector<double> w{1.0, 1.0, 1.0, 1.0, 100.0, 10.0};

  const auto direct = linearize(dag, w, LinearizeMethod::depth_first,
                                {.outweight = OutweightMode::direct});
  const auto deep = linearize(dag, w, LinearizeMethod::depth_first,
                              {.outweight = OutweightMode::descendants});
  // direct: d(1) = w3 = 1 < d(2) = w5 = 10 -> vertex 2 first.
  EXPECT_EQ(direct[1], 2u);
  // descendants: d(1) = 1 + 100 = 101 > d(2) = 10 -> vertex 1 first.
  EXPECT_EQ(deep[1], 1u);
}

// Every strategy must produce a valid linearization on every workflow.
class LinearizeAllWorkflows
    : public ::testing::TestWithParam<std::tuple<WorkflowKind, LinearizeMethod>> {};

TEST_P(LinearizeAllWorkflows, ProducesValidLinearizations) {
  const auto [kind, method] = GetParam();
  const TaskGraph graph = generate_workflow(kind, {.task_count = 120, .seed = 3});
  const auto order = linearize(graph.dag(), graph.weights(), method, {.seed = 99});
  EXPECT_TRUE(is_valid_linearization(graph.dag(), order));
}

INSTANTIATE_TEST_SUITE_P(
    Workflows, LinearizeAllWorkflows,
    ::testing::Combine(::testing::ValuesIn(all_workflow_kinds().begin(),
                                           all_workflow_kinds().end()),
                       ::testing::Values(LinearizeMethod::depth_first,
                                         LinearizeMethod::breadth_first,
                                         LinearizeMethod::random_first)));

}  // namespace
}  // namespace fpsched
