// Tests for the DF / BF / RF linearization strategies.
#include "dag/linearize.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <random>

#include "dag/traversal.hpp"
#include "workflows/generator.hpp"
#include "workflows/synthetic.hpp"

namespace fpsched {
namespace {

// --- reference implementation ------------------------------------------
//
// The historic DF/BF algorithms, kept here as the oracle for the heap
// rewrite: DF keeps the ready set on an explicit stack (newly enabled
// tasks sorted by decreasing priority, pushed so the best is on top); BF
// keeps it in a FIFO of enabling waves. `linearize` must reproduce these
// orders exactly, including the ascending-id tie-break.

std::vector<VertexId> reference_linearize(const Dag& dag, std::span<const double> weights,
                                          LinearizeMethod method,
                                          const LinearizeOptions& options) {
  const std::size_t n = dag.vertex_count();
  const std::vector<double> priority = options.outweight == OutweightMode::direct
                                           ? direct_outweights(dag, weights)
                                           : descendant_outweights(dag, weights);
  const auto before = [&](VertexId a, VertexId b) {
    if (priority[a] != priority[b]) return priority[a] > priority[b];
    return a < b;
  };
  std::vector<std::uint32_t> remaining(n);
  std::vector<VertexId> initial;
  for (VertexId v = 0; v < n; ++v) {
    remaining[v] = static_cast<std::uint32_t>(dag.in_degree(v));
    if (remaining[v] == 0) initial.push_back(v);
  }
  std::sort(initial.begin(), initial.end(), before);

  std::vector<VertexId> order;
  order.reserve(n);
  std::vector<VertexId> enabled;
  if (method == LinearizeMethod::depth_first) {
    std::vector<VertexId> stack(initial.rbegin(), initial.rend());
    while (!stack.empty()) {
      const VertexId v = stack.back();
      stack.pop_back();
      order.push_back(v);
      enabled.clear();
      for (const VertexId s : dag.successors(v)) {
        if (--remaining[s] == 0) enabled.push_back(s);
      }
      std::sort(enabled.begin(), enabled.end(), before);
      stack.insert(stack.end(), enabled.rbegin(), enabled.rend());
    }
  } else {
    std::deque<VertexId> queue(initial.begin(), initial.end());
    while (!queue.empty()) {
      const VertexId v = queue.front();
      queue.pop_front();
      order.push_back(v);
      enabled.clear();
      for (const VertexId s : dag.successors(v)) {
        if (--remaining[s] == 0) enabled.push_back(s);
      }
      std::sort(enabled.begin(), enabled.end(), before);
      queue.insert(queue.end(), enabled.begin(), enabled.end());
    }
  }
  return order;
}

/// Random layered DAG with integer weights (small range, to force
/// priority ties and exercise the id tie-break) and occasional
/// layer-skipping edges.
std::pair<Dag, std::vector<double>> random_layered_dag(std::uint32_t seed) {
  std::mt19937 rng(seed);
  const std::size_t layers = 3 + rng() % 5;
  std::vector<std::vector<VertexId>> layer(layers);
  DagBuilder builder;
  for (std::size_t l = 0; l < layers; ++l) {
    const std::size_t width = 1 + rng() % 8;
    for (std::size_t i = 0; i < width; ++i) layer[l].push_back(builder.add_vertex());
  }
  for (std::size_t l = 1; l < layers; ++l) {
    for (const VertexId v : layer[l]) {
      // One mandatory parent in the previous layer, then a few random
      // extras from any earlier layer (duplicates exercise CSR dedup).
      builder.add_edge(layer[l - 1][rng() % layer[l - 1].size()], v);
      const std::size_t extras = rng() % 3;
      for (std::size_t i = 0; i < extras; ++i) {
        const std::size_t from_layer = rng() % l;
        builder.add_edge(layer[from_layer][rng() % layer[from_layer].size()], v);
      }
    }
  }
  Dag dag = std::move(builder).build();
  std::vector<double> weights(dag.vertex_count());
  for (double& w : weights) w = 1.0 + static_cast<double>(rng() % 4);
  return {std::move(dag), std::move(weights)};
}

TEST(Linearize, MatchesReferenceOnRandomizedDags) {
  for (std::uint32_t seed = 1; seed <= 12; ++seed) {
    const auto [dag, weights] = random_layered_dag(seed);
    for (const LinearizeMethod method :
         {LinearizeMethod::depth_first, LinearizeMethod::breadth_first}) {
      for (const OutweightMode mode : {OutweightMode::direct, OutweightMode::descendants}) {
        const LinearizeOptions options{.outweight = mode};
        const auto got = linearize(dag, weights, method, options);
        const auto want = reference_linearize(dag, weights, method, options);
        EXPECT_EQ(got, want) << "seed=" << seed << " method=" << to_string(method)
                             << " mode=" << static_cast<int>(mode);
        EXPECT_TRUE(is_valid_linearization(dag, got));
      }
    }
  }
}

TEST(Linearize, WorkspaceReuseMatchesFreshCalls) {
  // One workspace carried across differently-sized DAGs and every method
  // must still produce exactly what fresh `linearize` calls produce.
  LinearizeWorkspace ws;
  std::vector<VertexId> out;
  for (std::uint32_t seed = 20; seed <= 25; ++seed) {
    const auto [dag, weights] = random_layered_dag(seed);
    for (const LinearizeMethod method : all_linearize_methods()) {
      const LinearizeOptions options{.seed = seed};
      linearize_into(dag, weights, method, options, ws, out);
      EXPECT_EQ(out, linearize(dag, weights, method, options))
          << "seed=" << seed << " method=" << to_string(method);
    }
  }
}

TEST(Linearize, NamesAndEnumeration) {
  EXPECT_EQ(to_string(LinearizeMethod::depth_first), "DF");
  EXPECT_EQ(to_string(LinearizeMethod::breadth_first), "BF");
  EXPECT_EQ(to_string(LinearizeMethod::random_first), "RF");
  EXPECT_EQ(all_linearize_methods().size(), 3u);
}

TEST(Linearize, DepthFirstFollowsTheHeavyBranchFirst) {
  // The paper's priority is the OUTWEIGHT (sum of successors' weights), so
  // build branches whose heads differ in successor weight:
  //   0 -> 1 -> 4 (w=50), 0 -> 2 -> 5 (w=10), 0 -> 3 -> 6 (w=1).
  DagBuilder builder;
  builder.add_vertices(7);
  builder.add_edge(0, 1);
  builder.add_edge(0, 2);
  builder.add_edge(0, 3);
  builder.add_edge(1, 4);
  builder.add_edge(2, 5);
  builder.add_edge(3, 6);
  const Dag dag = std::move(builder).build();
  const std::vector<double> w{1.0, 1.0, 1.0, 1.0, 50.0, 10.0, 1.0};
  const auto order = linearize(dag, w, LinearizeMethod::depth_first);
  EXPECT_EQ(order[0], 0u);
  EXPECT_EQ(order[1], 1u);  // outweight 50 first
  EXPECT_EQ(order[2], 4u);  // DF dives into the branch it started
  EXPECT_EQ(order[3], 2u);  // then outweight 10
  EXPECT_EQ(order[4], 5u);
  EXPECT_EQ(order[5], 3u);  // then outweight 1
  EXPECT_EQ(order[6], 6u);
}

TEST(Linearize, DepthFirstDivesBeforeSwitchingBranches) {
  // Two independent chains a0->a1, b0->b1 with equal weights: DF finishes
  // the chain it starts; BF alternates between the chains.
  DagBuilder builder;
  builder.add_vertices(4);
  builder.add_edge(0, 1);  // chain A
  builder.add_edge(2, 3);  // chain B
  const Dag dag = std::move(builder).build();
  const std::vector<double> w{1.0, 1.0, 1.0, 1.0};

  const auto df = linearize(dag, w, LinearizeMethod::depth_first);
  // DF: after executing a source, its newly-enabled successor runs next.
  const auto pos = [&](const std::vector<VertexId>& order, VertexId v) {
    return std::find(order.begin(), order.end(), v) - order.begin();
  };
  EXPECT_EQ(pos(df, 1), pos(df, 0) + 1);  // A's successor immediately follows
  const auto bf = linearize(dag, w, LinearizeMethod::breadth_first);
  EXPECT_EQ(bf, (std::vector<VertexId>{0, 2, 1, 3}));  // wave by wave
}

TEST(Linearize, BreadthFirstOrdersWavesByOutweight) {
  // Join: sources with different outweights... all share the sink, so use
  // weights to check in-wave ordering via the outweight tie-break on ids.
  const TaskGraph join = make_join(std::vector<double>{5.0, 1.0, 3.0}, 2.0);
  const auto order = linearize(join.dag(), join.weights(), LinearizeMethod::breadth_first);
  // All sources have outweight = w_sink = 2; tie-break is ascending id.
  EXPECT_EQ(order, (std::vector<VertexId>{0, 1, 2, 3}));
}

TEST(Linearize, RandomFirstIsSeededAndValid) {
  const TaskGraph graph = make_paper_figure1(1.0);
  const auto a = linearize(graph.dag(), graph.weights(), LinearizeMethod::random_first,
                           {.seed = 1});
  const auto b = linearize(graph.dag(), graph.weights(), LinearizeMethod::random_first,
                           {.seed = 1});
  const auto c = linearize(graph.dag(), graph.weights(), LinearizeMethod::random_first,
                           {.seed = 2});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);  // with 8 tasks a collision is vanishingly unlikely
  EXPECT_TRUE(is_valid_linearization(graph.dag(), a));
  EXPECT_TRUE(is_valid_linearization(graph.dag(), c));
}

TEST(Linearize, OutweightModeChangesPriorities) {
  // Vertex 1's direct successors are light but its subtree is heavy:
  //   0 -> {1, 2}; 1 -> 3 (w=1) -> 4 (w=100); 2 -> 5 (w=10).
  DagBuilder builder;
  builder.add_vertices(6);
  builder.add_edge(0, 1);
  builder.add_edge(0, 2);
  builder.add_edge(1, 3);
  builder.add_edge(3, 4);
  builder.add_edge(2, 5);
  const Dag dag = std::move(builder).build();
  const std::vector<double> w{1.0, 1.0, 1.0, 1.0, 100.0, 10.0};

  const auto direct = linearize(dag, w, LinearizeMethod::depth_first,
                                {.outweight = OutweightMode::direct});
  const auto deep = linearize(dag, w, LinearizeMethod::depth_first,
                              {.outweight = OutweightMode::descendants});
  // direct: d(1) = w3 = 1 < d(2) = w5 = 10 -> vertex 2 first.
  EXPECT_EQ(direct[1], 2u);
  // descendants: d(1) = 1 + 100 = 101 > d(2) = 10 -> vertex 1 first.
  EXPECT_EQ(deep[1], 1u);
}

// Every strategy must produce a valid linearization on every workflow.
class LinearizeAllWorkflows
    : public ::testing::TestWithParam<std::tuple<WorkflowKind, LinearizeMethod>> {};

TEST_P(LinearizeAllWorkflows, ProducesValidLinearizations) {
  const auto [kind, method] = GetParam();
  const TaskGraph graph = generate_workflow(kind, {.task_count = 120, .seed = 3});
  const auto order = linearize(graph.dag(), graph.weights(), method, {.seed = 99});
  EXPECT_TRUE(is_valid_linearization(graph.dag(), order));
}

INSTANTIATE_TEST_SUITE_P(
    Workflows, LinearizeAllWorkflows,
    ::testing::Combine(::testing::ValuesIn(all_workflow_kinds().begin(),
                                           all_workflow_kinds().end()),
                       ::testing::Values(LinearizeMethod::depth_first,
                                         LinearizeMethod::breadth_first,
                                         LinearizeMethod::random_first)));

}  // namespace
}  // namespace fpsched
