// Tests for the TaskGraph container and cost models.
#include "workflows/task_graph.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "support/error.hpp"
#include "workflows/synthetic.hpp"

namespace fpsched {
namespace {

TEST(TaskGraph, AccessorsAndTotals) {
  const TaskGraph graph = make_chain(std::vector<double>{2.0, 3.0, 5.0});
  EXPECT_EQ(graph.task_count(), 3u);
  EXPECT_DOUBLE_EQ(graph.weight(1), 3.0);
  EXPECT_DOUBLE_EQ(graph.total_weight(), 10.0);
  EXPECT_DOUBLE_EQ(graph.average_weight(), 10.0 / 3.0);
  EXPECT_EQ(graph.weights(), (std::vector<double>{2.0, 3.0, 5.0}));
  EXPECT_EQ(graph.name(0), "chain0");
  EXPECT_EQ(graph.type(0), "chain");
}

TEST(TaskGraph, ProportionalCostModel) {
  TaskGraph graph = make_chain(std::vector<double>{10.0, 20.0});
  graph.apply_cost_model(CostModel::proportional(0.1));
  EXPECT_DOUBLE_EQ(graph.ckpt_cost(0), 1.0);
  EXPECT_DOUBLE_EQ(graph.recovery_cost(0), 1.0);
  EXPECT_DOUBLE_EQ(graph.ckpt_cost(1), 2.0);
}

TEST(TaskGraph, ConstantCostModel) {
  TaskGraph graph = make_chain(std::vector<double>{10.0, 20.0});
  graph.apply_cost_model(CostModel::constant(5.0));
  EXPECT_DOUBLE_EQ(graph.ckpt_cost(0), 5.0);
  EXPECT_DOUBLE_EQ(graph.ckpt_cost(1), 5.0);
  EXPECT_DOUBLE_EQ(graph.recovery_cost(1), 5.0);
}

TEST(TaskGraph, CostModelDescriptions) {
  EXPECT_NE(CostModel::proportional(0.1).describe().find("0.100 * w_i"), std::string::npos);
  EXPECT_NE(CostModel::constant(5.0).describe().find("5.000 s"), std::string::npos);
}

TEST(TaskGraph, SetCostsAndWeight) {
  TaskGraph graph = make_chain(std::vector<double>{10.0, 20.0});
  graph.set_costs(0, 3.0, 2.0);
  EXPECT_DOUBLE_EQ(graph.ckpt_cost(0), 3.0);
  EXPECT_DOUBLE_EQ(graph.recovery_cost(0), 2.0);
  graph.set_weight(1, 25.0);
  EXPECT_DOUBLE_EQ(graph.weight(1), 25.0);
  EXPECT_THROW(graph.set_costs(5, 1.0, 1.0), InvalidArgument);
  EXPECT_THROW(graph.set_costs(0, -1.0, 1.0), InvalidArgument);
  EXPECT_THROW(graph.set_weight(0, std::nan("")), InvalidArgument);
}

TEST(TaskGraph, ConstructorValidation) {
  DagBuilder builder;
  builder.add_vertices(2);
  builder.add_edge(0, 1);
  Dag dag = std::move(builder).build();
  // Size mismatch.
  EXPECT_THROW(TaskGraph(dag, std::vector<Task>(3)), InvalidArgument);
  // Negative cost.
  std::vector<Task> tasks(2);
  tasks[1].weight = -1.0;
  EXPECT_THROW(TaskGraph(dag, tasks), InvalidArgument);
}

TEST(TypeTable, InternDeduplicatesAndRoundTrips) {
  TypeTable table;
  const TypeId map = table.intern("map");
  const TypeId reduce = table.intern("reduce");
  EXPECT_NE(map, reduce);
  EXPECT_EQ(table.intern("map"), map);
  EXPECT_EQ(table.intern("reduce"), reduce);
  EXPECT_EQ(table.size(), 2u);
  EXPECT_EQ(table.name(map), "map");
  EXPECT_EQ(table.name(reduce), "reduce");
  EXPECT_GT(table.memory_bytes(), 0u);
}

TEST(TaskGraphBuilder, StreamsTasksEdgesAndSynthesizesNames) {
  TaskGraphBuilder builder;
  builder.reserve(3, 2);
  const TypeId stage = builder.intern_type("stage");
  const TypeId sink = builder.intern_type("sink");
  EXPECT_EQ(builder.add_task(stage, 1.0), 0u);
  EXPECT_EQ(builder.add_task(stage, 2.0), 1u);
  EXPECT_EQ(builder.add_task(sink, 3.0), 2u);
  builder.add_edge(0, 2);
  builder.add_edge(1, 2);
  EXPECT_EQ(builder.task_count(), 3u);
  const TaskGraph graph = std::move(builder).finish();

  EXPECT_EQ(graph.task_count(), 3u);
  EXPECT_EQ(graph.dag().edge_count(), 2u);
  EXPECT_DOUBLE_EQ(graph.weight(1), 2.0);
  EXPECT_EQ(graph.type(0), "stage");
  EXPECT_EQ(graph.type_id(0), graph.type_id(1));
  EXPECT_NE(graph.type_id(0), graph.type_id(2));
  // The streaming path stores no name strings: names synthesize on demand.
  EXPECT_EQ(graph.name(1), "stage_1");
  EXPECT_EQ(graph.name(2), "sink_2");
  // Costs start at zero until a cost model is applied.
  EXPECT_DOUBLE_EQ(graph.ckpt_cost(0), 0.0);
  EXPECT_DOUBLE_EQ(graph.recovery_cost(2), 0.0);
  // The AoS shim assembles the same view.
  const Task task = graph.task(2);
  EXPECT_EQ(task.name, "sink_2");
  EXPECT_EQ(task.type, "sink");
  EXPECT_DOUBLE_EQ(task.weight, 3.0);
}

TEST(TaskGraphBuilder, FinishRejectsInvalidWeights) {
  TaskGraphBuilder builder;
  EXPECT_THROW(builder.add_task(99, 1.0), InvalidArgument);  // uninterned type id
  builder.add_task(builder.intern_type("t"), -1.0);
  EXPECT_THROW(std::move(builder).finish(), InvalidArgument);
}

TEST(TaskGraph, ExplicitNamesSurviveTheSoADecomposition) {
  // The AoS constructor (loader / synthetic gadget path) must keep the
  // caller's names verbatim rather than re-synthesizing them.
  const TaskGraph chain = make_chain(std::vector<double>{1.0, 2.0});
  EXPECT_EQ(chain.name(0), "chain0");
  EXPECT_EQ(chain.name(1), "chain1");
  EXPECT_EQ(chain.task(1).name, "chain1");
}

TEST(TaskGraph, SpanViewsMatchAccessors) {
  TaskGraph graph = make_chain(std::vector<double>{2.0, 3.0, 5.0});
  graph.apply_cost_model(CostModel::proportional(0.5));
  ASSERT_EQ(graph.weights_view().size(), 3u);
  ASSERT_EQ(graph.ckpt_costs_view().size(), 3u);
  ASSERT_EQ(graph.recovery_costs_view().size(), 3u);
  for (VertexId v = 0; v < graph.task_count(); ++v) {
    EXPECT_DOUBLE_EQ(graph.weights_view()[v], graph.weight(v));
    EXPECT_DOUBLE_EQ(graph.ckpt_costs_view()[v], graph.ckpt_cost(v));
    EXPECT_DOUBLE_EQ(graph.recovery_costs_view()[v], graph.recovery_cost(v));
  }
  EXPECT_GT(graph.memory_bytes(), 0u);
}

TEST(TaskGraph, EmptyGraphTotals) {
  const TaskGraph graph;
  EXPECT_EQ(graph.task_count(), 0u);
  EXPECT_DOUBLE_EQ(graph.total_weight(), 0.0);
  EXPECT_DOUBLE_EQ(graph.average_weight(), 0.0);
}

}  // namespace
}  // namespace fpsched
