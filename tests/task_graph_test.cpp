// Tests for the TaskGraph container and cost models.
#include "workflows/task_graph.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "support/error.hpp"
#include "workflows/synthetic.hpp"

namespace fpsched {
namespace {

TEST(TaskGraph, AccessorsAndTotals) {
  const TaskGraph graph = make_chain(std::vector<double>{2.0, 3.0, 5.0});
  EXPECT_EQ(graph.task_count(), 3u);
  EXPECT_DOUBLE_EQ(graph.weight(1), 3.0);
  EXPECT_DOUBLE_EQ(graph.total_weight(), 10.0);
  EXPECT_DOUBLE_EQ(graph.average_weight(), 10.0 / 3.0);
  EXPECT_EQ(graph.weights(), (std::vector<double>{2.0, 3.0, 5.0}));
  EXPECT_EQ(graph.name(0), "chain0");
  EXPECT_EQ(graph.type(0), "chain");
}

TEST(TaskGraph, ProportionalCostModel) {
  TaskGraph graph = make_chain(std::vector<double>{10.0, 20.0});
  graph.apply_cost_model(CostModel::proportional(0.1));
  EXPECT_DOUBLE_EQ(graph.ckpt_cost(0), 1.0);
  EXPECT_DOUBLE_EQ(graph.recovery_cost(0), 1.0);
  EXPECT_DOUBLE_EQ(graph.ckpt_cost(1), 2.0);
}

TEST(TaskGraph, ConstantCostModel) {
  TaskGraph graph = make_chain(std::vector<double>{10.0, 20.0});
  graph.apply_cost_model(CostModel::constant(5.0));
  EXPECT_DOUBLE_EQ(graph.ckpt_cost(0), 5.0);
  EXPECT_DOUBLE_EQ(graph.ckpt_cost(1), 5.0);
  EXPECT_DOUBLE_EQ(graph.recovery_cost(1), 5.0);
}

TEST(TaskGraph, CostModelDescriptions) {
  EXPECT_NE(CostModel::proportional(0.1).describe().find("0.100 * w_i"), std::string::npos);
  EXPECT_NE(CostModel::constant(5.0).describe().find("5.000 s"), std::string::npos);
}

TEST(TaskGraph, SetCostsAndWeight) {
  TaskGraph graph = make_chain(std::vector<double>{10.0, 20.0});
  graph.set_costs(0, 3.0, 2.0);
  EXPECT_DOUBLE_EQ(graph.ckpt_cost(0), 3.0);
  EXPECT_DOUBLE_EQ(graph.recovery_cost(0), 2.0);
  graph.set_weight(1, 25.0);
  EXPECT_DOUBLE_EQ(graph.weight(1), 25.0);
  EXPECT_THROW(graph.set_costs(5, 1.0, 1.0), InvalidArgument);
  EXPECT_THROW(graph.set_costs(0, -1.0, 1.0), InvalidArgument);
  EXPECT_THROW(graph.set_weight(0, std::nan("")), InvalidArgument);
}

TEST(TaskGraph, ConstructorValidation) {
  DagBuilder builder;
  builder.add_vertices(2);
  builder.add_edge(0, 1);
  Dag dag = std::move(builder).build();
  // Size mismatch.
  EXPECT_THROW(TaskGraph(dag, std::vector<Task>(3)), InvalidArgument);
  // Negative cost.
  std::vector<Task> tasks(2);
  tasks[1].weight = -1.0;
  EXPECT_THROW(TaskGraph(dag, tasks), InvalidArgument);
}

TEST(TaskGraph, EmptyGraphTotals) {
  const TaskGraph graph;
  EXPECT_EQ(graph.task_count(), 0u);
  EXPECT_DOUBLE_EQ(graph.total_weight(), 0.0);
  EXPECT_DOUBLE_EQ(graph.average_weight(), 0.0);
}

}  // namespace
}  // namespace fpsched
