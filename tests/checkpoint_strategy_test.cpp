// Tests for the six checkpoint placement strategies of Section 5.
#include "heuristics/checkpoint_strategy.hpp"

#include <gtest/gtest.h>

#include "dag/linearize.hpp"
#include "support/error.hpp"
#include "workflows/synthetic.hpp"

namespace fpsched {
namespace {

std::size_t count_flags(const std::vector<std::uint8_t>& flags) {
  std::size_t n = 0;
  for (const std::uint8_t f : flags)
    if (f) ++n;
  return n;
}

TEST(CkptStrategy, NamesAndBudgetedness) {
  EXPECT_EQ(to_string(CkptStrategy::never), "CkptNvr");
  EXPECT_EQ(to_string(CkptStrategy::always), "CkptAlws");
  EXPECT_EQ(to_string(CkptStrategy::by_weight), "CkptW");
  EXPECT_EQ(to_string(CkptStrategy::by_cost), "CkptC");
  EXPECT_EQ(to_string(CkptStrategy::by_outweight), "CkptD");
  EXPECT_EQ(to_string(CkptStrategy::periodic), "CkptPer");
  EXPECT_EQ(all_ckpt_strategies().size(), 6u);
  EXPECT_FALSE(is_budgeted(CkptStrategy::never));
  EXPECT_FALSE(is_budgeted(CkptStrategy::always));
  EXPECT_TRUE(is_budgeted(CkptStrategy::by_weight));
  EXPECT_TRUE(is_budgeted(CkptStrategy::periodic));
}

TEST(CkptStrategy, NeverAndAlways) {
  const TaskGraph graph = make_paper_figure1(5.0);
  const auto order = graph.dag().topological_order();
  const auto never = place_checkpoints(graph, order, CkptStrategy::never, 3);
  EXPECT_EQ(count_flags(never), 0u);
  const auto always = place_checkpoints(graph, order, CkptStrategy::always, 0);
  EXPECT_EQ(count_flags(always), graph.task_count());
}

TEST(CkptStrategy, ByWeightPicksTheHeaviest) {
  TaskGraph graph = make_chain(std::vector<double>{5.0, 50.0, 1.0, 20.0, 9.0});
  const auto order = graph.dag().topological_order();
  const auto flags = place_checkpoints(graph, order, CkptStrategy::by_weight, 2);
  EXPECT_EQ(count_flags(flags), 2u);
  EXPECT_TRUE(flags[1]);  // w = 50
  EXPECT_TRUE(flags[3]);  // w = 20
}

TEST(CkptStrategy, ByCostPicksTheCheapest) {
  TaskGraph graph = make_chain(std::vector<double>{5.0, 50.0, 1.0, 20.0, 9.0});
  for (VertexId v = 0; v < graph.task_count(); ++v)
    graph.set_costs(v, static_cast<double>(10 - v), 1.0);  // costs 10, 9, 8, 7, 6
  const auto order = graph.dag().topological_order();
  const auto flags = place_checkpoints(graph, order, CkptStrategy::by_cost, 2);
  EXPECT_EQ(count_flags(flags), 2u);
  EXPECT_TRUE(flags[4]);  // cost 6
  EXPECT_TRUE(flags[3]);  // cost 7
}

TEST(CkptStrategy, ByOutweightPicksHeavySuccessors) {
  // Fork: the source's outweight is the sum of all sinks; sinks have 0.
  const TaskGraph graph = make_fork(1.0, std::vector<double>{10.0, 20.0, 30.0});
  const auto order = graph.dag().topological_order();
  const auto flags = place_checkpoints(graph, order, CkptStrategy::by_outweight, 1);
  EXPECT_TRUE(flags[0]);
  EXPECT_EQ(count_flags(flags), 1u);
}

TEST(CkptStrategy, TieBreaksAreStableById) {
  const TaskGraph graph = make_join(std::vector<double>{7.0, 7.0, 7.0, 7.0}, 1.0);
  const auto order = graph.dag().topological_order();
  const auto flags = place_checkpoints(graph, order, CkptStrategy::by_weight, 2);
  EXPECT_TRUE(flags[0]);
  EXPECT_TRUE(flags[1]);
  EXPECT_FALSE(flags[2]);
}

TEST(CkptStrategy, BudgetClampsToTaskCount) {
  const TaskGraph graph = make_uniform_chain(4, 2.0);
  const auto order = graph.dag().topological_order();
  const auto flags = place_checkpoints(graph, order, CkptStrategy::by_weight, 99);
  EXPECT_EQ(count_flags(flags), 4u);
}

TEST(CkptPeriodic, PlacesMarksAtPeriodBoundaries) {
  // Uniform chain of 10 x 10s, N = 5 -> period 20s: checkpoints after
  // tasks finishing at 20, 40, 60, 80 (positions 1, 3, 5, 7) — N-1 marks.
  const TaskGraph graph = make_uniform_chain(10, 10.0);
  const auto order = graph.dag().topological_order();
  const auto flags = place_checkpoints(graph, order, CkptStrategy::periodic, 5);
  EXPECT_EQ(count_flags(flags), 4u);
  EXPECT_TRUE(flags[1]);
  EXPECT_TRUE(flags[3]);
  EXPECT_TRUE(flags[5]);
  EXPECT_TRUE(flags[7]);
  EXPECT_FALSE(flags[9]);
}

TEST(CkptPeriodic, OneHugeTaskAbsorbsSeveralMarks) {
  // Weights 5, 100, 5, 5: with N = 4 (period 28.75) marks at 28.75, 57.5,
  // 86.25 all fall inside the big task -> it alone is checkpointed.
  const TaskGraph graph = make_chain(std::vector<double>{5.0, 100.0, 5.0, 5.0});
  const auto order = graph.dag().topological_order();
  const auto flags = place_checkpoints(graph, order, CkptStrategy::periodic, 4);
  EXPECT_EQ(count_flags(flags), 1u);
  EXPECT_TRUE(flags[1]);
}

TEST(CkptPeriodic, RespectsTheLinearization) {
  // The same DAG under two different orders checkpoints different tasks:
  // W = 34, N = 2 puts the single mark at 17, which lands on whichever
  // source crosses that cumulative time.
  const TaskGraph graph = make_join(std::vector<double>{10.0, 12.0, 11.0}, 1.0);
  const auto a = place_checkpoints(graph, std::vector<VertexId>{0, 1, 2, 3},
                                   CkptStrategy::periodic, 2);
  const auto b = place_checkpoints(graph, std::vector<VertexId>{1, 0, 2, 3},
                                   CkptStrategy::periodic, 2);
  EXPECT_TRUE(a[1]);  // cumulative 10, 22 -> the mark lands on vertex 1
  EXPECT_TRUE(b[0]);  // cumulative 12, 22 -> the mark lands on vertex 0
  EXPECT_NE(a, b);
}

TEST(CkptPeriodic, BudgetBelowTwoPlacesNothing) {
  const TaskGraph graph = make_uniform_chain(5, 1.0);
  const auto order = graph.dag().topological_order();
  EXPECT_EQ(count_flags(place_checkpoints(graph, order, CkptStrategy::periodic, 0)), 0u);
  EXPECT_EQ(count_flags(place_checkpoints(graph, order, CkptStrategy::periodic, 1)), 0u);
}

TEST(CkptStrategy, MakeHeuristicScheduleIsValid) {
  const TaskGraph graph = make_paper_figure1(4.0);
  const std::vector<double> weights = graph.weights();
  auto order = linearize(graph.dag(), weights, LinearizeMethod::depth_first);
  const Schedule schedule =
      make_heuristic_schedule(graph, std::move(order), CkptStrategy::by_weight, 3);
  EXPECT_NO_THROW(validate_schedule(graph, schedule));
  EXPECT_EQ(schedule.checkpoint_count(), 3u);
}

}  // namespace
}  // namespace fpsched
