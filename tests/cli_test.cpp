// Tests for the command line parser used by benches and examples.
#include "support/cli.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace fpsched {
namespace {

CliParser make_parser() {
  CliParser parser("test tool");
  parser.add_option("tasks", "100", "number of tasks");
  parser.add_option("lambda", "0.001", "failure rate");
  parser.add_option("sizes", "50,100,200", "task counts");
  parser.add_flag("full", "run the full grid");
  return parser;
}

TEST(Cli, DefaultsApplyWhenUnset) {
  CliParser parser = make_parser();
  const char* argv[] = {"prog"};
  ASSERT_TRUE(parser.parse(1, argv));
  EXPECT_EQ(parser.get_int("tasks"), 100);
  EXPECT_DOUBLE_EQ(parser.get_double("lambda"), 0.001);
  EXPECT_FALSE(parser.get_flag("full"));
  EXPECT_EQ(parser.get_int_list("sizes"), (std::vector<std::int64_t>{50, 100, 200}));
}

TEST(Cli, ParsesSpaceAndEqualsForms) {
  CliParser parser = make_parser();
  const char* argv[] = {"prog", "--tasks", "250", "--lambda=0.01", "--full"};
  ASSERT_TRUE(parser.parse(5, argv));
  EXPECT_EQ(parser.get_int("tasks"), 250);
  EXPECT_DOUBLE_EQ(parser.get_double("lambda"), 0.01);
  EXPECT_TRUE(parser.get_flag("full"));
}

TEST(Cli, ListParsing) {
  CliParser parser = make_parser();
  const char* argv[] = {"prog", "--sizes", "1,2,3,4"};
  ASSERT_TRUE(parser.parse(3, argv));
  EXPECT_EQ(parser.get_int_list("sizes"), (std::vector<std::int64_t>{1, 2, 3, 4}));
  EXPECT_EQ(parser.get_double_list("lambda"), std::vector<double>{0.001});
}

TEST(Cli, HelpShortCircuits) {
  CliParser parser = make_parser();
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(parser.parse(2, argv));
  EXPECT_NE(parser.help_text().find("--tasks"), std::string::npos);
  EXPECT_NE(parser.help_text().find("default: 100"), std::string::npos);
}

TEST(Cli, Errors) {
  {
    CliParser parser = make_parser();
    const char* argv[] = {"prog", "--unknown", "1"};
    EXPECT_THROW(parser.parse(3, argv), InvalidArgument);
  }
  {
    CliParser parser = make_parser();
    const char* argv[] = {"prog", "--tasks"};
    EXPECT_THROW(parser.parse(2, argv), InvalidArgument);
  }
  {
    CliParser parser = make_parser();
    const char* argv[] = {"prog", "positional"};
    EXPECT_THROW(parser.parse(2, argv), InvalidArgument);
  }
  {
    CliParser parser = make_parser();
    const char* argv[] = {"prog", "--full=yes"};
    EXPECT_THROW(parser.parse(2, argv), InvalidArgument);
  }
  {
    CliParser parser = make_parser();
    const char* argv[] = {"prog", "--tasks", "abc"};
    ASSERT_TRUE(parser.parse(3, argv));
    EXPECT_THROW(parser.get_int("tasks"), InvalidArgument);
  }
  {
    CliParser parser = make_parser();
    EXPECT_THROW(parser.add_option("tasks", "1", "dup"), InvalidArgument);
  }
}

TEST(Cli, OutOfRangeNumbersAreRejected) {
  // strtoll/strtod clamp out-of-range input and only raise errno; the
  // parser must reject instead of silently returning LLONG_MAX/HUGE_VAL.
  {
    CliParser parser = make_parser();
    const char* argv[] = {"prog", "--tasks", "99999999999999999999"};
    ASSERT_TRUE(parser.parse(3, argv));
    EXPECT_THROW(parser.get_int("tasks"), InvalidArgument);
  }
  {
    CliParser parser = make_parser();
    const char* argv[] = {"prog", "--tasks", "-99999999999999999999"};
    ASSERT_TRUE(parser.parse(3, argv));
    EXPECT_THROW(parser.get_int("tasks"), InvalidArgument);
  }
  {
    CliParser parser = make_parser();
    const char* argv[] = {"prog", "--lambda", "1e999"};
    ASSERT_TRUE(parser.parse(3, argv));
    EXPECT_THROW(parser.get_double("lambda"), InvalidArgument);
  }
  {
    CliParser parser = make_parser();
    const char* argv[] = {"prog", "--sizes", "1,99999999999999999999"};
    ASSERT_TRUE(parser.parse(3, argv));
    EXPECT_THROW(parser.get_int_list("sizes"), InvalidArgument);
  }
  {
    CliParser parser = make_parser();
    const char* argv[] = {"prog", "--lambda", "1e-4"};
    ASSERT_TRUE(parser.parse(3, argv));
    EXPECT_DOUBLE_EQ(parser.get_double("lambda"), 1e-4);  // in-range still fine
    EXPECT_EQ(parser.get_double_list("lambda"), std::vector<double>{1e-4});
  }
}

TEST(Cli, EmptyListSegmentsAreRejected) {
  const auto expect_list_throws = [](const char* value) {
    CliParser parser = make_parser();
    const char* argv[] = {"prog", "--sizes", value};
    ASSERT_TRUE(parser.parse(3, argv));
    EXPECT_THROW(parser.get_int_list("sizes"), InvalidArgument) << "value: '" << value << "'";
    EXPECT_THROW(parser.get_double_list("sizes"), InvalidArgument) << "value: '" << value << "'";
  };
  expect_list_throws("100,,200");  // interior empty segment
  expect_list_throws("100,200,");  // trailing comma
  expect_list_throws(",100");      // leading comma
  expect_list_throws(",");         // only separators
  expect_list_throws("");          // empty list
}

TEST(Cli, PositionalsRejectedUnlessAllowed) {
  CliParser parser = make_parser();
  const char* argv[] = {"prog", "fig2"};
  EXPECT_THROW(parser.parse(2, argv), InvalidArgument);
}

TEST(Cli, PositionalsCollectInOrderAndMixWithOptions) {
  CliParser parser = make_parser();
  parser.allow_positionals("experiment", "experiment names");
  const char* argv[] = {"prog", "fig2", "--tasks", "7", "fig7", "--full"};
  ASSERT_TRUE(parser.parse(6, argv));
  EXPECT_EQ(parser.positionals(), (std::vector<std::string>{"fig2", "fig7"}));
  EXPECT_EQ(parser.get_int("tasks"), 7);
  EXPECT_TRUE(parser.get_flag("full"));
  EXPECT_NE(parser.help_text().find("<experiment>"), std::string::npos);
}

TEST(Cli, StringListSplitsAndRejectsEmptySegments) {
  CliParser parser = make_parser();
  const char* argv[] = {"prog", "--sizes", "table,chart"};
  ASSERT_TRUE(parser.parse(3, argv));
  EXPECT_EQ(parser.get_string_list("sizes"), (std::vector<std::string>{"table", "chart"}));

  CliParser bad = make_parser();
  const char* bad_argv[] = {"prog", "--sizes", "table,,chart"};
  ASSERT_TRUE(bad.parse(3, bad_argv));
  EXPECT_THROW(bad.get_string_list("sizes"), InvalidArgument);
}

TEST(Cli, HasOptionReflectsRegistration) {
  const CliParser parser = make_parser();
  EXPECT_TRUE(parser.has_option("tasks"));
  EXPECT_TRUE(parser.has_option("full"));
  EXPECT_FALSE(parser.has_option("downtimes"));
}

}  // namespace
}  // namespace fpsched
