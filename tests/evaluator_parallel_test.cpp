// The k-blocked parallel Theorem-3 evaluator must be BIT-identical to the
// serial fast path (the combine replays the exact serial floating-point
// operation sequence) for every thread count and block partition, and both
// must agree with the literal Algorithm-1 transcription on randomized
// DAGs. Exercised with and without a shared ThreadPool, including odd
// block boundaries (n not divisible by the block count).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/evaluator.hpp"
#include "core/evaluator_naive.hpp"
#include "dag/linearize.hpp"
#include "support/rng.hpp"
#include "support/threading.hpp"
#include "test_util.hpp"
#include "workflows/generator.hpp"
#include "workflows/synthetic.hpp"

namespace fpsched {
namespace {

using testing::assert_rel_near;

Schedule random_schedule(const TaskGraph& graph, Rng& rng, double ckpt_probability) {
  const std::vector<double> weights = graph.weights();
  Schedule schedule = make_schedule(
      linearize(graph.dag(), weights, LinearizeMethod::random_first, {.seed = rng()}));
  for (VertexId v = 0; v < graph.task_count(); ++v)
    schedule.checkpointed[v] = rng.bernoulli(ckpt_probability) ? 1 : 0;
  return schedule;
}

/// Serial fast-path value and the parallel value for every thread count in
/// `eval_threads`, via transient threads and via a shared pool — all must
/// be the same bits.
void expect_bit_identical(const TaskGraph& graph, const FailureModel& model,
                          const Schedule& schedule,
                          const std::vector<std::size_t>& eval_threads = {2, 4, 7}) {
  const ScheduleEvaluator evaluator(graph, model);
  EvaluatorWorkspace serial_ws;
  const double serial = evaluator.expected_makespan(schedule, serial_ws);
  ThreadPool pool(3);
  for (const std::size_t threads : eval_threads) {
    EvaluatorWorkspace ws;
    const double transient =
        evaluator.expected_makespan(schedule, ws, true, {.threads = threads});
    EXPECT_EQ(serial, transient) << "eval-threads " << threads << " (transient)";
    const double pooled =
        evaluator.expected_makespan(schedule, ws, true, {.threads = threads, .pool = &pool});
    EXPECT_EQ(serial, pooled) << "eval-threads " << threads << " (pooled)";
  }
}

TEST(EvaluatorParallel, BlockBoundariesTileTheRange) {
  for (const std::size_t n : {1u, 2u, 5u, 97u, 100u, 200u}) {
    for (const std::size_t blocks : {1u, 2u, 3u, 4u, 7u, 16u}) {
      const std::vector<std::size_t> bounds = eval_block_boundaries(n, blocks);
      ASSERT_GE(bounds.size(), 2u);
      EXPECT_EQ(bounds.front(), 0u);
      EXPECT_EQ(bounds.back(), n);
      for (std::size_t b = 1; b < bounds.size(); ++b) EXPECT_LE(bounds[b - 1], bounds[b]);
      // Triangular balance: no block may hold more than ~2x its share of
      // the total inner-loop trips (loose bound; the first pass alone
      // weighs n, so tiny n / many blocks can't split finer).
      if (n >= 64 && blocks <= 8) {
        const double total = 0.5 * static_cast<double>(n) * static_cast<double>(n + 1);
        for (std::size_t b = 1; b < bounds.size(); ++b) {
          double weight = 0.0;
          for (std::size_t k = bounds[b - 1]; k < bounds[b]; ++k)
            weight += static_cast<double>(n - k);
          EXPECT_LE(weight, 2.0 * total / static_cast<double>(blocks) +
                                static_cast<double>(n))
              << "n=" << n << " blocks=" << blocks << " block " << b;
        }
      }
    }
  }
}

TEST(EvaluatorParallel, BitIdenticalOnChainForkJoin) {
  Rng rng(7);
  const FailureModel model(1e-2, 1.0);
  {
    TaskGraph graph = make_uniform_chain(61, 7.0);
    graph.apply_cost_model(CostModel::constant(1.0));
    for (int rep = 0; rep < 3; ++rep)
      expect_bit_identical(graph, model, random_schedule(graph, rng, 0.3));
  }
  {
    std::vector<double> weights;
    for (int i = 0; i < 40; ++i) weights.push_back(1.0 + (i % 7));
    TaskGraph graph = make_fork(20.0, weights);
    graph.apply_cost_model(CostModel::proportional(0.2));
    for (int rep = 0; rep < 3; ++rep)
      expect_bit_identical(graph, model, random_schedule(graph, rng, 0.4));
  }
  {
    std::vector<double> weights;
    for (int i = 0; i < 33; ++i) weights.push_back(2.0 + (i % 5));
    TaskGraph graph = make_join(weights, 12.0);
    graph.apply_cost_model(CostModel::proportional(0.2));
    for (int rep = 0; rep < 3; ++rep)
      expect_bit_identical(graph, model, random_schedule(graph, rng, 0.4));
  }
}

TEST(EvaluatorParallel, BitIdenticalOnCyberShakeUpTo200) {
  Rng rng(99);
  // n = 97/131/200: never divisible by 2/4/7 all at once, so every
  // eval-thread count exercises ragged block boundaries.
  for (const std::size_t n : {50u, 97u, 131u, 200u}) {
    const TaskGraph graph = generate_cybershake(
        {.task_count = n, .seed = 5 + n, .cost_model = CostModel::proportional(0.1)});
    for (const double lambda : {1e-3, 1e-2}) {
      expect_bit_identical(graph, FailureModel(lambda, 0.0), random_schedule(graph, rng, 0.25));
    }
  }
}

TEST(EvaluatorParallel, BitIdenticalOnLayeredRandomDags) {
  Rng rng(1234);
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    TaskGraph graph = make_layered_random({.task_count = 80,
                                           .layer_count = 8,
                                           .edge_probability = 0.35,
                                           .mean_weight = 15.0,
                                           .weight_cv = 0.6,
                                           .seed = seed});
    graph.apply_cost_model(CostModel::proportional(0.15));
    const FailureModel model(seed % 2 ? 1e-2 : 1e-3, seed % 3 ? 0.0 : 2.0);
    expect_bit_identical(graph, model, random_schedule(graph, rng, 0.3));
  }
}

TEST(EvaluatorParallel, BitIdenticalInFailureDominatedRegime) {
  // Huge lambda drives Eq. (1) into overflow/underflow territory — the
  // regime where the serial path's zero-probability skips matter. The
  // parallel combine must reproduce those skips exactly.
  TaskGraph graph = make_uniform_chain(48, 50.0);
  graph.apply_cost_model(CostModel::proportional(0.1));
  Rng rng(3);
  expect_bit_identical(graph, FailureModel(0.5, 0.0), random_schedule(graph, rng, 0.2));
  expect_bit_identical(graph, FailureModel(2.0, 1.0), random_schedule(graph, rng, 0.6));
}

TEST(EvaluatorParallel, MatchesAlgorithmOneOnRandomDags) {
  // Differential anchor: parallel evaluator vs the literal O(n^4)
  // transcription (small n — the reference is quartic).
  Rng rng(42);
  for (std::uint64_t seed = 10; seed < 14; ++seed) {
    TaskGraph graph = make_layered_random({.task_count = 24,
                                           .layer_count = 5,
                                           .edge_probability = 0.4,
                                           .mean_weight = 12.0,
                                           .weight_cv = 0.5,
                                           .seed = seed});
    graph.apply_cost_model(CostModel::proportional(0.15));
    const FailureModel model(1e-2, seed % 2 ? 2.0 : 0.0);
    const Schedule schedule = random_schedule(graph, rng, 0.35);
    const double reference = evaluate_reference(graph, model, schedule);
    const ScheduleEvaluator evaluator(graph, model);
    EvaluatorWorkspace ws;
    for (const std::size_t threads : {2u, 4u, 7u}) {
      const double parallel = evaluator.expected_makespan(schedule, ws, true,
                                                          {.threads = threads});
      assert_rel_near(reference, parallel, 1e-12, "parallel vs Algorithm 1");
    }
  }
}

TEST(EvaluatorParallel, ThreadCountBeyondTasksAndTinyGraphs) {
  Rng rng(5);
  for (const std::size_t n : {1u, 2u, 3u, 5u}) {
    TaskGraph graph = make_uniform_chain(n, 4.0);
    graph.apply_cost_model(CostModel::constant(0.5));
    expect_bit_identical(graph, FailureModel(1e-2, 0.0), random_schedule(graph, rng, 0.5),
                         {2, 4, 16});
  }
}

TEST(EvaluatorParallel, FastMathBackendIsBitIdenticalAcrossModes) {
  // The staged sweeps feed the same argument arrays to the kernel in the
  // serial and k-blocked paths, and the combine replays the serial
  // accumulation order — so bit-identity across thread counts must hold
  // for the fast backend exactly as it does for exact.
  const TaskGraph graph = generate_cybershake(
      {.task_count = 120, .seed = 3, .cost_model = CostModel::proportional(0.1)});
  const ScheduleEvaluator evaluator(graph, FailureModel(1e-3, 30.0));
  Rng rng(17);
  ThreadPool pool(3);
  for (int rep = 0; rep < 3; ++rep) {
    const Schedule schedule = random_schedule(graph, rng, 0.3);
    EvaluatorWorkspace serial_ws;
    const double serial = evaluator.expected_makespan(schedule, serial_ws, true,
                                                      {.math = EvalMath::fast});
    for (const std::size_t threads : {2u, 4u, 7u}) {
      EvaluatorWorkspace ws;
      EXPECT_EQ(serial, evaluator.expected_makespan(schedule, ws, true,
                                                    {.threads = threads, .math = EvalMath::fast}))
          << "eval-threads " << threads << " (transient)";
      EXPECT_EQ(serial,
                evaluator.expected_makespan(
                    schedule, ws, true,
                    {.threads = threads, .pool = &pool, .math = EvalMath::fast}))
          << "eval-threads " << threads << " (pooled)";
    }
    // Sanity: fast tracks exact closely even though the bits differ.
    EvaluatorWorkspace exact_ws;
    assert_rel_near(evaluator.expected_makespan(schedule, exact_ws), serial, 1e-10,
                    "fast vs exact");
  }
}

TEST(EvaluatorParallel, WorkspaceReuseAcrossModes) {
  // One workspace, alternating serial and parallel evaluations of
  // different schedules: stale block scratch must never leak into the
  // next call.
  const TaskGraph graph = generate_montage(
      {.task_count = 60, .seed = 11, .cost_model = CostModel::proportional(0.1)});
  const ScheduleEvaluator evaluator(graph, FailureModel(1e-3, 0.0));
  Rng rng(8);
  EvaluatorWorkspace shared_ws;
  for (int rep = 0; rep < 4; ++rep) {
    const Schedule schedule = random_schedule(graph, rng, 0.3);
    EvaluatorWorkspace fresh;
    const double serial = evaluator.expected_makespan(schedule, fresh);
    EXPECT_EQ(serial, evaluator.expected_makespan(schedule, shared_ws, true,
                                                  {.threads = rep % 2 ? 4u : 1u}));
    EXPECT_EQ(serial, evaluator.expected_makespan(schedule, shared_ws));
  }
}

}  // namespace
}  // namespace fpsched
