// Telemetry registry suite: counter/gauge/histogram semantics, the
// Prometheus text exposition (golden — scrapers parse this format, so
// its bytes are pinned), the JSON rendering, and thread-safety of the
// relaxed-atomic hot path. The goldens use only exactly-representable
// doubles (0.25, 0.5, 8.0), so the shortest-round-trip formatter has one
// correct answer and the expected strings cannot rot with libm.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "support/error.hpp"

namespace fpsched::obs {
namespace {

TEST(CounterTest, AddsAndReads) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0u);
  counter.add();
  counter.add(41);
  EXPECT_EQ(counter.value(), 42u);
}

TEST(GaugeTest, SetAddAndSetMax) {
  Gauge gauge;
  gauge.set(5);
  gauge.add(-2);
  EXPECT_EQ(gauge.value(), 3);
  gauge.set_max(2);  // lower value loses
  EXPECT_EQ(gauge.value(), 3);
  gauge.set_max(9);
  EXPECT_EQ(gauge.value(), 9);
}

TEST(HistogramTest, BucketsCountAndSum) {
  const double bounds[] = {0.5, 1.0, 4.0};
  Histogram hist{std::span<const double>(bounds)};
  hist.observe(0.25);
  hist.observe(0.5);  // boundary values land in their bucket (le = <=)
  hist.observe(8.0);  // overflow bucket
  EXPECT_EQ(hist.count(), 3u);
  EXPECT_DOUBLE_EQ(hist.sum(), 8.75);
  EXPECT_EQ(hist.bucket(0), 2u);
  EXPECT_EQ(hist.bucket(1), 0u);
  EXPECT_EQ(hist.bucket(2), 0u);
  EXPECT_EQ(hist.bucket(3), 1u);  // +Inf
}

TEST(HistogramTest, RejectsBadBounds) {
  const double unsorted[] = {1.0, 0.5};
  EXPECT_THROW(Histogram{std::span<const double>(unsorted)}, Error);
  const double infinite[] = {1.0, std::numeric_limits<double>::infinity()};
  EXPECT_THROW(Histogram{std::span<const double>(infinite)}, Error);
}

/// Loads `registry` with one of everything, in a fixed registration
/// order (labeled counter siblings adjacent, sharing one family header).
void fill_golden(MetricsRegistry& registry) {
  registry.counter("requests_total", "total requests").add(3);
  registry.counter("by_route", "requests by route", "route=\"/a\"").add(1);
  registry.counter("by_route", "requests by route", "route=\"/b\"").add(2);
  registry.gauge("queue_depth", "queued items").set(9);
  const double bounds[] = {0.5, 1.0, 4.0};
  Histogram& hist = registry.histogram("latency", "seconds per request", bounds);
  hist.observe(0.25);
  hist.observe(0.5);
  hist.observe(8.0);
}

TEST(MetricsRegistryTest, PrometheusExpositionGolden) {
  MetricsRegistry registry;
  fill_golden(registry);
  EXPECT_EQ(registry.prometheus(),
            "# HELP requests_total total requests\n"
            "# TYPE requests_total counter\n"
            "requests_total 3\n"
            "# HELP by_route requests by route\n"
            "# TYPE by_route counter\n"
            "by_route{route=\"/a\"} 1\n"
            "by_route{route=\"/b\"} 2\n"
            "# HELP queue_depth queued items\n"
            "# TYPE queue_depth gauge\n"
            "queue_depth 9\n"
            "# HELP latency seconds per request\n"
            "# TYPE latency histogram\n"
            "latency_bucket{le=\"0.5\"} 2\n"
            "latency_bucket{le=\"1\"} 2\n"
            "latency_bucket{le=\"4\"} 2\n"
            "latency_bucket{le=\"+Inf\"} 3\n"
            "latency_sum 8.75\n"
            "latency_count 3\n");
}

TEST(MetricsRegistryTest, JsonGolden) {
  MetricsRegistry registry;
  fill_golden(registry);
  EXPECT_EQ(registry.json(),
            "{\"counters\":{\"requests_total\":3,\"by_route{route=\\\"/a\\\"}\":1,"
            "\"by_route{route=\\\"/b\\\"}\":2},\"gauges\":{\"queue_depth\":9},"
            "\"histograms\":{\"latency\":{\"count\":3,\"sum\":8.75,\"buckets\":["
            "{\"le\":\"0.5\",\"count\":2},{\"le\":\"1\",\"count\":2},"
            "{\"le\":\"4\",\"count\":2},{\"le\":\"+Inf\",\"count\":3}]}}}");
}

TEST(MetricsRegistryTest, DedupsByNameAndLabelsAndRejectsTypeClashes) {
  MetricsRegistry registry;
  Counter& first = registry.counter("hits", "h");
  first.add(7);
  // Same (name, labels) returns the same instrument; different labels a
  // sibling.
  EXPECT_EQ(&registry.counter("hits", "h"), &first);
  EXPECT_NE(&registry.counter("hits", "h", "kind=\"x\""), &first);
  EXPECT_EQ(registry.counter("hits", "h").value(), 7u);
  EXPECT_THROW(registry.gauge("hits", "h"), Error);
}

TEST(MetricsRegistryTest, CounterValuesSnapshotsCountersOnly) {
  MetricsRegistry registry;
  registry.counter("a_total", "a").add(2);
  registry.gauge("depth", "d").set(5);
  registry.counter("b_total", "b", "k=\"v\"").add(1);
  const auto values = registry.counter_values();
  ASSERT_EQ(values.size(), 2u);
  EXPECT_EQ(values[0], (std::pair<std::string, std::uint64_t>{"a_total", 2}));
  EXPECT_EQ(values[1], (std::pair<std::string, std::uint64_t>{"b_total{k=\"v\"}", 1}));
}

TEST(MetricsRegistryTest, ConcurrentUpdatesLoseNothing) {
  MetricsRegistry registry;
  Counter& counter = registry.counter("spins_total", "concurrent adds");
  const double bounds[] = {0.5};
  Histogram& hist = registry.histogram("spin_sizes", "concurrent observes", bounds);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 25000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        counter.add(1);
        hist.observe(0.25);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(hist.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(hist.sum(), kThreads * kPerThread * 0.25);  // exact: sums of 0.25
}

TEST(ScopedTimerTest, ObservesSecondsAndAccumulatesNs) {
  MetricsRegistry registry;
  Histogram& seconds = registry.histogram("op_seconds", "s", latency_buckets_seconds());
  Counter& ns = registry.counter("op_ns_total", "ns");
  { const ScopedTimer timer(&seconds, &ns); }
  EXPECT_EQ(seconds.count(), 1u);
  EXPECT_GE(seconds.sum(), 0.0);
  { const ScopedTimer timer(seconds); }  // histogram-only convenience form
  EXPECT_EQ(seconds.count(), 2u);
}

TEST(MonotonicNsTest, NeverGoesBackwards) {
  const std::uint64_t a = monotonic_ns();
  const std::uint64_t b = monotonic_ns();
  EXPECT_LE(a, b);
}

}  // namespace
}  // namespace fpsched::obs
