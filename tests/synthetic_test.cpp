// Tests for the elementary synthetic DAG builders.
#include "workflows/synthetic.hpp"

#include <gtest/gtest.h>

#include "core/theory_chain.hpp"
#include "core/theory_fork.hpp"
#include "core/theory_join.hpp"
#include "dag/traversal.hpp"
#include "support/error.hpp"

namespace fpsched {
namespace {

TEST(Synthetic, ChainShape) {
  const TaskGraph graph = make_chain(std::vector<double>{1.0, 2.0, 3.0});
  std::vector<VertexId> path;
  EXPECT_TRUE(is_chain(graph.dag(), &path));
  EXPECT_EQ(path, (std::vector<VertexId>{0, 1, 2}));
  EXPECT_EQ(graph.dag().edge_count(), 2u);
  EXPECT_THROW(make_chain(std::vector<double>{}), InvalidArgument);
}

TEST(Synthetic, UniformChain) {
  const TaskGraph graph = make_uniform_chain(5, 7.0);
  EXPECT_EQ(graph.task_count(), 5u);
  for (VertexId v = 0; v < 5; ++v) EXPECT_DOUBLE_EQ(graph.weight(v), 7.0);
}

TEST(Synthetic, ForkShape) {
  const TaskGraph graph = make_fork(10.0, std::vector<double>{1.0, 2.0, 3.0});
  VertexId src = 99;
  EXPECT_TRUE(is_fork(graph.dag(), &src));
  EXPECT_EQ(src, 0u);
  EXPECT_DOUBLE_EQ(graph.weight(0), 10.0);
  EXPECT_EQ(graph.dag().out_degree(0), 3u);
  EXPECT_FALSE(is_join(graph.dag()));
}

TEST(Synthetic, JoinShape) {
  const TaskGraph graph = make_join(std::vector<double>{1.0, 2.0, 3.0}, 10.0);
  VertexId sink = 99;
  EXPECT_TRUE(is_join(graph.dag(), &sink));
  EXPECT_EQ(sink, 3u);
  EXPECT_DOUBLE_EQ(graph.weight(3), 10.0);
  EXPECT_FALSE(is_fork(graph.dag()));
}

TEST(Synthetic, ForkJoinShape) {
  const TaskGraph graph = make_fork_join(3, 4, 2.0);
  EXPECT_EQ(graph.task_count(), 3u * 4u + 2u);
  EXPECT_EQ(graph.dag().sources().size(), 1u);
  EXPECT_EQ(graph.dag().sinks().size(), 1u);
  const auto levels = vertex_levels(graph.dag());
  EXPECT_EQ(*std::max_element(levels.begin(), levels.end()), 4u);
}

TEST(Synthetic, LayeredRandomIsValidAndConnectedDownward) {
  const TaskGraph graph =
      make_layered_random({.task_count = 60, .layer_count = 6, .edge_probability = 0.2,
                           .mean_weight = 10.0, .weight_cv = 0.5, .seed = 42});
  EXPECT_EQ(graph.task_count(), 60u);
  const auto levels = vertex_levels(graph.dag());
  // Every non-first-layer vertex has at least one predecessor.
  std::size_t with_preds = 0;
  for (VertexId v = 0; v < graph.task_count(); ++v)
    if (graph.dag().in_degree(v) > 0) ++with_preds;
  EXPECT_GE(with_preds, 60u - 60u / 6u - 10u);
  // Weights are positive.
  for (VertexId v = 0; v < graph.task_count(); ++v) EXPECT_GT(graph.weight(v), 0.0);
}

TEST(Synthetic, LayeredRandomDeterministicPerSeed) {
  const LayeredRandomConfig config{.task_count = 40, .layer_count = 5, .seed = 9};
  const TaskGraph a = make_layered_random(config);
  const TaskGraph b = make_layered_random(config);
  EXPECT_EQ(a.dag().edge_count(), b.dag().edge_count());
  EXPECT_EQ(a.weights(), b.weights());
}

TEST(Synthetic, PaperFigure1MatchesThePaper) {
  const TaskGraph graph = make_paper_figure1(10.0);
  EXPECT_EQ(graph.task_count(), 8u);
  const Dag& dag = graph.dag();
  EXPECT_TRUE(dag.has_edge(0, 3));
  EXPECT_TRUE(dag.has_edge(3, 5));
  EXPECT_TRUE(dag.has_edge(5, 6));
  EXPECT_TRUE(dag.has_edge(1, 2));
  EXPECT_TRUE(dag.has_edge(2, 4));
  EXPECT_TRUE(dag.has_edge(2, 7));
  EXPECT_TRUE(dag.has_edge(4, 6));
  EXPECT_EQ(dag.edge_count(), 7u);
  // Sources T0, T1; sinks T6, T7 — as drawn in the paper.
  const auto sources = dag.sources();
  const auto sinks = dag.sinks();
  EXPECT_EQ(std::vector<VertexId>(sources.begin(), sources.end()), (std::vector<VertexId>{0, 1}));
  EXPECT_EQ(std::vector<VertexId>(sinks.begin(), sinks.end()), (std::vector<VertexId>{6, 7}));
}

TEST(Synthetic, InvalidConfigurations) {
  EXPECT_THROW(make_fork(1.0, std::vector<double>{}), InvalidArgument);
  EXPECT_THROW(make_join(std::vector<double>{}, 1.0), InvalidArgument);
  EXPECT_THROW(make_fork_join(0, 3, 1.0), InvalidArgument);
  EXPECT_THROW(make_layered_random({.task_count = 3, .layer_count = 9}), InvalidArgument);
}

}  // namespace
}  // namespace fpsched
