// Tests for workflow (de)serialization.
#include "workflows/io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "support/error.hpp"
#include "workflows/generator.hpp"
#include "workflows/synthetic.hpp"

namespace fpsched {
namespace {

void expect_graphs_equal(const TaskGraph& a, const TaskGraph& b) {
  ASSERT_EQ(a.task_count(), b.task_count());
  ASSERT_EQ(a.dag().edge_count(), b.dag().edge_count());
  for (VertexId v = 0; v < a.task_count(); ++v) {
    EXPECT_EQ(a.name(v), b.name(v));
    EXPECT_EQ(a.type(v), b.type(v));
    EXPECT_DOUBLE_EQ(a.weight(v), b.weight(v));
    EXPECT_DOUBLE_EQ(a.ckpt_cost(v), b.ckpt_cost(v));
    EXPECT_DOUBLE_EQ(a.recovery_cost(v), b.recovery_cost(v));
    const auto sa = a.dag().successors(v);
    const auto sb = b.dag().successors(v);
    ASSERT_EQ(sa.size(), sb.size());
    for (std::size_t i = 0; i < sa.size(); ++i) EXPECT_EQ(sa[i], sb[i]);
  }
}

TEST(Io, RoundTripPaperFigure1) {
  TaskGraph original = make_paper_figure1(12.5);
  original.apply_cost_model(CostModel::proportional(0.1));
  std::stringstream buffer;
  save_workflow(buffer, original);
  const TaskGraph loaded = load_workflow(buffer);
  expect_graphs_equal(original, loaded);
}

TEST(Io, RoundTripEveryGeneratorFamily) {
  for (const WorkflowKind kind : all_workflow_kinds()) {
    const TaskGraph original = generate_workflow(kind, {.task_count = 80, .seed = 13});
    std::stringstream buffer;
    save_workflow(buffer, original);
    const TaskGraph loaded = load_workflow(buffer);
    expect_graphs_equal(original, loaded);
  }
}

TEST(Io, PreservesFullDoublePrecision) {
  TaskGraph graph = make_uniform_chain(1, 1.0);
  graph.set_weight(0, 0.1 + 0.2);  // not exactly representable
  graph.set_costs(0, 1.0 / 3.0, 2.0 / 7.0);
  std::stringstream buffer;
  save_workflow(buffer, graph);
  const TaskGraph loaded = load_workflow(buffer);
  EXPECT_DOUBLE_EQ(loaded.weight(0), 0.1 + 0.2);
  EXPECT_DOUBLE_EQ(loaded.ckpt_cost(0), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(loaded.recovery_cost(0), 2.0 / 7.0);
}

TEST(Io, CommentsAndBlankLinesAreSkipped) {
  std::stringstream buffer;
  buffer << "# a comment\n\nfpsched-workflow 1\n# another\ntasks 2\n"
            "0 a generic 1.0 0.1 0.1\n1 b generic 2.0 0.2 0.2\n"
            "edges 1\n0 1\n";
  const TaskGraph graph = load_workflow(buffer);
  EXPECT_EQ(graph.task_count(), 2u);
  EXPECT_TRUE(graph.dag().has_edge(0, 1));
}

TEST(Io, MalformedInputsRejected) {
  const auto expect_parse_error = [](const std::string& text) {
    std::stringstream buffer(text);
    EXPECT_THROW(load_workflow(buffer), ParseError) << text;
  };
  expect_parse_error("");
  expect_parse_error("wrong-magic 1\n");
  expect_parse_error("fpsched-workflow 9\n");
  expect_parse_error("fpsched-workflow 1\nnotasks 2\n");
  // Truncated task list.
  expect_parse_error("fpsched-workflow 1\ntasks 2\n0 a g 1 0 0\n");
  // Bad task id.
  expect_parse_error("fpsched-workflow 1\ntasks 1\n7 a g 1 0 0\nedges 0\n");
  // Duplicate task id.
  expect_parse_error("fpsched-workflow 1\ntasks 2\n0 a g 1 0 0\n0 b g 1 0 0\nedges 0\n");
  // Edge out of range.
  expect_parse_error("fpsched-workflow 1\ntasks 1\n0 a g 1 0 0\nedges 1\n0 9\n");
  // Cycle.
  expect_parse_error(
      "fpsched-workflow 1\ntasks 2\n0 a g 1 0 0\n1 b g 1 0 0\nedges 2\n0 1\n1 0\n");
  // Negative cost.
  expect_parse_error("fpsched-workflow 1\ntasks 1\n0 a g -1 0 0\nedges 0\n");
}

TEST(Io, FileRoundTrip) {
  const TaskGraph original = generate_montage({.task_count = 40, .seed = 2});
  const std::string path = ::testing::TempDir() + "/fpsched_io_test.wf";
  save_workflow_file(path, original);
  const TaskGraph loaded = load_workflow_file(path);
  expect_graphs_equal(original, loaded);
  EXPECT_THROW(load_workflow_file("/nonexistent/dir/x.wf"), InvalidArgument);
}

}  // namespace
}  // namespace fpsched
