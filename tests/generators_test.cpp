// Tests for the Pegasus-like workflow generators: exact task counts,
// acyclicity, family-specific structure, and weight calibration.
#include "workflows/generator.hpp"

#include <gtest/gtest.h>

#include <map>

#include "dag/traversal.hpp"
#include "support/error.hpp"

namespace fpsched {
namespace {

std::map<std::string, std::size_t> type_histogram(const TaskGraph& graph) {
  std::map<std::string, std::size_t> histogram;
  for (VertexId v = 0; v < graph.task_count(); ++v) ++histogram[graph.type(v)];
  return histogram;
}

// --- cross-family parameterized checks --------------------------------

class GeneratorEveryFamily
    : public ::testing::TestWithParam<std::tuple<WorkflowKind, std::size_t>> {};

TEST_P(GeneratorEveryFamily, ExactTaskCountAndValidDag) {
  const auto [kind, count] = GetParam();
  const TaskGraph graph = generate_workflow(kind, {.task_count = count, .seed = 7});
  EXPECT_EQ(graph.task_count(), count);
  // Dag construction already guarantees acyclicity; verify the topological
  // order covers every vertex and costs follow the default model.
  EXPECT_EQ(graph.dag().topological_order().size(), count);
  for (VertexId v = 0; v < graph.task_count(); ++v) {
    EXPECT_GT(graph.weight(v), 0.0);
    EXPECT_NEAR(graph.ckpt_cost(v), 0.1 * graph.weight(v), 1e-12);
    EXPECT_DOUBLE_EQ(graph.ckpt_cost(v), graph.recovery_cost(v));
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndFamilies, GeneratorEveryFamily,
    ::testing::Combine(::testing::ValuesIn(all_workflow_kinds().begin(),
                                           all_workflow_kinds().end()),
                       ::testing::Values(std::size_t{50}, std::size_t{100}, std::size_t{137},
                                         std::size_t{300}, std::size_t{700})));

class GeneratorDeterminism : public ::testing::TestWithParam<WorkflowKind> {};

TEST_P(GeneratorDeterminism, SameSeedSameGraphDifferentSeedDifferentWeights) {
  const WorkflowKind kind = GetParam();
  const TaskGraph a = generate_workflow(kind, {.task_count = 100, .seed = 5});
  const TaskGraph b = generate_workflow(kind, {.task_count = 100, .seed = 5});
  const TaskGraph c = generate_workflow(kind, {.task_count = 100, .seed = 6});
  EXPECT_EQ(a.weights(), b.weights());
  EXPECT_EQ(a.dag().edge_count(), b.dag().edge_count());
  EXPECT_NE(a.weights(), c.weights());
}

INSTANTIATE_TEST_SUITE_P(Families, GeneratorDeterminism,
                         ::testing::ValuesIn(all_workflow_kinds().begin(),
                                             all_workflow_kinds().end()));

class GeneratorWeightScale : public ::testing::TestWithParam<WorkflowKind> {};

TEST_P(GeneratorWeightScale, AverageWeightNearPaperValue) {
  // Paper, Section 6.1: Montage ~10 s, Ligo ~220 s, CyberShake ~25 s,
  // Genome > 1000 s. Accept a generous band around those anchors.
  const WorkflowKind kind = GetParam();
  const TaskGraph graph = generate_workflow(kind, {.task_count = 400, .seed = 11});
  const double average = graph.average_weight();
  switch (kind) {
    case WorkflowKind::montage:
      EXPECT_GT(average, 5.0);
      EXPECT_LT(average, 20.0);
      break;
    case WorkflowKind::ligo:
      EXPECT_GT(average, 150.0);
      EXPECT_LT(average, 300.0);
      break;
    case WorkflowKind::cybershake:
      EXPECT_GT(average, 15.0);
      EXPECT_LT(average, 40.0);
      break;
    case WorkflowKind::genome:
      EXPECT_GT(average, 1000.0);
      break;
  }
}

INSTANTIATE_TEST_SUITE_P(Families, GeneratorWeightScale,
                         ::testing::ValuesIn(all_workflow_kinds().begin(),
                                             all_workflow_kinds().end()));

// --- family-specific structure -----------------------------------------

TEST(Montage, StructuralInvariants) {
  const TaskGraph graph = generate_montage({.task_count = 102, .seed = 3});
  const auto histogram = type_histogram(graph);
  EXPECT_EQ(histogram.at("mConcatFit"), 1u);
  EXPECT_EQ(histogram.at("mBgModel"), 1u);
  EXPECT_EQ(histogram.at("mImgtbl"), 1u);
  EXPECT_EQ(histogram.at("mAdd"), 1u);
  EXPECT_EQ(histogram.at("mShrink"), 1u);
  EXPECT_EQ(histogram.at("mJPEG"), 1u);
  EXPECT_EQ(histogram.at("mProjectPP"), histogram.at("mBackground"));
  EXPECT_GE(histogram.at("mDiffFit"), histogram.at("mProjectPP") - 1);
  // Sources are exactly the projections; single final sink (mJPEG).
  for (const VertexId v : graph.dag().sources()) EXPECT_EQ(graph.type(v), "mProjectPP");
  const auto sinks = graph.dag().sinks();
  ASSERT_EQ(sinks.size(), 1u);
  EXPECT_EQ(graph.type(sinks[0]), "mJPEG");
  // Every mDiffFit consumes exactly two projections.
  for (VertexId v = 0; v < graph.task_count(); ++v) {
    if (graph.type(v) == "mDiffFit") {
      EXPECT_EQ(graph.dag().in_degree(v), 2u);
    }
    if (graph.type(v) == "mBackground") {
      EXPECT_EQ(graph.dag().in_degree(v), 2u);
    }
  }
}

TEST(Ligo, StructuralInvariants) {
  const TaskGraph graph = generate_ligo({.task_count = 110, .seed = 3});
  const auto histogram = type_histogram(graph);
  EXPECT_EQ(histogram.at("Thinca"), histogram.at("Thinca2"));
  EXPECT_GE(histogram.at("TmpltBank"), histogram.at("Inspiral"));
  EXPECT_EQ(histogram.at("TrigBank"), histogram.at("Inspiral2"));
  // Template banks are the sources.
  for (const VertexId v : graph.dag().sources()) EXPECT_EQ(graph.type(v), "TmpltBank");
  // Every Inspiral feeds a Thinca.
  for (VertexId v = 0; v < graph.task_count(); ++v) {
    if (graph.type(v) == "Inspiral") {
      ASSERT_EQ(graph.dag().out_degree(v), 1u);
      EXPECT_EQ(graph.type(graph.dag().successors(v)[0]), "Thinca");
    }
  }
}

TEST(CyberShake, StructuralInvariants) {
  const TaskGraph graph = generate_cybershake({.task_count = 100, .seed = 3});
  const auto histogram = type_histogram(graph);
  EXPECT_EQ(histogram.at("SeismogramSynthesis"), histogram.at("PeakValCalc"));
  EXPECT_EQ(histogram.at("ZipSeis"), histogram.at("ZipPSA"));
  EXPECT_GE(histogram.at("ExtractSGT"), 2u * histogram.at("ZipSeis"));
  for (const VertexId v : graph.dag().sources()) EXPECT_EQ(graph.type(v), "ExtractSGT");
  // Each synthesis: one extract in, feeds peak calc + zip.
  for (VertexId v = 0; v < graph.task_count(); ++v) {
    if (graph.type(v) == "SeismogramSynthesis") {
      EXPECT_EQ(graph.dag().in_degree(v), 1u);
      EXPECT_EQ(graph.dag().out_degree(v), 2u);
    }
  }
}

TEST(Genome, StructuralInvariants) {
  const TaskGraph graph = generate_genome({.task_count = 126, .seed = 3});
  const auto histogram = type_histogram(graph);
  EXPECT_EQ(histogram.at("maqIndex"), 1u);
  EXPECT_EQ(histogram.at("pileup"), 1u);
  EXPECT_EQ(histogram.at("fastqSplit"), histogram.at("mapMerge"));
  EXPECT_EQ(histogram.at("filterContams"), histogram.at("map"));
  // The single global sink is the pileup.
  const auto sinks = graph.dag().sinks();
  ASSERT_EQ(sinks.size(), 1u);
  EXPECT_EQ(graph.type(sinks[0]), "pileup");
  // Chains: every filterContams has a fastqSplit predecessor.
  for (VertexId v = 0; v < graph.task_count(); ++v) {
    if (graph.type(v) == "filterContams") {
      ASSERT_EQ(graph.dag().in_degree(v), 1u);
      EXPECT_EQ(graph.type(graph.dag().predecessors(v)[0]), "fastqSplit");
    }
  }
}

TEST(Generators, WeightCvZeroGivesDeterministicTypeMeans) {
  const TaskGraph graph = generate_montage({.task_count = 60, .seed = 1, .weight_cv = 0.0});
  // All tasks of a type share the exact mean weight.
  std::map<std::string, double> seen;
  for (VertexId v = 0; v < graph.task_count(); ++v) {
    const auto [it, inserted] = seen.emplace(graph.type(v), graph.weight(v));
    if (!inserted) {
      EXPECT_DOUBLE_EQ(it->second, graph.weight(v)) << graph.type(v);
    }
  }
}

TEST(Generators, MinimumTaskCountsEnforced) {
  for (const WorkflowKind kind : all_workflow_kinds()) {
    const std::size_t minimum = minimum_task_count(kind);
    EXPECT_NO_THROW(generate_workflow(kind, {.task_count = minimum, .seed = 1}));
    EXPECT_THROW(generate_workflow(kind, {.task_count = minimum - 1, .seed = 1}),
                 InvalidArgument);
  }
}

// --- scale invariants ---------------------------------------------------

/// Invariants that must hold at any size: exact task count, acyclicity
/// (the topological order covers every vertex), positive weights, and the
/// type table round-trip (type(v) is the interned string for type_id(v),
/// names synthesize as "<type>_<id>").
void expect_instance_invariants(const TaskGraph& graph, std::size_t count) {
  ASSERT_EQ(graph.task_count(), count);
  EXPECT_EQ(graph.dag().topological_order().size(), count);
  EXPECT_EQ(graph.weights_view().size(), count);
  EXPECT_EQ(graph.type_ids().size(), count);
  TypeTable types = graph.types();  // copy: intern() below must not mutate the graph
  EXPECT_GE(types.size(), 1u);
  for (VertexId v = 0; v < count; ++v) {
    EXPECT_GT(graph.weight(v), 0.0);
    const TypeId id = graph.type_id(v);
    ASSERT_LT(id, types.size());
    EXPECT_FALSE(types.name(id).empty());
    // Round-trip: interning the stored name again must yield the same id.
    EXPECT_EQ(types.intern(types.name(id)), id);
  }
  // Synthesized names follow the "<type>_<id>" scheme (sampled: name()
  // builds a fresh string per call).
  for (const VertexId v : {VertexId{0}, static_cast<VertexId>(count / 2),
                           static_cast<VertexId>(count - 1)}) {
    EXPECT_EQ(graph.name(v), graph.type(v) + "_" + std::to_string(v));
  }
  EXPECT_GT(graph.memory_bytes(), 0u);
}

class GeneratorScaleInvariants : public ::testing::TestWithParam<WorkflowKind> {};

TEST_P(GeneratorScaleInvariants, MinimumSize) {
  const WorkflowKind kind = GetParam();
  const std::size_t minimum = minimum_task_count(kind);
  expect_instance_invariants(generate_workflow(kind, {.task_count = minimum, .seed = 1}),
                             minimum);
}

TEST_P(GeneratorScaleInvariants, HundredThousandTasks) {
  const WorkflowKind kind = GetParam();
  constexpr std::size_t kCount = 100'000;
  const TaskGraph graph = generate_workflow(kind, {.task_count = kCount, .seed = 9});
  expect_instance_invariants(graph, kCount);
  // SoA storage: the whole instance (CSR + weights + costs + type ids)
  // must stay within ~120 bytes/task — the budget that makes 10^6 tasks
  // fit in well under 2 GB.
  EXPECT_LT(graph.memory_bytes(), kCount * 120);
}

INSTANTIATE_TEST_SUITE_P(Families, GeneratorScaleInvariants,
                         ::testing::ValuesIn(all_workflow_kinds().begin(),
                                             all_workflow_kinds().end()));

TEST(Generators, CostModelIsApplied) {
  const TaskGraph graph = generate_cybershake(
      {.task_count = 60, .seed = 2, .cost_model = CostModel::constant(5.0)});
  for (VertexId v = 0; v < graph.task_count(); ++v) {
    EXPECT_DOUBLE_EQ(graph.ckpt_cost(v), 5.0);
    EXPECT_DOUBLE_EQ(graph.recovery_cost(v), 5.0);
  }
}

TEST(Generators, PaperLambdas) {
  EXPECT_DOUBLE_EQ(paper_lambda(WorkflowKind::montage), 1e-3);
  EXPECT_DOUBLE_EQ(paper_lambda(WorkflowKind::ligo), 1e-3);
  EXPECT_DOUBLE_EQ(paper_lambda(WorkflowKind::cybershake), 1e-3);
  EXPECT_DOUBLE_EQ(paper_lambda(WorkflowKind::genome), 1e-4);
}

TEST(Generators, Names) {
  EXPECT_EQ(to_string(WorkflowKind::montage), "Montage");
  EXPECT_EQ(to_string(WorkflowKind::ligo), "Ligo");
  EXPECT_EQ(to_string(WorkflowKind::cybershake), "CyberShake");
  EXPECT_EQ(to_string(WorkflowKind::genome), "Genome");
}

}  // namespace
}  // namespace fpsched
