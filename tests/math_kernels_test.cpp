// Accuracy and contract tests for the batched exp/expm1 kernels.
//
// The exact backend must be bitwise-identical to element-wise libm — it
// is the byte-determinism contract of every default run. The fast backend
// carries an explicit <= 4 ulp bound against libm, checked here over
// >= 10k random inputs per regime (broad range, large-negative, near
// zero, the overflow edge, denormal results, and expm1's series/exp
// switchover), plus the IEEE special values and in-place aliasing. The
// last test closes the loop at the evaluator level: a full fig2 --quick
// grid run under the fast backend must land within 1e-10 relative of the
// exact ratios.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <random>
#include <string>
#include <vector>

#include "core/math_kernels.hpp"
#include "engine/experiment.hpp"
#include "engine/result_sink.hpp"
#include "support/error.hpp"
#include "support/stats.hpp"

namespace fpsched {
namespace {

/// Maps a double onto the integers so that adjacent representable values
/// differ by exactly 1, -0.0 and +0.0 coincide, and infinity sits right
/// next to the largest finite value. ulp distance is then a subtraction.
std::int64_t ordered_bits(double value) {
  const std::int64_t bits = std::bit_cast<std::int64_t>(value);
  return bits < 0 ? std::numeric_limits<std::int64_t>::min() - bits : bits;
}

std::int64_t ulp_distance(double a, double b) {
  const bool a_nan = std::isnan(a);
  const bool b_nan = std::isnan(b);
  if (a_nan || b_nan) return a_nan == b_nan ? 0 : std::numeric_limits<std::int64_t>::max();
  const std::int64_t delta = ordered_bits(a) - ordered_bits(b);
  return delta < 0 ? -delta : delta;
}

std::vector<double> uniform_samples(double lo, double hi, std::size_t count, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> dist(lo, hi);
  std::vector<double> samples(count);
  for (double& x : samples) x = dist(rng);
  return samples;
}

constexpr std::size_t kSamplesPerRegime = 10000;
constexpr std::int64_t kMaxUlp = 4;

struct Regime {
  const char* name;
  double lo;
  double hi;
};

void expect_exp_regime(const Regime& regime) {
  const std::vector<double> x =
      uniform_samples(regime.lo, regime.hi, kSamplesPerRegime, 20250807);
  std::vector<double> fast(x.size());
  vexp(x.data(), fast.data(), x.size(), EvalMath::fast);
  std::int64_t worst = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const std::int64_t ulp = ulp_distance(fast[i], std::exp(x[i]));
    worst = std::max(worst, ulp);
    ASSERT_LE(ulp, kMaxUlp) << regime.name << ": exp(" << x[i] << ") fast=" << fast[i]
                            << " libm=" << std::exp(x[i]);
  }
  ::testing::Test::RecordProperty(std::string("worst_ulp_exp_") + regime.name,
                                  static_cast<int>(worst));
}

void expect_expm1_regime(const Regime& regime) {
  const std::vector<double> x =
      uniform_samples(regime.lo, regime.hi, kSamplesPerRegime, 20250808);
  std::vector<double> fast(x.size());
  vexpm1(x.data(), fast.data(), x.size(), EvalMath::fast);
  std::int64_t worst = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const std::int64_t ulp = ulp_distance(fast[i], std::expm1(x[i]));
    worst = std::max(worst, ulp);
    ASSERT_LE(ulp, kMaxUlp) << regime.name << ": expm1(" << x[i] << ") fast=" << fast[i]
                            << " libm=" << std::expm1(x[i]);
  }
  ::testing::Test::RecordProperty(std::string("worst_ulp_expm1_") + regime.name,
                                  static_cast<int>(worst));
}

TEST(MathKernels, ExactBackendIsBitwiseLibm) {
  // One mixed pool covering every regime at once — exactness has no
  // regime structure, any input must round-trip through libm untouched.
  std::vector<double> x = uniform_samples(-746.0, 710.5, 4 * kSamplesPerRegime, 1);
  const std::vector<double> extra = uniform_samples(-1e-3, 1e-3, kSamplesPerRegime, 2);
  x.insert(x.end(), extra.begin(), extra.end());
  std::vector<double> out(x.size());

  vexp(x.data(), out.data(), x.size(), EvalMath::exact);
  for (std::size_t i = 0; i < x.size(); ++i) {
    ASSERT_EQ(std::bit_cast<std::uint64_t>(out[i]), std::bit_cast<std::uint64_t>(std::exp(x[i])));
  }
  vexpm1(x.data(), out.data(), x.size(), EvalMath::exact);
  for (std::size_t i = 0; i < x.size(); ++i) {
    ASSERT_EQ(std::bit_cast<std::uint64_t>(out[i]),
              std::bit_cast<std::uint64_t>(std::expm1(x[i])));
  }
  const double lambda = 0.00137;
  vexp_neg_mul(lambda, x.data(), out.data(), x.size(), EvalMath::exact);
  for (std::size_t i = 0; i < x.size(); ++i) {
    // The fused form must reproduce the evaluator's historical expression
    // shape exactly: exp((-lambda) * x), not exp(-(lambda * x)).
    ASSERT_EQ(std::bit_cast<std::uint64_t>(out[i]),
              std::bit_cast<std::uint64_t>(std::exp(-lambda * x[i])));
  }
}

TEST(MathKernels, FastExpWithinFourUlpPerRegime) {
  const Regime regimes[] = {
      {"broad", -700.0, 700.0},
      {"large_negative", -746.0, -600.0},
      {"near_zero", -1e-3, 1e-3},
      {"overflow_edge", 709.0, 710.5},
      {"denormal_result", -745.2, -708.5},
  };
  for (const Regime& regime : regimes) expect_exp_regime(regime);
}

TEST(MathKernels, FastExpm1WithinFourUlpPerRegime) {
  const Regime regimes[] = {
      {"broad", -30.0, 30.0},
      {"near_zero", -1e-6, 1e-6},
      {"tiny", -1e-300, 1e-300},
      {"switch_boundary_pos", 0.68, 0.71},
      {"switch_boundary_neg", -0.71, -0.68},
      {"large_negative", -746.0, -20.0},
      {"overflow_edge", 709.0, 710.5},
  };
  for (const Regime& regime : regimes) expect_expm1_regime(regime);
}

TEST(MathKernels, FastFusedNegMulWithinFourUlp) {
  // The evaluator's exp(-lambda * span) pattern: spans are nonnegative
  // work sums, lambdas span the paper's failure-rate grid.
  for (const double lambda : {1e-6, 1e-4, 1e-2, 0.5}) {
    const std::vector<double> x = uniform_samples(0.0, 5e4, kSamplesPerRegime, 99);
    std::vector<double> fast(x.size());
    vexp_neg_mul(lambda, x.data(), fast.data(), x.size(), EvalMath::fast);
    for (std::size_t i = 0; i < x.size(); ++i) {
      ASSERT_LE(ulp_distance(fast[i], std::exp(-lambda * x[i])), kMaxUlp)
          << "lambda=" << lambda << " x=" << x[i];
    }
  }
}

TEST(MathKernels, FastSpecialValues) {
  const double inf = std::numeric_limits<double>::infinity();
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double x[] = {inf, -inf, nan, 0.0, -0.0, 710.5, -746.5, 709.8};
  double out[std::size(x)];

  vexp(x, out, std::size(x), EvalMath::fast);
  EXPECT_EQ(out[0], inf);
  EXPECT_EQ(out[1], 0.0);
  EXPECT_TRUE(std::isnan(out[2]));
  EXPECT_EQ(out[3], 1.0);
  EXPECT_EQ(out[4], 1.0);
  EXPECT_EQ(out[5], inf);   // past the clamp: saturates like libm
  EXPECT_EQ(out[6], 0.0);   // deep underflow
  EXPECT_EQ(out[7], inf);   // just past the real overflow threshold

  vexpm1(x, out, std::size(x), EvalMath::fast);
  EXPECT_EQ(out[0], inf);
  EXPECT_EQ(out[1], -1.0);
  EXPECT_TRUE(std::isnan(out[2]));
  EXPECT_EQ(out[3], 0.0);
  EXPECT_EQ(out[4], 0.0);
  EXPECT_EQ(out[5], inf);
  EXPECT_EQ(out[6], -1.0);
}

TEST(MathKernels, SweepsAreInPlaceSafe) {
  for (const EvalMath math : {EvalMath::exact, EvalMath::fast}) {
    const std::vector<double> x = uniform_samples(-50.0, 50.0, 4096, 7);
    std::vector<double> out(x.size());
    std::vector<double> aliased = x;
    vexp(x.data(), out.data(), x.size(), math);
    vexp(aliased.data(), aliased.data(), aliased.size(), math);
    EXPECT_EQ(out, aliased) << "vexp " << to_string(math);

    aliased = x;
    vexpm1(x.data(), out.data(), x.size(), math);
    vexpm1(aliased.data(), aliased.data(), aliased.size(), math);
    EXPECT_EQ(out, aliased) << "vexpm1 " << to_string(math);

    aliased = x;
    vexp_neg_mul(0.01, x.data(), out.data(), x.size(), math);
    vexp_neg_mul(0.01, aliased.data(), aliased.data(), aliased.size(), math);
    EXPECT_EQ(out, aliased) << "vexp_neg_mul " << to_string(math);
  }
}

TEST(MathKernels, ParseAndFormat) {
  EXPECT_EQ(parse_eval_math("exact"), EvalMath::exact);
  EXPECT_EQ(parse_eval_math("fast"), EvalMath::fast);
  EXPECT_EQ(to_string(EvalMath::exact), "exact");
  EXPECT_EQ(to_string(EvalMath::fast), "fast");
  EXPECT_THROW(parse_eval_math("float"), InvalidArgument);
  EXPECT_THROW(parse_eval_math(""), InvalidArgument);
}

/// Collects the plotted metric of every scenario record of a run.
class RatioCollector : public engine::ResultSink {
 public:
  void record(const engine::ResultRecord& record) override {
    ratios.push_back(record.result.evaluation.ratio);
    makespans.push_back(record.result.evaluation.expected_makespan);
  }
  std::vector<double> ratios;
  std::vector<double> makespans;
};

TEST(MathKernels, FastBackendTracksExactAcrossFig2QuickGrid) {
  // End-to-end bound: per-call <= 4 ulp must stay <= 1e-10 relative after
  // the full O(n^2) Theorem-3 accumulation, for every scenario of the
  // fig2 --quick grid (all sizes, strategies and linearizations).
  using engine::ExperimentRegistry;
  using engine::FigureOptions;
  FigureOptions options;
  engine::apply_quick_options(options);
  options.threads = 1;
  const auto run_with = [&](EvalMath math) {
    FigureOptions o = options;
    o.eval_math = math;
    RatioCollector collector;
    engine::ResultSink* sinks[] = {&collector};
    engine::run_experiment(ExperimentRegistry::global().find("fig2"), o, sinks, nullptr);
    return collector;
  };
  const RatioCollector exact = run_with(EvalMath::exact);
  const RatioCollector fast = run_with(EvalMath::fast);
  ASSERT_FALSE(exact.ratios.empty());
  ASSERT_EQ(exact.ratios.size(), fast.ratios.size());
  for (std::size_t i = 0; i < exact.ratios.size(); ++i) {
    EXPECT_LE(relative_difference(exact.ratios[i], fast.ratios[i]), 1e-10) << "record " << i;
    EXPECT_LE(relative_difference(exact.makespans[i], fast.makespans[i]), 1e-10)
        << "record " << i;
  }
}

}  // namespace
}  // namespace fpsched
