// ResultCache suite: cache-key sensitivity to every ScenarioSpec field,
// in-memory round trips, FIFO eviction under max_entries, and the
// on-disk segment store — restart restore, segment rotation, and
// torn-write tolerance.
#include "service/result_cache.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "engine/scenario.hpp"

namespace fpsched::service {
namespace {

/// A fully-populated baseline spec; the key tests perturb one field at a
/// time.
engine::ScenarioSpec base_spec() {
  engine::ScenarioSpec spec;
  spec.workflow = WorkflowKind::montage;
  spec.task_count = 50;
  spec.model = FailureModel(1e-3, 60.0);
  spec.cost_model = CostModel::proportional(0.1);
  spec.policy = engine::ScenarioPolicy::fixed(
      {LinearizeMethod::depth_first, CkptStrategy::by_weight});
  spec.workflow_seed = 42;
  spec.weight_cv = 0.2;
  spec.stride = 16;
  spec.scenario_index = 3;
  return spec;
}

/// RAII temp directory under the system temp root.
class TempDir {
 public:
  explicit TempDir(const char* name)
      : path_(std::filesystem::temp_directory_path() / name) {
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  const std::filesystem::path& path() const { return path_; }

 private:
  std::filesystem::path path_;
};

TEST(ResultCacheKeyTest, EveryFieldChangesTheKey) {
  const ResultCacheKey base = ResultCacheKey::of(base_spec(), EvalMath::exact);
  // One perturbation per ScenarioSpec field (policy sub-fields included).
  using Mutator = void (*)(engine::ScenarioSpec&);
  const Mutator mutators[] = {
      [](engine::ScenarioSpec& s) { s.workflow = WorkflowKind::ligo; },
      [](engine::ScenarioSpec& s) { s.task_count = 51; },
      [](engine::ScenarioSpec& s) { s.model = FailureModel(2e-3, 60.0); },
      [](engine::ScenarioSpec& s) { s.model = FailureModel(1e-3, 61.0); },
      [](engine::ScenarioSpec& s) { s.cost_model = CostModel::constant(0.1); },
      [](engine::ScenarioSpec& s) { s.cost_model = CostModel::proportional(0.2); },
      [](engine::ScenarioSpec& s) {
        s.policy = engine::ScenarioPolicy::best_lin(CkptStrategy::by_weight);
      },
      [](engine::ScenarioSpec& s) {
        s.policy = engine::ScenarioPolicy::fixed(
            {LinearizeMethod::breadth_first, CkptStrategy::by_weight});
      },
      [](engine::ScenarioSpec& s) {
        s.policy = engine::ScenarioPolicy::fixed(
            {LinearizeMethod::depth_first, CkptStrategy::by_cost});
      },
      [](engine::ScenarioSpec& s) {
        s.policy = engine::ScenarioPolicy::simulated(
            engine::ScenarioPolicy::SimDistribution::weibull, 0.7, 100, 9);
      },
      [](engine::ScenarioSpec& s) { s.workflow_seed = 43; },
      [](engine::ScenarioSpec& s) { s.weight_cv = 0.3; },
      [](engine::ScenarioSpec& s) { s.stride = 8; },
      [](engine::ScenarioSpec& s) { s.linearize.outweight = OutweightMode::descendants; },
      [](engine::ScenarioSpec& s) { s.linearize.seed = 7; },
      [](engine::ScenarioSpec& s) { s.scenario_index = 4; },
  };

  std::set<std::string> canonicals = {base.canonical};
  for (const Mutator mutate : mutators) {
    engine::ScenarioSpec spec = base_spec();
    mutate(spec);
    const ResultCacheKey key = ResultCacheKey::of(spec, EvalMath::exact);
    EXPECT_TRUE(canonicals.insert(key.canonical).second)
        << "canonical collision: " << key.canonical;
    EXPECT_NE(key.hash, base.hash) << key.canonical;
  }
  // The math backend is part of the identity: fast and exact kernels may
  // produce different record bytes for the same spec.
  const ResultCacheKey fast = ResultCacheKey::of(base_spec(), EvalMath::fast);
  EXPECT_NE(fast.canonical, base.canonical);
  EXPECT_NE(fast.hash, base.hash);
}

TEST(ResultCacheTest, InMemoryRoundTripCountsHitsAndMisses) {
  ResultCache cache;
  const ResultCacheKey key = ResultCacheKey::of(base_spec(), EvalMath::exact);
  EXPECT_FALSE(cache.lookup(key).has_value());
  cache.insert(key, "payload-bytes");
  const auto hit = cache.lookup(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "payload-bytes");
  EXPECT_EQ(cache.size(), 1u);
  // First write wins; entries are immutable.
  cache.insert(key, "other-bytes");
  EXPECT_EQ(*cache.lookup(key), "payload-bytes");
  EXPECT_EQ(cache.size(), 1u);
  // The uncounted replay accessors see the same entry by hash.
  EXPECT_TRUE(cache.contains(key.hash));
  EXPECT_EQ(*cache.fetch(key.hash), "payload-bytes");
  EXPECT_FALSE(cache.contains(key.hash + 1));
  EXPECT_FALSE(cache.fetch(key.hash + 1).has_value());
}

TEST(ResultCacheTest, EvictsInsertionFifoBeyondMaxEntries) {
  ResultCache cache({.max_entries = 2});
  std::vector<ResultCacheKey> keys;
  for (std::size_t tasks : {50, 60, 70}) {
    auto spec = base_spec();
    spec.task_count = tasks;
    keys.push_back(ResultCacheKey::of(spec, EvalMath::exact));
    cache.insert(keys.back(), "payload-" + std::to_string(tasks));
  }
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_FALSE(cache.lookup(keys[0]).has_value());  // oldest evicted
  EXPECT_TRUE(cache.lookup(keys[1]).has_value());
  EXPECT_TRUE(cache.lookup(keys[2]).has_value());
}

TEST(ResultCacheTest, SegmentStoreSurvivesReopen) {
  const TempDir dir("fpsched_result_cache_reopen_test");
  std::vector<ResultCacheKey> keys;
  for (std::size_t tasks : {50, 60, 70}) {
    auto spec = base_spec();
    spec.task_count = tasks;
    keys.push_back(ResultCacheKey::of(spec, EvalMath::exact));
  }
  {
    ResultCache cache({.directory = dir.path().string()});
    for (std::size_t i = 0; i < keys.size(); ++i) {
      cache.insert(keys[i], "payload-" + std::to_string(i));
    }
    EXPECT_EQ(cache.restored(), 0u);
  }
  ResultCache reopened({.directory = dir.path().string()});
  EXPECT_EQ(reopened.restored(), 3u);
  EXPECT_EQ(reopened.size(), 3u);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const auto hit = reopened.lookup(keys[i]);
    ASSERT_TRUE(hit.has_value()) << keys[i].canonical;
    EXPECT_EQ(*hit, "payload-" + std::to_string(i));
  }
}

TEST(ResultCacheTest, RotatesSegmentsAndLoadsAllOfThem) {
  const TempDir dir("fpsched_result_cache_rotate_test");
  {
    // A tiny rotation threshold: every insert lands in its own segment.
    ResultCache cache({.directory = dir.path().string(), .max_segment_bytes = 1});
    for (std::size_t tasks : {50, 60, 70}) {
      auto spec = base_spec();
      spec.task_count = tasks;
      cache.insert(ResultCacheKey::of(spec, EvalMath::exact), "p");
    }
  }
  std::size_t segments = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir.path())) {
    if (entry.path().extension() == ".ndjson") ++segments;
  }
  EXPECT_GE(segments, 2u);
  ResultCache reopened({.directory = dir.path().string()});
  EXPECT_EQ(reopened.restored(), 3u);
}

TEST(ResultCacheTest, SkipsTornAndCorruptSegmentLines) {
  const TempDir dir("fpsched_result_cache_corrupt_test");
  const ResultCacheKey key = ResultCacheKey::of(base_spec(), EvalMath::exact);
  {
    ResultCache cache({.directory = dir.path().string()});
    cache.insert(key, "good-payload");
  }
  {
    // Simulate a crash mid-append plus stray garbage: neither may poison
    // the good entry or fail the restart load.
    std::ofstream segment(dir.path() / "segment-000001.ndjson", std::ios::app);
    segment << "not json at all\n";
    segment << R"({"key":"zzzz","spec":"x","payload":"y"})" << "\n";  // bad hex
    segment << R"({"key":"0000000000000001","spec":"mismatch","payload":"y"})"
            << "\n";                                  // hash != fnv1a64(spec)
    segment << R"({"key":"0000000000000002","spec":)";  // torn tail write
  }
  ResultCache reopened({.directory = dir.path().string()});
  EXPECT_EQ(reopened.restored(), 1u);
  const auto hit = reopened.lookup(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "good-payload");
}

}  // namespace
}  // namespace fpsched::service
