// Unit tests for the exponential failure model (Eq. (1) of the paper).
#include "core/failure_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "support/error.hpp"
#include "test_util.hpp"

namespace fpsched {
namespace {

using testing::expect_rel_near;

TEST(FailureModel, FailureFreeDegeneratesToPlainDurations) {
  const FailureModel model(0.0, 0.0);
  EXPECT_TRUE(model.failure_free());
  EXPECT_DOUBLE_EQ(model.expected_time(10.0, 2.0, 5.0), 12.0);
  EXPECT_DOUBLE_EQ(model.expected_time(0.0, 0.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(model.expected_lost_time(100.0), 0.0);
  EXPECT_DOUBLE_EQ(model.success_probability(1e9), 1.0);
  EXPECT_TRUE(std::isinf(model.mtbf()));
}

TEST(FailureModel, MatchesHandComputedEquationOne) {
  const double lambda = 0.01;
  const double d = 3.0;
  const FailureModel model(lambda, d);
  const double w = 50.0;
  const double c = 5.0;
  const double r = 7.0;
  const double expected =
      std::exp(lambda * r) * (1.0 / lambda + d) * (std::exp(lambda * (w + c)) - 1.0);
  expect_rel_near(expected, model.expected_time(w, c, r), 1e-12);
}

TEST(FailureModel, ZeroWorkZeroCheckpointTakesNoTime) {
  const FailureModel model(0.001, 10.0);
  EXPECT_DOUBLE_EQ(model.expected_time(0.0, 0.0, 42.0), 0.0);
}

TEST(FailureModel, SmallRatesApproachPlainDurations) {
  // As lambda -> 0, E[t(w;c;r)] -> w + c; expm1 keeps this stable.
  const FailureModel model(1e-15, 0.0);
  expect_rel_near(35.0, model.expected_time(30.0, 5.0, 100.0), 1e-9);
}

TEST(FailureModel, MonotoneInEveryArgument) {
  const FailureModel model(0.002, 1.0);
  const double base = model.expected_time(100.0, 10.0, 5.0);
  EXPECT_GT(model.expected_time(101.0, 10.0, 5.0), base);
  EXPECT_GT(model.expected_time(100.0, 11.0, 5.0), base);
  EXPECT_GT(model.expected_time(100.0, 10.0, 6.0), base);
}

TEST(FailureModel, MonotoneInFailureRate) {
  double previous = 0.0;
  for (const double lambda : {1e-6, 1e-5, 1e-4, 1e-3, 1e-2}) {
    const double value = FailureModel(lambda).expected_time(100.0, 10.0, 5.0);
    EXPECT_GT(value, previous) << "lambda=" << lambda;
    previous = value;
  }
}

TEST(FailureModel, ExpectedTimeAlwaysExceedsFaultFreeTime) {
  const FailureModel model(0.01, 2.0);
  for (const double w : {1.0, 10.0, 100.0, 1000.0}) {
    EXPECT_GT(model.expected_time(w, 0.0, 0.0), w);
  }
}

TEST(FailureModel, DowntimeScalesTheWholeExpression) {
  // (1/lambda + D) is a common factor: doubling it doubles the expectation.
  const double lambda = 0.005;
  const FailureModel d0(lambda, 0.0);
  const FailureModel d1(lambda, 1.0 / lambda);  // doubles the factor
  expect_rel_near(2.0 * d0.expected_time(40.0, 4.0, 3.0), d1.expected_time(40.0, 4.0, 3.0),
                  1e-12);
}

TEST(FailureModel, LostTimeIsBoundedByAttemptAndMtbf) {
  const FailureModel model(0.01, 0.0);
  for (const double w : {0.1, 1.0, 10.0, 100.0, 1000.0}) {
    const double lost = model.expected_lost_time(w);
    EXPECT_GT(lost, 0.0);
    EXPECT_LT(lost, w);             // a failure within [0, w)
    EXPECT_LT(lost, model.mtbf());  // and below 1/lambda
  }
}

TEST(FailureModel, LostTimeIdentityFromLemmaTwo) {
  // p*A + (1-p) E[t_lost(A)] == (1-p)/lambda, the collapse used in the
  // proof of Lemma 2.
  const FailureModel model(0.003, 0.0);
  for (const double attempt : {5.0, 50.0, 500.0}) {
    const double p = model.success_probability(attempt);
    const double lhs = p * attempt + (1.0 - p) * model.expected_lost_time(attempt);
    testing::expect_rel_near((1.0 - p) / model.lambda(), lhs, 1e-12);
  }
}

TEST(FailureModel, FromProcessorMtbf) {
  // 100 processors with a 1e5 s MTBF -> platform rate 1e-3.
  const FailureModel model = FailureModel::from_processor_mtbf(1e5, 100, 5.0);
  expect_rel_near(1e-3, model.lambda(), 1e-12);
  expect_rel_near(1e3, model.mtbf(), 1e-12);
  EXPECT_DOUBLE_EQ(model.downtime(), 5.0);
}

TEST(FailureModel, SuccessProbability) {
  const FailureModel model(0.01, 0.0);
  expect_rel_near(std::exp(-1.0), model.success_probability(100.0), 1e-12);
  EXPECT_DOUBLE_EQ(model.success_probability(0.0), 1.0);
}

TEST(FailureModel, HugeSegmentsOverflowToInfinity) {
  const FailureModel model(1.0, 0.0);
  EXPECT_TRUE(std::isinf(model.expected_time(1e6, 0.0, 0.0)));
}

TEST(FailureModel, RejectsInvalidParameters) {
  EXPECT_THROW(FailureModel(-1.0, 0.0), InvalidArgument);
  EXPECT_THROW(FailureModel(0.1, -2.0), InvalidArgument);
  EXPECT_THROW(FailureModel(std::nan(""), 0.0), InvalidArgument);
  EXPECT_THROW(FailureModel::from_processor_mtbf(0.0, 4), InvalidArgument);
  EXPECT_THROW(FailureModel::from_processor_mtbf(10.0, 0), InvalidArgument);
  const FailureModel model(0.1, 0.0);
  EXPECT_THROW(model.expected_time(-1.0, 0.0, 0.0), InvalidArgument);
  EXPECT_THROW(model.expected_time(1.0, -1.0, 0.0), InvalidArgument);
  EXPECT_THROW(model.expected_time(1.0, 0.0, -1.0), InvalidArgument);
}

}  // namespace
}  // namespace fpsched
