// Shard-merge suite: the multi-host guarantee — validated concatenation
// of per-shard NDJSON files reproduces the unsharded stream bit for bit,
// including degenerate shardings (more shards than scenarios, empty
// shards) — and the failure modes (misordered/duplicated/missing shards,
// truncated files, option mismatches) that must fail loudly.
#include "service/shard_merge.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "engine/result_sink.hpp"
#include "support/error.hpp"

namespace fpsched::service {
namespace {

/// A cheap one-panel experiment: 3 sizes x 2 policies = 6 scenarios.
engine::Experiment tiny_experiment() {
  return {"tinymerge", "merge test experiment", [](const engine::FigureOptions& options) {
            engine::FigurePlan plan;
            engine::ScenarioGrid grid;
            grid.workflows = {WorkflowKind::montage};
            grid.sizes = options.sizes;
            grid.seed = options.seed;
            grid.weight_cv = options.weight_cv;
            grid.lambdas = {1e-3};
            grid.stride = 16;
            grid.policies = {
                engine::ScenarioPolicy::fixed(
                    {LinearizeMethod::depth_first, CkptStrategy::by_weight}),
                engine::ScenarioPolicy::fixed(
                    {LinearizeMethod::breadth_first, CkptStrategy::by_cost}),
            };
            plan.panels = {{grid, "panel", "tinymerge_panel"}};
            return plan;
          }};
}

engine::FigureOptions tiny_options() {
  engine::FigureOptions options;
  options.sizes = {50, 60, 70};
  return options;
}

std::string run_ndjson(const engine::Experiment& experiment,
                       const engine::FigureOptions& options, const engine::ShardSpec& shard) {
  std::ostringstream os;
  engine::NdjsonSink sink(os);
  engine::ResultSink* sinks[] = {&sink};
  engine::run_experiment(experiment, options, sinks, nullptr, shard);
  return os.str();
}

/// Writes per-shard files for `count` shards into a fresh temp dir and
/// returns their paths (shard order).
class ShardMergeTest : public ::testing::Test {
 protected:
  ShardMergeTest() : experiment_(tiny_experiment()) {
    dir_ = ::testing::TempDir() + "/fpsched_shard_merge_test";
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    unsharded_ = run_ndjson(experiment_, tiny_options(), {});
  }
  ~ShardMergeTest() override { std::filesystem::remove_all(dir_); }

  std::string write_file(const std::string& name, const std::string& content) {
    const std::string path = dir_ + "/" + name;
    std::ofstream file(path, std::ios::binary);
    file << content;
    return path;
  }

  std::vector<std::string> write_shards(std::size_t count) {
    std::vector<std::string> paths;
    for (std::size_t index = 1; index <= count; ++index) {
      paths.push_back(write_file(
          "shard-" + std::to_string(index) + "-of-" + std::to_string(count) + ".ndjson",
          run_ndjson(experiment_, tiny_options(), {index, count})));
    }
    return paths;
  }

  std::string merge(const std::vector<std::string>& paths, bool require_complete = true) {
    std::ostringstream os;
    merge_ndjson_shards(experiment_, tiny_options(), paths, os, {require_complete});
    return os.str();
  }

  engine::Experiment experiment_;
  std::string dir_;
  std::string unsharded_;  // 6 scenarios worth of records
};

TEST_F(ShardMergeTest, MergesShardsBitIdentically) {
  for (const std::size_t count : {2u, 3u, 5u}) {
    EXPECT_EQ(merge(write_shards(count)), unsharded_) << count << " shards";
  }
}

TEST_F(ShardMergeTest, DegenerateShardingsStillMergeBitIdentically) {
  // More shards than the 6 scenarios: some shard files are empty, and
  // the merge must accept them and still reproduce the unsharded bytes.
  for (const std::size_t count : {7u, 9u, 20u}) {
    const std::vector<std::string> paths = write_shards(count);
    bool saw_empty = false;
    for (const std::string& path : paths) {
      saw_empty = saw_empty || std::filesystem::file_size(path) == 0;
    }
    EXPECT_TRUE(saw_empty) << count << " shards over 6 scenarios must include empty shards";
    EXPECT_EQ(merge(paths), unsharded_) << count << " shards";
  }
}

TEST_F(ShardMergeTest, MergesUnevenMixedShardCounts) {
  // Shards from different runs compose as long as they abut: 1/2 covers
  // [0,3), 3/4 covers [3,4)... here [0,3) + [3,4]-style uneven blocks.
  const std::string a = write_file("a.ndjson", run_ndjson(experiment_, tiny_options(), {1, 2}));
  const std::string b = write_file("b.ndjson", run_ndjson(experiment_, tiny_options(), {3, 4}));
  const std::string c = write_file("c.ndjson", run_ndjson(experiment_, tiny_options(), {4, 4}));
  EXPECT_EQ(merge({a, b, c}), unsharded_);
}

TEST_F(ShardMergeTest, AcceptsGaplessPrefixWithoutRequireComplete) {
  const std::vector<std::string> paths = write_shards(3);
  std::ostringstream os;
  const MergeReport report =
      merge_ndjson_shards(experiment_, tiny_options(), {paths[0], paths[1]}, os, {});
  EXPECT_EQ(report.records, 4u);
  EXPECT_EQ(report.expected, 6u);
  EXPECT_FALSE(report.complete());
  EXPECT_EQ(os.str(), unsharded_.substr(0, os.str().size()));
  EXPECT_THROW(merge({paths[0], paths[1]}, /*require_complete=*/true), InvalidArgument);
}

TEST_F(ShardMergeTest, RejectsMisorderedDuplicatedAndGappedShards) {
  const std::vector<std::string> paths = write_shards(3);
  EXPECT_THROW(merge({paths[1], paths[0], paths[2]}), InvalidArgument);  // misordered
  EXPECT_THROW(merge({paths[0], paths[0], paths[1]}), InvalidArgument);  // duplicated
  EXPECT_THROW(merge({paths[0], paths[2]}), InvalidArgument);            // gap
  EXPECT_THROW(merge({paths[1], paths[2]}), InvalidArgument);            // missing head
}

TEST_F(ShardMergeTest, RejectsForeignTruncatedAndUnreadableFiles) {
  const std::vector<std::string> paths = write_shards(2);
  // A record from different options (another seed) is out of sequence
  // in content even when indices line up — the experiment field of a
  // different experiment name fails first.
  const std::string foreign =
      write_file("foreign.ndjson",
                 "{\"experiment\":\"other\",\"panel\":\"tinymerge_panel\","
                 "\"scenario_index\":0}\n");
  EXPECT_THROW(merge({foreign, paths[1]}), InvalidArgument);

  const std::string full = run_ndjson(experiment_, tiny_options(), {});
  const std::string truncated =
      write_file("truncated.ndjson", full.substr(0, full.size() - 1));  // no trailing \n
  EXPECT_THROW(merge({truncated}), InvalidArgument);

  EXPECT_THROW(merge({dir_ + "/does-not-exist.ndjson"}), InvalidArgument);

  const std::string blank = write_file("blank.ndjson", "\n");
  EXPECT_THROW(merge({blank}), InvalidArgument);
}

TEST_F(ShardMergeTest, RejectsShardsProducedWithDifferentOptions) {
  // A shard from another seed has the identical panel/scenario_index
  // sequence — only the spec-field pinning catches it.
  engine::FigureOptions other = tiny_options();
  other.seed = 7;
  const std::string a =
      write_file("seed7-a.ndjson", run_ndjson(experiment_, other, {1, 2}));
  const std::string b =
      write_file("seed7-b.ndjson", run_ndjson(experiment_, other, {2, 2}));
  EXPECT_THROW(merge({a, b}), InvalidArgument);

  engine::FigureOptions wider = tiny_options();
  wider.weight_cv = 0.5;
  const std::string c = write_file("cv.ndjson", run_ndjson(experiment_, wider, {}));
  EXPECT_THROW(merge({c}), InvalidArgument);
}

TEST_F(ShardMergeTest, ReportCountsFilesAndRecords) {
  const std::vector<std::string> paths = write_shards(4);
  std::ostringstream os;
  const MergeReport report = merge_ndjson_shards(experiment_, tiny_options(), paths, os,
                                                 {.require_complete = true});
  EXPECT_EQ(report.files, 4u);
  EXPECT_EQ(report.records, 6u);
  EXPECT_EQ(report.expected, 6u);
  EXPECT_TRUE(report.complete());
}

}  // namespace
}  // namespace fpsched::service
