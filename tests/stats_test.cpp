// Tests for the Welford accumulator and quantile helpers.
#include "support/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "support/error.hpp"

namespace fpsched {
namespace {

TEST(RunningStats, EmptyState) {
  const RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  // An empty accumulator has no mean; 0.0 would let an empty cell pose as
  // a real measurement in rendered tables.
  EXPECT_TRUE(std::isnan(stats.mean()));
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  EXPECT_TRUE(std::isnan(stats.min()));
  EXPECT_TRUE(std::isnan(stats.max()));
  EXPECT_DOUBLE_EQ(stats.ci95_halfwidth(), 0.0);
}

TEST(RunningStats, MeanRecoversAfterFirstPush) {
  RunningStats stats;
  stats.push(3.0);
  EXPECT_DOUBLE_EQ(stats.mean(), 3.0);
}

TEST(RunningStats, MatchesDirectComputation) {
  const std::vector<double> xs{3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0};
  RunningStats stats;
  for (const double x : xs) stats.push(x);

  double mean = 0.0;
  for (const double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  double var = 0.0;
  for (const double x : xs) var += (x - mean) * (x - mean);
  var /= static_cast<double>(xs.size() - 1);

  EXPECT_EQ(stats.count(), xs.size());
  EXPECT_NEAR(stats.mean(), mean, 1e-12);
  EXPECT_NEAR(stats.variance(), var, 1e-12);
  EXPECT_DOUBLE_EQ(stats.min(), 1.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
}

TEST(RunningStats, SingleSampleHasZeroVariance) {
  RunningStats stats;
  stats.push(42.0);
  EXPECT_DOUBLE_EQ(stats.mean(), 42.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.standard_error(), 0.0);
}

TEST(RunningStats, MergeEqualsSequentialPushes) {
  RunningStats merged_a;
  RunningStats merged_b;
  RunningStats sequential;
  for (int i = 0; i < 1000; ++i) {
    const double x = std::sin(i * 0.7) * 10.0 + i % 13;
    sequential.push(x);
    (i % 2 == 0 ? merged_a : merged_b).push(x);
  }
  merged_a.merge(merged_b);
  EXPECT_EQ(merged_a.count(), sequential.count());
  EXPECT_NEAR(merged_a.mean(), sequential.mean(), 1e-9);
  EXPECT_NEAR(merged_a.variance(), sequential.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(merged_a.min(), sequential.min());
  EXPECT_DOUBLE_EQ(merged_a.max(), sequential.max());
}

TEST(RunningStats, MergeWithEmptySides) {
  RunningStats a;
  RunningStats b;
  b.push(5.0);
  b.push(7.0);
  a.merge(b);  // empty += nonempty
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 6.0);
  RunningStats c;
  a.merge(c);  // nonempty += empty
  EXPECT_EQ(a.count(), 2u);
}

TEST(RunningStats, CatastrophicCancellationResistance) {
  // Large offset, small variance: Welford keeps precision.
  RunningStats stats;
  const double offset = 1e9;
  for (int i = 0; i < 1000; ++i) stats.push(offset + (i % 2 == 0 ? 0.5 : -0.5));
  EXPECT_NEAR(stats.variance(), 0.25 * 1000.0 / 999.0, 1e-6);
}

TEST(RunningStats, Ci95ShrinksWithSamples) {
  RunningStats small;
  RunningStats large;
  for (int i = 0; i < 100; ++i) small.push(i % 10);
  for (int i = 0; i < 10000; ++i) large.push(i % 10);
  EXPECT_GT(small.ci95_halfwidth(), large.ci95_halfwidth());
}

TEST(Quantile, InterpolatesSorted) {
  const std::vector<double> values{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(quantile(values, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(quantile(values, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(quantile(values, 0.5), 25.0);
  EXPECT_TRUE(std::isnan(quantile({}, 0.5)));
  EXPECT_THROW(quantile(values, 1.5), InvalidArgument);
}

TEST(RelativeDifference, Basics) {
  EXPECT_DOUBLE_EQ(relative_difference(10.0, 10.0), 0.0);
  EXPECT_NEAR(relative_difference(10.0, 11.0), 1.0 / 11.0, 1e-12);
  EXPECT_NEAR(relative_difference(0.0, 0.0), 0.0, 1e-12);
  EXPECT_GT(relative_difference(1e-20, 2e-20), 0.0);
}

}  // namespace
}  // namespace fpsched
