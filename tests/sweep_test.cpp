// Tests for the exhaustive checkpoint-budget sweep.
#include "heuristics/sweep.hpp"

#include <gtest/gtest.h>

#include "dag/linearize.hpp"
#include "support/error.hpp"
#include "support/threading.hpp"
#include "test_util.hpp"
#include "workflows/generator.hpp"
#include "workflows/synthetic.hpp"

namespace fpsched {
namespace {

using testing::expect_rel_near;

TEST(Sweep, CurveCoversEveryBudgetWithStrideOne) {
  TaskGraph graph = generate_montage({.task_count = 30, .seed = 4});
  const ScheduleEvaluator evaluator(graph, FailureModel(1e-3, 0.0));
  const std::vector<double> weights = graph.weights();
  const auto order = linearize(graph.dag(), weights, LinearizeMethod::depth_first);
  const SweepResult result =
      sweep_checkpoint_budget(evaluator, order, CkptStrategy::by_weight, {.stride = 1});
  ASSERT_EQ(result.curve.size(), graph.task_count() - 1);  // budgets 1..n-1
  for (std::size_t i = 0; i < result.curve.size(); ++i) {
    EXPECT_EQ(result.curve[i].budget, i + 1);
    EXPECT_GT(result.curve[i].expected_makespan, 0.0);
  }
}

TEST(Sweep, BestMatchesTheCurveMinimum) {
  TaskGraph graph = generate_cybershake({.task_count = 40, .seed = 9});
  const ScheduleEvaluator evaluator(graph, FailureModel(1e-3, 0.0));
  const auto order = linearize(graph.dag(), graph.weights(), LinearizeMethod::depth_first);
  const SweepResult result =
      sweep_checkpoint_budget(evaluator, order, CkptStrategy::by_cost, {.stride = 1});
  double minimum = result.curve.front().expected_makespan;
  for (const SweepPoint& point : result.curve)
    minimum = std::min(minimum, point.expected_makespan);
  expect_rel_near(minimum, result.best_expected_makespan, 1e-12);
  // And the winning schedule re-evaluates to the reported value.
  expect_rel_near(evaluator.evaluate(result.best_schedule).expected_makespan,
                  result.best_expected_makespan, 1e-12);
}

TEST(Sweep, ParallelAndSerialAgree) {
  TaskGraph graph = generate_ligo({.task_count = 44, .seed = 2});
  const ScheduleEvaluator evaluator(graph, FailureModel(1e-3, 1.0));
  const auto order = linearize(graph.dag(), graph.weights(), LinearizeMethod::breadth_first);
  const SweepResult serial =
      sweep_checkpoint_budget(evaluator, order, CkptStrategy::by_weight, {.threads = 1});
  const SweepResult parallel =
      sweep_checkpoint_budget(evaluator, order, CkptStrategy::by_weight, {.threads = 8});
  EXPECT_EQ(serial.best_budget, parallel.best_budget);
  EXPECT_DOUBLE_EQ(serial.best_expected_makespan, parallel.best_expected_makespan);
  ASSERT_EQ(serial.curve.size(), parallel.curve.size());
  for (std::size_t i = 0; i < serial.curve.size(); ++i)
    EXPECT_DOUBLE_EQ(serial.curve[i].expected_makespan, parallel.curve[i].expected_makespan);
}

TEST(Sweep, PoolTokenPathMatchesSerialBitwise) {
  // The engine's nested mode: budget candidates submitted to a shared
  // ThreadPool as a TaskGroup. Curve, winner and schedule must be the
  // same bits as the serial sweep, for pools narrower and wider than the
  // budget count, and with intra-evaluation k-blocks stacked on top.
  TaskGraph graph = generate_cybershake({.task_count = 37, .seed = 21});
  const ScheduleEvaluator evaluator(graph, FailureModel(1e-3, 1.0));
  const auto order = linearize(graph.dag(), graph.weights(), LinearizeMethod::depth_first);
  const SweepResult serial =
      sweep_checkpoint_budget(evaluator, order, CkptStrategy::by_weight, {.threads = 1});
  for (const std::size_t workers : {1u, 3u, 8u}) {
    ThreadPool pool(workers);
    for (const std::size_t eval_threads : {1u, 3u}) {
      const SweepResult pooled = sweep_checkpoint_budget(
          evaluator, order, CkptStrategy::by_weight,
          {.pool = &pool, .eval = {eval_threads, &pool}});
      EXPECT_EQ(serial.best_budget, pooled.best_budget);
      EXPECT_EQ(serial.best_expected_makespan, pooled.best_expected_makespan);
      EXPECT_EQ(serial.best_schedule.checkpointed, pooled.best_schedule.checkpointed);
      ASSERT_EQ(serial.curve.size(), pooled.curve.size());
      for (std::size_t i = 0; i < serial.curve.size(); ++i) {
        EXPECT_EQ(serial.curve[i].expected_makespan, pooled.curve[i].expected_makespan);
        EXPECT_EQ(serial.curve[i].checkpoints, pooled.curve[i].checkpoints);
      }
    }
  }
}

TEST(Sweep, PoolTokenHonorsCallerWorkspace) {
  // SweepOptions::workspace (the outer scenario shard's per-worker
  // scratch) must keep working under the token path: the serial bits of
  // the sweep reuse it, repeated sweeps through one workspace stay
  // consistent, and non-budgeted strategies (which evaluate exactly once,
  // on the caller's workspace) agree with the serial path.
  TaskGraph graph = generate_montage({.task_count = 30, .seed = 4});
  const ScheduleEvaluator evaluator(graph, FailureModel(1e-3, 0.0));
  const auto order = linearize(graph.dag(), graph.weights(), LinearizeMethod::depth_first);
  ThreadPool pool(4);
  EvaluatorWorkspace caller_ws;
  const SweepResult serial =
      sweep_checkpoint_budget(evaluator, order, CkptStrategy::by_cost, {.threads = 1});
  for (int rep = 0; rep < 3; ++rep) {
    const SweepResult pooled = sweep_checkpoint_budget(
        evaluator, order, CkptStrategy::by_cost,
        {.workspace = &caller_ws, .pool = &pool});
    EXPECT_EQ(serial.best_budget, pooled.best_budget);
    EXPECT_EQ(serial.best_expected_makespan, pooled.best_expected_makespan);
  }
  const SweepResult never_serial =
      sweep_checkpoint_budget(evaluator, order, CkptStrategy::never, {.threads = 1});
  const SweepResult never_pooled = sweep_checkpoint_budget(
      evaluator, order, CkptStrategy::never, {.workspace = &caller_ws, .pool = &pool});
  EXPECT_EQ(never_serial.best_expected_makespan, never_pooled.best_expected_makespan);
  // And the caller workspace is still good for direct evaluations.
  EXPECT_EQ(evaluator.expected_makespan(never_serial.best_schedule, caller_ws),
            never_serial.best_expected_makespan);
}

TEST(Sweep, StrideSubsamplesButKeepsEndpoints) {
  TaskGraph graph = generate_montage({.task_count = 30, .seed = 4});
  const ScheduleEvaluator evaluator(graph, FailureModel(1e-3, 0.0));
  const auto order = linearize(graph.dag(), graph.weights(), LinearizeMethod::depth_first);
  const SweepResult strided =
      sweep_checkpoint_budget(evaluator, order, CkptStrategy::by_weight, {.stride = 7});
  ASSERT_FALSE(strided.curve.empty());
  EXPECT_EQ(strided.curve.front().budget, 1u);
  EXPECT_EQ(strided.curve.back().budget, graph.task_count() - 1);
  EXPECT_LT(strided.curve.size(), graph.task_count() - 1);
  // A strided sweep can only be as good as the exhaustive one.
  const SweepResult full =
      sweep_checkpoint_budget(evaluator, order, CkptStrategy::by_weight, {.stride = 1});
  EXPECT_GE(strided.best_expected_makespan, full.best_expected_makespan - 1e-12);
}

TEST(Sweep, NonBudgetedStrategiesReturnASinglePoint) {
  TaskGraph graph = generate_montage({.task_count = 25, .seed = 6});
  const ScheduleEvaluator evaluator(graph, FailureModel(1e-3, 0.0));
  const auto order = linearize(graph.dag(), graph.weights(), LinearizeMethod::depth_first);
  const SweepResult never =
      sweep_checkpoint_budget(evaluator, order, CkptStrategy::never, {});
  EXPECT_EQ(never.curve.size(), 1u);
  EXPECT_EQ(never.best_schedule.checkpoint_count(), 0u);
  const SweepResult always =
      sweep_checkpoint_budget(evaluator, order, CkptStrategy::always, {});
  EXPECT_EQ(always.best_schedule.checkpoint_count(), graph.task_count());
}

TEST(Sweep, IncludeZeroAddsTheEmptyBudget) {
  TaskGraph graph = generate_montage({.task_count = 25, .seed = 6});
  const ScheduleEvaluator evaluator(graph, FailureModel(1e-3, 0.0));
  const auto order = linearize(graph.dag(), graph.weights(), LinearizeMethod::depth_first);
  const SweepResult result = sweep_checkpoint_budget(evaluator, order, CkptStrategy::by_weight,
                                                     {.stride = 1, .include_zero = true});
  EXPECT_EQ(result.curve.front().budget, 0u);
  EXPECT_EQ(result.curve.front().checkpoints, 0u);
}

TEST(Sweep, SingleTaskGraph) {
  const TaskGraph graph = make_uniform_chain(1, 5.0);
  const ScheduleEvaluator evaluator(graph, FailureModel(1e-2, 0.0));
  const std::vector<VertexId> order{0};
  const SweepResult result =
      sweep_checkpoint_budget(evaluator, order, CkptStrategy::by_weight, {});
  EXPECT_EQ(result.curve.size(), 1u);
}

TEST(Sweep, RejectsBadInputs) {
  const TaskGraph graph = make_uniform_chain(3, 5.0);
  const ScheduleEvaluator evaluator(graph, FailureModel(1e-2, 0.0));
  const std::vector<VertexId> order{0, 1, 2};
  EXPECT_THROW(
      sweep_checkpoint_budget(evaluator, order, CkptStrategy::by_weight, {.stride = 0}),
      InvalidArgument);
  EXPECT_THROW(sweep_checkpoint_budget(evaluator, {2, 1, 0}, CkptStrategy::by_weight, {}),
               ScheduleError);
}

}  // namespace
}  // namespace fpsched
