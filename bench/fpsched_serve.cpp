// fpsched_serve — the experiment registry as an HTTP service.
//
//   $ fpsched_serve --port 8080 --threads 4 --max-jobs 64
//   $ curl localhost:8080/healthz
//   $ curl localhost:8080/experiments
//   $ curl -X POST 'localhost:8080/runs?experiment=fig2&quick=1'
//   $ curl localhost:8080/runs/1/records        # live NDJSON stream
//
// The record stream of a run is byte-identical to
// `fpsched_run <experiment> --format ndjson`, so HTTP clients and batch
// pipelines consume the same bytes. Runs execute on the in-process
// ExperimentEngine (each saturating the machine's cores), queued in
// submission order. SIGINT/SIGTERM shut the server down cleanly; a run
// already executing finishes first (kill again to abandon it).
#include <csignal>
#include <iostream>

#include "service/service.hpp"
#include "support/cli.hpp"
#include "support/error.hpp"
#include "support/socket.hpp"

using namespace fpsched;

int main(int argc, char** argv) {
  CliParser cli(
      "fpsched_serve — serve experiment listings, run submission and live NDJSON record "
      "streams over HTTP.");
  cli.add_option("port", "8080", "TCP port to listen on (0 = pick an ephemeral port)");
  cli.add_option("threads", "4",
                 "HTTP connection worker threads (also the max concurrent requests; record "
                 "streams each occupy one)");
  cli.add_option("max-jobs", "64",
                 "max ACTIVE runs (queued + running); further submissions are rejected with "
                 "429 (finished runs are evicted by count/age, not counted)");
  cli.add_option("max-task-count", "1000000",
                 "largest per-instance task count a run may request; bigger grid sizes are "
                 "rejected with 400 (instance memory is O(tasks), this caps it)");
  cli.add_option("cache-dir", "",
                 "directory for the content-addressed scenario result cache; repeat scenarios "
                 "replay their bytes instead of recomputing, surviving restarts (empty = "
                 "in-memory cache only)");
  cli.add_option("max-record-lines", "0",
                 "per-run record-buffer ceiling in NDJSON lines; at the ceiling producers "
                 "trim cache-replayable lines or block until streams catch up (0 = unbounded)");
  cli.add_option("job-ttl", "0",
                 "seconds a finished run is retained for inspection before eviction "
                 "(0 = keep until the finished-run count ceiling evicts it)");
  try {
    if (!cli.parse(argc, argv)) return 0;
    const std::size_t port = cli.get_count("port");
    if (port > 65535) throw InvalidArgument("option --port: must be <= 65535");

    service::ServiceOptions options;
    options.http.port = static_cast<std::uint16_t>(port);
    options.http.threads = cli.get_count("threads", 1);
    options.jobs.max_jobs = cli.get_count("max-jobs", 1);
    options.jobs.max_task_count = cli.get_count("max-task-count", 1);
    options.jobs.cache.directory = cli.get_string("cache-dir");
    options.jobs.max_record_lines = cli.get_count("max-record-lines");
    options.jobs.job_ttl_seconds = cli.get_count("job-ttl");

    ignore_sigpipe();
    // Block the shutdown signals before any thread exists so every
    // worker inherits the mask and sigwait() below is the sole consumer.
    sigset_t signals;
    sigemptyset(&signals);
    sigaddset(&signals, SIGINT);
    sigaddset(&signals, SIGTERM);
    pthread_sigmask(SIG_BLOCK, &signals, nullptr);

    service::ExperimentService service(options);
    service.start();
    std::cout << "fpsched_serve listening on port " << service.port() << " ("
              << options.http.threads << " worker threads, max " << options.jobs.max_jobs
              << " jobs)" << std::endl;

    int signal = 0;
    sigwait(&signals, &signal);
    std::cout << "received " << (signal == SIGINT ? "SIGINT" : "SIGTERM")
              << ", shutting down" << std::endl;
    // Restore default dispositions before the (possibly long) drain —
    // stop() waits for an in-flight run, and a second SIGINT/SIGTERM
    // must be able to abandon it instead of staying blocked forever.
    pthread_sigmask(SIG_UNBLOCK, &signals, nullptr);
    service.stop();
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
