// Figure 6 of the paper: checkpointing strategies with a constant
// checkpoint cost, c_i = r_i = 5 s.
//
// Same panel layout as Figure 3 (four workflows, best linearization per
// strategy). Expected shape: constant costs penalize checkpointing small
// tasks, so CkptC loses its edge; CkptW/CkptD lead; CkptAlws suffers on
// workflows with many small tasks (Montage, CyberShake).
#include <iostream>

#include "bench_common.hpp"
#include "support/error.hpp"
#include "support/table.hpp"

using namespace fpsched;
using namespace fpsched::bench;

int main(int argc, char** argv) {
  CliParser cli("Reproduces Figure 6: checkpointing strategies, c = 5 s.");
  try {
    const auto options = parse_figure_options(cli, argc, argv);
    if (!options) return 0;
    std::cout << "Figure 6 — impact of the checkpointing strategy (c_i = r_i = 5 s)\n";

    const CostModel cost = CostModel::constant(5.0);
    const char* labels[] = {"fig6a_montage", "fig6b_ligo", "fig6c_cybershake", "fig6d_genome"};
    const WorkflowKind kinds[] = {WorkflowKind::montage, WorkflowKind::ligo,
                                  WorkflowKind::cybershake, WorkflowKind::genome};
    std::vector<PanelSpec> panels;
    for (std::size_t i = 0; i < 4; ++i) {
      const double lambda = paper_lambda(kinds[i]);
      panels.push_back(
          {strategy_grid(kinds[i], lambda, cost, *options),
           best_lin_panel_title(kinds[i], "lambda=" + format_double(lambda, 4) +
                                              ", c=5s  [paper fig. 6" +
                                              std::string(1, static_cast<char>('a' + i)) + "]"),
           labels[i]});
    }
    run_figure(std::cout, panels, *options);
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
