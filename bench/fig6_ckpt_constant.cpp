// Figure 6 of the paper: checkpointing strategies with a constant
// checkpoint cost, c_i = r_i = 5 s.
//
// Same panel layout as Figure 3 (four workflows, best linearization per
// strategy). Expected shape: constant costs penalize checkpointing small
// tasks, so CkptC loses its edge; CkptW/CkptD lead; CkptAlws suffers on
// workflows with many small tasks (Montage, CyberShake).
//
// Thin shim over the experiment registry; `fpsched_run fig6` is the
// same run (same code path, byte-identical output).
#include "bench_common.hpp"

int main(int argc, char** argv) { return fpsched::bench::figure_main("fig6", argc, argv); }
