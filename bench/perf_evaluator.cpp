// Micro-benchmarks (google-benchmark) for the computational kernels:
//  * the optimized Theorem-3 evaluator vs the literal O(n^4) Algorithm-1
//    transcription (the reason the heuristic sweeps are tractable);
//  * one Monte-Carlo simulation trial;
//  * a full exhaustive budget sweep;
//  * DAG linearization.
#include <benchmark/benchmark.h>

#include "core/evaluator.hpp"
#include "core/evaluator_naive.hpp"
#include "dag/linearize.hpp"
#include "heuristics/heuristic.hpp"
#include "sim/simulator.hpp"
#include "support/rng.hpp"
#include "workflows/generator.hpp"

using namespace fpsched;

namespace {

struct Fixture {
  TaskGraph graph;
  FailureModel model{1e-3, 0.0};
  Schedule schedule;

  explicit Fixture(std::size_t n)
      : graph(generate_cybershake({.task_count = n, .seed = 5,
                                   .cost_model = CostModel::proportional(0.1)})) {
    schedule = make_schedule(linearize(graph.dag(), graph.weights(),
                                       LinearizeMethod::depth_first));
    for (VertexId v = 0; v < graph.task_count(); v += 3) schedule.checkpointed[v] = 1;
  }
};

void BM_EvaluatorOptimized(benchmark::State& state) {
  const Fixture fixture(static_cast<std::size_t>(state.range(0)));
  const ScheduleEvaluator evaluator(fixture.graph, fixture.model);
  EvaluatorWorkspace ws;
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluator.expected_makespan(fixture.schedule, ws, false));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_EvaluatorOptimized)->RangeMultiplier(2)->Range(50, 800)->Complexity();

void BM_EvaluatorAlgorithm1(benchmark::State& state) {
  const Fixture fixture(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        evaluate_reference(fixture.graph, fixture.model, fixture.schedule));
  }
  state.SetComplexityN(state.range(0));
}
// The literal transcription is O(n^4)-ish; keep the range small.
BENCHMARK(BM_EvaluatorAlgorithm1)->RangeMultiplier(2)->Range(50, 200)->Complexity();

void BM_SimulatorTrial(benchmark::State& state) {
  const Fixture fixture(static_cast<std::size_t>(state.range(0)));
  const FaultSimulator simulator(fixture.graph, fixture.model, fixture.schedule);
  Rng rng(99);
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulator.run(rng).makespan);
  }
}
BENCHMARK(BM_SimulatorTrial)->RangeMultiplier(2)->Range(50, 800);

void BM_ExhaustiveBudgetSweep(benchmark::State& state) {
  const Fixture fixture(static_cast<std::size_t>(state.range(0)));
  const ScheduleEvaluator evaluator(fixture.graph, fixture.model);
  for (auto _ : state) {
    const HeuristicResult result =
        run_heuristic(evaluator, {LinearizeMethod::depth_first, CkptStrategy::by_weight});
    benchmark::DoNotOptimize(result.evaluation.expected_makespan);
  }
}
BENCHMARK(BM_ExhaustiveBudgetSweep)->Arg(100)->Arg(300)->Unit(benchmark::kMillisecond);

void BM_Linearize(benchmark::State& state) {
  const Fixture fixture(static_cast<std::size_t>(state.range(0)));
  const std::vector<double> weights = fixture.graph.weights();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        linearize(fixture.graph.dag(), weights, LinearizeMethod::depth_first));
  }
}
BENCHMARK(BM_Linearize)->Range(50, 800);

}  // namespace

BENCHMARK_MAIN();
